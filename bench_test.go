// Package vsimdvliw's root benchmark harness regenerates every table and
// figure of the paper's evaluation section as a testing.B target:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN/BenchmarkFigureN renders the corresponding
// artifact from a shared simulation sweep (collected once) and reports
// its headline number as a custom metric, so `go test -bench` output
// doubles as a summary of the reproduction. BenchmarkSimulator and
// BenchmarkScheduler measure the substrate itself.
package vsimdvliw

import (
	"fmt"
	"sync"
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/energy"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/sim"
)

var (
	matrixOnce sync.Once
	matrix     *report.Matrix
	matrixErr  error
)

func getMatrix(b *testing.B) *report.Matrix {
	b.Helper()
	matrixOnce.Do(func() { matrix, matrixErr = report.Collect(nil) })
	if matrixErr != nil {
		b.Fatal(matrixErr)
	}
	return matrix
}

// speedup computes cycles(base)/cycles(cfg) for one app.
func speedup(m *report.Matrix, app, base, cfg string, mem core.MemoryModel, vectorOnly bool) float64 {
	rb := m.Get(app, base, mem)
	rc := m.Get(app, cfg, mem)
	if vectorOnly {
		return float64(rb.VectorCycles()) / float64(rc.VectorCycles())
	}
	return float64(rb.Cycles) / float64(rc.Cycles)
}

func avgSpeedup(m *report.Matrix, base, cfg string, mem core.MemoryModel, vectorOnly bool) float64 {
	s := 0.0
	for _, a := range m.Apps {
		s += speedup(m, a.Name, base, cfg, mem, vectorOnly)
	}
	return s / float64(len(m.Apps))
}

func BenchmarkTable1(b *testing.B) {
	m := getMatrix(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = m.Table1()
	}
	_ = out
	// Headline: average vectorization percentage on uSIMD-2w.
	s := 0.0
	for _, a := range m.Apps {
		r := m.Get(a.Name, machine.USIMD2.Name, core.Realistic)
		s += float64(r.VectorCycles()) / float64(r.Cycles)
	}
	b.ReportMetric(100*s/float64(len(m.Apps)), "%vect_avg")
}

func BenchmarkFigure1(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Figure1()
	}
	// Headline: scalar-region speed-up from 4-issue to 8-issue (paper: ~1.03).
	s := 0.0
	for _, a := range m.Apps {
		r4 := m.Get(a.Name, machine.USIMD4.Name, core.Realistic)
		r8 := m.Get(a.Name, machine.USIMD8.Name, core.Realistic)
		s += float64(r4.Cycles-r4.VectorCycles()) / float64(r8.Cycles-r8.VectorCycles())
	}
	b.ReportMetric(s/float64(len(m.Apps)), "scalar_sp_4to8")
}

func BenchmarkTable2(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Table2()
	}
	b.ReportMetric(float64(len(machine.All())), "configs")
}

func BenchmarkFigure3(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Figure3()
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5a(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Figure5(core.Perfect)
	}
	// Headline: 4-issue Vector2 over 8-issue µSIMD in vector regions
	// (paper: ~2.3x average, perfect memory).
	b.ReportMetric(avgSpeedup(m, machine.USIMD8.Name, machine.Vector2x4.Name, core.Perfect, true),
		"v2_4w_over_usimd8w")
}

func BenchmarkFigure5b(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Figure5(core.Realistic)
	}
	// Headline: mpeg2_enc vector-region degradation perfect->realistic on
	// the vector machine (paper: close to 200%).
	p := m.Get("mpeg2_enc", machine.Vector2x2.Name, core.Perfect).VectorCycles()
	r := m.Get("mpeg2_enc", machine.Vector2x2.Name, core.Realistic).VectorCycles()
	b.ReportMetric(float64(r)/float64(p), "mpeg2enc_degradation")
}

func BenchmarkFigure6(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Figure6()
	}
	b.ReportMetric(avgSpeedup(m, machine.VLIW2.Name, machine.Vector2x4.Name, core.Realistic, false),
		"v2_4w_app_speedup")
	b.ReportMetric(avgSpeedup(m, machine.VLIW2.Name, machine.USIMD8.Name, core.Realistic, false),
		"usimd_8w_app_speedup")
}

func BenchmarkFigure7(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Figure7()
	}
	// Headline: vector-region operation reduction vs µSIMD (paper: 84%).
	s := 0.0
	for _, a := range m.Apps {
		var u, v int64
		ru := m.Get(a.Name, machine.USIMD2.Name, core.Realistic)
		rv := m.Get(a.Name, machine.Vector2x2.Name, core.Realistic)
		for i := 1; i < 4; i++ {
			u += ru.Regions[i].Ops
			v += rv.Regions[i].Ops
		}
		s += 1 - float64(v)/float64(u)
	}
	b.ReportMetric(100*s/float64(len(m.Apps)), "%fewer_vect_ops")
}

func BenchmarkTable3(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Table3()
	}
	// Headline: vector-region µOPC on Vector2-4w (paper: 14.00).
	s := 0.0
	for _, a := range m.Apps {
		r := m.Get(a.Name, machine.Vector2x4.Name, core.Realistic)
		var micro, cyc int64
		for i := 1; i < 4; i++ {
			micro += r.Regions[i].MicroOps
			cyc += r.Regions[i].Cycles
		}
		s += float64(micro) / float64(cyc)
	}
	b.ReportMetric(s/float64(len(m.Apps)), "vect_uOPC_v2_4w")
}

// BenchmarkSimulator measures raw simulation throughput (simulated
// operations per wall-clock second) on the heaviest application.
func BenchmarkSimulator(b *testing.B) {
	a, err := apps.ByName("mpeg2_enc")
	if err != nil {
		b.Fatal(err)
	}
	built := a.Build(kernels.Vector)
	prog, err := core.Compile(built.Func, &machine.Vector2x4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		res, err := prog.Run(core.Realistic)
		if err != nil {
			b.Fatal(err)
		}
		ops = res.Ops
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "sim_ops/s")
}

// benchmarkSimulatorEngine is BenchmarkSimulator pinned to a specific
// execution engine: same app, config and memory model, one machine reset
// and re-run per iteration.
func benchmarkSimulatorEngine(b *testing.B, e sim.Engine, metric string) {
	a, err := apps.ByName("mpeg2_enc")
	if err != nil {
		b.Fatal(err)
	}
	built := a.Build(kernels.Vector)
	prog, err := core.Compile(built.Func, &machine.Vector2x4)
	if err != nil {
		b.Fatal(err)
	}
	m := prog.NewMachine(core.Realistic)
	m.SetEngine(e)
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		m.Reset()
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		ops = res.Ops
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), metric)
}

// BenchmarkSimulatorReference measures the reference interpreter on the
// BenchmarkSimulator workload — the denominator of the v3 engine's
// headline speedup.
func BenchmarkSimulatorReference(b *testing.B) {
	benchmarkSimulatorEngine(b, sim.EngineInterpreter, "sim_ops_ref/s")
}

// BenchmarkSimulatorV2 measures the retained v2 closure-compiled engine
// on the BenchmarkSimulator workload.
func BenchmarkSimulatorV2(b *testing.B) {
	benchmarkSimulatorEngine(b, sim.EngineV2, "sim_ops_v2/s")
}

// BenchmarkScheduler measures static-scheduling throughput on the
// application with the largest basic blocks.
func BenchmarkScheduler(b *testing.B) {
	a, err := apps.ByName("jpeg_enc")
	if err != nil {
		b.Fatal(err)
	}
	built := a.Build(kernels.USIMD)
	ops := built.Func.NumOps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(built.Func, &machine.USIMD4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "sched_ops/s")
}

// BenchmarkAppSimulation runs every application/configuration pair once
// per iteration, giving a per-cell wall-clock profile of the harness.
func BenchmarkAppSimulation(b *testing.B) {
	for _, a := range apps.All() {
		for _, cfg := range []*machine.Config{&machine.VLIW8, &machine.USIMD8, &machine.Vector2x4} {
			a, cfg := a, cfg
			b.Run(fmt.Sprintf("%s/%s", a.Name, cfg.Name), func(b *testing.B) {
				built := a.Build(report.VariantFor(cfg))
				prog, err := core.Compile(built.Func, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prog.Run(core.Realistic); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblations regenerates the design-decision ablation study on
// the 2-issue Vector2 machine and reports two headline ratios.
func BenchmarkAblations(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.RunAblations(&machine.Vector2x2)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = out
	// Headline: banked strided memory's effect on mpeg2_enc vector regions.
	a, _ := apps.ByName("mpeg2_enc")
	built := a.Build(kernels.Vector)
	prog, err := core.Compile(built.Func, &machine.Vector2x2)
	if err != nil {
		b.Fatal(err)
	}
	base, err := prog.RunModel(mem.NewHierarchy(&machine.Vector2x2))
	if err != nil {
		b.Fatal(err)
	}
	banked, err := prog.RunModel(mem.NewHierarchyOpts(&machine.Vector2x2,
		mem.Options{StridedWordsPerCycle: 4}))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(banked.VectorCycles())/float64(base.VectorCycles()),
		"mpeg2enc_banked_vect_ratio")
}

// BenchmarkEnergy renders the energy-model table and reports the
// energy-delay-product ratio of the 4-issue Vector1 machine against the
// 8-issue µSIMD machine (the paper's embedded-systems argument).
func BenchmarkEnergy(b *testing.B) {
	m := getMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.EnergyTable()
	}
	model := energy.Default()
	edp := func(cfg *machine.Config) float64 {
		s := 0.0
		for _, a := range m.Apps {
			s += model.EDP(m.Get(a.Name, cfg.Name, core.Realistic), cfg)
		}
		return s
	}
	b.ReportMetric(edp(&machine.Vector1x4)/edp(&machine.USIMD8), "v1_4w_edp_vs_usimd8w")
}

// collectWarmOnce runs one untimed full sweep before either Collect
// benchmark: whichever variant -bench order runs first would otherwise
// absorb the process's one-time heap growth and GC warm-up, skewing the
// parallel-vs-sequential comparison by benchmark order instead of by
// worker count.
var collectWarmOnce sync.Once

func warmCollect(b *testing.B) {
	b.Helper()
	collectWarmOnce.Do(func() {
		if _, err := report.CollectOpts(report.Options{}); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
}

// BenchmarkCollect measures the full 120-cell evaluation sweep fanned out
// on the parallel worker pool (one complete sweep per iteration).
func BenchmarkCollect(b *testing.B) {
	warmCollect(b)
	for i := 0; i < b.N; i++ {
		if _, err := report.CollectOpts(report.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectSequential is the parallelism=1 baseline; the ratio to
// BenchmarkCollect is the worker pool's wall-clock speedup on a
// multi-core host.
func BenchmarkCollectSequential(b *testing.B) {
	warmCollect(b)
	for i := 0; i < b.N; i++ {
		if _, err := report.CollectOpts(report.Options{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
