// Ablation: design-space exploration with the public options. This
// example takes the paper's problem kernel — strided motion estimation —
// and explores the two knobs the paper's conclusion proposes as future
// work: a memory hierarchy that serves strided vector accesses faster,
// and more flexible scheduling (approximated by the overlap-drain upper
// bound). It also shows what chaining is worth.
package main

import (
	"fmt"
	"log"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/media"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
)

func main() {
	const w, h, r = 96, 64, 4
	cur, ref := media.FramePair(77, w, h, 2, -1)
	mbs := []kernels.MBOrigin{
		{X: 16, Y: 16}, {X: 40, Y: 16}, {X: 64, Y: 16},
		{X: 16, Y: 40}, {X: 40, Y: 40}, {X: 64, Y: 40},
	}

	build := func() *ir.Func {
		b := ir.NewBuilder("motion")
		p := kernels.MEParams{
			Cur: b.Data(cur), Ref: b.Data(ref),
			MV: b.Alloc(int64(24 * len(mbs))),
			W:  w, H: h, MBs: mbs, R: r,
			AliasCur: 1, AliasRef: 2, AliasMV: 3,
		}
		kernels.MotionEstimate(b, kernels.Vector, p)
		return b.Func()
	}

	cfg := &machine.Vector2x2
	type variant struct {
		name string
		so   sched.Options
		mo   mem.Options
	}
	variants := []variant{
		{"baseline", sched.Options{}, mem.Options{}},
		{"no chaining", sched.Options{NoChaining: true}, mem.Options{}},
		{"overlap drain", sched.Options{OverlapDrain: true}, mem.Options{}},
		{"strided @2 words/cycle", sched.Options{}, mem.Options{StridedWordsPerCycle: 2}},
		{"strided @4 words/cycle", sched.Options{}, mem.Options{StridedWordsPerCycle: 4}},
		{"no prefetch", sched.Options{}, mem.Options{NoPrefetch: true}},
	}

	var base int64
	fmt.Printf("%-24s %10s %8s %9s\n", "model", "cycles", "stalls", "vs base")
	for i, v := range variants {
		prog, err := core.CompileWith(build(), cfg, v.so)
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.RunModel(mem.NewHierarchyOpts(cfg, v.mo))
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-24s %10d %8d %8.2fx\n", v.name, res.Cycles, res.StallCycles,
			float64(base)/float64(res.Cycles))
	}
	fmt.Println("\nthe strided-access rate is the lever that fixes the paper's")
	fmt.Println("motion-estimation bottleneck; chaining and drain overlap are minor here")
}
