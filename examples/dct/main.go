// DCT: runs the 8x8 forward DCT over a batch of blocks in all three ISA
// variants across machine widths, demonstrating the scaling behaviour the
// paper studies — the µSIMD version gains from wider issue, the vector
// version reaches the same work with a fraction of the fetched
// operations, and both are bit-exact against the scalar code.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/media"
	"vsimdvliw/internal/report"
)

const nblocks = 32

func buildInput() []byte {
	img := media.SmoothImage(99, 64, 32) // 8x4 grid of blocks
	blocks := kernels.BlockifyRef(img, 64, 8, 4)
	out := make([]byte, 0, nblocks*kernels.BlockBytes)
	for _, blk := range blocks {
		for _, v := range blk {
			out = binary.LittleEndian.AppendUint16(out, uint16(v))
		}
	}
	return out
}

func main() {
	input := buildInput()

	// Reference output for verification.
	want := make([]int16, 0, 64*nblocks)
	for i := 0; i < nblocks; i++ {
		blk := make([]int16, 64)
		for j := range blk {
			blk[j] = int16(binary.LittleEndian.Uint16(input[i*kernels.BlockBytes+2*j:]))
		}
		want = append(want, kernels.DCT2DRef(kernels.FDCTMatrix(), blk)...)
	}

	fmt.Printf("%-11s %-7s %9s %9s %8s %8s\n", "config", "code", "cycles", "ops", "OPC", "µOPC")
	for _, cfg := range machine.All() {
		variant := report.VariantFor(cfg)
		b := ir.NewBuilder("fdct")
		src := b.Data(input)
		dst := b.Alloc(nblocks * kernels.BlockBytes)
		kernels.DCT2D(b, variant, kernels.FDCTMatrix(), src, dst, nblocks,
			kernels.DCTAlias{Src: 1, Dst: 2, Tmp: 3})
		prog, err := core.Compile(b.Func(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := prog.NewMachine(core.Perfect)
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %-7s %9d %9d %8.2f %8.2f\n",
			cfg.Name, variant, res.Cycles, res.Ops, res.OPC(), res.MicroOPC())

		raw, err := m.ReadBytes(dst, int64(nblocks*kernels.BlockBytes))
		if err != nil {
			log.Fatal(err)
		}
		for j, wv := range want {
			if got := int16(binary.LittleEndian.Uint16(raw[2*j:])); got != wv {
				log.Fatalf("%s: element %d = %d, want %d", cfg.Name, j, got, wv)
			}
		}
	}
	fmt.Println("\nall configurations produced bit-identical DCT coefficients")
}
