// Motion estimation: the paper's flagship kernel (Section 3.3.1). This
// example runs the full-search SAD block matcher on a synthetic frame
// pair in all three ISA variants, shows how many operations and cycles
// each needs, and prints the Figure 4 schedule of the inner dist1 kernel.
//
// It also demonstrates the paper's key memory finding: the vector version
// loads macroblock columns with VS = image width, a non-unit stride that
// the L2 vector cache serves at one element per cycle, so realistic
// memory hurts the vector machine most (Figure 5b).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/media"
	"vsimdvliw/internal/report"
)

func main() {
	const w, h, r = 96, 64, 4
	cur, ref := media.FramePair(7, w, h, -3, 2)
	mbs := []kernels.MBOrigin{
		{X: 16, Y: 16}, {X: 40, Y: 16}, {X: 64, Y: 16},
		{X: 16, Y: 40}, {X: 40, Y: 40}, {X: 64, Y: 40},
	}
	want := kernels.MotionEstimateRef(cur, ref, w, mbs, r)

	type row struct {
		cfg *machine.Config
	}
	for _, cfg := range []*machine.Config{&machine.VLIW2, &machine.USIMD2, &machine.Vector2x2} {
		variant := report.VariantFor(cfg)
		b := ir.NewBuilder("motion")
		p := kernels.MEParams{
			Cur: b.Data(cur), Ref: b.Data(ref),
			MV: b.Alloc(int64(24 * len(mbs))),
			W:  w, H: h, MBs: mbs, R: r,
			AliasCur: 1, AliasRef: 2, AliasMV: 3,
		}
		kernels.MotionEstimate(b, variant, p)
		prog, err := core.Compile(b.Func(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, mem := range []core.MemoryModel{core.Perfect, core.Realistic} {
			m := prog.NewMachine(mem)
			res, err := m.Run()
			if err != nil {
				log.Fatal(err)
			}
			name := map[core.MemoryModel]string{core.Perfect: "perfect", core.Realistic: "realistic"}[mem]
			fmt.Printf("%-10s (%-6s code, %-9s memory): %8d cycles, %7d ops, %8d µops\n",
				cfg.Name, variant, name, res.Cycles, res.Ops, res.MicroOps)

			// Verify the motion vectors.
			for i := range mbs {
				raw, err := m.ReadBytes(p.MV+int64(24*i), 24)
				if err != nil {
					log.Fatal(err)
				}
				dx := int64(binary.LittleEndian.Uint64(raw[0:]))
				dy := int64(binary.LittleEndian.Uint64(raw[8:]))
				if dx != want[i][0] || dy != want[i][1] {
					log.Fatalf("MB %d: got (%d,%d), want (%d,%d)", i, dx, dy, want[i][0], want[i][1])
				}
			}
		}
	}
	fmt.Printf("\nall variants found the planted global motion (-3,+2)\n\n")

	fig4, err := report.Figure4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig4)
}
