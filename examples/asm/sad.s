; sad.s — the paper's dist1 kernel in Vector-µSIMD-VLIW assembly:
; sum of absolute differences between two 8x16-pixel blocks whose rows
; are lx = 64 bytes apart (the motion-estimation inner loop of Figure 4).
;
; Run with:
;   go run ./cmd/vsimdasm -config Vector2-2w -dump 0x10800:8 examples/asm/sad.s
;   go run ./cmd/vsimdasm -sched examples/asm/sad.s     (the Figure 4 schedule)

.data blk1 1024              ; 16 rows x 64-byte pitch
.data blk2 1024
.data out  8

	setvs #64                ; VS = lx: one row per vector element
	setvl #8                 ; 8 rows
	movi  r1, &blk1
	movi  r2, &blk2
	movi  r7, &out

	; fill the blocks with a recognizable pattern (scalar prologue):
	movi  r8, #0
	movi  r9, #128
fill:
	stb   r8, [r1] @1        ; blk1 row byte = i
	stb   r9, [r2] @2        ; blk2 row byte = 128
	add   r1, r1, #64
	add   r2, r2, #64
	add   r8, r8, #16
	blt   r8, r9, fill
	movi  r1, &blk1
	movi  r2, &blk2

	; the dist1 kernel proper (paper Section 3.3.1):
	aclr  a1
	add   r3, r1, #8
	vld   v1, [r1] @1
	aclr  a2
	add   r4, r2, #8
	vld   v2, [r2] @2
	vld   v3, [r3] @1
	vld   v4, [r4] @2
	vsada a1, v1, v2
	vsada a2, v3, v4
	vsum.b r5, a1
	vsum.b r6, a2
	add   r5, r5, r6
	std   r5, [r7] @3
	halt
