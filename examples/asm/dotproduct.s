; dotproduct.s — 64-element int16 dot product three ways in one program,
; demonstrating the ISA levels: scalar loop, µSIMD PMADD loop, and a
; single Vector-µSIMD accumulator sequence. All three results land in
; consecutive words of `out` and must be equal.
;
; Run with:
;   go run ./cmd/vsimdasm -config Vector2-4w -dump 0x10100:24 examples/asm/dotproduct.s

.data xs 128                ; 64 int16, filled by the init loop below
.data ys 128
.data out 24

; ---- init: xs[i] = i-20, ys[i] = 2i+1 (scalar) -------------------------
	movi r0, &xs
	movi r1, &ys
	movi r2, #0
	movi r3, #64
init:
	sub  r4, r2, #20
	sth  r4, [r0] @1
	shl  r5, r2, #1
	add  r5, r5, #1
	sth  r5, [r1] @2
	add  r0, r0, #2
	add  r1, r1, #2
	add  r2, r2, #1
	blt  r2, r3, init

; ---- scalar dot product ------------------------------------------------
	movi r0, &xs
	movi r1, &ys
	movi r2, #0
	movi r6, #0                ; accumulator
sdot:
	ldh  r4, [r0] @1
	ldh  r5, [r1] @2
	mul  r4, r4, r5
	add  r6, r6, r4
	add  r0, r0, #2
	add  r1, r1, #2
	add  r2, r2, #1
	blt  r2, r3, sdot
	movi r7, &out
	std  r6, [r7] @3

; ---- µSIMD dot product (PMADD, 4 lanes per word) -----------------------
	movi r0, &xs
	movi r1, &ys
	movi r2, #0
	movi r3, #16               ; 16 words of 4 int16
	movim m2, #0               ; packed 2x32 accumulator
pdot:
	ldm  m0, [r0] @1
	ldm  m1, [r1] @2
	pmadd.w m0, m0, m1
	padd.d  m2, m2, m0
	add  r0, r0, #8
	add  r1, r1, #8
	add  r2, r2, #1
	blt  r2, r3, pdot
	movmr r6, m2               ; horizontal add of the two 32-bit lanes
	shl  r4, r6, #32
	sra  r4, r4, #32
	sra  r5, r6, #32
	add  r6, r4, r5
	std  r6, [r7+8] @3

; ---- Vector-µSIMD dot product (one VMACA) ------------------------------
	setvl #16
	setvs #8
	movi r0, &xs
	movi r1, &ys
	vld  v0, [r0] @1
	vld  v1, [r1] @2
	aclr a0
	vmaca a0, v0, v1
	vsum.w r6, a0
	std  r6, [r7+16] @3
	halt
