// Color conversion: RGB→YCC over a full image, the first vector region of
// the JPEG encoder. This example shows the three-way comparison the paper
// makes throughout — scalar vs µSIMD vs vector code for the same kernel —
// and the difference between perfect and realistic memory for a purely
// stride-one kernel (small, unlike the strided motion estimation).
package main

import (
	"bytes"
	"fmt"
	"log"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/media"
	"vsimdvliw/internal/report"
)

func main() {
	const w, h = 128, 96
	const npix = w * h
	r, g, bl := media.RGBImage(5, w, h)
	wantY, wantCb, wantCr := kernels.RGB2YCCRef(r, g, bl)

	for _, cfg := range []*machine.Config{&machine.VLIW4, &machine.USIMD4, &machine.Vector2x4} {
		variant := report.VariantFor(cfg)
		b := ir.NewBuilder("rgb2ycc")
		p := kernels.ColorBufs{
			R: b.Data(r), G: b.Data(g), B: b.Data(bl),
			Y: b.Alloc(npix), Cb: b.Alloc(npix), Cr: b.Alloc(npix),
			NPix: npix, AliasRGB: 1, AliasYCC: 2,
		}
		kernels.RGB2YCC(b, variant, p)
		prog, err := core.Compile(b.Func(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, mem := range []core.MemoryModel{core.Perfect, core.Realistic} {
			m := prog.NewMachine(mem)
			res, err := m.Run()
			if err != nil {
				log.Fatal(err)
			}
			name := map[core.MemoryModel]string{core.Perfect: "perfect", core.Realistic: "realistic"}[mem]
			fmt.Printf("%-10s %-6s code, %-9s memory: %7d cycles (%5d stall), %7d ops\n",
				cfg.Name, variant, name, res.Cycles, res.StallCycles, res.Ops)

			y, _ := m.ReadBytes(p.Y, npix)
			cb, _ := m.ReadBytes(p.Cb, npix)
			cr, _ := m.ReadBytes(p.Cr, npix)
			if !bytes.Equal(y, wantY) || !bytes.Equal(cb, wantCb) || !bytes.Equal(cr, wantCr) {
				log.Fatalf("%s/%v: output mismatch", cfg.Name, variant)
			}
		}
	}
	fmt.Println("\nall variants produced bit-identical YCC planes")
}
