// Quickstart: build a small Vector-µSIMD kernel with the IR builder (the
// "emulation library"), compile it for a machine configuration, simulate
// it, and read back the results.
//
// The kernel computes the saturating byte-wise sum of two 1 KiB arrays —
// one vector loop iteration processes 16 words x 8 bytes = 128 elements.
package main

import (
	"fmt"
	"log"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/simd"
)

func main() {
	const n = 1024

	// Build the program.
	b := ir.NewBuilder("saturating-add")
	x := make([]byte, n)
	y := make([]byte, n)
	for i := range x {
		x[i] = byte(i)
		y[i] = byte(3 * i)
	}
	xa := b.Data(x)
	ya := b.Data(y)
	oa := b.Alloc(n)

	b.SetVLI(16) // 16 words per vector operation
	b.SetVSI(8)  // unit stride
	xp := b.Const(xa)
	yp := b.Const(ya)
	op := b.Const(oa)
	b.Loop(0, n, 128, func(ir.Reg) {
		vx := b.Vld(xp, 0, 1)
		vy := b.Vld(yp, 0, 2)
		b.Vst(b.V(isa.VADDU, simd.W8, vx, vy), op, 0, 3)
		for _, p := range []ir.Reg{xp, yp, op} {
			b.BinITo(isa.ADD, p, p, 128)
		}
	})
	f := b.Func()

	// Compile and run on two configurations.
	for _, cfg := range []*machine.Config{&machine.Vector1x2, &machine.Vector2x4} {
		prog, err := core.Compile(f, cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := prog.NewMachine(core.Realistic)
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s: %5d cycles, %4d operations (%.2f OPC, %.2f µOPC)\n",
			cfg.Name, res.Cycles, res.Ops, res.OPC(), res.MicroOPC())

		// Check the output against plain Go.
		out, err := m.ReadBytes(oa, n)
		if err != nil {
			log.Fatal(err)
		}
		for i := range out {
			want := int(x[i]) + int(y[i])
			if want > 255 {
				want = 255
			}
			if out[i] != byte(want) {
				log.Fatalf("element %d: got %d, want %d", i, out[i], want)
			}
		}
	}
	fmt.Println("outputs verified against the Go reference")
}
