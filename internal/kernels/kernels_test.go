package kernels

import (
	"bytes"
	"testing"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sim"
)

// cfgFor returns a machine configuration able to run the variant.
func cfgFor(v Variant) *machine.Config {
	switch v {
	case Scalar:
		return &machine.VLIW4
	case USIMD:
		return &machine.USIMD4
	default:
		return &machine.Vector2x4
	}
}

// allVariants lists the three code versions.
var allVariants = []Variant{Scalar, USIMD, Vector}

// execute compiles the built function for the variant's machine, runs it
// on perfect memory and returns the machine for output inspection.
func execute(t *testing.T, v Variant, f *ir.Func) (*sim.Machine, *sim.Result) {
	t.Helper()
	prog, err := core.Compile(f, cfgFor(v))
	if err != nil {
		t.Fatalf("%v: compile: %v", v, err)
	}
	m := prog.NewMachine(core.Perfect)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%v: run: %v", v, err)
	}
	return m, res
}

// readBuf reads n bytes at addr, failing the test on error.
func readBuf(t *testing.T, m *sim.Machine, addr int64, n int) []byte {
	t.Helper()
	out, err := m.ReadBytes(addr, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// prng is a tiny deterministic generator for test inputs.
type prng uint64

func (p *prng) next() uint64 {
	*p ^= *p << 13
	*p ^= *p >> 7
	*p ^= *p << 17
	return uint64(*p)
}

func (p *prng) bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(p.next())
	}
	return out
}

func (p *prng) int16s(n int, lim int32) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(int32(p.next())%lim - lim/2)
	}
	return out
}

func TestVariantString(t *testing.T) {
	if Scalar.String() != "scalar" || USIMD.String() != "usimd" ||
		Vector.String() != "vector" || Variant(9).String() != "?" {
		t.Error("Variant.String wrong")
	}
}

func TestSplatWord16(t *testing.T) {
	if splatWord16(0x1234) != 0x1234123412341234 {
		t.Errorf("splatWord16 = %#x", splatWord16(0x1234))
	}
	if uint64(splatWord16(-1)) != ^uint64(0) {
		t.Errorf("splatWord16(-1) = %#x", splatWord16(-1))
	}
}

func TestCheckMultiplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	checkMultiple("x", 100, 128)
}

func TestRGB2YCCAllVariants(t *testing.T) {
	const npix = 256
	var rnd prng = 12345
	r, g, bb := rnd.bytes(npix), rnd.bytes(npix), rnd.bytes(npix)
	wantY, wantCb, wantCr := RGB2YCCRef(r, g, bb)
	for _, v := range allVariants {
		b := ir.NewBuilder("rgb2ycc")
		p := ColorBufs{
			R: b.Data(r), G: b.Data(g), B: b.Data(bb),
			Y: b.Alloc(npix), Cb: b.Alloc(npix), Cr: b.Alloc(npix),
			NPix: npix, AliasRGB: 1, AliasYCC: 2,
		}
		RGB2YCC(b, v, p)
		m, _ := execute(t, v, b.Func())
		if got := readBuf(t, m, p.Y, npix); !bytes.Equal(got, wantY) {
			t.Errorf("%v: Y mismatch (first bytes got %v want %v)", v, got[:8], wantY[:8])
		}
		if got := readBuf(t, m, p.Cb, npix); !bytes.Equal(got, wantCb) {
			t.Errorf("%v: Cb mismatch", v)
		}
		if got := readBuf(t, m, p.Cr, npix); !bytes.Equal(got, wantCr) {
			t.Errorf("%v: Cr mismatch", v)
		}
	}
}

func TestYCC2RGBAllVariants(t *testing.T) {
	const npix = 256
	var rnd prng = 999
	y, cb, cr := rnd.bytes(npix), rnd.bytes(npix), rnd.bytes(npix)
	wantR, wantG, wantB := YCC2RGBRef(y, cb, cr)
	for _, v := range allVariants {
		b := ir.NewBuilder("ycc2rgb")
		p := ColorBufs{
			Y: b.Data(y), Cb: b.Data(cb), Cr: b.Data(cr),
			R: b.Alloc(npix), G: b.Alloc(npix), B: b.Alloc(npix),
			NPix: npix, AliasRGB: 2, AliasYCC: 1,
		}
		YCC2RGB(b, v, p)
		m, _ := execute(t, v, b.Func())
		if got := readBuf(t, m, p.R, npix); !bytes.Equal(got, wantR) {
			t.Errorf("%v: R mismatch (got %v want %v)", v, got[:8], wantR[:8])
		}
		if got := readBuf(t, m, p.G, npix); !bytes.Equal(got, wantG) {
			t.Errorf("%v: G mismatch", v)
		}
		if got := readBuf(t, m, p.B, npix); !bytes.Equal(got, wantB) {
			t.Errorf("%v: B mismatch", v)
		}
	}
}

func TestColorConversionRoundTrip(t *testing.T) {
	// YCC2RGB(RGB2YCC(x)) must be close to x (lossy fixed point, but
	// bounded error) — checked on the references.
	var rnd prng = 7
	const n = 512
	r, g, b := rnd.bytes(n), rnd.bytes(n), rnd.bytes(n)
	y, cb, cr := RGB2YCCRef(r, g, b)
	r2, g2, b2 := YCC2RGBRef(y, cb, cr)
	maxErr := 0
	for i := 0; i < n; i++ {
		for _, d := range []int{int(r[i]) - int(r2[i]), int(g[i]) - int(g2[i]), int(b[i]) - int(b2[i])} {
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 12 {
		t.Errorf("round-trip error %d too large for 7-bit fixed point", maxErr)
	}
}

func TestColorConversionOpCounts(t *testing.T) {
	// The vector variant must execute far fewer operations than µSIMD,
	// which must execute far fewer than scalar (Figure 7 of the paper).
	const npix = 256
	var rnd prng = 3
	r, g, bb := rnd.bytes(npix), rnd.bytes(npix), rnd.bytes(npix)
	opsByVariant := map[Variant]int64{}
	for _, v := range allVariants {
		b := ir.NewBuilder("rgb2ycc")
		p := ColorBufs{
			R: b.Data(r), G: b.Data(g), B: b.Data(bb),
			Y: b.Alloc(npix), Cb: b.Alloc(npix), Cr: b.Alloc(npix),
			NPix: npix, AliasRGB: 1, AliasYCC: 2,
		}
		RGB2YCC(b, v, p)
		_, res := execute(t, v, b.Func())
		opsByVariant[v] = res.Ops
	}
	if !(opsByVariant[Vector] < opsByVariant[USIMD] && opsByVariant[USIMD] < opsByVariant[Scalar]) {
		t.Errorf("op counts: scalar=%d usimd=%d vector=%d (must strictly decrease)",
			opsByVariant[Scalar], opsByVariant[USIMD], opsByVariant[Vector])
	}
	if opsByVariant[Scalar] < 3*opsByVariant[USIMD] {
		t.Errorf("µSIMD should pack >= 3x fewer ops: scalar=%d usimd=%d",
			opsByVariant[Scalar], opsByVariant[USIMD])
	}
	if opsByVariant[USIMD] < 8*opsByVariant[Vector] {
		t.Errorf("vector should need >= 8x fewer ops than µSIMD: usimd=%d vector=%d",
			opsByVariant[USIMD], opsByVariant[Vector])
	}
}
