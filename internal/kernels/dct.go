package kernels

import (
	"math"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// An 8x8 int16 block is stored in two-plane layout: words 0..7 hold rows
// 0..7 of columns 0..3, words 8..15 hold rows 0..7 of columns 4..7. This
// makes the column transform a pair of unit-stride vector loads (VL=8) and
// keeps every variant's access pattern cache-friendly.

// BlockBytes is the storage size of one 8x8 int16 block.
const BlockBytes = 128

// BlockIdx returns the element index of (row, col) within a two-plane
// block (16-bit elements).
func BlockIdx(r, c int) int { return ((c>>2)*8+r)*4 + (c & 3) }

// blockOff returns the byte offset of (row, col) within a block.
func blockOff(r, c int) int64 { return int64(BlockIdx(r, c)) * 2 }

// dctBase computes the orthonormal 8-point DCT-II matrix scaled by 256:
// M[u][k] = round(256 * s(u) * cos((2k+1)uπ/16)), s(0)=sqrt(1/8),
// s(u)=1/2. All entries fit in 8 bits, so 16-bit lane products of pass one
// stay within int16 for centered pixel input.
func dctBase() [8][8]int16 {
	var m [8][8]int16
	for u := 0; u < 8; u++ {
		s := 0.5
		if u == 0 {
			s = math.Sqrt(1.0 / 8.0)
		}
		for k := 0; k < 8; k++ {
			m[u][k] = int16(math.Round(256 * s * math.Cos(float64(2*k+1)*float64(u)*math.Pi/16)))
		}
	}
	return m
}

var fdctM = dctBase()
var idctM = transpose(fdctM)

func transpose(m [8][8]int16) [8][8]int16 {
	var t [8][8]int16
	for i := range m {
		for j := range m {
			t[i][j] = m[j][i]
		}
	}
	return t
}

// FDCTMatrix returns the forward-DCT coefficient matrix (Y = M·X·Mᵀ with
// an arithmetic >>8 after each one-dimensional pass).
func FDCTMatrix() *[8][8]int16 { return &fdctM }

// IDCTMatrix returns the inverse-DCT matrix (the transpose), so the same
// two-pass routine computes X = Mᵀ·Y·M.
func IDCTMatrix() *[8][8]int16 { return &idctM }

// DCTAlias groups the memory-disambiguation classes of a DCT invocation.
type DCTAlias struct {
	Src, Dst, Tmp int
}

// DCT2D emits a two-dimensional 8x8 DCT over nblocks consecutive blocks
// (two-plane layout) from src to dst using coefficient matrix m. The same
// builder serves the forward and inverse transforms (pass FDCTMatrix or
// IDCTMatrix). Both passes shift right arithmetically by 8.
func DCT2D(b *ir.Builder, v Variant, m *[8][8]int16, src, dst int64, nblocks int, al DCTAlias) {
	checkMultiple("DCT2D", nblocks, 1)
	switch v {
	case Scalar:
		dctScalar(b, m, src, dst, nblocks, al)
	case USIMD:
		dctUSIMD(b, m, src, dst, nblocks, al)
	default:
		dctVector(b, m, src, dst, nblocks, al)
	}
}

func dctScalar(b *ir.Builder, m *[8][8]int16, src, dst int64, nblocks int, al DCTAlias) {
	tmp := b.Alloc(BlockBytes)
	sp := b.Const(src)
	dp := b.Const(dst)
	tp := b.Const(tmp)
	zero := b.Const(0)
	// oneD emits one 1-D pass: eight dot products per line. Like the fast
	// scalar IDCTs in production codecs, an all-zero input line takes an
	// early exit (bit-exact: its contributions are all zero).
	oneD := func(in, out ir.Reg, inOff, outOff func(a, k int) int64, aliasIn, aliasOut int) {
		for j := 0; j < 8; j++ {
			var line [8]ir.Reg
			for k := 0; k < 8; k++ {
				line[k] = b.Load(isa.LDH, in, inOff(j, k), aliasIn)
			}
			nz := b.Or(line[0], line[1])
			for k := 2; k < 8; k++ {
				nz = b.Or(nz, line[k])
			}
			b.IfElse(isa.BEQ, nz, zero, func() {
				for u := 0; u < 8; u++ {
					b.Store(isa.STH, zero, out, outOff(j, u), aliasOut)
				}
			}, func() {
				for u := 0; u < 8; u++ {
					s := b.MulI(line[0], int64(m[u][0]))
					for k := 1; k < 8; k++ {
						s = b.Add(s, b.MulI(line[k], int64(m[u][k])))
					}
					b.Store(isa.STH, b.SraI(s, 8), out, outOff(j, u), aliasOut)
				}
			})
		}
	}
	b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
		// Pass 1 (columns): T[u][j] = (sum_k M[u][k]*X[k][j]) >> 8.
		oneD(sp, tp,
			func(j, k int) int64 { return blockOff(k, j) },
			func(j, u int) int64 { return blockOff(u, j) },
			al.Src, al.Tmp)
		// Pass 2 (rows): Y[i][v] = (sum_k T[i][k]*M[v][k]) >> 8.
		oneD(tp, dp,
			func(i, k int) int64 { return blockOff(i, k) },
			func(i, v int) int64 { return blockOff(i, v) },
			al.Tmp, al.Dst)
		b.BinITo(isa.ADD, sp, sp, BlockBytes)
		b.BinITo(isa.ADD, dp, dp, BlockBytes)
	})
}

// packWord16 packs four int16 coefficients into a 64-bit immediate.
func packWord16(a, b, c, d int16) int64 {
	return int64(uint64(uint16(a)) | uint64(uint16(b))<<16 |
		uint64(uint16(c))<<32 | uint64(uint16(d))<<48)
}

func dctUSIMD(b *ir.Builder, m *[8][8]int16, src, dst int64, nblocks int, al DCTAlias) {
	tmp := b.Alloc(BlockBytes)
	sp := b.Const(src)
	dp := b.Const(dst)
	tp := b.Const(tmp)

	// Pass-2 coefficient words hoisted out of the block loop:
	// mrow[v][h] = M[v][4h..4h+3] packed.
	var mrow [8][2]ir.Reg
	for v := 0; v < 8; v++ {
		for h := 0; h < 2; h++ {
			r := b.SIMDReg()
			b.Emit(ir.Op{Opcode: isa.MOVIM, Dst: []ir.Reg{r},
				Imm: packWord16(m[v][4*h], m[v][4*h+1], m[v][4*h+2], m[v][4*h+3]), UseImm: true})
			mrow[v][h] = r
		}
	}

	b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
		// Load the block: 16 words (two planes of 8 row-halves).
		var x [16]ir.Reg
		for w := 0; w < 16; w++ {
			x[w] = b.Ldm(sp, int64(8*w), al.Src)
		}
		// Pass 1 (columns), 32-bit accumulation: products via
		// PMULL/PMULH recombined into 32-bit lanes.
		for u := 0; u < 8; u++ {
			var coeff [8]ir.Reg
			for k := 0; k < 8; k++ {
				coeff[k] = b.SIMDReg()
				b.Emit(ir.Op{Opcode: isa.MOVIM, Dst: []ir.Reg{coeff[k]},
					Imm: splatWord16(int64(m[u][k])), UseImm: true})
			}
			for h := 0; h < 2; h++ { // column half (4 columns)
				var acc0, acc1 ir.Reg
				for k := 0; k < 8; k++ {
					xw := x[8*h+k]
					lo := b.P(isa.PMULL, simd.W16, xw, coeff[k])
					hi := b.P(isa.PMULH, simd.W16, xw, coeff[k])
					p0 := b.P(isa.PUNPCKL, simd.W16, lo, hi)
					p1 := b.P(isa.PUNPCKH, simd.W16, lo, hi)
					if k == 0 {
						acc0, acc1 = p0, p1
					} else {
						acc0 = b.P(isa.PADD, simd.W32, acc0, p0)
						acc1 = b.P(isa.PADD, simd.W32, acc1, p1)
					}
				}
				acc0 = b.PShiftI(isa.PSRA, simd.W32, acc0, 8)
				acc1 = b.PShiftI(isa.PSRA, simd.W32, acc1, 8)
				b.Stm(b.P(isa.PACKSS, simd.W32, acc0, acc1), tp, int64(8*(8*h+u)), al.Tmp)
			}
		}
		// Pass 2 (rows), PMADD dot products.
		for i := 0; i < 8; i++ {
			t0 := b.Ldm(tp, int64(8*i), al.Tmp)
			t1 := b.Ldm(tp, int64(8*(8+i)), al.Tmp)
			for v := 0; v < 8; v++ {
				s := b.P(isa.PADD, simd.W32,
					b.P(isa.PMADD, simd.W16, t0, mrow[v][0]),
					b.P(isa.PMADD, simd.W16, t1, mrow[v][1]))
				// Horizontal add of the two 32-bit lanes in scalar code.
				si := b.Movmr(s)
				lo := b.SraI(b.ShlI(si, 32), 32)
				hi := b.SraI(si, 32)
				b.Store(isa.STH, b.SraI(b.Add(lo, hi), 8), dp, blockOff(i, v), al.Dst)
			}
		}
		b.BinITo(isa.ADD, sp, sp, BlockBytes)
		b.BinITo(isa.ADD, dp, dp, BlockBytes)
	})
}

func dctVector(b *ir.Builder, m *[8][8]int16, src, dst int64, nblocks int, al DCTAlias) {
	tmp := b.Alloc(BlockBytes)
	// Splat-coefficient table for pass 1: vector u holds eight words,
	// word k = M[u][k] replicated through four 16-bit lanes.
	splat := make([]int16, 0, 8*8*4)
	for u := 0; u < 8; u++ {
		for k := 0; k < 8; k++ {
			for l := 0; l < 4; l++ {
				splat = append(splat, m[u][k])
			}
		}
	}
	splatAddr := b.DataH(splat)
	// Row table for pass 2: row v as two consecutive words.
	rows := make([]int16, 0, 8*8)
	for v := 0; v < 8; v++ {
		rows = append(rows, m[v][0:4]...)
		rows = append(rows, m[v][4:8]...)
	}
	rowAddr := b.DataH(rows)

	sp := b.Const(src)
	dp := b.Const(dst)
	tp := b.Const(tmp)
	cs := b.Const(splatAddr)
	cr := b.Const(rowAddr)

	// Hoist the pass-2 coefficient rows (VL=2 each).
	b.SetVSI(8)
	b.SetVLI(2)
	var mv [8]ir.Reg
	for v := 0; v < 8; v++ {
		mv[v] = b.Vld(cr, int64(16*v), al.Tmp)
	}

	b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
		// Pass 1: column transform on the two planes.
		b.SetVLI(8)
		colL := b.Vld(sp, 0, al.Src)
		colR := b.Vld(sp, 64, al.Src)
		vtl := b.Vsplat(b.Const(0))
		vtr := b.Vsplat(b.Const(0))
		for u := 0; u < 8; u++ {
			cu := b.Vld(cs, int64(64*u), al.Tmp)
			accL := b.AccReg()
			b.AclrTo(accL)
			b.Vmaca(accL, colL, cu)
			b.Vins(vtl, b.Apack(accL, 8), int64(u))
			accR := b.AccReg()
			b.AclrTo(accR)
			b.Vmaca(accR, colR, cu)
			b.Vins(vtr, b.Apack(accR, 8), int64(u))
		}
		b.Vst(vtl, tp, 0, al.Tmp)
		b.Vst(vtr, tp, 64, al.Tmp)

		// Pass 2: row dot products (VL=2: the two words of a row).
		b.SetVLI(2)
		b.SetVSI(64)
		for i := 0; i < 8; i++ {
			ti := b.Vld(tp, int64(8*i), al.Tmp)
			for v := 0; v < 8; v++ {
				acc := b.AccReg()
				b.AclrTo(acc)
				b.Vmaca(acc, ti, mv[v])
				b.Store(isa.STH, b.SraI(b.Vsum(simd.W16, acc), 8), dp, blockOff(i, v), al.Dst)
			}
		}
		b.SetVSI(8)
		b.BinITo(isa.ADD, sp, sp, BlockBytes)
		b.BinITo(isa.ADD, dp, dp, BlockBytes)
	})
}

// DCT2DRef is the reference two-pass transform over one block in
// two-plane layout.
func DCT2DRef(m *[8][8]int16, src []int16) []int16 {
	var t, out [64]int16
	for u := 0; u < 8; u++ {
		for j := 0; j < 8; j++ {
			s := 0
			for k := 0; k < 8; k++ {
				s += int(m[u][k]) * int(src[BlockIdx(k, j)])
			}
			t[BlockIdx(u, j)] = int16(s >> 8)
		}
	}
	for i := 0; i < 8; i++ {
		for v := 0; v < 8; v++ {
			s := 0
			for k := 0; k < 8; k++ {
				s += int(t[BlockIdx(i, k)]) * int(m[v][k])
			}
			out[BlockIdx(i, v)] = int16(s >> 8)
		}
	}
	return out[:]
}
