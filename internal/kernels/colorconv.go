package kernels

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Fixed-point (7-bit) color-conversion coefficients. They are chosen so
// every 16-bit lane product and sum stays within int16 range, which lets
// the µSIMD and vector variants use PMULL/VMULL directly; the scalar
// variant and the reference use the identical integer arithmetic, so all
// versions are bit-exact.
const (
	cYR, cYG, cYB    = 38, 75, 15
	cCbR, cCbG, cCbB = -22, -42, 64
	cCrR, cCrG, cCrB = 64, -54, -10

	cRCr = 179 // R = Y + (179*(Cr-128))>>7
	cGCb = -44
	cGCr = -91
	cBCb = 226
)

// ColorBufs names the six planar byte buffers of a color conversion.
// In/out roles swap between the two directions.
type ColorBufs struct {
	R, G, B   int64
	Y, Cb, Cr int64
	NPix      int
	// AliasRGB and AliasYCC are the memory-disambiguation classes of the
	// two buffer groups.
	AliasRGB, AliasYCC int
}

// VecPixStep is the pixel granularity of the vector color-conversion
// loops: 16 words of 8 pixels.
const VecPixStep = 16 * 8

// RGB2YCC emits the forward color conversion (the first vector region of
// the JPEG encoder) in the requested variant. NPix must be a multiple of
// 128 (the vector step).
func RGB2YCC(b *ir.Builder, v Variant, p ColorBufs) {
	checkMultiple("RGB2YCC", p.NPix, VecPixStep)
	if v == Scalar {
		rgb2yccScalar(b, p)
		return
	}
	rgb2yccPacked(b, v, p)
}

func rgb2yccScalar(b *ir.Builder, p ColorBufs) {
	rp, gp, bp := b.Const(p.R), b.Const(p.G), b.Const(p.B)
	yp, cbp, crp := b.Const(p.Y), b.Const(p.Cb), b.Const(p.Cr)
	// Unrolled by two for a little ILP, as a VLIW compiler would.
	b.Loop(0, int64(p.NPix), 2, func(ir.Reg) {
		for u := int64(0); u < 2; u++ {
			r := b.Load(isa.LDBU, rp, u, p.AliasRGB)
			g := b.Load(isa.LDBU, gp, u, p.AliasRGB)
			bl := b.Load(isa.LDBU, bp, u, p.AliasRGB)
			y := b.SraI(b.Add(b.Add(b.MulI(r, cYR), b.MulI(g, cYG)), b.MulI(bl, cYB)), 7)
			b.Store(isa.STB, y, yp, u, p.AliasYCC)
			cb := b.AddI(b.SraI(b.Add(b.Add(b.MulI(r, cCbR), b.MulI(g, cCbG)), b.MulI(bl, cCbB)), 7), 128)
			b.Store(isa.STB, cb, cbp, u, p.AliasYCC)
			cr := b.AddI(b.SraI(b.Add(b.Add(b.MulI(r, cCrR), b.MulI(g, cCrG)), b.MulI(bl, cCrB)), 7), 128)
			b.Store(isa.STB, cr, crp, u, p.AliasYCC)
		}
		for _, ptr := range []ir.Reg{rp, gp, bp, yp, cbp, crp} {
			b.BinITo(isa.ADD, ptr, ptr, 2)
		}
	})
}

func rgb2yccPacked(b *ir.Builder, v Variant, p ColorBufs) {
	o := ops{b: b, vec: v == Vector}
	step := int64(8)
	if o.vec {
		b.SetVLI(16)
		b.SetVSI(8)
		step = VecPixStep
	}
	zero := o.zero()
	kYR, kYG, kYB := o.splat16(cYR), o.splat16(cYG), o.splat16(cYB)
	kCbR, kCbG := o.splat16(cCbR), o.splat16(cCbG)
	// cCbB and cCrR are both 64: share one register (the hand-vectorized
	// code must fit the 20-entry vector file of the 2-issue machines).
	k64 := o.splat16(cCbB)
	kCbB, kCrR := k64, k64
	kCrG, kCrB := o.splat16(cCrG), o.splat16(cCrB)
	k128 := o.splat16(128)

	rp, gp, bp := b.Const(p.R), b.Const(p.G), b.Const(p.B)
	yp, cbp, crp := b.Const(p.Y), b.Const(p.Cb), b.Const(p.Cr)

	// component computes pack(((rl*kr + gl*kg + bl*kb) >> 7) + bias).
	component := func(rl, rh, gl, gh, bl, bh ir.Reg, kr, kg, kb ir.Reg, bias ir.Reg) ir.Reg {
		half := func(r, g, bb ir.Reg) ir.Reg {
			s := o.bin(isa.PADD, simd.W16,
				o.bin(isa.PADD, simd.W16,
					o.bin(isa.PMULL, simd.W16, r, kr),
					o.bin(isa.PMULL, simd.W16, g, kg)),
				o.bin(isa.PMULL, simd.W16, bb, kb))
			s = o.shift(isa.PSRA, simd.W16, s, 7)
			if bias.Valid() {
				s = o.bin(isa.PADD, simd.W16, s, bias)
			}
			return s
		}
		return o.bin(isa.PACKUS, simd.W16, half(rl, gl, bl), half(rh, gh, bh))
	}

	b.Loop(0, int64(p.NPix), step, func(ir.Reg) {
		rw := o.load(rp, 0, p.AliasRGB)
		gw := o.load(gp, 0, p.AliasRGB)
		bw := o.load(bp, 0, p.AliasRGB)
		rl := o.bin(isa.PUNPCKL, simd.W8, rw, zero)
		rh := o.bin(isa.PUNPCKH, simd.W8, rw, zero)
		gl := o.bin(isa.PUNPCKL, simd.W8, gw, zero)
		gh := o.bin(isa.PUNPCKH, simd.W8, gw, zero)
		bl := o.bin(isa.PUNPCKL, simd.W8, bw, zero)
		bh := o.bin(isa.PUNPCKH, simd.W8, bw, zero)
		o.store(component(rl, rh, gl, gh, bl, bh, kYR, kYG, kYB, ir.Reg{}), yp, 0, p.AliasYCC)
		o.store(component(rl, rh, gl, gh, bl, bh, kCbR, kCbG, kCbB, k128), cbp, 0, p.AliasYCC)
		o.store(component(rl, rh, gl, gh, bl, bh, kCrR, kCrG, kCrB, k128), crp, 0, p.AliasYCC)
		for _, ptr := range []ir.Reg{rp, gp, bp, yp, cbp, crp} {
			b.BinITo(isa.ADD, ptr, ptr, step)
		}
	})
}

// RGB2YCCRef is the reference forward conversion.
func RGB2YCCRef(r, g, b []byte) (y, cb, cr []byte) {
	n := len(r)
	y, cb, cr = make([]byte, n), make([]byte, n), make([]byte, n)
	for i := 0; i < n; i++ {
		ri, gi, bi := int(r[i]), int(g[i]), int(b[i])
		y[i] = byte((cYR*ri + cYG*gi + cYB*bi) >> 7)
		cb[i] = byte(((cCbR*ri + cCbG*gi + cCbB*bi) >> 7) + 128)
		cr[i] = byte(((cCrR*ri + cCrG*gi + cCrB*bi) >> 7) + 128)
	}
	return y, cb, cr
}

// YCC2RGB emits the inverse color conversion (the first vector region of
// the JPEG decoder) in the requested variant.
func YCC2RGB(b *ir.Builder, v Variant, p ColorBufs) {
	checkMultiple("YCC2RGB", p.NPix, VecPixStep)
	if v == Scalar {
		ycc2rgbScalar(b, p)
		return
	}
	ycc2rgbPacked(b, v, p)
}

func ycc2rgbScalar(b *ir.Builder, p ColorBufs) {
	yp, cbp, crp := b.Const(p.Y), b.Const(p.Cb), b.Const(p.Cr)
	rp, gp, bp := b.Const(p.R), b.Const(p.G), b.Const(p.B)
	zero := b.Const(0)
	max := b.Const(255)
	clamp := func(x ir.Reg) ir.Reg {
		x = b.Select(b.Bin(isa.CMPLT, x, zero), zero, x)
		return b.Select(b.Bin(isa.CMPLT, max, x), max, x)
	}
	b.Loop(0, int64(p.NPix), 2, func(ir.Reg) {
		for u := int64(0); u < 2; u++ {
			y := b.Load(isa.LDBU, yp, u, p.AliasYCC)
			cb := b.SubI(b.Load(isa.LDBU, cbp, u, p.AliasYCC), 128)
			cr := b.SubI(b.Load(isa.LDBU, crp, u, p.AliasYCC), 128)
			r := clamp(b.Add(y, b.SraI(b.MulI(cr, cRCr), 7)))
			g := clamp(b.Add(y, b.SraI(b.Add(b.MulI(cb, cGCb), b.MulI(cr, cGCr)), 7)))
			bl := clamp(b.Add(y, b.SraI(b.MulI(cb, cBCb), 7)))
			b.Store(isa.STB, r, rp, u, p.AliasRGB)
			b.Store(isa.STB, g, gp, u, p.AliasRGB)
			b.Store(isa.STB, bl, bp, u, p.AliasRGB)
		}
		for _, ptr := range []ir.Reg{yp, cbp, crp, rp, gp, bp} {
			b.BinITo(isa.ADD, ptr, ptr, 2)
		}
	})
}

func ycc2rgbPacked(b *ir.Builder, v Variant, p ColorBufs) {
	o := ops{b: b, vec: v == Vector}
	step := int64(8)
	if o.vec {
		b.SetVLI(16)
		b.SetVSI(8)
		step = VecPixStep
	}
	zero := o.zero()
	kRCr := o.splat16(cRCr)
	kGCb, kGCr := o.splat16(cGCb), o.splat16(cGCr)
	kBCb := o.splat16(cBCb)
	k128 := o.splat16(128)

	yp, cbp, crp := b.Const(p.Y), b.Const(p.Cb), b.Const(p.Cr)
	rp, gp, bp := b.Const(p.R), b.Const(p.G), b.Const(p.B)

	b.Loop(0, int64(p.NPix), step, func(ir.Reg) {
		yw := o.load(yp, 0, p.AliasYCC)
		cbw := o.load(cbp, 0, p.AliasYCC)
		crw := o.load(crp, 0, p.AliasYCC)
		yl := o.bin(isa.PUNPCKL, simd.W8, yw, zero)
		yh := o.bin(isa.PUNPCKH, simd.W8, yw, zero)
		cbl := o.bin(isa.PSUB, simd.W16, o.bin(isa.PUNPCKL, simd.W8, cbw, zero), k128)
		cbh := o.bin(isa.PSUB, simd.W16, o.bin(isa.PUNPCKH, simd.W8, cbw, zero), k128)
		crl := o.bin(isa.PSUB, simd.W16, o.bin(isa.PUNPCKL, simd.W8, crw, zero), k128)
		crh := o.bin(isa.PSUB, simd.W16, o.bin(isa.PUNPCKH, simd.W8, crw, zero), k128)

		rlo := o.bin(isa.PADD, simd.W16, yl, o.shift(isa.PSRA, simd.W16, o.bin(isa.PMULL, simd.W16, crl, kRCr), 7))
		rhi := o.bin(isa.PADD, simd.W16, yh, o.shift(isa.PSRA, simd.W16, o.bin(isa.PMULL, simd.W16, crh, kRCr), 7))
		o.store(o.bin(isa.PACKUS, simd.W16, rlo, rhi), rp, 0, p.AliasRGB)

		glo := o.bin(isa.PADD, simd.W16, yl, o.shift(isa.PSRA, simd.W16,
			o.bin(isa.PADD, simd.W16,
				o.bin(isa.PMULL, simd.W16, cbl, kGCb),
				o.bin(isa.PMULL, simd.W16, crl, kGCr)), 7))
		ghi := o.bin(isa.PADD, simd.W16, yh, o.shift(isa.PSRA, simd.W16,
			o.bin(isa.PADD, simd.W16,
				o.bin(isa.PMULL, simd.W16, cbh, kGCb),
				o.bin(isa.PMULL, simd.W16, crh, kGCr)), 7))
		o.store(o.bin(isa.PACKUS, simd.W16, glo, ghi), gp, 0, p.AliasRGB)

		blo := o.bin(isa.PADD, simd.W16, yl, o.shift(isa.PSRA, simd.W16, o.bin(isa.PMULL, simd.W16, cbl, kBCb), 7))
		bhi := o.bin(isa.PADD, simd.W16, yh, o.shift(isa.PSRA, simd.W16, o.bin(isa.PMULL, simd.W16, cbh, kBCb), 7))
		o.store(o.bin(isa.PACKUS, simd.W16, blo, bhi), bp, 0, p.AliasRGB)

		for _, ptr := range []ir.Reg{yp, cbp, crp, rp, gp, bp} {
			b.BinITo(isa.ADD, ptr, ptr, step)
		}
	})
}

// YCC2RGBRef is the reference inverse conversion.
func YCC2RGBRef(y, cb, cr []byte) (r, g, b []byte) {
	n := len(y)
	r, g, b = make([]byte, n), make([]byte, n), make([]byte, n)
	for i := 0; i < n; i++ {
		yi := int(y[i])
		cbi := int(cb[i]) - 128
		cri := int(cr[i]) - 128
		r[i] = clamp255(yi + (cRCr*cri)>>7)
		g[i] = clamp255(yi + (cGCb*cbi+cGCr*cri)>>7)
		b[i] = clamp255(yi + (cBCb*cbi)>>7)
	}
	return r, g, b
}
