package kernels

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// GSM 06.10 kernels: the autocorrelation and long-term-predictor (LTP)
// parameter search of the encoder, and the long-term filtering of the
// decoder (Table 1 of the paper). Samples are int16; products accumulate
// in 32/48-bit precision so every variant computes identical integers.
// Frame and window sizes follow the codec: 160-sample frames, 40-sample
// subframes, lags 40..120.

// GSMFrame is the codec frame length in samples.
const GSMFrame = 160

// GSMSubframe is the subframe length used by the LTP.
const GSMSubframe = 40

// GSMMaxLag and GSMMinLag bound the long-term-predictor lag search.
const (
	GSMMinLag = 40
	GSMMaxLag = 120
)

// horizAdd32 sums the two 32-bit lanes of a packed register into an
// integer register (sign-extending each half).
func horizAdd32(b *ir.Builder, s ir.Reg) ir.Reg {
	si := b.Movmr(s)
	lo := b.SraI(b.ShlI(si, 32), 32)
	hi := b.SraI(si, 32)
	return b.Add(lo, hi)
}

// Autocorr emits acf[k] = sum_{i=k}^{n-1} s[i]*s[i-k] for k = 0..lags-1.
// s holds n int16 samples (|s| < 4096 so 32-bit lane sums cannot wrap);
// out receives lags int64 values.
func Autocorr(b *ir.Builder, v Variant, s, out int64, n, lags int, aliasS, aliasOut int) {
	checkMultiple("Autocorr", n, 40)
	for k := 0; k < lags; k++ {
		var acc ir.Reg
		switch v {
		case Scalar:
			acc = b.Const(0)
			sp := b.Const(s + int64(2*k))
			sk := b.Const(s)
			b.Loop(0, int64(n-k), 1, func(ir.Reg) {
				a := b.Load(isa.LDH, sp, 0, aliasS)
				c := b.Load(isa.LDH, sk, 0, aliasS)
				b.BinTo(isa.ADD, acc, acc, b.Mul(a, c))
				b.BinITo(isa.ADD, sp, sp, 2)
				b.BinITo(isa.ADD, sk, sk, 2)
			})
		case USIMD:
			words := (n - k) / 4
			o := ops{b: b, vec: false}
			accP := o.zero()
			sp := b.Const(s + int64(2*k))
			sk := b.Const(s)
			b.Loop(0, int64(words), 1, func(ir.Reg) {
				a := b.Ldm(sp, 0, aliasS)
				c := b.Ldm(sk, 0, aliasS)
				b.PTo(isa.PADD, simd.W32, accP, accP, b.P(isa.PMADD, simd.W16, a, c))
				b.BinITo(isa.ADD, sp, sp, 8)
				b.BinITo(isa.ADD, sk, sk, 8)
			})
			acc = horizAdd32(b, accP)
			acc = addTailScalar(b, acc, s, n, k, words*4, aliasS)
		default:
			// Vector: full chunks of VL=10 words (40 samples), one
			// partial-VL chunk, then a scalar tail.
			words := (n - k) / 4
			full := words / 10 * 10
			a := b.AccReg()
			b.AclrTo(a)
			sp := b.Const(s + int64(2*k))
			sk := b.Const(s)
			b.SetVSI(8)
			if full > 0 {
				b.SetVLI(10)
				b.Loop(0, int64(full/10), 1, func(ir.Reg) {
					x := b.Vld(sp, 0, aliasS)
					y := b.Vld(sk, 0, aliasS)
					b.Vmaca(a, x, y)
					b.BinITo(isa.ADD, sp, sp, 80)
					b.BinITo(isa.ADD, sk, sk, 80)
				})
			}
			if rem := words - full; rem > 0 {
				b.SetVLI(int64(rem))
				x := b.Vld(sp, 0, aliasS)
				y := b.Vld(sk, 0, aliasS)
				b.Vmaca(a, x, y)
			}
			acc = b.Vsum(simd.W16, a)
			acc = addTailScalar(b, acc, s, n, k, words*4, aliasS)
		}
		b.Store(isa.STD, acc, b.Const(out+int64(8*k)), 0, aliasOut)
	}
}

// addTailScalar adds the last (n-k) mod 4 sample products to acc with
// scalar code (compile-time addresses), so packed variants match the
// scalar sum exactly.
func addTailScalar(b *ir.Builder, acc ir.Reg, s int64, n, k, done int, aliasS int) ir.Reg {
	for i := k + done; i < n; i++ {
		a := b.Load(isa.LDH, b.Const(s+int64(2*i)), 0, aliasS)
		c := b.Load(isa.LDH, b.Const(s+int64(2*(i-k))), 0, aliasS)
		acc = b.Add(acc, b.Mul(a, c))
	}
	return acc
}

// AutocorrRef is the reference autocorrelation.
func AutocorrRef(s []int16, lags int) []int64 {
	out := make([]int64, lags)
	for k := 0; k < lags; k++ {
		var acc int64
		for i := k; i < len(s); i++ {
			acc += int64(s[i]) * int64(s[i-k])
		}
		out[k] = acc
	}
	return out
}

// LTPParams emits the long-term-predictor parameter search: over lags
// 40..120 it cross-correlates the 40-sample subframe d with the 120-sample
// history dp and stores (bestLag, maxCorr) as two int64 values at out.
func LTPParams(b *ir.Builder, v Variant, d, dp, out int64, aliasD, aliasP, aliasOut int) {
	dpEnd := b.Const(dp + 2*GSMMaxLag) // address one past the history
	best := b.Const(-(1 << 62))
	bestLag := b.Const(0)

	track := func(lag, corr ir.Reg) {
		c := b.Bin(isa.CMPLT, best, corr) // strictly greater: first max wins
		b.SelectTo(best, c, corr, best)
		b.SelectTo(bestLag, c, lag, bestLag)
	}

	switch v {
	case Scalar:
		dr := b.Const(d)
		b.Loop(GSMMinLag, GSMMaxLag+1, 1, func(lag ir.Reg) {
			win := b.Sub(dpEnd, b.ShlI(lag, 1))
			acc := b.Const(0)
			wp := b.Mov(win)
			cp := b.Mov(dr)
			b.Loop(0, GSMSubframe, 1, func(ir.Reg) {
				x := b.Load(isa.LDH, cp, 0, aliasD)
				y := b.Load(isa.LDH, wp, 0, aliasP)
				b.BinTo(isa.ADD, acc, acc, b.Mul(x, y))
				b.BinITo(isa.ADD, cp, cp, 2)
				b.BinITo(isa.ADD, wp, wp, 2)
			})
			track(lag, acc)
		})
	case USIMD:
		o := ops{b: b, vec: false}
		// Hoist the ten subframe words.
		var dw [10]ir.Reg
		dr := b.Const(d)
		for w := 0; w < 10; w++ {
			dw[w] = b.Ldm(dr, int64(8*w), aliasD)
		}
		b.Loop(GSMMinLag, GSMMaxLag+1, 1, func(lag ir.Reg) {
			win := b.Sub(dpEnd, b.ShlI(lag, 1))
			accP := o.zero()
			for w := 0; w < 10; w++ {
				y := b.Ldm(win, int64(8*w), aliasP)
				b.PTo(isa.PADD, simd.W32, accP, accP, b.P(isa.PMADD, simd.W16, dw[w], y))
			}
			track(lag, horizAdd32(b, accP))
		})
	default:
		b.SetVLI(10)
		b.SetVSI(8)
		dv := b.Vld(b.Const(d), 0, aliasD)
		b.Loop(GSMMinLag, GSMMaxLag+1, 1, func(lag ir.Reg) {
			win := b.Sub(dpEnd, b.ShlI(lag, 1))
			wv := b.Vld(win, 0, aliasP)
			a := b.AccReg()
			b.AclrTo(a)
			b.Vmaca(a, dv, wv)
			track(lag, b.Vsum(simd.W16, a))
		})
	}
	op := b.Const(out)
	b.Store(isa.STD, bestLag, op, 0, aliasOut)
	b.Store(isa.STD, best, op, 8, aliasOut)
}

// LTPParamsRef is the reference LTP search.
func LTPParamsRef(d, dp []int16) (bestLag int64, maxCorr int64) {
	maxCorr = -(1 << 62)
	for lag := GSMMinLag; lag <= GSMMaxLag; lag++ {
		var acc int64
		for i := 0; i < GSMSubframe; i++ {
			acc += int64(d[i]) * int64(dp[GSMMaxLag-lag+i])
		}
		if acc > maxCorr {
			maxCorr, bestLag = acc, int64(lag)
		}
	}
	return bestLag, maxCorr
}

// LongTermFilter emits the decoder's long-term filtering: for one
// 40-sample subframe, out[n] = erp[n] + (gain*hist[120-lag+n])>>16, where
// lag and gain are decoded parameters loaded from params (two int64
// values: lag, gain with gain in Q16 0..65535 but < 32768). hist holds
// 120 int16 samples; out receives 40 int16 samples.
func LongTermFilter(b *ir.Builder, v Variant, erp, hist, params, out int64, aliasE, aliasH, aliasOut int) {
	pp := b.Const(params)
	lag := b.Load(isa.LDD, pp, 0, aliasH)
	gain := b.Load(isa.LDD, pp, 8, aliasH)
	histEnd := b.Const(hist + 2*GSMMaxLag)
	win := b.Sub(histEnd, b.ShlI(lag, 1))
	switch v {
	case Scalar:
		ep := b.Const(erp)
		op := b.Const(out)
		wp := b.Mov(win)
		b.Loop(0, GSMSubframe, 1, func(ir.Reg) {
			e := b.Load(isa.LDH, ep, 0, aliasE)
			h := b.Load(isa.LDH, wp, 0, aliasH)
			t := b.SraI(b.Mul(h, gain), 16)
			b.Store(isa.STH, b.Add(e, t), op, 0, aliasOut)
			b.BinITo(isa.ADD, ep, ep, 2)
			b.BinITo(isa.ADD, wp, wp, 2)
			b.BinITo(isa.ADD, op, op, 2)
		})
	case USIMD:
		g2 := b.Or(gain, b.ShlI(gain, 16))
		g4 := b.Or(g2, b.ShlI(g2, 32))
		gw := b.Movrm(g4)
		ep := b.Const(erp)
		op := b.Const(out)
		wp := b.Mov(win)
		b.Loop(0, GSMSubframe, 4, func(ir.Reg) {
			e := b.Ldm(ep, 0, aliasE)
			h := b.Ldm(wp, 0, aliasH)
			t := b.P(isa.PMULH, simd.W16, h, gw)
			b.Stm(b.P(isa.PADDS, simd.W16, e, t), op, 0, aliasOut)
			b.BinITo(isa.ADD, ep, ep, 8)
			b.BinITo(isa.ADD, wp, wp, 8)
			b.BinITo(isa.ADD, op, op, 8)
		})
	default:
		g2 := b.Or(gain, b.ShlI(gain, 16))
		g4 := b.Or(g2, b.ShlI(g2, 32))
		gv := b.Vsplat(g4)
		b.SetVLI(10)
		b.SetVSI(8)
		e := b.Vld(b.Const(erp), 0, aliasE)
		h := b.Vld(win, 0, aliasH)
		t := b.V(isa.VMULH, simd.W16, h, gv)
		b.Vst(b.V(isa.VADDS, simd.W16, e, t), b.Const(out), 0, aliasOut)
	}
}

// LongTermFilterRef is the reference long-term filter. gain is Q16
// (0 <= gain < 32768); values are small enough that the saturating packed
// adds never clip, so plain addition matches.
func LongTermFilterRef(erp, hist []int16, lag int, gain int64) []int16 {
	out := make([]int16, GSMSubframe)
	for n := 0; n < GSMSubframe; n++ {
		t := (int64(hist[GSMMaxLag-lag+n]) * gain) >> 16
		out[n] = int16(int64(erp[n]) + t)
	}
	return out
}
