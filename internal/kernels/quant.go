package kernels

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Quantization divides each DCT coefficient by a per-position step. As in
// production JPEG/MPEG encoders, the division is replaced by a multiply
// with a precomputed reciprocal: q = (x * recip) >> 16, with
// recip = 65536/step (int16). All variants use the identical arithmetic
// (PMULH/VMULH is exactly a 16x16 multiply keeping the high half).

// JPEGLumaQuant is the ISO JPEG Annex K luminance quantization table
// (row-major).
var JPEGLumaQuant = [64]int16{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// QuantRecip converts a row-major quantization table into the reciprocal
// array in two-plane block layout, matching the DCT output layout.
func QuantRecip(table *[64]int16) []int16 {
	out := make([]int16, 64)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			out[BlockIdx(r, c)] = int16(65536 / int32(table[8*r+c]))
		}
	}
	return out
}

// Quantize emits q[i] = (x[i]*recip[i])>>16 over nblocks blocks in
// two-plane layout. The reciprocal table is embedded in the data segment.
func Quantize(b *ir.Builder, v Variant, recip []int16, src, dst int64, nblocks int, aliasSrc, aliasDst int) {
	checkMultiple("Quantize", nblocks, 1)
	rAddr := b.DataH(recip)
	sp := b.Const(src)
	dp := b.Const(dst)
	switch v {
	case Scalar:
		rp := b.Const(rAddr)
		b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
			for i := 0; i < 64; i++ {
				x := b.Load(isa.LDH, sp, int64(2*i), aliasSrc)
				r := b.Load(isa.LDH, rp, int64(2*i), aliasSrc)
				b.Store(isa.STH, b.SraI(b.Mul(x, r), 16), dp, int64(2*i), aliasDst)
			}
			b.BinITo(isa.ADD, sp, sp, BlockBytes)
			b.BinITo(isa.ADD, dp, dp, BlockBytes)
		})
	case USIMD:
		rp := b.Const(rAddr)
		var rw [16]ir.Reg
		for w := 0; w < 16; w++ {
			rw[w] = b.Ldm(rp, int64(8*w), aliasSrc)
		}
		b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
			for w := 0; w < 16; w++ {
				x := b.Ldm(sp, int64(8*w), aliasSrc)
				b.Stm(b.P(isa.PMULH, simd.W16, x, rw[w]), dp, int64(8*w), aliasDst)
			}
			b.BinITo(isa.ADD, sp, sp, BlockBytes)
			b.BinITo(isa.ADD, dp, dp, BlockBytes)
		})
	default:
		b.SetVLI(16)
		b.SetVSI(8)
		rv := b.Vld(b.Const(rAddr), 0, aliasSrc)
		b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
			x := b.Vld(sp, 0, aliasSrc)
			b.Vst(b.V(isa.VMULH, simd.W16, x, rv), dp, 0, aliasDst)
			b.BinITo(isa.ADD, sp, sp, BlockBytes)
			b.BinITo(isa.ADD, dp, dp, BlockBytes)
		})
	}
}

// QuantizeRef is the reference quantizer over one block.
func QuantizeRef(recip, src []int16) []int16 {
	out := make([]int16, 64)
	for i := range out {
		out[i] = int16((int32(src[i]) * int32(recip[i])) >> 16)
	}
	return out
}
