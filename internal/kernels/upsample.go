package kernels

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// H2V2Upsample doubles a chroma plane in both dimensions (the h2v2
// up-sampling of the JPEG decoder): every input pixel becomes a 2x2
// output square. src is cw x ch bytes; dst is 2cw x 2ch bytes.
//
// The µSIMD and vector variants double horizontally with a self-unpack
// (unpack(x, x) yields x0,x0,x1,x1,...) and vertically by storing the
// doubled row twice.
func H2V2Upsample(b *ir.Builder, v Variant, src, dst int64, cw, ch int, aliasSrc, aliasDst int) {
	checkMultiple("H2V2Upsample width", cw, 8)
	checkMultiple("H2V2Upsample height", ch, 1)
	ow := int64(2 * cw)
	switch v {
	case Scalar:
		sp := b.Const(src)
		d0 := b.Const(dst)      // even output row
		d1 := b.Const(dst + ow) // odd output row
		b.Loop(0, int64(ch), 1, func(ir.Reg) {
			b.Loop(0, int64(cw), 1, func(ir.Reg) {
				px := b.Load(isa.LDBU, sp, 0, aliasSrc)
				b.Store(isa.STB, px, d0, 0, aliasDst)
				b.Store(isa.STB, px, d0, 1, aliasDst)
				b.Store(isa.STB, px, d1, 0, aliasDst)
				b.Store(isa.STB, px, d1, 1, aliasDst)
				b.BinITo(isa.ADD, sp, sp, 1)
				b.BinITo(isa.ADD, d0, d0, 2)
				b.BinITo(isa.ADD, d1, d1, 2)
			})
			// Skip the odd output row already written.
			b.BinITo(isa.ADD, d0, d0, ow)
			b.BinITo(isa.ADD, d1, d1, ow)
		})
	case USIMD:
		sp := b.Const(src)
		d0 := b.Const(dst)
		d1 := b.Const(dst + ow)
		b.Loop(0, int64(ch), 1, func(ir.Reg) {
			b.Loop(0, int64(cw), 8, func(ir.Reg) {
				x := b.Ldm(sp, 0, aliasSrc)
				lo := b.P(isa.PUNPCKL, simd.W8, x, x)
				hi := b.P(isa.PUNPCKH, simd.W8, x, x)
				b.Stm(lo, d0, 0, aliasDst)
				b.Stm(hi, d0, 8, aliasDst)
				b.Stm(lo, d1, 0, aliasDst)
				b.Stm(hi, d1, 8, aliasDst)
				b.BinITo(isa.ADD, sp, sp, 8)
				b.BinITo(isa.ADD, d0, d0, 16)
				b.BinITo(isa.ADD, d1, d1, 16)
			})
			b.BinITo(isa.ADD, d0, d0, ow)
			b.BinITo(isa.ADD, d1, d1, ow)
		})
	default:
		// One vector load covers a whole chroma row (VL = cw/8 words,
		// clamped to the architectural maximum).
		vl := cw / 8
		if vl > isa.MaxVL {
			panic("kernels: H2V2Upsample vector variant requires cw <= 128")
		}
		b.SetVLI(int64(vl))
		sp := b.Const(src)
		d0 := b.Const(dst)
		d1 := b.Const(dst + ow)
		b.Loop(0, int64(ch), 1, func(ir.Reg) {
			b.SetVSI(8)
			x := b.Vld(sp, 0, aliasSrc)
			lo := b.V(isa.VUNPCKL, simd.W8, x, x)
			hi := b.V(isa.VUNPCKH, simd.W8, x, x)
			// Doubled row interleaves lo_i, hi_i word pairs: stride-16
			// stores place them correctly.
			b.SetVSI(16)
			b.Vst(lo, d0, 0, aliasDst)
			b.Vst(hi, d0, 8, aliasDst)
			b.Vst(lo, d1, 0, aliasDst)
			b.Vst(hi, d1, 8, aliasDst)
			b.BinITo(isa.ADD, sp, sp, int64(cw))
			b.BinITo(isa.ADD, d0, d0, 2*ow)
			b.BinITo(isa.ADD, d1, d1, 2*ow)
		})
		b.SetVSI(8)
	}
}

// H2V2UpsampleRef is the reference up-sampler.
func H2V2UpsampleRef(src []byte, cw, ch int) []byte {
	out := make([]byte, 4*cw*ch)
	ow := 2 * cw
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			p := src[y*cw+x]
			out[(2*y)*ow+2*x] = p
			out[(2*y)*ow+2*x+1] = p
			out[(2*y+1)*ow+2*x] = p
			out[(2*y+1)*ow+2*x+1] = p
		}
	}
	return out
}
