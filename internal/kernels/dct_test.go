package kernels

import (
	"encoding/binary"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/sim"
)

// blocksToBytes serializes int16 blocks little-endian.
func blocksToBytes(blocks [][]int16) []byte {
	out := make([]byte, 0, len(blocks)*BlockBytes)
	for _, blk := range blocks {
		for _, v := range blk {
			out = binary.LittleEndian.AppendUint16(out, uint16(v))
		}
	}
	return out
}

func bytesToBlock(raw []byte) []int16 {
	out := make([]int16, 64)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(raw[2*i:]))
	}
	return out
}

// randBlocks generates n centered-pixel test blocks.
func randBlocks(seed prng, n int, lim int32) [][]int16 {
	rnd := seed
	blocks := make([][]int16, n)
	for i := range blocks {
		blocks[i] = rnd.int16s(64, lim)
	}
	return blocks
}

func readBlocks(t *testing.T, m *sim.Machine, addr int64, n int) [][]int16 {
	t.Helper()
	out := make([][]int16, n)
	for i := range out {
		raw := readBuf(t, m, addr+int64(i*BlockBytes), BlockBytes)
		out[i] = bytesToBlock(raw)
	}
	return out
}

func TestBlockIdxCoversBlock(t *testing.T) {
	seen := make(map[int]bool)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			i := BlockIdx(r, c)
			if i < 0 || i >= 64 {
				t.Fatalf("BlockIdx(%d,%d) = %d", r, c, i)
			}
			if seen[i] {
				t.Fatalf("BlockIdx collision at (%d,%d)", r, c)
			}
			seen[i] = true
		}
	}
}

func TestDCTMatrixProperties(t *testing.T) {
	m := FDCTMatrix()
	// DC row: all entries equal (constant basis).
	for k := 1; k < 8; k++ {
		if m[0][k] != m[0][0] {
			t.Errorf("DC row not constant: %v", m[0])
		}
	}
	// Near-orthogonality: M·Mᵀ ≈ 256²/256... rows have squared norm ~2^16
	// scaled; check rows are pairwise near-orthogonal.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			s := 0
			for k := 0; k < 8; k++ {
				s += int(m[u][k]) * int(m[v][k])
			}
			if u == v {
				if s < 60000 || s > 70000 {
					t.Errorf("row %d squared norm %d out of range", u, s)
				}
			} else if s > 600 || s < -600 {
				t.Errorf("rows %d,%d not orthogonal: %d", u, v, s)
			}
		}
	}
	// IDCT matrix is the transpose.
	im := IDCTMatrix()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if im[i][j] != m[j][i] {
				t.Fatal("IDCTMatrix is not the transpose")
			}
		}
	}
}

func TestDCTRefRoundTrip(t *testing.T) {
	// IDCT(FDCT(x)) must reconstruct x within fixed-point error.
	blocks := randBlocks(42, 4, 256) // centered pixels -128..127
	for _, blk := range blocks {
		f := DCT2DRef(FDCTMatrix(), blk)
		r := DCT2DRef(IDCTMatrix(), f)
		for i := range blk {
			d := int(blk[i]) - int(r[i])
			if d < 0 {
				d = -d
			}
			if d > 16 {
				t.Fatalf("round-trip error %d at %d (orig %d, got %d)", d, i, blk[i], r[i])
			}
		}
	}
}

func TestDCTRefEnergyCompaction(t *testing.T) {
	// A constant block transforms to (almost) pure DC.
	blk := make([]int16, 64)
	for i := range blk {
		blk[i] = 100
	}
	f := DCT2DRef(FDCTMatrix(), blk)
	dc := f[BlockIdx(0, 0)]
	if dc < 700 || dc > 900 { // 100*8*(91/256)^2*... ≈ 100*8*0.126 ≈ 790
		t.Errorf("DC = %d, expected ~790", dc)
	}
	var ac int
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if r == 0 && c == 0 {
				continue
			}
			v := int(f[BlockIdx(r, c)])
			if v < 0 {
				v = -v
			}
			ac += v
		}
	}
	if ac > 64 {
		t.Errorf("AC energy %d too high for a constant block", ac)
	}
}

func TestFDCTAllVariantsMatchRef(t *testing.T) {
	const nblocks = 3
	blocks := randBlocks(7, nblocks, 256)
	want := make([][]int16, nblocks)
	for i, blk := range blocks {
		want[i] = DCT2DRef(FDCTMatrix(), blk)
	}
	for _, v := range allVariants {
		b := ir.NewBuilder("fdct")
		src := b.Data(blocksToBytes(blocks))
		dst := b.Alloc(int64(nblocks * BlockBytes))
		DCT2D(b, v, FDCTMatrix(), src, dst, nblocks, DCTAlias{Src: 1, Dst: 2, Tmp: 3})
		m, _ := execute(t, v, b.Func())
		got := readBlocks(t, m, dst, nblocks)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%v: block %d elem %d = %d, want %d", v, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestIDCTAllVariantsMatchRef(t *testing.T) {
	const nblocks = 2
	// IDCT input: quantized-DCT-like coefficients (larger range).
	blocks := randBlocks(19, nblocks, 1200)
	want := make([][]int16, nblocks)
	for i, blk := range blocks {
		want[i] = DCT2DRef(IDCTMatrix(), blk)
	}
	for _, v := range allVariants {
		b := ir.NewBuilder("idct")
		src := b.Data(blocksToBytes(blocks))
		dst := b.Alloc(int64(nblocks * BlockBytes))
		DCT2D(b, v, IDCTMatrix(), src, dst, nblocks, DCTAlias{Src: 1, Dst: 2, Tmp: 3})
		m, _ := execute(t, v, b.Func())
		got := readBlocks(t, m, dst, nblocks)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%v: block %d elem %d = %d, want %d", v, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestDCTOpCountsDecrease(t *testing.T) {
	const nblocks = 2
	blocks := randBlocks(3, nblocks, 256)
	counts := map[Variant]int64{}
	for _, v := range allVariants {
		b := ir.NewBuilder("fdct")
		src := b.Data(blocksToBytes(blocks))
		dst := b.Alloc(int64(nblocks * BlockBytes))
		DCT2D(b, v, FDCTMatrix(), src, dst, nblocks, DCTAlias{Src: 1, Dst: 2, Tmp: 3})
		_, res := execute(t, v, b.Func())
		counts[v] = res.Ops
	}
	if !(counts[Vector] < counts[USIMD] && counts[USIMD] < counts[Scalar]) {
		t.Errorf("DCT ops: scalar=%d usimd=%d vector=%d (must strictly decrease)",
			counts[Scalar], counts[USIMD], counts[Vector])
	}
}
