package kernels

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vsimdvliw/internal/ir"
)

func TestQuantizeAllVariants(t *testing.T) {
	const nblocks = 3
	recip := QuantRecip(&JPEGLumaQuant)
	blocks := randBlocks(77, nblocks, 4000)
	want := make([][]int16, nblocks)
	for i := range blocks {
		want[i] = QuantizeRef(recip, blocks[i])
	}
	for _, v := range allVariants {
		b := ir.NewBuilder("quant")
		src := b.Data(blocksToBytes(blocks))
		dst := b.Alloc(nblocks * BlockBytes)
		Quantize(b, v, recip, src, dst, nblocks, 1, 2)
		m, _ := execute(t, v, b.Func())
		got := readBlocks(t, m, dst, nblocks)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%v: block %d elem %d = %d, want %d", v, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestQuantRecipLayout(t *testing.T) {
	recip := QuantRecip(&JPEGLumaQuant)
	// Element (0,0): step 16 -> recip 4096; check the plane layout.
	if recip[BlockIdx(0, 0)] != 4096 {
		t.Errorf("recip(0,0) = %d, want 4096", recip[BlockIdx(0, 0)])
	}
	if recip[BlockIdx(7, 7)] != int16(65536/99) {
		t.Errorf("recip(7,7) = %d", recip[BlockIdx(7, 7)])
	}
}

func TestQuantizeReducesMagnitude(t *testing.T) {
	recip := QuantRecip(&JPEGLumaQuant)
	blk := randBlocks(5, 1, 4000)[0]
	q := QuantizeRef(recip, blk)
	for i := range q {
		if abs16(q[i]) > abs16(blk[i]) {
			t.Fatalf("quantization increased magnitude at %d: %d -> %d", i, blk[i], q[i])
		}
	}
}

func abs16(v int16) int16 {
	if v < 0 {
		return -v
	}
	return v
}

func TestH2V2UpsampleAllVariants(t *testing.T) {
	const cw, ch = 64, 6
	var rnd prng = 31
	src := rnd.bytes(cw * ch)
	want := H2V2UpsampleRef(src, cw, ch)
	for _, v := range allVariants {
		b := ir.NewBuilder("h2v2")
		sa := b.Data(src)
		da := b.Alloc(int64(len(want)))
		H2V2Upsample(b, v, sa, da, cw, ch, 1, 2)
		m, _ := execute(t, v, b.Func())
		if got := readBuf(t, m, da, len(want)); !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: first mismatch at %d: got %d want %d", v, i, got[i], want[i])
				}
			}
		}
	}
}

// meFrame builds a synthetic frame pair where each macroblock of cur is a
// shifted copy of ref plus noise, so motion search has real structure.
func meFrame(w, h int) (cur, ref []byte) {
	var rnd prng = 2024
	ref = rnd.bytes(w * h)
	cur = make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sy, sx := y+2, x-3 // global motion (-3, +2)
			if sy < 0 || sy >= h || sx < 0 || sx >= w {
				sy, sx = y, x
			}
			cur[y*w+x] = ref[sy*w+sx]
		}
	}
	return cur, ref
}

func TestMotionEstimateAllVariants(t *testing.T) {
	const w, h, r = 64, 48, 4
	cur, ref := meFrame(w, h)
	mbs := []MBOrigin{{X: 8, Y: 8}, {X: 24, Y: 8}, {X: 8, Y: 24}}
	want := MotionEstimateRef(cur, ref, w, mbs, r)
	for _, v := range allVariants {
		b := ir.NewBuilder("me")
		p := MEParams{
			Cur: b.Data(cur), Ref: b.Data(ref), MV: b.Alloc(int64(24 * len(mbs))),
			W: w, H: h, MBs: mbs, R: r,
			AliasCur: 1, AliasRef: 2, AliasMV: 3,
		}
		MotionEstimate(b, v, p)
		m, _ := execute(t, v, b.Func())
		for i := range mbs {
			raw := readBuf(t, m, p.MV+int64(24*i), 24)
			dx := int64(binary.LittleEndian.Uint64(raw[0:]))
			dy := int64(binary.LittleEndian.Uint64(raw[8:]))
			sad := int64(binary.LittleEndian.Uint64(raw[16:]))
			if dx != want[i][0] || dy != want[i][1] || sad != want[i][2] {
				t.Fatalf("%v: MB %d = (%d,%d,%d), want (%d,%d,%d)",
					v, i, dx, dy, sad, want[i][0], want[i][1], want[i][2])
			}
		}
	}
}

func TestMotionEstimateFindsGlobalMotion(t *testing.T) {
	const w, h, r = 64, 48, 4
	cur, ref := meFrame(w, h)
	mbs := []MBOrigin{{X: 16, Y: 16}}
	mv := MotionEstimateRef(cur, ref, w, mbs, r)
	if mv[0][0] != -3 || mv[0][1] != 2 {
		t.Errorf("reference search found (%d,%d), want (-3,2)", mv[0][0], mv[0][1])
	}
	if mv[0][2] != 0 {
		t.Errorf("SAD at true motion = %d, want 0 (exact copy)", mv[0][2])
	}
}

func TestMotionEstimateMarginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected margin panic")
		}
	}()
	b := ir.NewBuilder("bad")
	MotionEstimate(b, Scalar, MEParams{
		W: 64, H: 48, R: 8, MBs: []MBOrigin{{X: 0, Y: 0}},
	})
}

func TestFormPredAllVariants(t *testing.T) {
	const w, h = 64, 48
	var rnd prng = 555
	refPlane := rnd.bytes(w * h)
	mv := [][3]int64{{-2, 1, 0}, {3, -2, 0}}
	blocks := []MCBlock{{X: 16, Y: 16, MVIdx: 0}, {X: 24, Y: 16, MVIdx: 1}, {X: 16, Y: 24, MVIdx: 0}}
	for _, avg := range []bool{false, true} {
		want := FormPredRef(refPlane, w, mv, blocks, avg)
		for _, v := range allVariants {
			b := ir.NewBuilder("formpred")
			mvBytes := make([]byte, 0, 24*len(mv))
			for _, e := range mv {
				for _, x := range e {
					mvBytes = binary.LittleEndian.AppendUint64(mvBytes, uint64(x))
				}
			}
			p := MCParams{
				Ref: b.Data(refPlane), MV: b.Data(mvBytes),
				Pred: b.Alloc(int64(64 * len(blocks))),
				W:    w, Avg: avg, Blocks: blocks,
				AliasRef: 1, AliasMV: 2, AliasPred: 3,
			}
			FormPred(b, v, p)
			m, _ := execute(t, v, b.Func())
			if got := readBuf(t, m, p.Pred, len(want)); !bytes.Equal(got, want) {
				t.Fatalf("%v (avg=%v): prediction mismatch", v, avg)
			}
		}
	}
}

func TestAddBlockAllVariants(t *testing.T) {
	const nblocks = 3
	var rnd prng = 91
	pred := rnd.bytes(64 * nblocks)
	resBlocks := randBlocks(17, nblocks, 512)
	want := make([]byte, 0, 64*nblocks)
	for i := 0; i < nblocks; i++ {
		want = append(want, AddBlockRef(pred[64*i:64*i+64], resBlocks[i])...)
	}
	for _, v := range allVariants {
		b := ir.NewBuilder("addblock")
		pa := b.Data(pred)
		ra := b.Data(blocksToBytes(resBlocks))
		oa := b.Alloc(64 * nblocks)
		AddBlock(b, v, pa, ra, oa, nblocks, 1, 2, 3)
		m, _ := execute(t, v, b.Func())
		if got := readBuf(t, m, oa, len(want)); !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: first mismatch at %d: got %d want %d", v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAutocorrAllVariants(t *testing.T) {
	const n, lags = GSMFrame, 9
	var rnd prng = 4242
	s := rnd.int16s(n, 4096)
	want := AutocorrRef(s, lags)
	for _, v := range allVariants {
		b := ir.NewBuilder("autocorr")
		sa := b.DataH(s)
		oa := b.Alloc(8 * lags)
		Autocorr(b, v, sa, oa, n, lags, 1, 2)
		m, _ := execute(t, v, b.Func())
		for k := 0; k < lags; k++ {
			raw := readBuf(t, m, oa+int64(8*k), 8)
			if got := int64(binary.LittleEndian.Uint64(raw)); got != want[k] {
				t.Fatalf("%v: acf[%d] = %d, want %d", v, k, got, want[k])
			}
		}
	}
}

func TestAutocorrZeroLagIsEnergy(t *testing.T) {
	s := []int16{3, -4, 5, 0, 1, 2, -2, 1}
	padded := make([]int16, 40)
	copy(padded, s)
	acf := AutocorrRef(padded, 1)
	var want int64
	for _, v := range padded {
		want += int64(v) * int64(v)
	}
	if acf[0] != want {
		t.Errorf("acf[0] = %d, want %d", acf[0], want)
	}
}

func TestLTPParamsAllVariants(t *testing.T) {
	var rnd prng = 31337
	d := rnd.int16s(GSMSubframe, 4096)
	dp := rnd.int16s(GSMMaxLag, 4096)
	// Plant a strong correlation at lag 77.
	for i := 0; i < GSMSubframe; i++ {
		idx := GSMMaxLag - 77 + i
		if idx < GSMMaxLag {
			dp[idx] = d[i]
		}
	}
	wantLag, wantCorr := LTPParamsRef(d, dp)
	if wantLag != 77 {
		t.Fatalf("reference missed the planted lag: got %d", wantLag)
	}
	for _, v := range allVariants {
		b := ir.NewBuilder("ltp")
		da := b.DataH(d)
		pa := b.DataH(dp)
		oa := b.Alloc(16)
		LTPParams(b, v, da, pa, oa, 1, 2, 3)
		m, _ := execute(t, v, b.Func())
		raw := readBuf(t, m, oa, 16)
		lag := int64(binary.LittleEndian.Uint64(raw[0:]))
		corr := int64(binary.LittleEndian.Uint64(raw[8:]))
		if lag != wantLag || corr != wantCorr {
			t.Fatalf("%v: (lag,corr) = (%d,%d), want (%d,%d)", v, lag, corr, wantLag, wantCorr)
		}
	}
}

func TestLongTermFilterAllVariants(t *testing.T) {
	var rnd prng = 606
	erp := rnd.int16s(GSMSubframe, 4096)
	hist := rnd.int16s(GSMMaxLag, 4096)
	lag, gain := 64, int64(22000) // gain ~0.336 in Q16
	want := LongTermFilterRef(erp, hist, lag, gain)
	for _, v := range allVariants {
		b := ir.NewBuilder("longterm")
		ea := b.DataH(erp)
		ha := b.DataH(hist)
		params := make([]byte, 16)
		binary.LittleEndian.PutUint64(params[0:], uint64(lag))
		binary.LittleEndian.PutUint64(params[8:], uint64(gain))
		pa := b.Data(params)
		oa := b.Alloc(2 * GSMSubframe)
		LongTermFilter(b, v, ea, ha, pa, oa, 1, 2, 3)
		m, _ := execute(t, v, b.Func())
		raw := readBuf(t, m, oa, 2*GSMSubframe)
		for i := 0; i < GSMSubframe; i++ {
			if got := int16(binary.LittleEndian.Uint16(raw[2*i:])); got != want[i] {
				t.Fatalf("%v: sample %d = %d, want %d", v, i, got, want[i])
			}
		}
	}
}

func TestBlockifyAllVariants(t *testing.T) {
	const w, bx, by = 48, 4, 3
	var rnd prng = 808
	plane := rnd.bytes(w * 8 * by)
	want := BlockifyRef(plane, w, bx, by)
	for _, v := range allVariants {
		b := ir.NewBuilder("blockify")
		pa := b.Data(plane)
		ba := b.Alloc(int64(bx * by * BlockBytes))
		Blockify(b, v, pa, ba, w, bx, by, 1, 2)
		m, _ := execute(t, v, b.Func())
		got := readBlocks(t, m, ba, bx*by)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%v: block %d elem %d = %d, want %d", v, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestBlockifyRoundTripsWithBlockIdx(t *testing.T) {
	// BlockifyRef followed by reading through BlockIdx reproduces the tile.
	var rnd prng = 4
	plane := rnd.bytes(16 * 8)
	blocks := BlockifyRef(plane, 16, 2, 1)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if got := blocks[1][BlockIdx(r, c)]; got != int16(plane[r*16+8+c])-128 {
				t.Fatalf("(%d,%d): got %d", r, c, got)
			}
		}
	}
}
