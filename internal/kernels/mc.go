package kernels

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Motion-compensation kernels of the MPEG2 decoder: form-component
// prediction (fetch the predicted 8x8 block from the reference frame at
// the decoded motion vector, optionally averaging two predictions) and
// add-block (add the IDCT residual to the prediction and clamp to pixel
// range). Both operate on 8x8 blocks: a block of bytes is eight
// 64-bit words (one per row), the residual is an int16 block in two-plane
// layout (the IDCT output layout).

// MCBlock describes one predicted block: its origin in the target frame
// and the index of the motion vector (in the MV array) it uses.
type MCBlock struct {
	X, Y  int
	MVIdx int
}

// MCParams describes a form-component-prediction invocation.
type MCParams struct {
	Ref  int64 // reference frame plane, W x H bytes
	MV   int64 // motion vectors: per entry three int64 (dx, dy, sad)
	Pred int64 // output: len(Blocks) x 64 bytes, block-sequential
	W    int
	// Avg selects the averaging prediction (two reference fetches offset
	// by one pixel, rounded average), modeling half-pel/bidirectional
	// modes.
	Avg                          bool
	Blocks                       []MCBlock
	AliasRef, AliasMV, AliasPred int
}

// FormPred emits the form-component-prediction kernel.
func FormPred(b *ir.Builder, v Variant, p MCParams) {
	if v == Vector {
		b.SetVLI(8)
		b.SetVS(b.Const(int64(p.W))) // row-strided fetches
	}
	for i, blk := range p.Blocks {
		// addr = Ref + (Y+dy)*W + X+dx, with dx,dy loaded at run time.
		mvp := b.Const(p.MV + int64(24*blk.MVIdx))
		dx := b.Load(isa.LDD, mvp, 0, p.AliasMV)
		dy := b.Load(isa.LDD, mvp, 8, p.AliasMV)
		base := b.Add(b.Const(p.Ref+int64(blk.Y*p.W+blk.X)),
			b.Add(b.MulI(dy, int64(p.W)), dx))
		out := b.Const(p.Pred + int64(64*i))
		switch v {
		case Scalar:
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					off := int64(r*p.W + c)
					px := b.Load(isa.LDBU, base, off, p.AliasRef)
					if p.Avg {
						px2 := b.Load(isa.LDBU, base, off+1, p.AliasRef)
						px = b.ShrI(b.AddI(b.Add(px, px2), 1), 1)
					}
					b.Store(isa.STB, px, out, int64(8*r+c), p.AliasPred)
				}
			}
		case USIMD:
			for r := 0; r < 8; r++ {
				w := b.Ldm(base, int64(r*p.W), p.AliasRef)
				if p.Avg {
					w2 := b.Ldm(base, int64(r*p.W)+1, p.AliasRef)
					w = b.P(isa.PAVG, simd.W8, w, w2)
				}
				b.Stm(w, out, int64(8*r), p.AliasPred)
			}
		default:
			vv := b.Vld(base, 0, p.AliasRef)
			if p.Avg {
				v2 := b.Vld(base, 1, p.AliasRef)
				vv = b.V(isa.VAVG, simd.W8, vv, v2)
			}
			// The prediction block is contiguous: unit-stride store.
			b.SetVSI(8)
			b.Vst(vv, out, 0, p.AliasPred)
			if i+1 < len(p.Blocks) {
				b.SetVS(b.Const(int64(p.W)))
			}
		}
	}
	if v == Vector {
		b.SetVSI(8)
	}
}

// FormPredRef is the reference prediction.
func FormPredRef(ref []byte, w int, mv [][3]int64, blocks []MCBlock, avg bool) []byte {
	out := make([]byte, 64*len(blocks))
	for i, blk := range blocks {
		dx, dy := int(mv[blk.MVIdx][0]), int(mv[blk.MVIdx][1])
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				a := int(ref[(blk.Y+dy+r)*w+blk.X+dx+c])
				if avg {
					b := int(ref[(blk.Y+dy+r)*w+blk.X+dx+c+1])
					a = (a + b + 1) >> 1
				}
				out[64*i+8*r+c] = byte(a)
			}
		}
	}
	return out
}

// AddBlock emits the add-block kernel: out[i] = clamp(pred[i] + res[i])
// for nblocks 8x8 blocks. pred and out are byte blocks (64 bytes each,
// block-sequential); res holds int16 blocks in two-plane layout.
func AddBlock(b *ir.Builder, v Variant, pred, res, out int64, nblocks int, aliasPred, aliasRes, aliasOut int) {
	checkMultiple("AddBlock", nblocks, 1)
	pp := b.Const(pred)
	rp := b.Const(res)
	op := b.Const(out)
	switch v {
	case Scalar:
		zero := b.Const(0)
		max := b.Const(255)
		b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					px := b.Load(isa.LDBU, pp, int64(8*r+c), aliasPred)
					rs := b.Load(isa.LDH, rp, blockOff(r, c), aliasRes)
					s := b.Add(px, rs)
					s = b.Select(b.Bin(isa.CMPLT, s, zero), zero, s)
					s = b.Select(b.Bin(isa.CMPLT, max, s), max, s)
					b.Store(isa.STB, s, op, int64(8*r+c), aliasOut)
				}
			}
			b.BinITo(isa.ADD, pp, pp, 64)
			b.BinITo(isa.ADD, rp, rp, BlockBytes)
			b.BinITo(isa.ADD, op, op, 64)
		})
	case USIMD:
		o := ops{b: b, vec: false}
		zero := o.zero()
		b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
			for r := 0; r < 8; r++ {
				pw := b.Ldm(pp, int64(8*r), aliasPred)
				lo := b.P(isa.PUNPCKL, simd.W8, pw, zero)
				hi := b.P(isa.PUNPCKH, simd.W8, pw, zero)
				resL := b.Ldm(rp, int64(8*r), aliasRes)
				resR := b.Ldm(rp, int64(64+8*r), aliasRes)
				lo = b.P(isa.PADDS, simd.W16, lo, resL)
				hi = b.P(isa.PADDS, simd.W16, hi, resR)
				b.Stm(b.P(isa.PACKUS, simd.W16, lo, hi), op, int64(8*r), aliasOut)
			}
			b.BinITo(isa.ADD, pp, pp, 64)
			b.BinITo(isa.ADD, rp, rp, BlockBytes)
			b.BinITo(isa.ADD, op, op, 64)
		})
	default:
		b.SetVLI(8)
		b.SetVSI(8)
		zv := b.Vsplat(b.Const(0))
		b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
			pw := b.Vld(pp, 0, aliasPred)
			lo := b.V(isa.VUNPCKL, simd.W8, pw, zv)
			hi := b.V(isa.VUNPCKH, simd.W8, pw, zv)
			resL := b.Vld(rp, 0, aliasRes)
			resR := b.Vld(rp, 64, aliasRes)
			lo = b.V(isa.VADDS, simd.W16, lo, resL)
			hi = b.V(isa.VADDS, simd.W16, hi, resR)
			b.Vst(b.V(isa.VPACKUS, simd.W16, lo, hi), op, 0, aliasOut)
			b.BinITo(isa.ADD, pp, pp, 64)
			b.BinITo(isa.ADD, rp, rp, BlockBytes)
			b.BinITo(isa.ADD, op, op, 64)
		})
	}
}

// AddBlockRef is the reference add-block over one block (pred: 64 bytes
// row-major; res: two-plane int16).
func AddBlockRef(pred []byte, res []int16) []byte {
	out := make([]byte, 64)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			out[8*r+c] = clamp255(int(pred[8*r+c]) + int(res[BlockIdx(r, c)]))
		}
	}
	return out
}
