// Package kernels implements the media kernels of the paper's vector
// regions (Table 1), each in three ISA variants plus a pure-Go reference:
//
//	JPEG encoder:  RGB→YCC color conversion, forward DCT, quantization
//	JPEG decoder:  YCC→RGB color conversion, h2v2 up-sampling
//	MPEG2 encoder: motion estimation (SAD full search), forward/inverse DCT
//	MPEG2 decoder: form-component prediction, inverse DCT, add-block
//	GSM encoder:   LTP parameter search, autocorrelation
//	GSM decoder:   long-term filtering
//
// Variants:
//
//	Scalar — plain VLIW code (one item per operation);
//	USIMD  — 64-bit packed code in the style of SSE integer intrinsics;
//	Vector — Vector-µSIMD code (vector registers of packed words, VL/VS,
//	         packed accumulators), the paper's contribution.
//
// All three variants of a kernel compute bit-identical results, checked
// against the reference implementation in the package tests. The builders
// take buffer addresses inside the program's data segment plus alias
// classes for memory disambiguation.
package kernels

import (
	"fmt"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Variant selects the ISA level a kernel builder emits.
type Variant int

// The three code versions evaluated in the paper.
const (
	Scalar Variant = iota
	USIMD
	Vector
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Scalar:
		return "scalar"
	case USIMD:
		return "usimd"
	case Vector:
		return "vector"
	}
	return "?"
}

// pToV maps a packed opcode to its vector counterpart.
func pToV(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.PADD:
		return isa.VADD
	case isa.PSUB:
		return isa.VSUB
	case isa.PADDS:
		return isa.VADDS
	case isa.PSUBS:
		return isa.VSUBS
	case isa.PADDU:
		return isa.VADDU
	case isa.PSUBU:
		return isa.VSUBU
	case isa.PMULL:
		return isa.VMULL
	case isa.PMULH:
		return isa.VMULH
	case isa.PMADD:
		return isa.VMADD
	case isa.PAVG:
		return isa.VAVG
	case isa.PMINU:
		return isa.VMINU
	case isa.PMAXU:
		return isa.VMAXU
	case isa.PMINS:
		return isa.VMINS
	case isa.PMAXS:
		return isa.VMAXS
	case isa.PABSD:
		return isa.VABSD
	case isa.PAND:
		return isa.VAND
	case isa.POR:
		return isa.VOR
	case isa.PXOR:
		return isa.VXOR
	case isa.PANDN:
		return isa.VANDN
	case isa.PCMPEQ:
		return isa.VCMPEQ
	case isa.PCMPGT:
		return isa.VCMPGT
	case isa.PACKSS:
		return isa.VPACKSS
	case isa.PACKUS:
		return isa.VPACKUS
	case isa.PUNPCKL:
		return isa.VUNPCKL
	case isa.PUNPCKH:
		return isa.VUNPCKH
	case isa.PSLL:
		return isa.VSLL
	case isa.PSRL:
		return isa.VSRL
	case isa.PSRA:
		return isa.VSRA
	}
	panic("kernels: no vector counterpart for " + op.Name())
}

// ops adapts the packed-word operations of the builder to either the
// µSIMD or the Vector-µSIMD ISA, so a kernel body written once against it
// emits either variant. In the vector case the caller is responsible for
// SETVL/SETVS bracketing.
type ops struct {
	b   *ir.Builder
	vec bool
}

// bin emits a two-source packed/vector operation.
func (o ops) bin(op isa.Opcode, w simd.Width, x, y ir.Reg) ir.Reg {
	if o.vec {
		return o.b.V(pToV(op), w, x, y)
	}
	return o.b.P(op, w, x, y)
}

// shift emits an immediate packed/vector shift.
func (o ops) shift(op isa.Opcode, w simd.Width, x ir.Reg, imm int64) ir.Reg {
	if o.vec {
		return o.b.VShiftI(pToV(op), w, x, imm)
	}
	return o.b.PShiftI(op, w, x, imm)
}

// load emits LDM or VLD.
func (o ops) load(base ir.Reg, off int64, alias int) ir.Reg {
	if o.vec {
		return o.b.Vld(base, off, alias)
	}
	return o.b.Ldm(base, off, alias)
}

// store emits STM or VST.
func (o ops) store(val, base ir.Reg, off int64, alias int) {
	if o.vec {
		o.b.Vst(val, base, off, alias)
	} else {
		o.b.Stm(val, base, off, alias)
	}
}

// splat16 materializes the 16-bit value v replicated through a packed word
// (and through all vector words in the vector case).
func (o ops) splat16(v int64) ir.Reg {
	word := splatWord16(v)
	if o.vec {
		return o.b.Vsplat(o.b.Const(word))
	}
	dst := o.b.SIMDReg()
	o.b.Emit(ir.Op{Opcode: isa.MOVIM, Dst: []ir.Reg{dst}, Imm: word, UseImm: true})
	return dst
}

// zero materializes an all-zero packed/vector register.
func (o ops) zero() ir.Reg {
	if o.vec {
		return o.b.Vsplat(o.b.Const(0))
	}
	dst := o.b.SIMDReg()
	o.b.Emit(ir.Op{Opcode: isa.MOVIM, Dst: []ir.Reg{dst}, Imm: 0, UseImm: true})
	return dst
}

// splatWord16 replicates a 16-bit pattern through a 64-bit word.
func splatWord16(v int64) int64 {
	u := uint64(v) & 0xFFFF
	return int64(u | u<<16 | u<<32 | u<<48)
}

// checkMultiple panics unless n is a positive multiple of m — kernel
// builders require workload sizes aligned to their unrolling granularity.
func checkMultiple(name string, n, m int) {
	if n <= 0 || n%m != 0 {
		panic(fmt.Sprintf("kernels: %s requires a positive multiple of %d, got %d", name, m, n))
	}
}

// clamp255 clamps x into [0, 255] (reference-side helper).
func clamp255(x int) byte {
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return byte(x)
}
