package kernels

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Motion estimation: full-search block matching with the sum of absolute
// differences, the dominant vector region of the MPEG2 encoder and the
// kernel of the paper's Figure 4 example (dist1). For each 16x16
// macroblock of the current frame the search scans a +-R window in the
// reference frame; the vector variant loads macroblock columns with
// VS = image width — the non-unit stride that makes this kernel stall
// under realistic memory, exactly as the paper reports.

// MEParams describes a motion-estimation invocation.
type MEParams struct {
	Cur, Ref int64 // byte planes, W x H
	MV       int64 // output: per MB three int64 values (dx, dy, sad)
	W, H     int
	// MBs lists macroblock origins (top-left pixel). Every origin must
	// leave an R-pixel margin inside the frame.
	MBs                         []MBOrigin
	R                           int // search radius
	AliasCur, AliasRef, AliasMV int
}

// MBOrigin is a macroblock position.
type MBOrigin struct{ X, Y int }

// MotionEstimate emits the full-search SAD kernel.
func MotionEstimate(b *ir.Builder, v Variant, p MEParams) {
	if p.R < 1 {
		panic("kernels: MotionEstimate requires R >= 1")
	}
	for _, mb := range p.MBs {
		if mb.X < p.R || mb.Y < p.R || mb.X+16+p.R > p.W || mb.Y+16+p.R > p.H {
			panic("kernels: macroblock violates search margin")
		}
	}
	switch v {
	case Scalar:
		meScalar(b, p)
	case USIMD:
		meUSIMD(b, p)
	default:
		meVector(b, p)
	}
}

// meSearch runs the candidate double loop, calling sad(cand) to emit the
// SAD computation for the candidate whose top-left address is in cand,
// and tracks the best (dx, dy, sad) triple.
func meSearch(b *ir.Builder, p MEParams, mbIdx int, curBase int64, sad func(cand ir.Reg) ir.Reg) {
	span := int64(2*p.R + 1)
	best := b.Const(1 << 30)
	bestDx := b.Const(0)
	bestDy := b.Const(0)
	// Candidate origin for (iy, ix): curOrigin + (iy-R)*W + (ix-R) in the
	// reference plane.
	refOrigin := p.Ref + curBase - p.Cur - int64(p.R*p.W+p.R)
	rowStart := b.Const(refOrigin)
	b.Loop(0, span, 1, func(iy ir.Reg) {
		cand := b.Mov(rowStart)
		b.Loop(0, span, 1, func(ix ir.Reg) {
			s := sad(cand)
			c := b.Bin(isa.CMPLT, s, best)
			b.SelectTo(best, c, s, best)
			b.SelectTo(bestDx, c, ix, bestDx)
			b.SelectTo(bestDy, c, iy, bestDy)
			b.BinITo(isa.ADD, cand, cand, 1)
		})
		b.BinITo(isa.ADD, rowStart, rowStart, int64(p.W))
	})
	mvp := b.Const(p.MV + int64(24*mbIdx))
	b.Store(isa.STD, b.SubI(bestDx, int64(p.R)), mvp, 0, p.AliasMV)
	b.Store(isa.STD, b.SubI(bestDy, int64(p.R)), mvp, 8, p.AliasMV)
	b.Store(isa.STD, best, mvp, 16, p.AliasMV)
}

func meScalar(b *ir.Builder, p MEParams) {
	for i, mb := range p.MBs {
		curBase := p.Cur + int64(mb.Y*p.W+mb.X)
		cp := b.Const(curBase)
		meSearch(b, p, i, curBase, func(cand ir.Reg) ir.Reg {
			acc := b.Const(0)
			for r := 0; r < 16; r++ {
				for c := 0; c < 16; c++ {
					off := int64(r*p.W + c)
					cur := b.Load(isa.LDBU, cp, off, p.AliasCur)
					ref := b.Load(isa.LDBU, cand, off, p.AliasRef)
					d := b.Sub(cur, ref)
					mask := b.SraI(d, 63)
					abs := b.Sub(b.Xor(d, mask), mask)
					b.BinTo(isa.ADD, acc, acc, abs)
				}
			}
			return acc
		})
	}
}

func meUSIMD(b *ir.Builder, p MEParams) {
	for i, mb := range p.MBs {
		curBase := p.Cur + int64(mb.Y*p.W+mb.X)
		cp := b.Const(curBase)
		// Hoist the current macroblock (32 words) out of the search loops.
		var cur [32]ir.Reg
		for r := 0; r < 16; r++ {
			cur[2*r] = b.Ldm(cp, int64(r*p.W), p.AliasCur)
			cur[2*r+1] = b.Ldm(cp, int64(r*p.W+8), p.AliasCur)
		}
		meSearch(b, p, i, curBase, func(cand ir.Reg) ir.Reg {
			var acc ir.Reg
			for r := 0; r < 16; r++ {
				for h := 0; h < 2; h++ {
					ref := b.Ldm(cand, int64(r*p.W+8*h), p.AliasRef)
					s := b.P(isa.PSAD, simd.W8, cur[2*r+h], ref)
					if !acc.Valid() {
						acc = s
					} else {
						acc = b.P(isa.PADD, simd.W32, acc, s)
					}
				}
			}
			return b.Movmr(acc)
		})
	}
}

func meVector(b *ir.Builder, p MEParams) {
	b.SetVLI(16)
	b.SetVS(b.Const(int64(p.W))) // VS = image width: the fateful stride
	for i, mb := range p.MBs {
		curBase := p.Cur + int64(mb.Y*p.W+mb.X)
		cp := b.Const(curBase)
		// Current macroblock as two column vectors (left/right 8 bytes of
		// each of the 16 rows), hoisted out of the search.
		curL := b.Vld(cp, 0, p.AliasCur)
		curR := b.Vld(cp, 8, p.AliasCur)
		meSearch(b, p, i, curBase, func(cand ir.Reg) ir.Reg {
			refL := b.Vld(cand, 0, p.AliasRef)
			refR := b.Vld(cand, 8, p.AliasRef)
			a1 := b.AccReg()
			b.AclrTo(a1)
			a2 := b.AccReg()
			b.AclrTo(a2)
			b.Vsada(a1, curL, refL)
			b.Vsada(a2, curR, refR)
			return b.Add(b.Vsum(simd.W8, a1), b.Vsum(simd.W8, a2))
		})
	}
	b.SetVSI(8)
}

// MotionEstimateRef computes the reference motion vectors.
func MotionEstimateRef(cur, ref []byte, w int, mbs []MBOrigin, r int) [][3]int64 {
	out := make([][3]int64, len(mbs))
	for i, mb := range mbs {
		best := int64(1 << 30)
		var bdx, bdy int64
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				var s int64
				for rr := 0; rr < 16; rr++ {
					for cc := 0; cc < 16; cc++ {
						a := int(cur[(mb.Y+rr)*w+mb.X+cc])
						bb := int(ref[(mb.Y+dy+rr)*w+mb.X+dx+cc])
						d := a - bb
						if d < 0 {
							d = -d
						}
						s += int64(d)
					}
				}
				if s < best {
					best, bdx, bdy = s, int64(dx), int64(dy)
				}
			}
		}
		out[i] = [3]int64{bdx, bdy, best}
	}
	return out
}
