package kernels

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Blockify converts a bxCount x byCount grid of 8x8 tiles from a byte
// plane (row pitch w, starting at plane) into level-shifted int16 blocks
// in two-plane layout (block-sequential at blocks): b[i] = p[i] - 128.
// It is the sample-conversion step that feeds the forward DCT and is part
// of the DCT vector region.
func Blockify(b *ir.Builder, v Variant, plane, blocks int64, w, bxCount, byCount int, aliasPlane, aliasBlk int) {
	checkMultiple("Blockify bxCount", bxCount, 1)
	checkMultiple("Blockify byCount", byCount, 1)
	op := b.Const(blocks)
	rowAdvance := int64(8*w - 8*bxCount) // from last tile of a row to the next row of tiles
	switch v {
	case Scalar:
		pb := b.Const(plane)
		b.Loop(0, int64(byCount), 1, func(ir.Reg) {
			b.Loop(0, int64(bxCount), 1, func(ir.Reg) {
				for r := 0; r < 8; r++ {
					for c := 0; c < 8; c++ {
						px := b.Load(isa.LDBU, pb, int64(r*w+c), aliasPlane)
						b.Store(isa.STH, b.SubI(px, 128), op, blockOff(r, c), aliasBlk)
					}
				}
				b.BinITo(isa.ADD, pb, pb, 8)
				b.BinITo(isa.ADD, op, op, BlockBytes)
			})
			b.BinITo(isa.ADD, pb, pb, rowAdvance)
		})
	case USIMD:
		o := ops{b: b, vec: false}
		zero := o.zero()
		k128 := o.splat16(128)
		pb := b.Const(plane)
		b.Loop(0, int64(byCount), 1, func(ir.Reg) {
			b.Loop(0, int64(bxCount), 1, func(ir.Reg) {
				for r := 0; r < 8; r++ {
					x := b.Ldm(pb, int64(r*w), aliasPlane)
					lo := b.P(isa.PSUB, simd.W16, b.P(isa.PUNPCKL, simd.W8, x, zero), k128)
					hi := b.P(isa.PSUB, simd.W16, b.P(isa.PUNPCKH, simd.W8, x, zero), k128)
					b.Stm(lo, op, int64(8*r), aliasBlk)
					b.Stm(hi, op, int64(64+8*r), aliasBlk)
				}
				b.BinITo(isa.ADD, pb, pb, 8)
				b.BinITo(isa.ADD, op, op, BlockBytes)
			})
			b.BinITo(isa.ADD, pb, pb, rowAdvance)
		})
	default:
		b.SetVLI(8)
		zero := b.Vsplat(b.Const(0))
		k128 := b.Vsplat(b.Const(splatWord16(128)))
		pb := b.Const(plane)
		b.Loop(0, int64(byCount), 1, func(ir.Reg) {
			b.Loop(0, int64(bxCount), 1, func(ir.Reg) {
				b.SetVS(b.Const(int64(w))) // tile rows, strided by the plane pitch
				x := b.Vld(pb, 0, aliasPlane)
				lo := b.V(isa.VSUB, simd.W16, b.V(isa.VUNPCKL, simd.W8, x, zero), k128)
				hi := b.V(isa.VSUB, simd.W16, b.V(isa.VUNPCKH, simd.W8, x, zero), k128)
				b.SetVSI(8) // block planes are contiguous
				b.Vst(lo, op, 0, aliasBlk)
				b.Vst(hi, op, 64, aliasBlk)
				b.BinITo(isa.ADD, pb, pb, 8)
				b.BinITo(isa.ADD, op, op, BlockBytes)
			})
			b.BinITo(isa.ADD, pb, pb, rowAdvance)
		})
	}
}

// BlockifyRef mirrors Blockify, returning block-sequential two-plane
// blocks.
func BlockifyRef(plane []byte, w, bxCount, byCount int) [][]int16 {
	out := make([][]int16, 0, bxCount*byCount)
	for by := 0; by < byCount; by++ {
		for bx := 0; bx < bxCount; bx++ {
			blk := make([]int16, 64)
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					blk[BlockIdx(r, c)] = int16(plane[(by*8+r)*w+bx*8+c]) - 128
				}
			}
			out = append(out, blk)
		}
	}
	return out
}
