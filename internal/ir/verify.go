package ir

import (
	"fmt"

	"vsimdvliw/internal/isa"
)

// Verify checks the structural validity of a function: operand register
// classes match each opcode's signature, sub-word widths are supported,
// branch targets exist, virtual register IDs are in range, and region
// markers nest properly along the layout order. It returns the first
// problem found.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: no blocks", f.Name)
	}
	for i, blk := range f.Blocks {
		if blk.ID != i {
			return fmt.Errorf("ir: %s: block %d has ID %d", f.Name, i, blk.ID)
		}
		for j := range blk.Ops {
			op := &blk.Ops[j]
			if err := f.verifyOp(op); err != nil {
				return fmt.Errorf("ir: %s: B%d op %d (%s): %w", f.Name, i, j, op, err)
			}
			if op.Info().Branch && op.Opcode != isa.HALT {
				if op.Target < 0 || op.Target >= len(f.Blocks) {
					return fmt.Errorf("ir: %s: B%d op %d: branch target B%d out of range",
						f.Name, i, j, op.Target)
				}
			}
			// Branches may only terminate a block.
			if op.Info().Branch && j != len(blk.Ops)-1 && op.Opcode != isa.HALT {
				if op.Opcode == isa.JMP {
					return fmt.Errorf("ir: %s: B%d: JMP not at block end", f.Name, i)
				}
				// Conditional branches mid-block would make the block not
				// basic; the builder never produces this.
				return fmt.Errorf("ir: %s: B%d: branch %s not at block end", f.Name, i, op.Opcode.Name())
			}
		}
	}
	// The last block must not fall off the end of the function.
	if !f.Blocks[len(f.Blocks)-1].Terminated() {
		return fmt.Errorf("ir: %s: last block falls through", f.Name)
	}
	return nil
}

func (f *Func) verifyOp(op *Op) error {
	in := op.Info()
	sig := in.Sig
	if len(op.Dst) != len(sig.Dst) {
		return fmt.Errorf("want %d destinations, have %d", len(sig.Dst), len(op.Dst))
	}
	// ALU operations may replace their second register source with an
	// immediate; loads/stores/shifts carry the immediate in addition to
	// their sources.
	wantSrc := len(sig.Src)
	if op.UseImm && in.Imm && wantSrc > 0 && in.Mem == isa.MemNone && !in.Branch {
		switch op.Opcode {
		case isa.MOVI, isa.SETVL, isa.SETVS, isa.MOVIM:
			wantSrc = 0
		case isa.PSLL, isa.PSRL, isa.PSRA, isa.VSLL, isa.VSRL, isa.VSRA:
			// shift amount is the immediate; one register source remains
		default:
			wantSrc-- // binary ALU op with immediate second operand
		}
	}
	if len(op.Src) != wantSrc {
		return fmt.Errorf("want %d sources, have %d", wantSrc, len(op.Src))
	}
	for i, r := range op.Dst {
		if r.Class != sig.Dst[i] {
			return fmt.Errorf("dst %d: class %s, want %s", i, r.Class, sig.Dst[i])
		}
		if err := f.checkReg(r); err != nil {
			return err
		}
	}
	for i, r := range op.Src {
		// With an immediate second ALU operand the remaining sources match
		// the signature prefix.
		if i < len(sig.Src) && r.Class != sig.Src[i] {
			return fmt.Errorf("src %d: class %s, want %s", i, r.Class, sig.Src[i])
		}
		if err := f.checkReg(r); err != nil {
			return err
		}
	}
	if !op.Opcode.SupportsWidth(op.Width) {
		return fmt.Errorf("width %v not supported", op.Width)
	}
	if op.Alias < 0 {
		return fmt.Errorf("negative alias class")
	}
	return nil
}

func (f *Func) checkReg(r Reg) error {
	if !r.Valid() {
		return fmt.Errorf("invalid register")
	}
	if r.ID < 0 || r.ID >= f.NumRegs[r.Class] {
		return fmt.Errorf("register %s out of range (%d allocated)", r, f.NumRegs[r.Class])
	}
	return nil
}
