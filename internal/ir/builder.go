package ir

import (
	"encoding/binary"
	"fmt"

	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Builder constructs a Func. It is the programming interface the kernels
// are written against — the equivalent of the paper's emulation libraries.
// Methods that produce a value allocate and return a fresh virtual
// register; methods may also target existing registers via the *To forms
// (reusing a register creates the corresponding dependences, e.g. loop
// induction variables).
type Builder struct {
	f    *Func
	cur  *Block
	next int64 // data-segment bump pointer (offset from DataBase)
}

// NewBuilder returns a builder with a single open entry block.
func NewBuilder(name string) *Builder {
	b := &Builder{f: &Func{Name: name}}
	b.cur = b.NewBlock()
	return b
}

// Func finalizes and returns the function: the last block is terminated
// with HALT if it does not already transfer control.
func (b *Builder) Func() *Func {
	last := b.f.Blocks[len(b.f.Blocks)-1]
	if !last.Terminated() {
		b.cur = last
		b.Emit(Op{Opcode: isa.HALT})
	}
	b.f.DataSize = b.next
	return b.f
}

// NewBlock appends a fresh basic block (it becomes the fallthrough
// successor of the previously last block) and returns it. It does not
// change the emission point; use SetBlock for that.
func (b *Builder) NewBlock() *Block {
	blk := &Block{ID: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

// SetBlock moves the emission point to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Block returns the current emission block.
func (b *Builder) Block() *Block { return b.cur }

// Emit appends a raw operation to the current block.
func (b *Builder) Emit(op Op) { b.cur.Ops = append(b.cur.Ops, op) }

// Reg allocates a fresh virtual register of the given class.
func (b *Builder) Reg(c isa.RegClass) Reg {
	id := b.f.NumRegs[c]
	b.f.NumRegs[c]++
	return Reg{Class: c, ID: id}
}

// IntReg allocates an integer virtual register.
func (b *Builder) IntReg() Reg { return b.Reg(isa.RegInt) }

// SIMDReg allocates a µSIMD (64-bit packed) virtual register.
func (b *Builder) SIMDReg() Reg { return b.Reg(isa.RegSIMD) }

// VecReg allocates a vector virtual register.
func (b *Builder) VecReg() Reg { return b.Reg(isa.RegVec) }

// AccReg allocates a packed-accumulator virtual register.
func (b *Builder) AccReg() Reg { return b.Reg(isa.RegAcc) }

// --- data segment ----------------------------------------------------------

// Size returns the number of data-segment bytes allocated so far.
func (b *Builder) Size() int64 { return b.next }

// Alloc reserves n bytes of zero-initialized data memory (8-byte aligned)
// and returns its virtual address.
func (b *Builder) Alloc(n int64) int64 {
	addr := DataBase + b.next
	b.next += (n + 7) &^ 7
	return addr
}

// Data reserves and initializes a byte region, returning its address.
func (b *Builder) Data(data []byte) int64 {
	addr := b.Alloc(int64(len(data)))
	cp := make([]byte, len(data))
	copy(cp, data)
	b.f.DataInit = append(b.f.DataInit, DataChunk{Addr: addr, Bytes: cp})
	return addr
}

// DataH reserves and initializes an array of 16-bit values (little-endian).
func (b *Builder) DataH(vals []int16) int64 {
	buf := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(v))
	}
	return b.Data(buf)
}

// DataW reserves and initializes an array of 32-bit values.
func (b *Builder) DataW(vals []int32) int64 {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return b.Data(buf)
}

// --- scalar operations ------------------------------------------------------

// Const materializes an immediate into a fresh integer register.
func (b *Builder) Const(v int64) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: isa.MOVI, Dst: []Reg{dst}, Imm: v, UseImm: true})
	return dst
}

// MovITo writes an immediate into an existing register.
func (b *Builder) MovITo(dst Reg, v int64) {
	b.Emit(Op{Opcode: isa.MOVI, Dst: []Reg{dst}, Imm: v, UseImm: true})
}

// Mov copies src into a fresh register.
func (b *Builder) Mov(src Reg) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: isa.MOV, Dst: []Reg{dst}, Src: []Reg{src}})
	return dst
}

// MovTo copies src into dst.
func (b *Builder) MovTo(dst, src Reg) {
	b.Emit(Op{Opcode: isa.MOV, Dst: []Reg{dst}, Src: []Reg{src}})
}

// Bin emits a two-source integer ALU operation into a fresh register.
func (b *Builder) Bin(op isa.Opcode, x, y Reg) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: op, Dst: []Reg{dst}, Src: []Reg{x, y}})
	return dst
}

// BinTo emits a two-source integer ALU operation into dst.
func (b *Builder) BinTo(op isa.Opcode, dst, x, y Reg) {
	b.Emit(Op{Opcode: op, Dst: []Reg{dst}, Src: []Reg{x, y}})
}

// BinI emits an ALU operation with an immediate second source.
func (b *Builder) BinI(op isa.Opcode, x Reg, imm int64) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: op, Dst: []Reg{dst}, Src: []Reg{x}, Imm: imm, UseImm: true})
	return dst
}

// BinITo is BinI targeting an existing register.
func (b *Builder) BinITo(op isa.Opcode, dst, x Reg, imm int64) {
	b.Emit(Op{Opcode: op, Dst: []Reg{dst}, Src: []Reg{x}, Imm: imm, UseImm: true})
}

// Common ALU shorthands.
func (b *Builder) Add(x, y Reg) Reg          { return b.Bin(isa.ADD, x, y) }
func (b *Builder) AddI(x Reg, imm int64) Reg { return b.BinI(isa.ADD, x, imm) }
func (b *Builder) Sub(x, y Reg) Reg          { return b.Bin(isa.SUB, x, y) }
func (b *Builder) SubI(x Reg, imm int64) Reg { return b.BinI(isa.SUB, x, imm) }
func (b *Builder) Mul(x, y Reg) Reg          { return b.Bin(isa.MUL, x, y) }
func (b *Builder) MulI(x Reg, imm int64) Reg { return b.BinI(isa.MUL, x, imm) }
func (b *Builder) And(x, y Reg) Reg          { return b.Bin(isa.AND, x, y) }
func (b *Builder) AndI(x Reg, imm int64) Reg { return b.BinI(isa.AND, x, imm) }
func (b *Builder) Or(x, y Reg) Reg           { return b.Bin(isa.OR, x, y) }
func (b *Builder) OrI(x Reg, imm int64) Reg  { return b.BinI(isa.OR, x, imm) }
func (b *Builder) Xor(x, y Reg) Reg          { return b.Bin(isa.XOR, x, y) }
func (b *Builder) ShlI(x Reg, imm int64) Reg { return b.BinI(isa.SHL, x, imm) }
func (b *Builder) ShrI(x Reg, imm int64) Reg { return b.BinI(isa.SHR, x, imm) }
func (b *Builder) SraI(x Reg, imm int64) Reg { return b.BinI(isa.SRA, x, imm) }

// Select emits dst <- cond != 0 ? x : y.
func (b *Builder) Select(cond, x, y Reg) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: isa.SELECT, Dst: []Reg{dst}, Src: []Reg{cond, x, y}})
	return dst
}

// SelectTo is Select targeting an existing register (e.g. running minima).
func (b *Builder) SelectTo(dst, cond, x, y Reg) {
	b.Emit(Op{Opcode: isa.SELECT, Dst: []Reg{dst}, Src: []Reg{cond, x, y}})
}

// --- scalar memory ----------------------------------------------------------

// Load emits a scalar load (one of the LD* opcodes) from base+off.
func (b *Builder) Load(op isa.Opcode, base Reg, off int64, alias int) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: op, Dst: []Reg{dst}, Src: []Reg{base}, Imm: off, Alias: alias})
	return dst
}

// Store emits a scalar store of val to base+off.
func (b *Builder) Store(op isa.Opcode, val, base Reg, off int64, alias int) {
	b.Emit(Op{Opcode: op, Src: []Reg{val, base}, Imm: off, Alias: alias})
}

// --- µSIMD operations --------------------------------------------------------

// Ldm loads a 64-bit packed word into a fresh µSIMD register.
func (b *Builder) Ldm(base Reg, off int64, alias int) Reg {
	dst := b.SIMDReg()
	b.Emit(Op{Opcode: isa.LDM, Dst: []Reg{dst}, Src: []Reg{base}, Imm: off, Alias: alias})
	return dst
}

// Stm stores a µSIMD register.
func (b *Builder) Stm(val, base Reg, off int64, alias int) {
	b.Emit(Op{Opcode: isa.STM, Src: []Reg{val, base}, Imm: off, Alias: alias})
}

// P emits a two-source packed operation of the given width.
func (b *Builder) P(op isa.Opcode, w simd.Width, x, y Reg) Reg {
	dst := b.SIMDReg()
	b.Emit(Op{Opcode: op, Width: w, Dst: []Reg{dst}, Src: []Reg{x, y}})
	return dst
}

// PTo is P targeting an existing µSIMD register (e.g. packed running
// sums carried across loop iterations).
func (b *Builder) PTo(op isa.Opcode, w simd.Width, dst, x, y Reg) {
	b.Emit(Op{Opcode: op, Width: w, Dst: []Reg{dst}, Src: []Reg{x, y}})
}

// PShiftI emits a packed shift by an immediate.
func (b *Builder) PShiftI(op isa.Opcode, w simd.Width, x Reg, imm int64) Reg {
	dst := b.SIMDReg()
	b.Emit(Op{Opcode: op, Width: w, Dst: []Reg{dst}, Src: []Reg{x}, Imm: imm, UseImm: true})
	return dst
}

// Psplat broadcasts the low lane of an integer register across a packed word.
func (b *Builder) Psplat(w simd.Width, src Reg) Reg {
	dst := b.SIMDReg()
	b.Emit(Op{Opcode: isa.PSPLAT, Width: w, Dst: []Reg{dst}, Src: []Reg{src}})
	return dst
}

// Movrm copies an integer register's bits into a µSIMD register.
func (b *Builder) Movrm(src Reg) Reg {
	dst := b.SIMDReg()
	b.Emit(Op{Opcode: isa.MOVRM, Dst: []Reg{dst}, Src: []Reg{src}})
	return dst
}

// Movmr copies a µSIMD register's bits into an integer register.
func (b *Builder) Movmr(src Reg) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: isa.MOVMR, Dst: []Reg{dst}, Src: []Reg{src}})
	return dst
}

// --- vector operations --------------------------------------------------------

// SetVLI sets the vector-length register to an immediate.
func (b *Builder) SetVLI(vl int64) {
	if vl < 1 || vl > isa.MaxVL {
		panic(fmt.Sprintf("ir: SetVLI(%d) out of range", vl))
	}
	b.Emit(Op{Opcode: isa.SETVL, Imm: vl, UseImm: true})
}

// SetVL sets the vector-length register from an integer register (the
// compiler then assumes the maximum vector length for scheduling).
func (b *Builder) SetVL(src Reg) {
	b.Emit(Op{Opcode: isa.SETVL, Src: []Reg{src}})
}

// SetVSI sets the vector-stride register (bytes between consecutive 64-bit
// words; 8 means stride one) to an immediate.
func (b *Builder) SetVSI(vs int64) {
	b.Emit(Op{Opcode: isa.SETVS, Imm: vs, UseImm: true})
}

// SetVS sets the vector-stride register from an integer register.
func (b *Builder) SetVS(src Reg) {
	b.Emit(Op{Opcode: isa.SETVS, Src: []Reg{src}})
}

// Vld emits a vector load from base+off under the current VL/VS.
func (b *Builder) Vld(base Reg, off int64, alias int) Reg {
	dst := b.VecReg()
	b.Emit(Op{Opcode: isa.VLD, Dst: []Reg{dst}, Src: []Reg{base}, Imm: off, Alias: alias})
	return dst
}

// Vst emits a vector store.
func (b *Builder) Vst(val, base Reg, off int64, alias int) {
	b.Emit(Op{Opcode: isa.VST, Src: []Reg{val, base}, Imm: off, Alias: alias})
}

// V emits a two-source element-wise vector operation.
func (b *Builder) V(op isa.Opcode, w simd.Width, x, y Reg) Reg {
	dst := b.VecReg()
	b.Emit(Op{Opcode: op, Width: w, Dst: []Reg{dst}, Src: []Reg{x, y}})
	return dst
}

// VTo is V targeting an existing vector register.
func (b *Builder) VTo(op isa.Opcode, w simd.Width, dst, x, y Reg) {
	b.Emit(Op{Opcode: op, Width: w, Dst: []Reg{dst}, Src: []Reg{x, y}})
}

// VShiftI emits an element-wise vector shift by an immediate.
func (b *Builder) VShiftI(op isa.Opcode, w simd.Width, x Reg, imm int64) Reg {
	dst := b.VecReg()
	b.Emit(Op{Opcode: op, Width: w, Dst: []Reg{dst}, Src: []Reg{x}, Imm: imm, UseImm: true})
	return dst
}

// Vsplat broadcasts an integer register's 64-bit value to all words.
func (b *Builder) Vsplat(src Reg) Reg {
	dst := b.VecReg()
	b.Emit(Op{Opcode: isa.VSPLAT, Dst: []Reg{dst}, Src: []Reg{src}})
	return dst
}

// Vextr extracts vector word idx into a fresh integer register.
func (b *Builder) Vextr(v Reg, idx int64) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: isa.VEXTR, Dst: []Reg{dst}, Src: []Reg{v}, Imm: idx})
	return dst
}

// Vins inserts an integer register into word idx of a vector register.
func (b *Builder) Vins(v Reg, src Reg, idx int64) {
	b.Emit(Op{Opcode: isa.VINS, Dst: []Reg{v}, Src: []Reg{src, v}, Imm: idx})
}

// Aclr returns a freshly cleared accumulator.
func (b *Builder) Aclr() Reg {
	dst := b.AccReg()
	b.Emit(Op{Opcode: isa.ACLR, Dst: []Reg{dst}})
	return dst
}

// AclrTo clears an existing accumulator.
func (b *Builder) AclrTo(dst Reg) {
	b.Emit(Op{Opcode: isa.ACLR, Dst: []Reg{dst}})
}

// Vsada accumulates the per-byte-lane SAD of vectors x and y into acc.
func (b *Builder) Vsada(acc, x, y Reg) {
	b.Emit(Op{Opcode: isa.VSADA, Width: simd.W8, Dst: []Reg{acc}, Src: []Reg{x, y, acc}})
}

// Vmaca accumulates 16-bit lane products of vectors x and y into acc.
func (b *Builder) Vmaca(acc, x, y Reg) {
	b.Emit(Op{Opcode: isa.VMACA, Width: simd.W16, Dst: []Reg{acc}, Src: []Reg{x, y, acc}})
}

// Vaccw accumulates the 16-bit lanes of vector x into acc.
func (b *Builder) Vaccw(acc, x Reg) {
	b.Emit(Op{Opcode: isa.VACCW, Width: simd.W16, Dst: []Reg{acc}, Src: []Reg{x, acc}})
}

// Vsum reduces the accumulator to a scalar (byte mode W8: eight lanes;
// halfword mode W16: four lanes).
func (b *Builder) Vsum(w simd.Width, acc Reg) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: isa.VSUM, Width: w, Dst: []Reg{dst}, Src: []Reg{acc}})
	return dst
}

// Apack packs the four halfword accumulator lanes (shifted right by sh and
// saturated to int16) into an integer register.
func (b *Builder) Apack(acc Reg, sh int64) Reg {
	dst := b.IntReg()
	b.Emit(Op{Opcode: isa.APACK, Dst: []Reg{dst}, Src: []Reg{acc}, Imm: sh})
	return dst
}

// --- control flow -------------------------------------------------------------

// Branch emits a conditional branch to target.
func (b *Builder) Branch(op isa.Opcode, x, y Reg, target *Block) {
	b.Emit(Op{Opcode: op, Src: []Reg{x, y}, Target: target.ID})
}

// Jmp emits an unconditional jump.
func (b *Builder) Jmp(target *Block) {
	b.Emit(Op{Opcode: isa.JMP, Target: target.ID})
}

// RegionBegin/RegionEnd bracket an instrumented region (0 is the implicit
// scalar region; vector regions use ids 1..3 as in the paper's Figure 7).
// Both start a fresh basic block so that every block lies entirely inside
// or outside a region and cycle accounting is exact at block granularity.
func (b *Builder) RegionBegin(id int) {
	b.SetBlock(b.NewBlock())
	b.Emit(Op{Opcode: isa.REGBEGIN, Imm: int64(id)})
}

// RegionEnd closes the region opened with the same id.
func (b *Builder) RegionEnd(id int) {
	b.SetBlock(b.NewBlock())
	b.Emit(Op{Opcode: isa.REGEND, Imm: int64(id)})
}

// invert returns the branch opcode with the opposite condition.
func invert(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.BEQ:
		return isa.BNE
	case isa.BNE:
		return isa.BEQ
	case isa.BLT:
		return isa.BGE
	case isa.BGE:
		return isa.BLT
	}
	panic("ir: cannot invert " + op.Name())
}

// IfElse emits an if/else diamond: then() runs when "x op y" holds.
// els may be nil.
func (b *Builder) IfElse(op isa.Opcode, x, y Reg, then, els func()) {
	thenBlk := b.NewBlock()
	if els == nil {
		end := b.NewBlock()
		b.Branch(invert(op), x, y, end)
		b.SetBlock(thenBlk)
		then()
		b.SetBlock(end)
		return
	}
	elseBlk := b.NewBlock()
	end := b.NewBlock()
	b.Branch(invert(op), x, y, elseBlk)
	b.SetBlock(thenBlk)
	then()
	b.Jmp(end)
	b.SetBlock(elseBlk)
	els()
	b.SetBlock(end)
}

// Loop emits a counted loop:
//
//	for iv := start; iv < stop; iv += step { body(iv) }
//
// start/stop/step are compile-time constants; iv is a virtual register the
// body may read (but must not write). The loop body must execute at least
// once (start < stop), matching the rotating-loop style of VLIW codes.
func (b *Builder) Loop(start, stop, step int64, body func(iv Reg)) {
	if start >= stop || step <= 0 {
		panic("ir: Loop requires start < stop and step > 0")
	}
	iv := b.Const(start)
	limit := b.Const(stop)
	loop := b.NewBlock()
	b.SetBlock(loop)
	body(iv)
	b.BinITo(isa.ADD, iv, iv, step)
	b.Branch(isa.BLT, iv, limit, loop)
	after := b.NewBlock()
	b.SetBlock(after)
}

// LoopReg is Loop with a register trip bound: for iv := 0; iv < n; iv++.
func (b *Builder) LoopReg(n Reg, body func(iv Reg)) {
	iv := b.Const(0)
	loop := b.NewBlock()
	b.SetBlock(loop)
	body(iv)
	b.BinITo(isa.ADD, iv, iv, 1)
	b.Branch(isa.BLT, iv, n, loop)
	after := b.NewBlock()
	b.SetBlock(after)
}
