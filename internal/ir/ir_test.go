package ir

import (
	"strings"
	"testing"

	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("basic")
	x := b.Const(5)
	y := b.Const(7)
	z := b.Add(x, y)
	b.Store(isa.STD, z, b.Const(0), b.Alloc(8)-DataBase, 1)
	f := b.Func()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if f.Name != "basic" {
		t.Errorf("name = %q", f.Name)
	}
	if f.NumOps() != 6 { // 3 movi + add + std + halt
		t.Errorf("NumOps = %d, want 6", f.NumOps())
	}
	last := f.Blocks[len(f.Blocks)-1].Ops
	if last[len(last)-1].Opcode != isa.HALT {
		t.Error("Func() must append HALT")
	}
}

func TestRegAllocationCounts(t *testing.T) {
	b := NewBuilder("regs")
	b.IntReg()
	b.IntReg()
	b.SIMDReg()
	b.VecReg()
	b.VecReg()
	b.VecReg()
	b.AccReg()
	f := b.Func()
	if f.NumRegs[isa.RegInt] != 2 || f.NumRegs[isa.RegSIMD] != 1 ||
		f.NumRegs[isa.RegVec] != 3 || f.NumRegs[isa.RegAcc] != 1 {
		t.Errorf("NumRegs = %v", f.NumRegs)
	}
}

func TestDataSegment(t *testing.T) {
	b := NewBuilder("data")
	a1 := b.Alloc(10) // rounded to 16
	a2 := b.Data([]byte{1, 2, 3})
	a3 := b.DataH([]int16{-1, 300})
	a4 := b.DataW([]int32{-5})
	f := b.Func()
	if a1 != DataBase {
		t.Errorf("first alloc at %#x, want DataBase", a1)
	}
	if a2 != DataBase+16 {
		t.Errorf("second alloc at %#x, want DataBase+16 (8-byte aligned)", a2)
	}
	if a3 != a2+8 || a4 != a3+8 {
		t.Errorf("alloc layout: %#x %#x %#x", a2, a3, a4)
	}
	if f.DataSize != 16+8+8+8 {
		t.Errorf("DataSize = %d", f.DataSize)
	}
	if len(f.DataInit) != 3 {
		t.Fatalf("DataInit chunks = %d", len(f.DataInit))
	}
	if f.DataInit[1].Bytes[0] != 0xFF || f.DataInit[1].Bytes[1] != 0xFF {
		t.Errorf("DataH little-endian encoding wrong: %v", f.DataInit[1].Bytes)
	}
}

func TestLoop(t *testing.T) {
	b := NewBuilder("loop")
	n := 0
	b.Loop(0, 8, 2, func(iv Reg) {
		if !iv.Valid() || iv.Class != isa.RegInt {
			t.Fatal("induction variable must be an int register")
		}
		b.AddI(iv, 1)
		n++
	})
	if n != 1 {
		t.Fatal("body must be emitted exactly once")
	}
	f := b.Func()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// Loop structure: entry block, loop block, after block.
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	loop := f.Blocks[1]
	lastOp := loop.Ops[len(loop.Ops)-1]
	if lastOp.Opcode != isa.BLT || lastOp.Target != 1 {
		t.Errorf("back edge = %s", &lastOp)
	}
}

func TestLoopPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("bad")
	b.Loop(5, 5, 1, func(Reg) {})
}

func TestIfElse(t *testing.T) {
	b := NewBuilder("ifelse")
	x := b.Const(1)
	y := b.Const(2)
	thenRan, elseRan := false, false
	b.IfElse(isa.BLT, x, y, func() {
		thenRan = true
		b.AddI(x, 1)
	}, func() {
		elseRan = true
		b.AddI(y, 1)
	})
	f := b.Func()
	if !thenRan || !elseRan {
		t.Fatal("both arms must be emitted")
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// Entry branches (inverted) to else block.
	entry := f.Blocks[0]
	br := entry.Ops[len(entry.Ops)-1]
	if br.Opcode != isa.BGE {
		t.Errorf("inverted branch = %s, want bge", br.Opcode.Name())
	}
}

func TestIfWithoutElse(t *testing.T) {
	b := NewBuilder("if")
	x := b.Const(1)
	b.IfElse(isa.BEQ, x, x, func() { b.AddI(x, 1) }, nil)
	if err := b.Func().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInvertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-invertible opcode")
		}
	}()
	invert(isa.JMP)
}

func TestSetVLIRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for VL > MaxVL")
		}
	}()
	b := NewBuilder("vl")
	b.SetVLI(17)
}

func TestVectorBuilderOps(t *testing.T) {
	b := NewBuilder("vec")
	base := b.Const(int64(DataBase))
	b.Alloc(16 * 8)
	b.SetVLI(8)
	b.SetVSI(8)
	v1 := b.Vld(base, 0, 1)
	v2 := b.Vld(base, 64, 1)
	v3 := b.V(isa.VADD, simd.W16, v1, v2)
	acc := b.Aclr()
	b.Vsada(acc, v1, v2)
	b.Vmaca(acc, v1, v2)
	b.Vaccw(acc, v3)
	s := b.Vsum(simd.W8, acc)
	b.Vst(v3, base, 0, 1)
	_ = b.Vextr(v3, 2)
	b.Vins(v3, s, 0)
	sp := b.Vsplat(s)
	sh := b.VShiftI(isa.VSRA, simd.W16, sp, 3)
	b.VTo(isa.VSUB, simd.W16, v3, v3, sh)
	f := b.Func()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUSIMDBuilderOps(t *testing.T) {
	b := NewBuilder("usimd")
	base := b.Const(int64(DataBase))
	b.Alloc(64)
	m1 := b.Ldm(base, 0, 1)
	m2 := b.Ldm(base, 8, 1)
	m3 := b.P(isa.PADD, simd.W8, m1, m2)
	m4 := b.PShiftI(isa.PSRL, simd.W16, m3, 2)
	m5 := b.P(isa.PSAD, simd.W8, m1, m2)
	r := b.Movmr(m5)
	m6 := b.Psplat(simd.W16, r)
	m7 := b.Movrm(r)
	b.Stm(b.P(isa.PXOR, 0, m6, m7), base, 16, 1)
	b.Stm(m4, base, 24, 1)
	if err := b.Func().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestScalarBuilderOps(t *testing.T) {
	b := NewBuilder("scalar")
	base := b.Const(int64(DataBase))
	b.Alloc(64)
	x := b.Load(isa.LDW, base, 0, 1)
	y := b.Load(isa.LDBU, base, 4, 1)
	z := b.Select(b.Bin(isa.CMPLT, x, y), x, y)
	b.Store(isa.STW, z, base, 8, 1)
	b.MovTo(x, y)
	b.MovITo(y, 9)
	w := b.Mov(z)
	b.Store(isa.STB, b.Xor(b.Or(b.And(x, y), w), z), base, 12, 1)
	b.Store(isa.STH, b.SraI(b.ShrI(b.ShlI(x, 1), 1), 1), base, 14, 1)
	b.Store(isa.STD, b.Mul(b.Sub(x, y), b.AddI(x, 3)), base, 16, 1)
	b.Store(isa.STD, b.MulI(b.SubI(x, 1), 3), base, 24, 1)
	b.Store(isa.STD, b.OrI(b.AndI(x, 0xF), 1), base, 32, 1)
	if err := b.Func().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesClassMismatch(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Const(1)
	// ADD with a vector register destination is malformed.
	v := b.VecReg()
	b.Emit(Op{Opcode: isa.ADD, Dst: []Reg{v}, Src: []Reg{x, x}})
	if err := b.Func().Verify(); err == nil {
		t.Fatal("expected class-mismatch error")
	}
}

func TestVerifyCatchesBadWidth(t *testing.T) {
	b := NewBuilder("bad")
	m := b.SIMDReg()
	b.Emit(Op{Opcode: isa.PMULL, Width: simd.W8, Dst: []Reg{m}, Src: []Reg{m, m}})
	err := b.Func().Verify()
	if err == nil || !strings.Contains(err.Error(), "width") {
		t.Fatalf("expected width error, got %v", err)
	}
}

func TestVerifyCatchesBadTarget(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Const(0)
	b.Emit(Op{Opcode: isa.BEQ, Src: []Reg{x, x}, Target: 99})
	if err := b.Func().Verify(); err == nil {
		t.Fatal("expected branch-target error")
	}
}

func TestVerifyCatchesUnallocatedReg(t *testing.T) {
	b := NewBuilder("bad")
	b.Emit(Op{Opcode: isa.MOV, Dst: []Reg{{Class: isa.RegInt, ID: 7}},
		Src: []Reg{{Class: isa.RegInt, ID: 8}}})
	if err := b.Func().Verify(); err == nil {
		t.Fatal("expected out-of-range register error")
	}
}

func TestVerifyCatchesMidBlockBranch(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Const(0)
	blk := b.Block()
	blk.Ops = append(blk.Ops, Op{Opcode: isa.BEQ, Src: []Reg{x, x}, Target: 0})
	blk.Ops = append(blk.Ops, Op{Opcode: isa.MOVI, Dst: []Reg{x}, Imm: 1, UseImm: true})
	if err := b.Func().Verify(); err == nil {
		t.Fatal("expected mid-block branch error")
	}
}

func TestVerifyEmptyFunc(t *testing.T) {
	f := &Func{Name: "empty"}
	if err := f.Verify(); err == nil {
		t.Fatal("expected error for empty function")
	}
}

func TestOpString(t *testing.T) {
	b := NewBuilder("str")
	x := b.Const(3)
	y := b.Add(x, x)
	op := Op{Opcode: isa.VADD, Width: simd.W16,
		Dst: []Reg{{Class: isa.RegVec, ID: 1}},
		Src: []Reg{{Class: isa.RegVec, ID: 2}, {Class: isa.RegVec, ID: 3}}}
	s := op.String()
	if !strings.Contains(s, "vadd.w") || !strings.Contains(s, "v1") {
		t.Errorf("Op.String = %q", s)
	}
	_ = y
	br := Op{Opcode: isa.BNE, Src: []Reg{x, x}, Target: 2}
	if !strings.Contains(br.String(), "->B2") {
		t.Errorf("branch string = %q", br.String())
	}
	if (Reg{}).String() != "-" {
		t.Error("invalid reg must print as -")
	}
}

func TestRegionMarkers(t *testing.T) {
	b := NewBuilder("regions")
	b.RegionBegin(1)
	b.AddI(b.Const(0), 1)
	b.RegionEnd(1)
	f := b.Func()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// RegionBegin starts a fresh block whose first op is the marker, so
	// cycle accounting is exact at block granularity.
	ops := f.Blocks[1].Ops
	if ops[0].Opcode != isa.REGBEGIN || ops[0].Imm != 1 {
		t.Error("region begin wrong")
	}
	if len(f.Blocks[0].Ops) != 0 {
		t.Error("entry block should be empty: markers open new blocks")
	}
	if f.Blocks[2].Ops[0].Opcode != isa.REGEND {
		t.Error("region end must start its own block")
	}
}

func TestTerminated(t *testing.T) {
	blk := &Block{}
	if blk.Terminated() {
		t.Error("empty block is not terminated")
	}
	blk.Ops = append(blk.Ops, Op{Opcode: isa.JMP})
	if !blk.Terminated() {
		t.Error("JMP terminates")
	}
	blk.Ops[0] = Op{Opcode: isa.BEQ}
	if blk.Terminated() {
		t.Error("conditional branch can fall through")
	}
}
