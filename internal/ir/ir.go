// Package ir defines the intermediate representation consumed by the
// static scheduler (internal/sched) and the simulator (internal/sim):
// operations over virtual registers, grouped into basic blocks with
// explicit control flow.
//
// Programs are written against the Builder API, which plays the role of
// the emulation libraries the paper used to hand-write µSIMD and
// Vector-µSIMD code ("we have used emulation libraries to hand-write the
// applications ... and the compiler replaces the emulation function calls
// by the corresponding operation").
package ir

import (
	"fmt"

	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Reg is a virtual register: a class and an index within that class.
// The zero value is "no register".
type Reg struct {
	Class isa.RegClass
	ID    int32
}

// Valid reports whether r names a register.
func (r Reg) Valid() bool { return r.Class != isa.RegNone }

// String implements fmt.Stringer.
func (r Reg) String() string {
	if !r.Valid() {
		return "-"
	}
	return fmt.Sprintf("%s%d", r.Class, r.ID)
}

// Op is one machine operation.
type Op struct {
	Opcode isa.Opcode
	Width  simd.Width // sub-word width for packed/vector operations
	Dst    []Reg
	Src    []Reg
	// Imm is the immediate operand: the value for MOVI/SETVL/SETVS, the
	// address offset for memory operations, the shift amount for immediate
	// shifts, the element index for VEXTR/VINS, the region id for
	// REGBEGIN/REGEND, or the second ALU source when UseImm is set.
	Imm    int64
	UseImm bool
	// Target is the destination block ID of a branch operation.
	Target int
	// Alias is the memory-disambiguation class of a memory operation.
	// Operations in different non-zero classes are guaranteed independent
	// (the paper's scalar codes include interprocedural pointer analysis
	// and cost-effective memory disambiguation; the vector codes carry the
	// same information inherently). Class 0 may alias anything.
	Alias int
	// Label optionally annotates the operation in schedule dumps
	// (used to reproduce the paper's Figure 4 lettering).
	Label string
}

// Info returns the opcode metadata.
func (o *Op) Info() *isa.Info { return o.Opcode.Get() }

// String renders the operation in a compact assembly-like form.
func (o *Op) String() string {
	s := o.Opcode.Name()
	if o.Width != 0 {
		s += "." + o.Width.String()
	}
	for i, d := range o.Dst {
		if i == 0 {
			s += " "
		} else {
			s += ","
		}
		s += d.String()
	}
	if len(o.Src) > 0 || o.UseImm || o.Info().Imm {
		if len(o.Dst) > 0 {
			s += " <-"
		}
		for _, r := range o.Src {
			s += " " + r.String()
		}
		if o.UseImm || (o.Info().Imm && len(o.Src) < 2) {
			s += fmt.Sprintf(" #%d", o.Imm)
		} else if o.Info().Imm && o.Imm != 0 {
			s += fmt.Sprintf(" +%d", o.Imm)
		}
	}
	if o.Info().Branch && o.Opcode != isa.HALT {
		s += fmt.Sprintf(" ->B%d", o.Target)
	}
	return s
}

// Block is a basic block: a straight-line sequence of operations ended
// either by a branch or by falling through to the next block.
type Block struct {
	ID  int
	Ops []Op
}

// Terminated reports whether the block ends in an unconditional control
// transfer (JMP or HALT), i.e. it never falls through.
func (b *Block) Terminated() bool {
	if len(b.Ops) == 0 {
		return false
	}
	op := b.Ops[len(b.Ops)-1].Opcode
	return op == isa.JMP || op == isa.HALT
}

// Func is a schedulable unit: an entry block plus the rest of the CFG.
type Func struct {
	Name   string
	Blocks []*Block
	// NumRegs counts virtual registers per class (indexed by isa.RegClass).
	NumRegs [5]int32
	// DataSize is the number of bytes of the data segment the function's
	// builder allocated (the simulator maps it at DataBase).
	DataSize int64
	// DataInit holds initial data-segment contents keyed by address.
	DataInit []DataChunk
}

// DataChunk is a contiguous piece of initialized data memory.
type DataChunk struct {
	Addr  int64
	Bytes []byte
}

// DataBase is the virtual address where a function's data segment starts.
// A non-zero base catches null-pointer-style bugs in hand-written kernels.
const DataBase = 0x10000

// NumOps returns the total static operation count.
func (f *Func) NumOps() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}
