// Package energy is a first-order energy model for the Vector-µSIMD-VLIW
// configurations. The paper argues, qualitatively, that vector extensions
// "clearly reduce the fetch pressure ... which translates into a decrease
// in power consumption" and that "very high issue rates require decoding
// more operations in parallel and complicate the register files, which
// clearly increases power consumption" — but it never quantifies the
// claim ("a quantitative analysis on power consumption is out of the
// scope of this paper"). This package makes the argument measurable with
// an event-based model in the style of simple architectural power
// estimators:
//
//	E = Nops   * Efetch(width)      // fetch/decode/issue + register file
//	  + Nmicro * Eexec              // datapath work actually performed
//	  + per-level memory access energies
//	  + cycles * Estatic(units)     // idle/leakage proportional to hardware
//
// The absolute unit is arbitrary (call it pJ); only ratios between
// configurations are meaningful, which is all the paper's argument needs.
package energy

import (
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sim"
)

// Model holds per-event energy coefficients.
type Model struct {
	// FetchBase is the energy to fetch/decode/issue one operation on a
	// 2-issue machine; FetchPerWidth adds the cost of the wider issue
	// logic and the extra register-file ports of wider machines (the
	// paper's "complicate the register files" argument).
	FetchBase     float64
	FetchPerWidth float64
	// ExecPerMicroOp is the datapath energy per micro-operation (sub-word
	// item processed). Identical work costs the same in every ISA; what
	// differs between ISAs is how many operations were fetched to do it.
	ExecPerMicroOp float64
	// Memory access energies per event.
	L1Access, L2Access, L3Access, MemAccess float64
	// L2Migration is the cost of moving one line between the partitions of
	// a bicameral split L2 (an extra read plus write of one line, about
	// two L2 accesses).
	L2Migration float64
	// StaticPerUnitCycle charges leakage per functional unit per cycle:
	// an 8-issue machine that finishes barely faster than a 4-issue one
	// burns almost twice the idle power for it.
	StaticPerUnitCycle float64
}

// Default returns coefficients with relative magnitudes taken from the
// usual architectural rules of thumb: instruction fetch/decode costs a
// few times a simple ALU micro-op, an L1 access costs about a fetch, L2
// about 5x, main memory orders of magnitude more.
func Default() Model {
	return Model{
		FetchBase:          4.0,
		FetchPerWidth:      0.5,
		ExecPerMicroOp:     1.0,
		L1Access:           4.0,
		L2Access:           20.0,
		L2Migration:        40.0,
		L3Access:           60.0,
		MemAccess:          400.0,
		StaticPerUnitCycle: 0.2,
	}
}

// Breakdown is an energy estimate split by source.
type Breakdown struct {
	Fetch, Exec, Memory, Static float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Fetch + b.Exec + b.Memory + b.Static }

// units counts the functional units that contribute static power.
func units(cfg *machine.Config) int {
	n := cfg.IntUnits + cfg.SIMDUnits + cfg.BranchUnits + cfg.L1Ports
	// A vector unit is LN lanes of datapath.
	n += cfg.VectorUnits * cfg.Lanes
	n += cfg.L2Ports
	return n
}

// Estimate computes the energy breakdown of one run on one configuration.
// The result must come from a realistic-memory run (it uses the hierarchy
// event counters); with a perfect-memory result the memory component
// degenerates to zero.
func (m Model) Estimate(res *sim.Result, cfg *machine.Config) Breakdown {
	var b Breakdown
	fetchPerOp := m.FetchBase + m.FetchPerWidth*float64(cfg.Issue)
	b.Fetch = float64(res.Ops) * fetchPerOp
	b.Exec = float64(res.MicroOps) * m.ExecPerMicroOp
	st := res.Mem
	b.Memory = float64(st.L1Hits+st.L1Misses)*m.L1Access +
		m.l2Energy(res, cfg) +
		float64(st.L3Hits+st.L3Misses)*m.L3Access +
		float64(st.L3Misses)*m.MemAccess
	b.Static = float64(res.Cycles) * m.StaticPerUnitCycle * float64(units(cfg))
	return b
}

// l2Energy is the L2 term of the memory component. For the built-in
// hierarchy it is L2Access per access (lookups plus prefetch fills). A
// cacheorg run scales the per-access cost with the structure actually
// cycled: a banked cache activates one bank of the capacity per access
// (0.5 + 1/banks of the unified cost, normalized so the paper's two banks
// cost exactly L2Access), a bicameral access cycles only its partition
// (0.5 + 0.5*partition/total), and each migration pays L2Migration.
func (m Model) l2Energy(res *sim.Result, cfg *machine.Config) float64 {
	st := res.Mem
	co := res.CacheOrg
	if co == nil {
		return float64(st.L2Hits+st.L2Misses+st.Prefetches) * m.L2Access
	}
	if co.Banks > 0 {
		scale := 0.5 + 1.0/float64(co.Banks)
		return float64(st.L2Hits+st.L2Misses+st.Prefetches) * m.L2Access * scale
	}
	// Bicameral: per-partition access costs plus migrations. Prefetch
	// fills overwhelmingly install vector stream lines, so they are
	// charged at the vector partition's cost.
	total := float64(co.ScalarBytes + co.VectorBytes)
	scaleS := 0.5 + 0.5*float64(co.ScalarBytes)/total
	scaleV := 0.5 + 0.5*float64(co.VectorBytes)/total
	return float64(co.ScalarHits+co.ScalarMisses)*m.L2Access*scaleS +
		float64(co.VectorHits+co.VectorMisses+st.Prefetches)*m.L2Access*scaleV +
		float64(co.Migrations)*m.L2Migration
}

// EDP returns the energy-delay product (energy x cycles), the standard
// single-number efficiency metric: lower is better.
func (m Model) EDP(res *sim.Result, cfg *machine.Config) float64 {
	return m.Estimate(res, cfg).Total() * float64(res.Cycles)
}
