package energy

import (
	"testing"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sim"
)

func fakeResult(ops, micro, cycles int64, st mem.Stats) *sim.Result {
	return &sim.Result{Ops: ops, MicroOps: micro, Cycles: cycles, Mem: st}
}

func TestBreakdownComponents(t *testing.T) {
	m := Default()
	res := fakeResult(100, 800, 1000, mem.Stats{L1Hits: 50, L2Hits: 10, L3Misses: 2})
	b := m.Estimate(res, &machine.USIMD2)
	if b.Fetch != 100*(m.FetchBase+2*m.FetchPerWidth) {
		t.Errorf("fetch = %v", b.Fetch)
	}
	if b.Exec != 800*m.ExecPerMicroOp {
		t.Errorf("exec = %v", b.Exec)
	}
	wantMem := 50*m.L1Access + 10*m.L2Access + 2*m.L3Access + 2*m.MemAccess
	if b.Memory != wantMem {
		t.Errorf("memory = %v, want %v", b.Memory, wantMem)
	}
	if b.Static <= 0 {
		t.Error("static must be positive")
	}
	if b.Total() != b.Fetch+b.Exec+b.Memory+b.Static {
		t.Error("Total mismatch")
	}
}

func TestWiderIssueCostsMoreFetchEnergy(t *testing.T) {
	m := Default()
	res := fakeResult(1000, 1000, 1000, mem.Stats{})
	narrow := m.Estimate(res, &machine.USIMD2)
	wide := m.Estimate(res, &machine.USIMD8)
	if wide.Fetch <= narrow.Fetch {
		t.Errorf("8-issue fetch energy (%v) must exceed 2-issue (%v)", wide.Fetch, narrow.Fetch)
	}
	if wide.Static <= narrow.Static {
		t.Errorf("8-issue static energy (%v) must exceed 2-issue (%v)", wide.Static, narrow.Static)
	}
}

func TestSameWorkFewerOpsCostsLess(t *testing.T) {
	// The paper's argument in one assertion: identical micro-op work and
	// runtime, but packed into 8x fewer operations (a vector encoding),
	// must cost less total energy on comparable hardware.
	m := Default()
	usimd := m.Estimate(fakeResult(8000, 64000, 10000, mem.Stats{}), &machine.USIMD2)
	vector := m.Estimate(fakeResult(1000, 64000, 10000, mem.Stats{}), &machine.Vector2x2)
	if vector.Total() >= usimd.Total() {
		t.Errorf("vector encoding (%v) must cost less than µSIMD (%v)", vector.Total(), usimd.Total())
	}
}

func TestEDP(t *testing.T) {
	m := Default()
	res := fakeResult(10, 10, 100, mem.Stats{})
	if got := m.EDP(res, &machine.VLIW2); got != m.Estimate(res, &machine.VLIW2).Total()*100 {
		t.Errorf("EDP = %v", got)
	}
}

func TestUnitsCount(t *testing.T) {
	// Vector2-2w: 2 int + 1 branch + 1 L1 port + 2x4 vector lanes + 1 L2 port = 13.
	if got := units(&machine.Vector2x2); got != 13 {
		t.Errorf("units(Vector2-2w) = %d, want 13", got)
	}
	// uSIMD-8w: 8 int + 8 simd + 1 branch + 3 ports = 20.
	if got := units(&machine.USIMD8); got != 20 {
		t.Errorf("units(uSIMD-8w) = %d, want 20", got)
	}
}
