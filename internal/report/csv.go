package report

import (
	"encoding/csv"
	"fmt"
	"io"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sim"
)

// WriteCSV dumps the raw evaluation matrix — one row per (application,
// configuration, memory model) with cycles, stalls, operation counts and
// the per-region breakdown — for downstream plotting of the paper's
// figures with external tools.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "config", "isa", "issue", "memory",
		"cycles", "stall_cycles", "ops", "micro_ops",
		"l1_hits", "l1_misses", "l2_hits", "l2_misses", "flushes", "strided_accesses"}
	for r := 0; r < sim.MaxRegions; r++ {
		header = append(header,
			fmt.Sprintf("r%d_cycles", r), fmt.Sprintf("r%d_ops", r),
			fmt.Sprintf("r%d_micro_ops", r), fmt.Sprintf("r%d_stalls", r))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	memName := map[core.MemoryModel]string{core.Perfect: "perfect", core.Realistic: "realistic"}
	for _, a := range m.Apps {
		for _, cfg := range machine.All() {
			for _, mm := range []core.MemoryModel{core.Perfect, core.Realistic} {
				res := m.Get(a.Name, cfg.Name, mm)
				row := []string{
					a.Name, cfg.Name, cfg.ISA.String(), fmt.Sprint(cfg.Issue), memName[mm],
					fmt.Sprint(res.Cycles), fmt.Sprint(res.StallCycles),
					fmt.Sprint(res.Ops), fmt.Sprint(res.MicroOps),
					fmt.Sprint(res.Mem.L1Hits), fmt.Sprint(res.Mem.L1Misses),
					fmt.Sprint(res.Mem.L2Hits), fmt.Sprint(res.Mem.L2Misses),
					fmt.Sprint(res.Mem.CoherencyFlushes), fmt.Sprint(res.Mem.StridedVectorAccesses),
				}
				for r := 0; r < sim.MaxRegions; r++ {
					reg := res.Regions[r]
					row = append(row, fmt.Sprint(reg.Cycles), fmt.Sprint(reg.Ops),
						fmt.Sprint(reg.MicroOps), fmt.Sprint(reg.StallCycles))
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
