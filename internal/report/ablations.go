package report

import (
	"fmt"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
)

// Ablation quantifies one design decision by re-running the benchmark
// suite with the mechanism disabled (or upgraded) and reporting the
// cycle ratio against the baseline.
type Ablation struct {
	Name  string
	Desc  string
	Sched sched.Options
	Mem   mem.Options
}

// Ablations returns the studies covering the design decisions DESIGN.md
// calls out, plus the two directions the paper's conclusion names as
// future work (flexible scheduling, improved memory for strides).
func Ablations() []Ablation {
	return []Ablation{
		{Name: "no-chaining",
			Desc:  "vector consumers wait for full producer write-back (chaining off, Section 3.3)",
			Sched: sched.Options{NoChaining: true}},
		{Name: "overlap-drain",
			Desc:  "blocks end at last issue (optimistic drain-overlap upper bound)",
			Sched: sched.Options{OverlapDrain: true}},
		{Name: "software-pipeline",
			Desc:  "modulo-schedule self-loop blocks: back-to-back iterations initiate every II cycles",
			Sched: sched.Options{SoftwarePipeline: true}},
		{Name: "source-order-priority",
			Desc:  "list scheduler picks ready ops in program order instead of by critical path",
			Sched: sched.Options{SourceOrderPriority: true}},
		{Name: "no-prefetch",
			Desc: "tagged next-line L2 prefetcher off",
			Mem:  mem.Options{NoPrefetch: true}},
		{Name: "no-write-validate",
			Desc: "stride-one vector stores fetch missing lines",
			Mem:  mem.Options{NoWriteValidate: true}},
		{Name: "banked-strided-x4",
			Desc: "conflict-free banked L2: strided vector accesses at 4 words/cycle (the paper's future-work memory)",
			Mem:  mem.Options{StridedWordsPerCycle: 4}},
	}
}

// RunAblations executes every ablation for the given configuration and
// renders cycle ratios (ablated / baseline; <1 is faster) for the vector
// regions and the complete applications.
func RunAblations(cfg *machine.Config) (string, error) {
	t := &table{header: []string{"Ablation", "Benchmark", "vect ratio", "app ratio"}}
	for _, ab := range Ablations() {
		for _, a := range apps.All() {
			built := a.Build(VariantFor(cfg))
			baseProg, err := core.Compile(built.Func, cfg)
			if err != nil {
				return "", err
			}
			base, err := baseProg.RunModel(mem.NewHierarchy(cfg))
			if err != nil {
				return "", err
			}
			prog, err := core.CompileWith(built.Func, cfg, ab.Sched)
			if err != nil {
				return "", err
			}
			res, err := prog.RunModel(mem.NewHierarchyOpts(cfg, ab.Mem))
			if err != nil {
				return "", err
			}
			t.add(ab.Name, a.Name,
				f2(ratio(res.VectorCycles(), base.VectorCycles())),
				f2(ratio(res.Cycles, base.Cycles)))
		}
	}
	hdr := fmt.Sprintf("Ablations on %s (cycle ratio vs baseline; <1.00 faster, >1.00 slower)\n", cfg.Name)
	legend := ""
	for _, ab := range Ablations() {
		legend += fmt.Sprintf("  %-18s %s\n", ab.Name, ab.Desc)
	}
	return hdr + legend + "\n" + t.String(), nil
}
