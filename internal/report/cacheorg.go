package report

import (
	"fmt"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/energy"
	"vsimdvliw/internal/machine"
)

// CacheOrgStudy compares the L2 cache organizations of internal/cacheorg
// against the paper's built-in two-bank hierarchy: every benchmark on the
// 2-issue Vector2 configuration, reporting cycles, energy and EDP per
// organization normalized to the realistic baseline, plus the bicameral
// migration traffic. The interleaved organization's ratios are exactly
// 1.00 by construction (it is proven bit-identical to the baseline),
// which makes this figure its own sanity check.
func CacheOrgStudy() (string, error) {
	cfg := &machine.Vector2x2
	models := append([]core.MemoryModel{core.Realistic}, core.Organizations...)
	mtx, err := collect(apps.All(), []*machine.Config{cfg}, models, Options{})
	if err != nil {
		return "", err
	}
	em := energy.Default()

	t := &table{header: []string{"Benchmark", "Organization", "Cycles", "Cyc ratio", "Energy ratio", "EDP ratio", "Migrations"}}
	sums := make(map[core.MemoryModel][3]float64, len(models))
	for _, a := range apps.All() {
		base := mtx.Get(a.Name, cfg.Name, core.Realistic)
		baseE := em.Estimate(base, cfg).Total()
		baseEDP := em.EDP(base, cfg)
		for _, mm := range models {
			r := mtx.Get(a.Name, cfg.Name, mm)
			e := em.Estimate(r, cfg).Total()
			edp := em.EDP(r, cfg)
			migr := "-"
			if r.CacheOrg != nil && r.CacheOrg.Org == "bicameral" {
				migr = fmt.Sprintf("%d", r.CacheOrg.Migrations)
			}
			cr := float64(r.Cycles) / float64(base.Cycles)
			er := e / baseE
			dr := edp / baseEDP
			s := sums[mm]
			s[0] += cr
			s[1] += er
			s[2] += dr
			sums[mm] = s
			t.add(a.Name, mm.String(), fmt.Sprintf("%d", r.Cycles), f2(cr), f2(er), f2(dr), migr)
		}
	}
	n := float64(len(apps.All()))
	for _, mm := range models {
		s := sums[mm]
		t.add("AVERAGE", mm.String(), "", f2(s[0]/n), f2(s[1]/n), f2(s[2]/n), "")
	}
	return "Cache-organization study: cycles, energy and EDP per L2 organization,\n" +
		"normalized to the paper's two-bank interleaved L2 (Vector2-2w)\n" +
		t.String(), nil
}
