package report

import (
	"fmt"
	"reflect"
	"testing"

	"vsimdvliw/internal/cacheorg"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/metrics"
)

// cacheOrgs builds every organization for cfg, keyed for subtest names.
func cacheOrgs(cfg *machine.Config) map[string]func() cacheorg.Org {
	return map[string]func() cacheorg.Org{
		"interleaved": func() cacheorg.Org { return cacheorg.NewInterleaved(cfg) },
		"bicameral":   func() cacheorg.Org { return cacheorg.NewBicameral(cfg) },
		"banked2":     func() cacheorg.Org { return cacheorg.NewBanked(cfg, 2) },
		"banked4":     func() cacheorg.Org { return cacheorg.NewBanked(cfg, 4) },
		"banked8":     func() cacheorg.Org { return cacheorg.NewBanked(cfg, 8) },
	}
}

// TestMatrixDifferentialCacheOrgs replays the reduced matrix through every
// cache organization twice — once with the optimized stride-class line
// walks, once with the retained reference per-element walk — and requires
// the complete simulation results to be identical, pinning the walks to
// the oracle at application scale for every organization.
func TestMatrixDifferentialCacheOrgs(t *testing.T) {
	for _, a := range reducedApps(t) {
		for _, cfg := range reducedCfgs {
			built := a.Build(VariantFor(cfg))
			prog, err := core.Compile(built.Func, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for name, mk := range cacheOrgs(cfg) {
				t.Run(fmt.Sprintf("%s/%s/%s", a.Name, cfg.Name, name), func(t *testing.T) {
					fast, err := prog.RunModel(cacheorg.New(cfg, mk()))
					if err != nil {
						t.Fatal(err)
					}
					ref, err := prog.RunModel(cacheorg.NewReference(cfg, mk()))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(fast, ref) {
						t.Errorf("fast walk diverges from reference walk:\n  fast: %+v\n  ref:  %+v", fast, ref)
					}
					if got := fast.Stalls.Total(); got != fast.StallCycles {
						t.Errorf("stall breakdown sums to %d, want %d", got, fast.StallCycles)
					}
				})
			}
		}
	}
}

// TestMatrixCacheOrgInterleavedMatchesHierarchy proves the pluggable
// two-bank organizations bit-identical to the pre-existing mem.Hierarchy
// at application scale: every metric of the run — cycles, stall
// attribution, memory statistics — must match, for both the interleaved
// organization and the banked one at N = 2.
func TestMatrixCacheOrgInterleavedMatchesHierarchy(t *testing.T) {
	for _, a := range reducedApps(t) {
		for _, cfg := range reducedCfgs {
			built := a.Build(VariantFor(cfg))
			prog, err := core.Compile(built.Func, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base, err := prog.RunModel(mem.NewHierarchy(cfg))
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"interleaved", "banked2"} {
				t.Run(fmt.Sprintf("%s/%s/%s", a.Name, cfg.Name, name), func(t *testing.T) {
					org := cacheOrgs(cfg)[name]()
					got, err := prog.RunModel(cacheorg.New(cfg, org))
					if err != nil {
						t.Fatal(err)
					}
					if got.CacheOrg == nil {
						t.Fatal("cacheorg run carries no organization stats")
					}
					// The organization snapshot has no counterpart on the
					// baseline result; everything else must be identical.
					got.CacheOrg = nil
					if !reflect.DeepEqual(got, base) {
						t.Errorf("%s diverges from mem.Hierarchy:\n  org:  %+v\n  base: %+v", name, base, got)
					}
				})
			}
		}
	}
}

// TestCacheOrgRunInvariants runs one app per organization through the
// public Run path (pooled machines) and asserts the exact-sum invariants:
// the stall breakdown sums exactly to the stall cycles, every bank/
// partition split sums to the L2 totals, and a bicameral run reports
// partition traffic consistent with the folded mem.Stats.
func TestCacheOrgRunInvariants(t *testing.T) {
	a := reducedApps(t)[0]
	cfg := &machine.Vector2x2
	built := a.Build(VariantFor(cfg))
	prog, err := core.Compile(built.Func, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mm := range core.Organizations {
		t.Run(mm.String(), func(t *testing.T) {
			r, err := prog.Run(mm)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Stalls.Total(); got != r.StallCycles {
				t.Errorf("stall breakdown sums to %d, want %d", got, r.StallCycles)
			}
			if mm == core.Bicameral && r.Stalls[metrics.CauseMigration] == 0 {
				t.Logf("note: no migration stalls on %s (allowed, but unexpected for mixed scalar/vector apps)", a.Name)
			}
			co := r.CacheOrg
			if co == nil {
				t.Fatal("no organization stats on cacheorg run")
			}
			var bh, bm int64
			for _, v := range co.BankHits {
				bh += v
			}
			for _, v := range co.BankMisses {
				bm += v
			}
			if len(co.BankHits) > 0 {
				if bh != r.Mem.L2Hits || bm != r.Mem.L2Misses {
					t.Errorf("bank split %d/%d does not sum to L2 totals %d/%d",
						bh, bm, r.Mem.L2Hits, r.Mem.L2Misses)
				}
			} else {
				if co.ScalarHits+co.VectorHits != r.Mem.L2Hits ||
					co.ScalarMisses+co.VectorMisses != r.Mem.L2Misses {
					t.Errorf("partition split %d+%d/%d+%d does not sum to L2 totals %d/%d",
						co.ScalarHits, co.VectorHits, co.ScalarMisses, co.VectorMisses,
						r.Mem.L2Hits, r.Mem.L2Misses)
				}
			}
			if fold := r.Mem.L2BankHits[0] + r.Mem.L2BankHits[1]; fold != r.Mem.L2Hits {
				t.Errorf("folded bank hits %d != L2 hits %d", fold, r.Mem.L2Hits)
			}
			if fold := r.Mem.L2BankMisses[0] + r.Mem.L2BankMisses[1]; fold != r.Mem.L2Misses {
				t.Errorf("folded bank misses %d != L2 misses %d", fold, r.Mem.L2Misses)
			}
		})
	}
}
