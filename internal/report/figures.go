package report

import (
	"fmt"
	"strings"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/energy"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// Table1 reports the vector regions of each benchmark and the percentage
// of execution time they represent on the 2-issue µSIMD-VLIW machine
// (realistic memory), like the paper's Table 1.
func (m *Matrix) Table1() string {
	t := &table{header: []string{"Benchmark", "%Vect", "Vector Regions"}}
	for _, a := range m.Apps {
		r := m.Get(a.Name, machine.USIMD2.Name, core.Realistic)
		t.add(a.Name, pct(ratio(r.VectorCycles(), r.Cycles)), strings.Join(a.Regions, ", "))
	}
	return "Table 1: vector regions (2-issue µSIMD-VLIW, realistic memory)\n" + t.String()
}

// Figure1 reports the scalability of the scalar regions, vector regions
// and complete applications on the 2/4/8-issue µSIMD-VLIW machines,
// relative to the 2-issue machine (realistic memory).
func (m *Matrix) Figure1() string {
	cfgs := []*machine.Config{&machine.USIMD2, &machine.USIMD4, &machine.USIMD8}
	t := &table{header: []string{"Benchmark",
		"scal 2w", "scal 4w", "scal 8w",
		"vect 2w", "vect 4w", "vect 8w",
		"app 2w", "app 4w", "app 8w"}}
	var scal, vect, app [3][]float64
	for _, a := range m.Apps {
		base := m.Get(a.Name, machine.USIMD2.Name, core.Realistic)
		row := []string{a.Name}
		var cells [3][3]float64
		for i, cfg := range cfgs {
			r := m.Get(a.Name, cfg.Name, core.Realistic)
			cells[0][i] = ratio(scalarCycles(base), scalarCycles(r))
			cells[1][i] = ratio(base.VectorCycles(), r.VectorCycles())
			cells[2][i] = ratio(base.Cycles, r.Cycles)
		}
		for g := 0; g < 3; g++ {
			for i := 0; i < 3; i++ {
				row = append(row, f2(cells[g][i]))
			}
		}
		for i := 0; i < 3; i++ {
			scal[i] = append(scal[i], cells[0][i])
			vect[i] = append(vect[i], cells[1][i])
			app[i] = append(app[i], cells[2][i])
		}
		t.add(row...)
	}
	avg := []string{"AVERAGE"}
	for _, g := range [][3][]float64{{scal[0], scal[1], scal[2]}, {vect[0], vect[1], vect[2]}, {app[0], app[1], app[2]}} {
		for i := 0; i < 3; i++ {
			avg = append(avg, f2(mean(g[i])))
		}
	}
	t.add(avg...)
	return "Figure 1: µSIMD-VLIW scalability over 2-issue (speed-up; realistic memory)\n" + t.String()
}

// Table2 prints the ten processor configurations.
func (m *Matrix) Table2() string {
	t := &table{header: []string{"Config", "ISA", "Issue", "IntRegs", "SIMD/VecRegs",
		"AccRegs", "IntU", "SIMDU", "VecU(xLanes)", "L1ports", "L2ports(xWords)"}}
	for _, c := range machine.All() {
		vec := "-"
		if c.VectorUnits > 0 {
			vec = fmt.Sprintf("%dx%d", c.VectorUnits, c.Lanes)
		}
		l2 := "-"
		if c.L2Ports > 0 {
			l2 = fmt.Sprintf("%dx%d", c.L2Ports, c.L2PortWords)
		}
		t.add(c.Name, c.ISA.String(), fmt.Sprint(c.Issue), fmt.Sprint(c.IntRegs),
			fmt.Sprint(c.SIMDRegs), fmt.Sprint(c.AccRegs), fmt.Sprint(c.IntUnits),
			fmt.Sprint(c.SIMDUnits), vec, fmt.Sprint(c.L1Ports), l2)
	}
	return "Table 2: processor configurations\n" + t.String()
}

// Figure3 prints the latency descriptors of representative operations
// under the vector-length values of the paper's Figure 3 discussion.
func (m *Matrix) Figure3() string {
	cfg := &machine.Vector2x2
	t := &table{header: []string{"Operation", "VL", "L", "Tlr=(VL-1)/LN", "Tlw=L+(VL-1)/LN", "unit busy"}}
	add := func(name string, op ir.Op, vl int) {
		in := op.Opcode.Get()
		rate := cfg.Lanes
		if op.Opcode.IsVectorMem() {
			rate = cfg.L2PortWords
		}
		occ := 1
		tlr := 0
		tlw := in.Lat
		if in.Vector {
			occ = (vl + rate - 1) / rate
			tlr = (vl - 1) / rate
			tlw = in.Lat + (vl-1)/rate
		}
		t.add(name, fmt.Sprint(vl), fmt.Sprint(in.Lat), fmt.Sprint(tlr), fmt.Sprint(tlw), fmt.Sprint(occ))
	}
	add("add (scalar)", ir.Op{Opcode: isa.ADD}, 1)
	for _, vl := range []int{4, 8, 16} {
		add("vadd.w", ir.Op{Opcode: isa.VADD}, vl)
	}
	for _, vl := range []int{4, 8, 16} {
		add("vld", ir.Op{Opcode: isa.VLD}, vl)
	}
	return "Figure 3: latency descriptors (4 lanes, 4-word L2 port)\n" + t.String()
}

// Figure4 rebuilds the paper's motion-estimation scheduling example (the
// dist1 sum of absolute differences over an 8x16 block pair) and prints
// its schedule on the 2-issue Vector2 machine.
func Figure4() (string, error) {
	b := ir.NewBuilder("dist1")
	const lx = 64 // row stride between block rows
	blk1 := b.Alloc(16 * lx)
	blk2 := b.Alloc(16 * lx)
	out := b.Alloc(8)

	emit := func(label string, f func()) {
		blkRef := b.Block()
		start := len(blkRef.Ops)
		f()
		for i := start; i < len(blkRef.Ops); i++ {
			blkRef.Ops[i].Label = label
		}
	}
	r1 := b.Const(blk1)
	r2 := b.Const(blk2)
	r7 := b.Const(out)
	emit("VS=lx", func() { b.SetVSI(lx) })
	emit("VL=8", func() { b.SetVLI(8) })
	var a1, a2, v1, v2, v3, v4 ir.Reg
	var r3, r4, r5, r6 ir.Reg
	emit("(a)", func() { a1 = b.Aclr() })
	emit("(b)", func() { r3 = b.AddI(r1, 8) })
	emit("(c)", func() { v1 = b.Vld(r1, 0, 1) })
	emit("(d)", func() { a2 = b.Aclr() })
	emit("(e)", func() { r4 = b.AddI(r2, 8) })
	emit("(g)", func() { v2 = b.Vld(r2, 0, 2) })
	emit("(i)", func() { v3 = b.Vld(r3, 0, 1) })
	emit("(j)", func() { v4 = b.Vld(r4, 0, 2) })
	emit("(k)", func() { b.Vsada(a1, v1, v2) })
	emit("(m)", func() { b.Vsada(a2, v3, v4) })
	emit("(n)", func() { r5 = b.Vsum(simd.W8, a1) })
	emit("(o)", func() { r6 = b.Vsum(simd.W8, a2) })
	emit("(p)", func() {
		sum := b.Add(r5, r6)
		b.Store(isa.STD, sum, r7, 0, 3)
	})
	f := b.Func()
	fs, err := sched.Schedule(f, &machine.Vector2x2)
	if err != nil {
		return "", err
	}
	return "Figure 4: scheduling of motion estimation (dist1) on the 2-issue Vector2 machine\n" +
		fs.Blocks[0].Dump(&machine.Vector2x2), nil
}

// Figure5 reports the vector-region speed-ups of all ten configurations
// over the 2-issue VLIW machine under the given memory model (Figure 5a:
// perfect, Figure 5b: realistic).
func (m *Matrix) Figure5(mem core.MemoryModel) string {
	return m.speedups(mem, true,
		fmt.Sprintf("Figure 5%s: speed-up in vector regions (%s memory)",
			map[core.MemoryModel]string{core.Perfect: "a", core.Realistic: "b"}[mem],
			map[core.MemoryModel]string{core.Perfect: "perfect", core.Realistic: "realistic"}[mem]))
}

// Figure6 reports the complete-application speed-ups over the 2-issue
// VLIW machine (realistic memory).
func (m *Matrix) Figure6() string {
	return m.speedups(core.Realistic, false, "Figure 6: speed-up in complete applications (realistic memory)")
}

func (m *Matrix) speedups(mem core.MemoryModel, vectorOnly bool, title string) string {
	cfgs := machine.All()
	header := []string{"Benchmark"}
	for _, c := range cfgs {
		header = append(header, c.Name)
	}
	t := &table{header: header}
	sums := make([][]float64, len(cfgs))
	metric := func(app string, cfg *machine.Config) float64 {
		base := m.Get(app, machine.VLIW2.Name, mem)
		r := m.Get(app, cfg.Name, mem)
		if vectorOnly {
			return ratio(base.VectorCycles(), r.VectorCycles())
		}
		return ratio(base.Cycles, r.Cycles)
	}
	for _, a := range m.Apps {
		row := []string{a.Name}
		for i, cfg := range cfgs {
			sp := metric(a.Name, cfg)
			sums[i] = append(sums[i], sp)
			row = append(row, f2(sp))
		}
		t.add(row...)
	}
	avg := []string{"AVERAGE"}
	for i := range cfgs {
		avg = append(avg, f2(mean(sums[i])))
	}
	t.add(avg...)
	return title + "\n" + t.String()
}

// Figure7 reports the dynamic operation count of the µSIMD and vector
// versions normalized to the scalar (VLIW) version, split by region
// (R0 = scalar region, R1..R3 = the vector regions of Table 1).
func (m *Matrix) Figure7() string {
	type cfgv struct {
		name string
		cfg  *machine.Config
	}
	versions := []cfgv{
		{"VLIW", &machine.VLIW2},
		{"+uSIMD", &machine.USIMD2},
		{"+Vector", &machine.Vector2x2},
	}
	t := &table{header: []string{"Benchmark", "Version", "R0", "R1", "R2", "R3", "Total"}}
	for _, a := range m.Apps {
		base := m.Get(a.Name, machine.VLIW2.Name, core.Realistic)
		for _, ver := range versions {
			r := m.Get(a.Name, ver.cfg.Name, core.Realistic)
			row := []string{a.Name, ver.name}
			for reg := 0; reg < 4; reg++ {
				row = append(row, f2(ratio(r.Regions[reg].Ops, base.Ops)))
			}
			row = append(row, f2(ratio(r.Ops, base.Ops)))
			t.add(row...)
		}
	}
	return "Figure 7: dynamic operation count normalized to the VLIW version\n" + t.String()
}

// Table3 reports, for every configuration, the operations and
// micro-operations per cycle and the speed-ups of the scalar regions, the
// vector regions and the complete applications, averaged over the six
// benchmarks (realistic memory) — the paper's Table 3.
func (m *Matrix) Table3() string {
	t := &table{header: []string{"Config",
		"scal OPC", "scal SP",
		"vect OPC", "vect uOPC", "vect SP",
		"app OPC", "app uOPC", "app SP"}}
	for _, cfg := range machine.All() {
		var sOPC, sSP, vOPC, vUOPC, vSP, aOPC, aUOPC, aSP []float64
		for _, a := range m.Apps {
			base := m.Get(a.Name, machine.VLIW2.Name, core.Realistic)
			r := m.Get(a.Name, cfg.Name, core.Realistic)
			vo, vm, vc := regionOps(r)
			_, _, bvc := regionOps(base)
			sc := scalarCycles(r)
			sOPC = append(sOPC, ratio(r.Regions[0].Ops, sc))
			sSP = append(sSP, ratio(scalarCycles(base), sc))
			vOPC = append(vOPC, ratio(vo, vc))
			vUOPC = append(vUOPC, ratio(vm, vc))
			vSP = append(vSP, ratio(bvc, vc))
			aOPC = append(aOPC, r.OPC())
			aUOPC = append(aUOPC, r.MicroOPC())
			aSP = append(aSP, ratio(base.Cycles, r.Cycles))
		}
		t.add(cfg.Name, f2(mean(sOPC)), f2(mean(sSP)),
			f2(mean(vOPC)), f2(mean(vUOPC)), f2(mean(vSP)),
			f2(mean(aOPC)), f2(mean(aUOPC)), f2(mean(aSP)))
	}
	return "Table 3: OPC / µOPC / speed-up averages over the six benchmarks (realistic memory)\n" + t.String()
}

// EnergyTable estimates, with the first-order model of internal/energy,
// the energy and energy-delay product of every configuration over the six
// benchmarks (realistic memory), normalized to the 2-issue VLIW machine.
// It quantifies the power argument the paper makes qualitatively: the
// vector configurations do the same micro-op work with far fewer fetched
// operations and narrower issue logic.
func (m *Matrix) EnergyTable() string {
	model := energy.Default()
	t := &table{header: []string{"Config",
		"fetch", "exec", "memory", "static", "energy", "EDP", "perf"}}
	var baseE, baseEDP, baseCyc float64
	for _, cfg := range machine.All() {
		var b energy.Breakdown
		var edp, cyc float64
		for _, a := range m.Apps {
			r := m.Get(a.Name, cfg.Name, core.Realistic)
			e := model.Estimate(r, cfg)
			b.Fetch += e.Fetch
			b.Exec += e.Exec
			b.Memory += e.Memory
			b.Static += e.Static
			edp += model.EDP(r, cfg)
			cyc += float64(r.Cycles)
		}
		if cfg.Name == machine.VLIW2.Name {
			baseE, baseEDP, baseCyc = b.Total(), edp, cyc
		}
		t.add(cfg.Name,
			f2(b.Fetch/baseE), f2(b.Exec/baseE), f2(b.Memory/baseE), f2(b.Static/baseE),
			f2(b.Total()/baseE), f2(edp/baseEDP), f2(baseCyc/cyc))
	}
	return "Energy model (normalized to VLIW-2w; lower energy/EDP is better, higher perf is better)\n" +
		t.String()
}
