package report

import (
	"fmt"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
)

// LanesStudy evaluates the paper's lane-count decision ("In this work, we
// use four independent vector lanes. As our vector lengths are relatively
// short, a larger number of lanes would not pay off"): it rebuilds the
// 2-issue Vector2 configuration with 2, 4 and 8 lanes (and a matching
// L2 port width) and reports the vector-region cycles of every benchmark,
// normalized to the 4-lane baseline.
func LanesStudy() (string, error) {
	lanes := []int{2, 4, 8}
	cfgs := make([]*machine.Config, len(lanes))
	for i, ln := range lanes {
		c := machine.Vector2x2 // copy
		c.Name = fmt.Sprintf("Vector2-2w-%dln", ln)
		c.Lanes = ln
		c.L2PortWords = ln
		if err := c.Validate(); err != nil {
			return "", err
		}
		cfgs[i] = &c
	}

	t := &table{header: []string{"Benchmark", "2 lanes", "4 lanes", "8 lanes"}}
	sums := make([]float64, len(lanes))
	for _, a := range apps.All() {
		built := a.Build(VariantFor(cfgs[0]))
		var cells []float64
		for _, cfg := range cfgs {
			prog, err := core.Compile(built.Func, cfg)
			if err != nil {
				return "", err
			}
			res, err := prog.RunModel(mem.NewHierarchy(cfg))
			if err != nil {
				return "", err
			}
			cells = append(cells, float64(res.VectorCycles()))
		}
		row := []string{a.Name}
		for i, c := range cells {
			ratio := cells[1] / c // speed-up vs 4-lane baseline
			sums[i] += ratio
			row = append(row, f2(ratio))
		}
		t.add(row...)
	}
	avg := []string{"AVERAGE"}
	for _, s := range sums {
		avg = append(avg, f2(s/6))
	}
	t.add(avg...)
	return "Lane-count study: vector-region speed-up vs the 4-lane baseline (2-issue Vector2)\n" +
		t.String(), nil
}
