package report

import (
	"context"
	"errors"
	"testing"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/sim"
)

// TestCollectCanceled checks that a canceled sweep fails fast with the
// typed cancellation instead of completing (or wedging) the matrix.
func TestCollectCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := collect(reducedApps(t), reducedCfgs, core.Models, Options{Parallelism: 4, Context: ctx})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want to unwrap to sim.ErrCanceled", err)
	}
}

// TestCollectNilContextUnchanged checks the default path still sweeps to
// completion with identical results.
func TestCollectNilContextUnchanged(t *testing.T) {
	withCtx, err := collect(reducedApps(t), reducedCfgs, core.Models, Options{Parallelism: 2, Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := collect(reducedApps(t), reducedCfgs, core.Models, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range plain.sortedKeys() {
		if plain.res[k].Cycles != withCtx.res[k].Cycles {
			t.Fatalf("cell %s: context plumbing changed the result", k)
		}
	}
}
