package report

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"testing"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sim"
)

// checkCellInvariants asserts the exact-sum properties the metrics layer
// guarantees on one matrix cell, making the observability layer itself a
// correctness oracle for the memory hierarchy and the scheduler profiles.
func checkCellInvariants(t *testing.T, label string, res *sim.Result) {
	t.Helper()
	if got := res.Stalls.Total(); got != res.StallCycles {
		t.Errorf("%s: stall breakdown sums to %d, StallCycles %d", label, got, res.StallCycles)
	}
	for r := range res.Regions {
		rs := &res.Regions[r]
		if got := rs.Stalls.Total(); got != rs.StallCycles {
			t.Errorf("%s: region %d breakdown sums to %d, StallCycles %d", label, r, got, rs.StallCycles)
		}
	}
	var bankHits, bankMisses int64
	for b := 0; b < mem.NumL2Banks; b++ {
		bankHits += res.Mem.L2BankHits[b]
		bankMisses += res.Mem.L2BankMisses[b]
	}
	if bankHits != res.Mem.L2Hits {
		t.Errorf("%s: bank hits sum to %d, L2Hits %d", label, bankHits, res.Mem.L2Hits)
	}
	if bankMisses != res.Mem.L2Misses {
		t.Errorf("%s: bank misses sum to %d, L2Misses %d", label, bankMisses, res.Mem.L2Misses)
	}
	if res.Util == nil {
		t.Fatalf("%s: Util not populated", label)
	}
	if got := res.Util.Total(); got != res.Cycles {
		t.Errorf("%s: issue histogram sums to %d, Cycles %d", label, got, res.Cycles)
	}
}

// TestReducedMatrixInvariants asserts the exact-sum invariants on every
// cell of the reduced app x config x memory-model matrix.
func TestReducedMatrixInvariants(t *testing.T) {
	a := reducedApps(t)
	mtx, err := collect(a, reducedCfgs, core.Models, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range a {
		for _, cfg := range reducedCfgs {
			for _, mm := range []core.MemoryModel{core.Perfect, core.Realistic} {
				label := app.Name + "/" + cfg.Name + "/" + mm.String()
				checkCellInvariants(t, label, mtx.Get(app.Name, cfg.Name, mm))
			}
		}
	}
}

// TestFullMatrixInvariantsSpotCheck sweeps the invariants over the full
// shared matrix (all apps, all ten configurations, both memory models).
func TestFullMatrixInvariantsSpotCheck(t *testing.T) {
	m := getMatrix(t)
	var stalls int64
	for _, app := range m.Apps {
		for _, cfg := range machine.All() {
			for _, mm := range []core.MemoryModel{core.Perfect, core.Realistic} {
				res := m.Get(app.Name, cfg.Name, mm)
				checkCellInvariants(t, app.Name+"/"+cfg.Name+"/"+mm.String(), res)
				stalls += res.StallCycles
			}
		}
	}
	if stalls == 0 {
		t.Error("no cell of the full matrix stalled; the invariants were vacuous")
	}
}

// TestMetricsJSONLAgreesWithCSV cross-checks the JSONL export against the
// CSV matrix: same cells in the same order, and identical totals wherever
// both report the same quantity.
func TestMetricsJSONLAgreesWithCSV(t *testing.T) {
	m := getMatrix(t)
	var jb, cb bytes.Buffer
	if err := m.WriteMetricsJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cb).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header, rows := rows[0], rows[1:]
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	num := func(row []string, name string) int64 {
		v, err := strconv.ParseInt(row[col[name]], 10, 64)
		if err != nil {
			t.Fatalf("column %s: %v", name, err)
		}
		return v
	}

	sc := bufio.NewScanner(&jb)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		if n >= len(rows) {
			t.Fatal("JSONL has more lines than the CSV has rows")
		}
		row := rows[n]
		var cell CellMetrics
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		label := cell.App + "/" + cell.Config + "/" + cell.Memory
		if cell.App != row[col["app"]] || cell.Config != row[col["config"]] || cell.Memory != row[col["memory"]] {
			t.Fatalf("line %d: cell %s does not match CSV row %s/%s/%s",
				n+1, label, row[col["app"]], row[col["config"]], row[col["memory"]])
		}
		res := cell.Stats
		if res.Cycles != num(row, "cycles") || res.StallCycles != num(row, "stall_cycles") ||
			res.Ops != num(row, "ops") || res.MicroOps != num(row, "micro_ops") {
			t.Errorf("%s: cycle/op totals disagree with CSV", label)
		}
		if res.Mem.L2Hits != num(row, "l2_hits") || res.Mem.L2Misses != num(row, "l2_misses") {
			t.Errorf("%s: L2 totals disagree with CSV", label)
		}
		if got := res.Mem.L2BankHits[0] + res.Mem.L2BankHits[1]; got != num(row, "l2_hits") {
			t.Errorf("%s: bank hits %d disagree with CSV l2_hits %d", label, got, num(row, "l2_hits"))
		}
		if got := res.Stalls.Total(); got != num(row, "stall_cycles") {
			t.Errorf("%s: breakdown total %d disagrees with CSV stall_cycles %d", label, got, num(row, "stall_cycles"))
		}
		var perRegion int64
		for r := range res.Regions {
			perRegion += res.Regions[r].StallCycles
		}
		if perRegion != num(row, "r0_stalls")+num(row, "r1_stalls")+num(row, "r2_stalls")+num(row, "r3_stalls") {
			t.Errorf("%s: per-region stalls disagree with CSV", label)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("JSONL has %d lines, CSV has %d rows", n, len(rows))
	}
}
