package report

import (
	"reflect"
	"testing"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/sched"
)

// TestReferenceCompileMatchesCollect is the report-level leg of the
// scheduler's differential proof (ISSUE 7): over the reduced app/config
// matrix, programs compiled through the retained original scheduler
// (core.CompileReference) must carry schedules identical to the fast
// path's and produce simulation results reflect.DeepEqual to the ones a
// regular collect sweep records — i.e. every figure and table derived
// from the matrix is byte-identical no matter which scheduler compiled
// the cells.
func TestReferenceCompileMatchesCollect(t *testing.T) {
	a := reducedApps(t)
	mtx, err := collect(a, reducedCfgs, core.Models, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range a {
		for _, cfg := range reducedCfgs {
			built := app.Build(VariantFor(cfg))
			fast, err := core.Compile(built.Func, cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", app.Name, cfg.Name, err)
			}
			ref, err := core.CompileReference(built.Func, cfg, sched.Options{})
			if err != nil {
				t.Fatalf("%s on %s: reference compile: %v", app.Name, cfg.Name, err)
			}

			// Schedule identity, field by field (the sync.Once memo slots
			// make whole-FuncSched DeepEqual meaningless).
			fs, rs := fast.Sched, ref.Sched
			if fs.MaxPressure != rs.MaxPressure {
				t.Fatalf("%s on %s: MaxPressure: fast=%v reference=%v",
					app.Name, cfg.Name, fs.MaxPressure, rs.MaxPressure)
			}
			if len(fs.Blocks) != len(rs.Blocks) {
				t.Fatalf("%s on %s: block count: fast=%d reference=%d",
					app.Name, cfg.Name, len(fs.Blocks), len(rs.Blocks))
			}
			for bi := range fs.Blocks {
				fb, rb := fs.Blocks[bi], rs.Blocks[bi]
				if fb.Length != rb.Length || fb.II != rb.II || !reflect.DeepEqual(fb.Ops, rb.Ops) {
					t.Fatalf("%s on %s B%d: schedules diverge", app.Name, cfg.Name, bi)
				}
				for _, steady := range []bool{false, true} {
					if !reflect.DeepEqual(fb.Profile(steady), rb.Profile(steady)) {
						t.Fatalf("%s on %s B%d: Profile(steady=%v) diverges",
							app.Name, cfg.Name, bi, steady)
					}
				}
			}

			// Result identity against the sweep's recorded cells.
			for _, mm := range core.Models {
				res, err := ref.Run(mm)
				if err != nil {
					t.Fatalf("%s on %s under %s: reference run: %v", app.Name, cfg.Name, mm, err)
				}
				want := mtx.res[key(app.Name, cfg.Name, mm)]
				if want == nil {
					t.Fatalf("%s on %s under %s: cell missing from sweep", app.Name, cfg.Name, mm)
				}
				if !reflect.DeepEqual(res, want) {
					t.Errorf("%s on %s under %s: reference-compiled result differs from collect sweep",
						app.Name, cfg.Name, mm)
				}
			}
		}
	}
}
