package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenArtifacts freezes the rendered output of every table and
// figure. The whole pipeline — synthetic inputs, kernels, scheduler,
// memory hierarchy, simulator — is deterministic, so any diff here is a
// real behaviour change. Regenerate intentionally with:
//
//	go test ./internal/report -run TestGolden -update
func TestGoldenArtifacts(t *testing.T) {
	m := getMatrix(t)
	artifacts := map[string]func() string{
		"table1.txt":   m.Table1,
		"figure1.txt":  m.Figure1,
		"table2.txt":   m.Table2,
		"figure3.txt":  m.Figure3,
		"figure5a.txt": func() string { return m.Figure5(core.Perfect) },
		"figure5b.txt": func() string { return m.Figure5(core.Realistic) },
		"figure6.txt":  m.Figure6,
		"figure7.txt":  m.Figure7,
		"table3.txt":   m.Table3,
		"energy.txt":   m.EnergyTable,
		"figure4.txt": func() string {
			out, err := Figure4()
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
		"lanes.txt": func() string {
			out, err := LanesStudy()
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
		"ablations.txt": func() string {
			out, err := RunAblations(&machine.Vector2x2)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
		"cacheorg.txt": func() string {
			out, err := CacheOrgStudy()
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata/golden", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, render := range artifacts {
		path := filepath.Join("testdata", "golden", name)
		got := render()
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create the golden files)", name, err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from the golden output; run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s",
				name, got, want)
		}
	}
}
