package report

import (
	"io"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/metrics"
	"vsimdvliw/internal/sim"
)

// CellMetrics is the machine-readable export of one evaluation-matrix
// cell: the full simulation result (with stall-cause breakdown, per-bank
// counters and utilization histograms) keyed by the cell's coordinates.
// Struct field order is the JSON wire order, and StallsByOpcode marshals
// with sorted keys, so the export is deterministic.
type CellMetrics struct {
	App            string           `json:"app"`
	Config         string           `json:"config"`
	ISA            string           `json:"isa"`
	Issue          int              `json:"issue"`
	Memory         string           `json:"memory"`
	Stats          *sim.Result      `json:"stats"`
	StallsByOpcode map[string]int64 `json:"stalls_by_opcode,omitempty"`
}

// WriteMetricsJSONL exports the full evaluation matrix as JSONL, one
// CellMetrics object per line, in the same cell order as WriteCSV (every
// configuration; requires a fully collected matrix).
func (m *Matrix) WriteMetricsJSONL(w io.Writer) error {
	tw := metrics.NewTraceWriter(w, 0)
	memName := map[core.MemoryModel]string{core.Perfect: "perfect", core.Realistic: "realistic"}
	for _, a := range m.Apps {
		for _, cfg := range machine.All() {
			for _, mm := range []core.MemoryModel{core.Perfect, core.Realistic} {
				res := m.Get(a.Name, cfg.Name, mm)
				tw.Event(CellMetrics{
					App: a.Name, Config: cfg.Name, ISA: cfg.ISA.String(),
					Issue: cfg.Issue, Memory: memName[mm],
					Stats:          res,
					StallsByOpcode: res.StallsByOpcode(),
				})
			}
		}
	}
	return tw.Err()
}
