package report

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/energy"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
)

// The matrix is expensive (120 runs); collect it once for all tests.
var (
	matrixOnce sync.Once
	matrix     *Matrix
	matrixErr  error
)

func getMatrix(t *testing.T) *Matrix {
	t.Helper()
	matrixOnce.Do(func() { matrix, matrixErr = Collect(nil) })
	if matrixErr != nil {
		t.Fatal(matrixErr)
	}
	return matrix
}

func TestVariantFor(t *testing.T) {
	if VariantFor(&machine.VLIW8) != kernels.Scalar ||
		VariantFor(&machine.USIMD2) != kernels.USIMD ||
		VariantFor(&machine.Vector1x4) != kernels.Vector {
		t.Error("VariantFor mapping wrong")
	}
}

func TestCollectCoversFullMatrix(t *testing.T) {
	m := getMatrix(t)
	if got := len(m.sortedKeys()); got != 6*10*2 {
		t.Fatalf("collected %d cells, want 120", got)
	}
	for _, a := range m.Apps {
		for _, cfg := range machine.All() {
			for _, mem := range []core.MemoryModel{core.Perfect, core.Realistic} {
				r := m.Get(a.Name, cfg.Name, mem)
				if r.Cycles <= 0 {
					t.Errorf("%s/%s: no cycles", a.Name, cfg.Name)
				}
			}
		}
	}
}

func TestAllRenderersProduceOutput(t *testing.T) {
	m := getMatrix(t)
	outputs := map[string]string{
		"table1":   m.Table1(),
		"figure1":  m.Figure1(),
		"table2":   m.Table2(),
		"figure3":  m.Figure3(),
		"figure5a": m.Figure5(core.Perfect),
		"figure5b": m.Figure5(core.Realistic),
		"figure6":  m.Figure6(),
		"figure7":  m.Figure7(),
		"table3":   m.Table3(),
	}
	for name, out := range outputs {
		if len(out) < 100 {
			t.Errorf("%s: suspiciously short output:\n%s", name, out)
		}
		if !strings.Contains(out, "jpeg_enc") && !strings.Contains(out, "VLIW") &&
			!strings.Contains(out, "vadd") {
			t.Errorf("%s: missing expected content", name)
		}
	}
	fig4, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(k)", "(m)", "(n)", "VS=lx", "VL=8", "VALU0", "pL2_0"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("figure 4 missing %q:\n%s", want, fig4)
		}
	}
}

func TestPerfectMemoryNeverSlower(t *testing.T) {
	m := getMatrix(t)
	for _, a := range m.Apps {
		for _, cfg := range machine.All() {
			p := m.Get(a.Name, cfg.Name, core.Perfect)
			r := m.Get(a.Name, cfg.Name, core.Realistic)
			if r.Cycles < p.Cycles {
				t.Errorf("%s/%s: realistic (%d) faster than perfect (%d)",
					a.Name, cfg.Name, r.Cycles, p.Cycles)
			}
		}
	}
}

func TestPaperShapeScalarRegionsSaturate(t *testing.T) {
	// Finding 1 (Figure 1 / Table 3): scalar regions gain much less from
	// 4w->8w than from 2w->4w.
	m := getMatrix(t)
	var sp24, sp48 []float64
	for _, a := range m.Apps {
		r2 := scalarCycles(m.Get(a.Name, machine.USIMD2.Name, core.Realistic))
		r4 := scalarCycles(m.Get(a.Name, machine.USIMD4.Name, core.Realistic))
		r8 := scalarCycles(m.Get(a.Name, machine.USIMD8.Name, core.Realistic))
		sp24 = append(sp24, float64(r2)/float64(r4))
		sp48 = append(sp48, float64(r4)/float64(r8))
	}
	if mean(sp24) < 1.05 {
		t.Errorf("scalar regions do not scale 2w->4w at all: %.2f", mean(sp24))
	}
	if mean(sp48) > mean(sp24) {
		t.Errorf("scalar regions scale better 4->8 (%.2f) than 2->4 (%.2f): no saturation",
			mean(sp48), mean(sp24))
	}
	if mean(sp48) > 1.15 {
		t.Errorf("scalar regions 4w->8w gain %.2f, paper reports ~1.03", mean(sp48))
	}
}

func TestPaperShapeVectorBeatsUSIMDInVectorRegions(t *testing.T) {
	// Finding 2 (Figure 5): the 2-issue Vector2 outperforms the 2-issue
	// µSIMD clearly in the vector regions, and the 4-issue Vector2
	// outperforms even the 8-issue µSIMD on average.
	m := getMatrix(t)
	var v2OverU2, v4OverU8 []float64
	for _, a := range m.Apps {
		u2 := m.Get(a.Name, machine.USIMD2.Name, core.Perfect).VectorCycles()
		u8 := m.Get(a.Name, machine.USIMD8.Name, core.Perfect).VectorCycles()
		v2 := m.Get(a.Name, machine.Vector2x2.Name, core.Perfect).VectorCycles()
		v4 := m.Get(a.Name, machine.Vector2x4.Name, core.Perfect).VectorCycles()
		v2OverU2 = append(v2OverU2, float64(u2)/float64(v2))
		v4OverU8 = append(v4OverU8, float64(u8)/float64(v4))
	}
	if mean(v2OverU2) < 1.5 {
		t.Errorf("Vector2-2w over uSIMD-2w in vector regions = %.2f, paper reports ~4.4", mean(v2OverU2))
	}
	if mean(v4OverU8) < 1.0 {
		t.Errorf("Vector2-4w over uSIMD-8w in vector regions = %.2f, paper reports ~2.3", mean(v4OverU8))
	}
}

func TestPaperShapeMPEG2EncDegradesUnderRealisticMemory(t *testing.T) {
	// Finding 3 (Figure 5b): the strided motion estimation makes
	// mpeg2_enc's vector regions degrade far more than other apps on the
	// vector machines under realistic memory.
	m := getMatrix(t)
	degr := func(app string) float64 {
		p := m.Get(app, machine.Vector2x2.Name, core.Perfect).VectorCycles()
		r := m.Get(app, machine.Vector2x2.Name, core.Realistic).VectorCycles()
		return float64(r) / float64(p)
	}
	me := degr("mpeg2_enc")
	if me < 1.3 {
		t.Errorf("mpeg2_enc vector-region degradation %.2f, paper reports ~3x (close to 200%%)", me)
	}
	for _, app := range []string{"jpeg_enc", "gsm_enc", "gsm_dec"} {
		if d := degr(app); d > me {
			t.Errorf("%s degrades more (%.2f) than mpeg2_enc (%.2f)", app, d, me)
		}
	}
}

func TestPaperShapeAmdahlDominates(t *testing.T) {
	// Finding 4: on the 4-issue Vector2 machine the vector regions are a
	// small share of execution (paper: <10% except mpeg2_enc).
	m := getMatrix(t)
	for _, a := range m.Apps {
		r := m.Get(a.Name, machine.Vector2x4.Name, core.Realistic)
		share := ratio(r.VectorCycles(), r.Cycles)
		if a.Name == "mpeg2_enc" {
			continue
		}
		if share > 0.35 {
			t.Errorf("%s: vector regions still %.0f%% of time on Vector2-4w", a.Name, 100*share)
		}
	}
}

func TestPaperShapeVectorExecutesFewerOps(t *testing.T) {
	// Finding 5 (Figure 7): the vector version executes far fewer
	// operations in the vector regions than the µSIMD version.
	m := getMatrix(t)
	var ratios []float64
	for _, a := range m.Apps {
		u, _, _ := regionOps(m.Get(a.Name, machine.USIMD2.Name, core.Realistic))
		v, _, _ := regionOps(m.Get(a.Name, machine.Vector2x2.Name, core.Realistic))
		ratios = append(ratios, 1-float64(v)/float64(u))
	}
	if mean(ratios) < 0.5 {
		t.Errorf("vector executes only %.0f%% fewer vector-region ops than µSIMD; paper reports 84%%",
			100*mean(ratios))
	}
}

func TestPaperShapeVectorHighMicroOPCLowFetch(t *testing.T) {
	// Table 3: in vector regions the vector machine sustains high µOPC at
	// low OPC (fetch bandwidth).
	m := getMatrix(t)
	var opc, uopc []float64
	for _, a := range m.Apps {
		r := m.Get(a.Name, machine.Vector2x4.Name, core.Realistic)
		o, u, c := regionOps(r)
		opc = append(opc, ratio(o, c))
		uopc = append(uopc, ratio(u, c))
	}
	if mean(uopc) < 4*mean(opc) {
		t.Errorf("vector regions: µOPC %.2f not >> OPC %.2f", mean(uopc), mean(opc))
	}
}

func TestAblations(t *testing.T) {
	out, err := RunAblations(&machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no-chaining") || !strings.Contains(out, "banked-strided-x4") {
		t.Fatalf("ablation table incomplete:\n%s", out)
	}
	t.Log("\n" + out)
}

func TestAblationDirections(t *testing.T) {
	// Sanity-check the sign of each ablation on the vector machine:
	// disabling a mechanism must not speed things up; the banked memory
	// must not slow things down.
	cfg := &machine.Vector2x2
	a, err := apps.ByName("mpeg2_enc")
	if err != nil {
		t.Fatal(err)
	}
	built := a.Build(kernels.Vector)
	baseProg, err := core.Compile(built.Func, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := baseProg.RunModel(mem.NewHierarchy(cfg))
	if err != nil {
		t.Fatal(err)
	}
	run := func(so sched.Options, mo mem.Options) int64 {
		prog, err := core.CompileWith(built.Func, cfg, so)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prog.RunModel(mem.NewHierarchyOpts(cfg, mo))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if c := run(sched.Options{NoChaining: true}, mem.Options{}); c < base.Cycles {
		t.Errorf("disabling chaining sped mpeg2_enc up: %d < %d", c, base.Cycles)
	}
	if c := run(sched.Options{}, mem.Options{NoPrefetch: true}); c < base.Cycles {
		t.Errorf("disabling the prefetcher sped mpeg2_enc up: %d < %d", c, base.Cycles)
	}
	if c := run(sched.Options{OverlapDrain: true}, mem.Options{}); c > base.Cycles {
		t.Errorf("overlapping drains slowed mpeg2_enc down: %d > %d", c, base.Cycles)
	}
	if c := run(sched.Options{}, mem.Options{StridedWordsPerCycle: 4}); c > base.Cycles {
		t.Errorf("banked strided memory slowed mpeg2_enc down: %d > %d", c, base.Cycles)
	}
}

func TestEnergyTableShape(t *testing.T) {
	m := getMatrix(t)
	out := m.EnergyTable()
	if !strings.Contains(out, "Vector1-4w") || !strings.Contains(out, "EDP") {
		t.Fatalf("energy table incomplete:\n%s", out)
	}
	// The paper's qualitative power claim, made quantitative: every vector
	// configuration consumes less total energy than the 8-issue µSIMD
	// machine while the 4-issue ones are also faster.
	model := energy.Default()
	total := func(cfg *machine.Config) (e, cycles float64) {
		for _, a := range m.Apps {
			r := m.Get(a.Name, cfg.Name, core.Realistic)
			e += model.Estimate(r, cfg).Total()
			cycles += float64(r.Cycles)
		}
		return e, cycles
	}
	u8e, u8c := total(&machine.USIMD8)
	for _, cfg := range []*machine.Config{&machine.Vector1x2, &machine.Vector1x4,
		&machine.Vector2x2, &machine.Vector2x4} {
		ve, vc := total(cfg)
		if ve >= u8e {
			t.Errorf("%s energy (%.0f) not below uSIMD-8w (%.0f)", cfg.Name, ve, u8e)
		}
		if cfg.Issue == 4 && vc >= u8c {
			t.Errorf("%s cycles (%.0f) not below uSIMD-8w (%.0f)", cfg.Name, vc, u8c)
		}
	}
	// Wider VLIW burns more energy for its modest speedups.
	v2e, _ := total(&machine.VLIW2)
	v8e, _ := total(&machine.VLIW8)
	if v8e <= v2e {
		t.Errorf("VLIW-8w energy (%.0f) not above VLIW-2w (%.0f)", v8e, v2e)
	}
}

func TestWriteCSV(t *testing.T) {
	m := getMatrix(t)
	var buf strings.Builder
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + 6*10*2; len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "app,config,isa,issue,memory,cycles") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "mpeg2_enc,Vector2-4w,Vector,4,realistic") {
		t.Error("missing expected row key")
	}
}

func TestLanesStudyPaperClaim(t *testing.T) {
	out, err := LanesStudy()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	// Parse the AVERAGE row: columns are speed-up vs 4 lanes for 2/4/8.
	var l2, l4, l8 float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "AVERAGE") {
			if _, err := fmt.Sscanf(line, "AVERAGE %f %f %f", &l2, &l4, &l8); err != nil {
				t.Fatalf("cannot parse %q: %v", line, err)
			}
		}
	}
	if l4 != 1.0 {
		t.Fatalf("baseline column = %v, want 1.00", l4)
	}
	// The paper's claim: 4 lanes clearly beat 2, but 8 lanes do not pay
	// off for these short vector lengths.
	if gain24 := l4 / l2; gain24 < 1.1 {
		t.Errorf("2->4 lanes gains only %.2f; expected a clear win", gain24)
	}
	if gain48 := l8 / l4; gain48 > 1.25 {
		t.Errorf("4->8 lanes gains %.2f; the paper says it should not pay off", gain48)
	}
}
