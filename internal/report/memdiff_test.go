package report

import (
	"fmt"
	"reflect"
	"testing"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/mem"
)

// TestMatrixDifferentialMemoryModels replays the reduced evaluation
// matrix through the optimized mem.Hierarchy and the retained
// mem.ReferenceHierarchy and requires the complete simulation results —
// cycles, stalls, per-cause attribution, memory statistics — to be
// identical. Together with the per-access differential tests in
// internal/mem this pins the fast path to the reference at application
// scale, where prefetch streams, coherency flushes and eviction patterns
// interact over millions of accesses.
func TestMatrixDifferentialMemoryModels(t *testing.T) {
	for _, a := range reducedApps(t) {
		for _, cfg := range reducedCfgs {
			t.Run(fmt.Sprintf("%s/%s", a.Name, cfg.Name), func(t *testing.T) {
				built := a.Build(VariantFor(cfg))
				prog, err := core.Compile(built.Func, cfg)
				if err != nil {
					t.Fatal(err)
				}
				opt, err := prog.RunModel(mem.NewHierarchy(cfg))
				if err != nil {
					t.Fatal(err)
				}
				ref, err := prog.RunModel(mem.NewReferenceHierarchy(cfg))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(opt, ref) {
					t.Errorf("optimized hierarchy diverges from reference:\n  opt: %+v\n  ref: %+v", opt, ref)
				}
			})
		}
	}
}
