// Package report runs the full evaluation matrix of the paper — six
// applications, ten processor configurations (Table 2), two memory models
// — and renders every table and figure of the evaluation section:
//
//	Table 1   vector regions and their share of execution time
//	Figure 1  scalability of scalar/vector regions on µSIMD-VLIW
//	Table 2   processor configurations
//	Figure 3  latency descriptors
//	Figure 4  schedule of the motion-estimation kernel
//	Figure 5  speed-up in vector regions (perfect and realistic memory)
//	Figure 6  speed-up in complete applications
//	Figure 7  normalized dynamic operation count per region
//	Table 3   operations/micro-operations per cycle and speed-ups
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sim"
)

// VariantFor maps a machine configuration to the code version it runs:
// plain VLIW machines run the scalar code, µSIMD machines the µSIMD code,
// vector machines the Vector-µSIMD code.
func VariantFor(cfg *machine.Config) kernels.Variant {
	switch cfg.ISA {
	case machine.ISAScalar:
		return kernels.Scalar
	case machine.ISAuSIMD:
		return kernels.USIMD
	default:
		return kernels.Vector
	}
}

// Matrix holds the results of the full evaluation sweep.
type Matrix struct {
	Apps []*apps.App
	res  map[string]*sim.Result
}

func key(app, cfg string, mem core.MemoryModel) string {
	return fmt.Sprintf("%s|%s|%d", app, cfg, mem)
}

// Collect builds, compiles and simulates every application on every
// configuration under both memory models. progress (may be nil) receives
// one line per completed run.
func Collect(progress io.Writer) (*Matrix, error) {
	m := &Matrix{Apps: apps.All(), res: make(map[string]*sim.Result)}
	for _, a := range m.Apps {
		built := map[kernels.Variant]*ir0{}
		for _, cfg := range machine.All() {
			v := VariantFor(cfg)
			bv, ok := built[v]
			if !ok {
				bv = &ir0{b: a.Build(v)}
				built[v] = bv
			}
			prog, err := core.Compile(bv.b.Func, cfg)
			if err != nil {
				return nil, fmt.Errorf("report: %s on %s: %w", a.Name, cfg.Name, err)
			}
			for _, mem := range []core.MemoryModel{core.Perfect, core.Realistic} {
				res, err := prog.Run(mem)
				if err != nil {
					return nil, fmt.Errorf("report: %s on %s: %w", a.Name, cfg.Name, err)
				}
				m.res[key(a.Name, cfg.Name, mem)] = res
				if progress != nil {
					fmt.Fprintf(progress, "%-10s %-11s mem=%d cycles=%d\n", a.Name, cfg.Name, mem, res.Cycles)
				}
			}
		}
	}
	return m, nil
}

// ir0 wraps a built app (small indirection keeping Build calls single).
type ir0 struct{ b *apps.Built }

// Get returns the result for one (app, config, memory) cell.
func (m *Matrix) Get(app, cfg string, mem core.MemoryModel) *sim.Result {
	r, ok := m.res[key(app, cfg, mem)]
	if !ok {
		panic(fmt.Sprintf("report: missing result %s/%s", app, cfg))
	}
	return r
}

// scalarCycles returns the cycles outside the vector regions.
func scalarCycles(r *sim.Result) int64 { return r.Cycles - r.VectorCycles() }

// regionOps sums operations over the vector regions.
func regionOps(r *sim.Result) (ops, micro, cycles int64) {
	for i := 1; i < sim.MaxRegions; i++ {
		ops += r.Regions[i].Ops
		micro += r.Regions[i].MicroOps
		cycles += r.Regions[i].Cycles
	}
	return
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// appNames returns the application names in order.
func (m *Matrix) appNames() []string {
	out := make([]string, len(m.Apps))
	for i, a := range m.Apps {
		out[i] = a.Name
	}
	return out
}

// table is a minimal fixed-width text-table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func pct(x float64) string { return fmt.Sprintf("%.2f %%", 100*x) }

// sortedKeys is a test helper exposing the collected cells.
func (m *Matrix) sortedKeys() []string {
	out := make([]string, 0, len(m.res))
	for k := range m.res {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
