// Package report runs the full evaluation matrix of the paper — six
// applications, ten processor configurations (Table 2), two memory models
// — and renders every table and figure of the evaluation section:
//
//	Table 1   vector regions and their share of execution time
//	Figure 1  scalability of scalar/vector regions on µSIMD-VLIW
//	Table 2   processor configurations
//	Figure 3  latency descriptors
//	Figure 4  schedule of the motion-estimation kernel
//	Figure 5  speed-up in vector regions (perfect and realistic memory)
//	Figure 6  speed-up in complete applications
//	Figure 7  normalized dynamic operation count per region
//	Table 3   operations/micro-operations per cycle and speed-ups
package report

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sim"
)

// VariantFor maps a machine configuration to the code version it runs:
// plain VLIW machines run the scalar code, µSIMD machines the µSIMD code,
// vector machines the Vector-µSIMD code.
func VariantFor(cfg *machine.Config) kernels.Variant {
	switch cfg.ISA {
	case machine.ISAScalar:
		return kernels.Scalar
	case machine.ISAuSIMD:
		return kernels.USIMD
	default:
		return kernels.Vector
	}
}

// Matrix holds the results of the full evaluation sweep.
type Matrix struct {
	Apps []*apps.App
	res  map[string]*sim.Result
}

func key(app, cfg string, mem core.MemoryModel) string {
	return fmt.Sprintf("%s|%s|%d", app, cfg, mem)
}

// Options configures an evaluation sweep.
type Options struct {
	// Parallelism is the number of worker goroutines the sweep fans the
	// (app, config, memory) cells out on. 0 (the default) uses
	// core.DefaultParallelism(); 1 reproduces the historical sequential
	// behaviour.
	Parallelism int
	// Progress, when non-nil, receives a header plus one line per
	// completed run, always in canonical (app, config, memory) order
	// regardless of the order runs finish in under the worker pool.
	Progress io.Writer
	// Context, when non-nil, bounds the sweep: once it is done, running
	// cells stop within sim.DefaultCheckCycles simulated cycles, pending
	// cells are skipped, and the sweep returns an error unwrapping to
	// sim.ErrCanceled. A nil Context sweeps to completion.
	Context context.Context
}

// Collect builds, compiles and simulates every application on every
// configuration under both memory models, in parallel across all CPUs.
// progress (may be nil) receives one line per completed run.
func Collect(progress io.Writer) (*Matrix, error) {
	return CollectOpts(Options{Progress: progress})
}

// CollectOpts is Collect with explicit sweep options.
func CollectOpts(o Options) (*Matrix, error) {
	return collect(apps.All(), machine.All(), core.Models, o)
}

// buildEntry memoizes apps.Build per (app, variant): the first worker that
// needs a variant builds it; every other worker reuses the result, which
// is treated as immutable from then on.
type buildEntry struct {
	once sync.Once
	app  *apps.App
	v    kernels.Variant
	b    *apps.Built
}

func (e *buildEntry) get() *apps.Built {
	e.once.Do(func() { e.b = e.app.Build(e.v) })
	return e.b
}

// compileEntry memoizes core.Compile per (app, config). The compiled
// Program is immutable and shared by the runs of both memory models.
type compileEntry struct {
	once  sync.Once
	build *buildEntry
	cfg   *machine.Config
	prog  *core.Program
	err   error
}

func (e *compileEntry) get() (*core.Program, error) {
	e.once.Do(func() { e.prog, e.err = core.Compile(e.build.get().Func, e.cfg) })
	return e.prog, e.err
}

// cell is one (app, config, memory) point of the sweep.
type cell struct {
	app  *apps.App
	cfg  *machine.Config
	mem  core.MemoryModel
	comp *compileEntry
	res  *sim.Result
	err  error
}

// collect runs the sweep over the given applications, configurations and
// memory models (the paper's matrix uses core.Models; the cache
// organization study swaps in the cacheorg axis). Every cell is
// independent: shared work (build, compile) is done once through
// single-flight entries and then only read, so cells can run on any
// number of goroutines while producing results identical to the
// sequential sweep.
func collect(appList []*apps.App, cfgs []*machine.Config, models []core.MemoryModel, o Options) (*Matrix, error) {
	workers := o.Parallelism
	if workers <= 0 {
		workers = core.DefaultParallelism()
	}
	// More workers than cells only costs goroutine churn.
	if n := len(appList) * len(cfgs) * len(models); workers > n && n > 0 {
		workers = n
	}

	type buildKey struct {
		app string
		v   kernels.Variant
	}
	type compileKey struct{ app, cfg string }
	builds := make(map[buildKey]*buildEntry)
	compiles := make(map[compileKey]*compileEntry)
	var cells []*cell
	for _, a := range appList {
		for _, cfg := range cfgs {
			bk := buildKey{a.Name, VariantFor(cfg)}
			be, ok := builds[bk]
			if !ok {
				be = &buildEntry{app: a, v: bk.v}
				builds[bk] = be
			}
			ck := compileKey{a.Name, cfg.Name}
			ce, ok := compiles[ck]
			if !ok {
				ce = &compileEntry{build: be, cfg: cfg}
				compiles[ck] = ce
			}
			for _, mm := range models {
				cells = append(cells, &cell{app: a, cfg: cfg, mem: mm, comp: ce})
			}
		}
	}

	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	prog := newProgress(o.Progress)
	var failed atomic.Bool
	run := func(i int) {
		c := cells[i]
		if failed.Load() || ctx.Err() != nil {
			if c.err == nil && ctx.Err() != nil {
				c.err = &sim.CanceledError{Cause: ctx.Err()}
			}
			prog.skip(i)
			return
		}
		p, err := c.comp.get()
		if err == nil {
			c.res, err = p.RunContext(ctx, c.mem)
		}
		if err != nil {
			c.err = fmt.Errorf("report: %s on %s: %w", c.app.Name, c.cfg.Name, err)
			failed.Store(true)
			prog.skip(i)
			return
		}
		line := ""
		if prog.enabled() {
			line = fmt.Sprintf("%-10s %-12s %-9s %d\n",
				c.app.Name, c.cfg.Name, c.mem, c.res.Cycles)
		}
		prog.done(i, line)
	}

	if workers == 1 || len(cells) <= 1 {
		for i := range cells {
			run(i)
		}
	} else {
		// Buffered to the full cell count: the feeder never blocks, so no
		// worker ever idles waiting on the producer.
		jobs := make(chan int, len(cells))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					run(i)
				}
			}()
		}
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	// The first error in canonical order wins, keeping failures
	// deterministic under the pool.
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
	}
	m := &Matrix{Apps: appList, res: make(map[string]*sim.Result, len(cells))}
	for _, c := range cells {
		m.res[key(c.app.Name, c.cfg.Name, c.mem)] = c.res
	}
	return m, nil
}

// progressWriter serializes per-run progress into canonical cell order:
// line i is released only once every line before it has been released (or
// skipped), so concurrent completions never interleave or reorder.
type progressWriter struct {
	w       io.Writer
	mu      sync.Mutex
	next    int
	pending map[int]string // completed lines not yet released; "" = skipped
}

func newProgress(w io.Writer) *progressWriter {
	if w != nil {
		fmt.Fprintf(w, "%-10s %-12s %-9s %s\n", "app", "config", "memory", "cycles")
	}
	return &progressWriter{w: w, pending: make(map[int]string)}
}

// enabled reports whether progress output is being written at all, so
// callers can skip formatting lines nobody will see.
func (p *progressWriter) enabled() bool { return p.w != nil }

func (p *progressWriter) done(i int, line string) { p.record(i, line) }

func (p *progressWriter) skip(i int) { p.record(i, "") }

func (p *progressWriter) record(i int, line string) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending[i] = line
	for {
		l, ok := p.pending[p.next]
		if !ok {
			return
		}
		delete(p.pending, p.next)
		p.next++
		if l != "" {
			fmt.Fprint(p.w, l)
		}
	}
}

// Get returns the result for one (app, config, memory) cell.
func (m *Matrix) Get(app, cfg string, mem core.MemoryModel) *sim.Result {
	r, ok := m.res[key(app, cfg, mem)]
	if !ok {
		panic(fmt.Sprintf("report: missing result %s/%s", app, cfg))
	}
	return r
}

// scalarCycles returns the cycles outside the vector regions.
func scalarCycles(r *sim.Result) int64 { return r.Cycles - r.VectorCycles() }

// regionOps sums operations over the vector regions.
func regionOps(r *sim.Result) (ops, micro, cycles int64) {
	for i := 1; i < sim.MaxRegions; i++ {
		ops += r.Regions[i].Ops
		micro += r.Regions[i].MicroOps
		cycles += r.Regions[i].Cycles
	}
	return
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// appNames returns the application names in order.
func (m *Matrix) appNames() []string {
	out := make([]string, len(m.Apps))
	for i, a := range m.Apps {
		out[i] = a.Name
	}
	return out
}

// table is a minimal fixed-width text-table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func pct(x float64) string { return fmt.Sprintf("%.2f %%", 100*x) }

// sortedKeys is a test helper exposing the collected cells.
func (m *Matrix) sortedKeys() []string {
	out := make([]string, 0, len(m.res))
	for k := range m.res {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
