package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
)

// reducedApps and reducedCfgs form a 2-app x 3-config sub-matrix that
// still exercises all three ISA variants (and therefore the single-flight
// build cache) while staying cheap enough to run under -race.
func reducedApps(t *testing.T) []*apps.App {
	t.Helper()
	all := apps.All()
	return all[:2] // jpeg_enc, jpeg_dec
}

var reducedCfgs = []*machine.Config{&machine.VLIW2, &machine.USIMD2, &machine.Vector2x2}

// TestCollectParallelMatchesSequential is the differential test of the
// worker pool: the full 120-cell matrix collected with many workers must
// be cell-for-cell identical to the sequential sweep.
func TestCollectParallelMatchesSequential(t *testing.T) {
	par := getMatrix(t) // shared matrix, collected with default parallelism
	seq, err := CollectOpts(Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pk, sk := par.sortedKeys(), seq.sortedKeys()
	if !reflect.DeepEqual(pk, sk) {
		t.Fatalf("cell sets differ: parallel %d cells, sequential %d cells", len(pk), len(sk))
	}
	for _, k := range sk {
		if !reflect.DeepEqual(par.res[k], seq.res[k]) {
			t.Errorf("cell %s: parallel result differs from sequential", k)
		}
	}
}

// TestCollectReducedMatrixConcurrent drives the worker pool at a high
// worker count over the reduced matrix; running it under -race proves the
// shared build/compile results are never written concurrently.
func TestCollectReducedMatrixConcurrent(t *testing.T) {
	a := reducedApps(t)
	par, err := collect(a, reducedCfgs, core.Models, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(par.sortedKeys()), len(a)*len(reducedCfgs)*2; got != want {
		t.Fatalf("collected %d cells, want %d", got, want)
	}
	seq, err := collect(a, reducedCfgs, core.Models, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range seq.sortedKeys() {
		if !reflect.DeepEqual(par.res[k], seq.res[k]) {
			t.Errorf("cell %s: parallel result differs from sequential", k)
		}
		if par.res[k].Cycles <= 0 {
			t.Errorf("cell %s: no cycles recorded", k)
		}
	}
}

// TestCollectProgressDeterministic checks the progress stream: a header,
// model names instead of bare ints, and byte-identical output no matter
// how many workers complete runs out of order.
func TestCollectProgressDeterministic(t *testing.T) {
	a := reducedApps(t)
	var seq, par bytes.Buffer
	if _, err := collect(a, reducedCfgs, core.Models, Options{Parallelism: 1, Progress: &seq}); err != nil {
		t.Fatal(err)
	}
	if _, err := collect(a, reducedCfgs, core.Models, Options{Parallelism: 8, Progress: &par}); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("progress output depends on worker count:\n--- sequential ---\n%s--- parallel ---\n%s",
			seq.String(), par.String())
	}
	lines := strings.Split(strings.TrimRight(seq.String(), "\n"), "\n")
	if got, want := len(lines), 1+len(a)*len(reducedCfgs)*2; got != want {
		t.Fatalf("progress lines = %d, want %d (header + one per run)", got, want)
	}
	header := lines[0]
	for _, col := range []string{"app", "config", "memory", "cycles"} {
		if !strings.Contains(header, col) {
			t.Errorf("header %q missing column %q", header, col)
		}
	}
	body := strings.Join(lines[1:], "\n")
	if !strings.Contains(body, "perfect") || !strings.Contains(body, "realistic") {
		t.Errorf("progress lines must name the memory model:\n%s", body)
	}
	if strings.Contains(body, "mem=") {
		t.Errorf("progress lines still print the model as a bare int:\n%s", body)
	}
	// Canonical order: the first two runs are the first app on the first
	// config under both models.
	if !strings.HasPrefix(lines[1], a[0].Name) || !strings.HasPrefix(lines[2], a[0].Name) {
		t.Errorf("progress not in canonical order:\n%s", seq.String())
	}
}
