package core_test

// Compile-path benchmarks: the full Compile cost (schedule + predecode)
// on the largest application, tracked in BENCH_*.json via cmd/benchjson.
// BenchmarkCompile is the daemon's cold-start unit of work — what a
// vsimdd cache miss pays before the first cycle simulates.

import (
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sched"
)

func BenchmarkCompile(b *testing.B) {
	a, err := apps.ByName("jpeg_enc")
	if err != nil {
		b.Fatal(err)
	}
	built := a.Build(kernels.USIMD)
	ops := built.Func.NumOps()
	var schedNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := core.CompileWithStats(built.Func, &machine.USIMD4, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		schedNS += st.ScheduleNS
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "compile_ops/s")
	if schedNS > 0 {
		b.ReportMetric(float64(ops)*float64(b.N)/(float64(schedNS)/1e9), "sched_ops/s")
	}
}
