// Package core is the top-level API of the Vector-µSIMD-VLIW toolkit: it
// ties the static scheduler (internal/sched), the memory models
// (internal/mem) and the simulator (internal/sim) together behind two
// calls — Compile and Run — mirroring the paper's methodology (Trimaran
// compilation onto an HPL-PD-style machine description, followed by
// cycle simulation with a detailed memory hierarchy).
//
// Typical use:
//
//	b := ir.NewBuilder("kernel")
//	... emit operations (see internal/ir) ...
//	prog, err := core.Compile(b.Func(), &machine.Vector2x4)
//	res, err := prog.Run(core.Realistic)
//	fmt.Println(res.Cycles, res.OPC())
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vsimdvliw/internal/cacheorg"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/sim"
)

// MemoryModel selects the timing model for a run.
type MemoryModel int

// The two memory models evaluated in the paper (Figure 5a vs 5b).
const (
	// Perfect: every access hits in its cache with the corresponding
	// latency; vector accesses are served at full port rate regardless of
	// stride.
	Perfect MemoryModel = iota
	// Realistic: the full three-level hierarchy with the two-bank
	// interleaved L2 vector cache, coherency traffic and run-time stalls
	// for misses and non-unit strides.
	Realistic
	// Interleaved: the realistic hierarchy rebuilt on the pluggable
	// cacheorg.Interleaved organization — proven bit-identical to
	// Realistic, and the baseline the alternative organizations below are
	// compared against.
	Interleaved
	// Bicameral: a Bicameral-style split scalar/vector L2 with
	// cross-partition line migration (cacheorg.Bicameral).
	Bicameral
	// Banked4 / Banked8: the parameterized N-bank L2 (cacheorg.NewBanked)
	// at four and eight banks; machine.Config.L2Banks overrides the count.
	Banked4
	Banked8

	numModels = int(Banked8) + 1
)

// Models lists the memory models in the paper's evaluation order: the
// default two-model axis of the 120-cell matrix. The alternative L2
// organizations are opt-in by name (see Organizations).
var Models = []MemoryModel{Perfect, Realistic}

// Organizations lists the cacheorg-backed models: the design-space axis
// served as memory names "realistic:<org>".
var Organizations = []MemoryModel{Interleaved, Bicameral, Banked4, Banked8}

// AllModels lists every memory model: the paper's two plus the L2
// organizations.
var AllModels = []MemoryModel{Perfect, Realistic, Interleaved, Bicameral, Banked4, Banked8}

// String returns the model's name as used in progress output, reports and
// the served memory axis.
func (m MemoryModel) String() string {
	switch m {
	case Perfect:
		return "perfect"
	case Realistic:
		return "realistic"
	case Interleaved:
		return "realistic:interleaved"
	case Bicameral:
		return "realistic:bicameral"
	case Banked4:
		return "realistic:banked4"
	case Banked8:
		return "realistic:banked8"
	}
	return fmt.Sprintf("mem(%d)", int(m))
}

// DefaultParallelism is the worker count evaluation sweeps use when the
// caller does not specify one.
func DefaultParallelism() int { return runtime.NumCPU() }

// Program is a compiled (scheduled) program bound to a machine
// configuration.
//
// A Program is immutable once Compile returns: Run and NewMachine build
// fresh per-run state (register files, flat data memory, a private memory
// model), so a single Program may be run from any number of goroutines
// concurrently. Callers must uphold the same contract and not mutate the
// schedule or the underlying ir.Func after compilation.
type Program struct {
	Sched  *sched.FuncSched
	Config *machine.Config

	// pools recycle machines (register files, data memory, memory model)
	// per memory model across Run calls; Machine.Reset restores the
	// freshly-constructed state between runs.
	pools [numModels]sync.Pool
}

// Compile schedules f for cfg, verifying ISA support and register
// pressure.
func Compile(f *ir.Func, cfg *machine.Config) (*Program, error) {
	return CompileWith(f, cfg, sched.Options{})
}

// CompileWith compiles with explicit scheduler options (ablations).
func CompileWith(f *ir.Func, cfg *machine.Config, opts sched.Options) (*Program, error) {
	p, _, err := CompileWithStats(f, cfg, opts)
	return p, err
}

// CompileStats is the cost breakdown of one compilation, for the daemon's
// /metrics compile timing and the compile benchmarks. All times are
// wall-clock nanoseconds.
type CompileStats struct {
	// ScheduleNS is the static-scheduling time (verify, pressure check,
	// dependence graphs, list scheduling).
	ScheduleNS int64
	// PredecodeNS is the time lowering every block into its pre-decoded
	// executor sequence.
	PredecodeNS int64
	// Ops is the number of IR operations compiled, so callers can derive a
	// sched_ops/s rate from ScheduleNS.
	Ops int
}

// CompileWithStats is CompileWith plus a timing breakdown.
func CompileWithStats(f *ir.Func, cfg *machine.Config, opts sched.Options) (*Program, CompileStats, error) {
	var st CompileStats
	for _, blk := range f.Blocks {
		st.Ops += len(blk.Ops)
	}
	t0 := time.Now()
	fs, err := sched.ScheduleOpts(f, cfg, opts)
	st.ScheduleNS = time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, st, err
	}
	// Lower every block into its pre-decoded executor sequence now, so
	// runs (often many, across goroutines) share the compiled code and
	// never pay the lowering cost.
	t1 := time.Now()
	err = sim.Predecode(fs)
	st.PredecodeNS = time.Since(t1).Nanoseconds()
	if err != nil {
		return nil, st, err
	}
	return &Program{Sched: fs, Config: cfg}, st, nil
}

// CompileReference compiles through sched.ReferenceScheduleOpts — the
// retained original scheduler — instead of the fast path. It exists for
// differential tests (report-level reflect.DeepEqual of schedules and
// simulation results) and for measuring what the fast path is worth; the
// two compilers must produce identical Programs for any valid input.
func CompileReference(f *ir.Func, cfg *machine.Config, opts sched.Options) (*Program, error) {
	fs, err := sched.ReferenceScheduleOpts(f, cfg, opts)
	if err != nil {
		return nil, err
	}
	if err := sim.Predecode(fs); err != nil {
		return nil, err
	}
	return &Program{Sched: fs, Config: cfg}, nil
}

// NewMachine instantiates a simulation of the program under the given
// memory model. Use it when you need access to the machine's memory after
// the run (e.g. to verify kernel outputs).
func (p *Program) NewMachine(model MemoryModel) *sim.Machine {
	var mm mem.Model
	switch model {
	case Perfect:
		mm = mem.NewPerfect(p.Config)
	case Interleaved:
		mm = cacheorg.New(p.Config, cacheorg.NewInterleaved(p.Config))
	case Bicameral:
		mm = cacheorg.New(p.Config, cacheorg.NewBicameral(p.Config))
	case Banked4:
		mm = cacheorg.New(p.Config, cacheorg.NewBanked(p.Config, 4))
	case Banked8:
		mm = cacheorg.New(p.Config, cacheorg.NewBanked(p.Config, 8))
	default:
		mm = mem.NewHierarchy(p.Config)
	}
	return sim.New(p.Sched, mm)
}

// RunOptions tunes one execution of a compiled program.
type RunOptions struct {
	// Context, when non-nil and cancelable, bounds the run: once it is
	// done the simulation stops within CheckCycles simulated cycles and
	// the error unwraps to sim.ErrCanceled (a *sim.CanceledError carrying
	// the partial result).
	Context context.Context
	// CheckCycles is the cancellation-poll interval in simulated cycles
	// (<= 0 uses sim.DefaultCheckCycles).
	CheckCycles int64
	// VLCap, when in [1, isa.MaxVL), clamps every vector length the
	// program sets via SETVL — a variable-VL timing experiment; capped
	// runs compute different values than the reference outputs.
	VLCap int
}

// Run executes the program to completion under the given memory model.
// Machines are pooled and reset between runs, so repeated runs (sweeps,
// benchmarks) reuse register files, data memory and the memory model
// instead of reallocating them.
func (p *Program) Run(model MemoryModel) (*sim.Result, error) {
	return p.RunOpts(model, RunOptions{})
}

// RunContext is Run bounded by a context: cancellation or deadline expiry
// stops the simulation with a typed *sim.CanceledError.
func (p *Program) RunContext(ctx context.Context, model MemoryModel) (*sim.Result, error) {
	return p.RunOpts(model, RunOptions{Context: ctx})
}

// RunOpts is Run with explicit per-run options.
func (p *Program) RunOpts(model MemoryModel, o RunOptions) (*sim.Result, error) {
	if int(model) < 0 || int(model) >= len(p.pools) {
		m := p.NewMachine(model)
		m.SetContext(o.Context, o.CheckCycles)
		m.SetVLCap(o.VLCap)
		return m.Run()
	}
	pool := &p.pools[model]
	m, ok := pool.Get().(*sim.Machine)
	if ok {
		m.Reset()
	} else {
		m = p.NewMachine(model)
	}
	m.SetContext(o.Context, o.CheckCycles)
	m.SetVLCap(o.VLCap)
	res, err := m.Run()
	if err != nil {
		// Drop errored machines: their state (e.g. an aborted runaway
		// loop or a canceled run) is not worth recycling.
		return nil, err
	}
	// Release the caller's context before the machine re-enters the pool.
	m.SetContext(nil, 0)
	pool.Put(m)
	return res, nil
}

// RunModel executes the program against an explicit memory model (e.g. a
// mem.Hierarchy built with ablation options).
func (p *Program) RunModel(model mem.Model) (*sim.Result, error) {
	return sim.New(p.Sched, model).Run()
}

// RunOn compiles and runs f on cfg in one step.
func RunOn(f *ir.Func, cfg *machine.Config, model MemoryModel) (*sim.Result, error) {
	p, err := Compile(f, cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(model)
}
