package core

import (
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/simd"
)

// buildVectorProgram builds a small vector kernel writing a known value.
func buildVectorProgram() (*ir.Func, int64) {
	b := ir.NewBuilder("demo")
	in := b.DataH([]int16{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	out := b.Alloc(32)
	b.SetVLI(4)
	b.SetVSI(8)
	v := b.Vld(b.Const(in), 0, 1)
	b.Vst(b.V(isa.VADD, simd.W16, v, v), b.Const(out), 0, 2)
	return b.Func(), out
}

func TestCompileAndRun(t *testing.T) {
	f, out := buildVectorProgram()
	prog, err := Compile(f, &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range []MemoryModel{Perfect, Realistic} {
		m := prog.NewMachine(mem)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles == 0 || res.Ops == 0 {
			t.Fatal("empty result")
		}
		raw, err := m.ReadBytes(out, 8)
		if err != nil {
			t.Fatal(err)
		}
		if raw[0] != 2 || raw[2] != 4 { // 1+1, 2+2 in 16-bit lanes
			t.Errorf("mem=%d: output = %v", mem, raw[:8])
		}
	}
}

func TestCompileRejectsWrongISA(t *testing.T) {
	f, _ := buildVectorProgram()
	if _, err := Compile(f, &machine.VLIW4); err == nil {
		t.Fatal("plain VLIW must reject vector code")
	}
	if _, err := Compile(f, &machine.USIMD4); err == nil {
		t.Fatal("µSIMD machine must reject vector code")
	}
}

func TestRunOn(t *testing.T) {
	f, _ := buildVectorProgram()
	res, err := RunOn(f, &machine.Vector1x2, Perfect)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles != 0 {
		t.Errorf("perfect memory produced stalls: %d", res.StallCycles)
	}
	if _, err := RunOn(f, &machine.VLIW2, Perfect); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestRealisticSlowerOrEqual(t *testing.T) {
	f, _ := buildVectorProgram()
	prog, err := Compile(f, &machine.Vector2x4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Run(Perfect)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Run(Realistic)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles < p.Cycles {
		t.Errorf("realistic (%d) faster than perfect (%d)", r.Cycles, p.Cycles)
	}
}
