package core

import (
	"reflect"
	"sync"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sim"
	"vsimdvliw/internal/simd"
)

// buildVectorProgram builds a small vector kernel writing a known value.
func buildVectorProgram() (*ir.Func, int64) {
	b := ir.NewBuilder("demo")
	in := b.DataH([]int16{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	out := b.Alloc(32)
	b.SetVLI(4)
	b.SetVSI(8)
	v := b.Vld(b.Const(in), 0, 1)
	b.Vst(b.V(isa.VADD, simd.W16, v, v), b.Const(out), 0, 2)
	return b.Func(), out
}

func TestCompileAndRun(t *testing.T) {
	f, out := buildVectorProgram()
	prog, err := Compile(f, &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range []MemoryModel{Perfect, Realistic} {
		m := prog.NewMachine(mem)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles == 0 || res.Ops == 0 {
			t.Fatal("empty result")
		}
		raw, err := m.ReadBytes(out, 8)
		if err != nil {
			t.Fatal(err)
		}
		if raw[0] != 2 || raw[2] != 4 { // 1+1, 2+2 in 16-bit lanes
			t.Errorf("mem=%d: output = %v", mem, raw[:8])
		}
	}
}

func TestCompileRejectsWrongISA(t *testing.T) {
	f, _ := buildVectorProgram()
	if _, err := Compile(f, &machine.VLIW4); err == nil {
		t.Fatal("plain VLIW must reject vector code")
	}
	if _, err := Compile(f, &machine.USIMD4); err == nil {
		t.Fatal("µSIMD machine must reject vector code")
	}
}

func TestRunOn(t *testing.T) {
	f, _ := buildVectorProgram()
	res, err := RunOn(f, &machine.Vector1x2, Perfect)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles != 0 {
		t.Errorf("perfect memory produced stalls: %d", res.StallCycles)
	}
	if _, err := RunOn(f, &machine.VLIW2, Perfect); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestRealisticSlowerOrEqual(t *testing.T) {
	f, _ := buildVectorProgram()
	prog, err := Compile(f, &machine.Vector2x4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Run(Perfect)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Run(Realistic)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles < p.Cycles {
		t.Errorf("realistic (%d) faster than perfect (%d)", r.Cycles, p.Cycles)
	}
}

func TestMemoryModelString(t *testing.T) {
	if Perfect.String() != "perfect" || Realistic.String() != "realistic" {
		t.Errorf("model names = %q, %q", Perfect, Realistic)
	}
	if s := MemoryModel(7).String(); s != "mem(7)" {
		t.Errorf("unknown model = %q", s)
	}
	if len(Models) != 2 || Models[0] != Perfect || Models[1] != Realistic {
		t.Errorf("Models = %v", Models)
	}
	if DefaultParallelism() < 1 {
		t.Errorf("DefaultParallelism() = %d", DefaultParallelism())
	}
}

// TestProgramConcurrentRun exercises the immutability contract: a single
// compiled Program is run from many goroutines under both memory models,
// and every run must produce the same result as a sequential run. Run
// with -race to prove the schedule and IR are never written during
// execution.
func TestProgramConcurrentRun(t *testing.T) {
	f, _ := buildVectorProgram()
	prog, err := Compile(f, &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	for _, mm := range Models {
		want, err := prog.Run(mm)
		if err != nil {
			t.Fatal(err)
		}
		const n = 8
		results := make([]*sim.Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = prog.Run(mm)
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("%v run %d: %v", mm, i, errs[i])
			}
			// DeepEqual rather than ==: Result.Util is a pointer whose
			// pointee, not identity, must match.
			if !reflect.DeepEqual(results[i], want) {
				t.Errorf("%v run %d diverged from sequential result", mm, i)
			}
		}
	}
}
