package mem

import (
	"testing"
	"testing/quick"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/metrics"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets
	if c.Lookup(0, false) {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0)
	if !c.Lookup(0, false) {
		t.Fatal("line must hit after fill")
	}
	if !c.Lookup(63, false) {
		t.Fatal("same line must hit")
	}
	if c.Lookup(64, false) {
		t.Fatal("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(128, 2, 64) // a single set, two ways
	c.Fill(0)
	c.Fill(1 * 128) // second way (addresses 128 apart map to set 0)
	c.Lookup(0, false)
	// Filling a third line must evict the LRU line (128, not 0).
	base, ok, _ := c.Fill(2 * 128)
	if !ok || base != 128 {
		t.Errorf("victim = %#x (valid=%v), want 0x80", base, ok)
	}
	if !c.Lookup(0, false) {
		t.Error("recently used line evicted")
	}
	if c.Lookup(128, false) {
		t.Error("LRU line still present")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache(128, 1, 64) // direct-mapped, 2 sets
	c.Fill(0)
	c.Lookup(0, true) // dirty it
	base, ok, dirty := c.Fill(128)
	if !ok || !dirty || base != 0 {
		t.Errorf("victim base=%#x valid=%v dirty=%v, want 0 true true", base, ok, dirty)
	}
	// New line installed clean.
	if _, d := c.Probe(128); d {
		t.Error("fresh line must be clean")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(1024, 4, 64)
	c.Fill(320)
	c.Lookup(320, true)
	present, dirty := c.Invalidate(320)
	if !present || !dirty {
		t.Errorf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if p, _ := c.Probe(320); p {
		t.Error("line still present after invalidate")
	}
	if p, _ := c.Invalidate(320); p {
		t.Error("second invalidate must report absent")
	}
}

func TestCacheMarkDirtyAndReset(t *testing.T) {
	c := NewCache(1024, 4, 64)
	c.MarkDirty(0) // absent: no-op
	c.Fill(0)
	c.MarkDirty(0)
	if _, d := c.Probe(0); !d {
		t.Error("MarkDirty failed")
	}
	c.Reset()
	if p, _ := c.Probe(0); p {
		t.Error("Reset must clear contents")
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("Reset must clear counters")
	}
}

func TestPropCacheFillThenHit(t *testing.T) {
	c := NewCache(16<<10, 4, 64)
	f := func(raw uint32) bool {
		addr := int64(raw % (1 << 22))
		c.Fill(addr)
		return c.Lookup(addr, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyScalarLatencies(t *testing.T) {
	cfg := &machine.USIMD2
	h := NewHierarchy(cfg)
	// Cold: miss everywhere -> memory latency dominates.
	lat := h.ScalarAccess(0x10000, 8, false)
	if lat < cfg.LatMem {
		t.Errorf("cold access latency %d, want >= %d", lat, cfg.LatMem)
	}
	// Now an L1 hit.
	if lat := h.ScalarAccess(0x10000, 8, false); lat != cfg.LatL1 {
		t.Errorf("L1 hit latency %d, want %d", lat, cfg.LatL1)
	}
	// Same line, different word: still a hit.
	if lat := h.ScalarAccess(0x10008, 8, true); lat != cfg.LatL1 {
		t.Errorf("L1 hit latency %d, want %d", lat, cfg.LatL1)
	}
	st := h.Stats()
	if st.L1Hits != 2 || st.L1Misses != 1 {
		t.Errorf("L1 hits/misses = %d/%d", st.L1Hits, st.L1Misses)
	}
}

func TestHierarchyL2ServesSecondMiss(t *testing.T) {
	cfg := &machine.USIMD2
	h := NewHierarchy(cfg)
	h.ScalarAccess(0x10000, 8, false) // cold fill of L1+L2+L3
	// Evict from tiny L1 by touching many conflicting lines? Instead,
	// access another address mapping to the same L1 set: L1 is 16KB 4-way
	// 64B lines -> 64 sets -> addresses 4KB apart share a set.
	for i := 1; i <= 4; i++ {
		h.ScalarAccess(int64(0x10000+i*4096), 8, false)
	}
	// 0x10000 has been evicted from L1 but still sits in L2.
	lat := h.ScalarAccess(0x10000, 8, false)
	if lat != cfg.LatL2 {
		t.Errorf("L2 hit latency %d, want %d", lat, cfg.LatL2)
	}
}

func TestVectorUnitStrideLatency(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	// Warm the L2 with a first access.
	h.VectorAccess(0x10000, 8, 16, false)
	// Unit-stride hit: 5 + (16-1)/4 = 8 cycles.
	lat := h.VectorAccess(0x10000, 8, 16, false)
	want := cfg.LatL2 + 15/cfg.L2PortWords
	if lat != want {
		t.Errorf("unit-stride hit latency %d, want %d", lat, want)
	}
	st := h.Stats()
	if st.UnitVectorAccesses != 2 {
		t.Errorf("unit accesses = %d", st.UnitVectorAccesses)
	}
}

func TestVectorNonUnitStridePenalty(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	stride := int64(256)
	// Warm all touched lines.
	h.VectorAccess(0x10000, stride, 8, false)
	lat := h.VectorAccess(0x10000, stride, 8, false)
	want := cfg.LatL2 + 7 // one element per cycle
	if lat != want {
		t.Errorf("strided hit latency %d, want %d", lat, want)
	}
	if st := h.Stats(); st.StridedVectorAccesses != 2 {
		t.Errorf("strided accesses = %d", st.StridedVectorAccesses)
	}
}

func TestVectorBypassesL1(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	h.VectorAccess(0x10000, 8, 16, false)
	st := h.Stats()
	if st.L1Hits != 0 || st.L1Misses != 0 {
		t.Error("vector access must not touch the L1")
	}
	if st.L2Misses == 0 {
		t.Error("cold vector access must miss in L2")
	}
}

func TestCoherencyFlushOnVectorAccess(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	// Scalar write dirties an L1 line.
	h.ScalarAccess(0x10000, 8, true)
	// A vector load covering that line must flush it and pay a penalty.
	clean := NewHierarchy(cfg)
	clean.ScalarAccess(0x10000, 8, false) // same footprint, clean line
	latDirty := h.VectorAccess(0x10000, 8, 16, false)
	latClean := clean.VectorAccess(0x10000, 8, 16, false)
	if latDirty <= latClean {
		t.Errorf("dirty-line flush not charged: dirty=%d clean=%d", latDirty, latClean)
	}
	if st := h.Stats(); st.CoherencyFlushes != 1 {
		t.Errorf("flushes = %d, want 1", st.CoherencyFlushes)
	}
	// The dirty copy is gone from L1 (exclusive policy): next scalar read
	// misses in L1 and is served by the L2.
	if lat := h.ScalarAccess(0x10000, 8, false); lat != cfg.LatL2 {
		t.Errorf("post-flush scalar latency %d, want L2 %d", lat, cfg.LatL2)
	}
}

func TestVectorStoreInvalidatesCleanL1(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	h.ScalarAccess(0x10000, 8, false) // clean L1 copy
	h.VectorAccess(0x10000, 8, 8, true)
	// Exclusive bit: the L1 copy is invalidated by the vector store.
	if lat := h.ScalarAccess(0x10000, 8, false); lat == cfg.LatL1 {
		t.Error("clean L1 copy must be invalidated by a vector store")
	}
}

func TestVectorMissPenalty(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	cold := h.VectorAccess(0x40000, 8, 16, false)
	warm := h.VectorAccess(0x40000, 8, 16, false)
	if cold <= warm {
		t.Errorf("cold %d must exceed warm %d", cold, warm)
	}
	if cold < cfg.LatMem {
		t.Errorf("cold vector access %d must include a memory fill (%d)", cold, cfg.LatMem)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(&machine.Vector2x2)
	h.ScalarAccess(0, 8, true)
	h.VectorAccess(0x1000, 8, 8, false)
	h.Reset()
	st := h.Stats()
	if st != (Stats{}) {
		t.Errorf("stats after reset: %+v", st)
	}
}

func TestPerfectModel(t *testing.T) {
	cfg := &machine.Vector2x2
	p := NewPerfect(cfg)
	if lat := p.ScalarAccess(0x999999, 8, true); lat != cfg.LatL1 {
		t.Errorf("perfect scalar latency %d, want %d", lat, cfg.LatL1)
	}
	// Perfect memory serves any stride at full port rate.
	unit := p.VectorAccess(0, 8, 16, false)
	strided := p.VectorAccess(0, 640, 16, false)
	if unit != strided {
		t.Errorf("perfect memory must ignore stride: %d vs %d", unit, strided)
	}
	if want := cfg.LatL2 + 15/cfg.L2PortWords; unit != want {
		t.Errorf("perfect vector latency %d, want %d", unit, want)
	}
	p.Reset() // must not panic
}

func TestPerfectMatchesScheduledLatency(t *testing.T) {
	// The scheduler's Tlw for a stride-one vector memory op must equal the
	// perfect-memory service latency — so perfect memory never stalls.
	cfg := &machine.Vector2x4
	p := NewPerfect(cfg)
	for vl := 1; vl <= 16; vl++ {
		schedTlw := cfg.LatL2 + (vl-1)/cfg.L2PortWords
		if lat := p.VectorAccess(0, 8, vl, false); lat != schedTlw {
			t.Errorf("VL=%d: perfect latency %d != scheduled %d", vl, lat, schedTlw)
		}
	}
}

func TestWriteValidatePartialLinesTakeFillPath(t *testing.T) {
	cfg := &machine.Vector2x2
	line := int64(cfg.L2Line)

	// A line-aligned stride-one store covering whole lines only: every
	// line is write-validated, so the cold store costs no fill latency.
	aligned := NewHierarchy(cfg)
	base := int64(0x10000)
	lat := aligned.VectorAccess(base, 8, 16, true) // 128 B = 2 whole lines
	want := cfg.LatL2 + 15/cfg.L2PortWords
	if lat != want {
		t.Errorf("aligned cold store latency %d, want %d (pure write-validate)", lat, want)
	}

	// The same VL*8-byte span shifted by half a line touches three lines;
	// the first and last are only partially written, so validating them
	// without a fetch would corrupt the unwritten halves. They must take
	// the fill path (one memory fill each — the next-line prefetcher only
	// covers the middle line), while the fully covered middle line is
	// still write-validated for free.
	part := NewHierarchy(cfg)
	lat = part.VectorAccess(base+line/2, 8, 16, true)
	want = cfg.LatL2 + 15/cfg.L2PortWords + 2*cfg.LatMem
	if lat != want {
		t.Errorf("unaligned cold store latency %d, want %d (two edge-line fills)", lat, want)
	}
}

func TestL2BankCountersSumToTotals(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	// A mix of everything that reaches the L2: scalar misses, unit and
	// strided vector loads, stores with and without write-validate.
	for i := int64(0); i < 64; i++ {
		h.ScalarAccess(0x4000+i*72, 8, i%3 == 0)
	}
	h.VectorAccess(0x10000, 8, 16, false)
	h.VectorAccess(0x10000, 8, 16, true)
	h.VectorAccess(0x20000+int64(cfg.L2Line)/2, 8, 16, true) // edge lines
	h.VectorAccess(0x30000, 256, 8, false)
	st := h.Stats()
	if got := st.L2BankHits[0] + st.L2BankHits[1]; got != st.L2Hits {
		t.Errorf("bank hits sum to %d, L2 total %d", got, st.L2Hits)
	}
	if got := st.L2BankMisses[0] + st.L2BankMisses[1]; got != st.L2Misses {
		t.Errorf("bank misses sum to %d, L2 total %d", got, st.L2Misses)
	}
	// A dense stream must touch both banks.
	if st.L2BankMisses[0] == 0 || st.L2BankMisses[1] == 0 {
		t.Errorf("interleaving broken: per-bank misses %v", st.L2BankMisses)
	}
}

func TestBankConflictAttribution(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	line := int64(cfg.L2Line)

	// Stride = 2*lineSize maps every element onto one bank.
	h.VectorAccess(0x10000, 2*line, 8, false)
	comp := *h.LastAccess()
	wantExtra := int64(7/1 - 7/cfg.L2PortWords)
	if got := comp[metrics.CauseBankConflict]; got != wantExtra {
		t.Errorf("bank-conflict component = %d, want %d", got, wantExtra)
	}
	if st := h.Stats(); st.BankConflicts != 1 {
		t.Errorf("BankConflicts = %d, want 1", st.BankConflicts)
	}

	// Stride = lineSize alternates banks: the generic strided slow path.
	h.VectorAccess(0x10000, line, 8, false)
	comp = *h.LastAccess()
	if got := comp[metrics.CauseStride]; got != wantExtra {
		t.Errorf("stride component = %d, want %d", got, wantExtra)
	}
	if got := comp[metrics.CauseBankConflict]; got != 0 {
		t.Errorf("alternating stride misattributed to bank conflict: %d", got)
	}
	if st := h.Stats(); st.BankConflicts != 1 {
		t.Errorf("BankConflicts = %d after alternating stride, want still 1", st.BankConflicts)
	}
}

func TestComponentsScalarMissChain(t *testing.T) {
	cfg := &machine.USIMD2
	h := NewHierarchy(cfg)
	h.ScalarAccess(0x10000, 8, false) // cold: L1 miss + memory fill
	comp := *h.LastAccess()
	if got := comp[metrics.CauseL1Miss]; got != int64(cfg.LatL2) {
		t.Errorf("l1_miss component = %d, want %d", got, cfg.LatL2)
	}
	if got := comp[metrics.CauseL3Miss]; got != int64(cfg.LatMem) {
		t.Errorf("l3_miss component = %d, want %d", got, cfg.LatMem)
	}
	// An L1 hit records nothing.
	h.ScalarAccess(0x10000, 8, false)
	comp = *h.LastAccess()
	for i, v := range comp {
		if v != 0 {
			t.Errorf("L1 hit left component %d = %d", i, v)
		}
	}
}

func TestComponentsEdgeLineStore(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	line := int64(cfg.L2Line)
	// Unaligned stride-one store: the two boundary lines are fetched and
	// attributed to the edge-line cause, not to a plain miss.
	h.VectorAccess(0x10000+line/2, 8, 16, true)
	comp := *h.LastAccess()
	if got := comp[metrics.CauseEdgeLine]; got != int64(2*cfg.LatMem) {
		t.Errorf("edge_line component = %d, want %d", got, 2*cfg.LatMem)
	}
	if got := comp[metrics.CauseL3Miss]; got != 0 {
		t.Errorf("edge fill leaked into l3_miss: %d", got)
	}
}

func TestComponentsCoherencyFlush(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	h.ScalarAccess(0x10000, 8, true) // dirty L1 line
	h.VectorAccess(0x10000, 8, 16, false)
	comp := *h.LastAccess()
	if got := comp[metrics.CauseCoherency]; got != int64(cfg.LatL1+1) {
		t.Errorf("coherency component = %d, want %d", got, cfg.LatL1+1)
	}
}

func TestVectorAccessClampsNonPositiveVL(t *testing.T) {
	cfg := &machine.Vector2x2
	h := NewHierarchy(cfg)
	h.VectorAccess(0x10000, 8, 16, false) // warm the touched lines
	one := h.VectorAccess(0x10000, 8, 1, false)
	for _, vl := range []int{0, -4} {
		if got := h.VectorAccess(0x10000, 8, vl, false); got != one {
			t.Errorf("vl=%d latency %d, want vl=1 latency %d", vl, got, one)
		}
	}

	p := NewPerfect(cfg)
	one = p.VectorAccess(0, 8, 1, false)
	for _, vl := range []int{0, -4} {
		if got := p.VectorAccess(0, 8, vl, false); got != one {
			t.Errorf("perfect vl=%d latency %d, want vl=1 latency %d", vl, got, one)
		}
	}
}
