package mem

import (
	"fmt"
	"testing"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/metrics"
)

// This file is the proof obligation of the memory-model fast path: the
// optimized Hierarchy must be bit-identical to ReferenceHierarchy on
// every returned latency, every Stats counter and every per-cause stall
// component, for any access stream. A seeded property test and a native
// fuzzer drive both models in lock step and compare after every access;
// a dedicated test forces the LRU-clock renormalization path in both.

// xorshift64 is a tiny deterministic PRNG so the property test and the
// fuzzer share one stream generator.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	if v == 0 {
		v = 0x9e3779b97f4a7c15
	}
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// diffStrides covers every stride class of the optimized VectorAccess:
// unit (8), zero, sub-line (1, 3, 7, 16, 24, 56), line-straddling near
// the line size (63, 64, 65, 70 — 65 and 70 make consecutive elements
// share a line, defeating naive dedup), super-line (96, 256, 1024), the
// single-bank conflict stride (128 = 2 x L2 line) and negative strides
// (which fall back to the reference per-element walk).
var diffStrides = []int64{0, 1, 3, 7, 8, 16, 24, 56, 63, 64, 65, 70, 96, 128, 256, 1024, -8, -64, -65}

// diffPair drives one optimized and one reference hierarchy with the
// same pseudo-random access stream, failing the test on the first
// divergence in latency, stall attribution or statistics.
type diffPair struct {
	h   *Hierarchy
	r   *ReferenceHierarchy
	rng xorshift64
}

func newDiffPair(cfg *machine.Config, opts Options, seed uint64) *diffPair {
	return &diffPair{
		h:   NewHierarchyOpts(cfg, opts),
		r:   NewReferenceHierarchyOpts(cfg, opts),
		rng: xorshift64(seed),
	}
}

func (p *diffPair) step(t *testing.T, i int) {
	t.Helper()
	v := p.rng.next()
	write := v&1 != 0
	var desc string
	var got, want int
	// Vector accesses only exist on configurations with an L2 vector
	// port; µSIMD machines issue scalar/sub-word accesses exclusively.
	if v&2 != 0 || p.h.cfg.L2PortWords < 1 {
		addr := int64((v >> 8) % (1<<21 - 8))
		size := 1 << ((v >> 4) & 3) // 1, 2, 4 or 8 bytes
		desc = fmt.Sprintf("scalar addr=%#x size=%d write=%v", addr, size, write)
		got = p.h.ScalarAccess(addr, size, write)
		want = p.r.ScalarAccess(addr, size, write)
	} else {
		stride := diffStrides[(v>>16)%uint64(len(diffStrides))]
		vl := int((v>>32)%16) + 1
		base := int64((v >> 8) & 0xffff)
		if stride < 0 {
			// Keep the whole footprint at non-negative addresses.
			base += -stride*int64(vl) + 8
		}
		desc = fmt.Sprintf("vector base=%#x stride=%d vl=%d write=%v", base, stride, vl, write)
		got = p.h.VectorAccess(base, stride, vl, write)
		want = p.r.VectorAccess(base, stride, vl, write)
	}
	if got != want {
		t.Fatalf("access %d (%s): latency %d, reference %d", i, desc, got, want)
	}
	if g, w := *p.h.LastAccess(), *p.r.LastAccess(); g != w {
		t.Fatalf("access %d (%s): stall components %v, reference %v", i, desc, g, w)
	}
	if g, w := p.h.Stats(), p.r.Stats(); g != w {
		t.Fatalf("access %d (%s): stats %+v, reference %+v", i, desc, g, w)
	}
}

func runDifferential(t *testing.T, cfg *machine.Config, opts Options, seed uint64, n int) {
	t.Helper()
	p := newDiffPair(cfg, opts, seed)
	for i := 0; i < n; i++ {
		p.step(t, i)
	}
}

var diffOptVariants = []Options{
	{},
	{NoPrefetch: true},
	{NoWriteValidate: true},
	{StridedWordsPerCycle: 4},
	{NoPrefetch: true, NoWriteValidate: true},
}

// TestDifferentialHierarchy runs 10k seeded random accesses per
// configuration and option set, comparing the optimized hierarchy
// against the reference after every single access.
func TestDifferentialHierarchy(t *testing.T) {
	cfgs := []*machine.Config{&machine.USIMD2, &machine.Vector2x2, &machine.Vector2x4}
	for _, cfg := range cfgs {
		for oi, opts := range diffOptVariants {
			t.Run(fmt.Sprintf("%s/opts%d", cfg.Name, oi), func(t *testing.T) {
				runDifferential(t, cfg, opts, 0x9e3779b97f4a7c15+uint64(oi), 10000)
			})
		}
	}
}

// FuzzMemHierarchy fuzzes the optimized-vs-reference equivalence over
// random seeds, stream lengths, configurations and ablation options.
// make fuzz-mem runs it for 10s; make ci includes that smoke run.
func FuzzMemHierarchy(f *testing.F) {
	f.Add(uint64(1), uint16(500), uint8(0))
	f.Add(uint64(0x9e3779b97f4a7c15), uint16(2000), uint8(7))
	f.Add(uint64(42), uint16(100), uint8(30))
	cfgs := []*machine.Config{&machine.USIMD2, &machine.Vector2x2, &machine.Vector2x4}
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, sel uint8) {
		cfg := cfgs[int(sel)%len(cfgs)]
		opts := Options{
			NoPrefetch:      sel&4 != 0,
			NoWriteValidate: sel&8 != 0,
		}
		if sel&16 != 0 {
			opts.StridedWordsPerCycle = 4
		}
		runDifferential(t, cfg, opts, seed, int(n%2048)+32)
	})
}

// TestCacheTickRenormalization forces the LRU-clock renormalization path
// of the optimized Cache and checks that the clock drops back to a small
// value while the replacement order is preserved exactly.
func TestCacheTickRenormalization(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets, 2 ways; set 0 lines are 512 apart
	c.Fill(0)
	c.Fill(512)
	c.Lookup(0, false) // set 0 LRU order now: 512 (older), 0 (newer)
	c.tick = renormTick - 1
	if !c.Lookup(0, false) { // this touch crosses the ceiling
		t.Fatal("line 0 must still hit")
	}
	if c.tick >= renormTick {
		t.Fatalf("tick %d not renormalized", c.tick)
	}
	if c.tick > int64(c.ways)+2 {
		t.Fatalf("tick %d after renormalization, want a small rank-based clock", c.tick)
	}
	// Replacement order must survive: 512 is still the LRU victim.
	base, ok, _ := c.Fill(1024)
	if !ok || base != 512 {
		t.Fatalf("victim after renormalization = %#x (valid=%v), want 0x200", base, ok)
	}
	if !c.Lookup(0, false) {
		t.Error("recently used line evicted after renormalization")
	}
}

// TestDifferentialAcrossRenormalization pins every cache clock of both
// hierarchies just below the renormalization ceiling mid-stream and
// checks they stay in lock step through and past the renormalization.
func TestDifferentialAcrossRenormalization(t *testing.T) {
	cfg := &machine.Vector2x2
	p := newDiffPair(cfg, Options{}, 7)
	for i := 0; i < 2000; i++ {
		p.step(t, i)
	}
	for _, c := range []*Cache{p.h.l1, p.h.l2, p.h.l3} {
		c.tick = renormTick - 40
	}
	for _, c := range []*refCache{p.r.l1, p.r.l2, p.r.l3} {
		c.tick = renormTick - 40
	}
	for i := 2000; i < 4000; i++ {
		p.step(t, i)
	}
	for _, c := range []*Cache{p.h.l1, p.h.l2, p.h.l3} {
		if c.tick >= renormTick {
			t.Fatal("renormalization did not fire")
		}
	}
}

// TestCacheMRUFilterAfterInvalidate guards the MRU way filter against
// serving a stale entry once the line it points at has been invalidated.
func TestCacheMRUFilterAfterInvalidate(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Fill(0)
	if !c.Lookup(0, false) { // filter now points at line 0
		t.Fatal("fill then lookup must hit")
	}
	c.Invalidate(0)
	if c.Lookup(0, false) {
		t.Fatal("stale MRU filter produced a hit after invalidate")
	}
}

// TestScalarLineCrossing checks the line-crossing scalar fix: an access
// that straddles an L1 line boundary probes and fills both lines, and a
// warm crossing access costs two L1 hits with the second attributed to
// the edge-line cause.
func TestScalarLineCrossing(t *testing.T) {
	cfg := &machine.USIMD2
	h := NewHierarchy(cfg)
	base := int64(0x10000 + cfg.L1Line - 4) // 8-byte access, 4 bytes past the boundary
	h.ScalarAccess(base, 8, false)
	if st := h.Stats(); st.L1Misses != 2 {
		t.Errorf("cold crossing access: L1 misses = %d, want 2 (both lines filled)", st.L1Misses)
	}
	if lat := h.ScalarAccess(base, 8, false); lat != 2*cfg.LatL1 {
		t.Errorf("warm crossing access latency = %d, want %d", lat, 2*cfg.LatL1)
	}
	if c := h.LastAccess(); c[metrics.CauseEdgeLine] != int64(cfg.LatL1) {
		t.Errorf("edge-line component = %d, want %d", c[metrics.CauseEdgeLine], cfg.LatL1)
	}
	// An aligned 8-byte access still touches exactly one line.
	h2 := NewHierarchy(cfg)
	h2.ScalarAccess(0x10000, 8, false)
	if st := h2.Stats(); st.L1Misses != 1 {
		t.Errorf("aligned access: L1 misses = %d, want 1", st.L1Misses)
	}
	// A 1-byte access at the last byte of a line never crosses.
	h2.ScalarAccess(0x10000+int64(cfg.L1Line)-1, 1, false)
	if st := h2.Stats(); st.L1Misses != 1 {
		t.Errorf("1-byte edge access: L1 misses = %d, want 1", st.L1Misses)
	}
}
