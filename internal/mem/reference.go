package mem

import (
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/metrics"
)

// This file retains the original, straightforward memory-hierarchy
// implementation as the reference model, following the oracle pattern of
// the pre-decoded engine (internal/sim) and the SWAR kernels
// (internal/simd/reference.go): the optimized Hierarchy in hierarchy.go
// must stay bit-identical to ReferenceHierarchy on every returned
// latency, Stats counter and per-cause stall component. The differential
// property test and FuzzMemHierarchy in this package cross-check the two
// on seeded random access streams, and the engine-level differential
// tests replay whole applications through both.
//
// refCache indexes with div/mod and scans every way on each lookup;
// ReferenceHierarchy walks vector accesses element by element with
// last-line deduplication. Keep this file boring: any change to the
// modeled semantics must be made here first, in the clearest possible
// form, and then mirrored by the fast path.

// refCache is the reference set-associative write-back, write-allocate
// LRU cache (tags only).
type refCache struct {
	lineSize int
	sets     int
	ways     int
	tags     []int64 // [set*ways + way]
	valid    []bool
	dirty    []bool
	stamp    []int64
	tick     int64

	Hits   int64
	Misses int64
}

func newRefCache(bytes, ways, line int) *refCache {
	sets := bytes / (ways * line)
	if sets < 1 {
		sets = 1
	}
	n := sets * ways
	return &refCache{
		lineSize: line,
		sets:     sets,
		ways:     ways,
		tags:     make([]int64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		stamp:    make([]int64, n),
	}
}

func (c *refCache) LineBase(addr int64) int64 {
	return addr &^ int64(c.lineSize-1)
}

func (c *refCache) LineSize() int { return c.lineSize }

func (c *refCache) index(addr int64) (set int, tag int64) {
	line := addr / int64(c.lineSize)
	return int(line % int64(c.sets)), line / int64(c.sets)
}

// touch advances the LRU clock, renormalizing at the same tick — with the
// same shared helper — as the optimized Cache, so the two stay in lock
// step across a renormalization.
func (c *refCache) touch() {
	c.tick++
	if c.tick >= renormTick {
		c.tick = renormStamps(c.stamp, c.sets, c.ways)
	}
}

func (c *refCache) Lookup(addr int64, write bool) bool {
	set, tag := c.index(addr)
	c.touch()
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

func (c *refCache) Probe(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			return true, c.dirty[i]
		}
	}
	return false, false
}

func (c *refCache) Fill(addr int64) (victimBase int64, victimValid, victimDirty bool) {
	set, tag := c.index(addr)
	c.touch()
	lru, lruStamp := -1, int64(1<<62)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if !c.valid[i] {
			lru = i
			lruStamp = -1
			break
		}
		if c.stamp[i] < lruStamp {
			lru, lruStamp = i, c.stamp[i]
		}
	}
	i := lru
	if c.valid[i] {
		victimValid = true
		victimDirty = c.dirty[i]
		victimBase = (c.tags[i]*int64(c.sets) + int64(set)) * int64(c.lineSize)
	}
	c.tags[i] = tag
	c.valid[i] = true
	c.dirty[i] = false
	c.stamp[i] = c.tick
	return victimBase, victimValid, victimDirty
}

func (c *refCache) Invalidate(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.valid[i] = false
			d := c.dirty[i]
			c.dirty[i] = false
			return true, d
		}
	}
	return false, false
}

func (c *refCache) MarkDirty(addr int64) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.dirty[i] = true
			return
		}
	}
}

func (c *refCache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.stamp[i] = 0
	}
	c.tick = 0
	c.Hits = 0
	c.Misses = 0
}

// ReferenceHierarchy is the reference realistic three-level memory
// system: semantically identical to Hierarchy, implemented in the
// original straightforward style (per-element vector walks, full
// associative scans, eager lazy-flag attribution reset).
type ReferenceHierarchy struct {
	cfg  *machine.Config
	opts Options
	l1   *refCache
	l2   *refCache
	l3   *refCache
	st   Stats
	// det accumulates the per-cause extra latency of the access in flight;
	// detDirty defers the clear to the next access that needs it.
	det      metrics.Components
	detDirty bool
}

// NewReferenceHierarchy builds the reference hierarchy with default
// options.
func NewReferenceHierarchy(cfg *machine.Config) *ReferenceHierarchy {
	return NewReferenceHierarchyOpts(cfg, Options{})
}

// NewReferenceHierarchyOpts builds the reference hierarchy with ablation
// options.
func NewReferenceHierarchyOpts(cfg *machine.Config, opts Options) *ReferenceHierarchy {
	if opts.StridedWordsPerCycle < 1 {
		opts.StridedWordsPerCycle = 1
	}
	return &ReferenceHierarchy{
		cfg:  cfg,
		opts: opts,
		l1:   newRefCache(cfg.L1Bytes, cfg.L1Ways, cfg.L1Line),
		l2:   newRefCache(cfg.L2Bytes, cfg.L2Ways, cfg.L2Line),
		l3:   newRefCache(cfg.L3Bytes, cfg.L3Ways, cfg.L3Line),
	}
}

// Stats returns a snapshot of the event counters.
func (h *ReferenceHierarchy) Stats() Stats {
	s := h.st
	s.L1Hits, s.L1Misses = h.l1.Hits, h.l1.Misses
	s.L2Hits, s.L2Misses = h.l2.Hits, h.l2.Misses
	s.L3Hits, s.L3Misses = h.l3.Hits, h.l3.Misses
	return s
}

// Reset implements Model.
func (h *ReferenceHierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.st = Stats{}
	h.det.Reset()
	h.detDirty = false
}

// LastAccess implements Detailed.
func (h *ReferenceHierarchy) LastAccess() *metrics.Components { return &h.det }

func (h *ReferenceHierarchy) detReset() {
	if h.detDirty {
		h.det.Reset()
		h.detDirty = false
	}
}

func (h *ReferenceHierarchy) detAdd(cause metrics.Cause, cycles int64) {
	h.det.Add(cause, cycles)
	h.detDirty = true
}

func (h *ReferenceHierarchy) l2Lookup(addr int64, write bool) bool {
	bank := (addr / int64(h.l2.LineSize())) & (NumL2Banks - 1)
	hit := h.l2.Lookup(addr, write)
	if hit {
		h.st.L2BankHits[bank]++
	} else {
		h.st.L2BankMisses[bank]++
	}
	return hit
}

func (h *ReferenceHierarchy) fillL2(addr int64, edge bool) int {
	if !h.opts.NoPrefetch {
		defer h.prefetch(h.l2.LineBase(addr) + int64(h.l2.LineSize()))
	}
	if h.l2Lookup(addr, false) {
		return 0
	}
	lat := 0
	cause := metrics.CauseL2Miss
	if h.l3.Lookup(addr, false) {
		lat = h.cfg.LatL3
	} else {
		lat = h.cfg.LatMem
		cause = metrics.CauseL3Miss
		h.l3.Fill(addr)
	}
	if edge {
		cause = metrics.CauseEdgeLine
	}
	h.detAdd(cause, int64(lat))
	h.installL2(addr)
	return lat
}

func (h *ReferenceHierarchy) prefetch(line int64) {
	if present, _ := h.l2.Probe(line); present {
		return
	}
	if p3, _ := h.l3.Probe(line); !p3 {
		h.l3.Fill(line)
	}
	h.installL2(line)
	h.st.Prefetches++
}

func (h *ReferenceHierarchy) installL2(addr int64) {
	if base, ok, dirty := h.l2.Fill(addr); ok && dirty {
		if present, _ := h.l3.Probe(base); !present {
			h.l3.Fill(base)
		}
		h.l3.MarkDirty(base)
	}
}

// scalarLine services one L1 line of a scalar access (see
// Hierarchy.scalarLine).
func (h *ReferenceHierarchy) scalarLine(addr int64, write bool) (lat int, hit bool) {
	if h.l1.Lookup(addr, write) {
		return h.cfg.LatL1, true
	}
	h.detAdd(metrics.CauseL1Miss, int64(h.cfg.LatL2))
	lat = h.cfg.LatL2 + h.fillL2(addr, false)
	if base, ok, dirty := h.l1.Fill(addr); ok && dirty {
		h.l2.MarkDirty(base)
	}
	if write {
		h.l1.MarkDirty(addr)
	}
	return lat, false
}

// ScalarAccess implements Model, including the line-crossing rule of
// Hierarchy.ScalarAccess: both lines of a span crossing an L1 boundary
// are probed and filled, serialized.
func (h *ReferenceHierarchy) ScalarAccess(addr int64, size int, write bool) int {
	h.detReset()
	lat, _ := h.scalarLine(addr, write)
	if size > 1 {
		if last := h.l1.LineBase(addr + int64(size) - 1); last != h.l1.LineBase(addr) {
			lat2, hit := h.scalarLine(last, write)
			if hit {
				h.detAdd(metrics.CauseEdgeLine, int64(lat2))
			}
			lat += lat2
		}
	}
	return lat
}

// VectorAccess implements Model with the original per-element walk: every
// element's span is enumerated line by line, deduplicating only against
// the immediately previously visited line.
func (h *ReferenceHierarchy) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	h.detReset()
	lat := h.cfg.LatL2
	unit := stride == 8
	if unit {
		h.st.UnitVectorAccesses++
		lat += (vl - 1) / h.cfg.L2PortWords
	} else {
		h.st.StridedVectorAccesses++
		lat += (vl - 1) / h.opts.StridedWordsPerCycle
		if extra := int64((vl-1)/h.opts.StridedWordsPerCycle - (vl-1)/h.cfg.L2PortWords); extra > 0 {
			if stride%(2*int64(h.l2.LineSize())) == 0 {
				h.st.BankConflicts++
				h.detAdd(metrics.CauseBankConflict, extra)
			} else {
				h.detAdd(metrics.CauseStride, extra)
			}
		}
	}

	// Visit each distinct line the access touches.
	lastLine := int64(-1)
	for i := 0; i < vl; i++ {
		addr := base + int64(i)*stride
		line := h.l2.LineBase(addr)
		endLine := h.l2.LineBase(addr + 7)
		for l := line; l <= endLine; l += int64(h.l2.LineSize()) {
			if l == lastLine {
				continue
			}
			lastLine = l
			if present, dirty := h.l1.Probe(l); present {
				if dirty {
					h.l1.Invalidate(l)
					h.l2.MarkDirty(l)
					h.st.CoherencyFlushes++
					h.detAdd(metrics.CauseCoherency, int64(h.cfg.LatL1+1))
					lat += h.cfg.LatL1 + 1
				} else if write {
					h.l1.Invalidate(l)
				}
			}
			// Write-validate requires the store to cover the *whole* line:
			// the first and last lines of an unaligned span are only
			// partially written and must be fetched like any other miss.
			covered := l >= base && l+int64(h.l2.LineSize()) <= base+int64(vl)*8
			if write && unit && covered && !h.opts.NoWriteValidate {
				if !h.l2Lookup(l, true) {
					if base, ok, dirty := h.l2.Fill(l); ok && dirty {
						if present, _ := h.l3.Probe(base); !present {
							h.l3.Fill(base)
						}
						h.l3.MarkDirty(base)
					}
					h.l2.MarkDirty(l)
				}
			} else {
				edge := write && unit && !h.opts.NoWriteValidate
				lat += h.fillL2(l, edge)
				if write {
					h.l2.MarkDirty(l)
				}
			}
		}
	}
	return lat
}

var _ Model = (*ReferenceHierarchy)(nil)
var _ Detailed = (*ReferenceHierarchy)(nil)
