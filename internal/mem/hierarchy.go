package mem

import (
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/metrics"
)

// Model is the timing interface the simulator drives. Both the realistic
// Hierarchy and the Perfect model implement it. Returned values are the
// access's total service latency in cycles; the simulator stalls the
// machine for the difference between this and the statically scheduled
// latency.
type Model interface {
	// ScalarAccess services a scalar or µSIMD access of the given size
	// through the L1.
	ScalarAccess(addr int64, size int, write bool) int
	// VectorAccess services a vector access of vl 64-bit words whose
	// consecutive words are stride bytes apart, through the L2 vector
	// cache (bypassing the L1).
	VectorAccess(base, stride int64, vl int, write bool) int
	// Reset clears all state and statistics.
	Reset()
}

// Detailed is implemented by models that attribute each access's extra
// latency to stall causes. The simulator uses it, when available, to tag
// every run-time stall cycle with the cause that produced it.
type Detailed interface {
	Model
	// LastAccess returns the per-cause extra-latency components of the
	// most recent ScalarAccess/VectorAccess call. The pointer is reused
	// between accesses; callers must consume it before the next access.
	LastAccess() *metrics.Components
}

// NumL2Banks is the number of interleaved banks of the L2 vector cache
// (the paper's two-bank organisation). Consecutive lines map to
// alternating banks.
const NumL2Banks = 2

// Stats aggregates hierarchy event counters.
type Stats struct {
	L1Hits   int64 `json:"l1_hits"`
	L1Misses int64 `json:"l1_misses"`
	L2Hits   int64 `json:"l2_hits"`
	L2Misses int64 `json:"l2_misses"`
	L3Hits   int64 `json:"l3_hits"`
	L3Misses int64 `json:"l3_misses"`
	// L2BankHits/L2BankMisses split the L2 counters across the interleaved
	// banks; they sum exactly to L2Hits/L2Misses (asserted by the
	// invariant tests, making them an oracle for the lookup paths).
	L2BankHits   [NumL2Banks]int64 `json:"l2_bank_hits"`
	L2BankMisses [NumL2Banks]int64 `json:"l2_bank_misses"`
	// BankConflicts counts strided vector accesses whose stride mapped
	// every element onto a single bank, serializing the banked port.
	BankConflicts int64 `json:"bank_conflicts"`
	// CoherencyFlushes counts dirty L1 lines written back (and
	// invalidated, per the exclusive-bit policy) because a vector access
	// touched them.
	CoherencyFlushes int64 `json:"coherency_flushes"`
	// StridedVectorAccesses counts vector accesses served at one element
	// per cycle because their stride was not one.
	StridedVectorAccesses int64 `json:"strided_vector_accesses"`
	UnitVectorAccesses    int64 `json:"unit_vector_accesses"`
	// Prefetches counts next-line prefetch fills issued by the L2.
	Prefetches int64 `json:"prefetches"`
}

// Options selects memory-model variations for ablation studies (the
// paper's conclusion calls for improving the memory hierarchy; these
// knobs quantify its individual mechanisms).
type Options struct {
	// NoPrefetch disables the tagged next-line prefetcher, so every cold
	// line of a stream pays the full memory latency.
	NoPrefetch bool
	// NoWriteValidate makes stride-one vector stores fetch missing lines
	// (classic write-allocate) instead of installing them directly.
	NoWriteValidate bool
	// StridedWordsPerCycle is the element rate of non-unit-stride vector
	// accesses. The paper's two-bank cache serves them at 1 (the default);
	// a fully conflict-free banked cache — the "improved memory
	// hierarchy" the conclusion asks for — would approach the port width.
	StridedWordsPerCycle int
}

// Hierarchy is the realistic three-level memory system.
//
// This is the optimized implementation: VectorAccess walks the distinct
// lines of the access directly (per stride class) instead of looping over
// elements, the caches index with shift/mask and an MRU way filter, and
// the per-access stall components are epoch-tagged so detReset never
// zeroes the array. ReferenceHierarchy (reference.go) is the
// straightforward original; the two are proven bit-identical on every
// latency, Stats field and stall component by the differential tests and
// FuzzMemHierarchy.
type Hierarchy struct {
	cfg  *machine.Config
	opts Options
	l1   *Cache
	l2   *Cache // the two-bank interleaved vector cache
	l3   *Cache
	st   Stats
	// det accumulates the per-cause extra latency of the access in flight;
	// it is read back by the simulator through LastAccess. Entries are
	// epoch-tagged: detReset only bumps detEpoch, detAdd overwrites a
	// stale entry instead of accumulating into it, and LastAccess zeroes
	// whatever entries the current access did not touch. The common
	// all-hit path therefore never writes the array at all.
	det      metrics.Components
	detTag   [metrics.NumCauses]uint64
	detEpoch uint64

	// Prefetch memo: a direct-mapped table of L2 line numbers recently
	// proven present (encoded +1 so the zero value never matches), each
	// versioned by the L2 fill counter at proof time. A line's presence
	// can only end with an L2 Fill evicting it, so while the counter is
	// unchanged the prefetch would early-return on its presence probe —
	// the memo skips the whole call without any observable difference.
	pref [prefEntries]prefEnt
}

// prefEnt is one prefetch-memo slot: an L2 line number encoded +1 (zero
// never matches) and the L2 fill count when its presence was proven.
type prefEnt struct {
	line  int64
	fills int64
}

// prefEntries sizes the prefetch memo (power of two); like the cache
// probe filter it must cover a search window's worth of distinct lines.
const prefEntries = 256

// NewHierarchy builds the hierarchy described by cfg with default options.
func NewHierarchy(cfg *machine.Config) *Hierarchy {
	return NewHierarchyOpts(cfg, Options{})
}

// NewHierarchyOpts builds the hierarchy with ablation options.
func NewHierarchyOpts(cfg *machine.Config, opts Options) *Hierarchy {
	if opts.StridedWordsPerCycle < 1 {
		opts.StridedWordsPerCycle = 1
	}
	return &Hierarchy{
		cfg:  cfg,
		opts: opts,
		l1:   NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.L1Line),
		l2:   NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.L2Line),
		l3:   NewCache(cfg.L3Bytes, cfg.L3Ways, cfg.L3Line),
	}
}

// Stats returns a snapshot of the event counters.
func (h *Hierarchy) Stats() Stats {
	s := h.st
	s.L1Hits, s.L1Misses = h.l1.Hits, h.l1.Misses
	s.L2Hits, s.L2Misses = h.l2.Hits, h.l2.Misses
	s.L3Hits, s.L3Misses = h.l3.Hits, h.l3.Misses
	return s
}

// Reset implements Model.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.st = Stats{}
	h.det.Reset()
	h.detTag = [metrics.NumCauses]uint64{}
	h.detEpoch = 0
	h.pref = [prefEntries]prefEnt{}
}

// LastAccess implements Detailed. It materializes the epoch-tagged
// components: entries the access in flight did not touch are zeroed here,
// instead of eagerly at the start of every access.
func (h *Hierarchy) LastAccess() *metrics.Components {
	for i := range h.det {
		if h.detTag[i] != h.detEpoch {
			h.det[i] = 0
			h.detTag[i] = h.detEpoch
		}
	}
	return &h.det
}

// detReset opens a new attribution epoch for the next access. No state is
// cleared: stale entries are recognized by their tag.
func (h *Hierarchy) detReset() {
	h.detEpoch++
}

// detAdd charges extra latency to a cause for the access in flight.
func (h *Hierarchy) detAdd(cause metrics.Cause, cycles int64) {
	if h.detTag[cause] != h.detEpoch {
		h.det[cause] = cycles
		h.detTag[cause] = h.detEpoch
		return
	}
	h.det[cause] += cycles
}

// l2Lookup is the single funnel for timed L2 lookups: it splits the
// hit/miss into the interleaved bank the line maps to. Probe and Fill
// bypass it (they do not touch the counters), so the per-bank counters sum
// exactly to the cache's own Hits/Misses.
func (h *Hierarchy) l2Lookup(addr int64, write bool) bool {
	var bank int64
	if h.l2.pow2 {
		bank = (addr >> h.l2.lineShift) & (NumL2Banks - 1)
	} else {
		bank = (addr / int64(h.l2.lineSize)) & (NumL2Banks - 1)
	}
	hit := h.l2.Lookup(addr, write)
	if hit {
		h.st.L2BankHits[bank]++
	} else {
		h.st.L2BankMisses[bank]++
	}
	return hit
}

// fillL2 ensures the line containing addr is in the L2 (filling from L3 or
// memory as needed) and returns the latency contributed beyond the L2
// access itself: 0 on an L2 hit. A simple next-line prefetcher runs on
// every fill, so sequential streams pay the full memory latency only for
// the first line — without it the in-order, stall-on-miss machine would
// serialize hundreds of cycles per line on streaming code.
// The edge flag marks the partially covered boundary line of an unaligned
// stride-one store, whose fill is attributed to CauseEdgeLine instead of
// the miss level that served it.
func (h *Hierarchy) fillL2(addr int64, edge bool) int {
	lat := 0
	if !h.l2Lookup(addr, false) {
		cause := metrics.CauseL2Miss
		if h.l3.Lookup(addr, false) {
			lat = h.cfg.LatL3
		} else {
			lat = h.cfg.LatMem
			cause = metrics.CauseL3Miss
			h.l3.Fill(addr) // write-back of the victim is hidden behind the fill
		}
		if edge {
			cause = metrics.CauseEdgeLine
		}
		h.detAdd(cause, int64(lat))
		h.installL2(addr)
	}
	// Tagged next-line prefetch: every L2 access (hit or miss) pulls the
	// following line in at no cost, so streams pay the memory latency
	// only on their first line. It runs after the fill (the reference
	// defers it), so the cache-state update order is identical.
	if !h.opts.NoPrefetch {
		line := h.l2.LineBase(addr) + int64(h.l2.lineSize)
		ln := h.l2.lineNum(line)
		e := &h.pref[uint(ln)&(prefEntries-1)]
		if e.line != ln+1 || e.fills != h.l2.fills {
			h.prefetch(line)
			// The line is in the L2 now, whether it was already present
			// or the prefetch just installed it.
			e.line, e.fills = ln+1, h.l2.fills
		}
	}
	return lat
}

// prefetch installs a line into the L2 (and L3) if absent, without
// charging latency.
func (h *Hierarchy) prefetch(line int64) {
	if present, _ := h.l2.Probe(line); present {
		return
	}
	if p3, _ := h.l3.Probe(line); !p3 {
		h.l3.Fill(line)
	}
	h.installL2(line)
	h.st.Prefetches++
}

// installL2 fills a line into the L2, pushing a dirty victim down to the
// L3 (inclusion) without perturbing the hit/miss counters.
func (h *Hierarchy) installL2(addr int64) {
	if base, ok, dirty := h.l2.Fill(addr); ok && dirty {
		if present, _ := h.l3.Probe(base); !present {
			h.l3.Fill(base)
		}
		h.l3.MarkDirty(base)
	}
}

// scalarLine services one L1 line of a scalar access: the L1 lookup and,
// on a miss, the fill chain below it. It reports whether the line hit.
func (h *Hierarchy) scalarLine(addr int64, write bool) (lat int, hit bool) {
	if h.l1.Lookup(addr, write) {
		return h.cfg.LatL1, true
	}
	// The miss pays the L2 access (beyond the scheduled L1 hit) plus
	// whatever fill the L2 itself needs; clamping in the simulator trims
	// the share the schedule's slack absorbed.
	h.detAdd(metrics.CauseL1Miss, int64(h.cfg.LatL2))
	lat = h.cfg.LatL2 + h.fillL2(addr, false)
	if base, ok, dirty := h.l1.Fill(addr); ok && dirty {
		// Write the victim back into the L2 (it is there by inclusion).
		h.l2.MarkDirty(base)
	}
	if write {
		h.l1.MarkDirty(addr) // write allocation
	}
	return lat, false
}

// ScalarAccess implements Model: L1 first, then L2/L3/memory, inclusive
// fills along the way. An access whose [addr, addr+size) span crosses an
// L1 line boundary probes (and on a miss fills) both lines, serialized:
// the second line's hit cost is charged to the edge-line cause, and its
// misses to the ordinary miss chain.
func (h *Hierarchy) ScalarAccess(addr int64, size int, write bool) int {
	h.detReset()
	lat, _ := h.scalarLine(addr, write)
	if size > 1 {
		if last := h.l1.LineBase(addr + int64(size) - 1); last != h.l1.LineBase(addr) {
			lat2, hit := h.scalarLine(last, write)
			if hit {
				h.detAdd(metrics.CauseEdgeLine, int64(lat2))
			}
			lat += lat2
		}
	}
	return lat
}

// vectorHeader charges the port-transfer part of a vector access and
// registers its stride class; it returns the base latency. Shared by the
// per-stride line walks below.
func (h *Hierarchy) vectorHeader(stride int64, vl int, unit bool) int {
	lat := h.cfg.LatL2
	if unit {
		h.st.UnitVectorAccesses++
		lat += (vl - 1) / h.cfg.L2PortWords
		return lat
	}
	h.st.StridedVectorAccesses++
	lat += (vl - 1) / h.opts.StridedWordsPerCycle
	// The slow path's extra over the scheduled full-rate transfer. A
	// stride that is a multiple of twice the line size maps every
	// element onto one bank — a true bank conflict rather than the
	// generic one-element-per-cycle strided port.
	if extra := int64((vl-1)/h.opts.StridedWordsPerCycle - (vl-1)/h.cfg.L2PortWords); extra > 0 {
		if stride%(2*int64(h.l2.LineSize())) == 0 {
			h.st.BankConflicts++
			h.detAdd(metrics.CauseBankConflict, extra)
		} else {
			h.detAdd(metrics.CauseStride, extra)
		}
	}
	return lat
}

// vecLine services one distinct L2 line touched by a vector access: the
// coherency probe against the L1 and the L2 lookup/fill (write-validate
// for fully covered lines of a stride-one store). It returns the line's
// latency contribution.
func (h *Hierarchy) vecLine(l, base int64, vl int, write, unit bool) int {
	lat := 0
	// Coherency probe: flush dirty L1 copies; a vector store also
	// invalidates clean copies (exclusive-bit policy).
	if present, dirty := h.l1.Probe(l); present {
		if dirty {
			h.l1.Invalidate(l)
			h.l2.MarkDirty(l)
			h.st.CoherencyFlushes++
			h.detAdd(metrics.CauseCoherency, int64(h.cfg.LatL1+1))
			lat += h.cfg.LatL1 + 1
		} else if write {
			h.l1.Invalidate(l)
		}
	}
	if write && unit && !h.opts.NoWriteValidate {
		// Write-validate requires the store to cover the *whole* line:
		// the first and last lines of an unaligned span are only
		// partially written and must be fetched like any other miss.
		if l >= base && l+int64(h.l2.LineSize()) <= base+int64(vl)*8 {
			// Write-validate: a stride-one vector store covers whole
			// lines through the wide port, so a missing line is
			// installed without fetching it from below.
			if !h.l2Lookup(l, true) {
				h.installL2(l)
				h.l2.MarkDirty(l)
			}
			return lat
		}
		// A partially covered edge line of the span: fetched, with the
		// fill attributed to the edge-line cause.
		lat += h.fillL2(l, true)
		h.l2.MarkDirty(l)
		return lat
	}
	lat += h.fillL2(l, false)
	if write {
		h.l2.MarkDirty(l)
	}
	return lat
}

// VectorAccess implements Model. The compiler schedules every vector
// memory operation as a stride-one L2 hit; the run-time difference is the
// stall the simulator charges:
//
//   - stride one (8 bytes between words): the two banks deliver two whole
//     lines per access, B words per cycle;
//   - any other stride: one element per cycle;
//   - L2 misses add the L3/memory fill latency per missing line;
//   - dirty L1 lines covering the accessed words are flushed to the L2
//     and invalidated (exclusive bit + inclusion), costing one L1-flush
//     penalty each.
//
// The lines the access touches are enumerated directly per stride class
// (see DESIGN.md §7 for the derivation): a positive stride up to the line
// size touches a dense ascending run of lines, a longer stride touches at
// most two lines per element, and only the rare remaining shapes
// (negative strides, sub-8-byte lines) fall back to the per-element walk
// of the reference model. Every class reproduces the reference's line
// visit sequence exactly — same lines, same order, same multiplicity.
//
// A non-positive vl is clamped to 1: latency formulas divide (vl-1) by the
// port rate, and a negative numerator would silently *reduce* latency.
func (h *Hierarchy) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	h.detReset()
	unit := stride == 8
	lat := h.vectorHeader(stride, vl, unit)

	ls := int64(h.l2.LineSize())
	switch {
	case stride >= 8 && stride <= ls && ls >= 8:
		// Elements do not overlap (stride covers the 8-byte word),
		// consecutive elements start at most a line apart and each element
		// spans at most one boundary, so the visited lines are exactly the
		// dense ascending run from the first element's first line to the
		// last element's last line, each visited once. (Sub-word strides
		// overlap elements and re-visit lines the last-line dedup cannot
		// coalesce — they take the reference walk below.)
		last := h.l2.LineBase(base + int64(vl-1)*stride + 7)
		for l := h.l2.LineBase(base); l <= last; l += ls {
			lat += h.vecLine(l, base, vl, write, unit)
		}
	case stride == 0 && ls >= 8:
		first, second := h.l2.LineBase(base), h.l2.LineBase(base+7)
		if first == second {
			// Every element touches the same single line; the walk
			// coalesces to one visit.
			lat += h.vecLine(first, base, vl, write, unit)
		} else {
			// A line-crossing word at stride zero alternates between its
			// two lines on every element, defeating the last-line
			// coalescing — visit both lines per element, like the
			// reference walk does.
			for i := 0; i < vl; i++ {
				lat += h.vecLine(first, base, vl, write, unit)
				lat += h.vecLine(second, base, vl, write, unit)
			}
		}
	case stride > ls && ls >= 8:
		// Each element touches its own line, plus the next when the word
		// crosses a boundary; strides within a word of the line size can
		// land the next element on the previous element's second line, so
		// the last visited line is still deduplicated.
		lastLine := int64(-1)
		for i := 0; i < vl; i++ {
			a := base + int64(i)*stride
			l0, l1 := h.l2.LineBase(a), h.l2.LineBase(a+7)
			if l0 != lastLine {
				lat += h.vecLine(l0, base, vl, write, unit)
			}
			if l1 != l0 {
				lat += h.vecLine(l1, base, vl, write, unit)
			}
			lastLine = l1
		}
	default:
		// Negative strides (descending walks revisit lines in patterns the
		// closed forms above do not cover), sub-word strides 1..7
		// (overlapping elements re-visit lines) and degenerate sub-8-byte
		// lines: the reference per-element walk.
		lastLine := int64(-1)
		for i := 0; i < vl; i++ {
			a := base + int64(i)*stride
			endLine := h.l2.LineBase(a + 7)
			for l := h.l2.LineBase(a); l <= endLine; l += ls {
				if l == lastLine {
					continue
				}
				lastLine = l
				lat += h.vecLine(l, base, vl, write, unit)
			}
		}
	}
	return lat
}

var _ Model = (*Hierarchy)(nil)
var _ Detailed = (*Hierarchy)(nil)

// Perfect is the paper's perfect-memory model (Figure 5a): every access
// hits in its cache with the corresponding latency, and vector accesses
// are served at the full port rate regardless of stride.
type Perfect struct {
	cfg *machine.Config
}

// NewPerfect builds a perfect-memory model for cfg.
func NewPerfect(cfg *machine.Config) *Perfect { return &Perfect{cfg: cfg} }

// ScalarAccess implements Model: always an L1 hit.
func (p *Perfect) ScalarAccess(addr int64, size int, write bool) int {
	return p.cfg.LatL1
}

// VectorAccess implements Model: always a full-rate L2 hit. A
// non-positive vl is clamped to 1 (see Hierarchy.VectorAccess).
func (p *Perfect) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	return p.cfg.LatL2 + (vl-1)/p.cfg.L2PortWords
}

// Reset implements Model.
func (p *Perfect) Reset() {}

var _ Model = (*Perfect)(nil)
