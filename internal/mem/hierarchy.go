package mem

import (
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/metrics"
)

// Model is the timing interface the simulator drives. Both the realistic
// Hierarchy and the Perfect model implement it. Returned values are the
// access's total service latency in cycles; the simulator stalls the
// machine for the difference between this and the statically scheduled
// latency.
type Model interface {
	// ScalarAccess services a scalar or µSIMD access of the given size
	// through the L1.
	ScalarAccess(addr int64, size int, write bool) int
	// VectorAccess services a vector access of vl 64-bit words whose
	// consecutive words are stride bytes apart, through the L2 vector
	// cache (bypassing the L1).
	VectorAccess(base, stride int64, vl int, write bool) int
	// Reset clears all state and statistics.
	Reset()
}

// Detailed is implemented by models that attribute each access's extra
// latency to stall causes. The simulator uses it, when available, to tag
// every run-time stall cycle with the cause that produced it.
type Detailed interface {
	Model
	// LastAccess returns the per-cause extra-latency components of the
	// most recent ScalarAccess/VectorAccess call. The pointer is reused
	// between accesses; callers must consume it before the next access.
	LastAccess() *metrics.Components
}

// NumL2Banks is the number of interleaved banks of the L2 vector cache
// (the paper's two-bank organisation). Consecutive lines map to
// alternating banks.
const NumL2Banks = 2

// Stats aggregates hierarchy event counters.
type Stats struct {
	L1Hits   int64 `json:"l1_hits"`
	L1Misses int64 `json:"l1_misses"`
	L2Hits   int64 `json:"l2_hits"`
	L2Misses int64 `json:"l2_misses"`
	L3Hits   int64 `json:"l3_hits"`
	L3Misses int64 `json:"l3_misses"`
	// L2BankHits/L2BankMisses split the L2 counters across the interleaved
	// banks; they sum exactly to L2Hits/L2Misses (asserted by the
	// invariant tests, making them an oracle for the lookup paths).
	L2BankHits   [NumL2Banks]int64 `json:"l2_bank_hits"`
	L2BankMisses [NumL2Banks]int64 `json:"l2_bank_misses"`
	// BankConflicts counts strided vector accesses whose stride mapped
	// every element onto a single bank, serializing the banked port.
	BankConflicts int64 `json:"bank_conflicts"`
	// CoherencyFlushes counts dirty L1 lines written back (and
	// invalidated, per the exclusive-bit policy) because a vector access
	// touched them.
	CoherencyFlushes int64 `json:"coherency_flushes"`
	// StridedVectorAccesses counts vector accesses served at one element
	// per cycle because their stride was not one.
	StridedVectorAccesses int64 `json:"strided_vector_accesses"`
	UnitVectorAccesses    int64 `json:"unit_vector_accesses"`
	// Prefetches counts next-line prefetch fills issued by the L2.
	Prefetches int64 `json:"prefetches"`
}

// Options selects memory-model variations for ablation studies (the
// paper's conclusion calls for improving the memory hierarchy; these
// knobs quantify its individual mechanisms).
type Options struct {
	// NoPrefetch disables the tagged next-line prefetcher, so every cold
	// line of a stream pays the full memory latency.
	NoPrefetch bool
	// NoWriteValidate makes stride-one vector stores fetch missing lines
	// (classic write-allocate) instead of installing them directly.
	NoWriteValidate bool
	// StridedWordsPerCycle is the element rate of non-unit-stride vector
	// accesses. The paper's two-bank cache serves them at 1 (the default);
	// a fully conflict-free banked cache — the "improved memory
	// hierarchy" the conclusion asks for — would approach the port width.
	StridedWordsPerCycle int
}

// Hierarchy is the realistic three-level memory system.
type Hierarchy struct {
	cfg  *machine.Config
	opts Options
	l1   *Cache
	l2   *Cache // the two-bank interleaved vector cache
	l3   *Cache
	st   Stats
	// det accumulates the per-cause extra latency of the access in flight;
	// it is read back by the simulator through LastAccess. detDirty defers
	// the clear to the next access that needs it, so the common all-hit
	// path never pays for zeroing the array.
	det      metrics.Components
	detDirty bool
}

// NewHierarchy builds the hierarchy described by cfg with default options.
func NewHierarchy(cfg *machine.Config) *Hierarchy {
	return NewHierarchyOpts(cfg, Options{})
}

// NewHierarchyOpts builds the hierarchy with ablation options.
func NewHierarchyOpts(cfg *machine.Config, opts Options) *Hierarchy {
	if opts.StridedWordsPerCycle < 1 {
		opts.StridedWordsPerCycle = 1
	}
	return &Hierarchy{
		cfg:  cfg,
		opts: opts,
		l1:   NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.L1Line),
		l2:   NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.L2Line),
		l3:   NewCache(cfg.L3Bytes, cfg.L3Ways, cfg.L3Line),
	}
}

// Stats returns a snapshot of the event counters.
func (h *Hierarchy) Stats() Stats {
	s := h.st
	s.L1Hits, s.L1Misses = h.l1.Hits, h.l1.Misses
	s.L2Hits, s.L2Misses = h.l2.Hits, h.l2.Misses
	s.L3Hits, s.L3Misses = h.l3.Hits, h.l3.Misses
	return s
}

// Reset implements Model.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.st = Stats{}
	h.det.Reset()
	h.detDirty = false
}

// LastAccess implements Detailed.
func (h *Hierarchy) LastAccess() *metrics.Components { return &h.det }

// detReset prepares the components for a new access: the clear is skipped
// entirely unless a previous access left something behind.
func (h *Hierarchy) detReset() {
	if h.detDirty {
		h.det.Reset()
		h.detDirty = false
	}
}

// detAdd charges extra latency to a cause for the access in flight.
func (h *Hierarchy) detAdd(cause metrics.Cause, cycles int64) {
	h.det.Add(cause, cycles)
	h.detDirty = true
}

// l2Lookup is the single funnel for timed L2 lookups: it splits the
// hit/miss into the interleaved bank the line maps to. Probe and Fill
// bypass it (they do not touch the counters), so the per-bank counters sum
// exactly to the cache's own Hits/Misses.
func (h *Hierarchy) l2Lookup(addr int64, write bool) bool {
	bank := (addr / int64(h.l2.LineSize())) & (NumL2Banks - 1)
	hit := h.l2.Lookup(addr, write)
	if hit {
		h.st.L2BankHits[bank]++
	} else {
		h.st.L2BankMisses[bank]++
	}
	return hit
}

// fillL2 ensures the line containing addr is in the L2 (filling from L3 or
// memory as needed) and returns the latency contributed beyond the L2
// access itself: 0 on an L2 hit. A simple next-line prefetcher runs on
// every fill, so sequential streams pay the full memory latency only for
// the first line — without it the in-order, stall-on-miss machine would
// serialize hundreds of cycles per line on streaming code.
// The edge flag marks the partially covered boundary line of an unaligned
// stride-one store, whose fill is attributed to CauseEdgeLine instead of
// the miss level that served it.
func (h *Hierarchy) fillL2(addr int64, edge bool) int {
	// Tagged next-line prefetch: every L2 access (hit or miss) pulls the
	// following line in at no cost, so streams pay the memory latency
	// only on their first line.
	if !h.opts.NoPrefetch {
		defer h.prefetch(h.l2.LineBase(addr) + int64(h.l2.LineSize()))
	}
	if h.l2Lookup(addr, false) {
		return 0
	}
	lat := 0
	cause := metrics.CauseL2Miss
	if h.l3.Lookup(addr, false) {
		lat = h.cfg.LatL3
	} else {
		lat = h.cfg.LatMem
		cause = metrics.CauseL3Miss
		h.l3.Fill(addr) // write-back of the victim is hidden behind the fill
	}
	if edge {
		cause = metrics.CauseEdgeLine
	}
	h.detAdd(cause, int64(lat))
	h.installL2(addr)
	return lat
}

// prefetch installs a line into the L2 (and L3) if absent, without
// charging latency.
func (h *Hierarchy) prefetch(line int64) {
	if present, _ := h.l2.Probe(line); present {
		return
	}
	if p3, _ := h.l3.Probe(line); !p3 {
		h.l3.Fill(line)
	}
	h.installL2(line)
	h.st.Prefetches++
}

// installL2 fills a line into the L2, pushing a dirty victim down to the
// L3 (inclusion) without perturbing the hit/miss counters.
func (h *Hierarchy) installL2(addr int64) {
	if base, ok, dirty := h.l2.Fill(addr); ok && dirty {
		if present, _ := h.l3.Probe(base); !present {
			h.l3.Fill(base)
		}
		h.l3.MarkDirty(base)
	}
}

// ScalarAccess implements Model: L1 first, then L2/L3/memory, inclusive
// fills along the way.
func (h *Hierarchy) ScalarAccess(addr int64, size int, write bool) int {
	h.detReset()
	if h.l1.Lookup(addr, write) {
		return h.cfg.LatL1
	}
	// The miss pays the L2 access (beyond the scheduled L1 hit) plus
	// whatever fill the L2 itself needs; clamping in the simulator trims
	// the share the schedule's slack absorbed.
	h.detAdd(metrics.CauseL1Miss, int64(h.cfg.LatL2))
	lat := h.cfg.LatL2 + h.fillL2(addr, false)
	if base, ok, dirty := h.l1.Fill(addr); ok && dirty {
		// Write the victim back into the L2 (it is there by inclusion).
		h.l2.MarkDirty(base)
	}
	if write {
		h.l1.MarkDirty(addr) // write allocation
	}
	return lat
}

// VectorAccess implements Model. The compiler schedules every vector
// memory operation as a stride-one L2 hit; the run-time difference is the
// stall the simulator charges:
//
//   - stride one (8 bytes between words): the two banks deliver two whole
//     lines per access, B words per cycle;
//   - any other stride: one element per cycle;
//   - L2 misses add the L3/memory fill latency per missing line;
//   - dirty L1 lines covering the accessed words are flushed to the L2
//     and invalidated (exclusive bit + inclusion), costing one L1-flush
//     penalty each.
//
// A non-positive vl is clamped to 1: latency formulas divide (vl-1) by the
// port rate, and a negative numerator would silently *reduce* latency.
func (h *Hierarchy) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	h.detReset()
	lat := h.cfg.LatL2
	unit := stride == 8
	if unit {
		h.st.UnitVectorAccesses++
		lat += (vl - 1) / h.cfg.L2PortWords
	} else {
		h.st.StridedVectorAccesses++
		lat += (vl - 1) / h.opts.StridedWordsPerCycle
		// The slow path's extra over the scheduled full-rate transfer. A
		// stride that is a multiple of twice the line size maps every
		// element onto one bank — a true bank conflict rather than the
		// generic one-element-per-cycle strided port.
		if extra := int64((vl-1)/h.opts.StridedWordsPerCycle - (vl-1)/h.cfg.L2PortWords); extra > 0 {
			if stride%(2*int64(h.l2.LineSize())) == 0 {
				h.st.BankConflicts++
				h.detAdd(metrics.CauseBankConflict, extra)
			} else {
				h.detAdd(metrics.CauseStride, extra)
			}
		}
	}

	// Visit each distinct line the access touches.
	lastLine := int64(-1)
	for i := 0; i < vl; i++ {
		addr := base + int64(i)*stride
		line := h.l2.LineBase(addr)
		endLine := h.l2.LineBase(addr + 7)
		for l := line; l <= endLine; l += int64(h.l2.LineSize()) {
			if l == lastLine {
				continue
			}
			lastLine = l
			// Coherency probe: flush dirty L1 copies; a vector store also
			// invalidates clean copies (exclusive-bit policy).
			if present, dirty := h.l1.Probe(l); present {
				if dirty {
					h.l1.Invalidate(l)
					h.l2.MarkDirty(l)
					h.st.CoherencyFlushes++
					h.detAdd(metrics.CauseCoherency, int64(h.cfg.LatL1+1))
					lat += h.cfg.LatL1 + 1
				} else if write {
					h.l1.Invalidate(l)
				}
			}
			// Write-validate requires the store to cover the *whole* line:
			// the first and last lines of an unaligned span are only
			// partially written and must be fetched like any other miss.
			covered := l >= base && l+int64(h.l2.LineSize()) <= base+int64(vl)*8
			if write && unit && covered && !h.opts.NoWriteValidate {
				// Write-validate: a stride-one vector store covers whole
				// lines through the wide port, so a missing line is
				// installed without fetching it from below.
				if !h.l2Lookup(l, true) {
					if base, ok, dirty := h.l2.Fill(l); ok && dirty {
						if present, _ := h.l3.Probe(base); !present {
							h.l3.Fill(base)
						}
						h.l3.MarkDirty(base)
					}
					h.l2.MarkDirty(l)
				}
			} else {
				// A stride-one store reaching this branch was denied
				// write-validate only because the line is a partially
				// covered edge of the span.
				edge := write && unit && !h.opts.NoWriteValidate
				lat += h.fillL2(l, edge)
				if write {
					h.l2.MarkDirty(l)
				}
			}
		}
	}
	return lat
}

var _ Model = (*Hierarchy)(nil)
var _ Detailed = (*Hierarchy)(nil)

// Perfect is the paper's perfect-memory model (Figure 5a): every access
// hits in its cache with the corresponding latency, and vector accesses
// are served at the full port rate regardless of stride.
type Perfect struct {
	cfg *machine.Config
}

// NewPerfect builds a perfect-memory model for cfg.
func NewPerfect(cfg *machine.Config) *Perfect { return &Perfect{cfg: cfg} }

// ScalarAccess implements Model: always an L1 hit.
func (p *Perfect) ScalarAccess(addr int64, size int, write bool) int {
	return p.cfg.LatL1
}

// VectorAccess implements Model: always a full-rate L2 hit. A
// non-positive vl is clamped to 1 (see Hierarchy.VectorAccess).
func (p *Perfect) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	return p.cfg.LatL2 + (vl-1)/p.cfg.L2PortWords
}

// Reset implements Model.
func (p *Perfect) Reset() {}

var _ Model = (*Perfect)(nil)
