package mem

import "vsimdvliw/internal/machine"

// Model is the timing interface the simulator drives. Both the realistic
// Hierarchy and the Perfect model implement it. Returned values are the
// access's total service latency in cycles; the simulator stalls the
// machine for the difference between this and the statically scheduled
// latency.
type Model interface {
	// ScalarAccess services a scalar or µSIMD access of the given size
	// through the L1.
	ScalarAccess(addr int64, size int, write bool) int
	// VectorAccess services a vector access of vl 64-bit words whose
	// consecutive words are stride bytes apart, through the L2 vector
	// cache (bypassing the L1).
	VectorAccess(base, stride int64, vl int, write bool) int
	// Reset clears all state and statistics.
	Reset()
}

// Stats aggregates hierarchy event counters.
type Stats struct {
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	L3Hits, L3Misses int64
	// CoherencyFlushes counts dirty L1 lines written back (and
	// invalidated, per the exclusive-bit policy) because a vector access
	// touched them.
	CoherencyFlushes int64
	// StridedVectorAccesses counts vector accesses served at one element
	// per cycle because their stride was not one.
	StridedVectorAccesses int64
	UnitVectorAccesses    int64
	// Prefetches counts next-line prefetch fills issued by the L2.
	Prefetches int64
}

// Options selects memory-model variations for ablation studies (the
// paper's conclusion calls for improving the memory hierarchy; these
// knobs quantify its individual mechanisms).
type Options struct {
	// NoPrefetch disables the tagged next-line prefetcher, so every cold
	// line of a stream pays the full memory latency.
	NoPrefetch bool
	// NoWriteValidate makes stride-one vector stores fetch missing lines
	// (classic write-allocate) instead of installing them directly.
	NoWriteValidate bool
	// StridedWordsPerCycle is the element rate of non-unit-stride vector
	// accesses. The paper's two-bank cache serves them at 1 (the default);
	// a fully conflict-free banked cache — the "improved memory
	// hierarchy" the conclusion asks for — would approach the port width.
	StridedWordsPerCycle int
}

// Hierarchy is the realistic three-level memory system.
type Hierarchy struct {
	cfg  *machine.Config
	opts Options
	l1   *Cache
	l2   *Cache // the two-bank interleaved vector cache
	l3   *Cache
	st   Stats
}

// NewHierarchy builds the hierarchy described by cfg with default options.
func NewHierarchy(cfg *machine.Config) *Hierarchy {
	return NewHierarchyOpts(cfg, Options{})
}

// NewHierarchyOpts builds the hierarchy with ablation options.
func NewHierarchyOpts(cfg *machine.Config, opts Options) *Hierarchy {
	if opts.StridedWordsPerCycle < 1 {
		opts.StridedWordsPerCycle = 1
	}
	return &Hierarchy{
		cfg:  cfg,
		opts: opts,
		l1:   NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.L1Line),
		l2:   NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.L2Line),
		l3:   NewCache(cfg.L3Bytes, cfg.L3Ways, cfg.L3Line),
	}
}

// Stats returns a snapshot of the event counters.
func (h *Hierarchy) Stats() Stats {
	s := h.st
	s.L1Hits, s.L1Misses = h.l1.Hits, h.l1.Misses
	s.L2Hits, s.L2Misses = h.l2.Hits, h.l2.Misses
	s.L3Hits, s.L3Misses = h.l3.Hits, h.l3.Misses
	return s
}

// Reset implements Model.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.st = Stats{}
}

// fillL2 ensures the line containing addr is in the L2 (filling from L3 or
// memory as needed) and returns the latency contributed beyond the L2
// access itself: 0 on an L2 hit. A simple next-line prefetcher runs on
// every fill, so sequential streams pay the full memory latency only for
// the first line — without it the in-order, stall-on-miss machine would
// serialize hundreds of cycles per line on streaming code.
func (h *Hierarchy) fillL2(addr int64) int {
	// Tagged next-line prefetch: every L2 access (hit or miss) pulls the
	// following line in at no cost, so streams pay the memory latency
	// only on their first line.
	if !h.opts.NoPrefetch {
		defer h.prefetch(h.l2.LineBase(addr) + int64(h.l2.LineSize()))
	}
	if h.l2.Lookup(addr, false) {
		return 0
	}
	lat := 0
	if h.l3.Lookup(addr, false) {
		lat = h.cfg.LatL3
	} else {
		lat = h.cfg.LatMem
		h.l3.Fill(addr) // write-back of the victim is hidden behind the fill
	}
	h.installL2(addr)
	return lat
}

// prefetch installs a line into the L2 (and L3) if absent, without
// charging latency.
func (h *Hierarchy) prefetch(line int64) {
	if present, _ := h.l2.Probe(line); present {
		return
	}
	if p3, _ := h.l3.Probe(line); !p3 {
		h.l3.Fill(line)
	}
	h.installL2(line)
	h.st.Prefetches++
}

// installL2 fills a line into the L2, pushing a dirty victim down to the
// L3 (inclusion) without perturbing the hit/miss counters.
func (h *Hierarchy) installL2(addr int64) {
	if base, ok, dirty := h.l2.Fill(addr); ok && dirty {
		if present, _ := h.l3.Probe(base); !present {
			h.l3.Fill(base)
		}
		h.l3.MarkDirty(base)
	}
}

// ScalarAccess implements Model: L1 first, then L2/L3/memory, inclusive
// fills along the way.
func (h *Hierarchy) ScalarAccess(addr int64, size int, write bool) int {
	if h.l1.Lookup(addr, write) {
		return h.cfg.LatL1
	}
	lat := h.cfg.LatL2 + h.fillL2(addr)
	if base, ok, dirty := h.l1.Fill(addr); ok && dirty {
		// Write the victim back into the L2 (it is there by inclusion).
		h.l2.MarkDirty(base)
	}
	if write {
		h.l1.MarkDirty(addr) // write allocation
	}
	return lat
}

// VectorAccess implements Model. The compiler schedules every vector
// memory operation as a stride-one L2 hit; the run-time difference is the
// stall the simulator charges:
//
//   - stride one (8 bytes between words): the two banks deliver two whole
//     lines per access, B words per cycle;
//   - any other stride: one element per cycle;
//   - L2 misses add the L3/memory fill latency per missing line;
//   - dirty L1 lines covering the accessed words are flushed to the L2
//     and invalidated (exclusive bit + inclusion), costing one L1-flush
//     penalty each.
//
// A non-positive vl is clamped to 1: latency formulas divide (vl-1) by the
// port rate, and a negative numerator would silently *reduce* latency.
func (h *Hierarchy) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	lat := h.cfg.LatL2
	unit := stride == 8
	if unit {
		h.st.UnitVectorAccesses++
		lat += (vl - 1) / h.cfg.L2PortWords
	} else {
		h.st.StridedVectorAccesses++
		lat += (vl - 1) / h.opts.StridedWordsPerCycle
	}

	// Visit each distinct line the access touches.
	lastLine := int64(-1)
	for i := 0; i < vl; i++ {
		addr := base + int64(i)*stride
		line := h.l2.LineBase(addr)
		endLine := h.l2.LineBase(addr + 7)
		for l := line; l <= endLine; l += int64(h.l2.LineSize()) {
			if l == lastLine {
				continue
			}
			lastLine = l
			// Coherency probe: flush dirty L1 copies; a vector store also
			// invalidates clean copies (exclusive-bit policy).
			if present, dirty := h.l1.Probe(l); present {
				if dirty {
					h.l1.Invalidate(l)
					h.l2.MarkDirty(l)
					h.st.CoherencyFlushes++
					lat += h.cfg.LatL1 + 1
				} else if write {
					h.l1.Invalidate(l)
				}
			}
			// Write-validate requires the store to cover the *whole* line:
			// the first and last lines of an unaligned span are only
			// partially written and must be fetched like any other miss.
			covered := l >= base && l+int64(h.l2.LineSize()) <= base+int64(vl)*8
			if write && unit && covered && !h.opts.NoWriteValidate {
				// Write-validate: a stride-one vector store covers whole
				// lines through the wide port, so a missing line is
				// installed without fetching it from below.
				if !h.l2.Lookup(l, true) {
					if base, ok, dirty := h.l2.Fill(l); ok && dirty {
						if present, _ := h.l3.Probe(base); !present {
							h.l3.Fill(base)
						}
						h.l3.MarkDirty(base)
					}
					h.l2.MarkDirty(l)
				}
			} else {
				lat += h.fillL2(l)
				if write {
					h.l2.MarkDirty(l)
				}
			}
		}
	}
	return lat
}

var _ Model = (*Hierarchy)(nil)

// Perfect is the paper's perfect-memory model (Figure 5a): every access
// hits in its cache with the corresponding latency, and vector accesses
// are served at the full port rate regardless of stride.
type Perfect struct {
	cfg *machine.Config
}

// NewPerfect builds a perfect-memory model for cfg.
func NewPerfect(cfg *machine.Config) *Perfect { return &Perfect{cfg: cfg} }

// ScalarAccess implements Model: always an L1 hit.
func (p *Perfect) ScalarAccess(addr int64, size int, write bool) int {
	return p.cfg.LatL1
}

// VectorAccess implements Model: always a full-rate L2 hit. A
// non-positive vl is clamped to 1 (see Hierarchy.VectorAccess).
func (p *Perfect) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	return p.cfg.LatL2 + (vl-1)/p.cfg.L2PortWords
}

// Reset implements Model.
func (p *Perfect) Reset() {}

var _ Model = (*Perfect)(nil)
