// Package mem models the memory hierarchy of the Vector-µSIMD-VLIW
// architecture: a per-configuration L1 data cache for scalar and µSIMD
// accesses, the two-bank interleaved 256KB L2 vector cache with a wide
// (4x64-bit) port serving stride-one vector requests at full rate and any
// other stride at one element per cycle, a 1MB L3, and 500-cycle main
// memory. Vector accesses bypass the L1 and go directly to the L2; an
// exclusive-bit-plus-inclusion protocol keeps the two coherent.
//
// The package models timing only: functional data lives in the
// simulator's flat memory (internal/sim). Timing and function are
// decoupled exactly as in trace-driven simulators.
package mem

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement. It tracks tags only (timing model).
type Cache struct {
	lineSize int
	sets     int
	ways     int
	tags     []int64 // [set*ways + way]
	valid    []bool
	dirty    []bool
	stamp    []int64
	tick     int64

	Hits   int64
	Misses int64
}

// NewCache builds a cache of the given total size, associativity and line
// size (all powers of two).
func NewCache(bytes, ways, line int) *Cache {
	sets := bytes / (ways * line)
	if sets < 1 {
		sets = 1
	}
	n := sets * ways
	return &Cache{
		lineSize: line,
		sets:     sets,
		ways:     ways,
		tags:     make([]int64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		stamp:    make([]int64, n),
	}
}

// LineBase returns the base address of the line containing addr.
func (c *Cache) LineBase(addr int64) int64 {
	return addr &^ int64(c.lineSize-1)
}

// LineSize returns the cache's line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

func (c *Cache) index(addr int64) (set int, tag int64) {
	line := addr / int64(c.lineSize)
	return int(line % int64(c.sets)), line / int64(c.sets)
}

// Lookup probes the cache. On a hit it updates LRU state, marks the line
// dirty if write is set, and returns true; on a miss it returns false
// (the caller decides whether to Fill).
func (c *Cache) Lookup(addr int64, write bool) bool {
	set, tag := c.index(addr)
	c.tick++
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Probe reports presence and dirtiness without touching LRU or counters.
func (c *Cache) Probe(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			return true, c.dirty[i]
		}
	}
	return false, false
}

// Fill installs the line containing addr, evicting the LRU way. It
// returns the victim's base address and dirtiness (victimValid false if
// the way was empty). The new line is installed clean; call Lookup with
// write=true afterwards for a write allocation.
func (c *Cache) Fill(addr int64) (victimBase int64, victimValid, victimDirty bool) {
	set, tag := c.index(addr)
	c.tick++
	lru, lruStamp := -1, int64(1<<62)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if !c.valid[i] {
			lru = i
			lruStamp = -1
			break
		}
		if c.stamp[i] < lruStamp {
			lru, lruStamp = i, c.stamp[i]
		}
	}
	i := lru
	if c.valid[i] {
		victimValid = true
		victimDirty = c.dirty[i]
		victimBase = (c.tags[i]*int64(c.sets) + int64(set)) * int64(c.lineSize)
	}
	c.tags[i] = tag
	c.valid[i] = true
	c.dirty[i] = false
	c.stamp[i] = c.tick
	return victimBase, victimValid, victimDirty
}

// Invalidate removes the line containing addr if present, returning its
// previous presence and dirtiness.
func (c *Cache) Invalidate(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.valid[i] = false
			d := c.dirty[i]
			c.dirty[i] = false
			return true, d
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit of the line containing addr if present.
func (c *Cache) MarkDirty(addr int64) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.dirty[i] = true
			return
		}
	}
}

// Reset clears all cache state and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.stamp[i] = 0
	}
	c.tick = 0
	c.Hits = 0
	c.Misses = 0
}
