// Package mem models the memory hierarchy of the Vector-µSIMD-VLIW
// architecture: a per-configuration L1 data cache for scalar and µSIMD
// accesses, the two-bank interleaved 256KB L2 vector cache with a wide
// (4x64-bit) port serving stride-one vector requests at full rate and any
// other stride at one element per cycle, a 1MB L3, and 500-cycle main
// memory. Vector accesses bypass the L1 and go directly to the L2; an
// exclusive-bit-plus-inclusion protocol keeps the two coherent.
//
// The package models timing only: functional data lives in the
// simulator's flat memory (internal/sim). Timing and function are
// decoupled exactly as in trace-driven simulators.
//
// The hierarchy is the hottest object of the cycle loop, so Cache and
// Hierarchy are optimized (shift/mask indexing, an MRU way filter, direct
// line walks) while the original straightforward implementation is
// retained in reference.go as ReferenceHierarchy; differential tests and
// FuzzMemHierarchy prove the two bit-identical on every latency, counter
// and stall component.
package mem

import "sort"

// renormTick is the LRU-clock ceiling: once a cache's tick reaches it the
// stamps are renormalized (see renormStamps). It sits below the 1<<62
// victim-scan sentinel so stamps can never reach the sentinel, and far
// enough from MaxInt64 that the post-increment can never overflow.
const renormTick = int64(1) << 62

// renormStamps rewrites the LRU stamps of one set-associative tag store as
// their per-set recency ranks (1..ways, older = smaller; ties — only
// possible between never-touched stamps — keep way order, matching the
// first-lowest victim scan) and returns the new clock value, ways+1.
// Order is preserved exactly, so victim selection after a renormalization
// is identical to the unrenormalized run — the operation is observable
// only through the absence of stamp overflow in simulations long enough
// to exhaust a 62-bit clock (long-running vsimdd daemons).
//
// Both Cache and refCache renormalize at the same tick with this shared
// helper, keeping the optimized and reference hierarchies in lock step.
func renormStamps(stamp []int64, sets, ways int) int64 {
	order := make([]int, ways)
	for s := 0; s < sets; s++ {
		base := s * ways
		for w := range order {
			order[w] = w
		}
		set := stamp[base : base+ways]
		sort.SliceStable(order, func(i, j int) bool {
			return set[order[i]] < set[order[j]]
		})
		ranked := make([]int64, ways)
		for rank, w := range order {
			ranked[w] = int64(rank + 1)
		}
		copy(set, ranked)
	}
	return int64(ways) + 1
}

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement. It tracks tags only (timing model).
//
// Hot-path layout: all sizes are powers of two in every machine
// configuration, so NewCache precomputes the line and set shift/mask
// pair and index never divides. A one-entry MRU filter (the set, tag and
// way of the last hit) short-circuits the associative scan on the
// extremely common repeat-hit pattern while updating the LRU stamp, dirty
// bit and hit counter exactly as the full scan would. Addresses are
// assumed non-negative (the simulator bounds-checks every access against
// the flat data memory before consulting the timing model).
type Cache struct {
	lineSize int
	sets     int
	ways     int

	lineShift uint  // log2(lineSize) when pow2
	setShift  uint  // log2(sets) when pow2
	setMask   int64 // sets-1 when pow2
	pow2      bool  // lineSize and sets are both powers of two

	tags  []int64 // [set*ways + way]
	valid []bool
	dirty []bool
	stamp []int64
	tick  int64

	// MRU way filter: the location of the most recent hit or fill.
	// Invariant: when mruWay >= 0, way mruWay of set mruSet is valid and
	// holds mruTag. Fill and Invalidate maintain it; Lookup consults it.
	mruSet int
	mruWay int
	mruTag int64

	Hits   int64
	Misses int64
}

// log2 returns (log2(n), true) for positive powers of two.
func log2(n int) (uint, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	s := uint(0)
	for n > 1 {
		n >>= 1
		s++
	}
	return s, true
}

// NewCache builds a cache of the given total size, associativity and line
// size (all powers of two).
func NewCache(bytes, ways, line int) *Cache {
	sets := bytes / (ways * line)
	if sets < 1 {
		sets = 1
	}
	n := sets * ways
	c := &Cache{
		lineSize: line,
		sets:     sets,
		ways:     ways,
		tags:     make([]int64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		stamp:    make([]int64, n),
		mruWay:   -1,
	}
	ls, ok1 := log2(line)
	ss, ok2 := log2(sets)
	if ok1 && ok2 {
		c.lineShift, c.setShift, c.setMask, c.pow2 = ls, ss, int64(sets-1), true
	}
	return c
}

// LineBase returns the base address of the line containing addr.
func (c *Cache) LineBase(addr int64) int64 {
	return addr &^ int64(c.lineSize-1)
}

// LineSize returns the cache's line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

func (c *Cache) index(addr int64) (set int, tag int64) {
	if c.pow2 {
		line := addr >> c.lineShift
		return int(line & c.setMask), line >> c.setShift
	}
	line := addr / int64(c.lineSize)
	return int(line % int64(c.sets)), line / int64(c.sets)
}

// touch advances the LRU clock, renormalizing the stamps when it reaches
// the 62-bit ceiling.
func (c *Cache) touch() {
	c.tick++
	if c.tick >= renormTick {
		c.tick = renormStamps(c.stamp, c.sets, c.ways)
	}
}

// Lookup probes the cache. On a hit it updates LRU state, marks the line
// dirty if write is set, and returns true; on a miss it returns false
// (the caller decides whether to Fill).
func (c *Cache) Lookup(addr int64, write bool) bool {
	set, tag := c.index(addr)
	c.touch()
	if c.mruWay >= 0 && c.mruSet == set && c.mruTag == tag {
		i := set*c.ways + c.mruWay
		c.stamp[i] = c.tick
		if write {
			c.dirty[i] = true
		}
		c.Hits++
		return true
	}
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	valid := c.valid[base : base+c.ways]
	for w := range tags {
		if valid[w] && tags[w] == tag {
			i := base + w
			c.stamp[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.mruSet, c.mruWay, c.mruTag = set, w, tag
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Probe reports presence and dirtiness without touching LRU or counters.
func (c *Cache) Probe(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	valid := c.valid[base : base+c.ways]
	for w := range tags {
		if valid[w] && tags[w] == tag {
			return true, c.dirty[base+w]
		}
	}
	return false, false
}

// Fill installs the line containing addr, evicting the LRU way. It
// returns the victim's base address and dirtiness (victimValid false if
// the way was empty). The new line is installed clean; call Lookup with
// write=true afterwards for a write allocation.
func (c *Cache) Fill(addr int64) (victimBase int64, victimValid, victimDirty bool) {
	set, tag := c.index(addr)
	c.touch()
	lru, lruStamp := -1, int64(1<<62)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if !c.valid[i] {
			lru = i
			lruStamp = -1
			break
		}
		if c.stamp[i] < lruStamp {
			lru, lruStamp = i, c.stamp[i]
		}
	}
	i := lru
	if c.valid[i] {
		victimValid = true
		victimDirty = c.dirty[i]
		victimBase = (c.tags[i]*int64(c.sets) + int64(set)) * int64(c.lineSize)
	}
	c.tags[i] = tag
	c.valid[i] = true
	c.dirty[i] = false
	c.stamp[i] = c.tick
	// The fresh line is the most recently used entry of the cache.
	c.mruSet, c.mruWay, c.mruTag = set, i-set*c.ways, tag
	return victimBase, victimValid, victimDirty
}

// Invalidate removes the line containing addr if present, returning its
// previous presence and dirtiness.
func (c *Cache) Invalidate(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	if c.mruWay >= 0 && c.mruSet == set && c.mruTag == tag {
		c.mruWay = -1
	}
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.valid[i] = false
			d := c.dirty[i]
			c.dirty[i] = false
			return true, d
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit of the line containing addr if present.
func (c *Cache) MarkDirty(addr int64) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == tag {
			c.dirty[i] = true
			return
		}
	}
}

// Reset clears all cache state and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.stamp[i] = 0
	}
	c.tick = 0
	c.mruWay = -1
	c.Hits = 0
	c.Misses = 0
}
