// Package mem models the memory hierarchy of the Vector-µSIMD-VLIW
// architecture: a per-configuration L1 data cache for scalar and µSIMD
// accesses, the two-bank interleaved 256KB L2 vector cache with a wide
// (4x64-bit) port serving stride-one vector requests at full rate and any
// other stride at one element per cycle, a 1MB L3, and 500-cycle main
// memory. Vector accesses bypass the L1 and go directly to the L2; an
// exclusive-bit-plus-inclusion protocol keeps the two coherent.
//
// The package models timing only: functional data lives in the
// simulator's flat memory (internal/sim). Timing and function are
// decoupled exactly as in trace-driven simulators.
//
// The hierarchy is the hottest object of the cycle loop, so Cache and
// Hierarchy are optimized (shift/mask indexing, an MRU way filter, direct
// line walks) while the original straightforward implementation is
// retained in reference.go as ReferenceHierarchy; differential tests and
// FuzzMemHierarchy prove the two bit-identical on every latency, counter
// and stall component.
package mem

import "sort"

// renormTick is the LRU-clock ceiling: once a cache's tick reaches it the
// stamps are renormalized (see renormStamps). It sits below the 1<<62
// victim-scan sentinel so stamps can never reach the sentinel, and far
// enough from MaxInt64 that the post-increment can never overflow.
const renormTick = int64(1) << 62

// renormStamps rewrites the LRU stamps of one set-associative tag store as
// their per-set recency ranks (1..ways, older = smaller; ties — only
// possible between never-touched stamps — keep way order, matching the
// first-lowest victim scan) and returns the new clock value, ways+1.
// Order is preserved exactly, so victim selection after a renormalization
// is identical to the unrenormalized run — the operation is observable
// only through the absence of stamp overflow in simulations long enough
// to exhaust a 62-bit clock (long-running vsimdd daemons).
//
// Both Cache and refCache renormalize at the same tick with this shared
// helper, keeping the optimized and reference hierarchies in lock step.
func renormStamps(stamp []int64, sets, ways int) int64 {
	order := make([]int, ways)
	for s := 0; s < sets; s++ {
		base := s * ways
		for w := range order {
			order[w] = w
		}
		set := stamp[base : base+ways]
		sort.SliceStable(order, func(i, j int) bool {
			return set[order[i]] < set[order[j]]
		})
		ranked := make([]int64, ways)
		for rank, w := range order {
			ranked[w] = int64(rank + 1)
		}
		copy(set, ranked)
	}
	return int64(ways) + 1
}

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement. It tracks tags only (timing model).
//
// Hot-path layout: all sizes are powers of two in every machine
// configuration, so NewCache precomputes the line and set shift/mask
// pair and index never divides. A one-entry MRU filter (the set, tag and
// way of the last hit) short-circuits the associative scan on the
// extremely common repeat-hit pattern while updating the LRU stamp, dirty
// bit and hit counter exactly as the full scan would. Addresses are
// assumed non-negative (the simulator bounds-checks every access against
// the flat data memory before consulting the timing model).
type Cache struct {
	lineSize int
	sets     int
	ways     int

	lineShift uint  // log2(lineSize) when pow2
	setShift  uint  // log2(sets) when pow2
	setMask   int64 // sets-1 when pow2
	pow2      bool  // lineSize and sets are both powers of two

	// meta packs each line's tag, LRU stamp and state into one 24-byte
	// record so a lookup (including the stamp update every hit performs)
	// touches one hardware cache line per way instead of two parallel
	// arrays. renormStamps is still shared with the reference cache: the
	// once-per-2^62-ticks renormalization copies the stamps out, ranks
	// them, and copies them back (see touch).
	meta []lineMeta // [set*ways + way]
	tick int64

	// MRU way filter: the location of the most recent hit or fill.
	// Invariant: when mruWay >= 0, way mruWay of set mruSet is valid and
	// holds mruTag. Fill and Invalidate maintain it; Lookup consults it.
	mruSet int
	mruWay int
	mruTag int64

	// Probe filter: a small direct-mapped memo of recent Probe outcomes
	// (indexed by set), short-circuiting the associative scan on repeat
	// probes — coherency probes and prefetch presence checks revisit the
	// same short cycle of lines heavily. It is self-verifying, so it
	// cannot change any Probe result: a positive entry re-checks
	// meta[] at its recorded way (and reads the dirty bit fresh);
	// a negative entry is trusted only while the fill counter is
	// unchanged — absence can only end with a Fill. The zero value is
	// harmless: it reads as a positive claim for tag 0 at way 0 of set 0,
	// which the verification step either confirms or falls through.
	// The table lives at the end of the struct so its 6KB does not push
	// the hot scalar fields below onto distant cache lines.
	fills int64 // total Fill calls, versioning negative probe entries

	// Line-range summary: [loLine, hiLine] over-approximates the set of
	// line numbers ever filled since the last Reset (it never shrinks on
	// eviction or invalidation), so a probe outside it is definitively
	// absent. Vector coherency probes against the L1 hit this constantly:
	// vector streams rarely share lines with the scalar working set.
	loLine int64
	hiLine int64

	Hits   int64
	Misses int64

	pf [pfEntries]probeEnt
}

// pfEntries sizes the Probe filter (power of two). A motion-estimation
// search window walks a few hundred distinct lines before repeating, so
// the table must hold that many sets to avoid thrashing.
const pfEntries = 256

// probeEnt is one Probe-filter slot: the memoized outcome of probing
// (set, tag). way >= 0 claims presence at that way (re-verified on use);
// way == -1 records absence, valid while fills matches the cache's fill
// counter.
type probeEnt struct {
	tag   int64
	fills int64
	set   int32
	way   int32
}

// lineMeta is one cache line's tag store entry.
type lineMeta struct {
	tag   int64
	stamp int64
	valid bool
	dirty bool
}

// log2 returns (log2(n), true) for positive powers of two.
func log2(n int) (uint, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	s := uint(0)
	for n > 1 {
		n >>= 1
		s++
	}
	return s, true
}

// NewCache builds a cache of the given total size, associativity and line
// size (all powers of two).
func NewCache(bytes, ways, line int) *Cache {
	sets := bytes / (ways * line)
	if sets < 1 {
		sets = 1
	}
	n := sets * ways
	c := &Cache{
		lineSize: line,
		sets:     sets,
		ways:     ways,
		meta:     make([]lineMeta, n),
		mruWay:   -1,
		loLine:   int64(1) << 62,
		hiLine:   -1,
	}
	ls, ok1 := log2(line)
	ss, ok2 := log2(sets)
	if ok1 && ok2 {
		c.lineShift, c.setShift, c.setMask, c.pow2 = ls, ss, int64(sets-1), true
	}
	return c
}

// LineBase returns the base address of the line containing addr.
func (c *Cache) LineBase(addr int64) int64 {
	return addr &^ int64(c.lineSize-1)
}

// LineSize returns the cache's line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Fills returns the total number of Fill calls since the last Reset. A
// line can only become absent through an eviction inside a Fill, so an
// unchanged Fills count proves every line present at the earlier reading
// is still present — the versioning contract behind the negative probe
// entries here and the prefetch memos of the hierarchies.
func (c *Cache) Fills() int64 { return c.fills }

// lineNum returns addr's line number (address divided by the line size).
func (c *Cache) lineNum(addr int64) int64 {
	if c.pow2 {
		return addr >> c.lineShift
	}
	return addr / int64(c.lineSize)
}

func (c *Cache) index(addr int64) (set int, tag int64) {
	if c.pow2 {
		line := addr >> c.lineShift
		return int(line & c.setMask), line >> c.setShift
	}
	line := addr / int64(c.lineSize)
	return int(line % int64(c.sets)), line / int64(c.sets)
}

// touch advances the LRU clock, renormalizing the stamps when it reaches
// the 62-bit ceiling. The renormalization copies the stamps out through
// the shared renormStamps helper and back — it runs once per 2^62 ticks,
// so the copies cost nothing and the recency order stays in lock step
// with the reference cache's.
func (c *Cache) touch() {
	c.tick++
	if c.tick >= renormTick {
		stamps := make([]int64, len(c.meta))
		for i := range c.meta {
			stamps[i] = c.meta[i].stamp
		}
		c.tick = renormStamps(stamps, c.sets, c.ways)
		for i := range c.meta {
			c.meta[i].stamp = stamps[i]
		}
	}
}

// Lookup probes the cache. On a hit it updates LRU state, marks the line
// dirty if write is set, and returns true; on a miss it returns false
// (the caller decides whether to Fill).
func (c *Cache) Lookup(addr int64, write bool) bool {
	set, tag := c.index(addr)
	c.touch()
	if c.mruWay >= 0 && c.mruSet == set && c.mruTag == tag {
		mt := &c.meta[set*c.ways+c.mruWay]
		mt.stamp = c.tick
		if write {
			mt.dirty = true
		}
		c.Hits++
		return true
	}
	// Way prediction: the Probe filter doubles as a set-indexed way
	// predictor, catching the multi-line cycles (window walks) that the
	// single-entry MRU filter cannot. A predicted way is verified against
	// the tag store before use, so a stale entry only costs the scan.
	e := &c.pf[uint(set)&(pfEntries-1)]
	if e.set == int32(set) && e.tag == tag && e.way >= 0 {
		if mt := &c.meta[set*c.ways+int(e.way)]; mt.valid && mt.tag == tag {
			mt.stamp = c.tick
			if write {
				mt.dirty = true
			}
			c.mruSet, c.mruWay, c.mruTag = set, int(e.way), tag
			c.Hits++
			return true
		}
	}
	base := set * c.ways
	ms := c.meta[base : base+c.ways]
	for w := range ms {
		if ms[w].valid && ms[w].tag == tag {
			ms[w].stamp = c.tick
			if write {
				ms[w].dirty = true
			}
			c.mruSet, c.mruWay, c.mruTag = set, w, tag
			*e = probeEnt{tag: tag, set: int32(set), way: int32(w)}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Probe reports presence and dirtiness without touching LRU or counters.
func (c *Cache) Probe(addr int64) (present, dirty bool) {
	if line := c.lineNum(addr); line < c.loLine || line > c.hiLine {
		return false, false
	}
	set, tag := c.index(addr)
	e := &c.pf[uint(set)&(pfEntries-1)]
	if e.set == int32(set) && e.tag == tag {
		if e.way >= 0 {
			if mt := &c.meta[set*c.ways+int(e.way)]; mt.valid && mt.tag == tag {
				return true, mt.dirty
			}
		} else if c.fills == e.fills {
			return false, false
		}
	}
	base := set * c.ways
	ms := c.meta[base : base+c.ways]
	for w := range ms {
		if ms[w].valid && ms[w].tag == tag {
			*e = probeEnt{tag: tag, set: int32(set), way: int32(w)}
			return true, ms[w].dirty
		}
	}
	*e = probeEnt{tag: tag, fills: c.fills, set: int32(set), way: -1}
	return false, false
}

// Fill installs the line containing addr, evicting the LRU way. It
// returns the victim's base address and dirtiness (victimValid false if
// the way was empty). The new line is installed clean; call Lookup with
// write=true afterwards for a write allocation.
func (c *Cache) Fill(addr int64) (victimBase int64, victimValid, victimDirty bool) {
	set, tag := c.index(addr)
	c.touch()
	c.fills++
	if line := c.lineNum(addr); line < c.loLine || line > c.hiLine {
		if line < c.loLine {
			c.loLine = line
		}
		if line > c.hiLine {
			c.hiLine = line
		}
	}
	lru, lruStamp := -1, int64(1<<62)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if !c.meta[i].valid {
			lru = i
			lruStamp = -1
			break
		}
		if c.meta[i].stamp < lruStamp {
			lru, lruStamp = i, c.meta[i].stamp
		}
	}
	i := lru
	if mt := &c.meta[i]; mt.valid {
		victimValid = true
		victimDirty = mt.dirty
		victimBase = (mt.tag*int64(c.sets) + int64(set)) * int64(c.lineSize)
	}
	c.meta[i] = lineMeta{tag: tag, stamp: c.tick, valid: true}
	// The fresh line is the most recently used entry of the cache.
	c.mruSet, c.mruWay, c.mruTag = set, i-set*c.ways, tag
	return victimBase, victimValid, victimDirty
}

// Invalidate removes the line containing addr if present, returning its
// previous presence and dirtiness.
func (c *Cache) Invalidate(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	if c.mruWay >= 0 && c.mruSet == set && c.mruTag == tag {
		c.mruWay = -1
	}
	for w := 0; w < c.ways; w++ {
		if mt := &c.meta[set*c.ways+w]; mt.valid && mt.tag == tag {
			d := mt.dirty
			// The stamp survives invalidation, as it does in the reference
			// cache's separate stamp array (invalid ways win victim
			// selection outright, so it is unobservable until then).
			*mt = lineMeta{stamp: mt.stamp}
			return true, d
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit of the line containing addr if present.
func (c *Cache) MarkDirty(addr int64) {
	set, tag := c.index(addr)
	for w := 0; w < c.ways; w++ {
		if mt := &c.meta[set*c.ways+w]; mt.valid && mt.tag == tag {
			mt.dirty = true
			return
		}
	}
}

// Reset clears all cache state and counters.
func (c *Cache) Reset() {
	for i := range c.meta {
		c.meta[i] = lineMeta{}
	}
	c.tick = 0
	c.mruWay = -1
	c.pf = [pfEntries]probeEnt{}
	c.fills = 0
	c.loLine = int64(1) << 62
	c.hiLine = -1
	c.Hits = 0
	c.Misses = 0
}
