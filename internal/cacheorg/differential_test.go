package cacheorg

import (
	"fmt"
	"reflect"
	"testing"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/metrics"
)

// This file carries the proof obligations of the pluggable organizations:
//
//   - per organization, the optimized stride-class walks must be
//     bit-identical to the reference per-element walk on every latency,
//     counter and stall component (the differential-oracle pattern of
//     internal/mem, applied per organization);
//   - the interleaved organization — and the banked one at N = 2 — must
//     be bit-identical to the pre-existing mem.Hierarchy, proving the
//     extraction changed nothing;
//   - whole generated programs (internal/progen) must simulate
//     identically under the fast and reference walks.

// xorshift64 is the deterministic stream generator shared by the property
// tests and the fuzzer (same construction as internal/mem's).
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	if v == 0 {
		v = 0x9e3779b97f4a7c15
	}
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// diffStrides covers every stride class of the optimized walks plus the
// conflict strides of every bank count: 128 (2 banks x 64B lines), 256
// (4 banks) and 512 (8 banks) serialize progressively larger banked
// caches, and negative strides take the reference walk in both modes.
var diffStrides = []int64{0, 1, 3, 7, 8, 16, 24, 56, 63, 64, 65, 70, 96, 128, 256, 512, 1024, -8, -64, -65}

// orgSpec names one organization constructor so tests can build fresh,
// identical instances for each side of a differential pair.
type orgSpec struct {
	name string
	mk   func(cfg *machine.Config) Org
}

func orgSpecs() []orgSpec {
	return []orgSpec{
		{"interleaved", func(cfg *machine.Config) Org { return NewInterleaved(cfg) }},
		{"bicameral", func(cfg *machine.Config) Org { return NewBicameral(cfg) }},
		{"banked2", func(cfg *machine.Config) Org { return NewBanked(cfg, 2) }},
		{"banked4", func(cfg *machine.Config) Org { return NewBanked(cfg, 4) }},
		{"banked8", func(cfg *machine.Config) Org { return NewBanked(cfg, 8) }},
	}
}

// side is one hierarchy of a differential pair, behind the common subset
// both concrete types share.
type side interface {
	ScalarAccess(addr int64, size int, write bool) int
	VectorAccess(base, stride int64, vl int, write bool) int
	LastAccess() *metrics.Components
	Stats() mem.Stats
}

// diffPair drives two hierarchies with the same pseudo-random access
// stream, failing on the first divergence in latency, stall attribution
// or statistics.
type diffPair struct {
	cfg  *machine.Config
	fast side
	ref  side
	rng  xorshift64
}

func (p *diffPair) step(t *testing.T, i int) {
	t.Helper()
	v := p.rng.next()
	write := v&1 != 0
	var desc string
	var got, want int
	if v&2 != 0 || p.cfg.L2PortWords < 1 {
		addr := int64((v >> 8) % (1<<21 - 8))
		size := 1 << ((v >> 4) & 3)
		desc = fmt.Sprintf("scalar addr=%#x size=%d write=%v", addr, size, write)
		got = p.fast.ScalarAccess(addr, size, write)
		want = p.ref.ScalarAccess(addr, size, write)
	} else {
		stride := diffStrides[(v>>16)%uint64(len(diffStrides))]
		vl := int((v>>32)%16) + 1
		base := int64((v >> 8) & 0xffff)
		if stride < 0 {
			base += -stride*int64(vl) + 8
		}
		desc = fmt.Sprintf("vector base=%#x stride=%d vl=%d write=%v", base, stride, vl, write)
		got = p.fast.VectorAccess(base, stride, vl, write)
		want = p.ref.VectorAccess(base, stride, vl, write)
	}
	if got != want {
		t.Fatalf("access %d (%s): latency %d, reference %d", i, desc, got, want)
	}
	if g, w := *p.fast.LastAccess(), *p.ref.LastAccess(); g != w {
		t.Fatalf("access %d (%s): stall components %v, reference %v", i, desc, g, w)
	}
	if g, w := p.fast.Stats(), p.ref.Stats(); g != w {
		t.Fatalf("access %d (%s): stats %+v, reference %+v", i, desc, g, w)
	}
}

func runDifferential(t *testing.T, p *diffPair, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p.step(t, i)
	}
}

// orgSnapshotsEqual compares the organization-specific counters of the
// two sides (slices force reflect.DeepEqual; mem.Stats stays comparable).
func orgSnapshotsEqual(t *testing.T, fast, ref *Hierarchy) {
	t.Helper()
	if g, w := fast.OrgStats(), ref.OrgStats(); !reflect.DeepEqual(g, w) {
		t.Fatalf("organization stats %+v, reference %+v", g, w)
	}
}

// TestDifferentialWalks pins, for every organization and configuration,
// the optimized stride-class walks to the reference per-element walk.
func TestDifferentialWalks(t *testing.T) {
	cfgs := []*machine.Config{&machine.USIMD2, &machine.Vector2x2, &machine.Vector2x4}
	for _, cfg := range cfgs {
		for oi, spec := range orgSpecs() {
			t.Run(fmt.Sprintf("%s/%s", cfg.Name, spec.name), func(t *testing.T) {
				fast := New(cfg, spec.mk(cfg))
				ref := NewReference(cfg, spec.mk(cfg))
				p := &diffPair{cfg: cfg, fast: fast, ref: ref,
					rng: xorshift64(0x9e3779b97f4a7c15 + uint64(oi))}
				runDifferential(t, p, 10000)
				orgSnapshotsEqual(t, fast, ref)
			})
		}
	}
}

// TestDifferentialAgainstMemHierarchy proves the extraction lossless: the
// interleaved organization — and the parameterized banked cache at the
// paper's two banks — must match the pre-existing optimized mem.Hierarchy
// access for access on latency, stall components and (folded) statistics.
func TestDifferentialAgainstMemHierarchy(t *testing.T) {
	cfgs := []*machine.Config{&machine.USIMD2, &machine.Vector2x2, &machine.Vector2x4}
	twoBank := []orgSpec{orgSpecs()[0], orgSpecs()[2]} // interleaved, banked2
	for _, cfg := range cfgs {
		for oi, spec := range twoBank {
			t.Run(fmt.Sprintf("%s/%s", cfg.Name, spec.name), func(t *testing.T) {
				p := &diffPair{cfg: cfg,
					fast: New(cfg, spec.mk(cfg)),
					ref:  mem.NewHierarchy(cfg),
					rng:  xorshift64(0x51ed270b + uint64(oi))}
				runDifferential(t, p, 10000)
			})
		}
	}
}

// FuzzCacheOrg fuzzes both equivalences over random seeds, stream
// lengths, configurations and organizations. make ci includes a smoke
// run (fuzz-cacheorg).
func FuzzCacheOrg(f *testing.F) {
	f.Add(uint64(1), uint16(500), uint8(0))
	f.Add(uint64(0x9e3779b97f4a7c15), uint16(2000), uint8(7))
	f.Add(uint64(42), uint16(100), uint8(30))
	cfgs := []*machine.Config{&machine.USIMD2, &machine.Vector2x2, &machine.Vector2x4}
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, sel uint8) {
		cfg := cfgs[int(sel)%len(cfgs)]
		specs := orgSpecs()
		spec := specs[int(sel>>2)%len(specs)]
		steps := int(n%2048) + 32
		fast := New(cfg, spec.mk(cfg))
		ref := NewReference(cfg, spec.mk(cfg))
		p := &diffPair{cfg: cfg, fast: fast, ref: ref, rng: xorshift64(seed)}
		runDifferential(t, p, steps)
		orgSnapshotsEqual(t, fast, ref)
		if spec.name == "interleaved" || spec.name == "banked2" {
			q := &diffPair{cfg: cfg,
				fast: New(cfg, spec.mk(cfg)),
				ref:  mem.NewHierarchy(cfg),
				rng:  xorshift64(seed)}
			runDifferential(t, q, steps)
		}
	})
}

// TestBicameralMigration exercises the cross-partition policy directly: a
// line installed by a scalar access and then touched by a vector access
// migrates to the vector partition, pays the migration penalty once, and
// is attributed to CauseMigration.
func TestBicameralMigration(t *testing.T) {
	cfg := &machine.Vector2x2
	h := New(cfg, NewBicameral(cfg))
	const addr = 0x4000
	// A scalar read installs the line in the scalar partition via the L1
	// fill path (a write would leave a dirty L1 copy and add a coherency
	// flush to the vector access below).
	h.ScalarAccess(addr, 8, false)
	cold := h.VectorAccess(0x80000, 8, 8, false)
	warmOther := h.VectorAccess(0x80000, 8, 8, false)
	_ = cold
	migrated := h.VectorAccess(addr, 8, 8, false)
	co := h.OrgStats()
	if co.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", co.Migrations)
	}
	if comp := h.LastAccess(); comp[metrics.CauseMigration] != int64(cfg.LatL2) {
		t.Errorf("migration component = %d, want %d", comp[metrics.CauseMigration], cfg.LatL2)
	}
	if migrated != warmOther+cfg.LatL2 {
		t.Errorf("migrated access latency = %d, want warm latency %d + migration penalty %d",
			migrated, warmOther, cfg.LatL2)
	}
	// The line is home now: touching it again is a plain vector hit.
	again := h.VectorAccess(addr, 8, 8, false)
	if again != warmOther {
		t.Errorf("post-migration access latency = %d, want %d", again, warmOther)
	}
	if co := h.OrgStats(); co.Migrations != 1 {
		t.Errorf("second access migrated again: migrations = %d", co.Migrations)
	}
}

// TestBankedStridedRates checks the banked arbitration arithmetic: more
// banks serve non-unit strides faster, and the conflict stride of an
// N-bank cache is N x lineSize.
func TestBankedStridedRates(t *testing.T) {
	cfg := &machine.Vector2x2 // 64B lines, 4-word port
	cases := []struct {
		banks    int
		stride   int64
		rate     int
		conflict bool
	}{
		{2, 16, 1, false},
		{2, 128, 1, true},
		{4, 16, 2, false},
		{4, 128, 2, false},
		{4, 256, 1, true},
		{8, 16, 4, false},
		{8, 256, 4, false},
		{8, 512, 1, true},
	}
	for _, c := range cases {
		org := NewBanked(cfg, c.banks)
		rate, conflict := org.StridedRate(c.stride)
		if rate != c.rate || conflict != c.conflict {
			t.Errorf("banked%d stride %d: rate=%d conflict=%v, want rate=%d conflict=%v",
				c.banks, c.stride, rate, conflict, c.rate, c.conflict)
		}
	}
	// cfg.L2Banks overrides the constructor's default count.
	override := *cfg
	override.L2Banks = 8
	if org := NewBanked(&override, 4); org.Name() != "banked8" {
		t.Errorf("L2Banks override ignored: %s", org.Name())
	}
}
