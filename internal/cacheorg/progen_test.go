package cacheorg_test

// External test package: it drives whole simulations through internal/sim
// (which imports cacheorg, so the in-package tests cannot).

import (
	"fmt"
	"reflect"
	"testing"

	"vsimdvliw/internal/cacheorg"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/progen"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/sim"
)

func progOrgSpecs() map[string]func(cfg *machine.Config) cacheorg.Org {
	return map[string]func(cfg *machine.Config) cacheorg.Org{
		"interleaved": func(cfg *machine.Config) cacheorg.Org { return cacheorg.NewInterleaved(cfg) },
		"bicameral":   func(cfg *machine.Config) cacheorg.Org { return cacheorg.NewBicameral(cfg) },
		"banked2":     func(cfg *machine.Config) cacheorg.Org { return cacheorg.NewBanked(cfg, 2) },
		"banked4":     func(cfg *machine.Config) cacheorg.Org { return cacheorg.NewBanked(cfg, 4) },
		"banked8":     func(cfg *machine.Config) cacheorg.Org { return cacheorg.NewBanked(cfg, 8) },
	}
}

// TestDifferentialPrograms simulates generated programs (internal/progen)
// end to end under the fast and reference walks of every organization and
// requires identical complete results — cycles, stall attribution,
// statistics and organization counters — plus the exact-sum stall
// invariant.
func TestDifferentialPrograms(t *testing.T) {
	cfgs := []*machine.Config{&machine.Vector2x2, &machine.Vector2x4}
	for seed := uint64(1); seed <= 12; seed++ {
		p, err := progen.Generate(seed*7919, 60)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cfgs[int(seed)%len(cfgs)]
		fs, err := sched.Schedule(p.Func, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Predecode(fs); err != nil {
			t.Fatal(err)
		}
		for name, mk := range progOrgSpecs() {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				fast, err := sim.New(fs, cacheorg.New(cfg, mk(cfg))).Run()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := sim.New(fs, cacheorg.NewReference(cfg, mk(cfg))).Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast, ref) {
					t.Errorf("fast walk diverges from reference:\n  fast: %+v\n  ref:  %+v", fast, ref)
				}
				if got := fast.Stalls.Total(); got != fast.StallCycles {
					t.Errorf("stall breakdown sums to %d, want %d", got, fast.StallCycles)
				}
			})
		}
	}
}
