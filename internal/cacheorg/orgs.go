package cacheorg

import (
	"fmt"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/metrics"
)

// geom is the shared line/bank index arithmetic: bank(addr) is the line
// number modulo the bank count, matching mem.Hierarchy's interleaving
// (consecutive lines on alternating banks). Line sizes are powers of two
// in every paper configuration, so the index is a shift; the division
// fallback keeps odd geometries correct.
type geom struct {
	line  int
	shift uint
	pow2  bool
}

func newGeom(line int) geom {
	g := geom{line: line}
	if line > 0 && line&(line-1) == 0 {
		for n := line; n > 1; n >>= 1 {
			g.shift++
		}
		g.pow2 = true
	}
	return g
}

func (g geom) lineNum(addr int64) int64 {
	if g.pow2 {
		return addr >> g.shift
	}
	return addr / int64(g.line)
}

func (g geom) lineBase(addr int64) int64 {
	if g.pow2 {
		return addr &^ int64(g.line-1)
	}
	return g.lineNum(addr) * int64(g.line)
}

// Interleaved is the paper's organization: one L2 tag store whose
// consecutive lines map onto two interleaved banks, a non-unit stride
// served at one word per cycle, and a bank conflict when the stride maps
// every element onto one bank (a multiple of twice the line size). The
// Hierarchy driving it is bit-identical to mem.Hierarchy with default
// mem.Options.
type Interleaved struct {
	name      string
	l2        *mem.Cache
	g         geom
	banks     int
	portWords int
	// stridedRate is the non-unit-stride service rate in words per cycle
	// (1 for the paper's two banks; Banked widens it).
	stridedRate int
	hits        []int64
	misses      []int64
}

// NewInterleaved builds the paper's two-bank interleaved L2 for cfg.
func NewInterleaved(cfg *machine.Config) *Interleaved {
	return newBankedOrg("interleaved", cfg, mem.NumL2Banks, 1)
}

func newBankedOrg(name string, cfg *machine.Config, banks, rate int) *Interleaved {
	if rate < 1 {
		rate = 1
	}
	return &Interleaved{
		name:        name,
		l2:          mem.NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.L2Line),
		g:           newGeom(cfg.L2Line),
		banks:       banks,
		portWords:   cfg.L2PortWords,
		stridedRate: rate,
		hits:        make([]int64, banks),
		misses:      make([]int64, banks),
	}
}

// NewBanked builds a parameterized N-bank L2. banks is the default bank
// count; a positive cfg.L2Banks overrides it. With N banks, a non-unit
// stride that does not conflict is served at N/2 words per cycle (capped
// at the port width — the paper's N = 2 gives the one-word-per-cycle
// strided port), and a stride that is a multiple of N times the line size
// maps every element onto one bank and serializes. NewBanked with two
// banks is timing-identical to NewInterleaved.
func NewBanked(cfg *machine.Config, banks int) *Interleaved {
	if cfg.L2Banks > 0 {
		banks = cfg.L2Banks
	}
	rate := banks / 2
	if rate > cfg.L2PortWords {
		rate = cfg.L2PortWords
	}
	return newBankedOrg(fmt.Sprintf("banked%d", banks), cfg, banks, rate)
}

// Name implements Org.
func (o *Interleaved) Name() string { return o.name }

// LineSize implements Org.
func (o *Interleaved) LineSize() int { return o.g.line }

// LineBase implements Org.
func (o *Interleaved) LineBase(addr int64) int64 { return o.g.lineBase(addr) }

// PortWords implements Org.
func (o *Interleaved) PortWords() int { return o.portWords }

// StridedRate implements Org: a stride that is a multiple of
// banks*lineSize maps every element onto one bank (conflict, one word per
// cycle); anything else runs at the banked strided rate.
func (o *Interleaved) StridedRate(stride int64) (int, bool) {
	if stride%(int64(o.banks)*int64(o.g.line)) == 0 {
		return 1, true
	}
	return o.stridedRate, false
}

// Lookup implements Org.
func (o *Interleaved) Lookup(addr int64, write, vector bool) (bool, int64, metrics.Cause) {
	bank := o.g.lineNum(addr) & int64(o.banks-1)
	if o.l2.Lookup(addr, write) {
		o.hits[bank]++
		return true, 0, 0
	}
	o.misses[bank]++
	return false, 0, 0
}

// Present implements Org.
func (o *Interleaved) Present(addr int64) bool {
	present, _ := o.l2.Probe(addr)
	return present
}

// Install implements Org.
func (o *Interleaved) Install(addr int64, vector bool) (int64, bool) {
	base, ok, dirty := o.l2.Fill(addr)
	return base, ok && dirty
}

// MarkDirty implements Org.
func (o *Interleaved) MarkDirty(addr int64) { o.l2.MarkDirty(addr) }

// Bind implements Org: a single tag store never evicts internally.
func (o *Interleaved) Bind(VictimSink) {}

// Snapshot implements Org.
func (o *Interleaved) Snapshot() *Stats {
	s := &Stats{
		Org:        o.name,
		Banks:      o.banks,
		PortWords:  o.portWords,
		BankHits:   append([]int64(nil), o.hits...),
		BankMisses: append([]int64(nil), o.misses...),
	}
	return s
}

// ApplyStats implements Org: totals from the tag store, banks folded
// modulo two into the fixed-width arrays of mem.Stats.
func (o *Interleaved) ApplyStats(st *mem.Stats) {
	st.L2Hits, st.L2Misses = o.l2.Hits, o.l2.Misses
	for b := 0; b < o.banks; b++ {
		st.L2BankHits[b&1] += o.hits[b]
		st.L2BankMisses[b&1] += o.misses[b]
	}
}

// Reset implements Org.
func (o *Interleaved) Reset() {
	o.l2.Reset()
	for i := range o.hits {
		o.hits[i], o.misses[i] = 0, 0
	}
}

var _ Org = (*Interleaved)(nil)

// Bicameral is a split scalar/vector L2 in the style of the Bicameral
// Cache: scalar fills live in a small scalar partition, vector lines in
// the remaining capacity, so vector streams cannot evict the scalar
// working set (and vice versa). A timed access that finds its line in the
// opposite partition migrates it home — invalidate there, fill here,
// dirtiness carried over — counted as a hit of the home partition plus
// one migration, and paying one extra L2 access attributed to
// metrics.CauseMigration. Each partition keeps the paper's two-bank
// interleave, so the strided port behaves exactly like the interleaved
// organization's.
type Bicameral struct {
	scalar *mem.Cache
	vector *mem.Cache
	g      geom
	// penalty is the cross-partition migration cost (one L2 access).
	penalty     int64
	portWords   int
	scalarBytes int
	vectorBytes int
	sink        VictimSink
	st          Stats
}

// NewBicameral builds the split cache for cfg. The scalar partition gets
// cfg.L2ScalarBytes when positive, otherwise a quarter of the L2; the
// vector partition gets the remainder. Associativity and line size are
// shared with the unified cache.
func NewBicameral(cfg *machine.Config) *Bicameral {
	sb := cfg.L2ScalarBytes
	if sb <= 0 {
		sb = cfg.L2Bytes / 4
	}
	vb := cfg.L2Bytes - sb
	return &Bicameral{
		scalar:      mem.NewCache(sb, cfg.L2Ways, cfg.L2Line),
		vector:      mem.NewCache(vb, cfg.L2Ways, cfg.L2Line),
		g:           newGeom(cfg.L2Line),
		penalty:     int64(cfg.LatL2),
		portWords:   cfg.L2PortWords,
		scalarBytes: sb,
		vectorBytes: vb,
	}
}

// Name implements Org.
func (o *Bicameral) Name() string { return "bicameral" }

// LineSize implements Org.
func (o *Bicameral) LineSize() int { return o.g.line }

// LineBase implements Org.
func (o *Bicameral) LineBase(addr int64) int64 { return o.g.lineBase(addr) }

// PortWords implements Org.
func (o *Bicameral) PortWords() int { return o.portWords }

// StridedRate implements Org: the vector partition keeps the two-bank
// interleave of the paper's cache.
func (o *Bicameral) StridedRate(stride int64) (int, bool) {
	if stride%(mem.NumL2Banks*int64(o.g.line)) == 0 {
		return 1, true
	}
	return 1, false
}

func (o *Bicameral) home(vector bool) (home, away *mem.Cache) {
	if vector {
		return o.vector, o.scalar
	}
	return o.scalar, o.vector
}

func (o *Bicameral) countHit(vector bool) {
	if vector {
		o.st.VectorHits++
	} else {
		o.st.ScalarHits++
	}
}

// Lookup implements Org. A line is cached in at most one partition
// (installs route home, migrations invalidate the source, and the
// prefetcher checks Present across both), so the home lookup and the
// cross-partition probe cover all cases.
func (o *Bicameral) Lookup(addr int64, write, vector bool) (bool, int64, metrics.Cause) {
	home, away := o.home(vector)
	if home.Lookup(addr, write) {
		o.countHit(vector)
		return true, 0, 0
	}
	if present, _ := away.Probe(addr); present {
		// Migrate the line home: the source invalidation carries the dirty
		// bit over, and the home fill may evict a dirty victim that the
		// hierarchy writes back to the L3.
		_, dirty := away.Invalidate(addr)
		if base, ok, vdirty := home.Fill(addr); ok && vdirty && o.sink != nil {
			o.sink.PushVictim(base)
		}
		if dirty || write {
			home.MarkDirty(addr)
		}
		o.st.Migrations++
		o.countHit(vector)
		return true, o.penalty, metrics.CauseMigration
	}
	if vector {
		o.st.VectorMisses++
	} else {
		o.st.ScalarMisses++
	}
	return false, 0, 0
}

// Present implements Org.
func (o *Bicameral) Present(addr int64) bool {
	if p, _ := o.scalar.Probe(addr); p {
		return true
	}
	p, _ := o.vector.Probe(addr)
	return p
}

// Install implements Org: the line goes to its access class's home
// partition.
func (o *Bicameral) Install(addr int64, vector bool) (int64, bool) {
	home, _ := o.home(vector)
	base, ok, dirty := home.Fill(addr)
	return base, ok && dirty
}

// MarkDirty implements Org: the line is in at most one partition, so
// marking both is marking whichever holds it.
func (o *Bicameral) MarkDirty(addr int64) {
	o.scalar.MarkDirty(addr)
	o.vector.MarkDirty(addr)
}

// Bind implements Org.
func (o *Bicameral) Bind(sink VictimSink) { o.sink = sink }

// Snapshot implements Org.
func (o *Bicameral) Snapshot() *Stats {
	s := o.st
	s.Org = "bicameral"
	s.PortWords = o.portWords
	s.ScalarBytes = o.scalarBytes
	s.VectorBytes = o.vectorBytes
	return &s
}

// ApplyStats implements Org: the scalar partition reports as bank 0 and
// the vector partition as bank 1, so the bank-sum oracle
// (L2BankHits/L2BankMisses sum to L2Hits/L2Misses) holds for the split
// cache too. Migrated accesses are hits of their home partition.
func (o *Bicameral) ApplyStats(st *mem.Stats) {
	st.L2Hits = o.st.ScalarHits + o.st.VectorHits
	st.L2Misses = o.st.ScalarMisses + o.st.VectorMisses
	st.L2BankHits[0] += o.st.ScalarHits
	st.L2BankHits[1] += o.st.VectorHits
	st.L2BankMisses[0] += o.st.ScalarMisses
	st.L2BankMisses[1] += o.st.VectorMisses
}

// Reset implements Org.
func (o *Bicameral) Reset() {
	o.scalar.Reset()
	o.vector.Reset()
	sink := o.sink
	o.st = Stats{}
	o.sink = sink
}

var _ Org = (*Bicameral)(nil)
