// Package cacheorg makes the L2 vector cache's organization pluggable.
// The paper's hierarchy (internal/mem) hard-wires the two-bank interleaved
// L2; this package extracts the organization decisions — where a line
// lives, how the timed lookup is counted, what rate a strided access is
// served at, and what extra penalties an access pays — behind the Org
// interface and re-implements the three-level hierarchy around it.
//
// Three organizations ship:
//
//   - Interleaved: the paper's two-bank interleaved L2. Hierarchy driving
//     it is bit-identical to mem.Hierarchy (with default mem.Options) on
//     every latency, Stats counter and stall component; the differential
//     fuzzer in this package cross-checks the two.
//   - Bicameral: a split scalar/vector cache in the style of the Bicameral
//     Cache proposal — scalar fills and vector accesses live in separate
//     partitions, and an access that finds its line in the opposite
//     partition migrates it home, paying a cross-partition penalty
//     attributed to metrics.CauseMigration.
//   - Banked: a parameterized N-bank L2 (machine.Config.L2Banks). More
//     banks spread strided accesses across more ports: a non-unit stride
//     is served at banks/2 words per cycle (capped at the port width)
//     unless it maps every element onto one bank. With N = 2 it reproduces
//     the interleaved organization's timing exactly.
//
// The Hierarchy here follows mem.Hierarchy line for line (L1, L3,
// prefetch, coherency, write-validate, per-stride-class line walks); only
// the L2 decisions go through the Org. A reference per-element walk
// (NewReference) retains the straightforward enumeration as the oracle for
// the optimized stride-class walks, following the repo's differential
// pattern (mem.ReferenceHierarchy, sched.ReferenceSchedule).
package cacheorg

import (
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/metrics"
)

// VictimSink receives the dirty lines an organization evicts internally
// (a bicameral migration fills the home partition, which may evict a dirty
// line) so the hierarchy can write them back to the L3.
type VictimSink interface {
	PushVictim(base int64)
}

// Org is one L2 organization: the tag stores, the per-bank/partition
// accounting and the port arbitration of the vector cache. The Hierarchy
// drives it through timed lookups (Lookup), untimed installs
// (Install/Present, used by fills and the prefetcher) and the strided
// service rate (StridedRate).
type Org interface {
	// Name is the organization's short name ("interleaved", "bicameral",
	// "banked4", ...), used in stats and energy accounting.
	Name() string
	// LineSize and LineBase describe the organization's line geometry.
	LineSize() int
	LineBase(addr int64) int64
	// PortWords is the width of the wide port in 64-bit words (the rate a
	// stride-one access is served at).
	PortWords() int
	// StridedRate returns the service rate of a non-unit-stride access in
	// words per cycle, and whether the stride is a bank conflict (every
	// element on one bank).
	StridedRate(stride int64) (rate int, conflict bool)
	// Lookup is one timed L2 probe. extra is additional latency the
	// organization itself charges (e.g. a cross-partition migration),
	// attributed to cause; organizations without internal penalties return
	// (hit, 0, 0).
	Lookup(addr int64, write, vector bool) (hit bool, extra int64, cause metrics.Cause)
	// Present reports whether the line is cached anywhere in the
	// organization, without touching LRU state or counters (prefetch
	// dedup).
	Present(addr int64) bool
	// Install fills the line for the given access class and returns a
	// dirty victim for the hierarchy to push to the L3 (ok false if the
	// victim slot was empty or clean).
	Install(addr int64, vector bool) (victimBase int64, dirty bool)
	// MarkDirty sets the dirty bit of the line wherever it is cached.
	MarkDirty(addr int64)
	// Bind hands the organization the hierarchy's victim sink before use.
	Bind(sink VictimSink)
	// Snapshot returns the organization-specific counters.
	Snapshot() *Stats
	// ApplyStats folds the organization's counters into the shared
	// hierarchy stats: L2Hits/L2Misses totals and the two-entry bank
	// arrays (wider organizations fold banks modulo two), keeping the
	// bank-sum oracle of mem.Stats intact.
	ApplyStats(st *mem.Stats)
	// Reset clears all tag-store state and counters.
	Reset()
}

// Stats is the organization-specific counter snapshot, exported on
// sim.Result (field "cacheorg") for runs driven by this package. Unlike
// mem.Stats — which keeps fixed two-entry bank arrays for comparability —
// the bank slices here are sized to the organization.
type Stats struct {
	Org       string `json:"org"`
	Banks     int    `json:"banks,omitempty"`
	PortWords int    `json:"port_words,omitempty"`
	// BankHits/BankMisses split the timed L2 lookups across the banks of
	// the interleaved/banked organizations.
	BankHits   []int64 `json:"bank_hits,omitempty"`
	BankMisses []int64 `json:"bank_misses,omitempty"`
	// Bicameral partition geometry and counters. A migrated access counts
	// as a hit of its home partition plus one migration.
	ScalarBytes  int   `json:"scalar_bytes,omitempty"`
	VectorBytes  int   `json:"vector_bytes,omitempty"`
	ScalarHits   int64 `json:"scalar_hits,omitempty"`
	ScalarMisses int64 `json:"scalar_misses,omitempty"`
	VectorHits   int64 `json:"vector_hits,omitempty"`
	VectorMisses int64 `json:"vector_misses,omitempty"`
	Migrations   int64 `json:"migrations,omitempty"`
}

// Hierarchy is the three-level memory system around a pluggable L2
// organization. It implements mem.Model and mem.Detailed and mirrors
// mem.Hierarchy (with default mem.Options) exactly: same L1 and L3
// behavior, same next-line prefetcher, same coherency and write-validate
// rules, same stride-class line walks and the same epoch-tagged stall
// attribution. Driving it with the Interleaved organization is proven
// bit-identical to mem.Hierarchy by the differential tests.
type Hierarchy struct {
	cfg *machine.Config
	org Org
	l1  *mem.Cache
	l3  *mem.Cache
	st  mem.Stats
	// ref selects the reference per-element vector walk instead of the
	// optimized stride-class walks (the oracle for the differential
	// tests).
	ref bool
	// Devirtualized fast path. New resolves the concrete organization up
	// front so the per-line hot paths (lookup, present, install, line
	// arithmetic, strided rate) branch on a nil check instead of
	// dispatching through the Org interface, with the line geometry and
	// port width cached beside them. NewReference clears these fields so
	// the oracle keeps the plain interface walk — the generic path stays
	// exercised by every differential run.
	inter *Interleaved
	bic   *Bicameral
	g     geom
	ls    int64
	portW int
	mono  bool
	// pref memoizes the next-line prefetch probe issued after every L2
	// access (see mem.Hierarchy's equivalent): an entry records that a
	// line was present in the organization when its caches' Fill counters
	// summed to fills. A line can only become absent through an eviction
	// inside a Fill (a bicameral migration fills the home partition too),
	// so a matching entry proves the prefetch would find the line present
	// and return without touching any state — skipping the call is exact.
	// Lines are stored +1 so the zero value never matches.
	pref  [prefEntries]prefEnt
	prefC [2]*mem.Cache
	// Epoch-tagged per-access stall components (see mem.Hierarchy).
	det      metrics.Components
	detTag   [metrics.NumCauses]uint64
	detEpoch uint64
}

const prefEntries = 256

type prefEnt struct {
	line  int64
	fills int64
}

// New builds a hierarchy around org for cfg.
func New(cfg *machine.Config, org Org) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		org: org,
		l1:  mem.NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.L1Line),
		l3:  mem.NewCache(cfg.L3Bytes, cfg.L3Ways, cfg.L3Line),
	}
	org.Bind(h)
	h.resolve()
	return h
}

// resolve devirtualizes the shipped organizations: the hot paths branch
// on the concrete fields, and line geometry and port width are constant
// per organization so they are cached here. A custom Org stays on the
// interface path (mono false) with no prefetch memo.
func (h *Hierarchy) resolve() {
	switch o := h.org.(type) {
	case *Interleaved:
		h.inter = o
		h.prefC[0] = o.l2
	case *Bicameral:
		h.bic = o
		h.prefC[0], h.prefC[1] = o.scalar, o.vector
	default:
		return
	}
	h.mono = true
	h.g = newGeom(h.org.LineSize())
	h.ls = int64(h.org.LineSize())
	h.portW = h.org.PortWords()
}

// NewReference builds the hierarchy with the reference per-element vector
// walk: the oracle the optimized stride-class walks are differentially
// tested against, per organization. It also undoes the devirtualization,
// keeping the oracle on the generic Org-interface walk with no prefetch
// memo, so every differential run exercises the plain path too.
func NewReference(cfg *machine.Config, org Org) *Hierarchy {
	h := New(cfg, org)
	h.ref = true
	h.inter, h.bic, h.mono = nil, nil, false
	h.prefC = [2]*mem.Cache{}
	return h
}

// Org returns the hierarchy's organization.
func (h *Hierarchy) Org() Org { return h.org }

// PushVictim implements VictimSink: a dirty line evicted inside the
// organization is written back to the L3 (inclusion), exactly like a
// dirty victim of a hierarchy-driven install.
func (h *Hierarchy) PushVictim(base int64) {
	if present, _ := h.l3.Probe(base); !present {
		h.l3.Fill(base)
	}
	h.l3.MarkDirty(base)
}

// Stats returns the shared hierarchy counters, with the L2 totals and
// two-entry bank arrays folded in by the organization.
func (h *Hierarchy) Stats() mem.Stats {
	s := h.st
	s.L1Hits, s.L1Misses = h.l1.Hits, h.l1.Misses
	s.L3Hits, s.L3Misses = h.l3.Hits, h.l3.Misses
	h.org.ApplyStats(&s)
	return s
}

// OrgStats returns the organization-specific counter snapshot.
func (h *Hierarchy) OrgStats() *Stats { return h.org.Snapshot() }

// Reset implements mem.Model.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l3.Reset()
	h.org.Reset()
	h.pref = [prefEntries]prefEnt{}
	h.st = mem.Stats{}
	h.det.Reset()
	h.detTag = [metrics.NumCauses]uint64{}
	h.detEpoch = 0
}

// LastAccess implements mem.Detailed (see mem.Hierarchy.LastAccess).
func (h *Hierarchy) LastAccess() *metrics.Components {
	for i := range h.det {
		if h.detTag[i] != h.detEpoch {
			h.det[i] = 0
			h.detTag[i] = h.detEpoch
		}
	}
	return &h.det
}

func (h *Hierarchy) detReset() { h.detEpoch++ }

func (h *Hierarchy) detAdd(cause metrics.Cause, cycles int64) {
	if h.detTag[cause] != h.detEpoch {
		h.det[cause] = cycles
		h.detTag[cause] = h.detEpoch
		return
	}
	h.det[cause] += cycles
}

// The org* helpers are the devirtualized dispatch: a resolved hierarchy
// reaches the shipped organizations through concrete (inlinable) calls
// and cached geometry; anything else falls back to the Org interface.

func (h *Hierarchy) orgLineBase(addr int64) int64 {
	if h.mono {
		return h.g.lineBase(addr)
	}
	return h.org.LineBase(addr)
}

func (h *Hierarchy) orgLineSize() int64 {
	if h.mono {
		return h.ls
	}
	return int64(h.org.LineSize())
}

func (h *Hierarchy) orgPortWords() int {
	if h.mono {
		return h.portW
	}
	return h.org.PortWords()
}

func (h *Hierarchy) orgStridedRate(stride int64) (int, bool) {
	if h.inter != nil {
		return h.inter.StridedRate(stride)
	}
	if h.bic != nil {
		return h.bic.StridedRate(stride)
	}
	return h.org.StridedRate(stride)
}

func (h *Hierarchy) orgLookup(addr int64, write, vector bool) (bool, int64, metrics.Cause) {
	if h.inter != nil {
		return h.inter.Lookup(addr, write, vector)
	}
	if h.bic != nil {
		return h.bic.Lookup(addr, write, vector)
	}
	return h.org.Lookup(addr, write, vector)
}

func (h *Hierarchy) orgPresent(addr int64) bool {
	if h.inter != nil {
		return h.inter.Present(addr)
	}
	if h.bic != nil {
		return h.bic.Present(addr)
	}
	return h.org.Present(addr)
}

func (h *Hierarchy) orgInstall(addr int64, vector bool) (int64, bool) {
	if h.inter != nil {
		return h.inter.Install(addr, vector)
	}
	if h.bic != nil {
		return h.bic.Install(addr, vector)
	}
	return h.org.Install(addr, vector)
}

func (h *Hierarchy) orgMarkDirty(addr int64) {
	if h.inter != nil {
		h.inter.MarkDirty(addr)
		return
	}
	if h.bic != nil {
		h.bic.MarkDirty(addr)
		return
	}
	h.org.MarkDirty(addr)
}

// prefFills sums the Fill counters of the resolved organization's tag
// stores: the version behind the prefetch memo.
func (h *Hierarchy) prefFills() int64 {
	f := h.prefC[0].Fills()
	if h.prefC[1] != nil {
		f += h.prefC[1].Fills()
	}
	return f
}

// l2Lookup is one timed organization lookup, charging any internal
// penalty (e.g. a migration) to its cause.
func (h *Hierarchy) l2Lookup(addr int64, write, vector bool) (hit bool, lat int) {
	hit, extra, cause := h.orgLookup(addr, write, vector)
	if extra > 0 {
		h.detAdd(cause, extra)
		lat = int(extra)
	}
	return hit, lat
}

// fillL2 ensures the line containing addr is in the L2, filling from the
// L3 or memory as needed, and returns the latency beyond the L2 access
// itself (see mem.Hierarchy.fillL2 — the structure, including the
// tagged next-line prefetch after the fill, is identical).
func (h *Hierarchy) fillL2(addr int64, edge, vector bool) int {
	hit, lat := h.l2Lookup(addr, false, vector)
	if !hit {
		fill := 0
		cause := metrics.CauseL2Miss
		if h.l3.Lookup(addr, false) {
			fill = h.cfg.LatL3
		} else {
			fill = h.cfg.LatMem
			cause = metrics.CauseL3Miss
			h.l3.Fill(addr)
		}
		if edge {
			cause = metrics.CauseEdgeLine
		}
		h.detAdd(cause, int64(fill))
		h.install(addr, vector)
		lat += fill
	}
	line := h.orgLineBase(addr) + h.orgLineSize()
	if h.mono {
		ln := h.g.lineNum(line)
		e := &h.pref[uint(ln)&(prefEntries-1)]
		if e.line != ln+1 || e.fills != h.prefFills() {
			h.prefetch(line, vector)
			e.line, e.fills = ln+1, h.prefFills()
		}
	} else {
		h.prefetch(line, vector)
	}
	return lat
}

// prefetch installs a line if absent anywhere in the organization,
// without charging latency.
func (h *Hierarchy) prefetch(line int64, vector bool) {
	if h.orgPresent(line) {
		return
	}
	if p3, _ := h.l3.Probe(line); !p3 {
		h.l3.Fill(line)
	}
	h.install(line, vector)
	h.st.Prefetches++
}

// install fills a line into the organization, pushing a dirty victim to
// the L3.
func (h *Hierarchy) install(addr int64, vector bool) {
	if base, dirty := h.orgInstall(addr, vector); dirty {
		h.PushVictim(base)
	}
}

// scalarLine services one L1 line of a scalar access (see
// mem.Hierarchy.scalarLine).
func (h *Hierarchy) scalarLine(addr int64, write bool) (lat int, hit bool) {
	if h.l1.Lookup(addr, write) {
		return h.cfg.LatL1, true
	}
	h.detAdd(metrics.CauseL1Miss, int64(h.cfg.LatL2))
	lat = h.cfg.LatL2 + h.fillL2(addr, false, false)
	if base, ok, dirty := h.l1.Fill(addr); ok && dirty {
		h.orgMarkDirty(base)
	}
	if write {
		h.l1.MarkDirty(addr)
	}
	return lat, false
}

// ScalarAccess implements mem.Model, including the line-crossing rule of
// mem.Hierarchy.ScalarAccess.
func (h *Hierarchy) ScalarAccess(addr int64, size int, write bool) int {
	h.detReset()
	lat, _ := h.scalarLine(addr, write)
	if size > 1 {
		if last := h.l1.LineBase(addr + int64(size) - 1); last != h.l1.LineBase(addr) {
			lat2, hit := h.scalarLine(last, write)
			if hit {
				h.detAdd(metrics.CauseEdgeLine, int64(lat2))
			}
			lat += lat2
		}
	}
	return lat
}

// vectorHeader charges the port-transfer part of a vector access. The
// strided rate and the conflict decision come from the organization: the
// interleaved L2 serves non-unit strides at one word per cycle, a banked
// L2 at banks/2, and a stride that maps every element onto one bank
// serializes to one word per cycle as a bank conflict.
func (h *Hierarchy) vectorHeader(stride int64, vl int, unit bool) int {
	lat := h.cfg.LatL2
	if unit {
		h.st.UnitVectorAccesses++
		lat += (vl - 1) / h.orgPortWords()
		return lat
	}
	h.st.StridedVectorAccesses++
	rate, conflict := h.orgStridedRate(stride)
	lat += (vl - 1) / rate
	if extra := int64((vl-1)/rate - (vl-1)/h.orgPortWords()); extra > 0 {
		if conflict {
			h.st.BankConflicts++
			h.detAdd(metrics.CauseBankConflict, extra)
		} else {
			h.detAdd(metrics.CauseStride, extra)
		}
	}
	return lat
}

// vecLine services one distinct L2 line touched by a vector access (see
// mem.Hierarchy.vecLine: coherency probe, write-validate for covered
// stride-one store lines, ordinary fill otherwise).
func (h *Hierarchy) vecLine(l, base int64, vl int, write, unit bool) int {
	lat := 0
	if present, dirty := h.l1.Probe(l); present {
		if dirty {
			h.l1.Invalidate(l)
			h.orgMarkDirty(l)
			h.st.CoherencyFlushes++
			h.detAdd(metrics.CauseCoherency, int64(h.cfg.LatL1+1))
			lat += h.cfg.LatL1 + 1
		} else if write {
			h.l1.Invalidate(l)
		}
	}
	if write && unit {
		if l >= base && l+h.orgLineSize() <= base+int64(vl)*8 {
			hit, wlat := h.l2Lookup(l, true, true)
			lat += wlat
			if !hit {
				h.install(l, true)
				h.orgMarkDirty(l)
			}
			return lat
		}
		lat += h.fillL2(l, true, true)
		h.orgMarkDirty(l)
		return lat
	}
	lat += h.fillL2(l, false, true)
	if write {
		h.orgMarkDirty(l)
	}
	return lat
}

// VectorAccess implements mem.Model with the same per-stride-class line
// enumeration as mem.Hierarchy.VectorAccess (or, in reference mode, the
// per-element walk of mem.ReferenceHierarchy — the two are proven to
// visit identical line sequences by the differential tests).
func (h *Hierarchy) VectorAccess(base, stride int64, vl int, write bool) int {
	if vl < 1 {
		vl = 1
	}
	h.detReset()
	unit := stride == 8
	lat := h.vectorHeader(stride, vl, unit)

	ls := h.orgLineSize()
	if h.ref {
		return lat + h.refWalk(base, stride, vl, write, unit, ls)
	}
	switch {
	case stride >= 8 && stride <= ls && ls >= 8:
		last := h.orgLineBase(base + int64(vl-1)*stride + 7)
		for l := h.orgLineBase(base); l <= last; l += ls {
			lat += h.vecLine(l, base, vl, write, unit)
		}
	case stride == 0 && ls >= 8:
		first, second := h.orgLineBase(base), h.orgLineBase(base+7)
		if first == second {
			lat += h.vecLine(first, base, vl, write, unit)
		} else {
			for i := 0; i < vl; i++ {
				lat += h.vecLine(first, base, vl, write, unit)
				lat += h.vecLine(second, base, vl, write, unit)
			}
		}
	case stride > ls && ls >= 8:
		lastLine := int64(-1)
		for i := 0; i < vl; i++ {
			a := base + int64(i)*stride
			l0, l1 := h.orgLineBase(a), h.orgLineBase(a+7)
			if l0 != lastLine {
				lat += h.vecLine(l0, base, vl, write, unit)
			}
			if l1 != l0 {
				lat += h.vecLine(l1, base, vl, write, unit)
			}
			lastLine = l1
		}
	default:
		lat += h.refWalk(base, stride, vl, write, unit, ls)
	}
	return lat
}

// refWalk is the reference per-element line enumeration: every element's
// span line by line, deduplicating only against the immediately
// previously visited line.
func (h *Hierarchy) refWalk(base, stride int64, vl int, write, unit bool, ls int64) int {
	lat := 0
	lastLine := int64(-1)
	for i := 0; i < vl; i++ {
		a := base + int64(i)*stride
		endLine := h.orgLineBase(a + 7)
		for l := h.orgLineBase(a); l <= endLine; l += ls {
			if l == lastLine {
				continue
			}
			lastLine = l
			lat += h.vecLine(l, base, vl, write, unit)
		}
	}
	return lat
}

var _ mem.Model = (*Hierarchy)(nil)
var _ mem.Detailed = (*Hierarchy)(nil)
var _ VictimSink = (*Hierarchy)(nil)
