package sched

import (
	"fmt"
	"strings"

	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// Dump renders the block schedule as a cycle-by-unit grid in the style of
// the paper's Figure 4: one row per cycle, one column per functional-unit
// instance, with multi-cycle vector occupancies shown on every cycle they
// hold their unit.
func (bs *BlockSched) Dump(cfg *machine.Config) string {
	type col struct {
		unit isa.Unit
		idx  int
		name string
	}
	var cols []col
	addCols := func(u isa.Unit, label string) {
		for i := 0; i < cfg.Units(u); i++ {
			cols = append(cols, col{unit: u, idx: i, name: fmt.Sprintf("%s%d", label, i)})
		}
	}
	addCols(isa.UnitInt, "IALU")
	addCols(isa.UnitMem, "pL1_")
	if cfg.ISA == machine.ISAVector {
		addCols(isa.UnitVector, "VALU")
		addCols(isa.UnitVMem, "pL2_")
	} else if cfg.ISA == machine.ISAuSIMD {
		addCols(isa.UnitSIMD, "SIMD")
	}
	addCols(isa.UnitBranch, "BR")

	colOf := func(u isa.Unit, idx int) int {
		for c, cl := range cols {
			if cl.unit == u && cl.idx == idx {
				return c
			}
		}
		return -1
	}

	grid := make([][]string, bs.Length)
	for i := range grid {
		grid[i] = make([]string, len(cols))
	}
	for i := range bs.Ops {
		os := &bs.Ops[i]
		if os.Unit == isa.UnitNone {
			continue
		}
		c := colOf(os.Unit, os.UnitIdx)
		if c < 0 {
			continue
		}
		op := &bs.Block.Ops[os.Index]
		label := op.Label
		if label == "" {
			label = op.Opcode.Name()
		}
		for k := 0; k < os.Occ && os.Cycle+k < len(grid); k++ {
			cell := label
			if k > 0 {
				cell = "|" + label
			}
			grid[os.Cycle+k][c] = cell
		}
	}

	width := 6
	for _, cl := range cols {
		if len(cl.name) >= width {
			width = len(cl.name) + 1
		}
	}
	for _, row := range grid {
		for _, cell := range row {
			if len(cell) >= width {
				width = len(cell) + 1
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s", "cyc")
	for _, cl := range cols {
		fmt.Fprintf(&sb, " %-*s", width, cl.name)
	}
	sb.WriteByte('\n')
	for cyc, row := range grid {
		fmt.Fprintf(&sb, "%4d", cyc)
		for _, cell := range row {
			fmt.Fprintf(&sb, " %-*s", width, cell)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "block length: %d cycles, %d operations\n", bs.Length, len(bs.Block.Ops))
	return sb.String()
}
