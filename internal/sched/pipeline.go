package sched

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// Software-pipelining timing model (Options.SoftwarePipeline): for a
// self-loop block — a block whose terminating branch targets itself, the
// shape every hot loop in the kernels has — the scheduler computes an
// initiation interval II at which consecutive iterations can overlap:
//
//	II = max( ResMII,            resource bound per unit class and issue
//	          RecMII,            loop-carried dependence bound
//	          modulo-conflict ), verified on a modulo reservation table
//
// keeping the acyclic placement of each operation unchanged (so the
// functional simulator is unaffected). The simulator then charges the
// full block length for the first iteration and II for every directly
// following one — exactly the steady-state cost of a kernel-only modulo
// schedule, ignoring register pressure from modulo variable expansion
// (documented optimism; the paper's conclusion asks for exactly this kind
// of "more flexible scheduling technique" evaluation).

// computeII derives the initiation interval for a scheduled self-loop
// block. It returns 0 when the block is not pipelinable.
func computeII(bs *BlockSched, g *dag, cfg *machine.Config) int {
	blk := bs.Block
	n := len(blk.Ops)
	if n == 0 {
		return 0
	}
	last := &blk.Ops[n-1]
	if !last.Info().Branch || last.Target != blk.ID {
		return 0 // not a self loop
	}

	// Resource bound: per unit class, total occupancy / instances; plus
	// the issue width.
	occ := map[isa.Unit]int{}
	realOps := 0
	for i := range blk.Ops {
		nd := &g.nodes[i]
		if nd.pseudo {
			continue
		}
		realOps++
		unit := cfg.UnitFor(nd.unit)
		occ[unit] += nd.occ
	}
	ii := ceilDiv(realOps, cfg.Issue)
	for unit, total := range occ {
		if cnt := cfg.Units(unit); cnt > 0 {
			if b := ceilDiv(total, cnt); b > ii {
				ii = b
			}
		}
	}

	// Recurrence bound: loop-carried dependences at distance one. A value
	// defined at cycle(d) with latency lat and consumed by the next
	// iteration's op at cycle(u) requires cycle(u) + II >= cycle(d) + lat.
	// Loop-carried edges are re-derived the same way the DAG builder
	// derives intra-iteration edges, but from each op to earlier-or-equal
	// positions (the wrap-around).
	for _, e := range carriedEdges(blk, g) {
		if b := bs.Ops[e.from].Cycle + e.lat - bs.Ops[e.to].Cycle; b > ii {
			ii = b
		}
	}
	if ii < 1 {
		ii = 1
	}

	// Modulo reservation check: with the acyclic placement fixed, two
	// operations sharing a unit instance (or an issue slot group) must
	// not collide modulo II.
	for ; ii <= bs.Length; ii++ {
		if !moduloConflict(bs, g, cfg, ii) {
			break
		}
	}
	if ii >= bs.Length {
		return 0 // no overlap achievable
	}
	return ii
}

// carriedEdge is a loop-carried dependence (distance one).
type carriedEdge struct {
	from, to int // op indices: from's result (previous iteration) reaches to
	lat      int
}

// carriedEdges derives distance-one dependences: the last write of each
// register in the block reaches every read at an earlier-or-equal
// position in the next iteration; memory operations are handled
// conservatively (any store conflicts with any may-aliasing access at an
// earlier-or-equal position).
func carriedEdges(blk *ir.Block, g *dag) []carriedEdge {
	var out []carriedEdge
	lastDef := map[regKey]int{}
	for i := range blk.Ops {
		for _, r := range blk.Ops[i].Dst {
			lastDef[regKey{r.Class, r.ID}] = i
		}
	}
	for i := range blk.Ops {
		op := &blk.Ops[i]
		for _, r := range op.Src {
			if d, ok := lastDef[regKey{r.Class, r.ID}]; ok && d >= i {
				out = append(out, carriedEdge{from: d, to: i, lat: rawLat(&g.nodes[d], &g.nodes[i], Options{})})
			}
		}
		// Anti/output wrap-around: a later-or-equal reader of a register
		// this op writes must finish before next iteration's write; the
		// unit-latency bound suffices for the II inequality.
		for _, r := range op.Dst {
			if d, ok := lastDef[regKey{r.Class, r.ID}]; ok && d > i {
				out = append(out, carriedEdge{from: d, to: i, lat: 1})
			}
		}
	}
	// Memory: any store reaches may-aliasing accesses at earlier-or-equal
	// positions in the next iteration.
	type memRec struct {
		idx   int
		store bool
		alias int
	}
	var mems []memRec
	for i := range blk.Ops {
		in := blk.Ops[i].Info()
		if in.Mem != isa.MemNone {
			mems = append(mems, memRec{i, in.Mem == isa.MemStore, blk.Ops[i].Alias})
		}
	}
	for _, a := range mems {
		for _, b := range mems {
			if a.idx < b.idx {
				continue // intra-iteration order already enforced
			}
			if !a.store && !b.store {
				continue
			}
			if !mayAlias(a.alias, b.alias) {
				continue
			}
			lat := 1
			if a.store && !b.store {
				lat = g.nodes[a.idx].tlw
			}
			out = append(out, carriedEdge{from: a.idx, to: b.idx, lat: lat})
		}
	}
	return out
}

type regKey struct {
	class isa.RegClass
	id    int32
}

// moduloConflict reports whether any unit instance is claimed twice in
// the same slot modulo ii, or any issue slot exceeds the machine width.
func moduloConflict(bs *BlockSched, g *dag, cfg *machine.Config, ii int) bool {
	type slotKey struct {
		unit isa.Unit
		idx  int
		slot int
	}
	used := map[slotKey]bool{}
	issue := make([]int, ii)
	for i := range bs.Ops {
		if g.nodes[i].pseudo {
			continue
		}
		os := &bs.Ops[i]
		issue[os.Cycle%ii]++
		if issue[os.Cycle%ii] > cfg.Issue {
			return true
		}
		for k := 0; k < os.Occ; k++ {
			key := slotKey{os.Unit, os.UnitIdx, (os.Cycle + k) % ii}
			if used[key] {
				return true
			}
			used[key] = true
		}
	}
	return false
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
