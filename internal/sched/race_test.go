package sched

import (
	"runtime"
	"sync"
	"testing"

	"vsimdvliw/internal/progen"
)

// TestConcurrentScheduleRace schedules many generated programs from many
// goroutines at once — same functions, same configurations, interleaved
// option sets. Under `make race` this proves the fast path's shared state
// is clean: the package-init descriptor tables (opMetaTab, vecOccTab,
// vecLastTab) are read-only after init, and every ScheduleOpts call takes
// a private scratch arena from the pool, so concurrent Compiles never
// share mutable scheduler state. Each goroutine also differentially
// checks a slice of its results against the reference scheduler, so the
// schedules are proven right, not just race-free.
func TestConcurrentScheduleRace(t *testing.T) {
	const programs = 24
	funcs := make([]*progen.Program, programs)
	for i := range funcs {
		p, err := progen.Generate(uint64(1000+i), 1+i*4)
		if err != nil {
			t.Fatal(err)
		}
		funcs[i] = p
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range funcs {
				cfg := diffCfgs[(w+i)%len(diffCfgs)]
				o := diffOpts[(w+i)%len(diffOpts)]
				fast, err := ScheduleOpts(p.Func, cfg, o)
				if err != nil {
					continue // pressure rejection: legitimate, and deterministic
				}
				if (w+i)%4 == 0 {
					ref, err := ReferenceScheduleOpts(p.Func, cfg, o)
					if err != nil {
						errs <- err
						return
					}
					for bi := range fast.Blocks {
						if fast.Blocks[bi].Length != ref.Blocks[bi].Length {
							t.Errorf("worker %d program %d: length diverges", w, i)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
