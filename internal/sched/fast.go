package sched

// fast.go is the production scheduler: the same list-scheduling algorithm
// as reference.go, rebuilt for throughput. The scheduler is the slowest
// layer of the stack (cold-cache compiles dominate vsimdd cold-start and
// any many-config sweep), so its hot paths avoid the per-op maps and
// slices of the original:
//
//   - the dependence graph lives in preallocated node/edge arenas; each
//     node's successor list is a singly linked list threaded through the
//     edge arena (prepend order — the reverse of the reference's append
//     order — is safe because every consumer of an edge list is
//     order-independent: priorities take a max, in-degrees count, and
//     readyAt takes a max);
//   - the builder's register tables (last definition and reader lists per
//     virtual register) are flat epoch-stamped arrays indexed by the
//     dense per-class register IDs ir.Func.Verify guarantees, so per-block
//     reuse costs O(1) instead of a map rebuild;
//   - reservation tables are bitsets probed and claimed with word-wise
//     masks; issue-slot counts are a flat array;
//   - per-opcode descriptor inputs (unit, latency, vector/memory/pseudo
//     flags) are memoized into a flat table at package init, and the two
//     quotients of the Figure 3 descriptors come from (rate, VL) lookup
//     tables;
//   - cycles in which nothing is ready are skipped in one step (the
//     reference burns them one at a time); nothing issues in them, so the
//     resulting schedule is identical.
//
// The result is required to be schedule-identical to the reference: same
// cycle assignment, slot placement, unit indices, lengths, II, and
// therefore the same Profile reservation tables. FuzzSchedule and
// TestScheduleDifferential10k enforce this; any behavioral change must be
// made to reference.go as well or the differential suite fails.
//
// All package-level tables here are built in init and read-only
// afterwards, so concurrent Compiles share them without synchronization;
// mutable working state lives in a pooled schedScratch per ScheduleOpts
// call.

import (
	"fmt"
	"sort"
	"sync"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// numUnitClasses bounds isa.Unit values for flat unit-indexed tables
// (UnitNone through UnitVMem).
const numUnitClasses = int(isa.UnitVMem) + 1

// opMeta is the per-opcode metadata the fast paths index by opcode,
// flattened from the isa.Info table at package init so the scheduling
// inner loops never chase it.
type opMeta struct {
	unit   isa.Unit
	lat    int32
	vector bool
	vmem   bool
	store  bool
	mem    bool
	branch bool
	pseudo bool
	setvl  bool
	setvs  bool
}

var opMetaTab [isa.NumOpcodes]opMeta

// maxRateTab bounds the (rate, vl) descriptor lookup tables. Both axes are
// tiny in every Table 2 configuration (lanes, L2 port words and VL are all
// <= isa.MaxVL); out-of-range values fall back to the divisions.
const maxRateTab = 16

// vecOccTab[rate][vl] = ceil(max(vl,1)/rate) and vecLastTab[rate][vl] =
// (max(vl,1)-1)/rate: the two quotients descriptors() computes per op.
var (
	vecOccTab  [maxRateTab + 1][isa.MaxVL + 1]int32
	vecLastTab [maxRateTab + 1][isa.MaxVL + 1]int32
)

func init() {
	for op := 0; op < isa.NumOpcodes; op++ {
		in := isa.Opcode(op).Get()
		if int(in.Unit) >= numUnitClasses {
			panic("sched: isa.Unit value out of range for flat unit tables")
		}
		opMetaTab[op] = opMeta{
			unit:   in.Unit,
			lat:    int32(in.Lat),
			vector: in.Vector,
			vmem:   isa.Opcode(op).IsVectorMem(),
			store:  in.Mem == isa.MemStore,
			mem:    in.Mem != isa.MemNone,
			branch: in.Branch,
			pseudo: in.Unit == isa.UnitNone,
			setvl:  isa.Opcode(op) == isa.SETVL,
			setvs:  isa.Opcode(op) == isa.SETVS,
		}
	}
	for rate := 1; rate <= maxRateTab; rate++ {
		for vl := 0; vl <= isa.MaxVL; vl++ {
			v := vl
			if v < 1 {
				v = 1
			}
			vecOccTab[rate][vl] = int32((v + rate - 1) / rate)
			vecLastTab[rate][vl] = int32((v - 1) / rate)
		}
	}
}

// fastDescriptors mirrors descriptors() through the init-time tables.
func fastDescriptors(m *opMeta, rate, vl int) (occ, tlw int32) {
	if !m.vector {
		return 1, m.lat
	}
	if rate <= maxRateTab && vl >= 0 && vl <= isa.MaxVL {
		return vecOccTab[rate][vl], m.lat + vecLastTab[rate][vl]
	}
	if vl < 1 {
		vl = 1
	}
	return int32((vl + rate - 1) / rate), m.lat + int32((vl-1)/rate)
}

// fnode is one operation in the arena-allocated dependence graph. Only
// what the scheduling loop reads is kept: the reference's node carries
// predecessor lists and an *ir.Op pointer, neither of which the fast path
// needs (in-degree replaces the former; opMetaTab the latter).
type fnode struct {
	unit     isa.Unit
	pseudo   bool
	vector   bool
	vl       int32
	lat      int32
	occ      int32
	tlw      int32
	indeg    int32
	succHead int32 // first outgoing edge in the arena, -1 when none
}

// fedge is one dependence edge in the shared arena: successor lists are
// linked through next.
type fedge struct {
	to   int32
	lat  int32
	next int32
}

// listNode is one cell of the builder's reader/vector-op linked lists.
type listNode struct {
	val  int32
	next int32
}

// memRec mirrors the reference builder's memory-operation record.
type memRec struct {
	idx   int32
	alias int32
	store bool
}

// epochTable is a reusable int32-valued map over dense keys (virtual
// register IDs): reset bumps an epoch instead of clearing, so reuse
// across blocks costs O(1).
type epochTable struct {
	epoch []uint32
	val   []int32
	cur   uint32
}

func (t *epochTable) reset(n int) {
	if cap(t.epoch) < n {
		t.epoch = make([]uint32, n)
		t.val = make([]int32, n)
		t.cur = 1
		return
	}
	t.epoch = t.epoch[:n]
	t.val = t.val[:n]
	t.cur++
	if t.cur == 0 { // epoch counter wrapped: clear and restart
		for i := range t.epoch {
			t.epoch[i] = 0
		}
		t.cur = 1
	}
}

func (t *epochTable) get(i int32) (int32, bool) {
	if t.epoch[i] == t.cur {
		return t.val[i], true
	}
	return 0, false
}

func (t *epochTable) set(i int32, v int32) {
	t.epoch[i] = t.cur
	t.val[i] = v
}

// flowLat, antiLat and outLat are rawLat, warLat and wawLat over fnodes
// (see depgraph.go for the latency model commentary).
func flowLat(p, c *fnode, opts Options) int32 {
	if p.pseudo {
		return 0
	}
	if p.vector {
		if c.vector && !opts.NoChaining {
			lat := p.lat
			if slack := p.tlw - (c.tlw - c.lat); slack > lat {
				lat = slack
			}
			return lat
		}
		return p.tlw
	}
	return p.lat
}

func antiLat(r *fnode) int32 {
	if r.vector {
		return r.tlw - r.lat + 1
	}
	return 0
}

func outLat(first, second *fnode) int32 {
	l := first.tlw - second.tlw + 1
	if l < 1 {
		l = 1
	}
	return l
}

// fastRes is the bitset reservation table: one bit per (unit instance,
// cycle), probed and claimed with word-wise masks, plus a flat issue-slot
// count per cycle. Occupancies are a handful of cycles, so a probe
// touches at most two words.
type fastRes struct {
	busy  [numUnitClasses][][]uint64
	issue []int32
}

func (r *fastRes) reset() {
	for u := range r.busy {
		for _, words := range r.busy[u] {
			for i := range words {
				words[i] = 0
			}
		}
	}
	for i := range r.issue {
		r.issue[i] = 0
	}
}

func (r *fastRes) issueFree(cycle, width int) bool {
	return cycle >= len(r.issue) || int(r.issue[cycle]) < width
}

func (r *fastRes) takeIssue(cycle int) {
	for len(r.issue) <= cycle {
		r.issue = append(r.issue, 0)
	}
	r.issue[cycle]++
}

// wordsFree reports whether bits [start, start+n) are all clear; bits
// beyond the slice's length are clear by definition.
func wordsFree(w []uint64, start, n int) bool {
	for n > 0 {
		wi := start >> 6
		if wi >= len(w) {
			return true
		}
		b := uint(start & 63)
		span := 64 - int(b)
		if span > n {
			span = n
		}
		mask := (^uint64(0) >> (64 - uint(span))) << b
		if w[wi]&mask != 0 {
			return false
		}
		start += span
		n -= span
	}
	return true
}

// wordsClaim sets bits [start, start+n), growing the slice as needed, and
// returns it.
func wordsClaim(w []uint64, start, n int) []uint64 {
	for need := (start + n + 63) >> 6; len(w) < need; {
		w = append(w, 0)
	}
	for n > 0 {
		wi := start >> 6
		b := uint(start & 63)
		span := 64 - int(b)
		if span > n {
			span = n
		}
		w[wi] |= (^uint64(0) >> (64 - uint(span))) << b
		start += span
		n -= span
	}
	return w
}

// reserve probes instances 0..count-1 in order — the reference's probe
// order, so the chosen instance index always matches — and claims the
// first that is free for [cycle, cycle+occ).
func (r *fastRes) reserve(unit isa.Unit, cycle, occ, count int) (int, bool) {
	insts := r.busy[unit]
	for len(insts) < count {
		insts = append(insts, nil)
	}
	r.busy[unit] = insts
	for idx := 0; idx < count; idx++ {
		if wordsFree(insts[idx], cycle, occ) {
			insts[idx] = wordsClaim(insts[idx], cycle, occ)
			return idx, true
		}
	}
	return 0, false
}

// schedScratch is the reusable working state of one ScheduleOpts call:
// the node/edge arenas, the builder's register tables and the reservation
// bitsets. Drawn from a pool per call, so concurrent Compiles never share
// one.
type schedScratch struct {
	nodes []fnode
	edges []fedge
	list  []listNode

	lastDef  [5]epochTable // per class: reg -> defining op index
	readHead [5]epochTable // per class: reg -> head of reader list (-1 none)
	mems     []memRec

	prio   []int32
	state  []int64 // doneBit | indeg<<32 | readyAt per node (see scheduleBlock)
	cand   []int32
	sorted []int32
	cnt    []int32
	ready  []int32
	res    fastRes
}

var scratchPool = sync.Pool{New: func() any { return new(schedScratch) }}

func growI32(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	}
	*s = (*s)[:n]
	return *s
}

func (s *schedScratch) addEdge(from, to, lat int32) {
	if from == to {
		return
	}
	s.edges = append(s.edges, fedge{to: to, lat: lat, next: s.nodes[from].succHead})
	s.nodes[from].succHead = int32(len(s.edges)) - 1
	s.nodes[to].indeg++
}

// buildGraph is buildDAG over the arenas: same pass structure, same edges
// with the same latencies (only the successor-list order differs; see the
// file comment), returning the VL value at block exit.
func (s *schedScratch) buildGraph(blk *ir.Block, numRegs *[5]int32, cfg *machine.Config, vlIn int, opts Options) int {
	n := len(blk.Ops)
	if cap(s.nodes) < n {
		s.nodes = make([]fnode, n)
	}
	s.nodes = s.nodes[:n]
	s.edges = s.edges[:0]
	s.list = s.list[:0]
	s.mems = s.mems[:0]
	for cl := range s.lastDef {
		s.lastDef[cl].reset(int(numRegs[cl]))
		s.readHead[cl].reset(int(numRegs[cl]))
	}
	nodes := s.nodes

	rateC, rateM := cfg.Lanes, cfg.L2PortWords
	vl := vlIn
	lastSetVL, lastSetVS := int32(-1), int32(-1)
	vecVLHead, vecVSHead := int32(-1), int32(-1)
	branch := int32(-1)

	for i := 0; i < n; i++ {
		op := &blk.Ops[i]
		m := &opMetaTab[op.Opcode]
		ii := int32(i)
		nd := &nodes[i]
		*nd = fnode{unit: m.unit, pseudo: m.pseudo, vector: m.vector, lat: m.lat, succHead: -1}

		if m.setvl {
			if op.UseImm {
				vl = int(op.Imm)
			} else {
				vl = isa.MaxVL // unknown at compile time: assume the maximum
			}
		}
		if m.vector {
			nd.vl = int32(vl)
		}
		rate := rateC
		if m.vmem {
			rate = rateM
		}
		nd.occ, nd.tlw = fastDescriptors(m, rate, vl)

		// Flow dependences on register sources.
		for _, r := range op.Src {
			cl := int(r.Class)
			if d, ok := s.lastDef[cl].get(r.ID); ok {
				s.addEdge(d, ii, flowLat(&nodes[d], nd, opts))
			}
			head := int32(-1)
			if h, ok := s.readHead[cl].get(r.ID); ok {
				head = h
			}
			s.list = append(s.list, listNode{val: ii, next: head})
			s.readHead[cl].set(r.ID, int32(len(s.list))-1)
		}
		// Implicit dependences on the VL/VS special registers.
		if m.vector && lastSetVL >= 0 {
			s.addEdge(lastSetVL, ii, nodes[lastSetVL].lat)
		}
		if m.vmem && lastSetVS >= 0 {
			s.addEdge(lastSetVS, ii, nodes[lastSetVS].lat)
		}
		if m.vector {
			s.list = append(s.list, listNode{val: ii, next: vecVLHead})
			vecVLHead = int32(len(s.list)) - 1
		}
		if m.vmem {
			s.list = append(s.list, listNode{val: ii, next: vecVSHead})
			vecVSHead = int32(len(s.list)) - 1
		}
		if m.setvl {
			for e := vecVLHead; e >= 0; e = s.list[e].next {
				v := s.list[e].val
				s.addEdge(v, ii, antiLat(&nodes[v]))
			}
			if lastSetVL >= 0 {
				s.addEdge(lastSetVL, ii, 1)
			}
			vecVLHead = -1
			lastSetVL = ii
		}
		if m.setvs {
			for e := vecVSHead; e >= 0; e = s.list[e].next {
				v := s.list[e].val
				s.addEdge(v, ii, antiLat(&nodes[v]))
			}
			if lastSetVS >= 0 {
				s.addEdge(lastSetVS, ii, 1)
			}
			vecVSHead = -1
			lastSetVS = ii
		}

		// Memory dependences: conservative ordering between accesses that
		// may alias, unless both are loads. Stores must complete before a
		// dependent load issues.
		if m.mem {
			alias := int32(op.Alias)
			for k := range s.mems {
				mr := &s.mems[k]
				if !(mr.alias == 0 || alias == 0 || mr.alias == alias) || (!mr.store && !m.store) {
					continue
				}
				lat := int32(1)
				if mr.store && !m.store {
					lat = nodes[mr.idx].tlw // store -> load: full write-back
				}
				s.addEdge(mr.idx, ii, lat)
			}
			s.mems = append(s.mems, memRec{idx: ii, alias: alias, store: m.store})
		}

		// Anti and output dependences on destinations.
		for _, r := range op.Dst {
			cl := int(r.Class)
			if h, ok := s.readHead[cl].get(r.ID); ok {
				for e := h; e >= 0; e = s.list[e].next {
					s.addEdge(s.list[e].val, ii, antiLat(&nodes[s.list[e].val]))
				}
			}
			if d, ok := s.lastDef[cl].get(r.ID); ok {
				s.addEdge(d, ii, outLat(&nodes[d], nd))
			}
			s.lastDef[cl].set(r.ID, ii)
			s.readHead[cl].set(r.ID, -1)
		}

		if m.branch {
			branch = ii
		}
	}

	// No operation may issue after the block's branch.
	if branch >= 0 {
		for i := int32(0); i < int32(n); i++ {
			if i != branch && !nodes[i].pseudo {
				s.addEdge(i, branch, 0)
			}
		}
	}
	return vl
}

// scheduleBlock is the fast counterpart of refScheduleBlock; it must make
// exactly the same placement decisions (see the file comment).
func (s *schedScratch) scheduleBlock(blk *ir.Block, f *ir.Func, cfg *machine.Config, vlIn int, opts Options) (*BlockSched, int, error) {
	vlOut := s.buildGraph(blk, &f.NumRegs, cfg, vlIn, opts)
	bs := &BlockSched{Block: blk, Ops: make([]OpSched, len(blk.Ops))}
	n := len(s.nodes)
	if n == 0 {
		return bs, vlOut, nil
	}
	nodes := s.nodes
	edges := s.edges

	// Longest path to the end of the block (critical-path priority), or
	// plain source order under the ablation option.
	prio := growI32(&s.prio, n)
	if opts.SourceOrderPriority {
		for i := 0; i < n; i++ {
			prio[i] = int32(n - i)
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			nd := &nodes[i]
			p := nd.tlw
			for e := nd.succHead; e >= 0; e = edges[e].next {
				if q := edges[e].lat + prio[edges[e].to]; q > p {
					p = q
				}
			}
			prio[i] = p
		}
	}

	s.res.reset()
	// Per-node scheduling state packs the remaining in-degree (high 32
	// bits) over the ready cycle (low 32 bits), with doneBit marking an
	// issued node: a node is issueable at cycle c exactly when
	// state <= c, one comparison in the hot scan.
	const doneBit = int64(1) << 62
	if cap(s.state) < n {
		s.state = make([]int64, n)
	}
	state := s.state[:n]
	cand := s.cand[:0]
	remaining := 0
	// Pseudo-operations are placed immediately at cycle 0 and consume
	// nothing. Their successor edges are never released (the reference
	// never issues them either); pseudo ops carry no registers, so in
	// valid IR they have no successors.
	for i := 0; i < n; i++ {
		state[i] = int64(nodes[i].indeg) << 32
		if nodes[i].pseudo {
			state[i] = doneBit
			bs.Ops[i] = OpSched{Index: i, Unit: isa.UnitNone}
			continue
		}
		cand = append(cand, int32(i))
		remaining++
	}
	// Pre-order the candidates by (priority desc, index asc). The
	// reference gathers ready ops in index order and stable-insertion-
	// sorts them by descending priority every cycle; priorities are fixed
	// per block, so that per-cycle sort always lands on this one total
	// order. Gathering in this order makes every cycle's ready list come
	// out already sorted.
	cand = s.orderByPriority(cand, prio)

	// Fold the configuration's unit mapping and instance counts into flat
	// tables so the issue loop skips the per-op switches.
	var unitFold [numUnitClasses]isa.Unit
	var unitCount [numUnitClasses]int
	for u := 0; u < numUnitClasses; u++ {
		unitFold[u] = cfg.UnitFor(isa.Unit(u))
		unitCount[u] = cfg.Units(unitFold[u])
	}
	issueWidth := cfg.Issue

	ready := s.ready[:0]
	for cycle := 0; remaining > 0; cycle++ {
		if cycle > maxScheduleCycles {
			s.cand, s.ready = cand, ready
			return nil, 0, fmt.Errorf("schedule did not converge")
		}
		// Gather ready ops in priority order, compacting issued ones out
		// of the candidate list, and track the earliest future ready time.
		ready = ready[:0]
		next := -1
		w := 0
		cyc64 := int64(cycle)
		for _, iv := range cand {
			st := state[iv]
			if st >= doneBit {
				continue // issued: drop from the candidate list
			}
			cand[w] = iv
			w++
			if st <= cyc64 {
				ready = append(ready, iv)
			} else if st < 1<<32 { // in-degree 0, ready in the future
				if r := int(st); next < 0 || r < next {
					next = r
				}
			}
		}
		cand = cand[:w]
		if len(ready) == 0 {
			if next < 0 {
				// No op can ever become ready (only possible with an edge
				// out of a never-issued pseudo op, i.e. invalid IR): the
				// reference spins to the cycle cap and gives up; fail the
				// same way without the spin.
				s.cand, s.ready = cand, ready
				return nil, 0, fmt.Errorf("schedule did not converge")
			}
			// Idle until the earliest ready time. The reference walks
			// these cycles one at a time; nothing can issue in them, so
			// jumping is schedule-identical (the convergence check above
			// still sees the jumped-to cycle).
			cycle = next - 1
			continue
		}
		// failedOcc[u] memoizes this cycle's reserve failures: a failed
		// probe of unit u for occupancy o fails for every occupancy >= o
		// until the cycle ends (reservations only accumulate), so the
		// skipped reprobe is exactly the reference's failing one.
		var failedOcc [numUnitClasses]int32
		for u := range failedOcc {
			failedOcc[u] = 1 << 30
		}
		for _, iv := range ready {
			i := int(iv)
			nd := &nodes[i]
			if !s.res.issueFree(cycle, issueWidth) {
				break // instruction full this cycle
			}
			unit := unitFold[nd.unit]
			if nd.occ >= failedOcc[unit] {
				continue // this cycle already proved the unit full
			}
			idx, ok := s.res.reserve(unit, cycle, int(nd.occ), unitCount[nd.unit])
			if !ok {
				failedOcc[unit] = nd.occ
				continue
			}
			s.res.takeIssue(cycle)
			state[i] = doneBit
			remaining--
			bs.Ops[i] = OpSched{
				Index: i, Cycle: cycle, Unit: unit, UnitIdx: idx,
				VL: int(nd.vl), Occ: int(nd.occ), Tlw: int(nd.tlw),
			}
			if end := cycle + int(nd.tlw); end > bs.Length && !opts.OverlapDrain {
				bs.Length = end
			}
			if cycle+1 > bs.Length {
				bs.Length = cycle + 1
			}
			for e := nd.succHead; e >= 0; e = edges[e].next {
				ed := &edges[e]
				st := state[ed.to]
				if t := cyc64 + int64(ed.lat); t > st&(1<<32-1) {
					st = st&^(1<<32-1) | t
				}
				state[ed.to] = st - 1<<32 // release one in-degree
			}
		}
	}
	s.cand, s.ready = cand, ready

	if opts.SoftwarePipeline {
		// The modulo-schedule II is an ablation-only path off the hot
		// loop; compute it over the reference DAG builder (identical
		// graph by construction) rather than duplicating carried-edge
		// analysis over the arenas.
		g, _ := buildDAG(blk, cfg, vlIn, opts)
		bs.II = computeII(bs, g, cfg)
	}
	return bs, vlOut, nil
}

// orderByPriority returns cand reordered by (priority desc, index asc) —
// the fixed point of the reference's per-cycle stable sort. Priorities are
// small non-negative ints (bounded by the block's critical path), so a
// stable counting sort does it in O(n + maxPrio); a pathological priority
// range (possible only with an absurd SETVL immediate) falls back to
// comparison sort.
func (s *schedScratch) orderByPriority(cand []int32, prio []int32) []int32 {
	maxP := int32(0)
	for _, iv := range cand {
		if prio[iv] > maxP {
			maxP = prio[iv]
		}
	}
	if int(maxP) > 4*len(cand)+1024 {
		sort.Slice(cand, func(a, b int) bool {
			if prio[cand[a]] != prio[cand[b]] {
				return prio[cand[a]] > prio[cand[b]]
			}
			return cand[a] < cand[b]
		})
		return cand
	}
	cnt := growI32(&s.cnt, int(maxP)+1)
	for i := range cnt {
		cnt[i] = 0
	}
	for _, iv := range cand {
		cnt[maxP-prio[iv]]++
	}
	sum := int32(0)
	for k := range cnt {
		c := cnt[k]
		cnt[k] = sum
		sum += c
	}
	out := growI32(&s.sorted, len(cand))
	for _, iv := range cand {
		k := maxP - prio[iv]
		out[cnt[k]] = iv
		cnt[k]++
	}
	s.sorted, s.cand = cand, out // swap the backing arrays
	return out
}
