package sched

import (
	"sort"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
)

// liveSpan is a register's live range as an interval over the linearized
// operation order (block layout order).
type liveSpan struct {
	reg         ir.Reg
	first, last int
	// readFirst records that the register's first textual occurrence is a
	// read — the signature of a loop-carried value (its defining write
	// happens later in the body, so the value crosses the back edge).
	readFirst bool
}

// liveSpans computes loop-aware live ranges. Plain first-to-last textual
// occurrence under-approximates liveness across loop back edges: a value
// defined before a loop and read in the middle of its body is live until
// the *end* of the loop (every iteration re-reads it), and a loop-carried
// value (read before its in-body definition) is live across the whole
// body. Both cases are widened to cover the loop region, iterating to a
// fixed point for nested loops.
//
// This is the fast implementation (checkPressure runs it on every
// ScheduleOpts call): virtual-register lookups go through dense per-class
// index tables (ir.Func.Verify guarantees IDs < NumRegs) instead of a map.
// The retained original is refLiveSpans in reference.go; the differential
// suite holds the two equal on generated programs.
func liveSpans(f *ir.Func) []*liveSpan {
	total := 0
	for _, n := range f.NumRegs {
		total += int(n)
	}
	// backing never reallocates (capacity covers every distinct register),
	// so pointers into it stay valid as spans accumulate.
	backing := make([]liveSpan, 0, total)
	spans := make([]*liveSpan, 0, total)
	var index [5][]int32
	for cl := range index {
		if n := int(f.NumRegs[cl]); n > 0 {
			index[cl] = make([]int32, n)
			for i := range index[cl] {
				index[cl][i] = -1
			}
		}
	}
	touch := func(r ir.Reg, pos int, read bool) {
		tab := index[r.Class]
		if k := tab[r.ID]; k >= 0 {
			backing[k].last = pos
			return
		}
		tab[r.ID] = int32(len(backing))
		backing = append(backing, liveSpan{reg: r, first: pos, last: pos, readFirst: read})
		spans = append(spans, &backing[len(backing)-1])
	}

	// Linearize and collect raw spans.
	blockStart := make([]int, len(f.Blocks))
	blockEnd := make([]int, len(f.Blocks))
	pos := 0
	for bi, blk := range f.Blocks {
		blockStart[bi] = pos
		for i := range blk.Ops {
			op := &blk.Ops[i]
			for _, r := range op.Src {
				touch(r, pos, true)
			}
			for _, r := range op.Dst {
				touch(r, pos, false)
			}
			pos++
		}
		blockEnd[bi] = pos - 1
	}

	// Loop regions from back edges (branch targets at or before the
	// branching block).
	type region struct{ s, e int }
	var loops []region
	for bi, blk := range f.Blocks {
		for i := range blk.Ops {
			op := &blk.Ops[i]
			if opMetaTab[op.Opcode].branch && op.Opcode != isa.HALT &&
				op.Target <= bi && op.Target < len(f.Blocks) {
				loops = append(loops, region{s: blockStart[op.Target], e: blockEnd[bi]})
			}
		}
	}

	// Widen to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, s := range spans {
			for _, l := range loops {
				if s.last < l.s || s.first > l.e {
					continue // no intersection
				}
				liveThrough := s.first < l.s             // defined before, used inside
				carried := s.readFirst && s.first >= l.s // loop-carried within this body
				if liveThrough || carried {
					if s.last < l.e {
						s.last = l.e
						changed = true
					}
					if carried && s.first > l.s {
						s.first = l.s
						changed = true
					}
				}
			}
		}
	}

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].first != spans[j].first {
			return spans[i].first < spans[j].first
		}
		if spans[i].reg.Class != spans[j].reg.Class {
			return spans[i].reg.Class < spans[j].reg.Class
		}
		return spans[i].reg.ID < spans[j].reg.ID
	})
	return spans
}
