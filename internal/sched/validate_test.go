package sched

import (
	"strings"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// victimFunc builds a one-block function with six independent ADDs (all
// reading the same constant, each writing a fresh register) — enough
// parallelism that VLIW-2w spreads them over several cycles with both
// integer units busy, giving the corruption tests same-cycle and
// cross-cycle op pairs to work with. The builder appends the HALT.
func victimFunc() *ir.Func {
	b := ir.NewBuilder("victim")
	x := b.Const(7)
	for i := 0; i < 6; i++ {
		b.Add(x, x)
	}
	return b.Func()
}

// victimSched schedules a fresh victim function (each corruption test
// mutates its own schedule).
func victimSched(t *testing.T) *FuncSched {
	t.Helper()
	fs, err := Schedule(victimFunc(), &machine.VLIW2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Validate(); err != nil {
		t.Fatalf("pristine schedule rejected: %v", err)
	}
	return fs
}

// addIndices returns the block indices of the ADD operations, in issue
// order (earliest cycle first).
func addIndices(bs *BlockSched) []int {
	var idx []int
	for i := range bs.Block.Ops {
		if bs.Block.Ops[i].Opcode == isa.ADD {
			idx = append(idx, i)
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && bs.Ops[idx[j]].Cycle < bs.Ops[idx[j-1]].Cycle; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// mustReject asserts that the (corrupted) schedule fails validation with
// an error mentioning substr.
func mustReject(t *testing.T, fs *FuncSched, substr, what string) {
	t.Helper()
	err := fs.Validate()
	if err == nil {
		t.Fatalf("%s: corrupted schedule passed validation", what)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("%s: error %q does not mention %q", what, err, substr)
	}
}

// TestValidateRejectsDependenceViolation moves a consumer to its
// producer's cycle, breaking the flow-latency edge from the constant's
// MOVI to the ADDs.
func TestValidateRejectsDependenceViolation(t *testing.T) {
	fs := victimSched(t)
	bs := fs.Blocks[0]
	adds := addIndices(bs)
	// The MOVI defining the shared source issues before every ADD; pulling
	// an ADD onto its cycle violates the flow latency.
	movi := -1
	for i := range bs.Block.Ops {
		if bs.Block.Ops[i].Opcode == isa.MOVI {
			movi = i
			break
		}
	}
	if movi < 0 {
		t.Fatal("victim function has no MOVI")
	}
	bs.Ops[adds[0]].Cycle = bs.Ops[movi].Cycle
	mustReject(t, fs, "violates dependence", "dependence violation")
}

// TestValidateRejectsIssueOverSubscription piles every ADD onto one cycle
// of the 2-issue machine.
func TestValidateRejectsIssueOverSubscription(t *testing.T) {
	fs := victimSched(t)
	bs := fs.Blocks[0]
	adds := addIndices(bs)
	last := bs.Ops[adds[len(adds)-1]].Cycle
	for _, i := range adds {
		bs.Ops[i].Cycle = last
	}
	mustReject(t, fs, "issues", "issue over-subscription")
}

// TestValidateRejectsUnitDoubleBooking points two same-cycle ADDs at the
// same integer-unit instance (issue width stays respected, so only the
// reservation audit can catch it).
func TestValidateRejectsUnitDoubleBooking(t *testing.T) {
	fs := victimSched(t)
	bs := fs.Blocks[0]
	adds := addIndices(bs)
	a, b := -1, -1
	for i := 0; i < len(adds) && a < 0; i++ {
		for j := i + 1; j < len(adds); j++ {
			if bs.Ops[adds[i]].Cycle == bs.Ops[adds[j]].Cycle {
				a, b = adds[i], adds[j]
				break
			}
		}
	}
	if a < 0 {
		t.Fatal("no same-cycle ADD pair; victim function too small for the config")
	}
	bs.Ops[b].UnitIdx = bs.Ops[a].UnitIdx
	mustReject(t, fs, "share", "unit double-booking")
}

// TestValidateRejectsDescriptorMismatch corrupts a recorded occupancy; the
// auditor re-derives descriptors from the ISA tables.
func TestValidateRejectsDescriptorMismatch(t *testing.T) {
	fs := victimSched(t)
	bs := fs.Blocks[0]
	adds := addIndices(bs)
	bs.Ops[adds[0]].Occ += 3
	mustReject(t, fs, "recorded occ/tlw", "descriptor mismatch")
}

// TestValidateRejectsUnitIndexOutOfRange points an op at a unit instance
// the configuration does not have.
func TestValidateRejectsUnitIndexOutOfRange(t *testing.T) {
	fs := victimSched(t)
	bs := fs.Blocks[0]
	adds := addIndices(bs)
	bs.Ops[adds[0]].UnitIdx = fs.Config.Units(bs.Ops[adds[0]].Unit)
	mustReject(t, fs, "unit index", "unit index out of range")
}

// TestValidateRejectsWrongUnitClass retargets an integer op to the memory
// unit.
func TestValidateRejectsWrongUnitClass(t *testing.T) {
	fs := victimSched(t)
	bs := fs.Blocks[0]
	adds := addIndices(bs)
	bs.Ops[adds[0]].Unit = isa.UnitMem
	mustReject(t, fs, "unit", "wrong unit class")
}

// TestValidateRejectsShortLength shrinks the recorded block length below
// the last write-back.
func TestValidateRejectsShortLength(t *testing.T) {
	fs := victimSched(t)
	bs := fs.Blocks[0]
	bs.Length--
	mustReject(t, fs, "does not cover", "length coverage")
}

// TestScheduleRejectsExcessLivePressure builds a function whose live
// ranges overlap beyond the register file — 65 constants all live into a
// consuming chain on a 64-register machine — and checks that both
// schedulers refuse it with the same error and that the allocator agrees
// (no physical assignment exists).
func TestScheduleRejectsExcessLivePressure(t *testing.T) {
	b := ir.NewBuilder("pressure")
	n := machine.VLIW2.IntRegs + 1
	regs := make([]ir.Reg, n)
	for i := range regs {
		regs[i] = b.Const(int64(i))
	}
	// Consume every constant after all definitions, so all n are live at
	// once.
	acc := regs[0]
	for i := 1; i < n; i++ {
		acc = b.Add(acc, regs[i])
	}
	f := b.Func()

	_, errFast := Schedule(f, &machine.VLIW2)
	if errFast == nil || !strings.Contains(errFast.Error(), "pressure") {
		t.Fatalf("fast scheduler admitted %d live values on a %d-register file: %v",
			n, machine.VLIW2.IntRegs, errFast)
	}
	_, errRef := ReferenceSchedule(f, &machine.VLIW2)
	if errRef == nil || errRef.Error() != errFast.Error() {
		t.Fatalf("reference scheduler error diverges:\n  fast:      %v\n  reference: %v",
			errFast, errRef)
	}
	if _, _, err := Allocate(f, &machine.VLIW2); err == nil {
		t.Fatal("Allocate assigned physical registers to an over-pressured function")
	}
}
