// Package sched is the static VLIW scheduler: the part of the compiler
// that, in the paper's Trimaran/Elcor toolchain, assigns a schedule time
// to each operation "subject to the constraints of data dependence and
// resource availability".
//
// It implements:
//
//   - per-block dependence DAGs (flow, anti and output dependences over
//     virtual registers, alias-class memory dependences, and the implicit
//     dependences through the vector-length and vector-stride registers);
//   - the latency descriptors of the paper's Figure 3: a vector operation
//     of flow latency L on a unit with LN lanes reads its last input at
//     (VL-1)/LN and writes its last output at L + (VL-1)/LN, with the L2
//     port width (in 64-bit words) replacing LN for vector memory;
//   - chaining: a vector operation consuming a vector operand may start
//     L cycles after its producer, as soon as the first elements are
//     available (Section 3.3 of the paper);
//   - cycle-accurate resource reservation: issue slots, functional-unit
//     occupancy (a vector operation occupies its unit for ceil(VL/LN)
//     cycles), L1 ports and the wide L2 vector-cache port;
//   - compile-time vector-length tracking: VL set from an immediate is
//     propagated by data flow; VL set from a register falls back to the
//     architectural maximum (16), as the paper prescribes.
//
// Vector memory operations are always scheduled as stride-one L2 hits;
// the simulator stalls the machine at run time when the assumption fails.
package sched

import (
	"fmt"
	"sync"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// OpSched is the placement of one operation in its block's schedule.
type OpSched struct {
	Index int // position of the op within the block (program order)
	Cycle int // issue cycle relative to block start
	// Unit is the executing unit class after configuration folding (µSIMD
	// ops run on vector units in vector configurations); UnitIdx is the
	// unit instance. Pseudo-operations have Unit isa.UnitNone.
	Unit    isa.Unit
	UnitIdx int
	// VL is the compile-time vector length assumed for this operation
	// (0 for non-vector operations).
	VL int
	// Occ is the number of cycles the operation occupies its unit.
	Occ int
	// Tlw is the full write-back latency (issue-relative cycle at which
	// the last result element is written).
	Tlw int
}

// BlockSched is the schedule of one basic block.
type BlockSched struct {
	Block *ir.Block
	Ops   []OpSched // indexed like Block.Ops
	// Length is the block's execution time in cycles: the schedule drains
	// before control transfers (max of last issue + 1 and last write-back).
	Length int
	// II is the software-pipelining initiation interval for self-loop
	// blocks when the schedule was built with Options.SoftwarePipeline:
	// the cost of each back-to-back re-execution. 0 means not pipelined.
	II int

	// Memoized occupancy profiles ([0] full block, [1] steady state); see
	// Profile. Guarded by profileOnce so concurrent machines sharing the
	// schedule compute each at most once.
	profileOnce [2]sync.Once
	profiles    [2]*Profile

	// Memoized pre-decoded executor sequences for this block, one slot per
	// lowered representation (CodeV2 closures, CodeV3 threaded-code words);
	// see Code. The scheduler is agnostic to their shape (the simulator
	// lowers the block), so the slots are typed any.
	codeOnce [NumCodeSlots]sync.Once
	code     [NumCodeSlots]any
	codeErr  [NumCodeSlots]error
}

// Code memoization slots: each lowered representation of a block gets its
// own slot so machines selecting different engines can share one schedule.
const (
	// CodeV2 holds the closure-slice lowering (sim predecode v2).
	CodeV2 = 0
	// CodeV3 holds the threaded-code word-stream lowering (sim engine v3).
	CodeV3 = 1
	// NumCodeSlots is the number of memoization slots.
	NumCodeSlots = 2
)

// Code returns the block's pre-decoded code for the given slot, building
// it on first use via build and memoizing the result. Concurrent machines
// sharing the schedule lower each block at most once per slot (the same
// single-flight discipline as Profile); the first caller's build wins, so
// all users of a slot must agree on its lowered representation.
func (bs *BlockSched) Code(slot int, build func(*BlockSched) (any, error)) (any, error) {
	bs.codeOnce[slot].Do(func() { bs.code[slot], bs.codeErr[slot] = build(bs) })
	return bs.code[slot], bs.codeErr[slot]
}

// FuncSched is a fully scheduled function for one machine configuration.
type FuncSched struct {
	Func   *ir.Func
	Config *machine.Config
	Blocks []*BlockSched
	// MaxPressure is the maximum register pressure per class, as verified
	// against the configuration's register files.
	MaxPressure [5]int32
	// Opts records the options the schedule was built with (used by
	// Validate).
	Opts Options
}

// Options selects scheduling-model variations for ablation studies (the
// paper's conclusion calls for "more flexible scheduling techniques";
// these knobs quantify two of the design decisions).
type Options struct {
	// NoChaining disables vector chaining: a vector consumer waits for
	// its producer's full write-back instead of starting after the flow
	// latency (Section 3.3 discusses chaining as a register-file design
	// choice).
	NoChaining bool
	// OverlapDrain ends each block at its last issue cycle instead of
	// waiting for the last write-back, modeling a machine/compiler able
	// to overlap the drain of a block with its successor (an optimistic
	// upper bound on software pipelining across back edges).
	OverlapDrain bool
	// SoftwarePipeline computes a modulo-schedule initiation interval for
	// every self-loop block (see pipeline.go); the simulator then charges
	// II instead of the full block length for back-to-back iterations —
	// the "more flexible scheduling techniques" of the paper's
	// conclusion, as a kernel-only timing model.
	SoftwarePipeline bool
	// SourceOrderPriority replaces the critical-path list-scheduling
	// priority with plain program order, quantifying what the heuristic
	// is worth.
	SourceOrderPriority bool
}

// Schedule verifies and schedules f for cfg with default options.
func Schedule(f *ir.Func, cfg *machine.Config) (*FuncSched, error) {
	return ScheduleOpts(f, cfg, Options{})
}

// ScheduleOpts verifies and schedules f for cfg. It fails if f uses
// operations the configuration does not implement, or if its register
// pressure exceeds the configuration's register files (Table 2).
func ScheduleOpts(f *ir.Func, cfg *machine.Config, opts Options) (*FuncSched, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := f.Verify(); err != nil {
		return nil, err
	}
	for _, blk := range f.Blocks {
		for i := range blk.Ops {
			if !cfg.Supports(blk.Ops[i].Opcode) {
				return nil, fmt.Errorf("sched: %s: %s does not implement %s",
					f.Name, cfg.Name, blk.Ops[i].Opcode.Name())
			}
		}
	}
	fs := &FuncSched{Func: f, Config: cfg, Opts: opts}
	pressure, err := checkPressure(f, cfg)
	if err != nil {
		return nil, err
	}
	fs.MaxPressure = pressure

	// The fast scheduler (fast.go) reuses its arenas and reservation
	// tables across the function's blocks; each call gets a private
	// scratch from the pool, so concurrent Compiles never share one.
	sc := scratchPool.Get().(*schedScratch)
	defer scratchPool.Put(sc)

	// Compile-time VL propagated across blocks in layout order (the
	// builders emit SETVL ahead of the loops that use it).
	vl := isa.MaxVL
	for _, blk := range f.Blocks {
		bs, nextVL, err := sc.scheduleBlock(blk, f, cfg, vl, opts)
		if err != nil {
			return nil, fmt.Errorf("sched: %s B%d: %w", f.Name, blk.ID, err)
		}
		fs.Blocks = append(fs.Blocks, bs)
		vl = nextVL
	}
	return fs, nil
}

// vecRate returns the per-cycle element rate of a vector operation on cfg:
// the number of parallel lanes for compute, the L2 port width for memory.
func vecRate(op *ir.Op, cfg *machine.Config) int {
	if op.Opcode.IsVectorMem() {
		return cfg.L2PortWords
	}
	return cfg.Lanes
}

// descriptors computes (occupancy, full write latency) for an operation
// under the compile-time vector length vl, per Figure 3 of the paper.
// A non-positive vl is clamped to 1: (vl-1)/rate would go negative and
// silently shorten the schedule.
func descriptors(op *ir.Op, cfg *machine.Config, vl int) (occ, tlw int) {
	in := op.Info()
	if !in.Vector {
		return 1, in.Lat
	}
	if vl < 1 {
		vl = 1
	}
	rate := vecRate(op, cfg)
	occ = (vl + rate - 1) / rate
	tlw = in.Lat + (vl-1)/rate
	return occ, tlw
}

// maxScheduleCycles bounds the scheduling loop: a block that has not
// fully issued by then is reported as non-converging (both schedulers use
// the same bound, so they fail identically).
const maxScheduleCycles = 1 << 20
