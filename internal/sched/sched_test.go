package sched

import (
	"strings"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/simd"
)

// sched schedules f on cfg, failing the test on error.
func mustSchedule(t *testing.T, f *ir.Func, cfg *machine.Config) *FuncSched {
	t.Helper()
	fs, err := Schedule(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestDescriptorsFigure3(t *testing.T) {
	// Figure 3: scalar op of latency L has Tlw = L; a vector op has
	// Tlw = L + (VL-1)/LN and occupies its unit ceil(VL/LN) cycles.
	cfg := &machine.Vector2x2 // 4 lanes, 4-word L2 port
	scalar := &ir.Op{Opcode: isa.ADD}
	occ, tlw := descriptors(scalar, cfg, 16)
	if occ != 1 || tlw != 1 {
		t.Errorf("scalar: occ=%d tlw=%d, want 1,1", occ, tlw)
	}
	vadd := &ir.Op{Opcode: isa.VADD, Width: simd.W16}
	occ, tlw = descriptors(vadd, cfg, 16)
	if occ != 4 || tlw != 2+15/4 {
		t.Errorf("VADD VL=16: occ=%d tlw=%d, want 4,%d", occ, tlw, 2+15/4)
	}
	occ, tlw = descriptors(vadd, cfg, 8)
	if occ != 2 || tlw != 2+7/4 {
		t.Errorf("VADD VL=8: occ=%d tlw=%d, want 2,%d", occ, tlw, 2+7/4)
	}
	occ, tlw = descriptors(vadd, cfg, 4)
	if occ != 1 || tlw != 2 {
		t.Errorf("VADD VL=4: occ=%d tlw=%d, want 1,2", occ, tlw)
	}
	// Vector memory uses the port width (4 words): VL=8 -> 2-cycle port
	// occupancy, Tlw = 5 + (8-1)/4 = 6.
	vld := &ir.Op{Opcode: isa.VLD}
	occ, tlw = descriptors(vld, cfg, 8)
	if occ != 2 || tlw != 6 {
		t.Errorf("VLD VL=8: occ=%d tlw=%d, want 2,6", occ, tlw)
	}
}

func TestScheduleSimpleChain(t *testing.T) {
	// c = (a + b) * d: MUL must issue at least 1 cycle after ADD.
	b := ir.NewBuilder("chain")
	a := b.Const(1)
	c := b.Const(2)
	s := b.Add(a, c)
	m := b.Mul(s, a)
	b.Store(isa.STD, m, b.Const(int64(ir.DataBase)), 0, 1)
	b.Alloc(8)
	fs := mustSchedule(t, b.Func(), &machine.VLIW2)
	blk := fs.Blocks[0]
	ops := blk.Block.Ops
	var addCyc, mulCyc, stCyc int
	for i := range ops {
		switch ops[i].Opcode {
		case isa.ADD:
			addCyc = blk.Ops[i].Cycle
		case isa.MUL:
			mulCyc = blk.Ops[i].Cycle
		case isa.STD:
			stCyc = blk.Ops[i].Cycle
		}
	}
	if mulCyc < addCyc+1 {
		t.Errorf("MUL at %d, ADD at %d: flow latency violated", mulCyc, addCyc)
	}
	if stCyc < mulCyc+isa.LatMul {
		t.Errorf("STD at %d, MUL at %d: multiply latency %d violated", stCyc, mulCyc, isa.LatMul)
	}
}

func TestIssueWidthLimits(t *testing.T) {
	// Eight independent adds: a 2-issue machine needs >= 4 cycles, an
	// 8-issue machine can do it in 1 (plus drain).
	build := func() *ir.Func {
		b := ir.NewBuilder("wide")
		base := b.Const(0)
		for i := 0; i < 8; i++ {
			b.AddI(base, int64(i))
		}
		return b.Func()
	}
	fs2 := mustSchedule(t, build(), &machine.VLIW2)
	fs8 := mustSchedule(t, build(), &machine.VLIW8)
	// Block 0 holds everything incl. MOVI and HALT.
	if fs2.Blocks[0].Length <= fs8.Blocks[0].Length {
		t.Errorf("2-issue length %d must exceed 8-issue length %d",
			fs2.Blocks[0].Length, fs8.Blocks[0].Length)
	}
	// Count max ops per cycle on the 2-issue schedule.
	perCycle := map[int]int{}
	for i := range fs2.Blocks[0].Ops {
		os := &fs2.Blocks[0].Ops[i]
		if os.Unit != isa.UnitNone {
			perCycle[os.Cycle]++
		}
	}
	for cyc, n := range perCycle {
		if n > 2 {
			t.Errorf("cycle %d has %d ops on a 2-issue machine", cyc, n)
		}
	}
}

func TestL1PortLimit(t *testing.T) {
	// Four independent loads on a machine with 1 L1 port must serialize.
	b := ir.NewBuilder("ports")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(64)
	for i := 0; i < 4; i++ {
		b.Load(isa.LDD, base, int64(8*i), 1)
	}
	fs := mustSchedule(t, b.Func(), &machine.Vector1x2) // 1 L1 port, 2-issue
	cycles := map[int]int{}
	for i := range fs.Blocks[0].Ops {
		os := &fs.Blocks[0].Ops[i]
		if fs.Blocks[0].Block.Ops[i].Opcode == isa.LDD {
			cycles[os.Cycle]++
		}
	}
	for cyc, n := range cycles {
		if n > 1 {
			t.Errorf("cycle %d has %d loads with a single L1 port", cyc, n)
		}
	}
}

func TestVectorChaining(t *testing.T) {
	// VLD -> VSADA chains: the SAD may start L(VLD)=5 cycles after the
	// load, not after the full load completes (Figure 4 of the paper).
	b := ir.NewBuilder("chain")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(16 * 8 * 2)
	b.SetVLI(8)
	b.SetVSI(8)
	v1 := b.Vld(base, 0, 1)
	v2 := b.Vld(base, 64, 1)
	acc := b.Aclr()
	b.Vsada(acc, v1, v2)
	s := b.Vsum(simd.W8, acc)
	b.Store(isa.STD, s, base, 128, 2)
	fs := mustSchedule(t, b.Func(), &machine.Vector2x2)
	blk := fs.Blocks[0]
	var ld2Cyc, sadCyc, sumCyc int
	nld := 0
	for i := range blk.Block.Ops {
		switch blk.Block.Ops[i].Opcode {
		case isa.VLD:
			nld++
			if nld == 2 {
				ld2Cyc = blk.Ops[i].Cycle
			}
		case isa.VSADA:
			sadCyc = blk.Ops[i].Cycle
		case isa.VSUM:
			sumCyc = blk.Ops[i].Cycle
		}
	}
	// Chained: SAD starts exactly 5 cycles after the later load (its
	// other dependences resolve earlier).
	if sadCyc != ld2Cyc+isa.LatVMem {
		t.Errorf("VSADA at %d, second VLD at %d: chaining broken (want +%d)",
			sadCyc, ld2Cyc, isa.LatVMem)
	}
	// VSUM is a scalar consumer: must wait for the SAD's full write-back
	// Tlw = 2 + (8-1)/4 = 3.
	if sumCyc < sadCyc+3 {
		t.Errorf("VSUM at %d, VSADA at %d: full-latency rule broken", sumCyc, sadCyc)
	}
}

func TestVectorUnitOccupancy(t *testing.T) {
	// Two independent VADDs with VL=16 on one vector unit: the second
	// cannot start until the first's 4-cycle occupancy ends.
	b := ir.NewBuilder("occ")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(16 * 8 * 4)
	b.SetVLI(16)
	b.SetVSI(8)
	v1 := b.Vld(base, 0, 1)
	v2 := b.Vld(base, 128, 1)
	s1 := b.V(isa.VADD, simd.W16, v1, v2)
	s2 := b.V(isa.VSUB, simd.W16, v1, v2)
	b.Vst(s1, base, 256, 2)
	b.Vst(s2, base, 384, 3)
	fs := mustSchedule(t, b.Func(), &machine.Vector1x2) // one vector unit
	blk := fs.Blocks[0]
	var cycles []int
	for i := range blk.Block.Ops {
		op := blk.Block.Ops[i].Opcode
		if op == isa.VADD || op == isa.VSUB {
			cycles = append(cycles, blk.Ops[i].Cycle)
			if blk.Ops[i].Occ != 4 {
				t.Errorf("VL=16 on 4 lanes must occupy 4 cycles, got %d", blk.Ops[i].Occ)
			}
		}
	}
	if len(cycles) != 2 {
		t.Fatalf("found %d vector ALU ops", len(cycles))
	}
	d := cycles[1] - cycles[0]
	if d < 0 {
		d = -d
	}
	if d < 4 {
		t.Errorf("vector ops %d cycles apart on a single unit; occupancy requires >= 4", d)
	}
}

func TestSetVLFromRegisterAssumesMax(t *testing.T) {
	b := ir.NewBuilder("vlreg")
	n := b.Const(4)
	base := b.Const(int64(ir.DataBase))
	b.Alloc(256)
	b.SetVL(n) // register: compiler must assume MaxVL=16
	b.SetVSI(8)
	v := b.Vld(base, 0, 1)
	b.Vst(v, base, 128, 2)
	fs := mustSchedule(t, b.Func(), &machine.Vector2x2)
	for i := range fs.Blocks[0].Block.Ops {
		if fs.Blocks[0].Block.Ops[i].Opcode == isa.VLD {
			if got := fs.Blocks[0].Ops[i].VL; got != isa.MaxVL {
				t.Errorf("compile-time VL = %d, want %d", got, isa.MaxVL)
			}
		}
	}
}

func TestVLPropagatesAcrossBlocks(t *testing.T) {
	b := ir.NewBuilder("vlflow")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(1024)
	b.SetVLI(8)
	b.SetVSI(8)
	b.Loop(0, 4, 1, func(iv ir.Reg) {
		v := b.Vld(base, 0, 1)
		b.Vst(v, base, 512, 2)
	})
	fs := mustSchedule(t, b.Func(), &machine.Vector2x2)
	found := false
	for _, bs := range fs.Blocks {
		for i := range bs.Block.Ops {
			if bs.Block.Ops[i].Opcode == isa.VLD {
				found = true
				if bs.Ops[i].VL != 8 {
					t.Errorf("VL in loop block = %d, want 8 (set before the loop)", bs.Ops[i].VL)
				}
			}
		}
	}
	if !found {
		t.Fatal("no VLD found")
	}
}

func TestBranchLast(t *testing.T) {
	b := ir.NewBuilder("br")
	x := b.Const(0)
	b.Loop(0, 10, 1, func(iv ir.Reg) {
		b.BinTo(isa.ADD, x, x, iv)
		b.BinITo(isa.MUL, x, x, 3)
	})
	fs := mustSchedule(t, b.Func(), &machine.VLIW8)
	for _, bs := range fs.Blocks {
		var brCyc = -1
		maxCyc := 0
		for i := range bs.Block.Ops {
			if bs.Block.Ops[i].Opcode.Get().Branch {
				brCyc = bs.Ops[i].Cycle
			}
			if bs.Ops[i].Unit != isa.UnitNone && bs.Ops[i].Cycle > maxCyc {
				maxCyc = bs.Ops[i].Cycle
			}
		}
		if brCyc >= 0 && brCyc != maxCyc {
			t.Errorf("B%d: branch at cycle %d but ops issue up to %d", bs.Block.ID, brCyc, maxCyc)
		}
	}
}

func TestMemoryDependenceOrdering(t *testing.T) {
	// Store then load of the same alias class must not reorder.
	b := ir.NewBuilder("mem")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(64)
	v := b.Const(42)
	b.Store(isa.STD, v, base, 0, 1)
	l := b.Load(isa.LDD, base, 0, 1)
	b.Store(isa.STD, l, base, 8, 1)
	fs := mustSchedule(t, b.Func(), &machine.VLIW8)
	blk := fs.Blocks[0]
	var st0, ld int
	seen := 0
	for i := range blk.Block.Ops {
		switch blk.Block.Ops[i].Opcode {
		case isa.STD:
			if seen == 0 {
				st0 = blk.Ops[i].Cycle
			}
			seen++
		case isa.LDD:
			ld = blk.Ops[i].Cycle
		}
	}
	if ld <= st0 {
		t.Errorf("load at %d not after store at %d", ld, st0)
	}
}

func TestDistinctAliasClassesReorder(t *testing.T) {
	// A store and a load in different alias classes are independent; the
	// scheduler may overlap them (both in cycle <= 1 on a wide machine).
	b := ir.NewBuilder("alias")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(64)
	v := b.Const(42)
	b.Store(isa.STD, v, base, 0, 1)
	b.Load(isa.LDD, base, 32, 2)
	fs := mustSchedule(t, b.Func(), &machine.VLIW8) // 3 L1 ports
	blk := fs.Blocks[0]
	var st, ld int
	for i := range blk.Block.Ops {
		switch blk.Block.Ops[i].Opcode {
		case isa.STD:
			st = blk.Ops[i].Cycle
		case isa.LDD:
			ld = blk.Ops[i].Cycle
		}
	}
	if ld > st {
		t.Errorf("independent load (cycle %d) needlessly ordered after store (cycle %d)", ld, st)
	}
}

func TestUnsupportedOpcodeRejected(t *testing.T) {
	b := ir.NewBuilder("bad")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(128)
	b.SetVLI(8)
	b.SetVSI(8)
	v := b.Vld(base, 0, 1)
	b.Vst(v, base, 64, 2)
	if _, err := Schedule(b.Func(), &machine.USIMD2); err == nil {
		t.Fatal("µSIMD machine must reject vector operations")
	}
	b2 := ir.NewBuilder("bad2")
	m := b2.Ldm(b2.Const(int64(ir.DataBase)), 0, 1)
	b2.Stm(m, b2.Const(int64(ir.DataBase)), 8, 1)
	b2.Alloc(16)
	if _, err := Schedule(b2.Func(), &machine.VLIW2); err == nil {
		t.Fatal("plain VLIW must reject µSIMD operations")
	}
}

func TestRegisterPressureRejected(t *testing.T) {
	// 30 simultaneously-live vector registers exceed the 20-entry file of
	// Vector2-2w.
	b := ir.NewBuilder("pressure")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(4096)
	b.SetVLI(8)
	b.SetVSI(8)
	var vs []ir.Reg
	for i := 0; i < 30; i++ {
		vs = append(vs, b.Vld(base, int64(i*64), 1))
	}
	acc := b.Aclr()
	for i := 0; i+1 < len(vs); i += 2 {
		b.Vsada(acc, vs[i], vs[i+1])
	}
	f := b.Func()
	if _, err := Schedule(f, &machine.Vector2x2); err == nil {
		t.Fatal("expected register-pressure error on Vector2-2w (20 vector regs)")
	}
	if _, err := Schedule(f, &machine.Vector2x4); err != nil {
		t.Fatalf("Vector2-4w (32 vector regs) must accept: %v", err)
	}
}

func TestMaxPressureReported(t *testing.T) {
	b := ir.NewBuilder("p")
	x := b.Const(1)
	y := b.Const(2)
	z := b.Add(x, y)
	b.Store(isa.STD, z, b.Const(int64(ir.DataBase)), 0, 1)
	b.Alloc(8)
	fs := mustSchedule(t, b.Func(), &machine.VLIW2)
	if fs.MaxPressure[isa.RegInt] < 2 {
		t.Errorf("int pressure = %d, want >= 2", fs.MaxPressure[isa.RegInt])
	}
}

func TestScheduleDeterministic(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("det")
		base := b.Const(int64(ir.DataBase))
		b.Alloc(1024)
		b.SetVLI(16)
		b.SetVSI(8)
		for i := 0; i < 4; i++ {
			v1 := b.Vld(base, int64(i*128), 1)
			v2 := b.VShiftI(isa.VSRA, simd.W16, v1, 2)
			b.Vst(v2, base, int64(512+i*128), 2)
		}
		return b.Func()
	}
	a := mustSchedule(t, build(), &machine.Vector2x4)
	c := mustSchedule(t, build(), &machine.Vector2x4)
	for i := range a.Blocks {
		if a.Blocks[i].Length != c.Blocks[i].Length {
			t.Fatalf("nondeterministic block length at B%d", i)
		}
		for j := range a.Blocks[i].Ops {
			if a.Blocks[i].Ops[j].Cycle != c.Blocks[i].Ops[j].Cycle {
				t.Fatalf("nondeterministic cycle at B%d op %d", i, j)
			}
		}
	}
}

func TestDumpRendersGrid(t *testing.T) {
	b := ir.NewBuilder("dump")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(256)
	b.SetVLI(8)
	b.SetVSI(8)
	v1 := b.Vld(base, 0, 1)
	v2 := b.Vld(base, 64, 1)
	acc := b.Aclr()
	b.Vsada(acc, v1, v2)
	s := b.Vsum(simd.W8, acc)
	b.Store(isa.STD, s, base, 128, 2)
	fs := mustSchedule(t, b.Func(), &machine.Vector2x2)
	out := fs.Blocks[0].Dump(&machine.Vector2x2)
	for _, want := range []string{"IALU0", "VALU0", "pL2_0", "vld", "vsada", "block length"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyBlockScheduled(t *testing.T) {
	b := ir.NewBuilder("empty")
	b.NewBlock() // empty block in the middle
	blk := b.NewBlock()
	b.SetBlock(blk)
	b.Const(1)
	fs := mustSchedule(t, b.Func(), &machine.VLIW2)
	if fs.Blocks[1].Length != 0 {
		t.Errorf("empty block length = %d, want 0", fs.Blocks[1].Length)
	}
}

func TestDrainIncludesWriteback(t *testing.T) {
	// A lone µSIMD op (latency 2) at the end of a block extends the block
	// beyond its issue cycle: length = issue + 2.
	b := ir.NewBuilder("drain")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(32)
	m := b.Ldm(base, 0, 1)
	b.P(isa.PADD, simd.W8, m, m)
	f := b.Func()
	fs := mustSchedule(t, f, &machine.USIMD2)
	blk := fs.Blocks[0]
	var padd OpSched
	for i := range blk.Block.Ops {
		if blk.Block.Ops[i].Opcode == isa.PADD {
			padd = blk.Ops[i]
		}
	}
	if blk.Length < padd.Cycle+isa.LatSIMD {
		t.Errorf("length %d does not cover PADD write-back at %d", blk.Length, padd.Cycle+isa.LatSIMD)
	}
}

func TestValidateAcceptsProducedSchedules(t *testing.T) {
	// The independent auditor must accept everything the scheduler emits.
	builds := []func() *ir.Func{
		func() *ir.Func {
			b := ir.NewBuilder("mix")
			base := b.Const(int64(ir.DataBase))
			b.Alloc(4096)
			b.SetVLI(12)
			b.SetVSI(8)
			v1 := b.Vld(base, 0, 1)
			v2 := b.Vld(base, 128, 1)
			acc := b.Aclr()
			b.Vsada(acc, v1, v2)
			s := b.Vsum(simd.W8, acc)
			b.Store(isa.STD, s, base, 512, 2)
			b.Loop(0, 8, 1, func(iv ir.Reg) {
				x := b.Load(isa.LDD, base, 1024, 3)
				b.Store(isa.STD, b.Add(x, iv), base, 1032, 3)
			})
			return b.Func()
		},
		func() *ir.Func {
			b := ir.NewBuilder("scalar")
			x := b.Const(1)
			b.Loop(0, 20, 1, func(iv ir.Reg) {
				b.BinTo(isa.MUL, x, x, iv)
				b.IfElse(isa.BLT, x, iv, func() { b.BinITo(isa.ADD, x, x, 3) }, nil)
			})
			b.Store(isa.STD, x, b.Const(int64(ir.DataBase)), 0, 1)
			b.Alloc(8)
			return b.Func()
		},
	}
	for _, build := range builds {
		for _, cfg := range machine.All() {
			f := build()
			fs, err := Schedule(f, cfg)
			if err != nil {
				// ISA-mismatch is fine (vector code on scalar machines).
				continue
			}
			if err := fs.Validate(); err != nil {
				t.Errorf("%s on %s: %v", f.Name, cfg.Name, err)
			}
		}
	}
}

func TestValidateWithAblationOptions(t *testing.T) {
	b := ir.NewBuilder("opts")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(1024)
	b.SetVLI(16)
	b.SetVSI(8)
	v1 := b.Vld(base, 0, 1)
	v2 := b.V(isa.VADD, simd.W16, v1, v1)
	b.Vst(v2, base, 512, 2)
	f := b.Func()
	for _, opts := range []Options{
		{},
		{NoChaining: true},
		{OverlapDrain: true},
		{NoChaining: true, OverlapDrain: true},
	} {
		fs, err := ScheduleOpts(f, &machine.Vector2x2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Validate(); err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}

func TestNoChainingDelaysConsumers(t *testing.T) {
	build := func(opts Options) *FuncSched {
		b := ir.NewBuilder("chain")
		base := b.Const(int64(ir.DataBase))
		b.Alloc(1024)
		b.SetVLI(16)
		b.SetVSI(8)
		v1 := b.Vld(base, 0, 1)
		v2 := b.V(isa.VADD, simd.W16, v1, v1)
		b.Vst(v2, base, 512, 2)
		fs, err := ScheduleOpts(b.Func(), &machine.Vector2x2, opts)
		if err != nil {
			panic(err)
		}
		return fs
	}
	with := build(Options{})
	without := build(Options{NoChaining: true})
	if without.Blocks[0].Length <= with.Blocks[0].Length {
		// VLD(VL=16) full write-back is 5+15/4=8 vs chained start at 5.
		t.Errorf("no-chaining schedule (%d cycles) not longer than chained (%d)",
			without.Blocks[0].Length, with.Blocks[0].Length)
	}
}

func TestOverlapDrainShortensBlocks(t *testing.T) {
	b := ir.NewBuilder("drain")
	base := b.Const(int64(ir.DataBase))
	b.Alloc(1024)
	b.SetVLI(16)
	b.SetVSI(8)
	v := b.Vld(base, 0, 1)
	b.Vst(v, base, 512, 2)
	f := b.Func()
	normal, err := ScheduleOpts(f, &machine.Vector2x2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := ScheduleOpts(f, &machine.Vector2x2, Options{OverlapDrain: true})
	if err != nil {
		t.Fatal(err)
	}
	if overlap.Blocks[0].Length >= normal.Blocks[0].Length {
		t.Errorf("overlap-drain (%d) not shorter than drained (%d)",
			overlap.Blocks[0].Length, normal.Blocks[0].Length)
	}
	if err := overlap.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSoftwarePipelineComputesII(t *testing.T) {
	// A vector copy loop: per iteration 2 VLDs + 1 VST on a single L2
	// port (occupancy 4 each at VL=16) bound II to ~12, far below the
	// drained block length.
	build := func() *ir.Func {
		b := ir.NewBuilder("pipe")
		base := b.Const(int64(ir.DataBase))
		b.Alloc(8192)
		b.SetVLI(16)
		b.SetVSI(8)
		p := b.Mov(base)
		q := b.AddI(base, 4096)
		b.Loop(0, 16, 1, func(ir.Reg) {
			v1 := b.Vld(p, 0, 1)
			v2 := b.Vld(p, 128, 1)
			b.Vst(b.V(isa.VADD, simd.W16, v1, v2), q, 0, 2)
			b.BinITo(isa.ADD, p, p, 256)
			b.BinITo(isa.ADD, q, q, 128)
		})
		return b.Func()
	}
	plain, err := ScheduleOpts(build(), &machine.Vector2x2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := ScheduleOpts(build(), &machine.Vector2x2, Options{SoftwarePipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	var loop *BlockSched
	for _, bs := range piped.Blocks {
		if bs.II > 0 {
			loop = bs
		}
	}
	if loop == nil {
		t.Fatal("no block was pipelined")
	}
	if loop.II >= loop.Length {
		t.Fatalf("II %d not below block length %d", loop.II, loop.Length)
	}
	// The L2 port occupancy (3 vector mem ops x 4 cycles) bounds II >= 12.
	if loop.II < 12 {
		t.Fatalf("II %d below the L2-port resource bound of 12", loop.II)
	}
	// Plain schedules never set II.
	for _, bs := range plain.Blocks {
		if bs.II != 0 {
			t.Fatal("II set without SoftwarePipeline")
		}
	}
}

func TestSoftwarePipelineRespectsRecurrences(t *testing.T) {
	// A loop whose body is one long dependent chain through a carried
	// register cannot overlap: II must be >= the chain latency.
	b := ir.NewBuilder("serial")
	x := b.Const(1)
	b.Loop(0, 8, 1, func(ir.Reg) {
		b.BinITo(isa.MUL, x, x, 3) // 3-cycle latency, carried
		b.BinITo(isa.MUL, x, x, 5)
		b.BinITo(isa.MUL, x, x, 7)
	})
	b.Store(isa.STD, x, b.Const(int64(ir.DataBase)), 0, 1)
	b.Alloc(8)
	fs, err := ScheduleOpts(b.Func(), &machine.VLIW8, Options{SoftwarePipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range fs.Blocks {
		if bs.II > 0 && bs.II < 3*isa.LatMul {
			t.Fatalf("II %d violates the 3-multiply carried chain (%d)", bs.II, 3*isa.LatMul)
		}
	}
}

func TestSourceOrderPriorityNotFaster(t *testing.T) {
	// The critical-path heuristic must be at least as good as source
	// order on a latency-diverse block.
	build := func() *ir.Func {
		b := ir.NewBuilder("prio")
		base := b.Const(int64(ir.DataBase))
		b.Alloc(128)
		// A long multiply chain plus independent cheap work.
		x := b.Const(3)
		for i := 0; i < 6; i++ {
			x = b.MulI(x, 7)
		}
		for i := 0; i < 10; i++ {
			b.Store(isa.STB, b.Const(int64(i)), base, int64(i), 1)
		}
		b.Store(isa.STD, x, base, 64, 2)
		return b.Func()
	}
	cp, err := ScheduleOpts(build(), &machine.VLIW4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	so, err := ScheduleOpts(build(), &machine.VLIW4, Options{SourceOrderPriority: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := so.Validate(); err != nil {
		t.Fatal(err)
	}
	if cp.Blocks[0].Length > so.Blocks[0].Length {
		t.Errorf("critical-path schedule (%d) worse than source order (%d)",
			cp.Blocks[0].Length, so.Blocks[0].Length)
	}
}

func TestLoopRegBuilder(t *testing.T) {
	b := ir.NewBuilder("loopreg")
	out := b.Alloc(8)
	n := b.Const(7)
	sum := b.Const(0)
	b.LoopReg(n, func(iv ir.Reg) {
		b.BinTo(isa.ADD, sum, sum, iv)
	})
	b.Store(isa.STD, sum, b.Const(out), 0, 1)
	fs := mustSchedule(t, b.Func(), &machine.VLIW2)
	if err := fs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorsClampNonPositiveVL(t *testing.T) {
	// (vl-1)/rate on a non-positive vl would go negative and silently
	// shorten the schedule; descriptors must clamp to vl=1.
	cfg := &machine.Vector2x2
	vadd := &ir.Op{Opcode: isa.VADD, Width: simd.W16}
	wantOcc, wantTlw := descriptors(vadd, cfg, 1)
	for _, vl := range []int{0, -7} {
		occ, tlw := descriptors(vadd, cfg, vl)
		if occ != wantOcc || tlw != wantTlw {
			t.Errorf("vl=%d: occ=%d tlw=%d, want %d,%d", vl, occ, tlw, wantOcc, wantTlw)
		}
	}
	vld := &ir.Op{Opcode: isa.VLD}
	wantOcc, wantTlw = descriptors(vld, cfg, 1)
	if occ, tlw := descriptors(vld, cfg, 0); occ != wantOcc || tlw != wantTlw {
		t.Errorf("VLD vl=0: occ=%d tlw=%d, want %d,%d", occ, tlw, wantOcc, wantTlw)
	}
}
