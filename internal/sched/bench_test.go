package sched_test

// Scheduling-throughput benchmarks, tracked in BENCH_*.json via
// cmd/benchjson (the `sched_ops_s` headline lifts BenchmarkSchedule's
// sched_ops/s metric). BenchmarkSchedule matches the root package's
// BenchmarkScheduler workload — jpeg_enc (the application with the largest
// basic blocks) in its µSIMD variant on the 4-issue µSIMD machine — so the
// numbers stay comparable across commits; BenchmarkScheduleReference runs
// the retained original scheduler on the same workload, making the fast
// path's speedup a one-line diff in the JSON.

import (
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sched"
)

// BenchmarkSchedule measures the fast scheduler (the production path).
func BenchmarkSchedule(b *testing.B) {
	a, err := apps.ByName("jpeg_enc")
	if err != nil {
		b.Fatal(err)
	}
	built := a.Build(kernels.USIMD)
	ops := built.Func.NumOps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(built.Func, &machine.USIMD4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "sched_ops/s")
}

// BenchmarkScheduleVector is the same measurement on the vector variant
// and a vector machine, where multi-cycle unit occupancy (ceil(VL/lanes))
// stresses the reservation tables hardest.
func BenchmarkScheduleVector(b *testing.B) {
	a, err := apps.ByName("jpeg_enc")
	if err != nil {
		b.Fatal(err)
	}
	built := a.Build(kernels.Vector)
	ops := built.Func.NumOps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(built.Func, &machine.Vector2x4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "sched_ops/s")
}

// BenchmarkScheduleReference runs the retained original scheduler on the
// BenchmarkSchedule workload; the ratio of the two sched_ops/s metrics is
// the fast path's speedup.
func BenchmarkScheduleReference(b *testing.B) {
	a, err := apps.ByName("jpeg_enc")
	if err != nil {
		b.Fatal(err)
	}
	built := a.Build(kernels.USIMD)
	ops := built.Func.NumOps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ReferenceSchedule(built.Func, &machine.USIMD4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "sched_ops/s")
}
