package sched

import (
	"fmt"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// Allocate maps the virtual registers of f onto the physical register
// files of cfg (Table 2) with a linear-scan allocator over the same
// linearized live ranges the pressure checker uses, and returns a new
// function with every register rewritten. Because live ranges are
// intervals on the layout order, greedy assignment by start point needs
// exactly max-overlap (the measured pressure) registers, so Allocate
// succeeds whenever the pressure check does.
//
// The allocated function computes bit-identical results (renaming does
// not change dataflow: each virtual interval gets one physical register
// for its whole lifetime). The evaluation schedules the virtual-register
// form — like the paper's Trimaran flow, where scheduling runs before
// register assignment — and uses Allocate as the lowering/validation
// step.
func Allocate(f *ir.Func, cfg *machine.Config) (*ir.Func, [5]int32, error) {
	spans := liveSpans(f)

	// Per-class free lists (min-heap behaviour via sorted slice is fine at
	// these sizes) and expiry queues.
	type active struct {
		last int
		phys int32
	}
	free := map[isa.RegClass][]int32{}
	inUse := map[isa.RegClass][]active{}
	assign := map[ir.Reg]int32{}
	var used [5]int32

	for _, s := range spans {
		class := s.reg.Class
		// Expire finished intervals.
		keep := inUse[class][:0]
		for _, a := range inUse[class] {
			if a.last < s.first {
				free[class] = append(free[class], a.phys)
			} else {
				keep = append(keep, a)
			}
		}
		inUse[class] = keep

		var phys int32
		if fl := free[class]; len(fl) > 0 {
			// Lowest-numbered free register (keeps the mapping tidy).
			min := 0
			for i := range fl {
				if fl[i] < fl[min] {
					min = i
				}
			}
			phys = fl[min]
			free[class] = append(fl[:min], fl[min+1:]...)
		} else {
			phys = used[class]
			used[class]++
			limit := cfg.Regs(class)
			if limit > 0 && int(used[class]) > limit {
				return nil, used, fmt.Errorf("sched: %s: %s register demand %d exceeds the %d-entry file of %s",
					f.Name, class, used[class], limit, cfg.Name)
			}
		}
		assign[s.reg] = phys
		inUse[class] = append(inUse[class], active{last: s.last, phys: phys})
	}

	// Rewrite.
	out := &ir.Func{
		Name:     f.Name,
		DataSize: f.DataSize,
		DataInit: f.DataInit,
		NumRegs:  used,
	}
	remap := func(rs []ir.Reg) []ir.Reg {
		if rs == nil {
			return nil
		}
		mapped := make([]ir.Reg, len(rs))
		for i, r := range rs {
			mapped[i] = ir.Reg{Class: r.Class, ID: assign[r]}
		}
		return mapped
	}
	for _, blk := range f.Blocks {
		nb := &ir.Block{ID: blk.ID, Ops: make([]ir.Op, len(blk.Ops))}
		for i := range blk.Ops {
			op := blk.Ops[i]
			op.Dst = remap(op.Dst)
			op.Src = remap(op.Src)
			nb.Ops[i] = op
		}
		out.Blocks = append(out.Blocks, nb)
	}
	if err := out.Verify(); err != nil {
		return nil, used, fmt.Errorf("sched: allocation produced invalid IR: %w", err)
	}
	return out, used, nil
}
