package sched

import (
	"fmt"
	"reflect"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/progen"
)

// This file is the scheduler's differential proof: every generated program
// is scheduled by both the fast path (ScheduleOpts, fast.go) and the
// retained original (ReferenceScheduleOpts, reference.go), and the two
// results must be identical in every observable field — cycle assignment,
// unit and slot placement, block lengths, initiation intervals, register
// pressure, live spans (the register allocator's only input), and the
// derived Profile reservation tables. Error behaviour must match too: both
// schedulers reject the same programs with the same message.

// diffCfgs and diffOpts are the configuration/option matrix the
// differential tests rotate through: a narrow and a wide vector machine,
// and option sets covering every scheduling-model knob.
var diffCfgs = []*machine.Config{&machine.Vector1x2, &machine.Vector2x4}

var diffOpts = []Options{
	{},
	{NoChaining: true, SourceOrderPriority: true},
	{OverlapDrain: true, SoftwarePipeline: true},
	{SoftwarePipeline: true},
}

// diffSchedule runs f through both schedulers and fails the test unless
// they are indistinguishable. On success it also validates the schedule
// (the auditor re-derives the dependence graph independently).
func diffSchedule(t *testing.T, tag string, f *ir.Func, cfg *machine.Config, o Options) {
	t.Helper()
	fast, errFast := ScheduleOpts(f, cfg, o)
	ref, errRef := ReferenceScheduleOpts(f, cfg, o)
	if (errFast == nil) != (errRef == nil) {
		t.Fatalf("%s: error divergence: fast=%v reference=%v", tag, errFast, errRef)
	}
	if errFast != nil {
		if errFast.Error() != errRef.Error() {
			t.Fatalf("%s: error message divergence:\n  fast:      %v\n  reference: %v",
				tag, errFast, errRef)
		}
		return // both reject identically (e.g. register pressure)
	}
	diffFuncSched(t, tag, fast, ref)
	if err := fast.Validate(); err != nil {
		t.Fatalf("%s: invalid schedule: %v", tag, err)
	}
}

// diffFuncSched asserts field-by-field equality of two schedules of the
// same function.
func diffFuncSched(t *testing.T, tag string, fast, ref *FuncSched) {
	t.Helper()
	if fast.MaxPressure != ref.MaxPressure {
		t.Fatalf("%s: MaxPressure: fast=%v reference=%v", tag, fast.MaxPressure, ref.MaxPressure)
	}
	if len(fast.Blocks) != len(ref.Blocks) {
		t.Fatalf("%s: block count: fast=%d reference=%d", tag, len(fast.Blocks), len(ref.Blocks))
	}
	for bi, fb := range fast.Blocks {
		rb := ref.Blocks[bi]
		if fb.Length != rb.Length {
			t.Fatalf("%s B%d: Length: fast=%d reference=%d", tag, bi, fb.Length, rb.Length)
		}
		if fb.II != rb.II {
			t.Fatalf("%s B%d: II: fast=%d reference=%d", tag, bi, fb.II, rb.II)
		}
		if !reflect.DeepEqual(fb.Ops, rb.Ops) {
			for i := range fb.Ops {
				if fb.Ops[i] != rb.Ops[i] {
					t.Fatalf("%s B%d op %d: fast=%+v reference=%+v",
						tag, bi, i, fb.Ops[i], rb.Ops[i])
				}
			}
			t.Fatalf("%s B%d: Ops diverge", tag, bi)
		}
		for _, steady := range []bool{false, true} {
			if fp, rp := fb.Profile(steady), rb.Profile(steady); !reflect.DeepEqual(fp, rp) {
				t.Fatalf("%s B%d: Profile(steady=%v): fast=%+v reference=%+v",
					tag, bi, steady, fp, rp)
			}
		}
	}
}

// diffLiveSpans asserts that the fast dense-table live-range computation
// matches the retained map-backed original. The spans are the register
// allocator's only input, so equal spans make Allocate (a pure function of
// them) identical as well; the test still runs it to cover the whole
// regalloc path.
func diffLiveSpans(t *testing.T, tag string, f *ir.Func, cfg *machine.Config) {
	t.Helper()
	fast, ref := liveSpans(f), refLiveSpans(f)
	if len(fast) != len(ref) {
		t.Fatalf("%s: span count: fast=%d reference=%d", tag, len(fast), len(ref))
	}
	for i := range fast {
		if *fast[i] != *ref[i] {
			t.Fatalf("%s: span %d: fast=%+v reference=%+v", tag, i, *fast[i], *ref[i])
		}
	}
	// Allocation is deterministic over the spans; if the pressure check
	// admitted the function, allocation must succeed and the rewritten
	// function must still verify (Allocate checks both itself).
	if _, err := checkPressure(f, cfg); err == nil {
		if _, _, err := Allocate(f, cfg); err != nil {
			t.Fatalf("%s: Allocate failed on pressure-admitted function: %v", tag, err)
		}
	}
}

// diffProgram runs one generated program through the full differential
// matrix.
func diffProgram(t *testing.T, seed uint64, nops int) {
	t.Helper()
	p, err := progen.Generate(seed, nops)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := p.Func.Verify(); err != nil {
		t.Fatalf("seed %d: generator emitted invalid IR: %v", seed, err)
	}
	for _, cfg := range diffCfgs {
		diffLiveSpans(t, fmt.Sprintf("seed %d nops %d on %s", seed, nops, cfg.Name), p.Func, cfg)
		for _, o := range diffOpts {
			tag := fmt.Sprintf("seed %d nops %d on %s (%+v)", seed, nops, cfg.Name, o)
			diffSchedule(t, tag, p.Func, cfg, o)
		}
	}
}

// FuzzSchedule drives randomly generated (but valid) IR programs through
// the whole static pipeline — verify, schedule under several option sets,
// validate the resulting reservation tables — and differentially against
// the reference scheduler. The generator only produces IR that passes
// Verify, so any downstream failure or fast/reference divergence is a
// scheduler bug.
func FuzzSchedule(f *testing.F) {
	f.Add(uint64(1), 40)
	f.Add(uint64(7919), 60)
	f.Add(uint64(1<<32), 25)
	f.Add(uint64(0xDEADBEEF), 90)
	f.Fuzz(func(t *testing.T, seed uint64, nops int) {
		// Bound the program size: schedule cost grows with block size, and
		// huge programs add latency without adding coverage.
		if nops < 0 {
			nops = -nops
		}
		nops = nops%120 + 1
		diffProgram(t, seed, nops)
	})
}

// splitmix64 decorrelates sequential indices into seeds for the property
// suite (the generator's xorshift keeps nearby seeds on nearby orbits).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// TestScheduleDifferential10k is the seeded property suite from ISSUE 7:
// ten thousand generated programs, each scheduled by both schedulers under
// a rotating configuration/option pair. Unlike the fuzzer it is fully
// deterministic, so a red run always names a reproducible seed. Sharded
// subtests keep the wall-clock cost at a fraction of the suite.
func TestScheduleDifferential10k(t *testing.T) {
	total := 10000
	if testing.Short() {
		total = 1000
	}
	const shards = 8
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for i := s; i < total; i += shards {
				seed := splitmix64(uint64(i))
				nops := 1 + i%120
				p, err := progen.Generate(seed, nops)
				if err != nil {
					t.Fatalf("i %d seed %d: %v", i, seed, err)
				}
				cfg := diffCfgs[i%len(diffCfgs)]
				o := diffOpts[(i/len(diffCfgs))%len(diffOpts)]
				tag := fmt.Sprintf("i %d seed %d nops %d on %s (%+v)", i, seed, nops, cfg.Name, o)
				diffLiveSpans(t, tag, p.Func, cfg)
				diffSchedule(t, tag, p.Func, cfg, o)
			}
		})
	}
}
