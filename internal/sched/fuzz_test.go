package sched

import (
	"strings"
	"testing"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/progen"
)

// FuzzSchedule drives randomly generated (but valid) IR programs through
// the whole static pipeline — verify, schedule under several option sets,
// validate the resulting reservation tables — hunting for programs the
// scheduler mis-schedules or rejects. The generator only produces IR that
// passes Verify, so any downstream failure is a scheduler bug.
func FuzzSchedule(f *testing.F) {
	f.Add(uint64(1), 40)
	f.Add(uint64(7919), 60)
	f.Add(uint64(1<<32), 25)
	f.Add(uint64(0xDEADBEEF), 90)
	f.Fuzz(func(t *testing.T, seed uint64, nops int) {
		// Bound the program size: schedule cost grows with block size, and
		// huge programs add latency without adding coverage.
		if nops < 0 {
			nops = -nops
		}
		nops = nops%120 + 1
		p, err := progen.Generate(seed, nops)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Func.Verify(); err != nil {
			t.Fatalf("seed %d: generator emitted invalid IR: %v", seed, err)
		}
		cfgs := []*machine.Config{&machine.Vector1x2, &machine.Vector2x4}
		opts := []Options{
			{},
			{NoChaining: true, SourceOrderPriority: true},
			{OverlapDrain: true, SoftwarePipeline: true},
		}
		for _, cfg := range cfgs {
			for _, o := range opts {
				fs, err := ScheduleOpts(p.Func, cfg, o)
				if err != nil {
					// Register pressure beyond the configuration's files is
					// a legitimate rejection, not a scheduler bug.
					if strings.Contains(err.Error(), "pressure") {
						continue
					}
					t.Fatalf("seed %d nops %d on %s (%+v): %v", seed, nops, cfg.Name, o, err)
				}
				if err := fs.Validate(); err != nil {
					t.Fatalf("seed %d nops %d on %s (%+v): invalid schedule: %v",
						seed, nops, cfg.Name, o, err)
				}
			}
		}
	})
}
