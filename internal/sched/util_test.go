package sched

import (
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/simd"
)

func TestBlockProfileAccountsEveryOp(t *testing.T) {
	b := ir.NewBuilder("prof")
	in := b.DataH([]int16{1, 2, 3, 4, 5, 6, 7, 8})
	out := b.Alloc(64)
	b.SetVLI(8)
	b.SetVSI(8)
	v := b.Vld(b.Const(in), 0, 1)
	b.Vst(b.V(isa.VADD, simd.W16, v, v), b.Const(out), 0, 2)
	fs, err := Schedule(b.Func(), &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range fs.Blocks {
		p := bs.Profile(false)
		if p.Cycles != bs.Length {
			t.Errorf("B%d profile covers %d cycles, Length %d", bs.Block.ID, p.Cycles, bs.Length)
		}
		// Every issued (non-pseudo) op appears exactly once in the issue
		// profile, and its unit is busy at least once.
		issued := 0
		for i := range bs.Ops {
			if bs.Ops[i].Unit != isa.UnitNone {
				issued++
			}
		}
		var inProfile, busy int
		for _, k := range p.Issue {
			inProfile += k
		}
		if inProfile != issued {
			t.Errorf("B%d issue profile counts %d ops, schedule issued %d", bs.Block.ID, inProfile, issued)
		}
		for _, h := range p.Units {
			for _, k := range h {
				busy += k
			}
		}
		// Unit busy-cycles are at least one per issued op (Occ >= 1).
		if issued > 0 && busy < issued {
			t.Errorf("B%d unit busy cycles %d < issued ops %d", bs.Block.ID, busy, issued)
		}
	}
}

func TestBlockProfileSteadyStateWrapsModuloII(t *testing.T) {
	b := ir.NewBuilder("pipe")
	in := b.DataH(make([]int16, 512))
	out := b.Alloc(1024)
	b.SetVLI(8)
	b.SetVSI(8)
	b.Loop(0, 16, 1, func(iter ir.Reg) {
		base := b.Bin(isa.ADD, b.Const(in), b.Bin(isa.MUL, iter, b.Const(64)))
		v := b.Vld(base, 0, 1)
		obase := b.Bin(isa.ADD, b.Const(out), b.Bin(isa.MUL, iter, b.Const(64)))
		b.Vst(b.V(isa.VADD, simd.W16, v, v), obase, 0, 2)
	})
	fs, err := ScheduleOpts(b.Func(), &machine.Vector2x2, Options{SoftwarePipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, bs := range fs.Blocks {
		if bs.II <= 0 {
			continue
		}
		found = true
		p := bs.Profile(true)
		if p.Cycles != bs.II {
			t.Errorf("steady profile covers %d cycles, II = %d", p.Cycles, bs.II)
		}
		issued := 0
		for i := range bs.Ops {
			if bs.Ops[i].Unit != isa.UnitNone {
				issued++
			}
		}
		var inProfile int
		for _, k := range p.Issue {
			inProfile += k
		}
		// Wrapping must not lose ops: all issues fold into the II window.
		if inProfile != issued {
			t.Errorf("steady issue profile counts %d ops, schedule issued %d", inProfile, issued)
		}
	}
	if !found {
		t.Skip("no block was software-pipelined")
	}
}
