package sched

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
)

// Fusion legality for the simulator's v3 threaded-code engine.
//
// The v3 engine peephole-fuses dominant adjacent operation pairs of the
// six Mediabench applications into single dispatch words. Legality is a
// property of the schedule's program order, so it lives here with the
// rest of the per-operation schedule metadata: two operations may fuse
// exactly when they are adjacent in the lowered stream of one basic
// block (NOPs vanish during lowering and do not break adjacency; region
// markers and every other operation do) and the pair matches one of the
// shapes below. Fusion is purely a dispatch optimization — the machine's
// cycle accounting is block-level (BlockSched.Length/II plus run-time
// memory stalls), and a fused pair executes its two halves in program
// order with the same memory-model calls, so timing, results and stall
// attribution are bit-identical to unfused dispatch by construction.
//
// The fused shapes are the dominant dynamic pairs of the µSIMD and
// vector variants (load→packed-op, packed-op chains such as SAD→
// accumulate, packed-op→store, splat→op, and vector-load→accumulate):
// e.g. ldm→psad and psad→padd in motion estimation, padd→pmull and
// pmadd→padd in the DCT kernels, and vld→vsada in the vector SAD loops.

// FusePair classifies one adjacent operation pair for the v3 engine.
type FusePair int

const (
	// FuseNone: the pair does not fuse.
	FuseNone FusePair = iota
	// FuseLoadPacked is LDM followed by a two-source packed compute.
	FuseLoadPacked
	// FusePackedPacked is a chain of two two-source packed computes
	// (the SAD/accumulate and unpack/arith chains).
	FusePackedPacked
	// FusePackedStore is a two-source packed compute followed by STM.
	FusePackedStore
	// FuseSplatPacked is PSPLAT followed by a two-source packed compute.
	FuseSplatPacked
	// FuseLoadAccum is VLD followed by a vector accumulate
	// (VSADA/VMACA/VACCW) — the vector SAD/MAC chains.
	FuseLoadAccum

	// NumFusePairs is the number of classifications (including FuseNone).
	NumFusePairs = int(FuseLoadAccum) + 1
)

// String names the classification for counters and test output.
func (f FusePair) String() string {
	switch f {
	case FuseLoadPacked:
		return "load_packed"
	case FusePackedPacked:
		return "packed_packed"
	case FusePackedStore:
		return "packed_store"
	case FuseSplatPacked:
		return "splat_packed"
	case FuseLoadAccum:
		return "load_accum"
	}
	return "none"
}

// packed2 reports whether op is a pure two-source packed compute
// (SIMD,SIMD -> SIMD): the 26 µSIMD arithmetic/logical/pack operations.
// Shifts (one source plus an immediate) and moves are excluded by the
// signature check.
func packed2(op *ir.Op) bool {
	in := op.Info()
	if in.Unit != isa.UnitSIMD {
		return false
	}
	return len(in.Sig.Src) == 2 && in.Sig.Src[0] == isa.RegSIMD &&
		in.Sig.Src[1] == isa.RegSIMD &&
		len(in.Sig.Dst) == 1 && in.Sig.Dst[0] == isa.RegSIMD
}

// Fusable classifies the adjacent pair (a, b): the kind of fused
// executor the v3 engine lowers it to, or FuseNone. Callers must only
// pass pairs that are adjacent in the lowered stream of one block (after
// NOP elision, with region markers breaking adjacency); under that
// precondition every classification here is legal, because the fused
// executor runs both halves in program order and the engine's cycle
// accounting is block-level.
func Fusable(a, b *ir.Op) FusePair {
	switch {
	case a.Opcode == isa.LDM && packed2(b):
		return FuseLoadPacked
	case a.Opcode == isa.PSPLAT && packed2(b):
		return FuseSplatPacked
	case packed2(a) && packed2(b):
		return FusePackedPacked
	case packed2(a) && b.Opcode == isa.STM:
		return FusePackedStore
	case a.Opcode == isa.VLD &&
		(b.Opcode == isa.VSADA || b.Opcode == isa.VMACA || b.Opcode == isa.VACCW):
		return FuseLoadAccum
	}
	return FuseNone
}
