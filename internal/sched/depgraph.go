package sched

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// edge is a scheduling dependence: the successor may issue no earlier than
// lat cycles after the predecessor.
type edge struct {
	to  int
	lat int
}

type node struct {
	op     *ir.Op
	idx    int
	pseudo bool
	unit   isa.Unit // nominal unit class (before configuration folding)
	vl     int      // compile-time VL (vector ops only)
	lat    int      // flow latency L
	occ    int      // unit occupancy in cycles
	tlw    int      // full write-back latency
	preds  []edge
	succs  []edge
}

type dag struct {
	nodes []node
}

func (g *dag) addEdge(from, to, lat int) {
	if from == to {
		return
	}
	g.nodes[from].succs = append(g.nodes[from].succs, edge{to: to, lat: lat})
	g.nodes[to].preds = append(g.nodes[to].preds, edge{to: from, lat: lat})
}

// rawLat is the flow-dependence latency from producer p to consumer c.
// Chaining (Section 3.3): when both are vector operations the consumer may
// start as soon as the producer's first elements are written, i.e. after
// the producer's flow latency L — as long as it cannot outrun the
// producer. With the paper's configurations the lane and port rates are
// equal (4) and the chained latency is exactly L; for custom
// configurations with a faster consumer, the start is delayed so the
// consumer's last read (at Tlr = Tlw - L after its issue) does not pass
// the producer's last write: lat = max(L_p, Tlw_p - Tlr_c). A scalar
// consumer of a vector result must wait for the full write-back, and with
// chaining disabled (Options.NoChaining) vector consumers wait for it too.
func rawLat(p, c *node, opts Options) int {
	if p.pseudo {
		return 0
	}
	if p.op.Info().Vector {
		if c.op.Info().Vector && !opts.NoChaining {
			lat := p.lat
			if slack := p.tlw - (c.tlw - c.lat); slack > lat {
				lat = slack
			}
			return lat
		}
		return p.tlw
	}
	return p.lat
}

// warLat is the anti-dependence latency from a reader r to a subsequent
// writer of the same register: a vector reader consumes its operand until
// (VL-1)/rate cycles after issue, so the overwrite must wait one cycle
// beyond that; scalar reads happen at issue.
func warLat(r *node) int {
	if r.op != nil && r.op.Info().Vector {
		return r.tlw - r.lat + 1
	}
	return 0
}

// wawLat is the output-dependence latency: the second write must land
// after the first.
func wawLat(first, second *node) int {
	l := first.tlw - second.tlw + 1
	if l < 1 {
		l = 1
	}
	return l
}

func mayAlias(a, b int) bool { return a == 0 || b == 0 || a == b }

// buildDAG constructs the dependence graph of one block under the
// compile-time vector length vlIn, returning the graph and the VL value at
// block exit.
func buildDAG(blk *ir.Block, cfg *machine.Config, vlIn int, opts Options) (*dag, int) {
	g := &dag{nodes: make([]node, len(blk.Ops))}
	vl := vlIn

	lastDef := make(map[ir.Reg]int)
	readers := make(map[ir.Reg][]int)

	type memRec struct {
		idx   int
		store bool
		alias int
	}
	var mems []memRec

	lastSetVL, lastSetVS := -1, -1
	var vecSinceVL, vecSinceVS []int
	branch := -1

	for i := range blk.Ops {
		op := &blk.Ops[i]
		in := op.Info()
		nd := &g.nodes[i]
		nd.op = op
		nd.idx = i
		nd.unit = in.Unit
		nd.lat = in.Lat
		nd.pseudo = in.Unit == isa.UnitNone

		if op.Opcode == isa.SETVL {
			if op.UseImm {
				vl = int(op.Imm)
			} else {
				vl = isa.MaxVL // unknown at compile time: assume the maximum
			}
		}
		if in.Vector {
			nd.vl = vl
		}
		nd.occ, nd.tlw = descriptors(op, cfg, vl)

		// Flow dependences on register sources.
		for _, r := range op.Src {
			if d, ok := lastDef[r]; ok {
				g.addEdge(d, i, rawLat(&g.nodes[d], nd, opts))
			}
			readers[r] = append(readers[r], i)
		}
		// Implicit dependences on the VL/VS special registers.
		if in.Vector && lastSetVL >= 0 {
			g.addEdge(lastSetVL, i, g.nodes[lastSetVL].lat)
		}
		if op.Opcode.IsVectorMem() && lastSetVS >= 0 {
			g.addEdge(lastSetVS, i, g.nodes[lastSetVS].lat)
		}
		if in.Vector {
			vecSinceVL = append(vecSinceVL, i)
		}
		if op.Opcode.IsVectorMem() {
			vecSinceVS = append(vecSinceVS, i)
		}
		if op.Opcode == isa.SETVL {
			for _, v := range vecSinceVL {
				g.addEdge(v, i, warLat(&g.nodes[v]))
			}
			if lastSetVL >= 0 {
				g.addEdge(lastSetVL, i, 1)
			}
			vecSinceVL = nil
			lastSetVL = i
		}
		if op.Opcode == isa.SETVS {
			for _, v := range vecSinceVS {
				g.addEdge(v, i, warLat(&g.nodes[v]))
			}
			if lastSetVS >= 0 {
				g.addEdge(lastSetVS, i, 1)
			}
			vecSinceVS = nil
			lastSetVS = i
		}

		// Memory dependences: conservative ordering between accesses that
		// may alias, unless both are loads. Stores must complete before a
		// dependent load issues.
		if in.Mem != isa.MemNone {
			st := in.Mem == isa.MemStore
			for _, m := range mems {
				if !mayAlias(m.alias, op.Alias) || (!m.store && !st) {
					continue
				}
				lat := 1
				if m.store && !st {
					lat = g.nodes[m.idx].tlw // store -> load: full write-back
				}
				g.addEdge(m.idx, i, lat)
			}
			mems = append(mems, memRec{idx: i, store: st, alias: op.Alias})
		}

		// Anti and output dependences on destinations.
		for _, r := range op.Dst {
			for _, rd := range readers[r] {
				g.addEdge(rd, i, warLat(&g.nodes[rd]))
			}
			if d, ok := lastDef[r]; ok {
				g.addEdge(d, i, wawLat(&g.nodes[d], nd))
			}
			lastDef[r] = i
			delete(readers, r)
		}

		if in.Branch {
			branch = i
		}
	}

	// No operation may issue after the block's branch.
	if branch >= 0 {
		for i := range g.nodes {
			if i != branch && !g.nodes[i].pseudo {
				g.addEdge(i, branch, 0)
			}
		}
	}
	return g, vl
}
