package sched

import "vsimdvliw/internal/isa"

// Profile is the cycle-by-cycle occupancy of one block's static schedule:
// how many operations issue and how many instances of each functional-unit
// class are busy at every cycle of the block. The simulator weights these
// profiles by run-time block-execution counts to build the utilization
// histograms — the reservation tables are exact for a machine that issues
// in lock step, so no per-cycle run-time bookkeeping is needed.
type Profile struct {
	Cycles int
	// Issue[c] is the number of operations issued at cycle c.
	Issue []int
	// Units[u][c] is the number of busy instances of unit class u at
	// cycle c (an operation occupies its unit for Occ cycles).
	Units map[isa.Unit][]int
}

// Profile computes the block's occupancy profile. With steady set (and the
// block modulo-scheduled, II > 0), the profile covers one steady-state
// initiation interval: issue and occupancy wrap modulo II, exactly as
// back-to-back iterations overlap. Otherwise it covers the full block
// length; occupancy reaching past the last cycle (possible under
// OverlapDrain) is dropped, since the machine overlaps it with the next
// block.
// The result is memoized: the schedule is immutable once built, and the
// memoization keeps Profile race-free for concurrent simulations of one
// compiled program.
func (bs *BlockSched) Profile(steady bool) *Profile {
	idx := 0
	if steady {
		idx = 1
	}
	bs.profileOnce[idx].Do(func() {
		bs.profiles[idx] = bs.computeProfile(steady)
	})
	return bs.profiles[idx]
}

func (bs *BlockSched) computeProfile(steady bool) *Profile {
	n := bs.Length
	if steady && bs.II > 0 {
		n = bs.II
	}
	if n < 1 {
		n = 1
	}
	p := &Profile{Cycles: n, Issue: make([]int, n), Units: make(map[isa.Unit][]int)}
	for i := range bs.Ops {
		os := &bs.Ops[i]
		if os.Unit == isa.UnitNone {
			continue // pseudo-op: consumes no slot
		}
		p.Issue[os.Cycle%n]++
		h := p.Units[os.Unit]
		if h == nil {
			h = make([]int, n)
			p.Units[os.Unit] = h
		}
		occ := os.Occ
		if occ < 1 {
			occ = 1
		}
		for j := 0; j < occ; j++ {
			c := os.Cycle + j
			if steady {
				h[c%n]++
			} else if c < n {
				h[c]++
			}
		}
	}
	return p
}
