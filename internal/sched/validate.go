package sched

import (
	"fmt"

	"vsimdvliw/internal/isa"
)

// Validate re-derives the dependence graph and resource requirements of
// every block and checks the computed schedule against them: an
// independent auditor for the list scheduler. It verifies that
//
//   - every dependence edge's latency is respected,
//   - no cycle issues more operations than the machine width,
//   - no functional-unit instance is double-booked during an occupancy,
//   - instance indices are within the configuration's unit counts,
//   - no operation issues after the block's branch,
//   - the block length covers every issue (and, unless the schedule was
//     built with OverlapDrain, every write-back).
func (fs *FuncSched) Validate() error {
	opts := fs.Opts
	cfg := fs.Config
	vl := isa.MaxVL
	for bi, bs := range fs.Blocks {
		g, vlOut := buildDAG(bs.Block, cfg, vl, opts)
		vl = vlOut
		issue := map[int]int{}
		busy := map[[3]int]int{} // (unit, instance, cycle) -> op index + 1
		branchCycle := -1
		maxIssue := 0

		for i := range g.nodes {
			nd := &g.nodes[i]
			os := &bs.Ops[i]
			if nd.pseudo {
				continue
			}
			// Dependences.
			for _, e := range nd.preds {
				p := &g.nodes[e.to]
				if p.pseudo {
					continue
				}
				if got := os.Cycle - bs.Ops[e.to].Cycle; got < e.lat {
					return fmt.Errorf("sched: %s B%d: op %d (%s) at cycle %d violates "+
						"dependence on op %d (%s) at cycle %d (latency %d)",
						fs.Func.Name, bi, i, nd.op, os.Cycle,
						e.to, p.op, bs.Ops[e.to].Cycle, e.lat)
				}
			}
			// Descriptors recorded faithfully.
			occ, tlw := descriptors(nd.op, cfg, nd.vlOrDefault())
			if os.Occ != occ || os.Tlw != tlw {
				return fmt.Errorf("sched: %s B%d op %d: recorded occ/tlw %d/%d, derived %d/%d",
					fs.Func.Name, bi, i, os.Occ, os.Tlw, occ, tlw)
			}
			// Resources.
			issue[os.Cycle]++
			if issue[os.Cycle] > cfg.Issue {
				return fmt.Errorf("sched: %s B%d: cycle %d issues %d ops on a %d-issue machine",
					fs.Func.Name, bi, os.Cycle, issue[os.Cycle], cfg.Issue)
			}
			unit := cfg.UnitFor(nd.unit)
			if os.Unit != unit {
				return fmt.Errorf("sched: %s B%d op %d: unit %v, want %v", fs.Func.Name, bi, i, os.Unit, unit)
			}
			if os.UnitIdx < 0 || os.UnitIdx >= cfg.Units(unit) {
				return fmt.Errorf("sched: %s B%d op %d: unit index %d out of %d",
					fs.Func.Name, bi, i, os.UnitIdx, cfg.Units(unit))
			}
			for c := os.Cycle; c < os.Cycle+os.Occ; c++ {
				key := [3]int{int(unit), os.UnitIdx, c}
				if prev, taken := busy[key]; taken {
					return fmt.Errorf("sched: %s B%d: ops %d and %d share %v[%d] at cycle %d",
						fs.Func.Name, bi, prev-1, i, unit, os.UnitIdx, c)
				}
				busy[key] = i + 1
			}
			if nd.op.Info().Branch {
				branchCycle = os.Cycle
			}
			if os.Cycle > maxIssue {
				maxIssue = os.Cycle
			}
			// Length coverage.
			if bs.Length < os.Cycle+1 {
				return fmt.Errorf("sched: %s B%d: length %d does not cover issue at %d",
					fs.Func.Name, bi, bs.Length, os.Cycle)
			}
			if !opts.OverlapDrain && bs.Length < os.Cycle+os.Tlw {
				return fmt.Errorf("sched: %s B%d: length %d does not cover write-back at %d",
					fs.Func.Name, bi, bs.Length, os.Cycle+os.Tlw)
			}
		}
		if branchCycle >= 0 && branchCycle < maxIssue {
			return fmt.Errorf("sched: %s B%d: branch at cycle %d precedes issues up to %d",
				fs.Func.Name, bi, branchCycle, maxIssue)
		}
	}
	return nil
}

// vlOrDefault returns the node's VL, defaulting to 1 for scalar ops so
// descriptors() is well-defined.
func (n *node) vlOrDefault() int {
	if n.vl > 0 {
		return n.vl
	}
	return 1
}
