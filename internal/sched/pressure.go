package sched

import (
	"fmt"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// checkPressure verifies that the function's register pressure fits the
// configuration's register files (Table 2). Execution works on virtual
// registers, so this pass is the allocator's feasibility check: live
// ranges are approximated by each virtual register's first-to-last textual
// occurrence over the block layout, which safely over-approximates
// liveness across loop back edges.
func checkPressure(f *ir.Func, cfg *machine.Config) ([5]int32, error) {
	spans := liveSpans(f)
	npos := 0
	for _, blk := range f.Blocks {
		npos += len(blk.Ops)
	}

	// Sweep: +1 at first occurrence, -1 after last.
	type ev struct {
		pos   int
		delta int
	}
	events := make(map[isa.RegClass][]ev)
	for _, s := range spans {
		events[s.reg.Class] = append(events[s.reg.Class],
			ev{pos: s.first, delta: 1}, ev{pos: s.last + 1, delta: -1})
	}

	var max [5]int32
	for class, evs := range events {
		// Counting sort by position (positions are bounded by op count).
		byPos := make([]int, npos+2)
		for _, e := range evs {
			byPos[e.pos] += e.delta
		}
		cur := int32(0)
		for _, d := range byPos {
			cur += int32(d)
			if cur > max[class] {
				max[class] = cur
			}
		}
	}

	for _, class := range []isa.RegClass{isa.RegInt, isa.RegSIMD, isa.RegVec, isa.RegAcc} {
		if max[class] == 0 {
			continue
		}
		limit := cfg.Regs(class)
		if limit == 0 {
			// The config has no such file; Supports() will reject the ops,
			// so only report if the class is genuinely used.
			continue
		}
		if int(max[class]) > limit {
			return max, fmt.Errorf("sched: %s: %s register pressure %d exceeds the %d-entry file of %s",
				f.Name, class, max[class], limit, cfg.Name)
		}
	}
	return max, nil
}
