package sched

// This file retains the original list scheduler verbatim as the
// differential oracle for the fast path in fast.go — the same pattern as
// mem.ReferenceHierarchy (internal/mem/reference.go) and the interpreter
// engine behind the pre-decoded executors (PR 3): keep the slow, obviously
// correct implementation around forever, and let the fuzzers and property
// suites prove the optimized scheduler produces *identical* schedules
// (cycle assignment, slot placement, unit indices, block lengths, II,
// register allocation, and the derived Profile reservation tables).
//
// Keep this file boring. It is deliberately the map-and-slice-per-op
// implementation the repository shipped with: per-node predecessor and
// successor slices from buildDAG, map-backed reservation tables, and a
// fresh allocation of every working array per block. Performance patches
// belong in fast.go; correctness patches must land in BOTH files (and will
// be caught by FuzzSchedule / TestScheduleDifferential10k if they don't).

import (
	"fmt"
	"sort"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// ReferenceSchedule verifies and schedules f for cfg with default options
// using the retained original scheduler.
func ReferenceSchedule(f *ir.Func, cfg *machine.Config) (*FuncSched, error) {
	return ReferenceScheduleOpts(f, cfg, Options{})
}

// ReferenceScheduleOpts is the oracle counterpart of ScheduleOpts: the
// original implementation, kept verbatim. Differential tests schedule the
// same function through both entry points and require the results to be
// identical in every observable field.
func ReferenceScheduleOpts(f *ir.Func, cfg *machine.Config, opts Options) (*FuncSched, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := f.Verify(); err != nil {
		return nil, err
	}
	for _, blk := range f.Blocks {
		for i := range blk.Ops {
			if !cfg.Supports(blk.Ops[i].Opcode) {
				return nil, fmt.Errorf("sched: %s: %s does not implement %s",
					f.Name, cfg.Name, blk.Ops[i].Opcode.Name())
			}
		}
	}
	fs := &FuncSched{Func: f, Config: cfg, Opts: opts}
	pressure, err := refCheckPressure(f, cfg)
	if err != nil {
		return nil, err
	}
	fs.MaxPressure = pressure

	// Compile-time VL propagated across blocks in layout order (the
	// builders emit SETVL ahead of the loops that use it).
	vl := isa.MaxVL
	for _, blk := range f.Blocks {
		bs, nextVL, err := refScheduleBlock(blk, cfg, vl, opts)
		if err != nil {
			return nil, fmt.Errorf("sched: %s B%d: %w", f.Name, blk.ID, err)
		}
		fs.Blocks = append(fs.Blocks, bs)
		vl = nextVL
	}
	return fs, nil
}

// refScheduleBlock is the original list scheduler for one block: greedy
// cycle-by-cycle issue in critical-path priority order over the buildDAG
// dependence graph, with map-backed reservation tables.
func refScheduleBlock(blk *ir.Block, cfg *machine.Config, vlIn int, opts Options) (*BlockSched, int, error) {
	g, vlOut := buildDAG(blk, cfg, vlIn, opts)
	bs := &BlockSched{Block: blk, Ops: make([]OpSched, len(blk.Ops))}
	n := len(g.nodes)
	if n == 0 {
		return bs, vlOut, nil
	}

	// Longest path to the end of the block (critical-path priority), or
	// plain source order under the ablation option.
	prio := make([]int, n)
	if opts.SourceOrderPriority {
		for i := range prio {
			prio[i] = n - i
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			nd := &g.nodes[i]
			prio[i] = nd.tlw
			for _, e := range nd.succs {
				if p := e.lat + prio[e.to]; p > prio[i] {
					prio[i] = p
				}
			}
		}
	}

	res := newRefResources(cfg)
	readyAt := make([]int, n)
	indeg := make([]int, n)
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].preds)
	}
	scheduled := make([]bool, n)
	remaining := 0
	// Pseudo-operations are placed immediately at cycle 0 and consume
	// nothing.
	for i := range g.nodes {
		if g.nodes[i].pseudo {
			scheduled[i] = true
			bs.Ops[g.nodes[i].idx] = OpSched{Index: g.nodes[i].idx, Unit: isa.UnitNone}
			continue
		}
		remaining++
	}

	for cycle := 0; remaining > 0; cycle++ {
		if cycle > maxScheduleCycles {
			return nil, 0, fmt.Errorf("schedule did not converge")
		}
		// Gather ready ops, highest priority first (stable by index).
		var ready []int
		for i := range g.nodes {
			if !scheduled[i] && indeg[i] == 0 && readyAt[i] <= cycle {
				ready = append(ready, i)
			}
		}
		sortByPriority(ready, prio)
		for _, i := range ready {
			nd := &g.nodes[i]
			if !res.issueFree(cycle, cfg.Issue) {
				break // instruction full this cycle
			}
			unit := cfg.UnitFor(nd.unit)
			idx, ok := res.reserve(unit, cycle, nd.occ, cfg.Units(unit))
			if !ok {
				continue
			}
			res.takeIssue(cycle)
			scheduled[i] = true
			remaining--
			bs.Ops[nd.idx] = OpSched{
				Index: nd.idx, Cycle: cycle, Unit: unit, UnitIdx: idx,
				VL: nd.vl, Occ: nd.occ, Tlw: nd.tlw,
			}
			if end := cycle + nd.tlw; end > bs.Length && !opts.OverlapDrain {
				bs.Length = end
			}
			if cycle+1 > bs.Length {
				bs.Length = cycle + 1
			}
			for _, e := range nd.succs {
				indeg[e.to]--
				if t := cycle + e.lat; t > readyAt[e.to] {
					readyAt[e.to] = t
				}
			}
		}
	}
	if opts.SoftwarePipeline {
		bs.II = computeII(bs, g, cfg)
	}
	return bs, vlOut, nil
}

func sortByPriority(idx []int, prio []int) {
	// Insertion sort: ready lists are short and mostly ordered.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && prio[idx[j]] > prio[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// refResources is the original cycle-indexed reservation table: maps of
// busy cycles per unit instance. fast.go replaces it with word-wise
// bitsets; this one stays as the oracle's table.
type refResources struct {
	// busy[unit][instance] is the set of busy cycles.
	busy  map[isa.Unit][]map[int]bool
	issue map[int]int // ops issued per cycle
}

func newRefResources(cfg *machine.Config) *refResources {
	return &refResources{busy: make(map[isa.Unit][]map[int]bool), issue: make(map[int]int)}
}

func (r *refResources) issueFree(cycle, width int) bool { return r.issue[cycle] < width }

func (r *refResources) takeIssue(cycle int) { r.issue[cycle]++ }

// reserve finds a free instance of the unit for [cycle, cycle+occ) among
// count instances, marks it busy and returns its index.
func (r *refResources) reserve(unit isa.Unit, cycle, occ, count int) (int, bool) {
	insts := r.busy[unit]
	for len(insts) < count {
		insts = append(insts, make(map[int]bool))
	}
	r.busy[unit] = insts
	for idx := 0; idx < count; idx++ {
		free := true
		for c := cycle; c < cycle+occ; c++ {
			if insts[idx][c] {
				free = false
				break
			}
		}
		if free {
			for c := cycle; c < cycle+occ; c++ {
				insts[idx][c] = true
			}
			return idx, true
		}
	}
	return 0, false
}

// refLiveSpans is the original map-backed live-range computation (see
// liveSpans in live.go for the model commentary); the fast dense-table
// version must produce exactly the same spans.
func refLiveSpans(f *ir.Func) []*liveSpan {
	// Linearize and collect raw spans.
	blockStart := make([]int, len(f.Blocks))
	blockEnd := make([]int, len(f.Blocks))
	live := map[ir.Reg]*liveSpan{}
	pos := 0
	for bi, blk := range f.Blocks {
		blockStart[bi] = pos
		for i := range blk.Ops {
			op := &blk.Ops[i]
			for _, r := range op.Src {
				if s, ok := live[r]; ok {
					s.last = pos
				} else {
					live[r] = &liveSpan{reg: r, first: pos, last: pos, readFirst: true}
				}
			}
			for _, r := range op.Dst {
				if s, ok := live[r]; ok {
					s.last = pos
				} else {
					live[r] = &liveSpan{reg: r, first: pos, last: pos}
				}
			}
			pos++
		}
		blockEnd[bi] = pos - 1
		if len(blk.Ops) == 0 {
			blockEnd[bi] = pos - 1 // empty block: degenerate range
		}
	}

	// Loop regions from back edges (branch targets at or before the
	// branching block).
	type region struct{ s, e int }
	var loops []region
	for bi, blk := range f.Blocks {
		for i := range blk.Ops {
			op := &blk.Ops[i]
			if op.Info().Branch && op.Opcode != isa.HALT &&
				op.Target <= bi && op.Target < len(f.Blocks) {
				loops = append(loops, region{s: blockStart[op.Target], e: blockEnd[bi]})
			}
		}
	}

	spans := make([]*liveSpan, 0, len(live))
	for _, s := range live {
		spans = append(spans, s)
	}

	// Widen to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, s := range spans {
			for _, l := range loops {
				if s.last < l.s || s.first > l.e {
					continue // no intersection
				}
				liveThrough := s.first < l.s             // defined before, used inside
				carried := s.readFirst && s.first >= l.s // loop-carried within this body
				if liveThrough || carried {
					if s.last < l.e {
						s.last = l.e
						changed = true
					}
					if carried && s.first > l.s {
						s.first = l.s
						changed = true
					}
				}
			}
		}
	}

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].first != spans[j].first {
			return spans[i].first < spans[j].first
		}
		if spans[i].reg.Class != spans[j].reg.Class {
			return spans[i].reg.Class < spans[j].reg.Class
		}
		return spans[i].reg.ID < spans[j].reg.ID
	})
	return spans
}

// refCheckPressure is checkPressure over refLiveSpans, so the oracle path
// shares no live-range code with the fast path.
func refCheckPressure(f *ir.Func, cfg *machine.Config) ([5]int32, error) {
	spans := refLiveSpans(f)
	npos := 0
	for _, blk := range f.Blocks {
		npos += len(blk.Ops)
	}

	// Sweep: +1 at first occurrence, -1 after last.
	type ev struct {
		pos   int
		delta int
	}
	events := make(map[isa.RegClass][]ev)
	for _, s := range spans {
		events[s.reg.Class] = append(events[s.reg.Class],
			ev{pos: s.first, delta: 1}, ev{pos: s.last + 1, delta: -1})
	}

	var max [5]int32
	for class, evs := range events {
		// Counting sort by position (positions are bounded by op count).
		byPos := make([]int, npos+2)
		for _, e := range evs {
			byPos[e.pos] += e.delta
		}
		cur := int32(0)
		for _, d := range byPos {
			cur += int32(d)
			if cur > max[class] {
				max[class] = cur
			}
		}
	}

	for _, class := range []isa.RegClass{isa.RegInt, isa.RegSIMD, isa.RegVec, isa.RegAcc} {
		if max[class] == 0 {
			continue
		}
		limit := cfg.Regs(class)
		if limit == 0 {
			// The config has no such file; Supports() will reject the ops,
			// so only report if the class is genuinely used.
			continue
		}
		if int(max[class]) > limit {
			return max, fmt.Errorf("sched: %s: %s register pressure %d exceeds the %d-entry file of %s",
				f.Name, class, max[class], limit, cfg.Name)
		}
	}
	return max, nil
}
