package sim

import (
	"fmt"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// Pre-decoded execution engine. At compile time every scheduled basic
// block is lowered into a flat slice of specialized executor closures —
// one per operation, with opcode, width, immediate, register indices and
// the vector→packed opcode mapping all resolved once — so the per-
// execution inner loop is a plain `for _, ex := range code { ex(m) }`
// with no dispatch switch (threaded code, in the classic interpreter
// sense). The original interpreter (exec.go) is retained unchanged as the
// reference engine: the differential tests and the engine-equivalence
// fuzzer prove the two agree on registers, memory, cycles and stall
// breakdowns.
//
// Executors communicate control flow through machine fields (branchTo,
// haltFl, stallAcc) instead of multi-value returns, keeping the closure
// signature to one pointer argument. Closures capture only compile-time
// state (indices, immediates, resolved functions) plus the op/schedule
// pointers needed for stall attribution, never machine state — the same
// lowered code is shared by any number of concurrent machines.

// execFn is one pre-decoded executor. It runs one operation against m.
type execFn func(m *Machine) error

// blockCode is the lowered form of one scheduled basic block.
type blockCode struct {
	code []execFn
	// opIdx maps each entry to its index in Block.Ops, or -1 for region
	// markers (whose errors the interpreter reports without op context).
	opIdx []int32
	// head is the number of leading region-marker entries before the
	// first real operation: the block's accounting region is sampled
	// after they run, exactly as the interpreter freezes it.
	head int
}

// Predecode lowers every block of fs into the default engine's
// representation (v3 threaded-code words), memoizing it on the schedule
// so concurrent machines share it. core.Compile calls it so programs pay
// the lowering cost once at compile time. The retained v2 closure
// lowering is NOT built here — it lowers lazily (memoized the same way)
// on the first v2-engine run, so programs that never select the oracle
// engine never pay for its closures. It fails loudly if any opcode lacks
// an executor — there is no silent interpretation fallback — and both
// lowerings cover the identical opcode set (the coverage tests assert
// it), so a program that predecodes here cannot fail to lower later.
func Predecode(fs *sched.FuncSched) error {
	_, err := predecoded3(fs)
	return err
}

func predecoded(fs *sched.FuncSched) ([]*blockCode, error) {
	out := make([]*blockCode, len(fs.Blocks))
	for i, bs := range fs.Blocks {
		c, err := bs.Code(sched.CodeV2, compileBlock)
		if err != nil {
			return nil, fmt.Errorf("sim: predecode %s B%d: %w", fs.Func.Name, bs.Block.ID, err)
		}
		out[i] = c.(*blockCode)
	}
	return out, nil
}

// compileBlock lowers one block. NOPs vanish; region markers become tiny
// stack executors; every other operation becomes a specialized closure.
func compileBlock(bs *sched.BlockSched) (any, error) {
	bc := &blockCode{}
	leading := true
	for i := range bs.Block.Ops {
		op := &bs.Block.Ops[i]
		switch op.Opcode {
		case isa.NOP:
			continue
		case isa.REGBEGIN:
			id := int(op.Imm)
			bc.code = append(bc.code, func(m *Machine) error {
				m.regionStack = append(m.regionStack, id)
				return nil
			})
			bc.opIdx = append(bc.opIdx, -1)
			if leading {
				bc.head = len(bc.code)
			}
			continue
		case isa.REGEND:
			id := int(op.Imm)
			bc.code = append(bc.code, func(m *Machine) error {
				if len(m.regionStack) == 1 {
					return fmt.Errorf("unmatched region end (id %d)", id)
				}
				if top := m.region(); top != id {
					return fmt.Errorf("region end %d does not match open region %d", id, top)
				}
				m.regionStack = m.regionStack[:len(m.regionStack)-1]
				return nil
			})
			bc.opIdx = append(bc.opIdx, -1)
			if leading {
				bc.head = len(bc.code)
			}
			continue
		}
		leading = false
		ex, err := compileOp(op, &bs.Ops[i])
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op, err)
		}
		bc.code = append(bc.code, ex)
		bc.opIdx = append(bc.opIdx, int32(i))
	}
	return bc, nil
}

// microParts splits microOps into compile-time factors: a dynamic
// operation executes base + perVL*vl micro-operations.
func microParts(op *ir.Op) (base, perVL int64) {
	in := op.Info()
	perWord := int64(1)
	if op.Width != 0 {
		perWord = int64(op.Width.Lanes())
	} else if in.Unit == isa.UnitSIMD || in.Unit == isa.UnitVector {
		switch op.Opcode {
		case isa.PAND, isa.POR, isa.PXOR, isa.PANDN,
			isa.VAND, isa.VOR, isa.VXOR, isa.VANDN:
			perWord = 8
		}
	}
	if in.Vector {
		if op.Opcode.IsVectorMem() {
			return 0, 1
		}
		return 0, perWord
	}
	if in.Unit == isa.UnitSIMD {
		return perWord, 0
	}
	return 1, 0
}

// countN records an executed operation with a known micro-op count.
func (m *Machine) countN(micro int64) {
	m.res.Ops++
	m.res.MicroOps += micro
	rs := &m.res.Regions[m.region()]
	rs.Ops++
	rs.MicroOps += micro
}

// aluFn resolves a non-trapping scalar ALU opcode to a direct function
// (DIV, which can fault, is lowered separately).
func aluFn(op isa.Opcode) func(a, b uint64) uint64 {
	switch op {
	case isa.ADD:
		return func(a, b uint64) uint64 { return a + b }
	case isa.SUB:
		return func(a, b uint64) uint64 { return a - b }
	case isa.MUL:
		return func(a, b uint64) uint64 { return uint64(int64(a) * int64(b)) }
	case isa.AND:
		return func(a, b uint64) uint64 { return a & b }
	case isa.OR:
		return func(a, b uint64) uint64 { return a | b }
	case isa.XOR:
		return func(a, b uint64) uint64 { return a ^ b }
	case isa.SHL:
		return func(a, b uint64) uint64 { return a << (b & 63) }
	case isa.SHR:
		return func(a, b uint64) uint64 { return a >> (b & 63) }
	case isa.SRA:
		return func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }
	case isa.CMPEQ:
		return func(a, b uint64) uint64 { return boolTo(a == b) }
	case isa.CMPNE:
		return func(a, b uint64) uint64 { return boolTo(a != b) }
	case isa.CMPLT:
		return func(a, b uint64) uint64 { return boolTo(int64(a) < int64(b)) }
	case isa.CMPLE:
		return func(a, b uint64) uint64 { return boolTo(int64(a) <= int64(b)) }
	case isa.CMPLTU:
		return func(a, b uint64) uint64 { return boolTo(a < b) }
	}
	return nil
}

// packedFn resolves a two-source packed opcode and width to a direct
// word-level function, hoisting the interpreter's packedEval dispatch to
// compile time. It returns nil for opcodes that are not two-source packed
// computes.
func packedFn(op isa.Opcode, w simd.Width) func(a, b uint64) uint64 {
	switch op {
	case isa.PADD:
		return func(a, b uint64) uint64 { return simd.Add(a, b, w) }
	case isa.PSUB:
		return func(a, b uint64) uint64 { return simd.Sub(a, b, w) }
	case isa.PADDS:
		return func(a, b uint64) uint64 { return simd.AddS(a, b, w) }
	case isa.PSUBS:
		return func(a, b uint64) uint64 { return simd.SubS(a, b, w) }
	case isa.PADDU:
		return func(a, b uint64) uint64 { return simd.AddU(a, b, w) }
	case isa.PSUBU:
		return func(a, b uint64) uint64 { return simd.SubU(a, b, w) }
	case isa.PMULL:
		return func(a, b uint64) uint64 { return simd.MulLo(a, b, w) }
	case isa.PMULH:
		return func(a, b uint64) uint64 { return simd.MulHi(a, b, w) }
	case isa.PMADD:
		return func(a, b uint64) uint64 { return simd.MAdd(a, b) }
	case isa.PAVG:
		return func(a, b uint64) uint64 { return simd.AvgU(a, b, w) }
	case isa.PMINU:
		return func(a, b uint64) uint64 { return simd.MinU(a, b, w) }
	case isa.PMAXU:
		return func(a, b uint64) uint64 { return simd.MaxU(a, b, w) }
	case isa.PMINS:
		return func(a, b uint64) uint64 { return simd.MinS(a, b, w) }
	case isa.PMAXS:
		return func(a, b uint64) uint64 { return simd.MaxS(a, b, w) }
	case isa.PABSD:
		return func(a, b uint64) uint64 { return simd.AbsDiffU(a, b, w) }
	case isa.PSAD:
		return func(a, b uint64) uint64 { return simd.SAD(a, b) }
	case isa.PAND:
		return func(a, b uint64) uint64 { return simd.And(a, b) }
	case isa.POR:
		return func(a, b uint64) uint64 { return simd.Or(a, b) }
	case isa.PXOR:
		return func(a, b uint64) uint64 { return simd.Xor(a, b) }
	case isa.PANDN:
		return func(a, b uint64) uint64 { return simd.AndNot(a, b) }
	case isa.PCMPEQ:
		return func(a, b uint64) uint64 { return simd.CmpEq(a, b, w) }
	case isa.PCMPGT:
		return func(a, b uint64) uint64 { return simd.CmpGtS(a, b, w) }
	case isa.PACKSS:
		return func(a, b uint64) uint64 { return simd.PackSS(a, b, w) }
	case isa.PACKUS:
		return func(a, b uint64) uint64 { return simd.PackUS(a, b, w) }
	case isa.PUNPCKL:
		return func(a, b uint64) uint64 { return simd.UnpackLo(a, b, w) }
	case isa.PUNPCKH:
		return func(a, b uint64) uint64 { return simd.UnpackHi(a, b, w) }
	}
	return nil
}

// shiftFn resolves an immediate packed shift (opcode, width, amount) to a
// direct word-level function.
func shiftFn(op isa.Opcode, w simd.Width, imm uint) func(a uint64) uint64 {
	switch op {
	case isa.PSLL:
		return func(a uint64) uint64 { return simd.ShlI(a, w, imm) }
	case isa.PSRL:
		return func(a uint64) uint64 { return simd.ShrI(a, w, imm) }
	case isa.PSRA:
		return func(a uint64) uint64 { return simd.SraI(a, w, imm) }
	}
	return nil
}

// compileOp lowers one real (non-pseudo) operation into its executor.
// Every opcode the interpreter implements must be lowered here — the
// coverage test asserts there is no gap.
func compileOp(op *ir.Op, os *sched.OpSched) (execFn, error) {
	switch op.Opcode {
	case isa.MOVI:
		d, imm := op.Dst[0].ID, uint64(op.Imm)
		return func(m *Machine) error {
			m.countN(1)
			m.intRegs[d] = imm
			return nil
		}, nil
	case isa.MOV:
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		return func(m *Machine) error {
			m.countN(1)
			m.intRegs[d] = m.intRegs[s0]
			return nil
		}, nil

	case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SRA, isa.CMPEQ, isa.CMPNE, isa.CMPLT,
		isa.CMPLE, isa.CMPLTU:
		f := aluFn(op.Opcode)
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		if op.UseImm {
			imm := uint64(op.Imm)
			return func(m *Machine) error {
				m.countN(1)
				m.intRegs[d] = f(m.intRegs[s0], imm)
				return nil
			}, nil
		}
		s1 := op.Src[1].ID
		return func(m *Machine) error {
			m.countN(1)
			m.intRegs[d] = f(m.intRegs[s0], m.intRegs[s1])
			return nil
		}, nil
	case isa.DIV:
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		if op.UseImm {
			imm := int64(op.Imm)
			return func(m *Machine) error {
				m.countN(1)
				if imm == 0 {
					return fmt.Errorf("division by zero")
				}
				m.intRegs[d] = uint64(int64(m.intRegs[s0]) / imm)
				return nil
			}, nil
		}
		s1 := op.Src[1].ID
		return func(m *Machine) error {
			m.countN(1)
			b := int64(m.intRegs[s1])
			if b == 0 {
				return fmt.Errorf("division by zero")
			}
			m.intRegs[d] = uint64(int64(m.intRegs[s0]) / b)
			return nil
		}, nil
	case isa.SELECT:
		d, c, a, b := op.Dst[0].ID, op.Src[0].ID, op.Src[1].ID, op.Src[2].ID
		return func(m *Machine) error {
			m.countN(1)
			if m.intRegs[c] != 0 {
				m.intRegs[d] = m.intRegs[a]
			} else {
				m.intRegs[d] = m.intRegs[b]
			}
			return nil
		}, nil

	case isa.LDB, isa.LDBU, isa.LDH, isa.LDHU, isa.LDW, isa.LDWU, isa.LDD:
		size := isa.AccessBytes(op.Opcode)
		signed := isa.LoadSigned(op.Opcode)
		d, base, imm := op.Dst[0].ID, op.Src[0].ID, op.Imm
		opp, oss := op, os
		return func(m *Machine) error {
			m.countN(1)
			addr := int64(m.intRegs[base]) + imm
			v, e := m.loadWord(addr, size)
			if e != nil {
				return e
			}
			if signed {
				v = signExtend(v, size)
			}
			m.intRegs[d] = v
			m.stallAcc += m.memStall(opp, oss, m.scalarTiming(addr, size, false))
			return nil
		}, nil
	case isa.STB, isa.STH, isa.STW, isa.STD:
		size := isa.AccessBytes(op.Opcode)
		val, base, imm := op.Src[0].ID, op.Src[1].ID, op.Imm
		opp, oss := op, os
		return func(m *Machine) error {
			m.countN(1)
			addr := int64(m.intRegs[base]) + imm
			if e := m.storeWord(addr, size, m.intRegs[val]); e != nil {
				return e
			}
			m.stallAcc += m.memStall(opp, oss, m.scalarTiming(addr, size, true))
			return nil
		}, nil

	case isa.BEQ:
		a, b, t := op.Src[0].ID, op.Src[1].ID, op.Target
		return func(m *Machine) error {
			m.countN(1)
			if m.intRegs[a] == m.intRegs[b] {
				m.branchTo = t
			}
			return nil
		}, nil
	case isa.BNE:
		a, b, t := op.Src[0].ID, op.Src[1].ID, op.Target
		return func(m *Machine) error {
			m.countN(1)
			if m.intRegs[a] != m.intRegs[b] {
				m.branchTo = t
			}
			return nil
		}, nil
	case isa.BLT:
		a, b, t := op.Src[0].ID, op.Src[1].ID, op.Target
		return func(m *Machine) error {
			m.countN(1)
			if int64(m.intRegs[a]) < int64(m.intRegs[b]) {
				m.branchTo = t
			}
			return nil
		}, nil
	case isa.BGE:
		a, b, t := op.Src[0].ID, op.Src[1].ID, op.Target
		return func(m *Machine) error {
			m.countN(1)
			if int64(m.intRegs[a]) >= int64(m.intRegs[b]) {
				m.branchTo = t
			}
			return nil
		}, nil
	case isa.JMP:
		t := op.Target
		return func(m *Machine) error {
			m.countN(1)
			m.branchTo = t
			return nil
		}, nil
	case isa.HALT:
		return func(m *Machine) error {
			m.countN(1)
			m.haltFl = true
			return nil
		}, nil

	case isa.LDM:
		d, base, imm := op.Dst[0].ID, op.Src[0].ID, op.Imm
		opp, oss := op, os
		return func(m *Machine) error {
			m.countN(1)
			addr := int64(m.intRegs[base]) + imm
			v, e := m.loadWord(addr, 8)
			if e != nil {
				return e
			}
			m.simdRegs[d] = v
			m.stallAcc += m.memStall(opp, oss, m.scalarTiming(addr, 8, false))
			return nil
		}, nil
	case isa.STM:
		val, base, imm := op.Src[0].ID, op.Src[1].ID, op.Imm
		opp, oss := op, os
		return func(m *Machine) error {
			m.countN(1)
			addr := int64(m.intRegs[base]) + imm
			if e := m.storeWord(addr, 8, m.simdRegs[val]); e != nil {
				return e
			}
			m.stallAcc += m.memStall(opp, oss, m.scalarTiming(addr, 8, true))
			return nil
		}, nil
	case isa.MOVIM:
		d, imm := op.Dst[0].ID, uint64(op.Imm)
		micro, _ := microParts(op)
		return func(m *Machine) error {
			m.countN(micro)
			m.simdRegs[d] = imm
			return nil
		}, nil
	case isa.MOVRM:
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		micro, _ := microParts(op)
		return func(m *Machine) error {
			m.countN(micro)
			m.simdRegs[d] = m.intRegs[s0]
			return nil
		}, nil
	case isa.MOVMR:
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		micro, _ := microParts(op)
		return func(m *Machine) error {
			m.countN(micro)
			m.intRegs[d] = m.simdRegs[s0]
			return nil
		}, nil
	case isa.PSPLAT:
		d, s0, w := op.Dst[0].ID, op.Src[0].ID, op.Width
		micro, _ := microParts(op)
		return func(m *Machine) error {
			m.countN(micro)
			m.simdRegs[d] = simd.Splat(m.intRegs[s0], w)
			return nil
		}, nil

	case isa.PSLL, isa.PSRL, isa.PSRA:
		f := shiftFn(op.Opcode, op.Width, uint(op.Imm))
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		micro, _ := microParts(op)
		return func(m *Machine) error {
			m.countN(micro)
			m.simdRegs[d] = f(m.simdRegs[s0])
			return nil
		}, nil
	case isa.PADD, isa.PSUB, isa.PADDS, isa.PSUBS, isa.PADDU, isa.PSUBU,
		isa.PMULL, isa.PMULH, isa.PMADD, isa.PAVG, isa.PMINU, isa.PMAXU,
		isa.PMINS, isa.PMAXS, isa.PABSD, isa.PSAD, isa.PAND, isa.POR,
		isa.PXOR, isa.PANDN, isa.PCMPEQ, isa.PCMPGT, isa.PACKSS,
		isa.PACKUS, isa.PUNPCKL, isa.PUNPCKH:
		f := packedFn(op.Opcode, op.Width)
		d, s0, s1 := op.Dst[0].ID, op.Src[0].ID, op.Src[1].ID
		micro, _ := microParts(op)
		return func(m *Machine) error {
			m.countN(micro)
			m.simdRegs[d] = f(m.simdRegs[s0], m.simdRegs[s1])
			return nil
		}, nil

	case isa.SETVL:
		if op.UseImm {
			v := op.Imm
			return func(m *Machine) error {
				m.countN(1)
				if v < 1 || v > isa.MaxVL {
					return fmt.Errorf("SETVL %d out of range", v)
				}
				m.setVL(int(v))
				return nil
			}, nil
		}
		s0 := op.Src[0].ID
		return func(m *Machine) error {
			m.countN(1)
			v := int64(m.intRegs[s0])
			if v < 1 || v > isa.MaxVL {
				return fmt.Errorf("SETVL %d out of range", v)
			}
			m.setVL(int(v))
			return nil
		}, nil
	case isa.SETVS:
		if op.UseImm {
			v := op.Imm
			return func(m *Machine) error {
				m.countN(1)
				m.vs = v
				return nil
			}, nil
		}
		s0 := op.Src[0].ID
		return func(m *Machine) error {
			m.countN(1)
			m.vs = int64(m.intRegs[s0])
			return nil
		}, nil

	case isa.VLD:
		d, base, imm := op.Dst[0].ID, op.Src[0].ID, op.Imm
		opp, oss := op, os
		return func(m *Machine) error {
			m.countN(int64(m.vl))
			b := int64(m.intRegs[base]) + imm
			vec := &m.vecRegs[d]
			for i := 0; i < m.vl; i++ {
				v, e := m.loadWord(b+int64(i)*m.vs, 8)
				if e != nil {
					return e
				}
				vec[i] = v
			}
			m.stallAcc += m.memStall(opp, oss, m.vectorTiming(b, m.vs, m.vl, false))
			return nil
		}, nil
	case isa.VST:
		val, base, imm := op.Src[0].ID, op.Src[1].ID, op.Imm
		opp, oss := op, os
		return func(m *Machine) error {
			m.countN(int64(m.vl))
			b := int64(m.intRegs[base]) + imm
			vec := &m.vecRegs[val]
			for i := 0; i < m.vl; i++ {
				if e := m.storeWord(b+int64(i)*m.vs, 8, vec[i]); e != nil {
					return e
				}
			}
			m.stallAcc += m.memStall(opp, oss, m.vectorTiming(b, m.vs, m.vl, true))
			return nil
		}, nil
	case isa.VMOV:
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		_, perVL := microParts(op)
		return func(m *Machine) error {
			m.countN(perVL * int64(m.vl))
			src, dst := &m.vecRegs[s0], &m.vecRegs[d]
			for i := 0; i < m.vl; i++ {
				dst[i] = src[i]
			}
			return nil
		}, nil
	case isa.VSPLAT:
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		_, perVL := microParts(op)
		return func(m *Machine) error {
			m.countN(perVL * int64(m.vl))
			v := m.intRegs[s0]
			dst := &m.vecRegs[d]
			for i := 0; i < m.vl; i++ {
				dst[i] = v
			}
			return nil
		}, nil

	case isa.VSLL, isa.VSRL, isa.VSRA:
		f := shiftFn(vecBase(op.Opcode), op.Width, uint(op.Imm))
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		_, perVL := microParts(op)
		return func(m *Machine) error {
			m.countN(perVL * int64(m.vl))
			src, dst := &m.vecRegs[s0], &m.vecRegs[d]
			for i := 0; i < m.vl; i++ {
				dst[i] = f(src[i])
			}
			return nil
		}, nil
	case isa.VADD, isa.VSUB, isa.VADDS, isa.VSUBS, isa.VADDU, isa.VSUBU,
		isa.VMULL, isa.VMULH, isa.VMADD, isa.VAVG, isa.VMINU, isa.VMAXU,
		isa.VMINS, isa.VMAXS, isa.VABSD, isa.VAND, isa.VOR, isa.VXOR,
		isa.VANDN, isa.VCMPEQ, isa.VCMPGT, isa.VPACKSS, isa.VPACKUS,
		isa.VUNPCKL, isa.VUNPCKH:
		f := packedFn(vecBase(op.Opcode), op.Width)
		d, s0, s1 := op.Dst[0].ID, op.Src[0].ID, op.Src[1].ID
		_, perVL := microParts(op)
		return func(m *Machine) error {
			m.countN(perVL * int64(m.vl))
			a, b, dst := &m.vecRegs[s0], &m.vecRegs[s1], &m.vecRegs[d]
			for i := 0; i < m.vl; i++ {
				dst[i] = f(a[i], b[i])
			}
			return nil
		}, nil
	case isa.VEXTR:
		d, s0, imm := op.Dst[0].ID, op.Src[0].ID, op.Imm
		return func(m *Machine) error {
			m.countN(1)
			if imm < 0 || imm >= isa.MaxVL {
				return fmt.Errorf("VEXTR index %d out of range", imm)
			}
			m.intRegs[d] = m.vecRegs[s0][imm]
			return nil
		}, nil
	case isa.VINS:
		d, s0, s1, imm := op.Dst[0].ID, op.Src[0].ID, op.Src[1].ID, op.Imm
		return func(m *Machine) error {
			m.countN(1)
			if imm < 0 || imm >= isa.MaxVL {
				return fmt.Errorf("VINS index %d out of range", imm)
			}
			v := m.vecRegs[s1]
			v[imm] = m.intRegs[s0]
			m.vecRegs[d] = v
			return nil
		}, nil

	case isa.ACLR:
		d := op.Dst[0].ID
		return func(m *Machine) error {
			m.countN(1)
			m.accRegs[d].Clear()
			return nil
		}, nil
	case isa.VSADA:
		d, s0, s1 := op.Dst[0].ID, op.Src[0].ID, op.Src[1].ID
		_, perVL := microParts(op)
		return func(m *Machine) error {
			m.countN(perVL * int64(m.vl))
			a, b, acc := &m.vecRegs[s0], &m.vecRegs[s1], &m.accRegs[d]
			for i := 0; i < m.vl; i++ {
				acc.SADB(a[i], b[i])
			}
			return nil
		}, nil
	case isa.VMACA:
		d, s0, s1 := op.Dst[0].ID, op.Src[0].ID, op.Src[1].ID
		_, perVL := microParts(op)
		return func(m *Machine) error {
			m.countN(perVL * int64(m.vl))
			a, b, acc := &m.vecRegs[s0], &m.vecRegs[s1], &m.accRegs[d]
			for i := 0; i < m.vl; i++ {
				acc.MACW(a[i], b[i])
			}
			return nil
		}, nil
	case isa.VACCW:
		d, s0 := op.Dst[0].ID, op.Src[0].ID
		_, perVL := microParts(op)
		return func(m *Machine) error {
			m.countN(perVL * int64(m.vl))
			a, acc := &m.vecRegs[s0], &m.accRegs[d]
			for i := 0; i < m.vl; i++ {
				acc.ACCW(a[i])
			}
			return nil
		}, nil
	case isa.VSUM:
		d, s0, w := op.Dst[0].ID, op.Src[0].ID, op.Width
		return func(m *Machine) error {
			m.countN(1)
			m.intRegs[d] = uint64(m.accRegs[s0].Sum(w))
			return nil
		}, nil
	case isa.APACK:
		d, s0, imm := op.Dst[0].ID, op.Src[0].ID, uint(op.Imm)
		return func(m *Machine) error {
			m.countN(1)
			m.intRegs[d] = m.accRegs[s0].Pack(imm)
			return nil
		}, nil
	}
	return nil, fmt.Errorf("no pre-decoded executor for opcode %s", op.Opcode.Name())
}
