package sim

import (
	"strings"
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/progen"
	"vsimdvliw/internal/sched"
)

// TestInterpreterOpcodeCoverage executes the suites' program corpus — the
// every-opcode unit program, the differential generator's seeds, and the
// six benchmark applications — counting every opcode the interpreter
// actually executes. It fails with a named list if any isa opcode is never
// exercised dynamically, so an opcode added to the ISA without test
// coverage is caught here rather than silently rotting.
func TestInterpreterOpcodeCoverage(t *testing.T) {
	executed := make([]int64, isa.NumOpcodes)
	run := func(name string, f *ir.Func, cfg *machine.Config) {
		fs, err := sched.Schedule(f, cfg)
		if err != nil {
			t.Fatalf("%s on %s: %v", name, cfg.Name, err)
		}
		m := New(fs, mem.NewHierarchy(cfg))
		m.opHook = func(op *ir.Op) { executed[op.Opcode]++ }
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s on %s: %v", name, cfg.Name, err)
		}
	}

	// The unit suite's every-opcode program.
	run("everyop", buildEveryOpcode(), &machine.Vector2x4)

	// The differential suite's generated programs.
	for seed := uint64(1); seed <= 24; seed++ {
		p, err := progen.Generate(seed*7919, 60)
		if err != nil {
			t.Fatal(err)
		}
		run("progen", p.Func, &machine.Vector2x2)
	}

	// The benchmark applications, each in the variant its natural
	// configuration runs (scalar code on the VLIW machine, µSIMD and
	// vector code on theirs).
	variants := []struct {
		v   kernels.Variant
		cfg *machine.Config
	}{
		{kernels.Scalar, &machine.VLIW2},
		{kernels.USIMD, &machine.USIMD2},
		{kernels.Vector, &machine.Vector2x2},
	}
	for _, a := range apps.All() {
		for _, vc := range variants {
			run(a.Name, a.Build(vc.v).Func, vc.cfg)
		}
	}

	var missing []string
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if executed[op] == 0 {
			missing = append(missing, op.Name())
		}
	}
	if len(missing) > 0 {
		t.Fatalf("opcodes implemented by the interpreter but never exercised dynamically:\n  %s",
			strings.Join(missing, ", "))
	}
}

// TestPredecodeOpcodeCoverage lowers a minimal well-formed operation of
// every opcode through compileOp and asserts an executor exists. A new
// opcode that the pre-decoded engine does not lower fails here explicitly
// — there is no silent fall-back to the interpreter.
func TestPredecodeOpcodeCoverage(t *testing.T) {
	var missing []string
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		switch op {
		case isa.NOP, isa.REGBEGIN, isa.REGEND:
			continue // pseudo-ops are lowered by compileBlock itself
		}
		in := op.Get()
		o := ir.Op{Opcode: op}
		for _, c := range in.Sig.Dst {
			o.Dst = append(o.Dst, ir.Reg{Class: c})
		}
		for _, c := range in.Sig.Src {
			o.Src = append(o.Src, ir.Reg{Class: c})
		}
		if len(in.Widths) > 0 {
			o.Width = in.Widths[0]
		}
		if in.Imm && len(in.Sig.Src) == 0 {
			o.UseImm = true // MOVI/MOVIM-style: the immediate is the only source
		}
		ex, err := compileOp(&o, &sched.OpSched{})
		if err != nil {
			missing = append(missing, op.Name()+" ("+err.Error()+")")
			continue
		}
		if ex == nil {
			missing = append(missing, op.Name())
		}
	}
	if len(missing) > 0 {
		t.Fatalf("opcodes without a pre-decoded executor:\n  %s", strings.Join(missing, "\n  "))
	}
}
