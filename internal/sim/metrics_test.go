package sim

import (
	"bytes"
	"strings"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/metrics"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// buildStallHeavy returns a program that exercises several stall causes:
// cold scalar loads (L1 miss + memory fill), a strided vector load, and a
// stride-one vector store.
func buildStallHeavy(t *testing.T) *ir.Func {
	t.Helper()
	b := ir.NewBuilder("stallheavy")
	in := b.DataH(make([]int16, 4096))
	out := b.Alloc(256)
	// Scalar loads far apart: cold misses all the way to memory.
	s := b.Load(isa.LDD, b.Const(in), 0, 1)
	s = b.Bin(isa.ADD, s, b.Load(isa.LDD, b.Const(in+2048), 0, 1))
	b.Store(isa.STD, s, b.Const(out), 0, 2)
	// Strided vector loads — stride 192 exercises the generic strided slow
	// path, stride 256 (a multiple of twice the 64-byte line) lands every
	// element on one bank — then a unit-stride store.
	b.SetVLI(16)
	b.SetVSI(192)
	v := b.Vld(b.Const(in), 0, 1)
	b.SetVSI(256)
	w := b.Vld(b.Const(in), 0, 1)
	b.SetVSI(8)
	b.Vst(b.V(isa.VADD, simd.W16, v, w), b.Const(out), 0, 2)
	return b.Func()
}

func runOn(t *testing.T, f *ir.Func, cfg *machine.Config, model mem.Model) *Result {
	t.Helper()
	fs, err := sched.Schedule(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(fs, model).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkResultInvariants(t *testing.T, res *Result) {
	t.Helper()
	if got := res.Stalls.Total(); got != res.StallCycles {
		t.Errorf("stall breakdown sums to %d, StallCycles = %d", got, res.StallCycles)
	}
	var regionStalls, opStalls int64
	for r := range res.Regions {
		rs := &res.Regions[r]
		if got := rs.Stalls.Total(); got != rs.StallCycles {
			t.Errorf("region %d breakdown sums to %d, StallCycles = %d", r, got, rs.StallCycles)
		}
		regionStalls += rs.StallCycles
	}
	if regionStalls != res.StallCycles {
		t.Errorf("region stalls sum to %d, total %d", regionStalls, res.StallCycles)
	}
	for _, v := range res.OpStalls {
		opStalls += v
	}
	if opStalls != res.StallCycles {
		t.Errorf("per-opcode stalls sum to %d, total %d", opStalls, res.StallCycles)
	}
	if res.Util == nil {
		t.Fatal("Result.Util not populated")
	}
	if got := res.Util.Total(); got != res.Cycles {
		t.Errorf("issue histogram sums to %d, Cycles = %d", got, res.Cycles)
	}
	for class, h := range res.Util.Units {
		var n int64
		for _, v := range h {
			n += v
		}
		if n != res.Cycles {
			t.Errorf("unit %q histogram sums to %d, Cycles = %d", class, n, res.Cycles)
		}
	}
}

func TestStallAttributionInvariants(t *testing.T) {
	cfg := &machine.Vector2x2
	f := buildStallHeavy(t)
	res := runOn(t, f, cfg, mem.NewHierarchy(cfg))
	if res.StallCycles == 0 {
		t.Fatal("stall-heavy program did not stall")
	}
	checkResultInvariants(t, res)
	// The program's signature causes must be present.
	if res.Stalls[metrics.CauseStride] == 0 {
		t.Error("strided vector load produced no stride stalls")
	}
	if res.Stalls[metrics.CauseBankConflict] == 0 {
		t.Error("single-bank stride produced no bank-conflict stalls")
	}
	if res.Stalls[metrics.CauseL3Miss] == 0 {
		t.Error("cold accesses produced no memory-fill stalls")
	}
	// Stalls come only from memory operations.
	for name := range res.StallsByOpcode() {
		switch name {
		case "ldd", "std", "vld", "vst", "ldm", "stm":
		default:
			t.Errorf("non-memory opcode %q charged stalls", name)
		}
	}
}

func TestPerfectMemoryNeverStallsWithZeroBreakdown(t *testing.T) {
	cfg := &machine.Vector2x2
	res := runOn(t, buildStallHeavy(t), cfg, mem.NewPerfect(cfg))
	if res.StallCycles != 0 {
		t.Fatalf("perfect memory stalled %d cycles", res.StallCycles)
	}
	checkResultInvariants(t, res)
	if res.Stalls != (metrics.StallBreakdown{}) {
		t.Errorf("perfect memory breakdown non-zero: %v", res.Stalls)
	}
}

// TestTraceLineLimitMarker drives the machine's text trace through the
// line-limiting writer vsimdsim uses for -trace N: exactly N block lines
// come out, followed by an explicit truncation marker instead of a silent
// mid-run cutoff.
func TestTraceLineLimitMarker(t *testing.T) {
	cfg := &machine.Vector2x2
	// A counted loop: each iteration emits a block trace line, so the run
	// produces more lines than the limit below.
	b := ir.NewBuilder("traceloop")
	out := b.Alloc(64)
	b.Loop(0, 8, 1, func(iv ir.Reg) {
		b.Store(isa.STD, iv, b.Const(out), 0, 1)
	})
	fs, err := sched.Schedule(b.Func(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewPerfect(cfg))
	var buf bytes.Buffer
	m.Trace = metrics.NewLineLimitWriter(&buf, 2)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d trace lines, want 2 blocks + marker:\n%s", len(lines), buf.String())
	}
	if lines[2] != "... truncated after 2 lines" {
		t.Errorf("missing truncation marker, last line = %q", lines[2])
	}
	for _, l := range lines[:2] {
		if !strings.HasPrefix(l, "B") {
			t.Errorf("unexpected trace line %q", l)
		}
	}
}

func TestUtilizationCountsIssuedOps(t *testing.T) {
	cfg := &machine.Vector2x2
	res := runOn(t, buildStallHeavy(t), cfg, mem.NewPerfect(cfg))
	// Total issued operations recoverable from the histogram must match
	// the executed op count (pseudo-ops excluded on both sides).
	var issued int64
	for k, cycles := range res.Util.IssueSlots {
		issued += int64(k) * cycles
	}
	if issued != res.Ops {
		t.Errorf("histogram-weighted issues = %d, Ops = %d", issued, res.Ops)
	}
}
