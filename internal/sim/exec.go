package sim

import (
	"encoding/binary"
	"fmt"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/metrics"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

func (m *Machine) geti(r ir.Reg) uint64    { return m.intRegs[r.ID] }
func (m *Machine) seti(r ir.Reg, v uint64) { m.intRegs[r.ID] = v }
func (m *Machine) getm(r ir.Reg) uint64    { return m.simdRegs[r.ID] }
func (m *Machine) setm(r ir.Reg, v uint64) { m.simdRegs[r.ID] = v }

func (m *Machine) loadWord(addr int64, size int) (uint64, error) {
	if addr < 0 || addr+int64(size) > int64(len(m.memory)) {
		return 0, fmt.Errorf("load at %#x (%d bytes) outside memory", addr, size)
	}
	switch size {
	case 1:
		return uint64(m.memory[addr]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.memory[addr:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.memory[addr:])), nil
	case 8:
		return binary.LittleEndian.Uint64(m.memory[addr:]), nil
	}
	return 0, fmt.Errorf("bad access size %d", size)
}

func (m *Machine) storeWord(addr int64, size int, v uint64) error {
	if addr < 0 || addr+int64(size) > int64(len(m.memory)) {
		return fmt.Errorf("store at %#x (%d bytes) outside memory", addr, size)
	}
	switch size {
	case 1:
		m.memory[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.memory[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.memory[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(m.memory[addr:], v)
	default:
		return fmt.Errorf("bad access size %d", size)
	}
	return nil
}

// signExtend sign-extends the low size bytes of v.
func signExtend(v uint64, size int) uint64 {
	sh := uint(64 - 8*size)
	return uint64(int64(v<<sh) >> sh)
}

// aluEval computes a scalar integer operation.
func aluEval(op isa.Opcode, a, b uint64) (uint64, error) {
	sa, sb := int64(a), int64(b)
	switch op {
	case isa.ADD:
		return uint64(sa + sb), nil
	case isa.SUB:
		return uint64(sa - sb), nil
	case isa.MUL:
		return uint64(sa * sb), nil
	case isa.DIV:
		if sb == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return uint64(sa / sb), nil
	case isa.AND:
		return a & b, nil
	case isa.OR:
		return a | b, nil
	case isa.XOR:
		return a ^ b, nil
	case isa.SHL:
		return a << (b & 63), nil
	case isa.SHR:
		return a >> (b & 63), nil
	case isa.SRA:
		return uint64(sa >> (b & 63)), nil
	case isa.CMPEQ:
		return boolTo(a == b), nil
	case isa.CMPNE:
		return boolTo(a != b), nil
	case isa.CMPLT:
		return boolTo(sa < sb), nil
	case isa.CMPLE:
		return boolTo(sa <= sb), nil
	case isa.CMPLTU:
		return boolTo(a < b), nil
	}
	return 0, fmt.Errorf("not an ALU opcode: %s", op.Name())
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// vecBase maps a vector compute opcode to the packed opcode applied per
// 64-bit word element.
func vecBase(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.VADD:
		return isa.PADD
	case isa.VSUB:
		return isa.PSUB
	case isa.VADDS:
		return isa.PADDS
	case isa.VSUBS:
		return isa.PSUBS
	case isa.VADDU:
		return isa.PADDU
	case isa.VSUBU:
		return isa.PSUBU
	case isa.VMULL:
		return isa.PMULL
	case isa.VMULH:
		return isa.PMULH
	case isa.VMADD:
		return isa.PMADD
	case isa.VAVG:
		return isa.PAVG
	case isa.VMINU:
		return isa.PMINU
	case isa.VMAXU:
		return isa.PMAXU
	case isa.VMINS:
		return isa.PMINS
	case isa.VMAXS:
		return isa.PMAXS
	case isa.VABSD:
		return isa.PABSD
	case isa.VAND:
		return isa.PAND
	case isa.VOR:
		return isa.POR
	case isa.VXOR:
		return isa.PXOR
	case isa.VANDN:
		return isa.PANDN
	case isa.VCMPEQ:
		return isa.PCMPEQ
	case isa.VCMPGT:
		return isa.PCMPGT
	case isa.VPACKSS:
		return isa.PACKSS
	case isa.VPACKUS:
		return isa.PACKUS
	case isa.VUNPCKL:
		return isa.PUNPCKL
	case isa.VUNPCKH:
		return isa.PUNPCKH
	case isa.VSLL:
		return isa.PSLL
	case isa.VSRL:
		return isa.PSRL
	case isa.VSRA:
		return isa.PSRA
	}
	return isa.NOP
}

// packedEval computes a two-source packed word operation.
func packedEval(op isa.Opcode, w simd.Width, a, b uint64) (uint64, error) {
	switch op {
	case isa.PADD:
		return simd.Add(a, b, w), nil
	case isa.PSUB:
		return simd.Sub(a, b, w), nil
	case isa.PADDS:
		return simd.AddS(a, b, w), nil
	case isa.PSUBS:
		return simd.SubS(a, b, w), nil
	case isa.PADDU:
		return simd.AddU(a, b, w), nil
	case isa.PSUBU:
		return simd.SubU(a, b, w), nil
	case isa.PMULL:
		return simd.MulLo(a, b, w), nil
	case isa.PMULH:
		return simd.MulHi(a, b, w), nil
	case isa.PMADD:
		return simd.MAdd(a, b), nil
	case isa.PAVG:
		return simd.AvgU(a, b, w), nil
	case isa.PMINU:
		return simd.MinU(a, b, w), nil
	case isa.PMAXU:
		return simd.MaxU(a, b, w), nil
	case isa.PMINS:
		return simd.MinS(a, b, w), nil
	case isa.PMAXS:
		return simd.MaxS(a, b, w), nil
	case isa.PABSD:
		return simd.AbsDiffU(a, b, w), nil
	case isa.PSAD:
		return simd.SAD(a, b), nil
	case isa.PAND:
		return simd.And(a, b), nil
	case isa.POR:
		return simd.Or(a, b), nil
	case isa.PXOR:
		return simd.Xor(a, b), nil
	case isa.PANDN:
		return simd.AndNot(a, b), nil
	case isa.PCMPEQ:
		return simd.CmpEq(a, b, w), nil
	case isa.PCMPGT:
		return simd.CmpGtS(a, b, w), nil
	case isa.PACKSS:
		return simd.PackSS(a, b, w), nil
	case isa.PACKUS:
		return simd.PackUS(a, b, w), nil
	case isa.PUNPCKL:
		return simd.UnpackLo(a, b, w), nil
	case isa.PUNPCKH:
		return simd.UnpackHi(a, b, w), nil
	}
	return 0, fmt.Errorf("not a packed opcode: %s", op.Name())
}

// packedShift computes an immediate packed shift.
func packedShift(op isa.Opcode, w simd.Width, a uint64, imm uint) (uint64, error) {
	switch op {
	case isa.PSLL:
		return simd.ShlI(a, w, imm), nil
	case isa.PSRL:
		return simd.ShrI(a, w, imm), nil
	case isa.PSRA:
		return simd.SraI(a, w, imm), nil
	}
	return 0, fmt.Errorf("not a packed shift: %s", op.Name())
}

// execOp executes a single operation. It returns the memory stall charged
// to this operation, the taken-branch target (-1 if none) and a halt flag.
func (m *Machine) execOp(op *ir.Op, os *sched.OpSched) (stall int64, branch int, halt bool, err error) {
	branch = -1
	m.count(op)

	switch op.Opcode {
	case isa.MOVI:
		m.seti(op.Dst[0], uint64(op.Imm))
	case isa.MOV:
		m.seti(op.Dst[0], m.geti(op.Src[0]))
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SRA, isa.CMPEQ, isa.CMPNE, isa.CMPLT,
		isa.CMPLE, isa.CMPLTU:
		// Second ALU source: immediate or register.
		src2 := uint64(op.Imm)
		if !op.UseImm {
			src2 = m.geti(op.Src[1])
		}
		v, e := aluEval(op.Opcode, m.geti(op.Src[0]), src2)
		if e != nil {
			return 0, -1, false, e
		}
		m.seti(op.Dst[0], v)
	case isa.SELECT:
		if m.geti(op.Src[0]) != 0 {
			m.seti(op.Dst[0], m.geti(op.Src[1]))
		} else {
			m.seti(op.Dst[0], m.geti(op.Src[2]))
		}

	case isa.LDB, isa.LDBU, isa.LDH, isa.LDHU, isa.LDW, isa.LDWU, isa.LDD:
		size := isa.AccessBytes(op.Opcode)
		addr := int64(m.geti(op.Src[0])) + op.Imm
		v, e := m.loadWord(addr, size)
		if e != nil {
			return 0, -1, false, e
		}
		if isa.LoadSigned(op.Opcode) {
			v = signExtend(v, size)
		}
		m.seti(op.Dst[0], v)
		stall = m.memStall(op, os, m.model.ScalarAccess(addr, size, false))
	case isa.STB, isa.STH, isa.STW, isa.STD:
		size := isa.AccessBytes(op.Opcode)
		addr := int64(m.geti(op.Src[1])) + op.Imm
		if e := m.storeWord(addr, size, m.geti(op.Src[0])); e != nil {
			return 0, -1, false, e
		}
		stall = m.memStall(op, os, m.model.ScalarAccess(addr, size, true))

	case isa.BEQ:
		if m.geti(op.Src[0]) == m.geti(op.Src[1]) {
			branch = op.Target
		}
	case isa.BNE:
		if m.geti(op.Src[0]) != m.geti(op.Src[1]) {
			branch = op.Target
		}
	case isa.BLT:
		if int64(m.geti(op.Src[0])) < int64(m.geti(op.Src[1])) {
			branch = op.Target
		}
	case isa.BGE:
		if int64(m.geti(op.Src[0])) >= int64(m.geti(op.Src[1])) {
			branch = op.Target
		}
	case isa.JMP:
		branch = op.Target
	case isa.HALT:
		halt = true

	case isa.LDM:
		addr := int64(m.geti(op.Src[0])) + op.Imm
		v, e := m.loadWord(addr, 8)
		if e != nil {
			return 0, -1, false, e
		}
		m.setm(op.Dst[0], v)
		stall = m.memStall(op, os, m.model.ScalarAccess(addr, 8, false))
	case isa.STM:
		addr := int64(m.geti(op.Src[1])) + op.Imm
		if e := m.storeWord(addr, 8, m.getm(op.Src[0])); e != nil {
			return 0, -1, false, e
		}
		stall = m.memStall(op, os, m.model.ScalarAccess(addr, 8, true))
	case isa.MOVIM:
		m.setm(op.Dst[0], uint64(op.Imm))
	case isa.MOVRM:
		m.setm(op.Dst[0], m.geti(op.Src[0]))
	case isa.MOVMR:
		m.seti(op.Dst[0], m.getm(op.Src[0]))
	case isa.PSPLAT:
		m.setm(op.Dst[0], simd.Splat(m.geti(op.Src[0]), op.Width))
	case isa.PSLL, isa.PSRL, isa.PSRA:
		v, e := packedShift(op.Opcode, op.Width, m.getm(op.Src[0]), uint(op.Imm))
		if e != nil {
			return 0, -1, false, e
		}
		m.setm(op.Dst[0], v)
	case isa.PADD, isa.PSUB, isa.PADDS, isa.PSUBS, isa.PADDU, isa.PSUBU,
		isa.PMULL, isa.PMULH, isa.PMADD, isa.PAVG, isa.PMINU, isa.PMAXU,
		isa.PMINS, isa.PMAXS, isa.PABSD, isa.PSAD, isa.PAND, isa.POR,
		isa.PXOR, isa.PANDN, isa.PCMPEQ, isa.PCMPGT, isa.PACKSS,
		isa.PACKUS, isa.PUNPCKL, isa.PUNPCKH:
		v, e := packedEval(op.Opcode, op.Width, m.getm(op.Src[0]), m.getm(op.Src[1]))
		if e != nil {
			return 0, -1, false, e
		}
		m.setm(op.Dst[0], v)

	case isa.SETVL:
		v := op.Imm
		if !op.UseImm {
			v = int64(m.geti(op.Src[0]))
		}
		if v < 1 || v > isa.MaxVL {
			return 0, -1, false, fmt.Errorf("SETVL %d out of range", v)
		}
		m.setVL(int(v))
	case isa.SETVS:
		v := op.Imm
		if !op.UseImm {
			v = int64(m.geti(op.Src[0]))
		}
		m.vs = v
	case isa.VLD:
		base := int64(m.geti(op.Src[0])) + op.Imm
		vec := &m.vecRegs[op.Dst[0].ID]
		for i := 0; i < m.vl; i++ {
			v, e := m.loadWord(base+int64(i)*m.vs, 8)
			if e != nil {
				return 0, -1, false, e
			}
			vec[i] = v
		}
		stall = m.memStall(op, os, m.model.VectorAccess(base, m.vs, m.vl, false))
	case isa.VST:
		base := int64(m.geti(op.Src[1])) + op.Imm
		vec := &m.vecRegs[op.Src[0].ID]
		for i := 0; i < m.vl; i++ {
			if e := m.storeWord(base+int64(i)*m.vs, 8, vec[i]); e != nil {
				return 0, -1, false, e
			}
		}
		stall = m.memStall(op, os, m.model.VectorAccess(base, m.vs, m.vl, true))
	case isa.VMOV:
		src := m.vecRegs[op.Src[0].ID]
		dst := &m.vecRegs[op.Dst[0].ID]
		for i := 0; i < m.vl; i++ {
			dst[i] = src[i]
		}
	case isa.VSPLAT:
		v := m.geti(op.Src[0])
		dst := &m.vecRegs[op.Dst[0].ID]
		for i := 0; i < m.vl; i++ {
			dst[i] = v
		}
	case isa.VSLL, isa.VSRL, isa.VSRA:
		src := m.vecRegs[op.Src[0].ID]
		dst := &m.vecRegs[op.Dst[0].ID]
		base := vecBase(op.Opcode)
		for i := 0; i < m.vl; i++ {
			v, e := packedShift(base, op.Width, src[i], uint(op.Imm))
			if e != nil {
				return 0, -1, false, e
			}
			dst[i] = v
		}
	case isa.VADD, isa.VSUB, isa.VADDS, isa.VSUBS, isa.VADDU, isa.VSUBU,
		isa.VMULL, isa.VMULH, isa.VMADD, isa.VAVG, isa.VMINU, isa.VMAXU,
		isa.VMINS, isa.VMAXS, isa.VABSD, isa.VAND, isa.VOR, isa.VXOR,
		isa.VANDN, isa.VCMPEQ, isa.VCMPGT, isa.VPACKSS, isa.VPACKUS,
		isa.VUNPCKL, isa.VUNPCKH:
		a := m.vecRegs[op.Src[0].ID]
		bb := m.vecRegs[op.Src[1].ID]
		dst := &m.vecRegs[op.Dst[0].ID]
		base := vecBase(op.Opcode)
		for i := 0; i < m.vl; i++ {
			v, e := packedEval(base, op.Width, a[i], bb[i])
			if e != nil {
				return 0, -1, false, e
			}
			dst[i] = v
		}
	case isa.VEXTR:
		if op.Imm < 0 || op.Imm >= isa.MaxVL {
			return 0, -1, false, fmt.Errorf("VEXTR index %d out of range", op.Imm)
		}
		m.seti(op.Dst[0], m.vecRegs[op.Src[0].ID][op.Imm])
	case isa.VINS:
		if op.Imm < 0 || op.Imm >= isa.MaxVL {
			return 0, -1, false, fmt.Errorf("VINS index %d out of range", op.Imm)
		}
		old := m.vecRegs[op.Src[1].ID]
		old[op.Imm] = m.geti(op.Src[0])
		m.vecRegs[op.Dst[0].ID] = old

	case isa.ACLR:
		m.accRegs[op.Dst[0].ID].Clear()
	case isa.VSADA:
		a := m.vecRegs[op.Src[0].ID]
		bb := m.vecRegs[op.Src[1].ID]
		acc := &m.accRegs[op.Dst[0].ID]
		for i := 0; i < m.vl; i++ {
			acc.SADB(a[i], bb[i])
		}
	case isa.VMACA:
		a := m.vecRegs[op.Src[0].ID]
		bb := m.vecRegs[op.Src[1].ID]
		acc := &m.accRegs[op.Dst[0].ID]
		for i := 0; i < m.vl; i++ {
			acc.MACW(a[i], bb[i])
		}
	case isa.VACCW:
		a := m.vecRegs[op.Src[0].ID]
		acc := &m.accRegs[op.Dst[0].ID]
		for i := 0; i < m.vl; i++ {
			acc.ACCW(a[i])
		}
	case isa.VSUM:
		m.seti(op.Dst[0], uint64(m.accRegs[op.Src[0].ID].Sum(op.Width)))
	case isa.APACK:
		m.seti(op.Dst[0], m.accRegs[op.Src[0].ID].Pack(uint(op.Imm)))

	default:
		return 0, -1, false, fmt.Errorf("unimplemented opcode %s", op.Opcode.Name())
	}

	return stall, branch, halt, nil
}

// memStall converts an access's actual service latency into the stall the
// lock-step machine pays beyond what the compiler scheduled (os.Tlw), and
// attributes every stall cycle to the cause the memory model reported for
// the access (clamped in priority order; the unexplained residual lands in
// CauseOther). The per-cause shares therefore sum exactly to the stall —
// and, aggregated, to Result.StallCycles.
func (m *Machine) memStall(op *ir.Op, os *sched.OpSched, actual int) int64 {
	s := int64(actual - os.Tlw)
	if s <= 0 {
		return 0
	}
	var comp *metrics.Components
	if m.detailed != nil {
		comp = m.detailed.LastAccess()
	}
	take := m.res.Stalls.Attribute(s, comp)
	m.res.Regions[m.region()].Stalls.AddBreakdown(&take)
	m.res.OpStalls[op.Opcode] += s
	if m.TraceJSON != nil {
		for i, v := range take {
			if v != 0 {
				m.TraceJSON.Event(stallEvent{
					Event: "stall", Opcode: op.Opcode.Name(),
					Cause: metrics.Cause(i).String(), Cycles: v,
					Region: m.region(), Block: m.curBlock,
				})
			}
		}
	}
	return s
}
