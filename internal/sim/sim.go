// Package sim executes scheduled programs on a modeled Vector-µSIMD-VLIW
// machine. It is both a functional simulator (every operation's semantics
// are interpreted, so kernel outputs can be checked against reference
// implementations) and a timing simulator:
//
//   - each basic block contributes its statically scheduled length
//     (internal/sched) per execution;
//   - memory operations are replayed against a memory model
//     (internal/mem); when an access takes longer than the compiler
//     scheduled (a cache miss, or a vector access whose stride is not
//     one), the in-order, lock-step VLIW machine stalls for the
//     difference, exactly as the paper describes ("the compiler schedules
//     all vector memory operations as having a stride of one and hitting
//     in the L2 vector cache, and the processor stalls at run-time if
//     either of the two assertions is not true");
//   - cycles, operations and micro-operations are accounted per region
//     (the scalar region 0 and the vector regions 1..3 of Table 1).
package sim

import (
	"context"
	"fmt"
	"io"
	"time"

	"vsimdvliw/internal/cacheorg"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/metrics"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// MaxRegions is the number of instrumentable regions (R0 = scalar plus
// vector regions R1..R3, following the paper's Figure 7).
const MaxRegions = 4

// RegionStats accumulates per-region execution statistics.
type RegionStats struct {
	Cycles      int64 `json:"cycles"`       // total cycles, including stalls
	StallCycles int64 `json:"stall_cycles"` // run-time memory stalls
	Ops         int64 `json:"ops"`          // operations executed (pseudo-ops excluded)
	MicroOps    int64 `json:"micro_ops"`    // micro-operations (sub-word items processed)
	Blocks      int64 `json:"blocks"`       // basic-block executions
	// Stalls attributes the region's stall cycles to their causes; it sums
	// exactly to StallCycles.
	Stalls metrics.StallBreakdown `json:"stalls"`
}

// Result is the outcome of one simulation.
type Result struct {
	Cycles      int64 `json:"cycles"`
	StallCycles int64 `json:"stall_cycles"`
	Ops         int64 `json:"ops"`
	MicroOps    int64 `json:"micro_ops"`
	// Stalls attributes every run-time stall cycle to the cause that
	// produced it; the breakdown sums exactly to StallCycles.
	Stalls  metrics.StallBreakdown  `json:"stalls"`
	Regions [MaxRegions]RegionStats `json:"regions"`
	// Mem holds hierarchy statistics when the model is a *mem.Hierarchy.
	Mem mem.Stats `json:"mem"`
	// CacheOrg holds the organization-specific counters when the model is
	// a *cacheorg.Hierarchy (bank splits, bicameral partition traffic and
	// migrations); nil for the paper's built-in models.
	CacheOrg *cacheorg.Stats `json:"cacheorg,omitempty"`
	// Util holds the issue-slot and per-unit-class occupancy histograms
	// (static schedule profiles weighted by run-time block-execution
	// counts); every histogram sums exactly to Cycles.
	Util *metrics.Utilization `json:"utilization,omitempty"`
	// OpStalls counts stall cycles per opcode; use StallsByOpcode for the
	// sparse, name-keyed view.
	OpStalls [isa.NumOpcodes]int64 `json:"-"`
	// VLMax is the largest vector length the run established via SETVL
	// (after the machine's VL cap, so an uncapped run reports the
	// program's intrinsic maximum). Sweep executors use it to prove that
	// looser caps cannot change the run: a cap at or above VLMax never
	// clamps a SETVL. Zero for programs that never set a vector length.
	// Excluded from JSON: it is planner metadata, not a paper metric.
	VLMax int `json:"-"`
}

// StallsByOpcode returns the per-opcode stall cycles as a name-keyed map
// holding only non-zero entries (maps marshal with sorted keys, so the
// JSON form is deterministic).
func (r *Result) StallsByOpcode() map[string]int64 {
	out := make(map[string]int64)
	for op, v := range r.OpStalls {
		if v != 0 {
			out[isa.Opcode(op).Name()] = v
		}
	}
	return out
}

// OPC returns operations per cycle for the whole run.
func (r *Result) OPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Cycles)
}

// MicroOPC returns micro-operations per cycle for the whole run.
func (r *Result) MicroOPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.MicroOps) / float64(r.Cycles)
}

// VectorCycles returns the cycles spent in regions 1..3.
func (r *Result) VectorCycles() int64 {
	var n int64
	for i := 1; i < MaxRegions; i++ {
		n += r.Regions[i].Cycles
	}
	return n
}

// Machine is a simulation instance: a scheduled function bound to a memory
// model.
type Machine struct {
	fs    *sched.FuncSched
	model mem.Model
	// hier/perf/detailed cache the concrete type of model, resolved once
	// at construction: the pre-decoded executors call the hierarchy
	// through them (scalarTiming/vectorTiming) so the per-access dispatch
	// is a direct — and, for Perfect, inlinable — call instead of an
	// interface call, and memStall reads LastAccess without a per-stall
	// type assertion.
	hier     *mem.Hierarchy
	perf     *mem.Perfect
	corg     *cacheorg.Hierarchy
	detailed mem.Detailed

	intRegs  []uint64
	simdRegs []uint64
	vecRegs  [][isa.MaxVL]uint64
	accRegs  []simd.Acc
	vl       int
	vs       int64
	memory   []byte

	regionStack []int
	pipelined   bool
	res         Result
	// blockRuns/blockPipeRuns count executions of each block (indexed by
	// block id) in full-length and pipelined steady-state form; they weight
	// the static schedule profiles into the utilization histograms.
	blockRuns     []int64
	blockPipeRuns []int64
	curBlock      int
	// opHook, when non-nil, observes every operation reached by execBlock
	// (including pseudo-ops) before it executes. Tests use it to measure
	// opcode coverage. Setting it forces the interpreter engine, which is
	// the only one that still walks pseudo-ops at run time.
	opHook func(*ir.Op)
	// code/code3 hold the lowered block sequences for the v2 closure
	// engine and the v3 threaded-code engine; interp forces the reference
	// interpreter and useV2 the closure engine (the default is v3). The
	// engine-equivalence tests exercise all three.
	code   []*blockCode
	code3  []*blockCode3
	interp bool
	useV2  bool
	// branchTo/haltFl/stallAcc carry control flow and stall accumulation
	// out of pre-decoded executors within one block execution.
	branchTo int
	haltFl   bool
	stallAcc int64
	// ctx, when non-nil, is polled every ctxEvery simulated cycles (the
	// next check fires once Cycles reaches ctxCheckAt); a done context
	// stops the run with a *CanceledError carrying the partial result.
	// ctxDeadline mirrors ctx.Deadline(): the poll compares it against the
	// wall clock directly, because on a single-CPU host the runtime timer
	// that would close ctx.Done can be starved by the spinning cycle loop,
	// leaving ctx.Err() nil long past the deadline.
	ctx         context.Context
	ctxEvery    int64
	ctxCheckAt  int64
	ctxDeadline time.Time
	ctxHasDL    bool
	// vlCap clamps the vector length SETVL establishes (the SLAP-style
	// variable-VL timing experiment); isa.MaxVL means uncapped.
	vlCap int
	// MaxCycles aborts runaway simulations (default 4e9).
	MaxCycles int64
	// Trace, when non-nil, receives one line per executed basic block:
	// block id, active region, charged cycles (II when pipelined), stalls
	// and the running cycle counter — a lightweight execution trace for
	// debugging kernels and timing models.
	Trace io.Writer
	// TraceJSON, when non-nil, receives one JSONL event per executed block
	// and per attributed stall (see trace.go for the event shapes).
	TraceJSON *metrics.TraceWriter
}

// New prepares a machine to run the scheduled function fs against the
// given memory model.
func New(fs *sched.FuncSched, model mem.Model) *Machine {
	f := fs.Func
	m := &Machine{
		fs:        fs,
		model:     model,
		intRegs:   make([]uint64, f.NumRegs[isa.RegInt]),
		simdRegs:  make([]uint64, f.NumRegs[isa.RegSIMD]),
		vecRegs:   make([][isa.MaxVL]uint64, f.NumRegs[isa.RegVec]),
		accRegs:   make([]simd.Acc, f.NumRegs[isa.RegAcc]),
		vl:        isa.MaxVL,
		vlCap:     isa.MaxVL,
		vs:        8,
		memory:    make([]byte, ir.DataBase+f.DataSize),
		MaxCycles: 4e9,
	}
	for _, chunk := range f.DataInit {
		copy(m.memory[chunk.Addr:], chunk.Bytes)
	}
	m.blockRuns = make([]int64, len(fs.Blocks))
	m.blockPipeRuns = make([]int64, len(fs.Blocks))
	m.regionStack = []int{0}
	switch mm := model.(type) {
	case *mem.Hierarchy:
		m.hier = mm
	case *mem.Perfect:
		m.perf = mm
	case *cacheorg.Hierarchy:
		m.corg = mm
	}
	if d, ok := model.(mem.Detailed); ok {
		m.detailed = d
	}
	return m
}

// scalarTiming services a scalar access through the devirtualized memory
// model (see the hier/perf fields).
func (m *Machine) scalarTiming(addr int64, size int, write bool) int {
	if m.hier != nil {
		return m.hier.ScalarAccess(addr, size, write)
	}
	if m.perf != nil {
		return m.perf.ScalarAccess(addr, size, write)
	}
	if m.corg != nil {
		return m.corg.ScalarAccess(addr, size, write)
	}
	return m.model.ScalarAccess(addr, size, write)
}

// vectorTiming services a vector access through the devirtualized memory
// model.
func (m *Machine) vectorTiming(base, stride int64, vl int, write bool) int {
	if m.hier != nil {
		return m.hier.VectorAccess(base, stride, vl, write)
	}
	if m.perf != nil {
		return m.perf.VectorAccess(base, stride, vl, write)
	}
	if m.corg != nil {
		return m.corg.VectorAccess(base, stride, vl, write)
	}
	return m.model.VectorAccess(base, stride, vl, write)
}

// Memory exposes the flat data memory (for output verification).
func (m *Machine) Memory() []byte { return m.memory }

// SetVLCap clamps every vector length the program establishes through
// SETVL to at most cap (a SLAP-style variable-VL timing experiment: the
// same compiled program runs with shorter vectors, trading stall
// amortization for iteration overhead). cap <= 0 or cap >= isa.MaxVL
// restores the architectural maximum. Capping VL changes the values the
// program computes — capped runs are timing experiments, not functional
// reproductions, and output checks do not apply to them.
func (m *Machine) SetVLCap(cap int) {
	if cap <= 0 || cap > isa.MaxVL {
		cap = isa.MaxVL
	}
	m.vlCap = cap
	if m.vl > cap {
		m.vl = cap
	}
}

// setVL applies a SETVL value under the machine's VL cap.
func (m *Machine) setVL(v int) {
	if v > m.vlCap {
		v = m.vlCap
	}
	m.vl = v
	if v > m.res.VLMax {
		m.res.VLMax = v
	}
}

// ReadBytes copies n bytes starting at the virtual address addr.
func (m *Machine) ReadBytes(addr, n int64) ([]byte, error) {
	if addr < 0 || addr+n > int64(len(m.memory)) {
		return nil, fmt.Errorf("sim: read [%#x,%#x) outside memory", addr, addr+n)
	}
	out := make([]byte, n)
	copy(out, m.memory[addr:addr+n])
	return out, nil
}

// Engine selects which execution engine a machine runs on. The default
// is the v3 threaded-code engine; the v2 closure engine and the original
// interpreter are retained as bit-identical oracles for the differential
// tests and fuzzers.
type Engine int

const (
	// EngineV3 is the threaded-code engine with peephole fusion and
	// span-bulk accounting (engine3.go) — the default.
	EngineV3 Engine = iota
	// EngineV2 is the pre-decoded closure engine (predecode.go).
	EngineV2
	// EngineInterpreter is the reference interpreter (exec.go).
	EngineInterpreter
)

// SetEngine selects the execution engine for subsequent Runs. Reset
// preserves the selection, so a pooled oracle machine stays an oracle.
func (m *Machine) SetEngine(e Engine) {
	m.interp = e == EngineInterpreter
	m.useV2 = e == EngineV2
}

// Run executes the program to completion and returns the statistics. It
// runs on the v3 threaded-code engine (lowering the schedule on first use
// if core.Compile has not already) unless SetEngine, an opHook or the
// interpreter flag demands one of the oracle engines.
func (m *Machine) Run() (*Result, error) {
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			return nil, &CanceledError{Cause: err}
		}
		if m.ctxHasDL && !time.Now().Before(m.ctxDeadline) {
			return nil, &CanceledError{Cause: context.DeadlineExceeded}
		}
	}
	// Resolve the engine once per run: the interpreter when demanded (an
	// opHook implies it — only the interpreter still walks pseudo-ops),
	// else v2 or v3, lazily lowering the selected representation.
	const (
		engInterp = iota
		engV2
		engV3
	)
	eng := engV3
	switch {
	case m.interp || m.opHook != nil:
		eng = engInterp
	case m.useV2:
		eng = engV2
		if m.code == nil {
			code, err := predecoded(m.fs)
			if err != nil {
				return nil, err
			}
			m.code = code
		}
	default:
		if m.code3 == nil {
			code, err := predecoded3(m.fs)
			if err != nil {
				return nil, err
			}
			m.code3 = code
		}
	}
	blocks := m.fs.Blocks
	pc := 0
	prev := -1
	for {
		if pc < 0 || pc >= len(blocks) {
			return nil, fmt.Errorf("sim: control reached invalid block %d", pc)
		}
		bs := blocks[pc]
		m.pipelined = bs.II > 0 && pc == prev
		prev = pc
		var (
			next   int
			halted bool
			err    error
		)
		switch eng {
		case engV3:
			next, halted, err = m.execBlockV3(bs, m.code3[pc])
		case engV2:
			next, halted, err = m.execBlockCode(bs, m.code[pc])
		default:
			next, halted, err = m.execBlock(bs)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: %s B%d: %w", m.fs.Func.Name, pc, err)
		}
		if halted {
			break
		}
		if next < 0 {
			next = pc + 1
		}
		pc = next
		if m.res.Cycles > m.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded %d cycles (runaway loop?)", m.MaxCycles)
		}
		if m.ctx != nil && m.res.Cycles >= m.ctxCheckAt {
			m.ctxCheckAt = m.res.Cycles + m.ctxEvery
			if err := m.ctx.Err(); err != nil {
				return nil, m.canceled(err)
			}
			if m.ctxHasDL && !time.Now().Before(m.ctxDeadline) {
				return nil, m.canceled(context.DeadlineExceeded)
			}
		}
	}
	return m.finalize(), nil
}

// finalize snapshots the run's result: memory-hierarchy statistics (when
// the model is a *mem.Hierarchy) and the utilization histograms derived
// from the block execution counts. Completed and canceled runs share it,
// so partial results uphold the same exact-sum invariants.
func (m *Machine) finalize() *Result {
	switch h := m.model.(type) {
	case *mem.Hierarchy:
		m.res.Mem = h.Stats()
	case *mem.ReferenceHierarchy:
		m.res.Mem = h.Stats()
	case *cacheorg.Hierarchy:
		m.res.Mem = h.Stats()
		m.res.CacheOrg = h.OrgStats()
	}
	m.res.Util = m.utilization()
	res := m.res
	return &res
}

// utilization folds each block's static occupancy profile, weighted by its
// run-time execution count, into the run's histograms. Stall and drain
// cycles land in the zero buckets via Finish, so every histogram sums
// exactly to the executed cycle count.
func (m *Machine) utilization() *metrics.Utilization {
	u := metrics.NewUtilization()
	add := func(p *sched.Profile, runs int64) {
		for c := 0; c < p.Cycles; c++ {
			if k := p.Issue[c]; k > 0 {
				u.AddIssue(k, runs)
			}
		}
		for unit, h := range p.Units {
			class := unit.String()
			for c := 0; c < p.Cycles; c++ {
				if k := h[c]; k > 0 {
					u.AddUnit(class, k, runs)
				}
			}
		}
	}
	for i, bs := range m.fs.Blocks {
		if m.blockRuns[i] > 0 {
			add(bs.Profile(false), m.blockRuns[i])
		}
		if m.blockPipeRuns[i] > 0 {
			add(bs.Profile(true), m.blockPipeRuns[i])
		}
	}
	u.Finish(m.res.Cycles)
	return u
}

// region returns the currently active region id.
func (m *Machine) region() int { return m.regionStack[len(m.regionStack)-1] }

// execBlock functionally executes one block in program order and charges
// its scheduled length plus run-time stalls. It returns the next block id
// (-1 for fallthrough) and whether the machine halted.
func (m *Machine) execBlock(bs *sched.BlockSched) (next int, halted bool, err error) {
	next = -1
	stalls := int64(0)
	// The region a block's cycles belong to is fixed once its leading
	// markers have executed (the builder places markers at block heads).
	regionFrozen := false
	blockRegion := m.region()
	m.curBlock = bs.Block.ID

	for i := range bs.Block.Ops {
		op := &bs.Block.Ops[i]
		if m.opHook != nil {
			m.opHook(op)
		}
		switch op.Opcode {
		case isa.REGBEGIN:
			m.regionStack = append(m.regionStack, int(op.Imm))
			if !regionFrozen {
				blockRegion = m.region()
			}
			continue
		case isa.REGEND:
			if len(m.regionStack) == 1 {
				return 0, false, fmt.Errorf("unmatched region end (id %d)", op.Imm)
			}
			if top := m.region(); top != int(op.Imm) {
				return 0, false, fmt.Errorf("region end %d does not match open region %d", op.Imm, top)
			}
			m.regionStack = m.regionStack[:len(m.regionStack)-1]
			if !regionFrozen {
				blockRegion = m.region()
			}
			continue
		case isa.NOP:
			continue
		}
		regionFrozen = true

		stall, branch, halt, err := m.execOp(op, &bs.Ops[i])
		if err != nil {
			return 0, false, fmt.Errorf("op %d (%s): %w", i, op, err)
		}
		stalls += stall
		if halt {
			halted = true
		}
		if branch >= 0 {
			next = branch
		}
	}

	m.finishBlock(bs, blockRegion, stalls)
	return next, halted, nil
}

// finishBlock charges one executed block: its scheduled length (II when
// pipelined) plus the run-time stalls accumulated during it, attributed to
// the block's accounting region. Both engines share it, so the cycle
// accounting is identical by construction.
func (m *Machine) finishBlock(bs *sched.BlockSched, blockRegion int, stalls int64) {
	length := int64(bs.Length)
	if m.pipelined {
		// Software-pipelined steady state: back-to-back iterations of a
		// self-loop block initiate every II cycles.
		length = int64(bs.II)
		m.blockPipeRuns[bs.Block.ID]++
	} else {
		m.blockRuns[bs.Block.ID]++
	}
	cycles := length + stalls
	m.res.Cycles += cycles
	m.res.StallCycles += stalls
	rs := &m.res.Regions[blockRegion]
	rs.Cycles += cycles
	rs.StallCycles += stalls
	rs.Blocks++
	if m.Trace != nil {
		pipe := ""
		if m.pipelined {
			pipe = " (pipelined)"
		}
		fmt.Fprintf(m.Trace, "B%-4d R%d cycles=%-6d stalls=%-6d total=%d%s\n",
			bs.Block.ID, blockRegion, cycles, stalls, m.res.Cycles, pipe)
	}
	if m.TraceJSON != nil {
		m.TraceJSON.Event(blockEvent{
			Event: "block", Block: bs.Block.ID, Region: blockRegion,
			Cycles: cycles, Stalls: stalls, Total: m.res.Cycles,
			Pipelined: m.pipelined,
		})
	}
}

// execBlockCode executes one block on the pre-decoded engine: a flat walk
// over specialized executors with no opcode dispatch. Semantics match
// execBlock exactly — the region a block's cycles belong to is sampled
// after the leading markers (bc.head), the last taken branch wins, and
// HALT is sticky.
func (m *Machine) execBlockCode(bs *sched.BlockSched, bc *blockCode) (next int, halted bool, err error) {
	m.curBlock = bs.Block.ID
	m.branchTo = -1
	m.haltFl = false
	m.stallAcc = 0
	if err := m.runCode(bs, bc, 0, bc.head); err != nil {
		return 0, false, err
	}
	blockRegion := m.region()
	if err := m.runCode(bs, bc, bc.head, len(bc.code)); err != nil {
		return 0, false, err
	}
	m.finishBlock(bs, blockRegion, m.stallAcc)
	return m.branchTo, m.haltFl, nil
}

// runCode is the pre-decoded inner loop over entries [lo, hi).
func (m *Machine) runCode(bs *sched.BlockSched, bc *blockCode, lo, hi int) error {
	code := bc.code
	for i := lo; i < hi; i++ {
		if err := code[i](m); err != nil {
			if j := bc.opIdx[i]; j >= 0 {
				return fmt.Errorf("op %d (%s): %w", j, &bs.Block.Ops[j], err)
			}
			return err
		}
	}
	return nil
}

// Reset returns the machine to its freshly constructed state — registers,
// vector state, data memory, accounting and the memory model — while
// keeping every allocation and the pre-decoded code. core.Program uses it
// to recycle machines across runs instead of reallocating per run.
func (m *Machine) Reset() {
	clear(m.intRegs)
	clear(m.simdRegs)
	clear(m.vecRegs)
	clear(m.accRegs)
	m.vl = isa.MaxVL
	m.vlCap = isa.MaxVL
	m.vs = 8
	clear(m.memory)
	for _, chunk := range m.fs.Func.DataInit {
		copy(m.memory[chunk.Addr:], chunk.Bytes)
	}
	m.regionStack = m.regionStack[:1]
	m.regionStack[0] = 0
	m.pipelined = false
	m.res = Result{}
	clear(m.blockRuns)
	clear(m.blockPipeRuns)
	m.curBlock = 0
	m.branchTo = 0
	m.haltFl = false
	m.stallAcc = 0
	m.ctx = nil
	m.ctxEvery = 0
	m.ctxCheckAt = 0
	m.ctxDeadline = time.Time{}
	m.ctxHasDL = false
	m.model.Reset()
}

// count records an executed operation and its micro-operations.
func (m *Machine) count(op *ir.Op) {
	micro := microOps(op, m.vl)
	m.res.Ops++
	m.res.MicroOps += micro
	rs := &m.res.Regions[m.region()]
	rs.Ops++
	rs.MicroOps += micro
}

// microOps returns the number of micro-operations (processed sub-word
// items) of one dynamic operation: 1 for scalar operations, the packed
// lane count for µSIMD operations, and VL times the per-word count for
// vector operations (up to 16x8, as the paper notes).
func microOps(op *ir.Op, vl int) int64 {
	in := op.Info()
	perWord := int64(1)
	if op.Width != 0 {
		perWord = int64(op.Width.Lanes())
	} else if in.Unit == isa.UnitSIMD || in.Unit == isa.UnitVector {
		// Width-less packed operations (logicals, moves) process a full
		// 64-bit word; count its eight bytes as the items processed.
		switch op.Opcode {
		case isa.PAND, isa.POR, isa.PXOR, isa.PANDN,
			isa.VAND, isa.VOR, isa.VXOR, isa.VANDN:
			perWord = 8
		}
	}
	if in.Vector {
		if op.Opcode.IsVectorMem() {
			return int64(vl) // one item per 64-bit word moved
		}
		return int64(vl) * perWord
	}
	if in.Unit == isa.UnitSIMD {
		return perWord
	}
	return 1
}
