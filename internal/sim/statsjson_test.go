package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/metrics"
	"vsimdvliw/internal/sched"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenStatsAndTrace freezes the machine-readable outputs on a fixed
// small program: the stats JSON (struct field order is the wire order, and
// name-keyed maps marshal sorted, so the bytes are deterministic) and the
// bounded JSONL event trace including its truncation marker. Regenerate
// intentionally with:
//
//	go test ./internal/sim -run TestGoldenStatsAndTrace -update
func TestGoldenStatsAndTrace(t *testing.T) {
	cfg := &machine.Vector2x2
	fs, err := sched.Schedule(buildStallHeavy(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewHierarchy(cfg))
	var trace bytes.Buffer
	m.TraceJSON = metrics.NewTraceWriter(&trace, 4) // small bound: marker included
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.TraceJSON.Truncated() {
		t.Fatal("trace bound not hit; the golden must cover the truncation marker")
	}

	stats, err := json.MarshalIndent(struct {
		Stats          *Result          `json:"stats"`
		StallsByOpcode map[string]int64 `json:"stalls_by_opcode"`
	}{res, res.StallsByOpcode()}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	stats = append(stats, '\n')

	golden := map[string][]byte{
		"stats.json":  stats,
		"trace.jsonl": trace.Bytes(),
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata/golden", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, got := range golden {
		path := filepath.Join("testdata", "golden", name)
		if *updateGolden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden (regenerate intentionally with -update):\ngot:\n%s\nwant:\n%s",
				name, got, want)
		}
	}
}
