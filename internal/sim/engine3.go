package sim

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// Execution engine v3: threaded-code dispatch over a flat struct-of-arrays
// instruction stream. Where the v2 engine (predecode.go) lowers each
// operation into a specialized closure and executes a block as a slice of
// indirect calls, v3 lowers each operation into one decoded word — an
// opcode-family index, width, register indices, immediate, and the
// resolved packed-lane function — and executes a block as one tight loop
// over a single dense switch (a jump table), with no per-op call overhead.
//
// Three further transformations ride on the flat stream:
//
//   - peephole fusion: the dominant adjacent pairs of the six Mediabench
//     applications (load→packed-op, packed-op chains, packed-op→store,
//     splat→op, vector-load→accumulate; see sched.Fusable) are merged
//     into single fused dispatch words executing both halves in program
//     order. Fusion is purely a dispatch optimization — cycle accounting
//     is block-level and the memory-model calls are unchanged, so fused
//     execution is bit-identical to unfused by construction.
//
//   - span-bulk accounting: the per-op Ops/MicroOps counters are
//     precomputed per stall-free span (runs of operations between region
//     markers and SETVLs, within which VL and the active region are
//     constant) and charged by one accounting word per span, replacing a
//     counter update per operation. microParts provides the compile-time
//     (base, perVL) factors, so span totals equal the per-op sums exactly.
//
//   - batched accumulation: VSADA/VMACA/VACCW use the vector-granular
//     simd.Acc methods (SADBV/MACWV/ACCWV), which wrap once per vector
//     operation instead of once per element — bit-identical by the wrap
//     congruence argument documented in internal/simd/acc.go.
//
// The v2 engine and the original interpreter are retained unchanged as
// bit-identical oracles: the three-way differential tests and FuzzEngine3
// prove all engines agree on registers, memory, cycles, exact-sum stall
// breakdowns, utilization, and per-organization cache counters.

// EngineVersion names the default execution engine; the served layer
// exports it so a deployment can confirm which engine is live.
const EngineVersion = "v3"

// Opcode families of the v3 dispatch word. The dispatch switch over these
// constants is dense, so the compiler emits a jump table.
const (
	famAcct uint16 = iota // span accounting word (d indexes blockCode3.accts)
	famRB                 // region begin (imm = region id)
	famRE                 // region end (imm = region id)

	famMOVI
	famMOV

	// Scalar ALU ops get one family per opcode (register form; the
	// immediate form is always the next constant) so the hot integer
	// loop-control and addressing arithmetic executes inline in the
	// dispatch switch instead of through an indirect aluFn call.
	famADD
	famADDI
	famSUB
	famSUBI
	famMUL
	famMULI
	famAND
	famANDI
	famOR
	famORI
	famXOR
	famXORI
	famSHL
	famSHLI
	famSHR
	famSHRI
	famSRA
	famSRAI
	famCMPEQ
	famCMPEQI
	famCMPNE
	famCMPNEI
	famCMPLT
	famCMPLTI
	famCMPLE
	famCMPLEI
	famCMPLTU
	famCMPLTUI

	famDIV
	famDIVI
	famSELECT
	famLD // flg = access size | flgSigned
	famST // flg = access size
	famBEQ
	famBNE
	famBLT
	famBGE
	famJMP
	famHALT

	famLDM
	famSTM
	famMOVIM
	famMOVRM
	famMOVMR
	famPSPLAT
	famPSH // fn1 = resolved immediate packed shift
	famP2  // fn = resolved two-source packed compute

	famSETVLI
	famSETVLR
	famSETVSI
	famSETVSR

	famVLD
	famVST
	famVMOV
	famVSPLAT
	famVSH
	famV2
	famVEXTR
	famVINS
	famACLR
	famVSADA
	famVMACA
	famVACCW
	famVSUM
	famAPACK

	// Fused families: two operations per dispatch word, executed in
	// program order. The first half's fields are the unfused ones; the
	// second half uses d2/a2/b2/fnF (and imm2/op2/os2/idx2 for the store).
	famLdmP2
	famSplatP2
	famP2P2
	famP2Stm
	famVldSada
	famVldMaca
	famVldAccw
)

// famLD flag bits: low nibble is the access size in bytes, flgSigned marks
// sign-extending loads.
const flgSigned = 0x10

// word3 is one decoded dispatch word: every compile-time decision (opcode
// family, width, register indices, immediates, resolved lane functions)
// is baked in, so dispatch reads only this word and machine state. Words
// hold no run-time state — the same lowered stream is shared by any
// number of concurrent machines.
type word3 struct {
	fam uint16
	flg uint8
	w   simd.Width
	// First-half operands (the only ones for unfused words).
	d, a, b, c uint16
	// Second-half operands of fused words.
	d2, a2, b2 uint16
	imm, imm2  int64
	fn, fnF    func(a, b uint64) uint64
	fn1        func(a uint64) uint64
}

// meta3 is the cold half of a dispatch word: the source-operation
// identity used for error wrapping and stall attribution (idx/op/os for
// the first half, idx2/op2/os2 for a fused second half). It lives in a
// slice parallel to blockCode3.words so the hot word stays one cache
// line (64 bytes); only the memory, fault and SETVL arms ever touch it.
type meta3 struct {
	op, op2   *ir.Op
	os, os2   *sched.OpSched
	idx, idx2 int32
}

// acct3 is the precomputed accounting of one stall-free span: the span
// executes ops operations and base + perVL*VL micro-operations.
type acct3 struct {
	ops, base, perVL int64
}

// blockCode3 is the v3 lowered form of one scheduled basic block.
type blockCode3 struct {
	words []word3
	// meta is parallel to words: meta[i] is the cold half of words[i]
	// (zero for accounting and marker words, which have no source op).
	meta  []meta3
	accts []acct3
	// head is the number of leading region-marker words before the first
	// real operation: the block's accounting region is sampled after they
	// run, exactly as the interpreter freezes it.
	head int
}

// fusionLowered counts statically fused pairs per kind, incremented at
// lowering time (once per block per schedule, thanks to the Code memo).
// The served layer exports them so a deployment can confirm fusion is
// active; they are deliberately not part of Result, which must stay
// bit-identical across engines.
var fusionLowered [sched.NumFusePairs]atomic.Int64

// FusionCount is one fused-pair kind's static lowering count.
type FusionCount struct {
	Kind  string
	Count int64
}

// FusionLowered snapshots the per-kind fused-pair lowering counters
// (FuseNone excluded).
func FusionLowered() []FusionCount {
	out := make([]FusionCount, 0, sched.NumFusePairs-1)
	for k := 1; k < sched.NumFusePairs; k++ {
		out = append(out, FusionCount{
			Kind:  sched.FusePair(k).String(),
			Count: fusionLowered[k].Load(),
		})
	}
	return out
}

// predecoded3 lowers every block of fs into v3 words, memoizing on the
// schedule's CodeV3 slot so concurrent machines share the stream.
func predecoded3(fs *sched.FuncSched) ([]*blockCode3, error) {
	out := make([]*blockCode3, len(fs.Blocks))
	for i, bs := range fs.Blocks {
		c, err := bs.Code(sched.CodeV3, compileBlockV3)
		if err != nil {
			return nil, fmt.Errorf("sim: predecode %s B%d: %w", fs.Func.Name, bs.Block.ID, err)
		}
		out[i] = c.(*blockCode3)
	}
	return out, nil
}

// ent3 is one lowered operation before fusion and span assembly.
type ent3 struct {
	w      word3
	mt     meta3
	marker bool
	setvl  bool
	// Accounting contribution: ops operations, base + perVL*VL micro-ops.
	ops, base, perVL int64
}

// compileBlockV3 lowers one block into the v3 word stream: NOPs vanish,
// region markers become famRB/famRE words, every other operation becomes
// one decoded word; adjacent fusable pairs (sched.Fusable) merge into
// fused words; and one famAcct word per stall-free span precomputes the
// span's operation/micro-operation counts.
func compileBlockV3(bs *sched.BlockSched) (any, error) {
	// Pass 1: lower operations to entries (capacity for the worst case —
	// no NOPs — so the append loop never reallocates).
	ents := make([]ent3, 0, len(bs.Block.Ops))
	for i := range bs.Block.Ops {
		op := &bs.Block.Ops[i]
		switch op.Opcode {
		case isa.NOP:
			continue
		case isa.REGBEGIN:
			ents = append(ents, ent3{w: word3{fam: famRB, imm: op.Imm}, marker: true})
			continue
		case isa.REGEND:
			ents = append(ents, ent3{w: word3{fam: famRE, imm: op.Imm}, marker: true})
			continue
		}
		w, err := lowerOp3(op)
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op, err)
		}
		base, perVL := microParts(op)
		ents = append(ents, ent3{
			w: w, mt: meta3{op: op, os: &bs.Ops[i], idx: int32(i)},
			setvl: op.Opcode == isa.SETVL,
			ops:   1, base: base, perVL: perVL,
		})
	}

	// Pass 2: greedy left-to-right peephole fusion of adjacent pairs.
	// Markers break adjacency; SETVL and markers are never fusable, so
	// fusion cannot cross span boundaries. The pass rewrites ents in
	// place: entries are copied out before the write, and the write index
	// never overtakes the read index.
	fused := ents[:0]
	for i := 0; i < len(ents); i++ {
		e := ents[i]
		if !e.marker && i+1 < len(ents) && !ents[i+1].marker {
			n := ents[i+1]
			if k := sched.Fusable(e.mt.op, n.mt.op); k != sched.FuseNone {
				fw, err := fuseWords(k, &e.w, &n.w)
				if err != nil {
					return nil, fmt.Errorf("op %d (%s): %w", e.mt.idx, e.mt.op, err)
				}
				fusionLowered[k].Add(1)
				e.w = fw
				e.mt.op2, e.mt.os2, e.mt.idx2 = n.mt.op, n.mt.os, n.mt.idx
				e.ops += n.ops
				e.base += n.base
				e.perVL += n.perVL
				fused = append(fused, e)
				i++
				continue
			}
		}
		fused = append(fused, e)
	}

	// Pass 3: emit words with one accounting word per stall-free span.
	// A span's VL and region are constant (markers flush before they run;
	// SETVL flushes after itself, its own VL-independent count included in
	// the preceding span), so the famAcct word can charge the whole span
	// when it executes.
	// One word per entry plus one famAcct word per span; spans are closed
	// by markers and SETVLs, so counting those sizes the stream exactly
	// and the appends below never reallocate.
	spans := 0
	inSpan := false
	for _, e := range fused {
		if e.marker {
			inSpan = false
			continue
		}
		if !inSpan {
			spans++
			inSpan = true
		}
		if e.setvl {
			inSpan = false
		}
	}
	bc := &blockCode3{
		words: make([]word3, 0, len(fused)+spans),
		meta:  make([]meta3, 0, len(fused)+spans),
	}
	spanAt := -1
	var acc acct3
	flush := func() {
		if spanAt >= 0 {
			bc.words[spanAt].d = uint16(len(bc.accts))
			bc.accts = append(bc.accts, acc)
			acc = acct3{}
			spanAt = -1
		}
	}
	leading := true
	for _, e := range fused {
		if e.marker {
			flush()
			bc.words = append(bc.words, e.w)
			bc.meta = append(bc.meta, meta3{})
			if leading {
				bc.head = len(bc.words)
			}
			continue
		}
		leading = false
		if spanAt < 0 {
			spanAt = len(bc.words)
			bc.words = append(bc.words, word3{fam: famAcct})
			bc.meta = append(bc.meta, meta3{})
		}
		acc.ops += e.ops
		acc.base += e.base
		acc.perVL += e.perVL
		bc.words = append(bc.words, e.w)
		bc.meta = append(bc.meta, e.mt)
		if e.setvl {
			flush()
		}
	}
	flush()
	return bc, nil
}

// fuseWords merges two lowered words into one fused word. The lowered
// families must match the classification — a mismatch means sched.Fusable
// and the lowering disagree, which is a compile bug reported loudly.
func fuseWords(k sched.FusePair, a, b *word3) (word3, error) {
	var fam uint16
	switch k {
	case sched.FuseLoadPacked:
		if a.fam != famLDM || b.fam != famP2 {
			return word3{}, fmt.Errorf("fusion %s does not match lowered families %d,%d", k, a.fam, b.fam)
		}
		fam = famLdmP2
	case sched.FuseSplatPacked:
		if a.fam != famPSPLAT || b.fam != famP2 {
			return word3{}, fmt.Errorf("fusion %s does not match lowered families %d,%d", k, a.fam, b.fam)
		}
		fam = famSplatP2
	case sched.FusePackedPacked:
		if a.fam != famP2 || b.fam != famP2 {
			return word3{}, fmt.Errorf("fusion %s does not match lowered families %d,%d", k, a.fam, b.fam)
		}
		fam = famP2P2
	case sched.FusePackedStore:
		if a.fam != famP2 || b.fam != famSTM {
			return word3{}, fmt.Errorf("fusion %s does not match lowered families %d,%d", k, a.fam, b.fam)
		}
		fam = famP2Stm
	case sched.FuseLoadAccum:
		if a.fam != famVLD {
			return word3{}, fmt.Errorf("fusion %s does not match lowered families %d,%d", k, a.fam, b.fam)
		}
		switch b.fam {
		case famVSADA:
			fam = famVldSada
		case famVMACA:
			fam = famVldMaca
		case famVACCW:
			fam = famVldAccw
		default:
			return word3{}, fmt.Errorf("fusion %s does not match lowered families %d,%d", k, a.fam, b.fam)
		}
	default:
		return word3{}, fmt.Errorf("unknown fusion kind %d", k)
	}
	w := *a
	w.fam = fam
	w.d2, w.a2, w.b2 = b.d, b.a, b.b
	w.imm2 = b.imm
	w.fnF = b.fn
	return w, nil
}

// aluFam3 maps a scalar ALU opcode to its specialized register-form
// dispatch family; the immediate form is the next constant.
func aluFam3(op isa.Opcode) uint16 {
	switch op {
	case isa.ADD:
		return famADD
	case isa.SUB:
		return famSUB
	case isa.MUL:
		return famMUL
	case isa.AND:
		return famAND
	case isa.OR:
		return famOR
	case isa.XOR:
		return famXOR
	case isa.SHL:
		return famSHL
	case isa.SHR:
		return famSHR
	case isa.SRA:
		return famSRA
	case isa.CMPEQ:
		return famCMPEQ
	case isa.CMPNE:
		return famCMPNE
	case isa.CMPLT:
		return famCMPLT
	case isa.CMPLE:
		return famCMPLE
	case isa.CMPLTU:
		return famCMPLTU
	}
	panic("sim: aluFam3 called with non-ALU opcode " + op.Name())
}

// lowerOp3 lowers one real (non-pseudo) operation into its dispatch word.
// Every opcode the interpreter implements must be lowered here — the
// coverage test asserts there is no gap. Range checks on immediates
// (SETVL, VEXTR/VINS, DIV by zero) stay at run time, matching the
// interpreter: a program only faults if the faulting operation executes.
func lowerOp3(op *ir.Op) (word3, error) {
	w := word3{w: op.Width, imm: op.Imm}
	dst := func(i int) uint16 { return uint16(op.Dst[i].ID) }
	src := func(i int) uint16 { return uint16(op.Src[i].ID) }
	switch op.Opcode {
	case isa.MOVI:
		w.fam, w.d = famMOVI, dst(0)
	case isa.MOV:
		w.fam, w.d, w.a = famMOV, dst(0), src(0)
	case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SRA, isa.CMPEQ, isa.CMPNE, isa.CMPLT,
		isa.CMPLE, isa.CMPLTU:
		w.d, w.a = dst(0), src(0)
		if fam := aluFam3(op.Opcode); op.UseImm {
			w.fam = fam + 1
		} else {
			w.fam, w.b = fam, src(1)
		}
	case isa.DIV:
		w.d, w.a = dst(0), src(0)
		if op.UseImm {
			w.fam = famDIVI
		} else {
			w.fam, w.b = famDIV, src(1)
		}
	case isa.SELECT:
		w.fam, w.d, w.a, w.b, w.c = famSELECT, dst(0), src(0), src(1), src(2)

	case isa.LDB, isa.LDBU, isa.LDH, isa.LDHU, isa.LDW, isa.LDWU, isa.LDD:
		w.fam, w.d, w.a = famLD, dst(0), src(0)
		w.flg = uint8(isa.AccessBytes(op.Opcode))
		if isa.LoadSigned(op.Opcode) {
			w.flg |= flgSigned
		}
	case isa.STB, isa.STH, isa.STW, isa.STD:
		w.fam, w.a, w.b = famST, src(0), src(1)
		w.flg = uint8(isa.AccessBytes(op.Opcode))

	case isa.BEQ:
		w.fam, w.a, w.b, w.imm = famBEQ, src(0), src(1), int64(op.Target)
	case isa.BNE:
		w.fam, w.a, w.b, w.imm = famBNE, src(0), src(1), int64(op.Target)
	case isa.BLT:
		w.fam, w.a, w.b, w.imm = famBLT, src(0), src(1), int64(op.Target)
	case isa.BGE:
		w.fam, w.a, w.b, w.imm = famBGE, src(0), src(1), int64(op.Target)
	case isa.JMP:
		w.fam, w.imm = famJMP, int64(op.Target)
	case isa.HALT:
		w.fam = famHALT

	case isa.LDM:
		w.fam, w.d, w.a = famLDM, dst(0), src(0)
	case isa.STM:
		w.fam, w.a, w.b = famSTM, src(0), src(1)
	case isa.MOVIM:
		w.fam, w.d = famMOVIM, dst(0)
	case isa.MOVRM:
		w.fam, w.d, w.a = famMOVRM, dst(0), src(0)
	case isa.MOVMR:
		w.fam, w.d, w.a = famMOVMR, dst(0), src(0)
	case isa.PSPLAT:
		w.fam, w.d, w.a = famPSPLAT, dst(0), src(0)
	case isa.PSLL, isa.PSRL, isa.PSRA:
		w.fam, w.d, w.a = famPSH, dst(0), src(0)
		w.fn1 = shiftFn(op.Opcode, op.Width, uint(op.Imm))
	case isa.PADD, isa.PSUB, isa.PADDS, isa.PSUBS, isa.PADDU, isa.PSUBU,
		isa.PMULL, isa.PMULH, isa.PMADD, isa.PAVG, isa.PMINU, isa.PMAXU,
		isa.PMINS, isa.PMAXS, isa.PABSD, isa.PSAD, isa.PAND, isa.POR,
		isa.PXOR, isa.PANDN, isa.PCMPEQ, isa.PCMPGT, isa.PACKSS,
		isa.PACKUS, isa.PUNPCKL, isa.PUNPCKH:
		w.fam, w.d, w.a, w.b = famP2, dst(0), src(0), src(1)
		w.fn = packedFn(op.Opcode, op.Width)

	case isa.SETVL:
		if op.UseImm {
			w.fam = famSETVLI
		} else {
			w.fam, w.a = famSETVLR, src(0)
		}
	case isa.SETVS:
		if op.UseImm {
			w.fam = famSETVSI
		} else {
			w.fam, w.a = famSETVSR, src(0)
		}

	case isa.VLD:
		w.fam, w.d, w.a = famVLD, dst(0), src(0)
	case isa.VST:
		w.fam, w.a, w.b = famVST, src(0), src(1)
	case isa.VMOV:
		w.fam, w.d, w.a = famVMOV, dst(0), src(0)
	case isa.VSPLAT:
		w.fam, w.d, w.a = famVSPLAT, dst(0), src(0)
	case isa.VSLL, isa.VSRL, isa.VSRA:
		w.fam, w.d, w.a = famVSH, dst(0), src(0)
		w.fn1 = shiftFn(vecBase(op.Opcode), op.Width, uint(op.Imm))
	case isa.VADD, isa.VSUB, isa.VADDS, isa.VSUBS, isa.VADDU, isa.VSUBU,
		isa.VMULL, isa.VMULH, isa.VMADD, isa.VAVG, isa.VMINU, isa.VMAXU,
		isa.VMINS, isa.VMAXS, isa.VABSD, isa.VAND, isa.VOR, isa.VXOR,
		isa.VANDN, isa.VCMPEQ, isa.VCMPGT, isa.VPACKSS, isa.VPACKUS,
		isa.VUNPCKL, isa.VUNPCKH:
		w.fam, w.d, w.a, w.b = famV2, dst(0), src(0), src(1)
		w.fn = packedFn(vecBase(op.Opcode), op.Width)
	case isa.VEXTR:
		w.fam, w.d, w.a = famVEXTR, dst(0), src(0)
	case isa.VINS:
		w.fam, w.d, w.a, w.b = famVINS, dst(0), src(0), src(1)

	case isa.ACLR:
		w.fam, w.d = famACLR, dst(0)
	case isa.VSADA:
		w.fam, w.d, w.a, w.b = famVSADA, dst(0), src(0), src(1)
	case isa.VMACA:
		w.fam, w.d, w.a, w.b = famVMACA, dst(0), src(0), src(1)
	case isa.VACCW:
		w.fam, w.d, w.a = famVACCW, dst(0), src(0)
	case isa.VSUM:
		w.fam, w.d, w.a = famVSUM, dst(0), src(0)
	case isa.APACK:
		w.fam, w.d, w.a = famAPACK, dst(0), src(0)

	default:
		return word3{}, fmt.Errorf("no v3 dispatch word for opcode %s", op.Opcode.Name())
	}
	return w, nil
}

// opErr3 wraps an executor error with its source operation, matching the
// v2 engine and the interpreter exactly.
func opErr3(idx int32, op *ir.Op, err error) error {
	return fmt.Errorf("op %d (%s): %w", idx, op, err)
}

// load64 is the fixed-8-byte load used by the µSIMD/vector word paths.
func (m *Machine) load64(addr int64) (uint64, error) {
	if addr < 0 || addr+8 > int64(len(m.memory)) {
		return 0, fmt.Errorf("load at %#x (%d bytes) outside memory", addr, 8)
	}
	return binary.LittleEndian.Uint64(m.memory[addr:]), nil
}

// store64 is the fixed-8-byte store used by the µSIMD/vector word paths.
func (m *Machine) store64(addr int64, v uint64) error {
	if addr < 0 || addr+8 > int64(len(m.memory)) {
		return fmt.Errorf("store at %#x (%d bytes) outside memory", addr, 8)
	}
	binary.LittleEndian.PutUint64(m.memory[addr:], v)
	return nil
}

// regionEnd pops a region marker, with the same error strings as the v2
// lowering (reported without op context, exactly as the interpreter does).
func (m *Machine) regionEnd(id int) error {
	if len(m.regionStack) == 1 {
		return fmt.Errorf("unmatched region end (id %d)", id)
	}
	if top := m.region(); top != id {
		return fmt.Errorf("region end %d does not match open region %d", id, top)
	}
	m.regionStack = m.regionStack[:len(m.regionStack)-1]
	return nil
}

// execBlockV3 executes one block on the v3 engine. Semantics match
// execBlock/execBlockCode exactly — the region a block's cycles belong to
// is sampled after the leading markers, the last taken branch wins, and
// HALT is sticky.
func (m *Machine) execBlockV3(bs *sched.BlockSched, bc *blockCode3) (next int, halted bool, err error) {
	m.curBlock = bs.Block.ID
	m.branchTo = -1
	m.haltFl = false
	m.stallAcc = 0
	words := bc.words
	for i := 0; i < bc.head; i++ {
		w := &words[i]
		if w.fam == famRB {
			m.regionStack = append(m.regionStack, int(w.imm))
		} else if err := m.regionEnd(int(w.imm)); err != nil {
			return 0, false, err
		}
	}
	blockRegion := m.region()
	if err := m.runWords3(bc, bc.head); err != nil {
		return 0, false, err
	}
	m.finishBlock(bs, blockRegion, m.stallAcc)
	return m.branchTo, m.haltFl, nil
}

// runWords3 is the v3 inner loop: one dense switch per dispatch word from
// index lo to the end of the block. The register files are hoisted into
// locals so the common arithmetic arms address them without reloading the
// machine's slice headers (no arm ever reallocates them).
func (m *Machine) runWords3(bc *blockCode3, lo int) error {
	words := bc.words
	intRegs := m.intRegs
	simdRegs := m.simdRegs
	// curRegion mirrors the top of the region stack across the loop; the
	// famRB/famRE arms are the only places it can change, so the famAcct
	// arm skips the stack load. Indexing Regions stays inside famAcct so
	// an out-of-range region id faults exactly where the other engines
	// would: on accounting, not on the marker.
	curRegion := m.region()
	for i := lo; i < len(words); i++ {
		w := &words[i]
		switch w.fam {
		case famAcct:
			ac := &bc.accts[w.d]
			micro := ac.base + ac.perVL*int64(m.vl)
			m.res.Ops += ac.ops
			m.res.MicroOps += micro
			rs := &m.res.Regions[curRegion]
			rs.Ops += ac.ops
			rs.MicroOps += micro
		case famRB:
			m.regionStack = append(m.regionStack, int(w.imm))
			curRegion = int(w.imm)
		case famRE:
			if err := m.regionEnd(int(w.imm)); err != nil {
				return err
			}
			curRegion = m.region()

		case famMOVI:
			intRegs[w.d] = uint64(w.imm)
		case famMOV:
			intRegs[w.d] = intRegs[w.a]
		case famADD:
			intRegs[w.d] = intRegs[w.a] + intRegs[w.b]
		case famADDI:
			intRegs[w.d] = intRegs[w.a] + uint64(w.imm)
		case famSUB:
			intRegs[w.d] = intRegs[w.a] - intRegs[w.b]
		case famSUBI:
			intRegs[w.d] = intRegs[w.a] - uint64(w.imm)
		case famMUL:
			intRegs[w.d] = uint64(int64(intRegs[w.a]) * int64(intRegs[w.b]))
		case famMULI:
			intRegs[w.d] = uint64(int64(intRegs[w.a]) * w.imm)
		case famAND:
			intRegs[w.d] = intRegs[w.a] & intRegs[w.b]
		case famANDI:
			intRegs[w.d] = intRegs[w.a] & uint64(w.imm)
		case famOR:
			intRegs[w.d] = intRegs[w.a] | intRegs[w.b]
		case famORI:
			intRegs[w.d] = intRegs[w.a] | uint64(w.imm)
		case famXOR:
			intRegs[w.d] = intRegs[w.a] ^ intRegs[w.b]
		case famXORI:
			intRegs[w.d] = intRegs[w.a] ^ uint64(w.imm)
		case famSHL:
			intRegs[w.d] = intRegs[w.a] << (intRegs[w.b] & 63)
		case famSHLI:
			intRegs[w.d] = intRegs[w.a] << (uint64(w.imm) & 63)
		case famSHR:
			intRegs[w.d] = intRegs[w.a] >> (intRegs[w.b] & 63)
		case famSHRI:
			intRegs[w.d] = intRegs[w.a] >> (uint64(w.imm) & 63)
		case famSRA:
			intRegs[w.d] = uint64(int64(intRegs[w.a]) >> (intRegs[w.b] & 63))
		case famSRAI:
			intRegs[w.d] = uint64(int64(intRegs[w.a]) >> (uint64(w.imm) & 63))
		case famCMPEQ:
			intRegs[w.d] = boolTo(intRegs[w.a] == intRegs[w.b])
		case famCMPEQI:
			intRegs[w.d] = boolTo(intRegs[w.a] == uint64(w.imm))
		case famCMPNE:
			intRegs[w.d] = boolTo(intRegs[w.a] != intRegs[w.b])
		case famCMPNEI:
			intRegs[w.d] = boolTo(intRegs[w.a] != uint64(w.imm))
		case famCMPLT:
			intRegs[w.d] = boolTo(int64(intRegs[w.a]) < int64(intRegs[w.b]))
		case famCMPLTI:
			intRegs[w.d] = boolTo(int64(intRegs[w.a]) < w.imm)
		case famCMPLE:
			intRegs[w.d] = boolTo(int64(intRegs[w.a]) <= int64(intRegs[w.b]))
		case famCMPLEI:
			intRegs[w.d] = boolTo(int64(intRegs[w.a]) <= w.imm)
		case famCMPLTU:
			intRegs[w.d] = boolTo(intRegs[w.a] < intRegs[w.b])
		case famCMPLTUI:
			intRegs[w.d] = boolTo(intRegs[w.a] < uint64(w.imm))
		case famDIV:
			b := int64(intRegs[w.b])
			if b == 0 {
				mt := &bc.meta[i]
				return opErr3(mt.idx, mt.op, fmt.Errorf("division by zero"))
			}
			intRegs[w.d] = uint64(int64(intRegs[w.a]) / b)
		case famDIVI:
			if w.imm == 0 {
				mt := &bc.meta[i]
				return opErr3(mt.idx, mt.op, fmt.Errorf("division by zero"))
			}
			intRegs[w.d] = uint64(int64(intRegs[w.a]) / w.imm)
		case famSELECT:
			if intRegs[w.a] != 0 {
				intRegs[w.d] = intRegs[w.b]
			} else {
				intRegs[w.d] = intRegs[w.c]
			}

		case famLD:
			size := int(w.flg & 0xF)
			addr := int64(intRegs[w.a]) + w.imm
			v, e := m.loadWord(addr, size)
			mt := &bc.meta[i]
			if e != nil {
				return opErr3(mt.idx, mt.op, e)
			}
			if w.flg&flgSigned != 0 {
				v = signExtend(v, size)
			}
			intRegs[w.d] = v
			m.stallAcc += m.memStall(mt.op, mt.os, m.scalarTiming(addr, size, false))
		case famST:
			size := int(w.flg & 0xF)
			addr := int64(intRegs[w.b]) + w.imm
			mt := &bc.meta[i]
			if e := m.storeWord(addr, size, intRegs[w.a]); e != nil {
				return opErr3(mt.idx, mt.op, e)
			}
			m.stallAcc += m.memStall(mt.op, mt.os, m.scalarTiming(addr, size, true))

		case famBEQ:
			if intRegs[w.a] == intRegs[w.b] {
				m.branchTo = int(w.imm)
			}
		case famBNE:
			if intRegs[w.a] != intRegs[w.b] {
				m.branchTo = int(w.imm)
			}
		case famBLT:
			if int64(intRegs[w.a]) < int64(intRegs[w.b]) {
				m.branchTo = int(w.imm)
			}
		case famBGE:
			if int64(intRegs[w.a]) >= int64(intRegs[w.b]) {
				m.branchTo = int(w.imm)
			}
		case famJMP:
			m.branchTo = int(w.imm)
		case famHALT:
			m.haltFl = true

		case famLDM:
			addr := int64(intRegs[w.a]) + w.imm
			v, e := m.load64(addr)
			mt := &bc.meta[i]
			if e != nil {
				return opErr3(mt.idx, mt.op, e)
			}
			simdRegs[w.d] = v
			m.stallAcc += m.memStall(mt.op, mt.os, m.scalarTiming(addr, 8, false))
		case famSTM:
			addr := int64(intRegs[w.b]) + w.imm
			mt := &bc.meta[i]
			if e := m.store64(addr, simdRegs[w.a]); e != nil {
				return opErr3(mt.idx, mt.op, e)
			}
			m.stallAcc += m.memStall(mt.op, mt.os, m.scalarTiming(addr, 8, true))
		case famMOVIM:
			simdRegs[w.d] = uint64(w.imm)
		case famMOVRM:
			simdRegs[w.d] = intRegs[w.a]
		case famMOVMR:
			intRegs[w.d] = simdRegs[w.a]
		case famPSPLAT:
			simdRegs[w.d] = simd.Splat(intRegs[w.a], w.w)
		case famPSH:
			simdRegs[w.d] = w.fn1(simdRegs[w.a])
		case famP2:
			simdRegs[w.d] = w.fn(simdRegs[w.a], simdRegs[w.b])

		case famSETVLI:
			if w.imm < 1 || w.imm > isa.MaxVL {
				mt := &bc.meta[i]
				return opErr3(mt.idx, mt.op, fmt.Errorf("SETVL %d out of range", w.imm))
			}
			m.setVL(int(w.imm))
		case famSETVLR:
			v := int64(intRegs[w.a])
			if v < 1 || v > isa.MaxVL {
				mt := &bc.meta[i]
				return opErr3(mt.idx, mt.op, fmt.Errorf("SETVL %d out of range", v))
			}
			m.setVL(int(v))
		case famSETVSI:
			m.vs = w.imm
		case famSETVSR:
			m.vs = int64(intRegs[w.a])

		case famVLD:
			if err := m.vload3(w, &bc.meta[i], w.d); err != nil {
				return err
			}
		case famVST:
			b := int64(intRegs[w.b]) + w.imm
			vec := &m.vecRegs[w.a]
			vl := m.vl
			mt := &bc.meta[i]
			// Overflow-safe form of b+vl*8 <= len(memory).
			if m.vs == 8 && b >= 0 && b <= int64(len(m.memory))-int64(vl)*8 {
				dst := m.memory[b:]
				for i := 0; i < vl; i++ {
					binary.LittleEndian.PutUint64(dst[i*8:], vec[i])
				}
			} else {
				for i := 0; i < vl; i++ {
					if e := m.store64(b+int64(i)*m.vs, vec[i]); e != nil {
						return opErr3(mt.idx, mt.op, e)
					}
				}
			}
			m.stallAcc += m.memStall(mt.op, mt.os, m.vectorTiming(b, m.vs, vl, true))
		case famVMOV:
			src, dst := &m.vecRegs[w.a], &m.vecRegs[w.d]
			copy(dst[:m.vl], src[:m.vl])
		case famVSPLAT:
			v := intRegs[w.a]
			dst := &m.vecRegs[w.d]
			for i := 0; i < m.vl; i++ {
				dst[i] = v
			}
		case famVSH:
			src, dst := &m.vecRegs[w.a], &m.vecRegs[w.d]
			f := w.fn1
			for i := 0; i < m.vl; i++ {
				dst[i] = f(src[i])
			}
		case famV2:
			a, b, dst := &m.vecRegs[w.a], &m.vecRegs[w.b], &m.vecRegs[w.d]
			f := w.fn
			for i := 0; i < m.vl; i++ {
				dst[i] = f(a[i], b[i])
			}
		case famVEXTR:
			if w.imm < 0 || w.imm >= isa.MaxVL {
				mt := &bc.meta[i]
				return opErr3(mt.idx, mt.op, fmt.Errorf("VEXTR index %d out of range", w.imm))
			}
			intRegs[w.d] = m.vecRegs[w.a][w.imm]
		case famVINS:
			if w.imm < 0 || w.imm >= isa.MaxVL {
				mt := &bc.meta[i]
				return opErr3(mt.idx, mt.op, fmt.Errorf("VINS index %d out of range", w.imm))
			}
			v := m.vecRegs[w.b]
			v[w.imm] = intRegs[w.a]
			m.vecRegs[w.d] = v

		case famACLR:
			m.accRegs[w.d].Clear()
		case famVSADA:
			a, b := &m.vecRegs[w.a], &m.vecRegs[w.b]
			m.accRegs[w.d].SADBV(a[:m.vl], b[:m.vl])
		case famVMACA:
			a, b := &m.vecRegs[w.a], &m.vecRegs[w.b]
			m.accRegs[w.d].MACWV(a[:m.vl], b[:m.vl])
		case famVACCW:
			a := &m.vecRegs[w.a]
			m.accRegs[w.d].ACCWV(a[:m.vl])
		case famVSUM:
			intRegs[w.d] = uint64(m.accRegs[w.a].Sum(w.w))
		case famAPACK:
			intRegs[w.d] = m.accRegs[w.a].Pack(uint(w.imm))

		case famLdmP2:
			addr := int64(intRegs[w.a]) + w.imm
			v, e := m.load64(addr)
			mt := &bc.meta[i]
			if e != nil {
				return opErr3(mt.idx, mt.op, e)
			}
			simdRegs[w.d] = v
			m.stallAcc += m.memStall(mt.op, mt.os, m.scalarTiming(addr, 8, false))
			simdRegs[w.d2] = w.fnF(simdRegs[w.a2], simdRegs[w.b2])
		case famSplatP2:
			simdRegs[w.d] = simd.Splat(intRegs[w.a], w.w)
			simdRegs[w.d2] = w.fnF(simdRegs[w.a2], simdRegs[w.b2])
		case famP2P2:
			simdRegs[w.d] = w.fn(simdRegs[w.a], simdRegs[w.b])
			simdRegs[w.d2] = w.fnF(simdRegs[w.a2], simdRegs[w.b2])
		case famP2Stm:
			simdRegs[w.d] = w.fn(simdRegs[w.a], simdRegs[w.b])
			addr := int64(intRegs[w.b2]) + w.imm2
			mt := &bc.meta[i]
			if e := m.store64(addr, simdRegs[w.a2]); e != nil {
				return opErr3(mt.idx2, mt.op2, e)
			}
			m.stallAcc += m.memStall(mt.op2, mt.os2, m.scalarTiming(addr, 8, true))
		case famVldSada:
			if err := m.vload3(w, &bc.meta[i], w.d); err != nil {
				return err
			}
			a, b := &m.vecRegs[w.a2], &m.vecRegs[w.b2]
			m.accRegs[w.d2].SADBV(a[:m.vl], b[:m.vl])
		case famVldMaca:
			if err := m.vload3(w, &bc.meta[i], w.d); err != nil {
				return err
			}
			a, b := &m.vecRegs[w.a2], &m.vecRegs[w.b2]
			m.accRegs[w.d2].MACWV(a[:m.vl], b[:m.vl])
		case famVldAccw:
			if err := m.vload3(w, &bc.meta[i], w.d); err != nil {
				return err
			}
			a := &m.vecRegs[w.a2]
			m.accRegs[w.d2].ACCWV(a[:m.vl])
		}
	}
	return nil
}

// vload3 is the VLD half shared by famVLD and the fused vector-load
// families: unit-stride in-bounds loads take a direct word-copy fast path;
// everything else falls back to per-element bounds-checked loads (with the
// v2 engine's exact partial-write-then-error behavior). One vectorTiming
// call services the whole access, as in the other engines.
func (m *Machine) vload3(w *word3, mt *meta3, d uint16) error {
	b := int64(m.intRegs[w.a]) + w.imm
	vec := &m.vecRegs[d]
	vl := m.vl
	// Overflow-safe form of b+vl*8 <= len(memory).
	if m.vs == 8 && b >= 0 && b <= int64(len(m.memory))-int64(vl)*8 {
		src := m.memory[b:]
		for i := 0; i < vl; i++ {
			vec[i] = binary.LittleEndian.Uint64(src[i*8:])
		}
	} else {
		for i := 0; i < vl; i++ {
			v, e := m.load64(b + int64(i)*m.vs)
			if e != nil {
				return opErr3(mt.idx, mt.op, e)
			}
			vec[i] = v
		}
	}
	m.stallAcc += m.memStall(mt.op, mt.os, m.vectorTiming(b, m.vs, vl, false))
	return nil
}
