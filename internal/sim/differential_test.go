package sim

import (
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/progen"
	"vsimdvliw/internal/sched"
)

// Differential testing against internal/progen: the generator maintains
// its own independent mirror of the machine state while emitting IR. After
// simulation, the machine's memory must match the mirror exactly — on
// every configuration, under both memory models. This exercises the
// verifier, the scheduler and the interpreter together on program shapes
// the hand-written kernels never produce.

func TestDifferentialRandomPrograms(t *testing.T) {
	cfgs := []*machine.Config{&machine.Vector1x2, &machine.Vector2x2, &machine.Vector2x4}
	for seed := uint64(1); seed <= 24; seed++ {
		p, err := progen.Generate(seed*7919, 60)
		if err != nil {
			t.Fatal(err)
		}
		f, want := p.Func, p.Arena
		if err := f.Verify(); err != nil {
			t.Fatalf("seed %d: generated invalid IR: %v", seed, err)
		}
		schedOpts := []sched.Options{
			{},
			{NoChaining: true},
			{OverlapDrain: true, SoftwarePipeline: true},
		}
		for _, cfg := range cfgs {
			opts := schedOpts[int(seed)%len(schedOpts)]
			fs, err := sched.ScheduleOpts(f, cfg, opts)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, cfg.Name, err)
			}
			if err := fs.Validate(); err != nil {
				t.Fatalf("seed %d on %s: schedule invalid: %v", seed, cfg.Name, err)
			}
			for _, model := range []mem.Model{mem.NewPerfect(cfg), mem.NewHierarchy(cfg)} {
				m := New(fs, model)
				res, err := m.Run()
				if err != nil {
					t.Fatalf("seed %d on %s: %v", seed, cfg.Name, err)
				}
				got, err := m.ReadBytes(ir.DataBase, int64(len(want)))
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d on %s: arena byte %d = %#x, mirror %#x",
							seed, cfg.Name, i, got[i], want[i])
					}
				}
				// The observability invariants must hold on arbitrary
				// programs too, not just the curated kernels.
				checkResultInvariants(t, res)
			}
		}
	}
}
