package sim

import (
	"encoding/binary"
	"strings"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// run schedules f on cfg and executes it with the given memory model.
func run(t *testing.T, f *ir.Func, cfg *machine.Config, model mem.Model) (*Machine, *Result) {
	t.Helper()
	fs, err := sched.Schedule(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, model)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func word(t *testing.T, m *Machine, addr int64) uint64 {
	t.Helper()
	b, err := m.ReadBytes(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.Uint64(b)
}

func TestScalarArithmetic(t *testing.T) {
	b := ir.NewBuilder("arith")
	out := b.Alloc(64)
	base := b.Const(out)
	x := b.Const(100)
	y := b.Const(7)
	b.Store(isa.STD, b.Add(x, y), base, 0, 1)
	b.Store(isa.STD, b.Sub(x, y), base, 8, 1)
	b.Store(isa.STD, b.Mul(x, y), base, 16, 1)
	b.Store(isa.STD, b.Bin(isa.DIV, x, y), base, 24, 1)
	b.Store(isa.STD, b.And(x, y), base, 32, 1)
	b.Store(isa.STD, b.Xor(x, y), base, 40, 1)
	b.Store(isa.STD, b.ShlI(x, 3), base, 48, 1)
	b.Store(isa.STD, b.SraI(b.Const(-16), 2), base, 56, 1)
	m, _ := run(t, b.Func(), &machine.VLIW2, mem.NewPerfect(&machine.VLIW2))
	minusFour := int64(-4)
	want := []uint64{107, 93, 700, 14, 100 & 7, 100 ^ 7, 800, uint64(minusFour)}
	for i, w := range want {
		if got := word(t, m, out+int64(8*i)); got != w {
			t.Errorf("slot %d = %d, want %d", i, int64(got), int64(w))
		}
	}
}

func TestLoopSumsIntegers(t *testing.T) {
	// sum(1..100) = 5050 via a real loop.
	b := ir.NewBuilder("sum")
	out := b.Alloc(8)
	sum := b.Const(0)
	b.Loop(1, 101, 1, func(iv ir.Reg) {
		b.BinTo(isa.ADD, sum, sum, iv)
	})
	b.Store(isa.STD, sum, b.Const(out), 0, 1)
	m, res := run(t, b.Func(), &machine.VLIW4, mem.NewPerfect(&machine.VLIW4))
	if got := word(t, m, out); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
	if res.Cycles < 100 {
		t.Errorf("cycles = %d: a 100-iteration loop cannot run in under 100 cycles", res.Cycles)
	}
}

func TestConditionals(t *testing.T) {
	b := ir.NewBuilder("cond")
	out := b.Alloc(16)
	base := b.Const(out)
	x := b.Const(5)
	y := b.Const(9)
	b.IfElse(isa.BLT, x, y, func() {
		b.Store(isa.STD, b.Const(111), base, 0, 1)
	}, func() {
		b.Store(isa.STD, b.Const(222), base, 0, 1)
	})
	b.IfElse(isa.BEQ, x, y, func() {
		b.Store(isa.STD, b.Const(333), base, 8, 1)
	}, func() {
		b.Store(isa.STD, b.Const(444), base, 8, 1)
	})
	m, _ := run(t, b.Func(), &machine.VLIW2, mem.NewPerfect(&machine.VLIW2))
	if got := word(t, m, out); got != 111 {
		t.Errorf("then-branch result = %d, want 111", got)
	}
	if got := word(t, m, out+8); got != 444 {
		t.Errorf("else-branch result = %d, want 444", got)
	}
}

func TestLoadStoreSizes(t *testing.T) {
	b := ir.NewBuilder("ldst")
	buf := b.Data([]byte{0xFF, 0x80, 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0x7F})
	out := b.Alloc(48)
	base := b.Const(buf)
	ob := b.Const(out)
	b.Store(isa.STD, b.Load(isa.LDB, base, 0, 1), ob, 0, 2)  // -1
	b.Store(isa.STD, b.Load(isa.LDBU, base, 0, 1), ob, 8, 2) // 255
	b.Store(isa.STD, b.Load(isa.LDH, base, 0, 1), ob, 16, 2) // 0x80FF sign-extended
	b.Store(isa.STD, b.Load(isa.LDHU, base, 0, 1), ob, 24, 2)
	b.Store(isa.STD, b.Load(isa.LDW, base, 4, 1), ob, 32, 2)
	b.Store(isa.STD, b.Load(isa.LDD, base, 0, 1), ob, 40, 2)
	m, _ := run(t, b.Func(), &machine.VLIW2, mem.NewPerfect(&machine.VLIW2))
	checks := []struct {
		off  int64
		want uint64
	}{
		{0, ^uint64(0)},
		{8, 255},
		{16, 0xFFFFFFFFFFFF80FF},
		{24, 0x80FF},
		{32, 0x7FFFFFFF},
		{40, 0x7FFFFFFF000180FF},
	}
	for _, c := range checks {
		if got := word(t, m, out+c.off); got != c.want {
			t.Errorf("offset %d = %#x, want %#x", c.off, got, c.want)
		}
	}
}

func TestUSIMDPackedExecution(t *testing.T) {
	// Packed saturating add of two byte vectors, checked against simd.
	b := ir.NewBuilder("packed")
	in := b.Data([]byte{10, 250, 100, 1, 2, 3, 4, 5, 20, 10, 200, 1, 2, 3, 4, 5})
	out := b.Alloc(16)
	base := b.Const(in)
	ob := b.Const(out)
	m1 := b.Ldm(base, 0, 1)
	m2 := b.Ldm(base, 8, 1)
	b.Stm(b.P(isa.PADDU, simd.W8, m1, m2), ob, 0, 2)
	b.Stm(b.P(isa.PSAD, simd.W8, m1, m2), ob, 8, 2)
	m, _ := run(t, b.Func(), &machine.USIMD2, mem.NewPerfect(&machine.USIMD2))
	got, _ := m.ReadBytes(out, 8)
	want := []byte{30, 255, 255, 2, 4, 6, 8, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PADDU byte %d = %d, want %d", i, got[i], want[i])
		}
	}
	// SAD: |10-20|+|250-10|+|100-200|+0+0+0+0+0 = 10+240+100 = 350.
	if got := word(t, m, out+8); got != 350 {
		t.Errorf("PSAD = %d, want 350", got)
	}
}

func TestVectorLoadComputeStore(t *testing.T) {
	// v3 = (v1 + v2) over 16 words of 16-bit lanes, stored back.
	b := ir.NewBuilder("vec")
	n := 16
	src1 := make([]int16, 4*n)
	src2 := make([]int16, 4*n)
	for i := range src1 {
		src1[i] = int16(i * 3)
		src2[i] = int16(1000 - i)
	}
	a1 := b.DataH(src1)
	a2 := b.DataH(src2)
	out := b.Alloc(int64(8 * n))
	b.SetVLI(int64(n))
	b.SetVSI(8)
	r1 := b.Const(a1)
	r2 := b.Const(a2)
	ro := b.Const(out)
	v1 := b.Vld(r1, 0, 1)
	v2 := b.Vld(r2, 0, 2)
	b.Vst(b.V(isa.VADD, simd.W16, v1, v2), ro, 0, 3)
	m, res := run(t, b.Func(), &machine.Vector2x2, mem.NewPerfect(&machine.Vector2x2))
	raw, _ := m.ReadBytes(out, int64(8*n))
	for i := 0; i < 4*n; i++ {
		got := int16(binary.LittleEndian.Uint16(raw[2*i:]))
		want := src1[i] + src2[i]
		if got != want {
			t.Fatalf("lane %d = %d, want %d", i, got, want)
		}
	}
	// One VADD processes 16 words x 4 lanes = 64 micro-ops.
	if res.MicroOps < 64 {
		t.Errorf("micro-ops = %d, want >= 64", res.MicroOps)
	}
}

func TestVectorStride(t *testing.T) {
	// Load a column from a 2D array using VS = row pitch.
	rows, pitch := 8, int64(32)
	vals := make([]byte, int(pitch)*rows)
	for r := 0; r < rows; r++ {
		binary.LittleEndian.PutUint64(vals[int64(r)*pitch:], uint64(100+r))
	}
	b := ir.NewBuilder("stride")
	arr := b.Data(vals)
	out := b.Alloc(int64(rows) * 8)
	b.SetVLI(int64(rows))
	b.SetVSI(pitch)
	v := b.Vld(b.Const(arr), 0, 1)
	b.SetVSI(8)
	b.Vst(v, b.Const(out), 0, 2)
	m, _ := run(t, b.Func(), &machine.Vector2x2, mem.NewPerfect(&machine.Vector2x2))
	for r := 0; r < rows; r++ {
		if got := word(t, m, out+int64(r)*8); got != uint64(100+r) {
			t.Errorf("row %d = %d, want %d", r, got, 100+r)
		}
	}
}

func TestAccumulatorSADAndSum(t *testing.T) {
	b := ir.NewBuilder("sad")
	n := 8
	x := make([]byte, 8*n)
	y := make([]byte, 8*n)
	var want uint64
	for i := range x {
		x[i] = byte(i * 7)
		y[i] = byte(200 - i)
		d := int(x[i]) - int(y[i])
		if d < 0 {
			d = -d
		}
		want += uint64(d)
	}
	ax := b.Data(x)
	ay := b.Data(y)
	out := b.Alloc(8)
	b.SetVLI(int64(n))
	b.SetVSI(8)
	v1 := b.Vld(b.Const(ax), 0, 1)
	v2 := b.Vld(b.Const(ay), 0, 2)
	acc := b.Aclr()
	b.Vsada(acc, v1, v2)
	b.Store(isa.STD, b.Vsum(simd.W8, acc), b.Const(out), 0, 3)
	m, _ := run(t, b.Func(), &machine.Vector2x2, mem.NewPerfect(&machine.Vector2x2))
	if got := word(t, m, out); got != want {
		t.Errorf("vector SAD = %d, want %d", got, want)
	}
}

func TestAccumulatorMACMatchesDotProduct(t *testing.T) {
	b := ir.NewBuilder("dot")
	n := 8 // words
	xs := make([]int16, 4*n)
	ys := make([]int16, 4*n)
	var want int64
	for i := range xs {
		xs[i] = int16(i - 10)
		ys[i] = int16(3*i - 5)
		want += int64(xs[i]) * int64(ys[i])
	}
	ax := b.DataH(xs)
	ay := b.DataH(ys)
	out := b.Alloc(8)
	b.SetVLI(int64(n))
	b.SetVSI(8)
	v1 := b.Vld(b.Const(ax), 0, 1)
	v2 := b.Vld(b.Const(ay), 0, 2)
	acc := b.Aclr()
	b.Vmaca(acc, v1, v2)
	b.Store(isa.STD, b.Vsum(simd.W16, acc), b.Const(out), 0, 3)
	m, _ := run(t, b.Func(), &machine.Vector1x4, mem.NewPerfect(&machine.Vector1x4))
	if got := int64(word(t, m, out)); got != want {
		t.Errorf("dot product = %d, want %d", got, want)
	}
}

func TestVextrVinsVsplat(t *testing.T) {
	b := ir.NewBuilder("lanes")
	out := b.Alloc(32)
	b.SetVLI(4)
	b.SetVSI(8)
	v := b.Vsplat(b.Const(77))
	b.Vins(v, b.Const(99), 2)
	b.Store(isa.STD, b.Vextr(v, 0), b.Const(out), 0, 1)
	b.Store(isa.STD, b.Vextr(v, 2), b.Const(out), 8, 1)
	m, _ := run(t, b.Func(), &machine.Vector2x2, mem.NewPerfect(&machine.Vector2x2))
	if word(t, m, out) != 77 || word(t, m, out+8) != 99 {
		t.Errorf("lane ops: got %d,%d want 77,99", word(t, m, out), word(t, m, out+8))
	}
}

func TestRegionAccounting(t *testing.T) {
	b := ir.NewBuilder("regions")
	x := b.Const(0)
	// Scalar work (region 0).
	b.Loop(0, 10, 1, func(iv ir.Reg) { b.BinTo(isa.ADD, x, x, iv) })
	// Vector-region work (region 1): heavier loop.
	b.RegionBegin(1)
	b.Loop(0, 50, 1, func(iv ir.Reg) { b.BinTo(isa.ADD, x, x, iv) })
	b.RegionEnd(1)
	_, res := run(t, b.Func(), &machine.VLIW2, mem.NewPerfect(&machine.VLIW2))
	r0, r1 := res.Regions[0], res.Regions[1]
	if r1.Cycles == 0 || r0.Cycles == 0 {
		t.Fatalf("cycles r0=%d r1=%d: both regions must accumulate", r0.Cycles, r1.Cycles)
	}
	if r1.Cycles <= r0.Cycles {
		t.Errorf("region 1 (50 iters, %d cyc) must outweigh region 0 (10 iters, %d cyc)",
			r1.Cycles, r0.Cycles)
	}
	if got := r0.Cycles + r1.Cycles; got != res.Cycles {
		t.Errorf("region cycles %d do not add up to total %d", got, res.Cycles)
	}
	if r1.Ops <= r0.Ops {
		t.Errorf("region ops: r0=%d r1=%d", r0.Ops, r1.Ops)
	}
}

func TestPerfectMemoryNoStalls(t *testing.T) {
	b := ir.NewBuilder("nostall")
	arr := b.Alloc(16 * 8)
	b.SetVLI(16)
	b.SetVSI(8)
	v := b.Vld(b.Const(arr), 0, 1)
	b.Vst(v, b.Const(arr), 0, 1)
	x := b.Load(isa.LDD, b.Const(arr), 0, 1)
	b.Store(isa.STD, x, b.Const(arr), 8, 1)
	cfg := &machine.Vector2x2
	_, res := run(t, b.Func(), cfg, mem.NewPerfect(cfg))
	if res.StallCycles != 0 {
		t.Errorf("perfect memory produced %d stall cycles", res.StallCycles)
	}
}

func TestRealisticMemoryStallsOnColdMisses(t *testing.T) {
	b := ir.NewBuilder("cold")
	arr := b.Alloc(4096)
	base := b.Const(arr)
	for i := 0; i < 4; i++ {
		b.Load(isa.LDD, base, int64(i*1024), 1)
	}
	cfg := &machine.USIMD2
	_, res := run(t, b.Func(), cfg, mem.NewHierarchy(cfg))
	// Four cold misses, each ~500 cycles beyond the scheduled 1.
	if res.StallCycles < 4*int64(cfg.LatMem-10) {
		t.Errorf("stalls = %d, want ~%d", res.StallCycles, 4*cfg.LatMem)
	}
	if res.Mem.L1Misses != 4 {
		t.Errorf("L1 misses = %d, want 4", res.Mem.L1Misses)
	}
}

func TestNonUnitStrideStallsRealistic(t *testing.T) {
	// Same program, stride 8 vs stride 256: the strided version must stall
	// (the compiler scheduled it as stride-one).
	build := func(stride int64) *ir.Func {
		b := ir.NewBuilder("stride")
		arr := b.Alloc(16 * 512)
		b.SetVLI(16)
		b.SetVSI(stride)
		// Warm-up load, then many loads over warmed lines.
		base := b.Const(arr)
		for i := 0; i < 8; i++ {
			b.Vld(base, 0, 1)
		}
		return b.Func()
	}
	cfg := &machine.Vector2x2
	_, unit := run(t, build(8), cfg, mem.NewHierarchy(cfg))
	_, strided := run(t, build(256), cfg, mem.NewHierarchy(cfg))
	if strided.StallCycles <= unit.StallCycles {
		t.Errorf("strided stalls (%d) must exceed unit-stride stalls (%d)",
			strided.StallCycles, unit.StallCycles)
	}
	if strided.Cycles <= unit.Cycles {
		t.Errorf("strided cycles (%d) must exceed unit-stride cycles (%d)",
			strided.Cycles, unit.Cycles)
	}
}

func TestMicroOpCounting(t *testing.T) {
	b := ir.NewBuilder("micro")
	arr := b.Alloc(256)
	base := b.Const(arr)
	b.SetVLI(16)
	b.SetVSI(8)
	v1 := b.Vld(base, 0, 1)
	b.V(isa.VADD, simd.W8, v1, v1)
	f := b.Func()
	fs, err := sched.Schedule(f, &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewPerfect(&machine.Vector2x2))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// movi + setvl + setvs + vld(16) + vadd(16*8=128) + halt = 4 scalar + 16 + 128.
	want := int64(4 + 16 + 128)
	if res.MicroOps != want {
		t.Errorf("micro-ops = %d, want %d", res.MicroOps, want)
	}
	if res.Ops != 6 {
		t.Errorf("ops = %d, want 6", res.Ops)
	}
}

func TestDivByZeroError(t *testing.T) {
	b := ir.NewBuilder("div0")
	x := b.Const(1)
	y := b.Const(0)
	b.Bin(isa.DIV, x, y)
	fs, err := sched.Schedule(b.Func(), &machine.VLIW2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fs, mem.NewPerfect(&machine.VLIW2)).Run(); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestOutOfBoundsAccessError(t *testing.T) {
	b := ir.NewBuilder("oob")
	b.Load(isa.LDD, b.Const(1<<40), 0, 1)
	fs, err := sched.Schedule(b.Func(), &machine.VLIW2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fs, mem.NewPerfect(&machine.VLIW2)).Run(); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestRunawayLoopCaught(t *testing.T) {
	b := ir.NewBuilder("forever")
	blk := b.NewBlock()
	b.SetBlock(blk)
	b.AddI(b.Const(0), 1)
	b.Jmp(blk)
	fs, err := sched.Schedule(b.Func(), &machine.VLIW2)
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewPerfect(&machine.VLIW2))
	m.MaxCycles = 10000
	if _, err := m.Run(); err == nil {
		t.Fatal("expected runaway-loop error")
	}
}

func TestUnmatchedRegionEnd(t *testing.T) {
	b := ir.NewBuilder("badregion")
	b.RegionEnd(1)
	fs, err := sched.Schedule(b.Func(), &machine.VLIW2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fs, mem.NewPerfect(&machine.VLIW2)).Run(); err == nil {
		t.Fatal("expected unmatched-region error")
	}
}

func TestWiderMachineIsFaster(t *testing.T) {
	// A kernel with ILP must run in fewer cycles on a wider machine.
	build := func() *ir.Func {
		b := ir.NewBuilder("ilp")
		arr := b.Alloc(512)
		base := b.Const(arr)
		b.Loop(0, 32, 1, func(iv ir.Reg) {
			off := b.ShlI(iv, 3)
			p := b.Add(base, off)
			a := b.Load(isa.LDD, p, 0, 1)
			c := b.MulI(a, 3)
			d := b.AddI(c, 17)
			e := b.Xor(d, a)
			b.Store(isa.STD, e, p, 256, 2)
		})
		return b.Func()
	}
	_, r2 := run(t, build(), &machine.VLIW2, mem.NewPerfect(&machine.VLIW2))
	_, r8 := run(t, build(), &machine.VLIW8, mem.NewPerfect(&machine.VLIW8))
	if r8.Cycles >= r2.Cycles {
		t.Errorf("8-issue (%d cyc) must beat 2-issue (%d cyc)", r8.Cycles, r2.Cycles)
	}
	if r2.Ops != r8.Ops {
		t.Errorf("op counts must match across widths: %d vs %d", r2.Ops, r8.Ops)
	}
}

func TestSelectSemantics(t *testing.T) {
	b := ir.NewBuilder("select")
	out := b.Alloc(16)
	base := b.Const(out)
	x := b.Const(11)
	y := b.Const(22)
	b.Store(isa.STD, b.Select(b.Const(1), x, y), base, 0, 1)
	b.Store(isa.STD, b.Select(b.Const(0), x, y), base, 8, 1)
	m, _ := run(t, b.Func(), &machine.VLIW2, mem.NewPerfect(&machine.VLIW2))
	if word(t, m, out) != 11 || word(t, m, out+8) != 22 {
		t.Error("SELECT semantics wrong")
	}
}

func TestSoftwarePipeliningSpeedsLoopsUp(t *testing.T) {
	// The same program scheduled with and without software pipelining must
	// produce identical outputs; the pipelined run takes fewer cycles.
	build := func() *ir.Func {
		b := ir.NewBuilder("pipe")
		src := b.Alloc(4096)
		dst := b.Alloc(4096)
		b.SetVLI(16)
		b.SetVSI(8)
		p := b.Const(src)
		q := b.Const(dst)
		b.Loop(0, 16, 1, func(iv ir.Reg) {
			v := b.Vld(p, 0, 1)
			b.Vst(b.V(isa.VADD, simd.W8, v, v), q, 0, 2)
			b.BinITo(isa.ADD, p, p, 128)
			b.BinITo(isa.ADD, q, q, 128)
		})
		// Also store a scalar checksum so outputs are observable.
		b.Store(isa.STD, b.Const(7), b.Const(dst), 4088, 3)
		return b.Func()
	}
	cfg := &machine.Vector2x2
	plainFS, err := sched.ScheduleOpts(build(), cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipedFS, err := sched.ScheduleOpts(build(), cfg, sched.Options{SoftwarePipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	mPlain := New(plainFS, mem.NewPerfect(cfg))
	rPlain, err := mPlain.Run()
	if err != nil {
		t.Fatal(err)
	}
	mPiped := New(pipedFS, mem.NewPerfect(cfg))
	rPiped, err := mPiped.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rPiped.Cycles >= rPlain.Cycles {
		t.Errorf("pipelined (%d cycles) not faster than plain (%d)", rPiped.Cycles, rPlain.Cycles)
	}
	if rPiped.Ops != rPlain.Ops {
		t.Errorf("op counts differ: %d vs %d", rPiped.Ops, rPlain.Ops)
	}
	a, _ := mPlain.ReadBytes(ir.DataBase, 8192)
	c, _ := mPiped.ReadBytes(ir.DataBase, 8192)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("functional divergence at byte %d", i)
		}
	}
}

func TestPipeliningFirstIterationPaysFullLength(t *testing.T) {
	// A loop entered repeatedly from outside (trip count 1 per entry)
	// never hits the steady state: pipelining must not change its cost.
	build := func(opts sched.Options) *Result {
		b := ir.NewBuilder("onetrip")
		arr := b.Alloc(2048)
		base := b.Const(arr)
		b.SetVLI(16)
		b.SetVSI(8)
		// Outer loop over an inner single-iteration loop.
		b.Loop(0, 4, 1, func(ir.Reg) {
			b.Loop(0, 1, 1, func(ir.Reg) {
				v := b.Vld(base, 0, 1)
				b.Vst(v, base, 1024, 2)
			})
		})
		fs, err := sched.ScheduleOpts(b.Func(), &machine.Vector2x2, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := New(fs, mem.NewPerfect(&machine.Vector2x2)).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := build(sched.Options{})
	piped := build(sched.Options{SoftwarePipeline: true})
	if plain.Cycles != piped.Cycles {
		t.Errorf("single-trip inner loop: pipelined %d vs plain %d cycles (must match)",
			piped.Cycles, plain.Cycles)
	}
}

func TestTraceOutput(t *testing.T) {
	b := ir.NewBuilder("trace")
	x := b.Const(0)
	b.RegionBegin(1)
	b.Loop(0, 3, 1, func(iv ir.Reg) { b.BinTo(isa.ADD, x, x, iv) })
	b.RegionEnd(1)
	fs, err := sched.Schedule(b.Func(), &machine.VLIW2)
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewPerfect(&machine.VLIW2))
	var buf strings.Builder
	m.Trace = &buf
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "R1") || !strings.Contains(out, "total=") {
		t.Errorf("trace missing content:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n < 5 {
		t.Errorf("trace has only %d lines", n)
	}
}
