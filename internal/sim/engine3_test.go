package sim

import (
	"reflect"
	"strings"
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/cacheorg"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/progen"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// V3 engine equivalence: the threaded-code engine must be bit-for-bit
// indistinguishable from BOTH retained oracles — the reference interpreter
// and the v2 closure engine — on arbitrary progen programs, the six
// benchmark applications, every machine configuration, and every memory
// model including the pluggable cacheorg organizations.

// runEngine executes fs from fresh state on the selected engine.
func runEngine(t *testing.T, fs *sched.FuncSched, mkModel func() mem.Model, e Engine) (*Machine, *Result) {
	t.Helper()
	m := New(fs, mkModel())
	m.SetEngine(e)
	r, err := m.Run()
	if err != nil {
		t.Fatalf("engine %d: %v", e, err)
	}
	return m, r
}

// checkEngine3Equivalence schedules f on cfg with opts and cross-checks
// v3 against the interpreter and the v2 engine under the given models.
func checkEngine3Equivalence(t *testing.T, f *ir.Func, cfg *machine.Config, opts sched.Options, models []func() mem.Model) {
	t.Helper()
	fs, err := sched.ScheduleOpts(f, cfg, opts)
	if err != nil {
		t.Fatalf("schedule on %s: %v", cfg.Name, err)
	}
	for _, mk := range models {
		mi, ri := runEngine(t, fs, mk, EngineInterpreter)
		m3, r3 := runEngine(t, fs, mk, EngineV3)
		compareEngines(t, mi, m3, ri, r3)
		m2, r2 := runEngine(t, fs, mk, EngineV2)
		compareEngines(t, m2, m3, r2, r3)
	}
}

// stdModels is the model set for the generated-program matrix.
func stdModels(cfg *machine.Config) []func() mem.Model {
	return []func() mem.Model{
		func() mem.Model { return mem.NewPerfect(cfg) },
		func() mem.Model { return mem.NewHierarchy(cfg) },
	}
}

// corgModels rotates through the pluggable L2 organizations so the v3
// engine is differentially tested against the devirtualized cacheorg walks
// as well (seed selects one per case to bound the matrix).
func corgModels(cfg *machine.Config, seed uint64) []func() mem.Model {
	mks := []func() mem.Model{
		func() mem.Model { return cacheorg.New(cfg, cacheorg.NewInterleaved(cfg)) },
		func() mem.Model { return cacheorg.New(cfg, cacheorg.NewBicameral(cfg)) },
		func() mem.Model { return cacheorg.New(cfg, cacheorg.NewBanked(cfg, 4)) },
	}
	return []func() mem.Model{mks[int(seed)%len(mks)]}
}

func TestEngine3EquivalenceRandomPrograms(t *testing.T) {
	cfgs := []*machine.Config{&machine.Vector1x2, &machine.Vector2x2, &machine.Vector2x4}
	schedOpts := []sched.Options{
		{},
		{NoChaining: true},
		{OverlapDrain: true, SoftwarePipeline: true},
	}
	for seed := uint64(1); seed <= 24; seed++ {
		p, err := progen.Generate(seed*104729, 80)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cfgs {
			opts := schedOpts[int(seed)%len(schedOpts)]
			checkEngine3Equivalence(t, p.Func, cfg, opts, stdModels(cfg))
			checkEngine3Equivalence(t, p.Func, cfg, opts, corgModels(cfg, seed))
		}
	}
}

// TestEngine3SixApps cross-checks the three engines on the six benchmark
// applications — the code whose fused pairs the v3 lowering targets — in
// each variant's natural configuration.
func TestEngine3SixApps(t *testing.T) {
	variants := []struct {
		v   kernels.Variant
		cfg *machine.Config
	}{
		{kernels.Scalar, &machine.VLIW2},
		{kernels.USIMD, &machine.USIMD2},
		{kernels.Vector, &machine.Vector2x2},
	}
	for _, a := range apps.All() {
		for _, vc := range variants {
			f := a.Build(vc.v).Func
			checkEngine3Equivalence(t, f, vc.cfg, sched.Options{}, stdModels(vc.cfg))
		}
	}
}

// TestEngine3Reset checks a pooled (Reset) machine on the v3 engine
// behaves exactly like a fresh one.
func TestEngine3Reset(t *testing.T) {
	p, err := progen.Generate(31337, 80)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &machine.Vector2x4
	fs, err := sched.ScheduleOpts(p.Func, cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewHierarchy(cfg))
	first, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	second, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("results differ after Reset:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestV3OpcodeCoverage lowers a minimal well-formed operation of every
// opcode through lowerOp3 and asserts a dispatch word exists. A new opcode
// the v3 engine does not lower fails here explicitly — there is no silent
// fall-back to another engine.
func TestV3OpcodeCoverage(t *testing.T) {
	var missing []string
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		switch op {
		case isa.NOP, isa.REGBEGIN, isa.REGEND:
			continue // pseudo-ops are lowered by compileBlockV3 itself
		}
		in := op.Get()
		o := ir.Op{Opcode: op}
		for _, c := range in.Sig.Dst {
			o.Dst = append(o.Dst, ir.Reg{Class: c})
		}
		for _, c := range in.Sig.Src {
			o.Src = append(o.Src, ir.Reg{Class: c})
		}
		if len(in.Widths) > 0 {
			o.Width = in.Widths[0]
		}
		if in.Imm && len(in.Sig.Src) == 0 {
			o.UseImm = true // MOVI/MOVIM-style: the immediate is the only source
		}
		w, err := lowerOp3(&o)
		if err != nil {
			missing = append(missing, op.Name()+" ("+err.Error()+")")
			continue
		}
		if w.fam == famAcct {
			missing = append(missing, op.Name())
		}
	}
	if len(missing) > 0 {
		t.Fatalf("opcodes without a v3 dispatch word:\n  %s", strings.Join(missing, "\n  "))
	}
}

// fusedKind maps a fused dispatch family back to its classification;
// FuseNone for unfused words.
func fusedKind(fam uint16) sched.FusePair {
	switch fam {
	case famLdmP2:
		return sched.FuseLoadPacked
	case famSplatP2:
		return sched.FuseSplatPacked
	case famP2P2:
		return sched.FusePackedPacked
	case famP2Stm:
		return sched.FusePackedStore
	case famVldSada, famVldMaca, famVldAccw:
		return sched.FuseLoadAccum
	}
	return sched.FuseNone
}

// TestFusionCoverage asserts (a) per block, the fused kinds the v3 stream
// actually contains are exactly what a greedy left-to-right walk of the
// block with sched.Fusable predicts — a fusable adjacent pair that lowered
// unfused (silent fallback) or an unfusable pair that merged both fail —
// and (b) across the six applications' µSIMD and vector variants, every
// fusion kind occurs at least once, so no fused path is dead code.
func TestFusionCoverage(t *testing.T) {
	totals := make([]int, sched.NumFusePairs)
	check := func(name string, f *ir.Func, cfg *machine.Config) {
		fs, err := sched.Schedule(f, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		codes, err := predecoded3(fs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for bi, bs := range fs.Blocks {
			// Oracle: the greedy adjacent-pair walk over the lowered entry
			// stream (NOPs vanish, markers break adjacency), exactly the
			// contract compileBlockV3's pass 2 implements.
			type ent struct {
				op     *ir.Op
				marker bool
			}
			var ents []ent
			for i := range bs.Block.Ops {
				op := &bs.Block.Ops[i]
				switch op.Opcode {
				case isa.NOP:
					continue
				case isa.REGBEGIN, isa.REGEND:
					ents = append(ents, ent{marker: true})
					continue
				}
				ents = append(ents, ent{op: op})
			}
			var want []sched.FusePair
			for i := 0; i < len(ents); i++ {
				if !ents[i].marker && i+1 < len(ents) && !ents[i+1].marker {
					if k := sched.Fusable(ents[i].op, ents[i+1].op); k != sched.FuseNone {
						want = append(want, k)
						i++
						continue
					}
				}
				if !ents[i].marker {
					want = append(want, sched.FuseNone)
				}
			}
			var got []sched.FusePair
			for _, w := range codes[bi].words {
				switch w.fam {
				case famAcct, famRB, famRE:
					continue
				}
				got = append(got, fusedKind(w.fam))
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s B%d: fusion stream mismatch\nwant %v\ngot  %v",
					name, bs.Block.ID, want, got)
			}
			for _, k := range got {
				totals[k]++
			}
		}
	}
	variants := []struct {
		v   kernels.Variant
		cfg *machine.Config
	}{
		{kernels.USIMD, &machine.USIMD2},
		{kernels.Vector, &machine.Vector2x2},
	}
	for _, a := range apps.All() {
		for _, vc := range variants {
			check(a.Name+"/"+vc.cfg.Name, a.Build(vc.v).Func, vc.cfg)
		}
	}
	// The six applications never emit PSPLAT, so a small synthetic chain
	// (each op feeding the next keeps the schedule in program order) covers
	// the splat→packed fused path; it also runs through the three-way
	// harness so the fused arm executes, not just lowers.
	sb := ir.NewBuilder("splatfuse")
	base := sb.Const(sb.Alloc(8))
	s := sb.Psplat(simd.W8, sb.Const(3))
	p := sb.P(isa.PADD, simd.W8, s, s)
	sb.Stm(p, base, 0, 1)
	check("splatfuse", sb.Func(), &machine.USIMD2)
	checkEngine3Equivalence(t, sb.Func(), &machine.USIMD2, sched.Options{}, stdModels(&machine.USIMD2))
	var dead []string
	for k := 1; k < sched.NumFusePairs; k++ {
		if totals[k] == 0 {
			dead = append(dead, sched.FusePair(k).String())
		}
	}
	if len(dead) > 0 {
		t.Fatalf("fusion kinds never exercised by the six applications: %s",
			strings.Join(dead, ", "))
	}
}

// FuzzEngine3 drives the three-way differential harness from the fuzzer:
// each input seeds progen and the v3 engine must agree with both oracles
// on every observable, across memory models including the cacheorg
// organizations. `make ci` runs this as a short smoke.
func FuzzEngine3(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed, uint(60))
	}
	cfgs := []*machine.Config{&machine.Vector1x2, &machine.Vector2x2, &machine.Vector2x4}
	schedOpts := []sched.Options{
		{},
		{NoChaining: true},
		{OverlapDrain: true, SoftwarePipeline: true},
	}
	f.Fuzz(func(t *testing.T, seed uint64, nops uint) {
		n := int(nops%120) + 10
		p, err := progen.Generate(seed, n)
		if err != nil {
			t.Skip()
		}
		cfg := cfgs[int(seed>>8)%len(cfgs)]
		opts := schedOpts[int(seed>>16)%len(schedOpts)]
		checkEngine3Equivalence(t, p.Func, cfg, opts, stdModels(cfg))
		checkEngine3Equivalence(t, p.Func, cfg, opts, corgModels(cfg, seed>>24))
	})
}
