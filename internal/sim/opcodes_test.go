package sim

import (
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// buildEveryOpcode builds one program that executes every opcode of the
// ISA at least once.
func buildEveryOpcode() *ir.Func {
	b := ir.NewBuilder("everyop")
	arena := b.Alloc(1024)
	base := b.Const(arena)

	// Scalar.
	x := b.Const(100)
	y := b.Const(7)
	b.Emit(ir.Op{Opcode: isa.NOP})
	z := b.Mov(x)
	b.BinTo(isa.ADD, z, x, y)
	b.BinTo(isa.SUB, z, z, y)
	b.BinTo(isa.MUL, z, z, y)
	b.BinTo(isa.DIV, z, z, y)
	b.BinTo(isa.AND, z, z, x)
	b.BinTo(isa.OR, z, z, y)
	b.BinTo(isa.XOR, z, z, y)
	b.BinTo(isa.SHL, z, z, y)
	b.BinTo(isa.SHR, z, z, y)
	b.BinTo(isa.SRA, z, z, y)
	for _, op := range []isa.Opcode{isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPLTU} {
		b.Bin(op, x, y)
	}
	b.Select(b.Const(1), x, y)

	// Scalar memory.
	b.Store(isa.STB, x, base, 0, 1)
	b.Store(isa.STH, x, base, 2, 1)
	b.Store(isa.STW, x, base, 4, 1)
	b.Store(isa.STD, x, base, 8, 1)
	for _, op := range []isa.Opcode{isa.LDB, isa.LDBU, isa.LDH, isa.LDHU, isa.LDW, isa.LDWU, isa.LDD} {
		b.Load(op, base, 0, 1)
	}

	// Branches (taken and fall-through paths).
	b.IfElse(isa.BEQ, x, x, func() { b.AddI(x, 1) }, func() { b.AddI(x, 2) })
	b.IfElse(isa.BNE, x, y, func() { b.AddI(x, 3) }, nil)
	b.IfElse(isa.BLT, y, x, func() { b.AddI(x, 4) }, func() { b.AddI(x, 5) })
	b.IfElse(isa.BGE, x, y, func() { b.AddI(x, 6) }, nil)
	// JMP is emitted by IfElse with a non-nil else; HALT by Func().

	// Region markers.
	b.RegionBegin(1)
	b.AddI(x, 0)
	b.RegionEnd(1)

	// µSIMD.
	m1 := b.Ldm(base, 0, 1)
	m2 := b.SIMDReg()
	b.Emit(ir.Op{Opcode: isa.MOVIM, Dst: []ir.Reg{m2}, Imm: 0x0102030405060708, UseImm: true})
	m3 := b.Movrm(x)
	b.Movmr(m3)
	b.Psplat(simd.W16, y)
	packed2 := []struct {
		op isa.Opcode
		w  simd.Width
	}{
		{isa.PADD, simd.W8}, {isa.PSUB, simd.W8}, {isa.PADDS, simd.W16},
		{isa.PSUBS, simd.W16}, {isa.PADDU, simd.W8}, {isa.PSUBU, simd.W8},
		{isa.PMULL, simd.W16}, {isa.PMULH, simd.W16}, {isa.PMADD, simd.W16},
		{isa.PAVG, simd.W8}, {isa.PMINU, simd.W8}, {isa.PMAXU, simd.W8},
		{isa.PMINS, simd.W16}, {isa.PMAXS, simd.W16}, {isa.PABSD, simd.W8},
		{isa.PSAD, simd.W8}, {isa.PAND, 0}, {isa.POR, 0}, {isa.PXOR, 0},
		{isa.PANDN, 0}, {isa.PCMPEQ, simd.W8}, {isa.PCMPGT, simd.W8},
		{isa.PACKSS, simd.W16}, {isa.PACKUS, simd.W16},
		{isa.PUNPCKL, simd.W8}, {isa.PUNPCKH, simd.W8},
	}
	for _, p := range packed2 {
		b.P(p.op, p.w, m1, m2)
	}
	b.PShiftI(isa.PSLL, simd.W16, m1, 2)
	b.PShiftI(isa.PSRL, simd.W16, m1, 2)
	b.PShiftI(isa.PSRA, simd.W16, m1, 2)
	b.Stm(m2, base, 16, 1)

	// Vector.
	b.SetVLI(8)
	b.SetVSI(8)
	n := b.Const(8)
	b.SetVL(n)
	b.SetVS(b.Const(8))
	v1 := b.Vld(base, 0, 1)
	v2 := b.Vsplat(x)
	vm := b.VecReg()
	b.Emit(ir.Op{Opcode: isa.VMOV, Dst: []ir.Reg{vm}, Src: []ir.Reg{v1}})
	vec2 := []struct {
		op isa.Opcode
		w  simd.Width
	}{
		{isa.VADD, simd.W8}, {isa.VSUB, simd.W8}, {isa.VADDS, simd.W16},
		{isa.VSUBS, simd.W16}, {isa.VADDU, simd.W8}, {isa.VSUBU, simd.W8},
		{isa.VMULL, simd.W16}, {isa.VMULH, simd.W16}, {isa.VMADD, simd.W16},
		{isa.VAVG, simd.W8}, {isa.VMINU, simd.W8}, {isa.VMAXU, simd.W8},
		{isa.VMINS, simd.W16}, {isa.VMAXS, simd.W16}, {isa.VABSD, simd.W8},
		{isa.VAND, 0}, {isa.VOR, 0}, {isa.VXOR, 0}, {isa.VANDN, 0},
		{isa.VCMPEQ, simd.W8}, {isa.VCMPGT, simd.W8},
		{isa.VPACKSS, simd.W16}, {isa.VPACKUS, simd.W16},
		{isa.VUNPCKL, simd.W8}, {isa.VUNPCKH, simd.W8},
	}
	for _, p := range vec2 {
		b.V(p.op, p.w, v1, v2)
	}
	b.VShiftI(isa.VSLL, simd.W16, v1, 1)
	b.VShiftI(isa.VSRL, simd.W16, v1, 1)
	b.VShiftI(isa.VSRA, simd.W16, v1, 1)
	ext := b.Vextr(v1, 3)
	b.Vins(v2, ext, 5)
	b.Vst(v2, base, 256, 2)

	// Accumulators.
	acc := b.Aclr()
	b.Vsada(acc, v1, v2)
	b.Vmaca(acc, v1, v2)
	b.Vaccw(acc, v1)
	b.Store(isa.STD, b.Vsum(simd.W8, acc), base, 512, 3)
	b.Store(isa.STD, b.Vsum(simd.W16, acc), base, 520, 3)
	b.Store(isa.STD, b.Apack(acc, 4), base, 528, 3)

	return b.Func()
}

func TestEveryOpcodeExecutes(t *testing.T) {
	f := buildEveryOpcode()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}

	// Completeness: the program must statically contain every opcode.
	seen := make(map[isa.Opcode]bool)
	for _, blk := range f.Blocks {
		for i := range blk.Ops {
			seen[blk.Ops[i].Opcode] = true
		}
	}
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if !seen[op] {
			t.Errorf("program does not contain opcode %s", op.Name())
		}
	}

	// And the simulator must execute all of it without errors, with
	// identical functional results on every vector-capable machine.
	var golden []byte
	for _, cfg := range []*machine.Config{&machine.Vector1x2, &machine.Vector2x4} {
		fs, err := sched.Schedule(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Validate(); err != nil {
			t.Fatal(err)
		}
		m := New(fs, mem.NewHierarchy(cfg))
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		out, err := m.ReadBytes(ir.DataBase, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = out
		} else {
			for i := range out {
				if out[i] != golden[i] {
					t.Fatalf("functional result differs between configs at byte %d", i)
				}
			}
		}
	}
}

func TestVMOVSemantics(t *testing.T) {
	b := ir.NewBuilder("vmov")
	arena := b.Alloc(256)
	base := b.Const(arena)
	vals := make([]int16, 32)
	for i := range vals {
		vals[i] = int16(i * 3)
	}
	src := b.DataH(vals)
	b.SetVLI(8)
	b.SetVSI(8)
	v1 := b.Vld(b.Const(src), 0, 1)
	v2 := b.VecReg()
	b.Emit(ir.Op{Opcode: isa.VMOV, Dst: []ir.Reg{v2}, Src: []ir.Reg{v1}})
	b.Vst(v2, base, 0, 2)
	fs, err := sched.Schedule(b.Func(), &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewPerfect(&machine.Vector2x2))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadBytes(arena, 64)
	want, _ := m.ReadBytes(src, 64)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("VMOV byte %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestVextrVinsBoundsError(t *testing.T) {
	for _, idx := range []int64{-1, 16} {
		b := ir.NewBuilder("bounds")
		b.SetVLI(4)
		v := b.Vsplat(b.Const(1))
		b.Vextr(v, idx)
		fs, err := sched.Schedule(b.Func(), &machine.Vector2x2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(fs, mem.NewPerfect(&machine.Vector2x2)).Run(); err == nil {
			t.Errorf("VEXTR index %d must fail at run time", idx)
		}
	}
}

func TestSetVLRegisterOutOfRange(t *testing.T) {
	b := ir.NewBuilder("badvl")
	n := b.Const(99)
	b.SetVL(n)
	v := b.Vsplat(b.Const(1))
	_ = v
	fs, err := sched.Schedule(b.Func(), &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fs, mem.NewPerfect(&machine.Vector2x2)).Run(); err == nil {
		t.Fatal("SETVL 99 must fail at run time")
	}
}
