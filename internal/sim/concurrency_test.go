package sim

import (
	"reflect"
	"sync"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/simd"
)

// TestConcurrentMachinesShareSchedule runs independent Machines over one
// shared FuncSched from many goroutines (meaningful under -race): the
// parallel evaluation sweep compiles each (app, config) once and runs it
// under both memory models concurrently, so execution must treat the
// schedule and the underlying IR as read-only.
func TestConcurrentMachinesShareSchedule(t *testing.T) {
	b := ir.NewBuilder("conc")
	in := b.DataH([]int16{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	out := b.Alloc(32)
	b.SetVLI(4)
	b.SetVSI(8)
	v := b.Vld(b.Const(in), 0, 1)
	b.Vst(b.V(isa.VADD, simd.W16, v, v), b.Const(out), 0, 2)
	cfg := &machine.Vector2x2
	fs, err := sched.Schedule(b.Func(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	models := []func() mem.Model{
		func() mem.Model { return mem.NewPerfect(cfg) },
		func() mem.Model { return mem.NewHierarchy(cfg) },
	}
	for mi, newModel := range models {
		want, err := New(fs, newModel()).Run()
		if err != nil {
			t.Fatal(err)
		}
		const n = 8
		results := make([]*Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = New(fs, newModel()).Run()
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("model %d run %d: %v", mi, i, errs[i])
			}
			// DeepEqual rather than ==: Result.Util is a pointer whose
			// pointee, not identity, must match.
			if !reflect.DeepEqual(results[i], want) {
				t.Errorf("model %d run %d diverged from sequential result", mi, i)
			}
		}
	}
}
