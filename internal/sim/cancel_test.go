package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/sched"
)

// buildApp schedules one benchmark application for cfg.
func buildApp(t *testing.T, name string, cfg *machine.Config, v kernels.Variant) *sched.FuncSched {
	t.Helper()
	a, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sched.Schedule(a.Build(v).Func, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// cancelAfterWrites is an io.Writer that cancels a context after n
// writes; wired to Machine.Trace it cancels a run from inside the cycle
// loop at a deterministic block count.
type cancelAfterWrites struct {
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterWrites) Write(p []byte) (int, error) {
	if c.n--; c.n <= 0 {
		c.cancel()
	}
	return len(p), nil
}

func TestRunCanceledBeforeStart(t *testing.T) {
	fs := buildApp(t, "gsm_dec", &machine.VLIW2, kernels.Scalar)
	m := New(fs, mem.NewPerfect(&machine.VLIW2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetContext(ctx, 0)
	res, err := m.Run()
	if res != nil {
		t.Fatalf("got a result from a canceled run")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to unwrap to context.Canceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CanceledError", err)
	}
	if ce.Partial != nil {
		t.Fatalf("canceled-before-start run has a partial result (%d cycles)", ce.Partial.Cycles)
	}
}

// TestRunCanceledMidRunPartial cancels a run partway through and checks
// the typed error carries a partial result that upholds the exact-sum
// invariants (stall breakdown == stall cycles, utilization == cycles).
func TestRunCanceledMidRunPartial(t *testing.T) {
	cfg := &machine.Vector2x2
	fs := buildApp(t, "mpeg2_enc", cfg, kernels.Vector)

	// First measure the full run length so the cancellation point is
	// guaranteed to fall inside the run.
	full, err := New(fs, mem.NewHierarchy(cfg)).Run()
	if err != nil {
		t.Fatal(err)
	}

	m := New(fs, mem.NewHierarchy(cfg))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel deterministically from inside the run: the block trace fires
	// once per executed block, so the context goes down after 200 blocks
	// and the next cycle-poll (every cycle) stops the run mid-flight.
	m.Trace = &cancelAfterWrites{n: 200, cancel: cancel}
	m.SetContext(ctx, 1)
	res, err := m.Run()
	if res != nil {
		t.Fatalf("got a result from a canceled run")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CanceledError", err, err)
	}
	p := ce.Partial
	if p == nil {
		t.Fatal("canceled mid-run without a partial result")
	}
	if p.Cycles <= 0 || p.Cycles >= full.Cycles {
		t.Fatalf("partial cycles = %d, want in (0, %d)", p.Cycles, full.Cycles)
	}
	if got := p.Stalls.Total(); got != p.StallCycles {
		t.Fatalf("partial stall breakdown sums to %d, want StallCycles %d", got, p.StallCycles)
	}
	var regionStalls, regionCycles int64
	for _, r := range p.Regions {
		regionStalls += r.StallCycles
		regionCycles += r.Cycles
		if rg := r.Stalls.Total(); rg != r.StallCycles {
			t.Fatalf("region stall breakdown sums to %d, want %d", rg, r.StallCycles)
		}
	}
	if regionStalls != p.StallCycles || regionCycles != p.Cycles {
		t.Fatalf("region sums (%d cycles, %d stalls) != totals (%d, %d)",
			regionCycles, regionStalls, p.Cycles, p.StallCycles)
	}
	if p.Util == nil || p.Util.Total() != p.Cycles {
		t.Fatalf("partial utilization does not sum to cycles")
	}
}

// TestRunDeadlineExpiry drives a real wall-clock deadline through the
// cycle loop: with a tiny poll interval the run must stop well before the
// uncanceled run length and unwrap to DeadlineExceeded.
func TestRunDeadlineExpiry(t *testing.T) {
	cfg := &machine.Vector2x2
	fs := buildApp(t, "mpeg2_enc", cfg, kernels.Vector)
	m := New(fs, mem.NewHierarchy(cfg))
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	m.SetContext(ctx, 1000)
	time.Sleep(time.Millisecond) // let the deadline definitely pass
	_, err := m.Run()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled unwrapping to DeadlineExceeded", err)
	}
}

// deadlineOnlyCtx carries a deadline but never closes a Done channel —
// the shape of a context whose runtime timer is starved (e.g. by the
// spinning cycle loop on a single-CPU host). The poll must catch the
// deadline by wall clock, not only via ctx.Err().
type deadlineOnlyCtx struct {
	context.Context
	d time.Time
}

func (c deadlineOnlyCtx) Deadline() (time.Time, bool) { return c.d, true }

func TestRunDeadlineWithoutTimer(t *testing.T) {
	cfg := &machine.Vector2x2
	fs := buildApp(t, "mpeg2_enc", cfg, kernels.Vector)
	m := New(fs, mem.NewHierarchy(cfg))
	m.SetContext(deadlineOnlyCtx{context.Background(), time.Now().Add(-time.Second)}, 1000)
	res, err := m.Run()
	if res != nil {
		t.Fatal("got a result from a run with an expired deadline")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled unwrapping to DeadlineExceeded", err)
	}
}

// TestSetContextNoop checks that background-style contexts disable the
// polling and leave results untouched.
func TestSetContextNoop(t *testing.T) {
	cfg := &machine.VLIW2
	fs := buildApp(t, "gsm_dec", cfg, kernels.Scalar)
	plain, err := New(fs, mem.NewPerfect(cfg)).Run()
	if err != nil {
		t.Fatal(err)
	}
	m := New(fs, mem.NewPerfect(cfg))
	m.SetContext(context.Background(), 1)
	withCtx, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != withCtx.Cycles || plain.Ops != withCtx.Ops {
		t.Fatalf("context plumbing changed the result: %d/%d vs %d/%d cycles/ops",
			plain.Cycles, plain.Ops, withCtx.Cycles, withCtx.Ops)
	}
}

// TestVLCap checks the variable-VL timing experiment: capping VL must cut
// the per-operation micro-op count of vector code while the default cap
// reproduces the uncapped run bit-for-bit.
func TestVLCap(t *testing.T) {
	cfg := &machine.Vector2x2
	fs := buildApp(t, "gsm_dec", cfg, kernels.Vector)

	base, err := New(fs, mem.NewPerfect(cfg)).Run()
	if err != nil {
		t.Fatal(err)
	}

	mDefault := New(fs, mem.NewPerfect(cfg))
	mDefault.SetVLCap(0) // explicit "no cap"
	same, err := mDefault.Run()
	if err != nil {
		t.Fatal(err)
	}
	if same.Cycles != base.Cycles || same.MicroOps != base.MicroOps {
		t.Fatalf("uncapped SetVLCap changed the run: %d/%d vs %d/%d",
			same.Cycles, same.MicroOps, base.Cycles, base.MicroOps)
	}

	mCap := New(fs, mem.NewPerfect(cfg))
	mCap.SetVLCap(2)
	capped, err := mCap.Run()
	if err != nil {
		t.Fatal(err)
	}
	if capped.MicroOps >= base.MicroOps {
		t.Fatalf("VL cap 2 did not reduce micro-ops: %d vs %d", capped.MicroOps, base.MicroOps)
	}
	// Reset restores the architectural maximum.
	mCap.Reset()
	after, err := mCap.Run()
	if err != nil {
		t.Fatal(err)
	}
	if after.MicroOps != base.MicroOps {
		t.Fatalf("Reset did not clear the VL cap: %d vs %d micro-ops", after.MicroOps, base.MicroOps)
	}
}
