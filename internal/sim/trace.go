package sim

// JSONL trace events (Machine.TraceJSON). The field order of these structs
// is the wire order — encoding/json preserves it, keeping traces
// deterministic for golden tests.

// blockEvent records one executed basic block: the cycles charged
// (schedule length, or II in pipelined steady state, plus stalls) and the
// running cycle counter.
type blockEvent struct {
	Event     string `json:"event"` // "block"
	Block     int    `json:"block"`
	Region    int    `json:"region"`
	Cycles    int64  `json:"cycles"`
	Stalls    int64  `json:"stalls"`
	Total     int64  `json:"total"`
	Pipelined bool   `json:"pipelined,omitempty"`
}

// stallEvent records one attributed share of a run-time stall: the opcode
// that incurred it, the cause, and where it happened. A single stall with
// several latency components emits one event per cause.
type stallEvent struct {
	Event  string `json:"event"` // "stall"
	Opcode string `json:"opcode"`
	Cause  string `json:"cause"`
	Cycles int64  `json:"cycles"`
	Region int    `json:"region"`
	Block  int    `json:"block"`
}
