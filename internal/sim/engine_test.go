package sim

import (
	"reflect"
	"testing"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/mem"
	"vsimdvliw/internal/progen"
	"vsimdvliw/internal/sched"
)

// Engine equivalence: the pre-decoded engine must be bit-for-bit
// indistinguishable from the reference interpreter — same registers, same
// memory image, same cycles, stalls and per-cause breakdowns, same
// utilization histograms — on arbitrary progen programs, every machine
// configuration and both memory models.

// runBothEngines executes fs twice from identical initial state, once on
// the reference interpreter and once on the pre-decoded engine, and
// returns the two machines and results.
func runBothEngines(t *testing.T, fs *sched.FuncSched, mkModel func() mem.Model) (mi, mp *Machine, ri, rp *Result) {
	t.Helper()
	mi = New(fs, mkModel())
	mi.interp = true
	ri, err := mi.Run()
	if err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	mp = New(fs, mkModel())
	rp, err = mp.Run()
	if err != nil {
		t.Fatalf("pre-decoded: %v", err)
	}
	return mi, mp, ri, rp
}

// compareEngines asserts every architectural and accounting observable
// matches between the two engines.
func compareEngines(t *testing.T, mi, mp *Machine, ri, rp *Result) {
	t.Helper()
	if !reflect.DeepEqual(ri, rp) {
		t.Errorf("results differ:\ninterpreter: %+v\npre-decoded: %+v", ri, rp)
	}
	if !reflect.DeepEqual(mi.intRegs, mp.intRegs) {
		t.Errorf("int registers differ:\ninterpreter: %v\npre-decoded: %v", mi.intRegs, mp.intRegs)
	}
	if !reflect.DeepEqual(mi.simdRegs, mp.simdRegs) {
		t.Errorf("simd registers differ:\ninterpreter: %v\npre-decoded: %v", mi.simdRegs, mp.simdRegs)
	}
	if !reflect.DeepEqual(mi.vecRegs, mp.vecRegs) {
		t.Errorf("vector registers differ")
	}
	if !reflect.DeepEqual(mi.accRegs, mp.accRegs) {
		t.Errorf("accumulators differ:\ninterpreter: %v\npre-decoded: %v", mi.accRegs, mp.accRegs)
	}
	if mi.vl != mp.vl || mi.vs != mp.vs {
		t.Errorf("VL/VS differ: interpreter %d/%d, pre-decoded %d/%d", mi.vl, mi.vs, mp.vl, mp.vs)
	}
	if !reflect.DeepEqual(mi.memory, mp.memory) {
		for i := range mi.memory {
			if mi.memory[i] != mp.memory[i] {
				t.Errorf("memory differs first at %#x: interpreter %#x, pre-decoded %#x",
					i, mi.memory[i], mp.memory[i])
				break
			}
		}
	}
}

// checkEngineEquivalence schedules f on cfg with opts and cross-checks the
// two engines under both memory models.
func checkEngineEquivalence(t *testing.T, f *ir.Func, cfg *machine.Config, opts sched.Options) {
	t.Helper()
	fs, err := sched.ScheduleOpts(f, cfg, opts)
	if err != nil {
		t.Fatalf("schedule on %s: %v", cfg.Name, err)
	}
	models := []func() mem.Model{
		func() mem.Model { return mem.NewPerfect(cfg) },
		func() mem.Model { return mem.NewHierarchy(cfg) },
	}
	for _, mk := range models {
		mi, mp, ri, rp := runBothEngines(t, fs, mk)
		compareEngines(t, mi, mp, ri, rp)
	}
}

func TestEngineEquivalenceRandomPrograms(t *testing.T) {
	cfgs := []*machine.Config{&machine.Vector1x2, &machine.Vector2x2, &machine.Vector2x4}
	schedOpts := []sched.Options{
		{},
		{NoChaining: true},
		{OverlapDrain: true, SoftwarePipeline: true},
	}
	for seed := uint64(1); seed <= 24; seed++ {
		p, err := progen.Generate(seed*104729, 80)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cfgs {
			checkEngineEquivalence(t, p.Func, cfg, schedOpts[int(seed)%len(schedOpts)])
		}
	}
}

// TestEngineEquivalenceReset checks that a pooled (Reset) machine behaves
// exactly like a fresh one, on both engines.
func TestEngineEquivalenceReset(t *testing.T) {
	p, err := progen.Generate(31337, 80)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &machine.Vector2x4
	fs, err := sched.ScheduleOpts(p.Func, cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, interp := range []bool{false, true} {
		m := New(fs, mem.NewHierarchy(cfg))
		m.interp = interp
		first, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		m.Reset()
		second, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("interp=%v: results differ after Reset:\nfirst:  %+v\nsecond: %+v",
				interp, first, second)
		}
	}
}

// FuzzEngineEquivalence drives the differential engine harness from the
// fuzzer: each input seeds progen and the two engines must agree on every
// observable. `make ci` runs this as a short smoke; longer runs explore
// new program shapes.
func FuzzEngineEquivalence(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed, uint(60))
	}
	cfgs := []*machine.Config{&machine.Vector1x2, &machine.Vector2x2, &machine.Vector2x4}
	schedOpts := []sched.Options{
		{},
		{NoChaining: true},
		{OverlapDrain: true, SoftwarePipeline: true},
	}
	f.Fuzz(func(t *testing.T, seed uint64, nops uint) {
		n := int(nops%120) + 10
		p, err := progen.Generate(seed, n)
		if err != nil {
			t.Skip()
		}
		cfg := cfgs[int(seed>>8)%len(cfgs)]
		checkEngineEquivalence(t, p.Func, cfg, schedOpts[int(seed>>16)%len(schedOpts)])
	})
}
