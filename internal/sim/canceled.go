package sim

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCanceled is the sentinel all cancellation errors match through
// errors.Is: a run that was stopped by its context before reaching HALT.
var ErrCanceled = errors.New("sim: run canceled")

// CanceledError reports a simulation stopped by context cancellation or
// deadline expiry. It carries the partial result accumulated up to the
// cancellation point — cycles, per-region statistics and the stall
// attribution still satisfy the exact-sum invariants (Stalls sums to
// StallCycles, the utilization histograms sum to Cycles), so a caller can
// bill or display partial work faithfully.
type CanceledError struct {
	// Cause is the context error (context.Canceled or
	// context.DeadlineExceeded). Never nil.
	Cause error
	// Partial is the result accumulated before the run stopped; nil when
	// the run was canceled before it started.
	Partial *Result
}

// Error implements error.
func (e *CanceledError) Error() string {
	if e.Partial != nil {
		return fmt.Sprintf("sim: run canceled after %d cycles: %v", e.Partial.Cycles, e.Cause)
	}
	return fmt.Sprintf("sim: run canceled before start: %v", e.Cause)
}

// Unwrap exposes the context error so errors.Is(err,
// context.DeadlineExceeded) works.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Is matches the ErrCanceled sentinel.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// DefaultCheckCycles is how many simulated cycles pass between
// cancellation checks when SetContext is called with checkEvery <= 0. The
// check itself is a single ctx.Err() call, so the interval only bounds
// cancellation latency (tens of microseconds of wall time at typical
// simulation speeds), not throughput.
const DefaultCheckCycles = 50_000

// SetContext arms the machine with a cancellation context: Run polls
// ctx.Err() every checkEvery simulated cycles (DefaultCheckCycles if <= 0)
// and, once the context is done, stops and returns a *CanceledError
// holding the partial result. A context deadline is additionally compared
// against the wall clock at every poll — ctx.Err() alone is not enough,
// because the runtime timer that closes ctx.Done can be starved by the
// spinning cycle loop on a single-CPU host. A nil ctx (or
// context.Background()) disables the checks.
func (m *Machine) SetContext(ctx context.Context, checkEvery int64) {
	m.ctxDeadline, m.ctxHasDL = time.Time{}, false
	if ctx != nil {
		m.ctxDeadline, m.ctxHasDL = ctx.Deadline()
	}
	if ctx != nil && ctx.Done() == nil && !m.ctxHasDL {
		ctx = nil // never cancelable: skip the polling entirely
	}
	if checkEvery <= 0 {
		checkEvery = DefaultCheckCycles
	}
	m.ctx = ctx
	m.ctxEvery = checkEvery
	m.ctxCheckAt = checkEvery
}

// canceled finalizes a canceled run: like a completed run it snapshots the
// memory-hierarchy statistics and folds the block execution counts into
// the utilization histograms, so the partial result upholds the same
// exact-sum invariants as a finished one.
func (m *Machine) canceled(cause error) error {
	res := m.finalize()
	return &CanceledError{Cause: cause, Partial: res}
}
