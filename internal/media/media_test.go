package media

import "testing"

func TestRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Error("different seeds should diverge immediately")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must be remapped, not stuck at zero")
	}
}

func TestIntnInRange(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestBytesLength(t *testing.T) {
	if got := len(NewRand(3).Bytes(123)); got != 123 {
		t.Errorf("Bytes(123) returned %d bytes", got)
	}
}

func TestSmoothImageProperties(t *testing.T) {
	img := SmoothImage(5, 64, 48)
	if len(img) != 64*48 {
		t.Fatalf("size %d", len(img))
	}
	// Smoothness: neighboring pixels differ much less than random bytes
	// would (expected ~85 for uniform noise).
	var diff, n int64
	for y := 0; y < 48; y++ {
		for x := 1; x < 64; x++ {
			d := int64(img[y*64+x]) - int64(img[y*64+x-1])
			if d < 0 {
				d = -d
			}
			diff += d
			n++
		}
	}
	if avg := diff / n; avg > 25 {
		t.Errorf("average horizontal gradient %d: not smooth", avg)
	}
	// Determinism.
	img2 := SmoothImage(5, 64, 48)
	for i := range img {
		if img[i] != img2[i] {
			t.Fatal("SmoothImage must be deterministic")
		}
	}
}

func TestRGBImageCorrelated(t *testing.T) {
	r, g, b := RGBImage(7, 32, 32)
	if len(r) != 1024 || len(g) != 1024 || len(b) != 1024 {
		t.Fatal("plane sizes wrong")
	}
	// Channels come from the same base image: they should correlate.
	var diff int64
	for i := range r {
		d := int64(r[i]) - int64(g[i])
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if avg := diff / int64(len(r)); avg > 40 {
		t.Errorf("R and G differ by %d on average: not correlated", avg)
	}
}

func TestFramePairMotionRecoverable(t *testing.T) {
	cur, ref := FramePair(11, 64, 48, -3, 2)
	// SAD at the true displacement must be far lower than at zero.
	sad := func(dx, dy int) int64 {
		var s int64
		for y := 16; y < 32; y++ {
			for x := 16; x < 32; x++ {
				d := int64(cur[y*64+x]) - int64(ref[(y+dy)*64+x+dx])
				if d < 0 {
					d = -d
				}
				s += d
			}
		}
		return s
	}
	atTrue := sad(-3, 2)
	atZero := sad(0, 0)
	if atTrue*4 > atZero {
		t.Errorf("SAD at true motion (%d) not clearly below zero-motion (%d)", atTrue, atZero)
	}
}

func TestSpeechProperties(t *testing.T) {
	s := Speech(13, 320)
	if len(s) != 320 {
		t.Fatal("length wrong")
	}
	var maxAbs int
	var energy int64
	for _, v := range s {
		a := int(v)
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
		energy += int64(v) * int64(v)
	}
	if maxAbs > 4096 {
		t.Errorf("amplitude %d exceeds the fixed-point budget", maxAbs)
	}
	if energy == 0 {
		t.Error("silent signal")
	}
	// Periodicity: autocorrelation at some lag in 60..100 should be a
	// large fraction of the energy.
	best := int64(0)
	for lag := 40; lag <= 120; lag++ {
		var c int64
		for i := lag; i < len(s); i++ {
			c += int64(s[i]) * int64(s[i-lag])
		}
		if c > best {
			best = c
		}
	}
	if best*2 < energy/2 {
		t.Errorf("no long-term correlation: best=%d energy=%d", best, energy)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := Stream(3, 50)
	b := Stream(3, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Stream must be deterministic")
		}
	}
	if len(a) != 50 {
		t.Fatal("length wrong")
	}
}
