// Package media generates the deterministic synthetic inputs the
// applications run on: images with spatial structure (so DCT and
// entropy-coding stages see realistic coefficient distributions), video
// frame pairs with global motion (so motion estimation has a real
// optimum), speech-like waveforms (so GSM correlations are meaningful),
// and raw pseudo-random bitstreams for the decoder front ends.
//
// The paper drives its benchmarks with the UCLA Mediabench inputs; this
// package is the offline substitute. The workloads exercise exactly the
// same code paths — what matters to the evaluation is the instruction
// mix and the memory access patterns, both of which are preserved.
package media

import "math"

// Rand is a small deterministic xorshift64* generator.
type Rand struct{ s uint64 }

// NewRand seeds a generator (seed 0 is remapped to 1).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 1
	}
	return &Rand{s: seed}
}

// Uint64 returns the next value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545F4914F6CDD1D
}

// Byte returns a pseudo-random byte.
func (r *Rand) Byte() byte { return byte(r.Uint64() >> 56) }

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Bytes returns n pseudo-random bytes.
func (r *Rand) Bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = r.Byte()
	}
	return out
}

// SmoothImage builds a w x h plane with low-frequency structure plus mild
// noise — the kind of content DCT compresses well, so quantized blocks
// have realistic zero runs.
func SmoothImage(seed uint64, w, h int) []byte {
	r := NewRand(seed)
	fx := 2 * math.Pi / float64(w) * (1 + float64(r.Intn(3)))
	fy := 2 * math.Pi / float64(h) * (1 + float64(r.Intn(4)))
	phase := float64(r.Intn(628)) / 100
	out := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 128 +
				55*math.Sin(fx*float64(x)+phase) +
				45*math.Cos(fy*float64(y)) +
				20*math.Sin(fx*float64(x)*3+fy*float64(y)*2)
			v += float64(r.Intn(9)) - 4
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out[y*w+x] = byte(v)
		}
	}
	return out
}

// RGBImage builds three correlated planes (R, G, B).
func RGBImage(seed uint64, w, h int) (r, g, b []byte) {
	base := SmoothImage(seed, w, h)
	rnd := NewRand(seed + 17)
	r = make([]byte, w*h)
	g = make([]byte, w*h)
	b = make([]byte, w*h)
	for i := range base {
		v := int(base[i])
		r[i] = clamp(v + rnd.Intn(31) - 15)
		g[i] = clamp(v + rnd.Intn(21) - 10)
		b[i] = clamp(v - rnd.Intn(41) + 20)
	}
	return r, g, b
}

func clamp(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// FramePair builds a reference frame and a current frame that is the
// reference shifted by (dx, dy) with mild noise — full-search motion
// estimation recovers the shift.
func FramePair(seed uint64, w, h, dx, dy int) (cur, ref []byte) {
	ref = SmoothImage(seed, w, h)
	rnd := NewRand(seed + 99)
	cur = make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx, sy := x+dx, y+dy
			if sx < 0 {
				sx = 0
			}
			if sx >= w {
				sx = w - 1
			}
			if sy < 0 {
				sy = 0
			}
			if sy >= h {
				sy = h - 1
			}
			v := int(ref[sy*w+sx]) + rnd.Intn(5) - 2
			cur[y*w+x] = clamp(v)
		}
	}
	return cur, ref
}

// Speech builds an n-sample speech-like waveform: a few harmonics with a
// pitch period (so LTP finds genuine long-term correlation) plus noise.
// Amplitude stays under 4096 so all fixed-point kernels are exact.
func Speech(seed uint64, n int) []int16 {
	r := NewRand(seed)
	pitch := 60 + r.Intn(40) // samples per pitch period
	out := make([]int16, n)
	for i := 0; i < n; i++ {
		t := float64(i)
		v := 1800*math.Sin(2*math.Pi*t/float64(pitch)) +
			700*math.Sin(4*math.Pi*t/float64(pitch)+0.7) +
			300*math.Sin(6*math.Pi*t/float64(pitch)+1.9)
		v += float64(r.Intn(201) - 100)
		if v > 4000 {
			v = 4000
		}
		if v < -4000 {
			v = -4000
		}
		out[i] = int16(v)
	}
	return out
}

// Stream builds n 16-bit words of pseudo-random "bitstream" for the
// decoder front ends.
func Stream(seed uint64, n int) []uint16 {
	r := NewRand(seed)
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(r.Uint64())
	}
	return out
}
