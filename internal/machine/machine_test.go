package machine

import (
	"testing"

	"vsimdvliw/internal/isa"
)

func TestAllValidate(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("expected the 10 configurations of Table 2, got %d", len(all))
	}
	for _, c := range all {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestTable2Parameters(t *testing.T) {
	cases := []struct {
		c        *Config
		issue    int
		intRegs  int
		simdRegs int
		accRegs  int
		intU     int
		simdU    int
		vecU     int
		l1Ports  int
		l2Ports  int
	}{
		{&VLIW2, 2, 64, 0, 0, 2, 0, 0, 1, 0},
		{&VLIW4, 4, 96, 0, 0, 4, 0, 0, 2, 0},
		{&VLIW8, 8, 128, 0, 0, 8, 0, 0, 3, 0},
		{&USIMD2, 2, 64, 64, 0, 2, 2, 0, 1, 0},
		{&USIMD4, 4, 96, 96, 0, 4, 4, 0, 2, 0},
		{&USIMD8, 8, 128, 128, 0, 8, 8, 0, 3, 0},
		{&Vector1x2, 2, 64, 20, 4, 2, 0, 1, 1, 1},
		{&Vector1x4, 4, 96, 32, 6, 4, 0, 2, 1, 1},
		{&Vector2x2, 2, 64, 20, 4, 2, 0, 2, 1, 1},
		{&Vector2x4, 4, 96, 32, 6, 4, 0, 4, 2, 1},
	}
	for _, x := range cases {
		c := x.c
		if c.Issue != x.issue {
			t.Errorf("%s issue = %d, want %d", c.Name, c.Issue, x.issue)
		}
		if c.IntRegs != x.intRegs {
			t.Errorf("%s int regs = %d, want %d", c.Name, c.IntRegs, x.intRegs)
		}
		if c.SIMDRegs != x.simdRegs {
			t.Errorf("%s simd regs = %d, want %d", c.Name, c.SIMDRegs, x.simdRegs)
		}
		if c.AccRegs != x.accRegs {
			t.Errorf("%s acc regs = %d, want %d", c.Name, c.AccRegs, x.accRegs)
		}
		if c.IntUnits != x.intU {
			t.Errorf("%s int units = %d, want %d", c.Name, c.IntUnits, x.intU)
		}
		if c.SIMDUnits != x.simdU {
			t.Errorf("%s simd units = %d, want %d", c.Name, c.SIMDUnits, x.simdU)
		}
		if c.VectorUnits != x.vecU {
			t.Errorf("%s vector units = %d, want %d", c.Name, c.VectorUnits, x.vecU)
		}
		if c.L1Ports != x.l1Ports {
			t.Errorf("%s L1 ports = %d, want %d", c.Name, c.L1Ports, x.l1Ports)
		}
		if c.L2Ports != x.l2Ports {
			t.Errorf("%s L2 ports = %d, want %d", c.Name, c.L2Ports, x.l2Ports)
		}
	}
}

func TestVectorLanes(t *testing.T) {
	for _, c := range []*Config{&Vector1x2, &Vector1x4, &Vector2x2, &Vector2x4} {
		if c.Lanes != 4 {
			t.Errorf("%s: %d lanes, want 4 (the paper uses four vector lanes)", c.Name, c.Lanes)
		}
		if c.L2PortWords != 4 {
			t.Errorf("%s: L2 port %d words wide, want 4 (4x64-bit)", c.Name, c.L2PortWords)
		}
	}
}

func TestLatencies(t *testing.T) {
	for _, c := range All() {
		if c.LatL1 != 1 || c.LatL2 != 5 || c.LatL3 != 12 || c.LatMem != 500 {
			t.Errorf("%s latencies = %d/%d/%d/%d, want 1/5/12/500",
				c.Name, c.LatL1, c.LatL2, c.LatL3, c.LatMem)
		}
		if c.L1Bytes != 16<<10 || c.L1Ways != 4 {
			t.Errorf("%s: L1 must be 16KB 4-way", c.Name)
		}
		if c.L2Bytes != 256<<10 {
			t.Errorf("%s: L2 vector cache must be 256KB", c.Name)
		}
		if c.L3Bytes != 1<<20 {
			t.Errorf("%s: L3 must be 1MB", c.Name)
		}
	}
}

func TestSupports(t *testing.T) {
	if !VLIW2.Supports(isa.ADD) || VLIW2.Supports(isa.PADD) || VLIW2.Supports(isa.VADD) {
		t.Error("VLIW must support scalar only")
	}
	if !USIMD4.Supports(isa.PADD) || USIMD4.Supports(isa.VADD) || USIMD4.Supports(isa.SETVL) {
		t.Error("µSIMD must support packed but not vector ops")
	}
	if !Vector2x2.Supports(isa.VADD) || !Vector2x2.Supports(isa.PADD) ||
		!Vector2x2.Supports(isa.SETVL) || !Vector2x2.Supports(isa.VSADA) {
		t.Error("vector config must support the full ISA")
	}
}

func TestUnitsAndUnitFor(t *testing.T) {
	if USIMD2.Units(isa.UnitSIMD) != 2 {
		t.Error("uSIMD-2w must have 2 µSIMD units")
	}
	// Vector configs fold µSIMD ops onto the vector units.
	if Vector2x2.Units(isa.UnitSIMD) != 2 {
		t.Errorf("Vector2-2w Units(SIMD) = %d, want 2 (vector units)", Vector2x2.Units(isa.UnitSIMD))
	}
	if Vector2x2.UnitFor(isa.UnitSIMD) != isa.UnitVector {
		t.Error("Vector config must map UnitSIMD -> UnitVector")
	}
	if USIMD2.UnitFor(isa.UnitSIMD) != isa.UnitSIMD {
		t.Error("µSIMD config must keep UnitSIMD")
	}
	if Vector2x4.Units(isa.UnitVMem) != 1 {
		t.Error("vector configs have one L2 vector port")
	}
	if VLIW8.Units(isa.UnitBranch) != 1 {
		t.Error("one branch unit")
	}
	if VLIW8.Units(isa.UnitNone) != 0 {
		t.Error("UnitNone has no units")
	}
}

func TestRegs(t *testing.T) {
	if Vector2x2.Regs(isa.RegVec) != 20 || Vector2x2.Regs(isa.RegAcc) != 4 {
		t.Error("Vector2-2w register files wrong")
	}
	if USIMD8.Regs(isa.RegSIMD) != 128 || USIMD8.Regs(isa.RegInt) != 128 {
		t.Error("uSIMD-8w register files wrong")
	}
	if VLIW2.Regs(isa.RegAcc) != 0 {
		t.Error("VLIW has no accumulators")
	}
	if VLIW2.Regs(isa.RegNone) != 0 {
		t.Error("RegNone has no file")
	}
}

func TestByName(t *testing.T) {
	if ByName("Vector2-4w") != &Vector2x4 {
		t.Error("ByName failed for Vector2-4w")
	}
	if ByName("nope") != nil {
		t.Error("ByName must return nil for unknown names")
	}
	for _, c := range All() {
		if ByName(c.Name) != c {
			t.Errorf("ByName(%q) did not round-trip", c.Name)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{Name: "x", Issue: 0, IntUnits: 1, L1Ports: 1},
		{Name: "x", Issue: 2, IntUnits: 0, L1Ports: 1},
		{Name: "x", Issue: 2, IntUnits: 2, L1Ports: 0},
		{Name: "x", Issue: 2, IntUnits: 2, L1Ports: 1, ISA: ISAuSIMD},
		{Name: "x", Issue: 2, IntUnits: 2, L1Ports: 1, ISA: ISAVector},
		{Name: "x", Issue: 2, IntUnits: 2, L1Ports: 1, ISA: ISAVector,
			VectorUnits: 1, Lanes: 4},
		{Name: "x", Issue: 2, IntUnits: 2, L1Ports: 1, ISA: ISAVector,
			VectorUnits: 1, Lanes: 4, L2Ports: 1, L2PortWords: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestISAKindString(t *testing.T) {
	if ISAScalar.String() != "VLIW" || ISAuSIMD.String() != "uSIMD" ||
		ISAVector.String() != "Vector" || ISAKind(9).String() != "?" {
		t.Error("ISAKind.String wrong")
	}
}

// TestValidateCacheGeometry covers the geometry checks: non-positive
// ways/line/bytes and sizes not divisible by ways*line must be rejected
// for every level, as must bad organization knobs, while the paper's
// defaults (and a legal non-power-of-two set count) pass.
func TestValidateCacheGeometry(t *testing.T) {
	base := Vector2x2 // value copy; mutated per case
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"defaults", func(c *Config) {}, true},
		{"l1 zero bytes", func(c *Config) { c.L1Bytes = 0 }, false},
		{"l1 negative ways", func(c *Config) { c.L1Ways = -1 }, false},
		{"l1 zero line", func(c *Config) { c.L1Line = 0 }, false},
		{"l1 not divisible", func(c *Config) { c.L1Bytes = 16<<10 + 64 }, false},
		{"l2 zero ways", func(c *Config) { c.L2Ways = 0 }, false},
		{"l2 negative bytes", func(c *Config) { c.L2Bytes = -4096 }, false},
		{"l2 not divisible", func(c *Config) { c.L2Bytes = c.L2Ways*c.L2Line*3 + 1 }, false},
		{"l2 smaller than ways*line", func(c *Config) { c.L2Bytes = c.L2Ways*c.L2Line - c.L2Line }, false},
		{"l3 zero line", func(c *Config) { c.L3Line = 0 }, false},
		{"l3 not divisible", func(c *Config) { c.L3Bytes = 1<<20 - 32 }, false},
		{"non-pow2 sets ok", func(c *Config) { c.L2Bytes = c.L2Ways * c.L2Line * 3 }, true},
		{"banks pow2", func(c *Config) { c.L2Banks = 4 }, true},
		{"banks not pow2", func(c *Config) { c.L2Banks = 3 }, false},
		{"banks negative", func(c *Config) { c.L2Banks = -2 }, false},
		{"scalar partition ok", func(c *Config) { c.L2ScalarBytes = 64 << 10 }, true},
		{"scalar partition too big", func(c *Config) { c.L2ScalarBytes = c.L2Bytes }, false},
		{"scalar partition negative", func(c *Config) { c.L2ScalarBytes = -512 }, false},
		{"scalar partition not divisible", func(c *Config) { c.L2ScalarBytes = 64<<10 + 64 }, false},
	}
	for _, tc := range cases {
		c := base
		c.Name = "geom-" + tc.name
		tc.mut(&c)
		err := c.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}
