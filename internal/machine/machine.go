// Package machine describes the processor configurations evaluated in the
// paper (Table 2): 2/4/8-issue VLIW, 2/4/8-issue µSIMD-VLIW, and the 2/4
// issue Vector-µSIMD-VLIW configurations Vector1 and Vector2.
//
// A Config is consumed by the static scheduler (resource reservation and
// latency descriptors), by the register-pressure verifier, and by the
// simulator (memory-hierarchy ports).
package machine

import (
	"fmt"

	"vsimdvliw/internal/isa"
)

// ISAKind selects which extension a configuration implements, and therefore
// which code variant of a program it can run.
type ISAKind uint8

// The three ISA levels evaluated in the paper.
const (
	ISAScalar ISAKind = iota // plain VLIW: scalar operations only
	ISAuSIMD                 // VLIW + µSIMD packed operations
	ISAVector                // VLIW + µSIMD + Vector-µSIMD operations
)

// String implements fmt.Stringer.
func (k ISAKind) String() string {
	switch k {
	case ISAScalar:
		return "VLIW"
	case ISAuSIMD:
		return "uSIMD"
	case ISAVector:
		return "Vector"
	}
	return "?"
}

// Config is one processor configuration (a row group of Table 2).
type Config struct {
	Name  string
	ISA   ISAKind
	Issue int // VLIW issue width (operations per instruction)

	// Register file sizes.
	IntRegs  int // integer registers
	SIMDRegs int // µSIMD 64-bit registers (µSIMD configs) or vector registers (vector configs)
	AccRegs  int // packed accumulators (vector configs only)

	// Functional units.
	IntUnits    int // integer ALUs
	SIMDUnits   int // µSIMD units (µSIMD configs)
	VectorUnits int // vector units (vector configs)
	Lanes       int // parallel vector lanes per vector unit
	BranchUnits int

	// Memory ports.
	L1Ports     int // scalar/µSIMD ports to the L1 data cache
	L2Ports     int // wide ports to the L2 vector cache
	L2PortWords int // width of each L2 port in 64-bit words (B)

	// Memory hierarchy latencies (cycles).
	LatL1  int
	LatL2  int
	LatL3  int
	LatMem int

	// Cache geometry.
	L1Bytes, L1Ways, L1Line int
	L2Bytes, L2Ways, L2Line int // the two-bank interleaved vector cache
	L3Bytes, L3Ways, L3Line int

	// L2 organization knobs (internal/cacheorg). Both zero values keep the
	// paper's organization: two interleaved banks, and — for the bicameral
	// split cache — a scalar partition of a quarter of the L2 capacity.
	//
	// L2Banks parameterizes the banked organization's bank count (a power
	// of two; 0 uses the bank count implied by the selected memory model,
	// e.g. 4 for realistic:banked4). L2ScalarBytes sizes the bicameral
	// organization's scalar partition; the vector partition gets the
	// remaining L2Bytes - L2ScalarBytes.
	L2Banks       int
	L2ScalarBytes int
}

// Validate checks internal consistency of the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Issue < 1:
		return fmt.Errorf("machine %s: issue width %d", c.Name, c.Issue)
	case c.IntUnits < 1:
		return fmt.Errorf("machine %s: no integer units", c.Name)
	case c.L1Ports < 1:
		return fmt.Errorf("machine %s: no L1 ports", c.Name)
	case c.ISA == ISAuSIMD && c.SIMDUnits < 1:
		return fmt.Errorf("machine %s: µSIMD ISA without µSIMD units", c.Name)
	case c.ISA == ISAVector && (c.VectorUnits < 1 || c.Lanes < 1):
		return fmt.Errorf("machine %s: vector ISA without vector units/lanes", c.Name)
	case c.ISA == ISAVector && (c.L2Ports < 1 || c.L2PortWords < 1):
		return fmt.Errorf("machine %s: vector ISA without an L2 vector port", c.Name)
	case c.ISA == ISAVector && c.AccRegs < 1:
		return fmt.Errorf("machine %s: vector ISA without accumulators", c.Name)
	}
	// Cache geometry: mem.NewCache silently floors the set count at one
	// when bytes < ways*line and panics on non-positive parameters, so a
	// bad geometry must be rejected here, before it reaches the tag
	// stores.
	caches := []struct {
		level             string
		bytes, ways, line int
	}{
		{"L1", c.L1Bytes, c.L1Ways, c.L1Line},
		{"L2", c.L2Bytes, c.L2Ways, c.L2Line},
		{"L3", c.L3Bytes, c.L3Ways, c.L3Line},
	}
	for _, l := range caches {
		switch {
		case l.bytes <= 0 || l.ways <= 0 || l.line <= 0:
			return fmt.Errorf("machine %s: %s geometry %dB %d-way %dB-line: all parameters must be positive",
				c.Name, l.level, l.bytes, l.ways, l.line)
		case l.bytes%(l.ways*l.line) != 0:
			return fmt.Errorf("machine %s: %s size %dB not divisible by ways*line = %d",
				c.Name, l.level, l.bytes, l.ways*l.line)
		}
	}
	if c.L2Banks != 0 {
		if c.L2Banks < 1 || c.L2Banks&(c.L2Banks-1) != 0 {
			return fmt.Errorf("machine %s: L2Banks %d must be a positive power of two", c.Name, c.L2Banks)
		}
	}
	if c.L2ScalarBytes != 0 {
		switch {
		case c.L2ScalarBytes < 0 || c.L2ScalarBytes >= c.L2Bytes:
			return fmt.Errorf("machine %s: L2ScalarBytes %d must be in (0, L2Bytes)", c.Name, c.L2ScalarBytes)
		case c.L2ScalarBytes%(c.L2Ways*c.L2Line) != 0:
			return fmt.Errorf("machine %s: L2ScalarBytes %d not divisible by ways*line = %d",
				c.Name, c.L2ScalarBytes, c.L2Ways*c.L2Line)
		}
	}
	return nil
}

// Units returns the number of functional units of the given class. For
// vector configurations, µSIMD operations execute on the vector units
// (a vector operation with VL=1 is exactly a µSIMD operation, so the
// vector unit subsumes the µSIMD one).
func (c *Config) Units(u isa.Unit) int {
	switch u {
	case isa.UnitInt:
		return c.IntUnits
	case isa.UnitMem:
		return c.L1Ports
	case isa.UnitBranch:
		return c.BranchUnits
	case isa.UnitSIMD:
		if c.ISA == ISAVector {
			return c.VectorUnits
		}
		return c.SIMDUnits
	case isa.UnitVector:
		return c.VectorUnits
	case isa.UnitVMem:
		return c.L2Ports
	case isa.UnitNone:
		return 0
	}
	return 0
}

// UnitFor maps an operation's nominal unit class to the class that executes
// it on this configuration (µSIMD ops fold onto vector units in vector
// configurations).
func (c *Config) UnitFor(u isa.Unit) isa.Unit {
	if u == isa.UnitSIMD && c.ISA == ISAVector {
		return isa.UnitVector
	}
	return u
}

// Supports reports whether the configuration can execute the opcode.
func (c *Config) Supports(op isa.Opcode) bool {
	in := op.Get()
	switch in.Unit {
	case isa.UnitSIMD:
		return c.ISA >= ISAuSIMD
	case isa.UnitVector, isa.UnitVMem:
		return c.ISA == ISAVector
	}
	if op == isa.SETVL || op == isa.SETVS {
		return c.ISA == ISAVector
	}
	// Operations on other units may still touch register files the
	// configuration lacks (e.g. the LDM/STM µSIMD memory operations).
	for _, classes := range [][]isa.RegClass{in.Sig.Dst, in.Sig.Src} {
		for _, cl := range classes {
			switch cl {
			case isa.RegSIMD:
				if c.ISA < ISAuSIMD {
					return false
				}
			case isa.RegVec, isa.RegAcc:
				if c.ISA != ISAVector {
					return false
				}
			}
		}
	}
	return true
}

// Regs returns the size of the register file of the given class.
func (c *Config) Regs(cl isa.RegClass) int {
	switch cl {
	case isa.RegInt:
		return c.IntRegs
	case isa.RegSIMD, isa.RegVec:
		return c.SIMDRegs
	case isa.RegAcc:
		return c.AccRegs
	}
	return 0
}

// cacheDefaults fills the memory-hierarchy parameters shared by every
// configuration in the paper: 16KB 4-way L1 (1 cycle), 256KB two-bank
// vector L2 (5 cycles), 1MB L3 (12 cycles), 500-cycle main memory.
func cacheDefaults(c Config) Config {
	c.LatL1, c.LatL2, c.LatL3, c.LatMem = 1, 5, 12, 500
	c.L1Bytes, c.L1Ways, c.L1Line = 16<<10, 4, 64
	c.L2Bytes, c.L2Ways, c.L2Line = 256<<10, 8, 64
	c.L3Bytes, c.L3Ways, c.L3Line = 1<<20, 8, 64
	c.BranchUnits = 1
	return c
}

// The ten configurations of Table 2. Integer register files are
// 64/96/128 for 2/4/8-issue; µSIMD configurations add an equal-sized
// packed file; Vector configurations have 20/32 vector registers of 16
// words, 4/6 accumulators, one wide (4x64-bit) port to the L2 vector
// cache, and one L1 port (Vector2-4w has two).
func vliw(w int) Config {
	regs := map[int]int{2: 64, 4: 96, 8: 128}[w]
	ports := map[int]int{2: 1, 4: 2, 8: 3}[w]
	return cacheDefaults(Config{
		Name:     fmt.Sprintf("VLIW-%dw", w),
		ISA:      ISAScalar,
		Issue:    w,
		IntRegs:  regs,
		IntUnits: w,
		L1Ports:  ports,
	})
}

func usimd(w int) Config {
	c := vliw(w)
	c.Name = fmt.Sprintf("uSIMD-%dw", w)
	c.ISA = ISAuSIMD
	c.SIMDRegs = c.IntRegs
	c.SIMDUnits = w
	return c
}

func vector(w, units int) Config {
	c := vliw(w)
	c.ISA = ISAVector
	if w == 2 {
		c.SIMDRegs = 20
		c.AccRegs = 4
	} else {
		c.SIMDRegs = 32
		c.AccRegs = 6
	}
	c.VectorUnits = units
	c.Lanes = 4
	c.L2Ports = 1
	c.L2PortWords = 4
	return c
}

// Vector1 has one vector unit at 2-issue and two at 4-issue, and a single
// L1 port; Vector2 has two and four vector units, with 1/2 L1 ports
// (Table 2).
func vector1(w int) Config {
	c := vector(w, w/2)
	c.Name = fmt.Sprintf("Vector1-%dw", w)
	c.L1Ports = 1
	return c
}

func vector2(w int) Config {
	c := vector(w, w)
	c.Name = fmt.Sprintf("Vector2-%dw", w)
	c.L1Ports = w / 2 // 1 at 2-issue, 2 at 4-issue
	return c
}

// Predefined configurations (Table 2).
var (
	VLIW2 = vliw(2)
	VLIW4 = vliw(4)
	VLIW8 = vliw(8)

	USIMD2 = usimd(2)
	USIMD4 = usimd(4)
	USIMD8 = usimd(8)

	Vector1x2 = vector1(2)
	Vector1x4 = vector1(4)
	Vector2x2 = vector2(2)
	Vector2x4 = vector2(4)
)

// All returns the ten configurations in the paper's presentation order.
func All() []*Config {
	return []*Config{
		&VLIW2, &VLIW4, &VLIW8,
		&USIMD2, &USIMD4, &USIMD8,
		&Vector1x2, &Vector1x4,
		&Vector2x2, &Vector2x4,
	}
}

// ByName returns the configuration with the given name, or nil.
func ByName(name string) *Config {
	for _, c := range All() {
		if c.Name == name {
			return c
		}
	}
	return nil
}
