package server

import (
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"vsimdvliw/internal/apps"
)

// scrapeMetrics fetches /metrics and returns the unlabeled samples by
// name.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	vals := map[string]float64{}
	for _, line := range newLineScanner(t, resp) {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, found := strings.Cut(line, " ")
		if !found || strings.Contains(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		vals[name] = v
	}
	return vals
}

// TestColdStartCompilePath is the cold-start e2e check from ISSUE 7: a
// daemon with empty caches serves one request per application, every one
// a cold compile, and /metrics accounts for each compile with non-zero
// wall-clock cost. A second identical pass must be served entirely from
// the result cache — byte-identical results, zero new compiles — pinning
// down both the compile-path counters and the warm-path baseline the
// cold-start numbers in EXPERIMENTS.md are measured against.
func TestColdStartCompilePath(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})

	all := apps.All()
	cold := make([]*RunResponse, len(all))
	for i, a := range all {
		req := &RunRequest{App: a.Name, Config: "Vector2-2w", Memory: "realistic"}
		var resp RunResponse
		if code := post(t, url+"/v1/run", req, &resp); code != http.StatusOK {
			t.Fatalf("cold %s: status %d", a.Name, code)
		}
		if resp.Cache != "miss" {
			t.Fatalf("cold %s: cache outcome %q, want \"miss\" (caches were empty)", a.Name, resp.Cache)
		}
		cold[i] = &resp
	}

	vals := scrapeMetrics(t, url)
	wantCompiles := float64(len(all))
	if got := vals["vsimdd_compiles_total"]; got != wantCompiles {
		t.Errorf("vsimdd_compiles_total = %g after cold pass, want %g", got, wantCompiles)
	}
	if got := vals["vsimdd_cache_misses_total"]; got != wantCompiles {
		t.Errorf("vsimdd_cache_misses_total = %g after cold pass, want %g", got, wantCompiles)
	}
	if vals["vsimdd_compile_seconds_total"] <= 0 {
		t.Error("vsimdd_compile_seconds_total not positive after cold compiles")
	}
	if vals["vsimdd_compile_sched_seconds_total"] <= 0 {
		t.Error("vsimdd_compile_sched_seconds_total not positive after cold compiles")
	}
	if vals["vsimdd_compile_sched_seconds_total"] > vals["vsimdd_compile_seconds_total"] {
		t.Error("scheduling share exceeds total compile seconds")
	}
	if vals["vsimdd_compiled_ops_total"] <= 0 {
		t.Error("vsimdd_compiled_ops_total not positive after cold compiles")
	}

	// Warm pass: identical requests are result-cache hits serving results
	// deep-equal to the cold pass, with no further compiles.
	for i, a := range all {
		req := &RunRequest{App: a.Name, Config: "Vector2-2w", Memory: "realistic"}
		var resp RunResponse
		if code := post(t, url+"/v1/run", req, &resp); code != http.StatusOK {
			t.Fatalf("warm %s: status %d", a.Name, code)
		}
		if resp.Cache != "result-hit" {
			t.Errorf("warm %s: cache outcome %q, want \"result-hit\"", a.Name, resp.Cache)
		}
		if !reflect.DeepEqual(resp.Stats, cold[i].Stats) {
			t.Errorf("warm %s: result differs from cold-pass baseline", a.Name)
		}
		if !reflect.DeepEqual(resp.StallsByOpcode, cold[i].StallsByOpcode) {
			t.Errorf("warm %s: stalls_by_opcode differs from cold-pass baseline", a.Name)
		}
	}
	after := scrapeMetrics(t, url)
	if got := after["vsimdd_compiles_total"]; got != wantCompiles {
		t.Errorf("vsimdd_compiles_total = %g after warm pass, want %g (warm requests must not compile)", got, wantCompiles)
	}
}
