package server

import (
	"fmt"
	"strings"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
)

// The lookup helpers resolve the user-facing names of the evaluation
// matrix's three axes and, on failure, return an error naming every valid
// value — the API maps these to 400s, and the CLIs (vsimdsim, vsimdload)
// share them so flag typos produce the same actionable message instead of
// a bare "unknown name".

// AppNames returns the benchmark application names in the paper's order.
func AppNames() []string {
	all := apps.All()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name
	}
	return out
}

// ConfigNames returns the machine configuration names in Table 2 order.
func ConfigNames() []string {
	all := machine.All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Name
	}
	return out
}

// MemoryNames returns the memory model names in the paper's order: the
// default two-model axis of sweeps.
func MemoryNames() []string {
	out := make([]string, len(core.Models))
	for i, m := range core.Models {
		out[i] = m.String()
	}
	return out
}

// AllMemoryNames returns every served memory model name: the paper's two
// plus the opt-in L2 organizations (realistic:interleaved and friends).
func AllMemoryNames() []string {
	out := make([]string, len(core.AllModels))
	for i, m := range core.AllModels {
		out[i] = m.String()
	}
	return out
}

// LookupApp resolves an application by name.
func LookupApp(name string) (*apps.App, error) {
	if a, err := apps.ByName(name); err == nil {
		return a, nil
	}
	return nil, fmt.Errorf("unknown application %q (valid: %s)",
		name, strings.Join(AppNames(), ", "))
}

// LookupConfig resolves a machine configuration by name.
func LookupConfig(name string) (*machine.Config, error) {
	if c := machine.ByName(name); c != nil {
		return c, nil
	}
	return nil, fmt.Errorf("unknown configuration %q (valid: %s)",
		name, strings.Join(ConfigNames(), ", "))
}

// LookupMemory resolves a memory model by name — the paper's two models
// or one of the L2 organizations. The empty string defaults to the
// realistic hierarchy, matching the CLIs. The error enumerates the full
// valid-value list, matching LookupApp/LookupConfig.
func LookupMemory(name string) (core.MemoryModel, error) {
	if name == "" {
		return core.Realistic, nil
	}
	for _, m := range core.AllModels {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown memory model %q (valid: %s)",
		name, strings.Join(AllMemoryNames(), ", "))
}
