package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"vsimdvliw/internal/sim"
)

// TestResultCacheCoalescing is the coalescing acceptance check, run under
// the race detector by `make race`: N concurrent identical requests must
// trigger exactly one simulation — every other request coalesces onto it
// (or finds the finished entry) and is served as a result-hit with the
// bit-identical result.
func TestResultCacheCoalescing(t *testing.T) {
	srv, url := startServer(t, Config{Workers: 4})
	const n = 12
	req := RunRequest{App: "mpeg2_enc", Config: "Vector2-4w", Memory: "realistic"}

	bodies := make([][]byte, n)
	labels := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp RunResponse
			if code := post(t, url+"/v1/run", &req, &resp); code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
				return
			}
			labels[i] = resp.Cache
			b, err := json.Marshal(resp.Stats)
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i] = b
		}()
	}
	wg.Wait()

	if sims := srv.met.runsTotal.Load(); sims != 1 {
		t.Fatalf("%d simulations for %d identical concurrent requests, want exactly 1", sims, n)
	}
	hits, misses, _ := srv.ResultMetrics()
	if misses != 1 || hits != n-1 {
		t.Fatalf("result cache: hits=%d misses=%d, want %d result-hits and 1 miss", hits, misses, n-1)
	}
	nHitLabels := 0
	for i, l := range labels {
		if l == resultHitLabel {
			nHitLabels++
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d served a different result than request 0", i)
		}
	}
	if nHitLabels != n-1 {
		t.Fatalf("%d responses labeled %q, want %d", nHitLabels, resultHitLabel, n-1)
	}
	if served := srv.met.servedTotal.Load(); served != n {
		t.Fatalf("served_total = %d, want %d (every logical serve counts)", served, n)
	}
}

// TestETagRoundTrip checks the revalidation path: a run response carries
// an ETag derived from the request fingerprint, a repeat with
// If-None-Match answers 304 with no body, and a different cell (or a
// stale validator) still gets the full 200.
func TestETagRoundTrip(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})
	body, _ := json.Marshal(&RunRequest{App: "gsm_dec", Config: "Vector2-2w"})

	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("run response carries no ETag")
	}

	revalidate := func(inm string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, url+"/v1/run", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp = revalidate(etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, want 304", resp.StatusCode)
	}
	if b, _ := io.ReadAll(resp.Body); len(b) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(b))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}

	if resp = revalidate(`"0000000000000000"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: status %d, want 200", resp.StatusCode)
	}

	// The ETag is a function of the resolved fingerprint: a vl-capped
	// variant of the same cell must validate differently.
	capped, _ := json.Marshal(&RunRequest{App: "gsm_dec", Config: "Vector2-2w", VL: 2})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/run", bytes.NewReader(capped))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("If-None-Match", etag)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("vl-capped request with the uncapped ETag: status %d, want 200", r2.StatusCode)
	}
	if r2.Header.Get("ETag") == etag {
		t.Fatal("vl-capped request produced the same ETag as the uncapped cell")
	}
}

// TestResultHitMatchesFreshRun is the differential acceptance check: for
// every cell of a reduced matrix — including vl-capped requests — the
// result served from the cache must be reflect.DeepEqual to a fresh
// bypassed run of the same cell.
func TestResultHitMatchesFreshRun(t *testing.T) {
	srv := New(Config{Workers: 4})
	t.Cleanup(srv.pool.close)
	ctx := context.Background()

	var reqs []RunRequest
	for _, a := range []string{"gsm_dec", "jpeg_enc"} {
		for _, c := range []string{"VLIW-2w", "uSIMD-2w", "Vector2-2w"} {
			for _, mm := range []string{"perfect", "realistic"} {
				reqs = append(reqs, RunRequest{App: a, Config: c, Memory: mm})
			}
		}
	}
	// SLAP-style per-request VL caps must land in distinct fingerprints
	// and stay differentially identical too.
	reqs = append(reqs,
		RunRequest{App: "gsm_dec", Config: "Vector2-2w", VL: 2},
		RunRequest{App: "gsm_dec", Config: "Vector2-2w", VL: 7},
		RunRequest{App: "jpeg_enc", Config: "Vector2-2w", VL: 4},
	)

	for _, req := range reqs {
		spec, err := req.resolve()
		if err != nil {
			t.Fatal(err)
		}
		if miss := srv.serveCell(ctx, spec, true); miss.err != nil {
			t.Fatalf("%s/%s vl=%d: populate: %v", req.App, req.Config, req.VL, miss.err)
		}
		hit := srv.serveCell(ctx, spec, true)
		if hit.err != nil {
			t.Fatalf("%s/%s vl=%d: hit: %v", req.App, req.Config, req.VL, hit.err)
		}
		if hit.cache != resultHitLabel {
			t.Fatalf("%s/%s vl=%d: second serve labeled %q, want %q",
				req.App, req.Config, req.VL, hit.cache, resultHitLabel)
		}

		freshReq := req
		freshReq.Fresh = true
		freshSpec, err := freshReq.resolve()
		if err != nil {
			t.Fatal(err)
		}
		fresh := srv.serveCell(ctx, freshSpec, true)
		if fresh.err != nil {
			t.Fatalf("%s/%s vl=%d: fresh: %v", req.App, req.Config, req.VL, fresh.err)
		}
		if fresh.cache == resultHitLabel {
			t.Fatalf("%s/%s vl=%d: fresh run was served from the result cache", req.App, req.Config, req.VL)
		}
		if hit.res == fresh.res {
			t.Fatal("fresh run returned the cached result pointer — the comparison is vacuous")
		}
		if !reflect.DeepEqual(hit.res, fresh.res) {
			t.Errorf("%s/%s vl=%d: cached result differs from a fresh run", req.App, req.Config, req.VL)
		}
	}
}

// TestWarmupServesHitsFirstRequest warms a sub-matrix and checks the
// first client request is already a result-hit — no simulation runs
// after warmup on a warmed cell.
func TestWarmupServesHitsFirstRequest(t *testing.T) {
	srv, url := startServer(t, Config{Workers: 4})
	warmed, err := srv.WarmupSweep(context.Background(), &SweepRequest{
		Apps:    []string{"gsm_dec"},
		Configs: []string{"VLIW-2w", "Vector2-2w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 4 {
		t.Fatalf("warmed %d cells, want 4", warmed)
	}
	simsAfterWarmup := srv.met.runsTotal.Load()

	var resp RunResponse
	if code := post(t, url+"/v1/run", &RunRequest{App: "gsm_dec", Config: "Vector2-2w"}, &resp); code != http.StatusOK {
		t.Fatalf("first request: status %d", code)
	}
	if resp.Cache != resultHitLabel {
		t.Fatalf("first request after warmup: cache label %q, want %q", resp.Cache, resultHitLabel)
	}
	if got := srv.met.runsTotal.Load(); got != simsAfterWarmup {
		t.Fatalf("first request simulated (runsTotal %d -> %d) despite warmup", simsAfterWarmup, got)
	}
}

// TestSweepCellKeepsPartial pins the satellite bugfix: a canceled sweep
// cell must carry the partial result its typed cancellation holds — the
// same payload a single-run 504 returns — and the partial must uphold
// the exact-sum stall invariant.
func TestSweepCellKeepsPartial(t *testing.T) {
	// Build a genuine partial-shaped result via a real (completed) run:
	// completed results satisfy the same invariant the simulator
	// guarantees for partials.
	srv := New(Config{Workers: 1})
	t.Cleanup(srv.pool.close)
	req := RunRequest{App: "gsm_dec", Config: "VLIW-2w"}
	spec, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	out := srv.serveCell(context.Background(), spec, true)
	if out.err != nil {
		t.Fatal(out.err)
	}
	partial := out.res

	cell := sweepCell(spec, &runResult{
		err: &sim.CanceledError{Cause: context.DeadlineExceeded, Partial: partial},
	})
	if !cell.Canceled {
		t.Fatal("canceled cell not marked canceled")
	}
	if cell.Partial == nil {
		t.Fatal("canceled sweep cell dropped the partial result")
	}
	if cell.Partial.Stalls.Total() != cell.Partial.StallCycles {
		t.Fatalf("partial stall breakdown %d != stall cycles %d",
			cell.Partial.Stalls.Total(), cell.Partial.StallCycles)
	}
	if cell.Stats != nil {
		t.Fatal("canceled cell also carries Stats")
	}

	// A non-canceled failure carries neither Canceled nor Partial.
	plain := sweepCell(spec, &runResult{err: errors.New("boom")})
	if plain.Canceled || plain.Partial != nil {
		t.Fatalf("plain error produced canceled=%v partial=%v", plain.Canceled, plain.Partial)
	}
}

// TestSweepDeadlinePartialInvariant drives the e2e path: a sweep whose
// deadline expires mid-run answers 504 with canceled cells, and every
// cell that got far enough to carry a partial upholds the exact-sum
// invariant on the wire.
func TestSweepDeadlinePartialInvariant(t *testing.T) {
	_, url := startServer(t, Config{Workers: 1, CheckCycles: 1000})
	req := SweepRequest{
		Apps:      []string{"mpeg2_enc"},
		Configs:   []string{"Vector2-4w", "Vector2-2w"},
		Memories:  []string{"realistic"},
		TimeoutMS: 1,
		Fresh:     true,
	}
	var resp SweepResponse
	if code := post(t, url+"/v1/sweep", &req, &resp); code != http.StatusGatewayTimeout {
		t.Fatalf("deadline sweep: status %d, want 504", code)
	}
	canceled := 0
	for _, cell := range resp.Cells {
		if !cell.Canceled {
			continue
		}
		canceled++
		if cell.Partial != nil && cell.Partial.Stalls.Total() != cell.Partial.StallCycles {
			t.Fatalf("cell %s/%s partial breakdown %d != stall cycles %d",
				cell.App, cell.Config, cell.Partial.Stalls.Total(), cell.Partial.StallCycles)
		}
	}
	if canceled == 0 {
		t.Fatal("no sweep cell was canceled under a 1ms deadline")
	}
}

// failingWriter is an http.ResponseWriter whose body writes fail after
// the status line — the mid-body encode-failure scenario.
type failingWriter struct {
	header http.Header
	code   int
	err    error
}

func (f *failingWriter) Header() http.Header { return f.header }
func (f *failingWriter) WriteHeader(c int)   { f.code = c }
func (f *failingWriter) Write([]byte) (int, error) {
	return 0, f.err
}

// TestWriteJSONCountsSentStatus pins the satellite bugfix: when the JSON
// body fails to encode after the status line went out, the per-endpoint
// request counter must record the status the client actually received —
// not a fabricated 500 — and the failure lands in its own counter.
func TestWriteJSONCountsSentStatus(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(s.pool.close)

	fw := &failingWriter{header: http.Header{}, err: errors.New("disk full")}
	s.writeJSON(fw, "run", http.StatusOK, map[string]int{"x": 1})
	if fw.code != http.StatusOK {
		t.Fatalf("status line = %d, want 200", fw.code)
	}
	s.met.mu.Lock()
	got200 := s.met.requests[reqKey{"run", http.StatusOK}]
	got500 := s.met.requests[reqKey{"run", http.StatusInternalServerError}]
	s.met.mu.Unlock()
	if got200 != 1 {
		t.Fatalf("requests{run,200} = %d, want 1 (the status actually sent)", got200)
	}
	if got500 != 0 {
		t.Fatalf("requests{run,500} = %d, want 0 — the client never saw a 500", got500)
	}
	if got := s.met.encodeFailures.Load(); got != 1 {
		t.Fatalf("encodeFailures = %d, want 1", got)
	}

	// A client disconnect is not an encode failure.
	fw2 := &failingWriter{header: http.Header{}, err: errors.New("write tcp: broken pipe")}
	s.writeJSON(fw2, "run", http.StatusOK, map[string]int{"x": 1})
	if got := s.met.encodeFailures.Load(); got != 1 {
		t.Fatalf("encodeFailures = %d after client disconnect, want still 1", got)
	}
}

// TestResultCacheEviction exercises the LRU: a one-slot cache keeps only
// the most recent fingerprint, and completing with an error removes the
// entry so the next identical request retries.
func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(1, 1)
	a, leaderA := c.acquire("a")
	if !leaderA {
		t.Fatal("first acquire of a is not the leader")
	}
	c.complete(a, &sim.Result{Cycles: 1}, nil)
	if e, leader := c.acquire("a"); leader || e != a {
		t.Fatal("completed entry not served back")
	}
	// b evicts a.
	b, leaderB := c.acquire("b")
	if !leaderB {
		t.Fatal("first acquire of b is not the leader")
	}
	c.complete(b, &sim.Result{Cycles: 2}, nil)
	if c.len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.len())
	}
	if _, leader := c.acquire("a"); !leader {
		t.Fatal("evicted key did not re-acquire as leader")
	}

	// Errors are not cached.
	d, _ := c.acquire("d")
	c.complete(d, nil, errors.New("boom"))
	select {
	case <-d.done:
	default:
		t.Fatal("complete did not close done")
	}
	if _, leader := c.acquire("d"); !leader {
		t.Fatal("failed entry stayed cached")
	}
}

// TestEtagMatch covers the header forms the validator accepts.
func TestEtagMatch(t *testing.T) {
	etag := etagFor("x")
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{etag, true},
		{"*", true},
		{`"deadbeef", ` + etag, true},
		{"W/" + etag, true},
		{`"deadbeef"`, false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, etag); got != c.want {
			t.Errorf("etagMatch(%q) = %v, want %v", c.header, got, c.want)
		}
	}
	if etagFor("x") != etagFor("x") || etagFor("x") == etagFor("y") {
		t.Fatal("etagFor is not a stable pure function")
	}
}
