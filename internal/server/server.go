// Package server turns the Vector-µSIMD-VLIW evaluation stack into a
// long-running service: a JSON HTTP API over the compiled-program cache
// and a result cache with request coalescing (the simulator is
// deterministic, so identical requests serve a cached result in
// microseconds with an ETag/If-None-Match revalidation path), an
// admission-controlled worker pool, per-request deadlines plumbed into
// the cycle loop, and Prometheus metrics. cmd/vsimdd is the daemon
// wrapping it; cmd/vsimdload is the load generator driving it.
//
// Endpoints:
//
//	POST /v1/run     one app × config × memory cell, optional VL/lane/issue
//	                 overrides ("vl" also accepts "auto") and a per-request
//	                 deadline
//	POST /v1/sweep   a batched sub-matrix in canonical cell order
//	POST /v1/vlsweep a batched vector-length sweep: cells are deduplicated
//	                 and grouped so each program compiles once and is
//	                 simulated once per distinct VL cap
//	GET  /healthz    liveness
//	GET  /metrics    Prometheus text format (server counters plus exact-sum
//	                 aggregates of every served run and the autotune tables)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sim"
	"vsimdvliw/internal/sweep"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of simulation workers (default: NumCPU).
	Workers int
	// QueueDepth is the admission queue bound; a full queue sheds new
	// requests with 429 (default: 4 × Workers).
	QueueDepth int
	// CacheCapacity bounds the compiled-program LRU (default: 256).
	CacheCapacity int
	// CacheShards is the cache's shard count (default: 16).
	CacheShards int
	// ResultCacheCapacity bounds the result LRU (default: 4096). The
	// simulator is deterministic, so cached results serve identical
	// requests without re-entering the cycle loop.
	ResultCacheCapacity int
	// DisableResultCache turns result caching (and request coalescing)
	// off; every request simulates.
	DisableResultCache bool
	// CheckCycles is the cancellation-poll interval in simulated cycles
	// (default: sim.DefaultCheckCycles).
	CheckCycles int64
	// MaxBodyBytes bounds request bodies (default: 1 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 256
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.ResultCacheCapacity <= 0 {
		c.ResultCacheCapacity = 4096
	}
	if c.CheckCycles <= 0 {
		c.CheckCycles = sim.DefaultCheckCycles
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the simulation service.
type Server struct {
	cfg     Config
	cache   *progCache
	results *resultCache // nil when disabled
	pool    *workerPool
	met     *serverMetrics
	tuner   *autotune
	hs      *http.Server

	mu       sync.Mutex
	listener net.Listener
	serveErr chan error
}

// New builds a Server (not yet listening).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newProgCache(cfg.CacheCapacity, cfg.CacheShards),
		pool:  newWorkerPool(cfg.Workers, cfg.QueueDepth),
		met:   newServerMetrics(),
		tuner: newAutotune(),
	}
	s.cache.onCompile = s.met.compile
	if !cfg.DisableResultCache {
		s.results = newResultCache(cfg.ResultCacheCapacity, cfg.CacheShards)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/vlsweep", s.handleVLSweep)
	s.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler exposes the API mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.hs.Handler }

// Metrics returns a snapshot of the operational counters most callers
// need programmatically.
func (s *Server) Metrics() (cacheHits, cacheMisses, shed int64) {
	return s.met.cacheHits.Load(), s.met.cacheMisses.Load(), s.met.shed.Load()
}

// ResultMetrics returns the result-cache counters: hits (serves without
// a simulation, coalesced included), misses (requests that led their
// cell's simulation) and the coalesced subset of hits.
func (s *Server) ResultMetrics() (hits, misses, coalesced int64) {
	return s.met.resultHits.Load(), s.met.resultMisses.Load(), s.met.resultCoalesced.Load()
}

// Start listens on addr (":0" picks a random port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.serveErr = make(chan error, 1)
	s.mu.Unlock()
	go func() { s.serveErr <- s.hs.Serve(l) }()
	return l.Addr().String(), nil
}

// Serve serves on the given listener until Shutdown (blocking).
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops the server: it stops accepting connections,
// waits (up to ctx) for in-flight requests — and therefore in-flight
// simulations — to drain, then stops the worker pool.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	s.pool.close()
	s.mu.Lock()
	ch := s.serveErr
	s.mu.Unlock()
	if ch != nil {
		if serr := <-ch; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
	}
	return err
}

// runResult is the outcome of serving one cell; for pool-executed cells
// the submitting handler reads it only after the job's done channel
// closes.
type runResult struct {
	res *sim.Result
	// cache is the response's "cache" label: resultHitLabel for a
	// result-cache serve, otherwise the compiled-program cache outcome.
	cache   string
	queueMS float64
	runMS   float64
	err     error
}

// execute admits one resolved cell onto the worker pool and waits for it
// (or for ctx). Cancellation while queued answers immediately with the
// typed error; the worker skips the stale job.
func (s *Server) execute(ctx context.Context, spec *runSpec, block bool) *runResult {
	out := &runResult{}
	submitted := time.Now()
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.do = func(ctx context.Context) {
		start := time.Now()
		out.queueMS = float64(start.Sub(submitted)) / float64(time.Millisecond)
		if err := ctx.Err(); err != nil {
			// Deadline expired while queued: the submitter has already
			// answered with the typed cancellation; don't wedge a worker
			// on dead work.
			s.met.runsCanceled.Add(1)
			out.err = &sim.CanceledError{Cause: err}
			return
		}
		prog, outcome, err := s.cache.get(spec.app, spec.cfg)
		out.cache = cacheLabel(outcome)
		switch outcome {
		case progHit:
			s.met.cacheHits.Add(1)
		case progWait:
			s.met.cacheWaits.Add(1)
		default:
			s.met.cacheMisses.Add(1)
		}
		if err != nil {
			s.met.runsFailed.Add(1)
			out.err = err
			return
		}
		res, err := prog.RunOpts(spec.mem, core.RunOptions{
			Context:     ctx,
			CheckCycles: s.cfg.CheckCycles,
			VLCap:       spec.vlCap,
		})
		elapsed := time.Since(start)
		out.runMS = float64(elapsed) / float64(time.Millisecond)
		if err != nil {
			var ce *sim.CanceledError
			if errors.As(err, &ce) {
				s.met.runsCanceled.Add(1)
				s.met.servedRun(ce.Partial, elapsed)
			} else {
				s.met.runsFailed.Add(1)
			}
			out.err = err
			return
		}
		s.met.servedRun(res, elapsed)
		out.res = res
	}
	var err error
	if block {
		err = s.pool.submitWait(ctx, j)
	} else {
		err = s.pool.submit(j)
	}
	if err != nil {
		if errors.Is(err, errQueueFull) {
			s.met.shed.Add(1)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			err = &sim.CanceledError{Cause: err}
		}
		return &runResult{err: err}
	}
	select {
	case <-j.done:
		return out
	case <-ctx.Done():
		// The job may still be queued or just starting; never touch out
		// again — the worker owns it (and does the cancellation
		// accounting when it pops the job). Answer with the typed error.
		return &runResult{err: &sim.CanceledError{Cause: ctx.Err()}}
	}
}

// serveCell serves one resolved cell through the result cache. The first
// request for a fingerprint (the leader) simulates on the worker pool and
// publishes the result; identical requests arriving while it runs
// coalesce onto the same entry — one simulation, N−1 result-hits —
// instead of queueing N copies behind the pool, and later identical
// requests serve the cached result in microseconds. Failed or canceled
// leaders don't poison the cache: waiters retry (one may become the new
// leader) and fall back to an uncached run.
func (s *Server) serveCell(ctx context.Context, spec *runSpec, block bool) *runResult {
	if s.results == nil || spec.fresh {
		return s.execute(ctx, spec, block)
	}
	key := spec.fingerprint()
	for attempt := 0; attempt < 2; attempt++ {
		e, leader := s.results.acquire(key)
		if leader {
			s.met.resultMisses.Add(1)
			out := s.execute(ctx, spec, block)
			s.results.complete(e, out.res, out.err)
			return out
		}
		coalesced := false
		select {
		case <-e.done:
		default:
			coalesced = true
			select {
			case <-e.done:
			case <-ctx.Done():
				// The waiter's own deadline expired; the leader keeps
				// running for everyone else.
				return &runResult{err: &sim.CanceledError{Cause: ctx.Err()}}
			}
		}
		if e.err == nil {
			s.met.resultHits.Add(1)
			if coalesced {
				s.met.resultCoalesced.Add(1)
			}
			s.met.servedHit(e.res)
			return &runResult{res: e.res, cache: resultHitLabel}
		}
		// The leader failed (error or its deadline fired) and removed the
		// entry; loop once — this waiter may now become the leader.
	}
	return s.execute(ctx, spec, block)
}

// Warmup pre-simulates every cell of the canonical evaluation matrix
// (all apps × all configurations × both memory models) through the
// result cache, so a fresh daemon serves result-hits from its first
// request. It returns the number of cells warmed and the first error.
func (s *Server) Warmup(ctx context.Context) (int, error) {
	return s.WarmupSweep(ctx, &SweepRequest{})
}

// WarmupSweep warms the sub-matrix a SweepRequest selects (empty axes
// default to the full axis), fanning cells out on the worker pool with
// blocking admission.
func (s *Server) WarmupSweep(ctx context.Context, req *SweepRequest) (int, error) {
	specs, err := req.resolveSweep()
	if err != nil {
		return 0, err
	}
	outs := make([]*runResult, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i] = s.serveCell(ctx, spec, true)
		}()
	}
	wg.Wait()
	n := 0
	var first error
	for _, out := range outs {
		if out.err == nil {
			n++
		} else if first == nil {
			first = out.err
		}
	}
	return n, first
}

// requestContext applies the request deadline, if any.
func requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMS > 0 {
		return context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
	}
	return ctx, func() {}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decode(w, r, "run", &req) {
		return
	}
	spec, err := req.resolve()
	if err != nil {
		s.writeError(w, "run", http.StatusBadRequest, err)
		return
	}
	vlSource := ""
	if spec.vlAuto {
		// Resolve "auto" against the recorded history: the VL with the
		// fewest cycles for this exact (app, config hash, memory) cell, or
		// the default uncapped VL before any history exists.
		if vl, ok := s.tuner.best(spec.app.Name, spec.cfg, spec.mem); ok {
			spec.vlCap = vl
			vlSource = "auto:history"
			s.tuner.picksHistory.Add(1)
		} else {
			vlSource = "auto:default"
			s.tuner.picksDefault.Add(1)
		}
	}
	ctx, cancel := requestContext(r, req.TimeoutMS)
	defer cancel()
	out := s.serveCell(ctx, spec, false)
	if out.err != nil {
		s.writeRunError(w, "run", out.err)
		return
	}
	s.tuner.record(spec.app.Name, spec.cfg, spec.mem, spec.vlCap, out.res.Cycles)
	// The ETag is a pure function of the resolved fingerprint: the
	// simulator is deterministic, so a matching If-None-Match guarantees
	// the client's representation is current. The result is still
	// obtained first (a hit after warmup — microseconds) so every logical
	// serve, including a 304, folds into the served aggregates.
	etag := etagFor(spec.fingerprint())
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.writeNotModified(w, "run")
		return
	}
	s.writeJSON(w, "run", http.StatusOK, &RunResponse{
		CellMetrics: report.CellMetrics{
			App: spec.app.Name, Config: spec.cfg.Name, ISA: spec.cfg.ISA.String(),
			Issue: spec.cfg.Issue, Memory: spec.mem.String(),
			Stats:          out.res,
			StallsByOpcode: out.res.StallsByOpcode(),
		},
		Cache:    out.cache,
		VL:       spec.vlCap,
		VLSource: vlSource,
		QueueMS:  out.queueMS,
		RunMS:    out.runMS,
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, "sweep", &req) {
		return
	}
	specs, err := req.resolveSweep()
	if err != nil {
		s.writeError(w, "sweep", http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMS)
	defer cancel()

	// Fan the cells out on the worker pool. Sweep cells use blocking
	// admission (the batch as a whole was admitted; its cells queue as
	// workers free up) so a sub-matrix larger than the queue bound still
	// completes instead of shedding against itself.
	outs := make([]*runResult, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i] = s.serveCell(ctx, spec, true)
		}()
	}
	wg.Wait()

	resp := &SweepResponse{Cells: make([]SweepCell, len(specs))}
	for i, spec := range specs {
		cell := sweepCell(spec, outs[i])
		if cell.Error != "" {
			resp.Errors++
		}
		resp.Cells[i] = cell
	}
	code := http.StatusOK
	if resp.Errors == len(resp.Cells) && len(resp.Cells) > 0 {
		// Nothing succeeded: surface the failure mode as the status.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		} else {
			code = http.StatusInternalServerError
		}
	}
	// The sweep ETag fingerprints the whole resolved cell list, in
	// order; like /v1/run it only validates successful responses.
	if code == http.StatusOK {
		fps := make([]string, len(specs))
		for i, spec := range specs {
			fps[i] = spec.fingerprint()
		}
		etag := etagFor(strings.Join(fps, "\n"))
		w.Header().Set("ETag", etag)
		if etagMatch(r.Header.Get("If-None-Match"), etag) {
			s.writeNotModified(w, "sweep")
			return
		}
	}
	s.writeJSON(w, "sweep", code, resp)
}

// sweepRunKey is the result-cache fingerprint of a sweep run; it matches
// runSpec.fingerprint exactly (the run's VL is already canonical), so
// /v1/run and /v1/vlsweep share one cache population.
func sweepRunKey(r *sweep.Run) string {
	return fmt.Sprintf("%s|%d|%s|%s|vl%d", r.App.Name, r.Variant, configKey(r.Cfg), r.Mem, r.VL)
}

// sweepExecConfig wires a plan execution into the server: the shared
// compiled-program cache, the worker pool (one submission per group — the
// pool's unit of admission is a whole compile-once group), non-blocking
// result-cache traffic, and the metric/autotune feeds.
func (s *Server) sweepExecConfig(ctx context.Context, fresh bool) sweep.ExecConfig {
	ec := sweep.ExecConfig{
		Context:     ctx,
		CheckCycles: s.cfg.CheckCycles,
		Compile: func(ctx context.Context, g *sweep.Group) (*core.Program, string, error) {
			prog, outcome, err := s.cache.get(g.App, g.Cfg)
			switch outcome {
			case progHit:
				s.met.cacheHits.Add(1)
			case progWait:
				s.met.cacheWaits.Add(1)
			default:
				s.met.cacheMisses.Add(1)
			}
			return prog, cacheLabel(outcome), err
		},
		Submit: func(ctx context.Context, work func(ctx context.Context)) error {
			j := &job{ctx: ctx, do: work, done: make(chan struct{})}
			if err := s.pool.submitWait(ctx, j); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					err = &sim.CanceledError{Cause: err}
				}
				return err
			}
			// Wait for the worker unconditionally: the group function bails
			// out quickly on a dead context, and returning early would race
			// the response builder against the worker's writes.
			<-j.done
			return nil
		},
		OnRun: func(r *sweep.Run, res *sim.Result, err error, elapsed time.Duration) {
			if s.results != nil && !fresh {
				s.met.resultMisses.Add(1)
			}
			if err != nil {
				var ce *sim.CanceledError
				if errors.As(err, &ce) {
					s.met.runsCanceled.Add(1)
					s.met.servedRun(ce.Partial, elapsed)
				} else {
					s.met.runsFailed.Add(1)
				}
				return
			}
			s.met.servedRun(res, elapsed)
			s.tuner.record(r.App.Name, r.Cfg, r.Mem, r.VL, res.Cycles)
		},
	}
	if s.results != nil && !fresh {
		ec.Key = sweepRunKey
		ec.Peek = s.results.peek
		ec.Publish = s.results.publish
	}
	return ec
}

func (s *Server) handleVLSweep(w http.ResponseWriter, r *http.Request) {
	var req VLSweepRequest
	if !s.decode(w, r, "vlsweep", &req) {
		return
	}
	appList, cfgs, mems, vls, err := req.resolveVLSweep()
	if err != nil {
		s.writeError(w, "vlsweep", http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMS)
	defer cancel()

	plan := sweep.New(appList, cfgs, mems, vls)
	out := plan.Execute(s.sweepExecConfig(ctx, req.Fresh))

	resp := &VLSweepResponse{Cells: make([]VLSweepCell, len(plan.Cells))}
	for ri := range plan.Runs {
		switch out.Results[ri].Source {
		case sweep.SourceRun:
			resp.Runs++
		case sweep.SourceCached:
			resp.ResultHits++
		case sweep.SourceAlias:
			resp.Aliased++
		}
	}
	// Cells stay in canonical request order. The first cell consuming a
	// simulated run carries the run's compile label (its servedRun
	// accounting already happened in OnRun); every other successful cell is
	// a logical serve without simulation and folds as a hit.
	consumed := make(map[int]bool, len(plan.Runs))
	for i := range plan.Cells {
		c := &plan.Cells[i]
		oc := &out.Results[c.Run]
		cell := VLSweepCell{App: c.App.Name, Config: c.Cfg.Name, Memory: c.Mem.String(), VL: c.VL}
		if oc.Err != nil {
			cell.Error = oc.Err.Error()
			var ce *sim.CanceledError
			if errors.As(oc.Err, &ce) {
				cell.Canceled = true
				cell.Partial = ce.Partial
			}
			resp.Errors++
		} else {
			cell.Cycles, cell.StallCycles, cell.Ops = oc.Res.Cycles, oc.Res.StallCycles, oc.Res.Ops
			if req.Stats {
				cell.Stats = oc.Res
			}
			if !consumed[c.Run] && oc.Source == sweep.SourceRun {
				cell.Cache = oc.CompileLabel
			} else {
				if !consumed[c.Run] {
					cell.Cache = oc.Source // "result-hit" or "alias"
				} else {
					cell.Cache = sweep.SourceAlias // duplicate spelling of a served run
				}
				s.met.servedHit(oc.Res)
				s.met.resultHits.Add(1)
			}
			consumed[c.Run] = true
		}
		resp.Cells[i] = cell
	}

	code := http.StatusOK
	if resp.Errors == len(resp.Cells) && len(resp.Cells) > 0 {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		} else {
			code = http.StatusInternalServerError
		}
	}
	if code == http.StatusOK && resp.Errors == 0 {
		// Like /v1/sweep, the ETag fingerprints the resolved run key of
		// every cell in order; it only validates fully successful sweeps.
		fps := make([]string, len(plan.Cells))
		for i := range plan.Cells {
			fps[i] = sweepRunKey(&plan.Runs[plan.Cells[i].Run])
		}
		etag := etagFor(strings.Join(fps, "\n"))
		w.Header().Set("ETag", etag)
		if etagMatch(r.Header.Get("If-None-Match"), etag) {
			s.writeNotModified(w, "vlsweep")
			return
		}
	}
	s.writeJSON(w, "vlsweep", code, resp)
}

// WarmupVL pre-simulates the full evaluation matrix across the given VL
// caps through the sweep engine, populating the result cache and the
// autotune tables so `"vl":"auto"` requests answer from history
// immediately. It returns the number of unique runs resolved and the
// first error.
func (s *Server) WarmupVL(ctx context.Context, vls []int) (int, error) {
	req := &VLSweepRequest{VLs: vls}
	appList, cfgs, mems, rvls, err := req.resolveVLSweep()
	if err != nil {
		return 0, err
	}
	plan := sweep.New(appList, cfgs, mems, rvls)
	out := plan.Execute(s.sweepExecConfig(ctx, false))
	n := 0
	var first error
	for i := range out.Results {
		if out.Results[i].Err == nil {
			n++
		} else if first == nil {
			first = out.Results[i].Err
		}
	}
	return n, first
}

// sweepCell maps one cell's outcome onto the wire shape. Canceled cells
// keep the partial result the typed cancellation carries — the same
// payload a single-run 504 returns — instead of dropping it.
func sweepCell(spec *runSpec, out *runResult) SweepCell {
	cell := SweepCell{App: spec.app.Name, Config: spec.cfg.Name, Memory: spec.mem.String()}
	switch {
	case out.err != nil:
		cell.Error = out.err.Error()
		var ce *sim.CanceledError
		if errors.As(out.err, &ce) {
			cell.Canceled = true
			cell.Partial = ce.Partial
		}
	default:
		cell.Stats = out.res
		cell.Cache = out.cache
	}
	return cell
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "healthz", http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.met.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	resultLen := 0
	if s.results != nil {
		resultLen = s.results.len()
	}
	s.met.writePrometheus(w, s.cache.len(), resultLen, s.pool.depth(), s.pool.inflight.Load())
	s.tuner.writePrometheus(w)
	s.met.request("metrics", http.StatusOK)
}

// decode parses a JSON body, rejecting unknown fields; on failure it has
// already written the 400.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, endpoint string, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// writeRunError maps an execution error onto the right status code.
func (s *Server) writeRunError(w http.ResponseWriter, endpoint string, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, endpoint, http.StatusTooManyRequests, err)
	case errors.Is(err, errDraining):
		s.writeError(w, endpoint, http.StatusServiceUnavailable, err)
	case errors.Is(err, sim.ErrCanceled):
		var ce *sim.CanceledError
		resp := &ErrorResponse{Error: err.Error(), Canceled: true}
		if errors.As(err, &ce) {
			resp.Partial = ce.Partial
		}
		s.writeJSON(w, endpoint, http.StatusGatewayTimeout, resp)
	default:
		s.writeError(w, endpoint, http.StatusInternalServerError, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, err error) {
	s.writeJSON(w, endpoint, code, &ErrorResponse{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil && !isClientGone(err) {
		// The status line is already out — the client saw code, not a
		// 500 — so the request counter records what was actually sent
		// and the truncated body is tracked separately.
		s.met.encodeFailures.Add(1)
	}
	s.met.request(endpoint, code)
}

// writeNotModified answers an If-None-Match revalidation: no body, but
// the exchange is still counted per endpoint.
func (s *Server) writeNotModified(w http.ResponseWriter, endpoint string) {
	w.WriteHeader(http.StatusNotModified)
	s.met.request(endpoint, http.StatusNotModified)
}

// resultHitLabel is the response cache label of a result-cache serve.
const resultHitLabel = "result-hit"

// cacheLabel renders a compiled-program cache outcome for responses.
func cacheLabel(o cacheOutcome) string {
	switch o {
	case progHit:
		return "hit"
	case progWait:
		return "wait"
	default:
		return "miss"
	}
}

// isClientGone reports a write error caused by the peer disconnecting.
func isClientGone(err error) bool {
	return errors.Is(err, context.Canceled) ||
		strings.Contains(err.Error(), "broken pipe") ||
		strings.Contains(err.Error(), "connection reset")
}
