package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/sim"
)

// sameResult compares two results through their JSON wire form — the
// API's contract. (Result.OpStalls is json:"-" and is exposed separately
// as the stalls_by_opcode map, so in-memory DeepEqual would be stricter
// than what the API promises.)
func sameResult(t *testing.T, got, want *sim.Result) bool {
	t.Helper()
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(gj, wj)
}

// startServer boots a daemon on a random loopback port and tears it down
// gracefully when the test ends.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, "http://" + addr
}

// post sends a JSON body and decodes the response into out (if non-nil),
// returning the status code.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRunEndpointMatchesCollect is the bit-identity acceptance check: the
// daemon's served per-cell results must equal report.Collect's for the
// same (app, config, memory) cells.
func TestRunEndpointMatchesCollect(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})

	apps := []string{"jpeg_enc", "gsm_dec"}
	cfgs := []string{"VLIW-2w", "Vector2-2w"}
	mems := []string{"perfect", "realistic"}

	want, err := report.CollectOpts(report.Options{})
	if err != nil {
		t.Fatal(err)
	}
	memModel := map[string]core.MemoryModel{"perfect": core.Perfect, "realistic": core.Realistic}
	for _, a := range apps {
		for _, c := range cfgs {
			for _, mm := range mems {
				var got RunResponse
				code := post(t, url+"/v1/run", &RunRequest{App: a, Config: c, Memory: mm}, &got)
				if code != http.StatusOK {
					t.Fatalf("POST /v1/run %s/%s/%s: status %d", a, c, mm, code)
				}
				ref := want.Get(a, c, memModel[mm])
				if !sameResult(t, got.Stats, ref) {
					t.Errorf("cell %s/%s/%s: served result differs from report.Collect", a, c, mm)
				}
				refOps := ref.StallsByOpcode()
				if (len(got.StallsByOpcode) > 0 || len(refOps) > 0) &&
					!reflect.DeepEqual(got.StallsByOpcode, refOps) {
					t.Errorf("cell %s/%s/%s: served stalls_by_opcode differs from report.Collect", a, c, mm)
				}
			}
		}
	}
}

// TestSweepEndpointMatchesCollect checks the batched path: a sub-matrix
// sweep returns every cell in canonical order, bit-identical to Collect.
func TestSweepEndpointMatchesCollect(t *testing.T) {
	_, url := startServer(t, Config{Workers: 4, QueueDepth: 2})

	req := SweepRequest{
		Apps:     []string{"gsm_dec", "gsm_enc"},
		Configs:  []string{"VLIW-2w", "uSIMD-2w", "Vector2-2w"},
		Memories: []string{"perfect", "realistic"},
	}
	var resp SweepResponse
	if code := post(t, url+"/v1/sweep", &req, &resp); code != http.StatusOK {
		t.Fatalf("POST /v1/sweep: status %d", code)
	}
	if resp.Errors != 0 {
		t.Fatalf("sweep reported %d cell errors", resp.Errors)
	}
	wantCells := len(req.Apps) * len(req.Configs) * len(req.Memories)
	if len(resp.Cells) != wantCells {
		t.Fatalf("sweep returned %d cells, want %d", len(resp.Cells), wantCells)
	}

	want, err := report.CollectOpts(report.Options{})
	if err != nil {
		t.Fatal(err)
	}
	memModel := map[string]core.MemoryModel{"perfect": core.Perfect, "realistic": core.Realistic}
	i := 0
	for _, a := range req.Apps {
		for _, c := range req.Configs {
			for _, mm := range req.Memories {
				cell := resp.Cells[i]
				i++
				if cell.App != a || cell.Config != c || cell.Memory != mm {
					t.Fatalf("cell %d = %s/%s/%s, want canonical %s/%s/%s",
						i-1, cell.App, cell.Config, cell.Memory, a, c, mm)
				}
				if !sameResult(t, cell.Stats, want.Get(a, c, memModel[mm])) {
					t.Errorf("cell %s/%s/%s: sweep result differs from report.Collect", a, c, mm)
				}
			}
		}
	}
}

// TestCacheHitRate replays a repeated-cell workload and checks the
// compiled-program cache serves >90% of it (the acceptance threshold).
// The requests set fresh so every one reaches the simulate path — the
// result cache would otherwise absorb all repeats before the program
// cache sees them.
func TestCacheHitRate(t *testing.T) {
	srv, url := startServer(t, Config{Workers: 2})
	const n = 60
	for i := 0; i < n; i++ {
		req := DefaultWorkload()[i%3]
		req.Fresh = true
		if code := post(t, url+"/v1/run", &req, nil); code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	hits, misses, _ := srv.Metrics()
	if hits+misses != n {
		t.Fatalf("cache saw %d lookups, want %d", hits+misses, n)
	}
	if rate := float64(hits) / float64(n); rate <= 0.90 {
		t.Fatalf("cache hit rate %.2f on a repeated-cell workload, want > 0.90", rate)
	}
}

// TestResultCacheHitRate replays the same repeated-cell workload without
// fresh: after the first pass over the three distinct cells, every
// request must be a result-hit served without a simulation.
func TestResultCacheHitRate(t *testing.T) {
	srv, url := startServer(t, Config{Workers: 2})
	const n = 60
	for i := 0; i < n; i++ {
		req := DefaultWorkload()[i%3]
		var resp RunResponse
		if code := post(t, url+"/v1/run", &req, &resp); code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if i >= 3 && resp.Cache != resultHitLabel {
			t.Fatalf("request %d: cache label %q, want %q", i, resp.Cache, resultHitLabel)
		}
	}
	hits, misses, _ := srv.ResultMetrics()
	if misses != 3 {
		t.Fatalf("result-cache misses = %d, want exactly 3 (one per distinct cell)", misses)
	}
	if hits != n-3 {
		t.Fatalf("result-cache hits = %d, want %d", hits, n-3)
	}
	if got := srv.met.runsTotal.Load(); got != 3 {
		t.Fatalf("runsTotal = %d simulations for %d requests, want 3", got, n)
	}
}

// TestValidation400s checks the shared input validation: unknown names on
// any axis are rejected with 400 and the list of valid values.
func TestValidation400s(t *testing.T) {
	_, url := startServer(t, Config{Workers: 1})
	cases := []struct {
		req  RunRequest
		want string
	}{
		{RunRequest{App: "nope", Config: "VLIW-2w"}, "jpeg_enc"},
		{RunRequest{App: "gsm_dec", Config: "nope"}, "Vector2-2w"},
		{RunRequest{App: "gsm_dec", Config: "VLIW-2w", Memory: "nope"}, "realistic"},
		{RunRequest{App: "gsm_dec", Config: "VLIW-2w", VL: 99}, "out of range"},
		{RunRequest{App: "gsm_dec", Config: "VLIW-2w", Lanes: 4}, "vector configuration"},
		// The 400 messages must state the actual accepted ranges: vl 0 is
		// valid (no cap), so the range is [0, MaxVL]; lanes/issue reject
		// only negatives, with 0 meaning "no override".
		{RunRequest{App: "gsm_dec", Config: "VLIW-2w", VL: 17}, "[0, 16]"},
		{RunRequest{App: "gsm_dec", Config: "VLIW-2w", VL: 99}, "[0, 16]"},
		{RunRequest{App: "gsm_dec", Config: "Vector2-2w", Lanes: -4}, ">= 0"},
		{RunRequest{App: "gsm_dec", Config: "Vector2-2w", Lanes: -4}, "lane count"},
		{RunRequest{App: "gsm_dec", Config: "VLIW-2w", Issue: -2}, ">= 0"},
	}
	for _, c := range cases {
		var er ErrorResponse
		if code := post(t, url+"/v1/run", &c.req, &er); code != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400", c.req, code)
		}
		if !strings.Contains(er.Error, c.want) {
			t.Errorf("%+v: error %q does not mention %q", c.req, er.Error, c.want)
		}
	}
	// Unknown fields, negative VLs (only the string "auto" is a non-numeric
	// VL) and non-numeric VL strings are rejected at decode time.
	for _, body := range []string{
		`{"app":"gsm_dec","config":"VLIW-2w","bogus":1}`,
		`{"app":"gsm_dec","config":"VLIW-2w","vl":-1}`,
		`{"app":"gsm_dec","config":"VLIW-2w","vl":"automatic"}`,
	} {
		resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestOverrides checks the per-request machine overrides change timing
// through distinct compiled-program cache slots.
func TestOverrides(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})
	var base, lanes, vl RunResponse
	if code := post(t, url+"/v1/run", &RunRequest{App: "gsm_dec", Config: "Vector2-2w"}, &base); code != 200 {
		t.Fatalf("base: status %d", code)
	}
	if code := post(t, url+"/v1/run", &RunRequest{App: "gsm_dec", Config: "Vector2-2w", Lanes: 8}, &lanes); code != 200 {
		t.Fatalf("lanes: status %d", code)
	}
	if code := post(t, url+"/v1/run", &RunRequest{App: "gsm_dec", Config: "Vector2-2w", VL: 2}, &vl); code != 200 {
		t.Fatalf("vl: status %d", code)
	}
	if lanes.Config != "Vector2-2w[lanes=8]" {
		t.Errorf("lanes override config = %q", lanes.Config)
	}
	if lanes.Stats.Cycles == base.Stats.Cycles {
		t.Errorf("lanes=8 did not change timing (%d cycles)", base.Stats.Cycles)
	}
	if vl.Stats.MicroOps >= base.Stats.MicroOps {
		t.Errorf("vl=2 did not reduce micro-ops (%d vs %d)", vl.Stats.MicroOps, base.Stats.MicroOps)
	}
}

// TestDeadlineDoesNotWedgeWorker is the cancellation acceptance check: a
// request with a 1ms deadline returns the typed cancellation error and
// the (single) worker stays usable for the next request. The worker is
// held busy with a blocking job so the deadline deterministically expires
// while the request waits in the queue; the stale job is then skipped
// when the worker finally pops it.
func TestDeadlineDoesNotWedgeWorker(t *testing.T) {
	srv, url := startServer(t, Config{Workers: 1, QueueDepth: 4, CheckCycles: 1000})
	release := make(chan struct{})
	blocker := &job{ctx: context.Background(), done: make(chan struct{})}
	blocker.do = func(context.Context) { <-release }
	if err := srv.pool.submit(blocker); err != nil {
		t.Fatal(err)
	}
	for srv.pool.inflight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	var er ErrorResponse
	code := post(t, url+"/v1/run",
		&RunRequest{App: "mpeg2_enc", Config: "Vector2-4w", TimeoutMS: 1}, &er)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline request: status %d, want 504", code)
	}
	if !er.Canceled {
		t.Fatalf("deadline request not marked canceled: %+v", er)
	}
	if er.Partial != nil {
		// When the run got far enough to produce a partial snapshot, it
		// must uphold the exact-sum invariant.
		if er.Partial.Stalls.Total() != er.Partial.StallCycles {
			t.Fatalf("partial stall breakdown %d != stall cycles %d",
				er.Partial.Stalls.Total(), er.Partial.StallCycles)
		}
	}
	// Release the worker: it skips the stale deadline-expired job and
	// must be free again for a normal request.
	close(release)
	<-blocker.done
	var ok RunResponse
	if code := post(t, url+"/v1/run", &RunRequest{App: "gsm_dec", Config: "VLIW-2w"}, &ok); code != 200 {
		t.Fatalf("post-deadline request: status %d, want 200 (worker wedged?)", code)
	}
}

// TestAdmissionControlSheds deterministically saturates a 1-worker /
// 1-slot daemon (blocking jobs occupy the worker and the queue slot) and
// checks the next request is shed with 429 + Retry-After, then that
// releasing the workers restores normal 200 service.
func TestAdmissionControlSheds(t *testing.T) {
	srv, url := startServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	blocker := func() *job {
		j := &job{ctx: context.Background(), done: make(chan struct{})}
		j.do = func(context.Context) { <-release }
		return j
	}
	// Occupy the single worker...
	first := blocker()
	if err := srv.pool.submit(first); err != nil {
		t.Fatal(err)
	}
	for srv.pool.inflight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...and the single queue slot.
	second := blocker()
	if err := srv.pool.submit(second); err != nil {
		t.Fatal(err)
	}

	b, _ := json.Marshal(&RunRequest{App: "gsm_dec", Config: "VLIW-2w"})
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated daemon answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if _, _, shed := srv.Metrics(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}

	// Release the pool; service resumes.
	close(release)
	<-first.done
	<-second.done
	var ok RunResponse
	if code := post(t, url+"/v1/run", &RunRequest{App: "gsm_dec", Config: "VLIW-2w"}, &ok); code != http.StatusOK {
		t.Fatalf("post-saturation request: status %d, want 200", code)
	}
}

// TestMetricsEndpointInvariants scrapes /metrics after a mixed
// hit/miss workload and asserts the exact-sum invariants: the per-cause
// stall series sums to the stall total, and the served aggregates count
// every logical serve — result-cache hits fold the same result as the
// simulation that produced it, so served cycles equal the sum over all
// responses.
func TestMetricsEndpointInvariants(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})
	var wantCycles, wantStalls float64
	for i := 0; i < 6; i++ {
		req := DefaultWorkload()[i%3]
		var resp RunResponse
		if code := post(t, url+"/v1/run", &req, &resp); code != 200 {
			t.Fatalf("warmup %d: status %d", i, code)
		}
		wantCycles += float64(resp.Stats.Cycles)
		wantStalls += float64(resp.Stats.StallCycles)
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	vals := map[string]float64{}
	fused := map[string]float64{}
	var causeSum float64
	sc := newLineScanner(t, resp)
	for _, line := range sc {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		if strings.HasPrefix(name, "vsimdd_served_stall_cycles_by_cause_total{") {
			causeSum += v
			continue
		}
		if kind, ok := strings.CutPrefix(name, `vsimdd_fused_ops_lowered_total{kind="`); ok {
			fused[strings.TrimSuffix(kind, `"}`)] = v
			continue
		}
		vals[name] = v
	}
	if vals["vsimdd_served_cycles_total"] != wantCycles {
		t.Fatalf("served_cycles_total = %.0f, want %.0f (sum over every logical serve)",
			vals["vsimdd_served_cycles_total"], wantCycles)
	}
	if vals["vsimdd_served_stall_cycles_total"] != wantStalls {
		t.Fatalf("served_stall_cycles_total = %.0f, want %.0f (sum over every logical serve)",
			vals["vsimdd_served_stall_cycles_total"], wantStalls)
	}
	if total := vals["vsimdd_served_stall_cycles_total"]; causeSum != total {
		t.Fatalf("stall causes sum to %.0f, want exactly %.0f", causeSum, total)
	}
	if vals["vsimdd_served_total"] != 6 {
		t.Fatalf("served_total = %.0f, want 6 (every logical serve)", vals["vsimdd_served_total"])
	}
	// Only 3 distinct cells were simulated; the rest were result-hits.
	if vals["vsimdd_runs_total"] != 3 {
		t.Fatalf("runs_total = %.0f, want 3 simulations", vals["vsimdd_runs_total"])
	}
	if vals["vsimdd_result_cache_hits_total"] != 3 {
		t.Fatalf("result_cache_hits_total = %.0f, want 3", vals["vsimdd_result_cache_hits_total"])
	}
	// The daemon advertises which execution engine serves it, and exports
	// the static fusion counters: one series per fusion kind, with at least
	// one kind non-zero after the vector workload above (the counters are
	// process-wide, so only a lower bound is stable here).
	if vals[`vsimdd_engine_info{version="`+sim.EngineVersion+`"}`] != 1 {
		t.Fatalf("vsimdd_engine_info{version=%q} missing or not 1", sim.EngineVersion)
	}
	var fusedSum float64
	for k := 1; k < sched.NumFusePairs; k++ {
		kind := sched.FusePair(k).String()
		v, ok := fused[kind]
		if !ok {
			t.Errorf("vsimdd_fused_ops_lowered_total{kind=%q} series missing", kind)
		}
		fusedSum += v
	}
	if fusedSum == 0 {
		t.Error("all fused-op counters zero after a vector workload")
	}
}

func newLineScanner(t *testing.T, resp *http.Response) []string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return strings.Split(buf.String(), "\n")
}

// TestLoadBurst is the CI smoke of the load harness: a short burst at
// moderate concurrency must complete with zero transport errors and sane
// latency percentiles, and the daemon must shut down cleanly afterwards
// (the startServer cleanup asserts that).
func TestLoadBurst(t *testing.T) {
	_, url := startServer(t, Config{})
	dur := 800 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	rep, err := Load(context.Background(), LoadOptions{URL: url, Concurrency: 4, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load burst had %d errors:\n%s", rep.Errors, rep)
	}
	if rep.Requests == 0 {
		t.Fatalf("load burst completed no requests:\n%s", rep)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Fatalf("implausible percentiles:\n%s", rep)
	}
}

// TestHealthz checks liveness.
func TestHealthz(t *testing.T) {
	_, url := startServer(t, Config{Workers: 1})
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

// TestGracefulShutdownDrains starts a slow request, begins shutdown
// mid-flight, and checks the request still completes successfully.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := New(Config{Workers: 1})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr

	done := make(chan int, 1)
	go func() {
		b, _ := json.Marshal(&RunRequest{App: "mpeg2_enc", Config: "Vector2-4w"})
		resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(b))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach a worker

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200", code)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
