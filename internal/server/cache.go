package server

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sched"
)

// progCache is a sharded LRU of compiled core.Programs keyed by
// (application, code variant, machine-configuration hash). Each entry
// carries its own sync.Once, so concurrent requests for the same key
// single-flight the expensive build+compile (the same memoization shape as
// internal/report's sweep entries) while other shards stay untouched.
// Compiled Programs are immutable (see core.Program), so a cached entry
// can serve any number of concurrent runs.
type progCache struct {
	shards   []cacheShard
	perShard int
	// onCompile, when non-nil, observes every compile the cache performs
	// (hits never fire it); the server points it at its metrics so
	// /metrics exposes cold-start compile cost.
	onCompile func(core.CompileStats)
}

type cacheShard struct {
	mu    sync.Mutex
	byKey map[string]*list.Element
	order *list.List // front = most recently used; values are *cacheEntry
}

type cacheEntry struct {
	key  string
	once sync.Once
	// ready is closed once prog/err are set; an entry that exists but is
	// not yet ready is an in-flight compile, and a request landing on it
	// is a wait, not a hit — it pays the full compile latency.
	ready chan struct{}
	prog  *core.Program
	err   error
}

// cacheOutcome classifies one progCache lookup.
type cacheOutcome int

const (
	// progMiss created the entry and ran the compile.
	progMiss cacheOutcome = iota
	// progHit found a finished entry: the program was served immediately.
	progHit
	// progWait coalesced onto an entry whose compile was still in
	// flight: no duplicate compile, but full compile latency.
	progWait
)

// newProgCache builds a cache holding at most capacity programs across
// nShards shards (both floored at 1; capacity is rounded up to a multiple
// of the shard count).
func newProgCache(capacity, nShards int) *progCache {
	if nShards < 1 {
		nShards = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	perShard := (capacity + nShards - 1) / nShards
	c := &progCache{shards: make([]cacheShard, nShards), perShard: perShard}
	for i := range c.shards {
		c.shards[i].byKey = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// configKey is a stable fingerprint of a machine configuration, covering
// every field (so per-request lane/issue overrides land in distinct cache
// slots even though they share the base configuration's name).
func configKey(cfg *machine.Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", *cfg)
	return fmt.Sprintf("%016x", h.Sum64())
}

// cacheKey identifies one compiled program.
func cacheKey(app string, v kernels.Variant, cfg *machine.Config) string {
	return fmt.Sprintf("%s|%d|%s", app, v, configKey(cfg))
}

// get returns the compiled program for (app, cfg), compiling at most once
// per key. The outcome distinguishes a true hit (entry finished — the
// program is served immediately) from a wait (entry existed but its
// compile was still in flight: the request coalesces onto the same Once
// and pays the full compile latency without duplicating the work).
func (c *progCache) get(app *apps.App, cfg *machine.Config) (prog *core.Program, outcome cacheOutcome, err error) {
	v := report.VariantFor(cfg)
	key := cacheKey(app.Name, v, cfg)
	s := &c.shards[shardIndex(key, len(c.shards))]

	s.mu.Lock()
	el, ok := s.byKey[key]
	var e *cacheEntry
	if ok {
		s.order.MoveToFront(el)
		e = el.Value.(*cacheEntry)
	} else {
		e = &cacheEntry{key: key, ready: make(chan struct{})}
		s.byKey[key] = s.order.PushFront(e)
		if s.order.Len() > c.perShard {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.byKey, oldest.Value.(*cacheEntry).key)
		}
	}
	s.mu.Unlock()

	switch {
	case !ok:
		outcome = progMiss
	default:
		select {
		case <-e.ready:
			outcome = progHit
		default:
			outcome = progWait
		}
	}

	// Build+compile outside the shard lock: other keys proceed, and
	// duplicate requests for this key block on the same Once.
	e.once.Do(func() {
		built := app.Build(v)
		var st core.CompileStats
		e.prog, st, e.err = core.CompileWithStats(built.Func, cfg, sched.Options{})
		if c.onCompile != nil {
			c.onCompile(st)
		}
		close(e.ready)
	})
	return e.prog, outcome, e.err
}

// len returns the number of cached entries across all shards.
func (c *progCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// shardIndex hashes a key onto a shard.
func shardIndex(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
