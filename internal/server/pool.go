package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Admission control: a bounded queue in front of a fixed worker pool.
// Simulation runs are CPU-bound, so capacity is workers × queue depth —
// once the queue is full the server sheds load immediately (the handler
// turns errQueueFull into 429 + Retry-After) instead of stacking
// unbounded goroutines behind the CPUs. A shutting-down pool refuses new
// work but drains everything already admitted.

var (
	// errQueueFull reports that the admission queue had no room.
	errQueueFull = errors.New("server: admission queue full")
	// errDraining reports that the pool is shutting down.
	errDraining = errors.New("server: shutting down")
)

// job is one admitted unit of work. The worker that pops it runs do
// unless the job's context is already done, then closes done.
type job struct {
	ctx  context.Context
	do   func(ctx context.Context)
	done chan struct{}
}

// workerPool runs admitted jobs on a fixed set of worker goroutines.
type workerPool struct {
	jobs chan *job
	wg   sync.WaitGroup

	// mu guards the submit-vs-close race: submits hold it shared so a
	// concurrent Close cannot close the channel mid-send.
	mu     sync.RWMutex
	closed bool

	inflight atomic.Int64
}

// newWorkerPool starts workers goroutines behind a queue of queueDepth
// pending jobs (both floored at 1).
func newWorkerPool(workers, queueDepth int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &workerPool{jobs: make(chan *job, queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		// do is responsible for bailing out quickly when the job's
		// deadline expired while it sat in the queue (the submitter has
		// already observed ctx.Done and answered by then).
		p.inflight.Add(1)
		j.do(j.ctx)
		p.inflight.Add(-1)
		close(j.done)
	}
}

// submit tries to admit a job without blocking. It returns errQueueFull
// when the queue has no room and errDraining after close.
func (p *workerPool) submit(j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.jobs <- j:
		return nil
	default:
		return errQueueFull
	}
}

// submitWait admits a job, blocking until there is queue room or ctx is
// done. Sweep cells use it: the batch was already admitted as a whole, so
// its cells wait for workers instead of shedding against each other. The
// shared read-lock also pauses close() until the send lands, so a blocked
// submitWait never races a channel close.
func (p *workerPool) submitWait(ctx context.Context, j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.jobs <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops admission and waits for every already-admitted job to
// finish (graceful drain).
func (p *workerPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// depth is the number of queued (not yet started) jobs.
func (p *workerPool) depth() int { return len(p.jobs) }
