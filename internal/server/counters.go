package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/metrics"
	"vsimdvliw/internal/sim"
)

// serverMetrics holds the daemon's operational counters plus the
// aggregate simulation statistics of every served run (backed by
// internal/metrics' exact-sum StallBreakdown, so the per-cause series on
// /metrics always sums to the stall total — the same invariant the
// simulator enforces per run).
type serverMetrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[reqKey]int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheWaits  atomic.Int64
	shed        atomic.Int64

	resultHits      atomic.Int64
	resultMisses    atomic.Int64
	resultCoalesced atomic.Int64

	runsTotal      atomic.Int64
	runsCanceled   atomic.Int64
	runsFailed     atomic.Int64
	servedTotal    atomic.Int64
	encodeFailures atomic.Int64

	runMu         sync.Mutex
	runSeconds    float64
	servedCycles  int64
	servedStalls  int64
	servedOps     int64
	stallsByCause metrics.StallBreakdown

	compilesTotal atomic.Int64
	compileMu     sync.Mutex
	// compileSeconds is the total wall-clock cost of cold compiles
	// (schedule + predecode); compileSchedSeconds is the scheduling share,
	// and compiledOps the IR operations compiled — together they expose the
	// cold-start sched_ops/s rate on /metrics.
	compileSeconds      float64
	compileSchedSeconds float64
	compiledOps         int64
}

// reqKey labels one vsimdd_requests_total series.
type reqKey struct {
	endpoint string
	code     int
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{start: time.Now(), requests: make(map[reqKey]int64)}
}

// request counts one finished HTTP exchange.
func (m *serverMetrics) request(endpoint string, code int) {
	m.mu.Lock()
	m.requests[reqKey{endpoint, code}]++
	m.mu.Unlock()
}

// servedRun folds one simulated run's outcome into the aggregates.
// Canceled runs contribute their partial results: the simulator
// guarantees partial breakdowns still sum exactly, so the /metrics
// invariant survives.
func (m *serverMetrics) servedRun(res *sim.Result, elapsed time.Duration) {
	m.runsTotal.Add(1)
	m.servedTotal.Add(1)
	m.runMu.Lock()
	m.runSeconds += elapsed.Seconds()
	m.foldLocked(res)
	m.runMu.Unlock()
}

// servedHit folds one result-cache serve into the aggregates. Every
// logical serve — hit or miss — contributes the same result, so the
// served_* series (and their exact-sum stall invariant) are independent
// of the cache state; only runsTotal/runSeconds, which measure actual
// simulation work, stay miss-only.
func (m *serverMetrics) servedHit(res *sim.Result) {
	m.servedTotal.Add(1)
	m.runMu.Lock()
	m.foldLocked(res)
	m.runMu.Unlock()
}

func (m *serverMetrics) foldLocked(res *sim.Result) {
	if res != nil {
		m.servedCycles += res.Cycles
		m.servedStalls += res.StallCycles
		m.servedOps += res.Ops
		m.stallsByCause.AddBreakdown(&res.Stalls)
	}
}

// compile folds one program-cache compile's cost into the aggregates
// (progCache.onCompile points here).
func (m *serverMetrics) compile(st core.CompileStats) {
	m.compilesTotal.Add(1)
	m.compileMu.Lock()
	m.compileSeconds += float64(st.ScheduleNS+st.PredecodeNS) / 1e9
	m.compileSchedSeconds += float64(st.ScheduleNS) / 1e9
	m.compiledOps += int64(st.Ops)
	m.compileMu.Unlock()
}

// writePrometheus renders the counters in Prometheus text exposition
// format. Map-backed series are emitted in sorted label order, so the
// output is deterministic.
func (m *serverMetrics) writePrometheus(w io.Writer, cacheLen, resultLen, queueDepth int, inflight int64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}

	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP vsimdd_requests_total HTTP requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "vsimdd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	m.mu.Unlock()

	counter("vsimdd_cache_hits_total", "Compiled-program cache hits (program served immediately).", m.cacheHits.Load())
	counter("vsimdd_cache_misses_total", "Compiled-program cache misses (cold compiles).", m.cacheMisses.Load())
	counter("vsimdd_cache_waits_total", "Requests coalesced onto an in-flight compile (no duplicate work, full compile latency).", m.cacheWaits.Load())
	gauge("vsimdd_cache_entries", "Compiled programs currently cached.", int64(cacheLen))
	counter("vsimdd_result_cache_hits_total", "Result-cache hits (served without simulating; includes coalesced serves).", m.resultHits.Load())
	counter("vsimdd_result_cache_misses_total", "Result-cache misses (the request led its cell's simulation).", m.resultMisses.Load())
	counter("vsimdd_result_cache_coalesced_total", "Result-cache hits that waited for an identical in-flight run.", m.resultCoalesced.Load())
	gauge("vsimdd_result_cache_entries", "Results currently cached.", int64(resultLen))
	counter("vsimdd_shed_total", "Requests shed by admission control (429).", m.shed.Load())
	gauge("vsimdd_queue_depth", "Admitted jobs waiting for a worker.", int64(queueDepth))
	gauge("vsimdd_inflight_runs", "Simulations currently executing.", inflight)
	counter("vsimdd_runs_total", "Simulation runs started on the worker pool.", m.runsTotal.Load())
	counter("vsimdd_runs_canceled_total", "Runs stopped by deadline or cancellation.", m.runsCanceled.Load())
	counter("vsimdd_runs_failed_total", "Runs that ended in a simulation error.", m.runsFailed.Load())
	counter("vsimdd_served_total", "Logical serves folded into the served aggregates (simulations plus result-cache hits).", m.servedTotal.Load())
	counter("vsimdd_encode_failures_total", "Responses whose JSON body failed to encode after the status line was sent.", m.encodeFailures.Load())

	counter("vsimdd_compiles_total", "Programs compiled on cache misses (schedule + predecode).", m.compilesTotal.Load())
	m.compileMu.Lock()
	fmt.Fprintf(w, "# HELP vsimdd_compile_seconds_total Wall-clock seconds spent compiling on cache misses.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_compile_seconds_total counter\n")
	fmt.Fprintf(w, "vsimdd_compile_seconds_total %g\n", m.compileSeconds)
	fmt.Fprintf(w, "# HELP vsimdd_compile_sched_seconds_total Scheduling share of vsimdd_compile_seconds_total.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_compile_sched_seconds_total counter\n")
	fmt.Fprintf(w, "vsimdd_compile_sched_seconds_total %g\n", m.compileSchedSeconds)
	counter("vsimdd_compiled_ops_total", "IR operations compiled on cache misses.", m.compiledOps)
	m.compileMu.Unlock()

	m.runMu.Lock()
	fmt.Fprintf(w, "# HELP vsimdd_run_seconds_total Wall-clock seconds spent simulating.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_run_seconds_total counter\n")
	fmt.Fprintf(w, "vsimdd_run_seconds_total %g\n", m.runSeconds)
	counter("vsimdd_served_cycles_total", "Simulated cycles across all served runs.", m.servedCycles)
	counter("vsimdd_served_ops_total", "Simulated operations across all served runs.", m.servedOps)
	counter("vsimdd_served_stall_cycles_total", "Simulated stall cycles across all served runs.", m.servedStalls)
	fmt.Fprintf(w, "# HELP vsimdd_served_stall_cycles_by_cause_total Stall cycles by cause; the series sums exactly to vsimdd_served_stall_cycles_total.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_served_stall_cycles_by_cause_total counter\n")
	for _, c := range metrics.Causes() {
		fmt.Fprintf(w, "vsimdd_served_stall_cycles_by_cause_total{cause=%q} %d\n", c.String(), m.stallsByCause[c])
	}
	m.runMu.Unlock()

	fmt.Fprintf(w, "# HELP vsimdd_engine_info Execution engine serving this daemon (info-style gauge, value is always 1).\n")
	fmt.Fprintf(w, "# TYPE vsimdd_engine_info gauge\n")
	fmt.Fprintf(w, "vsimdd_engine_info{version=%q} 1\n", sim.EngineVersion)
	fmt.Fprintf(w, "# HELP vsimdd_fused_ops_lowered_total Statically fused operation pairs lowered by the v3 engine, by fusion kind (process-wide; counted once per block per schedule).\n")
	fmt.Fprintf(w, "# TYPE vsimdd_fused_ops_lowered_total counter\n")
	for _, fc := range sim.FusionLowered() {
		fmt.Fprintf(w, "vsimdd_fused_ops_lowered_total{kind=%q} %d\n", fc.Kind, fc.Count)
	}

	fmt.Fprintf(w, "# HELP vsimdd_uptime_seconds Seconds since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "vsimdd_uptime_seconds %g\n", time.Since(m.start).Seconds())
}
