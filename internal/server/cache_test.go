package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"vsimdvliw/internal/machine"
)

// TestCacheSingleFlight fires many concurrent gets for the same key and
// checks they all receive the same compiled program (one compile, shared
// by everyone).
func TestCacheSingleFlight(t *testing.T) {
	c := newProgCache(8, 2)
	app, err := LookupApp("gsm_dec")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	progs := make([]any, n)
	var hits atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog, hit, err := c.get(app, &machine.Vector2x2)
			if err != nil {
				t.Error(err)
				return
			}
			if hit {
				hits.Add(1)
			}
			progs[i] = prog
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("get %d returned a different program pointer", i)
		}
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries after one key, want 1", c.len())
	}
	if hits.Load() != n-1 {
		t.Fatalf("%d hits for %d gets, want %d (single miss)", hits.Load(), n, n-1)
	}
}

// TestCacheLRUEviction fills a single-shard cache past capacity and
// checks the oldest key is evicted and recompiled on the next get.
func TestCacheLRUEviction(t *testing.T) {
	c := newProgCache(2, 1)
	app, err := LookupApp("gsm_dec")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []*machine.Config{&machine.VLIW2, &machine.USIMD2, &machine.Vector2x2}
	first, _, err := c.get(app, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs[1:] {
		if _, _, err := c.get(app, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", c.len())
	}
	// cfgs[0] was the least recently used; it must have been evicted and
	// now recompiles as a miss with a fresh program value.
	again, hit, err := c.get(app, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("evicted key reported as a cache hit")
	}
	if again == first {
		t.Fatal("evicted key returned the original program pointer")
	}
}

// TestCacheDistinctKeys checks the config fingerprint separates
// per-request overrides that share a base configuration name.
func TestCacheDistinctKeys(t *testing.T) {
	base := machine.Vector2x2
	override := machine.Vector2x2
	override.Lanes = 8
	if configKey(&base) == configKey(&override) {
		t.Fatal("lane override produced the same config fingerprint")
	}
	if configKey(&base) != configKey(&machine.Vector2x2) {
		t.Fatal("config fingerprint is not stable")
	}
}
