package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
)

// TestCacheSingleFlight fires many concurrent gets for the same key and
// checks they all receive the same compiled program (one compile, shared
// by everyone). Concurrent requests that land while the compile is in
// flight must report wait, not hit — only requests finding a finished
// entry are hits.
func TestCacheSingleFlight(t *testing.T) {
	c := newProgCache(8, 2)
	app, err := LookupApp("gsm_dec")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	progs := make([]any, n)
	var hits, waits, misses atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog, outcome, err := c.get(app, &machine.Vector2x2)
			if err != nil {
				t.Error(err)
				return
			}
			switch outcome {
			case progHit:
				hits.Add(1)
			case progWait:
				waits.Add(1)
			default:
				misses.Add(1)
			}
			progs[i] = prog
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("get %d returned a different program pointer", i)
		}
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries after one key, want 1", c.len())
	}
	if misses.Load() != 1 {
		t.Fatalf("%d misses for %d gets, want exactly 1 compile", misses.Load(), n)
	}
	if hits.Load()+waits.Load() != n-1 {
		t.Fatalf("hits+waits = %d for %d gets, want %d", hits.Load()+waits.Load(), n, n-1)
	}
	// With the compile finished, the next get is a true hit.
	if _, outcome, err := c.get(app, &machine.Vector2x2); err != nil || outcome != progHit {
		t.Fatalf("post-compile get: outcome %v err %v, want progHit", outcome, err)
	}
}

// TestCacheWaitOutcome pins the wait outcome deterministically: a request
// landing on an entry whose compile is still in flight must report wait
// (it pays the full compile latency), not hit — the bug this guards
// against inflated cold-start hit rates with requests that were actually
// slow.
func TestCacheWaitOutcome(t *testing.T) {
	c := newProgCache(8, 1)
	app, err := LookupApp("gsm_dec")
	if err != nil {
		t.Fatal(err)
	}

	// Install the entry by hand and hold its once open behind a gate so
	// the in-flight window is arbitrarily wide.
	key := cacheKey(app.Name, report.VariantFor(&machine.Vector2x2), &machine.Vector2x2)
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	s := &c.shards[shardIndex(key, len(c.shards))]
	s.mu.Lock()
	s.byKey[key] = s.order.PushFront(e)
	s.mu.Unlock()

	gate := make(chan struct{})
	entered := make(chan struct{})
	go e.once.Do(func() {
		close(entered)
		<-gate
		e.prog, e.err = nil, nil
		close(e.ready)
	})
	<-entered // the leader owns the Once before any lookup runs

	type got struct {
		outcome cacheOutcome
		err     error
	}
	done := make(chan got)
	go func() {
		_, outcome, err := c.get(app, &machine.Vector2x2)
		done <- got{outcome, err}
	}()
	select {
	case g := <-done:
		t.Fatalf("get returned %v before the in-flight compile finished", g.outcome)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	g := <-done
	if g.err != nil {
		t.Fatal(g.err)
	}
	if g.outcome != progWait {
		t.Fatalf("outcome = %v for an in-flight entry, want progWait", g.outcome)
	}
	// Now the entry is ready: the next lookup is a plain hit.
	if _, outcome, _ := c.get(app, &machine.Vector2x2); outcome != progHit {
		t.Fatalf("outcome = %v for a finished entry, want progHit", outcome)
	}
}

// TestCacheLRUEviction fills a single-shard cache past capacity and
// checks the oldest key is evicted and recompiled on the next get.
func TestCacheLRUEviction(t *testing.T) {
	c := newProgCache(2, 1)
	app, err := LookupApp("gsm_dec")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []*machine.Config{&machine.VLIW2, &machine.USIMD2, &machine.Vector2x2}
	first, _, err := c.get(app, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs[1:] {
		if _, _, err := c.get(app, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", c.len())
	}
	// cfgs[0] was the least recently used; it must have been evicted and
	// now recompiles as a miss with a fresh program value.
	again, outcome, err := c.get(app, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if outcome != progMiss {
		t.Fatalf("evicted key reported outcome %v, want progMiss", outcome)
	}
	if again == first {
		t.Fatal("evicted key returned the original program pointer")
	}
}

// TestCacheDistinctKeys checks the config fingerprint separates
// per-request overrides that share a base configuration name.
func TestCacheDistinctKeys(t *testing.T) {
	base := machine.Vector2x2
	override := machine.Vector2x2
	override.Lanes = 8
	if configKey(&base) == configKey(&override) {
		t.Fatal("lane override produced the same config fingerprint")
	}
	if configKey(&base) != configKey(&machine.Vector2x2) {
		t.Fatal("config fingerprint is not stable")
	}
}
