package server

import (
	"bytes"
	"fmt"
	"strconv"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sim"
	"vsimdvliw/internal/sweep"
)

// VLValue is the "vl" field of a RunRequest: a JSON number (an explicit
// cap) or the string "auto" (serve the best-known VL from the daemon's
// autotune history). The zero value means "uncapped".
type VLValue int

// VLAuto is the resolved form of `"vl":"auto"`.
const VLAuto VLValue = -1

// UnmarshalJSON accepts a non-negative number or the string "auto" (the
// sentinel VLAuto is reserved, so a literal negative never aliases it).
func (v *VLValue) UnmarshalJSON(b []byte) error {
	if bytes.Equal(b, []byte(`"auto"`)) {
		*v = VLAuto
		return nil
	}
	n, err := strconv.Atoi(string(b))
	if err != nil || n < 0 {
		return fmt.Errorf("vl must be a number in [0, %d] or \"auto\"", isa.MaxVL)
	}
	*v = VLValue(n)
	return nil
}

// MarshalJSON renders VLAuto back as "auto".
func (v VLValue) MarshalJSON() ([]byte, error) {
	if v == VLAuto {
		return []byte(`"auto"`), nil
	}
	return []byte(strconv.Itoa(int(v))), nil
}

// RunRequest is the body of POST /v1/run: one (app, config, memory) cell
// of the evaluation matrix, with optional per-request machine overrides.
type RunRequest struct {
	App    string `json:"app"`
	Config string `json:"config"`
	// Memory selects the timing model ("perfect" or "realistic"; empty
	// defaults to realistic).
	Memory string `json:"memory,omitempty"`

	// VL caps the vector length the program sets via SETVL (1..16; 0
	// leaves the architectural maximum), or "auto" to let the daemon pick
	// the VL with the fewest recorded cycles for this cell (default VL
	// when no history exists yet). Capped runs are SLAP-style variable-VL
	// timing experiments: the program computes different values, so only
	// timing — not outputs — is meaningful.
	VL VLValue `json:"vl,omitempty"`
	// Lanes overrides the number of vector lanes (and matches the L2 port
	// width to it, as the lane-count study does). Vector configs only.
	Lanes int `json:"lanes,omitempty"`
	// Issue overrides the VLIW issue width; the program is rescheduled
	// for the new width (distinct compiled-program cache slot).
	Issue int `json:"issue,omitempty"`

	// TimeoutMS bounds the run in wall-clock milliseconds; once exceeded
	// the simulation is canceled and the response carries the typed
	// cancellation with partial stall attribution.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Fresh bypasses the result cache: the cell is simulated even when
	// an identical result is cached (differential checks, re-measuring).
	// The compiled-program cache still applies.
	Fresh bool `json:"fresh,omitempty"`
}

// RunResponse is the body of a successful POST /v1/run: the same
// CellMetrics shape the batch exporters write (bit-identical to a
// report.Collect cell for non-overridden requests) plus serving metadata.
type RunResponse struct {
	report.CellMetrics
	// Cache labels how the cell was served: "result-hit" (cached result,
	// no simulation), or the compiled-program cache outcome of the run —
	// "hit" (program cached), "miss" (cold compile), "wait" (coalesced
	// onto an in-flight compile; no duplicate work, full compile latency).
	Cache string `json:"cache"`
	// VL echoes the VL cap the run actually used (canonical: 0 means
	// uncapped), and VLSource labels how an "auto" request was resolved:
	// "auto:history" (argmin of the recorded cycles) or "auto:default"
	// (no history yet; the default uncapped VL was used).
	VL       int    `json:"vl,omitempty"`
	VLSource string `json:"vl_source,omitempty"`
	// QueueMS and RunMS split the server-side latency into time waiting
	// for a worker and time simulating.
	QueueMS float64 `json:"queue_ms"`
	RunMS   float64 `json:"run_ms"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Canceled is set when the run was stopped by deadline or
	// cancellation (the typed sim.ErrCanceled path).
	Canceled bool `json:"canceled,omitempty"`
	// Partial carries the partial simulation result of a canceled run;
	// its stall breakdown still sums exactly to its stall cycles.
	Partial *sim.Result `json:"partial,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a sub-matrix. Empty axes
// default to the full axis (all apps, all configs, both memory models).
type SweepRequest struct {
	Apps     []string `json:"apps,omitempty"`
	Configs  []string `json:"configs,omitempty"`
	Memories []string `json:"memories,omitempty"`
	// TimeoutMS bounds the whole sweep.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fresh bypasses the result cache for every cell.
	Fresh bool `json:"fresh,omitempty"`
}

// SweepCell is one cell of a sweep response, in canonical (app, config,
// memory) order. Failed or canceled cells carry Error instead of Stats;
// canceled cells additionally carry the partial result the typed
// cancellation captured, whose stall breakdown still sums exactly to its
// stall cycles (the same contract as a single-run 504).
type SweepCell struct {
	App      string      `json:"app"`
	Config   string      `json:"config"`
	Memory   string      `json:"memory"`
	Stats    *sim.Result `json:"stats,omitempty"`
	Cache    string      `json:"cache,omitempty"`
	Error    string      `json:"error,omitempty"`
	Canceled bool        `json:"canceled,omitempty"`
	Partial  *sim.Result `json:"partial,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Cells []SweepCell `json:"cells"`
	// Errors counts cells that failed or were canceled.
	Errors int `json:"errors"`
}

// VLSweepRequest is the body of POST /v1/vlsweep: a dense VL sweep over a
// sub-matrix. Empty app/config/memory axes default to the full axis; the
// VL axis is required and kept in the caller's order.
type VLSweepRequest struct {
	Apps     []string `json:"apps,omitempty"`
	Configs  []string `json:"configs,omitempty"`
	Memories []string `json:"memories,omitempty"`
	// VLs is the vector-length axis: each entry 0..16 (0 = uncapped), no
	// duplicates, at least one entry.
	VLs []int `json:"vls"`
	// TimeoutMS bounds the whole sweep.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fresh bypasses the result cache for every cell.
	Fresh bool `json:"fresh,omitempty"`
	// Stats includes each cell's full sim.Result in the response (the
	// default response carries only the headline numbers per cell).
	Stats bool `json:"stats,omitempty"`
}

// VLSweepCell is one requested (app, config, memory, VL) point, in
// canonical request order. VL echoes the request verbatim; cells whose VL
// spellings canonicalize to the same simulation share one result (their
// Cache labels say so: "alias").
type VLSweepCell struct {
	App    string `json:"app"`
	Config string `json:"config"`
	Memory string `json:"memory"`
	VL     int    `json:"vl"`
	// Headline metrics, present on success.
	Cycles      int64 `json:"cycles,omitempty"`
	StallCycles int64 `json:"stall_cycles,omitempty"`
	Ops         int64 `json:"ops,omitempty"`
	// Cache labels how the cell was served: "result-hit" (result cache),
	// "alias" (proven identical to another cell of this sweep), or the
	// compiled-program cache outcome of the run that produced it ("hit",
	// "miss", "wait").
	Cache string `json:"cache,omitempty"`
	// Stats is the full result, when the request asked for it.
	Stats    *sim.Result `json:"stats,omitempty"`
	Error    string      `json:"error,omitempty"`
	Canceled bool        `json:"canceled,omitempty"`
	Partial  *sim.Result `json:"partial,omitempty"`
}

// VLSweepResponse is the body of a successful POST /v1/vlsweep.
type VLSweepResponse struct {
	Cells []VLSweepCell `json:"cells"`
	// Errors counts cells that failed or were canceled.
	Errors int `json:"errors"`
	// Runs, ResultHits and Aliased account for how the sweep was served:
	// unique simulations executed, unique runs served from the result
	// cache, and unique runs aliased to a verified identical run.
	Runs       int `json:"runs"`
	ResultHits int `json:"result_hits"`
	Aliased    int `json:"aliased"`
}

// resolveVLSweep validates the request and expands its axes, returning
// errors suitable for a 400.
func (r *VLSweepRequest) resolveVLSweep() ([]*apps.App, []*machine.Config, []core.MemoryModel, []int, error) {
	if len(r.VLs) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("vls is required: a non-empty list of VL caps in [0, %d] (0 leaves the architectural maximum)", isa.MaxVL)
	}
	seen := make(map[int]bool, len(r.VLs))
	for _, vl := range r.VLs {
		if vl < 0 || vl > isa.MaxVL {
			return nil, nil, nil, nil, fmt.Errorf("vl %d out of range [0, %d]", vl, isa.MaxVL)
		}
		if seen[vl] {
			return nil, nil, nil, nil, fmt.Errorf("duplicate vl %d in vls", vl)
		}
		seen[vl] = true
	}
	appNames := r.Apps
	if len(appNames) == 0 {
		appNames = AppNames()
	}
	cfgNames := r.Configs
	if len(cfgNames) == 0 {
		cfgNames = ConfigNames()
	}
	memNames := r.Memories
	if len(memNames) == 0 {
		memNames = MemoryNames()
	}
	appList := make([]*apps.App, len(appNames))
	for i, n := range appNames {
		a, err := LookupApp(n)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		appList[i] = a
	}
	cfgs := make([]*machine.Config, len(cfgNames))
	for i, n := range cfgNames {
		c, err := LookupConfig(n)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cfgs[i] = c
	}
	mems := make([]core.MemoryModel, len(memNames))
	for i, n := range memNames {
		m, err := LookupMemory(n)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		mems[i] = m
	}
	return appList, cfgs, mems, r.VLs, nil
}

// runSpec is a fully resolved, validated run request. vlCap is always in
// canonical form (sweep.CanonicalVL): requests that spell the same
// simulation differently (vl 16 vs 0; any vl on a non-vector config)
// share one fingerprint and therefore one cached result.
type runSpec struct {
	app   *apps.App
	cfg   *machine.Config
	mem   core.MemoryModel
	vlCap int
	fresh bool
	// vlAuto marks a `"vl":"auto"` request; the server substitutes the
	// autotune table's pick into vlCap before serving.
	vlAuto bool
}

// resolve validates a RunRequest against the known applications,
// configurations and memory models and applies the machine overrides,
// returning an error suitable for a 400 (it names the valid values).
func (r *RunRequest) resolve() (*runSpec, error) {
	app, err := LookupApp(r.App)
	if err != nil {
		return nil, err
	}
	cfg, err := LookupConfig(r.Config)
	if err != nil {
		return nil, err
	}
	mm, err := LookupMemory(r.Memory)
	if err != nil {
		return nil, err
	}
	if r.VL != VLAuto && (r.VL < 0 || int(r.VL) > isa.MaxVL) {
		return nil, fmt.Errorf("vl override %d out of range [0, %d] (0 leaves the architectural maximum)", r.VL, isa.MaxVL)
	}
	if r.Lanes < 0 {
		return nil, fmt.Errorf("lanes override %d out of range (must be >= 0; 0 keeps the configuration's lane count)", r.Lanes)
	}
	if r.Issue < 0 {
		return nil, fmt.Errorf("issue override %d out of range (must be >= 0; 0 keeps the configuration's issue width)", r.Issue)
	}
	if r.Lanes > 0 || r.Issue > 0 {
		c := *cfg // clone: the base configs are shared and immutable
		suffix := ""
		if r.Lanes > 0 {
			if cfg.ISA != machine.ISAVector {
				return nil, fmt.Errorf("lanes override requires a vector configuration (got %s)", cfg.Name)
			}
			c.Lanes = r.Lanes
			c.L2PortWords = r.Lanes
			suffix += fmt.Sprintf(",lanes=%d", r.Lanes)
		}
		if r.Issue > 0 {
			c.Issue = r.Issue
			suffix += fmt.Sprintf(",issue=%d", r.Issue)
		}
		c.Name = fmt.Sprintf("%s[%s]", cfg.Name, suffix[1:])
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("invalid override: %w", err)
		}
		cfg = &c
	}
	spec := &runSpec{app: app, cfg: cfg, mem: mm, fresh: r.Fresh}
	if r.VL == VLAuto {
		spec.vlAuto = true
	} else {
		spec.vlCap = sweep.CanonicalVL(cfg, int(r.VL))
	}
	return spec, nil
}

// resolveSweep expands a SweepRequest into its cells in canonical order.
func (r *SweepRequest) resolveSweep() ([]*runSpec, error) {
	appNames := r.Apps
	if len(appNames) == 0 {
		appNames = AppNames()
	}
	cfgNames := r.Configs
	if len(cfgNames) == 0 {
		cfgNames = ConfigNames()
	}
	memNames := r.Memories
	if len(memNames) == 0 {
		memNames = MemoryNames()
	}
	specs := make([]*runSpec, 0, len(appNames)*len(cfgNames)*len(memNames))
	for _, an := range appNames {
		for _, cn := range cfgNames {
			for _, mn := range memNames {
				req := RunRequest{App: an, Config: cn, Memory: mn, Fresh: r.Fresh}
				spec, err := req.resolve()
				if err != nil {
					return nil, err
				}
				specs = append(specs, spec)
			}
		}
	}
	return specs, nil
}
