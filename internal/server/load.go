package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Load harness: drives a running vsimdd at a fixed concurrency for a
// fixed duration and reports throughput and latency percentiles.
// cmd/vsimdload is the CLI over it; cmd/benchjson runs a short in-process
// burst to derive the service_req_s headline metric.

// LoadOptions configures one load run.
type LoadOptions struct {
	// URL is the daemon's base URL, e.g. "http://127.0.0.1:8037".
	URL string
	// Concurrency is the number of closed-loop clients (default 4).
	Concurrency int
	// Duration is how long to keep issuing requests (default 10s).
	Duration time.Duration
	// Requests is the workload mix; clients cycle through it round-robin.
	// Empty defaults to DefaultWorkload().
	Requests []RunRequest
	// Prewarm issues each distinct request once, serially, before the
	// timed window so the measurement captures the hot-cache steady
	// state (result-hits in microseconds) rather than cold compiles and
	// first simulations.
	Prewarm bool
	// Client overrides the HTTP client (default: http.Client with a 30s
	// timeout).
	Client *http.Client
}

// DefaultWorkload is a small repeated-cell mix: the cheapest app on three
// configurations covering all three ISA variants, realistic memory. Its
// repetition makes it a cache-friendly steady-state workload (hit-rate
// approaches 1 after the first few requests).
func DefaultWorkload() []RunRequest {
	return []RunRequest{
		{App: "gsm_dec", Config: "VLIW-2w", Memory: "realistic"},
		{App: "gsm_dec", Config: "uSIMD-2w", Memory: "realistic"},
		{App: "gsm_dec", Config: "Vector2-2w", Memory: "realistic"},
	}
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Requests   int64         `json:"requests"`    // completed 200s
	ResultHits int64         `json:"result_hits"` // 200s served from the result cache
	Shed       int64         `json:"shed"`        // 429s (admission control)
	Canceled   int64         `json:"canceled"`    // 504s (deadline)
	Errors     int64         `json:"errors"`      // transport failures and 5xx
	Duration   time.Duration `json:"-"`
	DurationS  float64       `json:"duration_s"`
	ReqPerS    float64       `json:"req_s"` // completed requests per second
	P50MS      float64       `json:"p50_ms"`
	P95MS      float64       `json:"p95_ms"`
	P99MS      float64       `json:"p99_ms"`
	MaxMS      float64       `json:"max_ms"`
}

// String renders the report for terminals.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"requests=%d result_hits=%d shed=%d canceled=%d errors=%d in %.2fs\n"+
			"throughput: %.1f req/s\nlatency: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		r.Requests, r.ResultHits, r.Shed, r.Canceled, r.Errors, r.DurationS,
		r.ReqPerS, r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
}

// Load drives the daemon until the duration elapses or ctx is done.
func Load(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if len(o.Requests) == 0 {
		o.Requests = DefaultWorkload()
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	bodies := make([][]byte, len(o.Requests))
	for i := range o.Requests {
		b, err := json.Marshal(&o.Requests[i])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	url := o.URL + "/v1/run"

	if o.Prewarm {
		// One serial pass over the distinct requests: compiles and first
		// simulations land before the clock starts, so the timed window
		// measures the hot-cache regime.
		for _, b := range bodies {
			resp, err := client.Post(url, "application/json", bytes.NewReader(b))
			if err != nil {
				return nil, fmt.Errorf("prewarm: %w", err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	ctx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()

	var (
		ok, hits, shed, canceled, fail atomic.Int64
		next                           atomic.Int64
		mu                             sync.Mutex
		lat                            []float64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				body := bodies[int(next.Add(1))%len(bodies)]
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					fail.Add(1)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return // the duration elapsed mid-request, not a failure
					}
					fail.Add(1)
					continue
				}
				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					if bytes.Contains(payload, resultHitJSON) {
						hits.Add(1)
					}
					mu.Lock()
					lat = append(lat, ms)
					mu.Unlock()
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusGatewayTimeout:
					canceled.Add(1)
				default:
					fail.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(lat)
	rep := &LoadReport{
		Requests: ok.Load(), ResultHits: hits.Load(),
		Shed: shed.Load(), Canceled: canceled.Load(),
		Errors: fail.Load(), Duration: elapsed, DurationS: elapsed.Seconds(),
	}
	if elapsed > 0 {
		rep.ReqPerS = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.P50MS = percentile(lat, 0.50)
	rep.P95MS = percentile(lat, 0.95)
	rep.P99MS = percentile(lat, 0.99)
	if len(lat) > 0 {
		rep.MaxMS = lat[len(lat)-1]
	}
	return rep, nil
}

// resultHitJSON is the serialized form of a result-cache serve's cache
// label; scanning for it is far cheaper than decoding every response.
var resultHitJSON = []byte(`"cache":"result-hit"`)

// percentile returns the p-quantile of sorted samples (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
