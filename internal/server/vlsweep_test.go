package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vsimdvliw/internal/sweep"
)

// TestVLSweepMatchesRun is the endpoint's differential check: every cell
// of a mixed VL sweep must be identical (through the JSON wire form) to a
// fresh /v1/run of the same (app, config, memory) cell with the same
// explicit VL cap.
func TestVLSweepMatchesRun(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})
	req := VLSweepRequest{
		Apps:    []string{"gsm_enc", "gsm_dec"},
		Configs: []string{"VLIW-2w", "uSIMD-2w", "Vector2-2w"},
		VLs:     []int{1, 8, 16},
		Stats:   true,
	}
	var resp VLSweepResponse
	if code := post(t, url+"/v1/vlsweep", &req, &resp); code != http.StatusOK {
		t.Fatalf("vlsweep: status %d", code)
	}
	wantCells := 2 * 3 * 2 * 3
	if len(resp.Cells) != wantCells || resp.Errors != 0 {
		t.Fatalf("cells = %d (errors %d), want %d", len(resp.Cells), resp.Errors, wantCells)
	}

	// Cells come back in canonical (app, config, memory, VL-as-given)
	// order, and each equals the standalone run.
	i := 0
	for _, an := range req.Apps {
		for _, cn := range req.Configs {
			for _, mn := range []string{"perfect", "realistic"} {
				for _, vl := range req.VLs {
					c := resp.Cells[i]
					if c.App != an || c.Config != cn || c.Memory != mn || c.VL != vl {
						t.Fatalf("cell %d out of canonical order: %s/%s/%s/vl%d", i, c.App, c.Config, c.Memory, c.VL)
					}
					var run RunResponse
					rr := RunRequest{App: an, Config: cn, Memory: mn, VL: VLValue(vl), Fresh: true}
					if code := post(t, url+"/v1/run", &rr, &run); code != http.StatusOK {
						t.Fatalf("run %d: status %d", i, code)
					}
					if !sameResult(t, c.Stats, run.Stats) {
						t.Fatalf("cell %d (%s/%s/%s/vl%d, cache %q) differs from a standalone run",
							i, c.App, c.Config, c.Memory, c.VL, c.Cache)
					}
					if c.Cycles != c.Stats.Cycles || c.StallCycles != c.Stats.StallCycles || c.Ops != c.Stats.Ops {
						t.Fatalf("cell %d headline numbers disagree with its stats", i)
					}
					i++
				}
			}
		}
	}
	if resp.Runs == 0 || resp.Runs+resp.ResultHits+resp.Aliased > wantCells {
		t.Fatalf("accounting: runs %d + hits %d + aliased %d vs %d cells",
			resp.Runs, resp.ResultHits, resp.Aliased, wantCells)
	}
}

// TestVLSweepRate is the batching acceptance check: a cold sweep of the
// cell matrix across the VL axis must serve cells at least 5x faster than
// issuing one /v1/run per point against a cold server, and it must
// compile each distinct program exactly once.
func TestVLSweepRate(t *testing.T) {
	appNames := AppNames()
	vls := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if testing.Short() {
		appNames = appNames[:2]
		vls = []int{1, 2, 4, 6, 8, 10, 12, 16}
	}
	cfgNames := ConfigNames()
	mems := []string{"perfect", "realistic"}

	// Naive baseline: one request per matrix point on a cold server. One
	// VL per point suffices for a per-point rate — every request pays the
	// full round trip, and the cold caches are the same starting state the
	// sweep gets.
	_, naiveURL := startServer(t, Config{Workers: 1})
	naivePoints := 0
	naiveStart := time.Now()
	for _, an := range appNames {
		for _, cn := range cfgNames {
			for _, mn := range mems {
				if code := post(t, naiveURL+"/v1/run", &RunRequest{App: an, Config: cn, Memory: mn}, nil); code != http.StatusOK {
					t.Fatalf("naive %s/%s/%s: status %d", an, cn, mn, code)
				}
				naivePoints++
			}
		}
	}
	naiveRate := float64(naivePoints) / time.Since(naiveStart).Seconds()

	srv, url := startServer(t, Config{Workers: 1})
	req := VLSweepRequest{Apps: appNames, VLs: vls}
	var resp VLSweepResponse
	sweepStart := time.Now()
	if code := post(t, url+"/v1/vlsweep", &req, &resp); code != http.StatusOK {
		t.Fatalf("vlsweep: status %d", code)
	}
	sweepRate := float64(len(resp.Cells)) / time.Since(sweepStart).Seconds()
	wantCells := len(appNames) * len(cfgNames) * len(mems) * len(vls)
	if len(resp.Cells) != wantCells || resp.Errors != 0 {
		t.Fatalf("cells = %d (errors %d), want %d", len(resp.Cells), resp.Errors, wantCells)
	}

	// Compile-once: exactly one compile per distinct (app, config) program
	// fingerprint, independent of the VL axis length.
	wantPrograms := int64(len(appNames) * len(cfgNames))
	if got := srv.met.compilesTotal.Load(); got != wantPrograms {
		t.Fatalf("compiles_total = %d, want %d (one per distinct program)", got, wantPrograms)
	}
	if sweepRate < 5*naiveRate {
		t.Fatalf("sweep served %.1f cells/s, naive %.1f points/s: want >= 5x", sweepRate, naiveRate)
	}
	t.Logf("sweep %.1f cells/s vs naive %.1f points/s (%.1fx); runs=%d hits=%d aliased=%d",
		sweepRate, naiveRate, sweepRate/naiveRate, resp.Runs, resp.ResultHits, resp.Aliased)
}

// TestVLSweepAuto pins the auto-VL contract: before any history an "auto"
// run serves the default uncapped VL and says so; after a sweep recorded
// the cell's VL curve, "auto" serves the argmin of the recorded cycles
// and matches an explicit run at that VL.
func TestVLSweepAuto(t *testing.T) {
	_, url := startServer(t, Config{Workers: 1})
	const app, cfgName, mem = "gsm_enc", "Vector2-2w", "perfect"

	var cold RunResponse
	auto := RunRequest{App: app, Config: cfgName, Memory: mem, VL: VLAuto, Fresh: true}
	if code := post(t, url+"/v1/run", &auto, &cold); code != http.StatusOK {
		t.Fatalf("auto before history: status %d", code)
	}
	if cold.VLSource != "auto:default" || cold.VL != 0 {
		t.Fatalf("auto before history: vl=%d source=%q, want uncapped auto:default", cold.VL, cold.VLSource)
	}

	sweepReq := VLSweepRequest{
		Apps: []string{app}, Configs: []string{cfgName}, Memories: []string{mem},
		VLs: []int{1, 2, 4, 8, 16},
	}
	var sr VLSweepResponse
	if code := post(t, url+"/v1/vlsweep", &sweepReq, &sr); code != http.StatusOK || sr.Errors != 0 {
		t.Fatalf("sweep: status %d errors %d", code, sr.Errors)
	}

	// The expected pick is the argmin of the recorded per-canonical-VL
	// cycles; ties break toward the lowest canonical VL (0 = uncapped).
	cfg, err := LookupConfig(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	byVL := map[int]int64{}
	for _, c := range sr.Cells {
		byVL[sweep.CanonicalVL(cfg, c.VL)] = c.Cycles
	}
	wantVL, wantCycles := -1, int64(0)
	for vl := 0; vl <= 16; vl++ {
		if cy, ok := byVL[vl]; ok && (wantVL < 0 || cy < wantCycles) {
			wantVL, wantCycles = vl, cy
		}
	}

	var tuned RunResponse
	if code := post(t, url+"/v1/run", &auto, &tuned); code != http.StatusOK {
		t.Fatalf("auto after history: status %d", code)
	}
	if tuned.VLSource != "auto:history" || tuned.VL != wantVL {
		t.Fatalf("auto after history: vl=%d source=%q, want vl=%d auto:history", tuned.VL, tuned.VLSource, wantVL)
	}
	var explicit RunResponse
	exReq := RunRequest{App: app, Config: cfgName, Memory: mem, VL: VLValue(wantVL), Fresh: true}
	if code := post(t, url+"/v1/run", &exReq, &explicit); code != http.StatusOK {
		t.Fatalf("explicit run: status %d", code)
	}
	if !sameResult(t, tuned.Stats, explicit.Stats) {
		t.Fatal("auto-served result differs from the explicit run at the picked VL")
	}
}

// TestVLSweepValidation covers the endpoint's 400 contract.
func TestVLSweepValidation(t *testing.T) {
	_, url := startServer(t, Config{Workers: 1})
	cases := []struct {
		req  VLSweepRequest
		want string
	}{
		{VLSweepRequest{}, "vls is required"},
		{VLSweepRequest{VLs: []int{}}, "vls is required"},
		{VLSweepRequest{VLs: []int{1, 8, 1}}, "duplicate vl 1"},
		{VLSweepRequest{VLs: []int{17}}, "out of range"},
		{VLSweepRequest{VLs: []int{-1}}, "out of range"},
		{VLSweepRequest{VLs: []int{4}, Apps: []string{"nope"}}, "jpeg_enc"},
		{VLSweepRequest{VLs: []int{4}, Configs: []string{"nope"}}, "Vector2-2w"},
		{VLSweepRequest{VLs: []int{4}, Memories: []string{"nope"}}, "realistic"},
	}
	for _, c := range cases {
		var er ErrorResponse
		if code := post(t, url+"/v1/vlsweep", &c.req, &er); code != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400", c.req, code)
		}
		if !strings.Contains(er.Error, c.want) {
			t.Errorf("%+v: error %q does not mention %q", c.req, er.Error, c.want)
		}
	}
}

// TestVLSweepCanceled checks deadline behaviour: an expired sweep still
// answers every requested cell in canonical order, flags the unfinished
// ones canceled, and a mid-simulation cell carries the partial result.
func TestVLSweepCanceled(t *testing.T) {
	_, url := startServer(t, Config{Workers: 1})
	vls := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	base := VLSweepRequest{Apps: []string{"mpeg2_dec"}, VLs: vls}
	// Warm every program of the sub-matrix so the deadline below lands
	// inside the simulation stream, not a compile.
	if code := post(t, url+"/v1/vlsweep", &base, nil); code != http.StatusOK {
		t.Fatalf("warm sweep: status %d", code)
	}
	cfgNames := ConfigNames()
	wantCells := len(cfgNames) * 2 * len(vls)

	// The deadline race is probabilistic (the v3 engine can finish small
	// sweeps inside the 60ms window), so retry a few times.
	sawPartial := false
	for attempt := 0; attempt < 6 && !sawPartial; attempt++ {
		req := base
		req.Fresh = true
		req.TimeoutMS = 60 // the fresh sweep needs ~1s+ of simulation
		var resp VLSweepResponse
		code := post(t, url+"/v1/vlsweep", &req, &resp)
		if code != http.StatusOK && code != http.StatusGatewayTimeout {
			t.Fatalf("status %d", code)
		}
		if len(resp.Cells) != wantCells {
			t.Fatalf("cells = %d, want %d (canceled sweeps still answer every cell)", len(resp.Cells), wantCells)
		}
		if resp.Errors == 0 {
			continue // finished before the deadline; try again
		}
		i, canceled := 0, 0
		for _, cn := range cfgNames {
			for _, mn := range []string{"perfect", "realistic"} {
				for _, vl := range vls {
					c := resp.Cells[i]
					if c.App != "mpeg2_dec" || c.Config != cn || c.Memory != mn || c.VL != vl {
						t.Fatalf("cell %d lost its canonical identity: %+v", i, c)
					}
					if c.Error != "" {
						if !c.Canceled {
							t.Fatalf("cell %d failed without cancellation: %q", i, c.Error)
						}
						canceled++
						if c.Partial != nil {
							sawPartial = true
							if c.Partial.StallCycles != c.Partial.Stalls.Total() {
								t.Fatalf("cell %d partial breakdown does not sum", i)
							}
						}
					}
					i++
				}
			}
		}
		if canceled != resp.Errors {
			t.Fatalf("canceled cells = %d, response says %d errors", canceled, resp.Errors)
		}
	}
	if !sawPartial {
		t.Fatal("no attempt produced a canceled cell with a partial result")
	}
}

// TestVLSweepConcurrentWithRun drives sweeps and auto/explicit runs
// concurrently through the shared caches and autotune table; under
// `make race` this is the data-race check for the sweep path.
func TestVLSweepConcurrentWithRun(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := VLSweepRequest{
				Apps: []string{"gsm_enc"}, Configs: []string{"Vector2-2w"}, Memories: []string{"perfect"},
				VLs: []int{1, 4, 8, 16},
			}
			var resp VLSweepResponse
			if code := post(t, url+"/v1/vlsweep", &req, &resp); code != http.StatusOK || resp.Errors != 0 {
				t.Errorf("sweep: status %d errors %d", code, resp.Errors)
			}
		}()
	}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vl := VLAuto
			if i%2 == 0 {
				vl = VLValue(1 + i)
			}
			req := RunRequest{App: "gsm_enc", Config: "Vector2-2w", Memory: "perfect", VL: vl}
			if code := post(t, url+"/v1/run", &req, nil); code != http.StatusOK {
				t.Errorf("run %d: status %d", i, code)
			}
		}()
	}
	wg.Wait()
}
