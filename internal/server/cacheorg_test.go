package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestLookupMemoryOrganizations checks the served memory axis end to end:
// every organization name resolves, and an unknown name's 400 enumerates
// the full valid-value list (including the organizations), matching the
// LookupApp/LookupConfig style.
func TestLookupMemoryOrganizations(t *testing.T) {
	for _, name := range AllMemoryNames() {
		if _, err := LookupMemory(name); err != nil {
			t.Errorf("LookupMemory(%q): %v", name, err)
		}
	}
	_, err := LookupMemory("nope")
	if err == nil {
		t.Fatal("LookupMemory(nope) succeeded")
	}
	for _, name := range AllMemoryNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate %q", err, name)
		}
	}

	_, url := startServer(t, Config{Workers: 1})
	var er ErrorResponse
	if code := post(t, url+"/v1/run", &RunRequest{App: "gsm_dec", Config: "Vector2-2w", Memory: "nope"}, &er); code != http.StatusBadRequest {
		t.Fatalf("unknown memory: status %d, want 400", code)
	}
	for _, name := range []string{"perfect", "realistic", "realistic:interleaved", "realistic:bicameral", "realistic:banked4", "realistic:banked8"} {
		if !strings.Contains(er.Error, name) {
			t.Errorf("400 body %q does not enumerate %q", er.Error, name)
		}
	}
}

// TestRunCacheOrganizations serves every organization through /v1/run and
// checks the contract of the new axis: each response carries the
// organization's counter snapshot, every organization gets its own
// result-cache fingerprint (distinct ETags), and the interleaved
// organization's simulation metrics are bit-identical to the realistic
// baseline (its own stats block aside).
func TestRunCacheOrganizations(t *testing.T) {
	_, url := startServer(t, Config{Workers: 2})

	postRaw := func(mem string) (*http.Response, RunResponse) {
		t.Helper()
		body, _ := json.Marshal(&RunRequest{App: "mpeg2_enc", Config: "Vector2-2w", Memory: mem})
		resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("memory %q: status %d", mem, resp.StatusCode)
		}
		return resp, out
	}

	orgOf := map[string]string{
		"realistic:interleaved": "interleaved",
		"realistic:bicameral":   "bicameral",
		"realistic:banked4":     "banked4",
		"realistic:banked8":     "banked8",
	}
	_, base := postRaw("realistic")
	if base.Stats.CacheOrg != nil {
		t.Error("realistic run unexpectedly carries organization stats")
	}
	etags := map[string]string{}
	for mem, wantOrg := range orgOf {
		resp, out := postRaw(mem)
		co := out.Stats.CacheOrg
		if co == nil {
			t.Fatalf("%s: no cacheorg stats in response", mem)
		}
		if co.Org != wantOrg {
			t.Errorf("%s: organization %q, want %q", mem, co.Org, wantOrg)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", mem)
		}
		for other, e := range etags {
			if e == etag {
				t.Errorf("%s and %s share ETag %s", mem, other, etag)
			}
		}
		etags[mem] = etag

		if mem == "realistic:interleaved" {
			// Bit-identical to the baseline apart from the organization
			// stats block.
			got := *out.Stats
			got.CacheOrg = nil
			if !sameResult(t, &got, base.Stats) {
				t.Error("realistic:interleaved differs from realistic baseline")
			}
		}
	}
}

// TestSweepAndVLSweepOrganizations runs the batch endpoints over the
// organization axis: every cell must be served, and repeated sweeps hit
// the per-organization result-cache entries.
func TestSweepAndVLSweepOrganizations(t *testing.T) {
	_, url := startServer(t, Config{Workers: 4})

	req := SweepRequest{
		Apps:     []string{"gsm_dec"},
		Configs:  []string{"Vector2-2w"},
		Memories: []string{"realistic", "realistic:interleaved", "realistic:bicameral", "realistic:banked4"},
	}
	var resp SweepResponse
	if code := post(t, url+"/v1/sweep", &req, &resp); code != http.StatusOK {
		t.Fatalf("POST /v1/sweep: status %d", code)
	}
	if resp.Errors != 0 || len(resp.Cells) != len(req.Memories) {
		t.Fatalf("sweep: %d errors, %d cells (want 0, %d)", resp.Errors, len(resp.Cells), len(req.Memories))
	}
	for i, c := range resp.Cells {
		if c.Memory != req.Memories[i] {
			t.Errorf("cell %d memory %q, want %q (canonical order)", i, c.Memory, req.Memories[i])
		}
		if c.Stats == nil {
			t.Errorf("cell %s has no stats", c.Memory)
		}
	}
	// Same sub-matrix again: every cell must come from the result cache,
	// proving organizations occupy distinct, stable fingerprints.
	var again SweepResponse
	if code := post(t, url+"/v1/sweep", &req, &again); code != http.StatusOK {
		t.Fatalf("repeat sweep: status %d", code)
	}
	for _, c := range again.Cells {
		if c.Cache != "result-hit" {
			t.Errorf("repeat cell %s served %q, want result-hit", c.Memory, c.Cache)
		}
	}

	vreq := VLSweepRequest{
		Apps:     []string{"gsm_dec"},
		Configs:  []string{"Vector2-2w"},
		Memories: []string{"realistic:banked8"},
		VLs:      []int{0, 8},
	}
	var vresp VLSweepResponse
	if code := post(t, url+"/v1/vlsweep", &vreq, &vresp); code != http.StatusOK {
		t.Fatalf("POST /v1/vlsweep: status %d", code)
	}
	if vresp.Errors != 0 || len(vresp.Cells) != 2 {
		t.Fatalf("vlsweep: %d errors, %d cells (want 0, 2)", vresp.Errors, len(vresp.Cells))
	}
	for _, c := range vresp.Cells {
		if c.Memory != "realistic:banked8" || c.Cycles <= 0 {
			t.Errorf("vlsweep cell %+v: want banked8 with positive cycles", c)
		}
	}
}
