package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
)

// autotune is the daemon's VL history: per (app, configuration, memory
// model) it records the cycle count observed at each canonical VL cap, and
// answers `"vl":"auto"` requests with the recorded argmin. Every
// successful /v1/run serve and every unique /v1/vlsweep run feeds it, so
// one sweep is enough to make auto requests pick the measured optimum.
type autotune struct {
	mu      sync.Mutex
	entries map[string]*autoEntry

	// picksHistory counts auto requests answered from recorded history;
	// picksDefault counts those served before any history existed (the
	// default uncapped VL).
	picksHistory atomic.Int64
	picksDefault atomic.Int64
}

// autoEntry is one cell's VL history. cycles is indexed by canonical VL
// (0 = uncapped .. isa.MaxVL-1); 0 means "not recorded yet" (no real run
// finishes in zero cycles).
type autoEntry struct {
	app, cfgName, mem string
	cycles            [isa.MaxVL]int64
}

func newAutotune() *autotune {
	return &autotune{entries: make(map[string]*autoEntry)}
}

func autoKey(app string, cfg *machine.Config, mem core.MemoryModel) string {
	return fmt.Sprintf("%s|%s|%s", app, configKey(cfg), mem)
}

// record stores the cycles observed for one (cell, canonical VL) point.
// Re-recording overwrites: the simulator is deterministic, so the value
// can only change when the recorded VL spelling maps to the same run.
func (t *autotune) record(app string, cfg *machine.Config, mem core.MemoryModel, vl int, cycles int64) {
	if vl < 0 || vl >= isa.MaxVL || cycles <= 0 {
		return
	}
	key := autoKey(app, cfg, mem)
	t.mu.Lock()
	e := t.entries[key]
	if e == nil {
		e = &autoEntry{app: app, cfgName: cfg.Name, mem: mem.String()}
		t.entries[key] = e
	}
	e.cycles[vl] = cycles
	t.mu.Unlock()
}

// best returns the recorded VL with the fewest cycles for the cell
// (ascending VL index breaks ties, so the uncapped run wins over an
// equal-cycle cap). ok is false when no history exists yet; callers then
// fall back to the default uncapped VL.
func (t *autotune) best(app string, cfg *machine.Config, mem core.MemoryModel) (vl int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[autoKey(app, cfg, mem)]
	if e == nil {
		return 0, false
	}
	bestVL, bestCycles := -1, int64(0)
	for v, c := range e.cycles {
		if c > 0 && (bestVL < 0 || c < bestCycles) {
			bestVL, bestCycles = v, c
		}
	}
	if bestVL < 0 {
		return 0, false
	}
	return bestVL, true
}

// writePrometheus renders the autotune tables: entry count, pick counters
// by source, and the current best VL per recorded cell (sorted label
// order, so the output is deterministic).
func (t *autotune) writePrometheus(w io.Writer) {
	t.mu.Lock()
	keys := make([]string, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type bestRow struct {
		app, cfg, mem string
		vl            int64
	}
	rows := make([]bestRow, 0, len(keys))
	for _, k := range keys {
		e := t.entries[k]
		bestVL, bestCycles := -1, int64(0)
		for v, c := range e.cycles {
			if c > 0 && (bestVL < 0 || c < bestCycles) {
				bestVL, bestCycles = v, c
			}
		}
		if bestVL >= 0 {
			rows = append(rows, bestRow{e.app, e.cfgName, e.mem, int64(bestVL)})
		}
	}
	entries := int64(len(t.entries))
	t.mu.Unlock()

	fmt.Fprintf(w, "# HELP vsimdd_autotune_entries Cells with recorded VL history.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_autotune_entries gauge\n")
	fmt.Fprintf(w, "vsimdd_autotune_entries %d\n", entries)
	fmt.Fprintf(w, "# HELP vsimdd_autotune_picks_total Auto-VL requests, by whether recorded history answered them.\n")
	fmt.Fprintf(w, "# TYPE vsimdd_autotune_picks_total counter\n")
	fmt.Fprintf(w, "vsimdd_autotune_picks_total{source=\"history\"} %d\n", t.picksHistory.Load())
	fmt.Fprintf(w, "vsimdd_autotune_picks_total{source=\"default\"} %d\n", t.picksDefault.Load())
	fmt.Fprintf(w, "# HELP vsimdd_autotune_best_vl Best-known canonical VL cap per cell (0 = uncapped).\n")
	fmt.Fprintf(w, "# TYPE vsimdd_autotune_best_vl gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "vsimdd_autotune_best_vl{app=%q,config=%q,memory=%q} %d\n", r.app, r.cfg, r.mem, r.vl)
	}
}
