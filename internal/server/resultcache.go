package server

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sim"
)

// resultCache is a sharded LRU of finished simulation results keyed by
// the canonical fingerprint of a fully resolved request (application,
// code variant, configuration hash, memory model, VL cap). The simulator
// is deterministic, so a cached result is bit-identical to re-running the
// cell — serving it skips the worker pool and the cycle loop entirely.
//
// Each entry doubles as a single-flight latch: the goroutine that
// creates it (the leader) runs the simulation and completes the entry;
// identical requests arriving in the meantime coalesce — they wait on
// the entry's done channel instead of queueing N copies of the same run
// behind the pool. Failed and canceled runs are never cached: complete
// removes their entry so the next identical request retries.
type resultCache struct {
	shards   []resultShard
	perShard int
}

type resultShard struct {
	mu    sync.Mutex
	byKey map[string]*list.Element
	order *list.List // front = most recently used; values are *resultEntry
}

// resultEntry is one cached (or in-flight) cell. res and err are written
// exactly once, before done is closed; readers must wait on done first.
type resultEntry struct {
	key  string
	done chan struct{}
	res  *sim.Result
	err  error
}

// newResultCache builds a cache holding at most capacity results across
// nShards shards (both floored at 1; capacity is rounded up to a
// multiple of the shard count).
func newResultCache(capacity, nShards int) *resultCache {
	if nShards < 1 {
		nShards = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	perShard := (capacity + nShards - 1) / nShards
	c := &resultCache{shards: make([]resultShard, nShards), perShard: perShard}
	for i := range c.shards {
		c.shards[i].byKey = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// acquire returns the entry for key, creating it when absent. leader is
// true for the creator, which must run the cell and call complete; every
// other caller waits on the entry's done channel. Evicting an in-flight
// entry only drops it from the index — waiters hold the entry pointer
// and still receive its result when the leader completes it.
func (c *resultCache) acquire(key string) (e *resultEntry, leader bool) {
	s := &c.shards[shardIndex(key, len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*resultEntry), false
	}
	e = &resultEntry{key: key, done: make(chan struct{})}
	s.byKey[key] = s.order.PushFront(e)
	if s.order.Len() > c.perShard {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*resultEntry).key)
	}
	return e, true
}

// complete publishes the leader's outcome and wakes every coalesced
// waiter. Errors (including cancellations) are not cacheable: the entry
// is removed so the next identical request runs fresh.
func (c *resultCache) complete(e *resultEntry, res *sim.Result, err error) {
	e.res, e.err = res, err
	close(e.done)
	if err != nil {
		c.remove(e)
	}
}

// peek returns the finished, successful result for key without blocking.
// In-flight entries report a miss: the sweep executor calls peek from
// worker goroutines that may be holding the pool's only worker, so it
// must never wait on a leader that could be queued behind it.
func (c *resultCache) peek(key string) (*sim.Result, bool) {
	s := &c.shards[shardIndex(key, len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*resultEntry)
	select {
	case <-e.done:
	default:
		return nil, false
	}
	if e.err != nil {
		return nil, false
	}
	s.order.MoveToFront(el)
	return e.res, true
}

// publish inserts an already-completed result under key, unless an entry
// (finished or in-flight) exists — an in-flight leader owns its slot and
// completes it itself. The sweep executor publishes this way instead of
// through acquire/complete so its group workers never block.
func (c *resultCache) publish(key string, res *sim.Result) {
	s := &c.shards[shardIndex(key, len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byKey[key]; ok {
		return
	}
	e := &resultEntry{key: key, done: make(chan struct{}), res: res}
	close(e.done)
	s.byKey[key] = s.order.PushFront(e)
	if s.order.Len() > c.perShard {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*resultEntry).key)
	}
}

// remove drops e from the index if it is still the entry indexed under
// its key (a newer entry for the same key is left alone).
func (c *resultCache) remove(e *resultEntry) {
	s := &c.shards[shardIndex(e.key, len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[e.key]; ok && el.Value.(*resultEntry) == e {
		s.order.Remove(el)
		delete(s.byKey, e.key)
	}
}

// len returns the number of indexed entries across all shards.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// fingerprint canonically identifies the cell a resolved request maps
// to: application, code variant, full configuration hash (covering
// lane/issue overrides), memory model and VL cap. Requests with the same
// fingerprint are guaranteed the same sim.Result.
func (sp *runSpec) fingerprint() string {
	v := report.VariantFor(sp.cfg)
	return fmt.Sprintf("%s|%d|%s|%s|vl%d", sp.app.Name, v, configKey(sp.cfg), sp.mem, sp.vlCap)
}

// etagFor derives the strong ETag served with a cell's response from its
// fingerprint. Determinism makes the fingerprint a complete validator:
// the same fingerprint always names the same representation.
func etagFor(fingerprint string) string {
	h := fnv.New64a()
	h.Write([]byte(fingerprint))
	return fmt.Sprintf("\"%016x\"", h.Sum64())
}

// etagMatch reports whether an If-None-Match header matches etag. The
// header may carry a comma-separated list or "*"; weak validators
// (W/"...") compare by their opaque tag, which is exact here because the
// ETag is a pure function of the fingerprint.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}
