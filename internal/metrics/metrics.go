// Package metrics is the observability vocabulary of the simulator: the
// run-time stall causes of the paper's narrative (Figures 5-7 are all
// explanations of where cycles go), per-cause stall breakdowns, issue-slot
// and functional-unit utilization histograms, and bounded machine-readable
// trace writers.
//
// The package is a leaf (standard library only) so every layer can share
// its types: internal/mem tags the extra latency of each access with the
// causes that produced it, internal/sim attributes every run-time stall
// cycle to exactly one cause, internal/sched contributes static occupancy
// profiles, and internal/report exports the whole evaluation matrix as
// JSONL.
//
// Two exact-sum invariants make the layer a correctness oracle:
//
//   - a StallBreakdown filled through Attribute sums exactly to the stall
//     cycles it was fed (any unexplained residual lands in CauseOther);
//   - a Utilization finished with Finish sums, bucket-wise, exactly to the
//     executed cycle count.
package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Cause identifies why the in-order, lock-step machine stalled: the
// compiler schedules every memory operation as a stride-one cache hit, and
// the processor stalls at run time when the assumption fails. Causes are
// listed in attribution priority order (see StallBreakdown.Attribute).
type Cause uint8

// The stall causes. CauseOther must stay last: it absorbs any stall
// cycles the memory model could not explain, keeping breakdowns exact.
const (
	// CauseL3Miss: a line was filled from main memory (missed every cache).
	CauseL3Miss Cause = iota
	// CauseL2Miss: a line was filled into the L2 vector cache from the L3.
	CauseL2Miss
	// CauseL1Miss: a scalar or µSIMD access missed the L1 and was served
	// by the L2 (the base L2 latency, excluding any fill below it).
	CauseL1Miss
	// CauseEdgeLine: a partially covered edge line of an unaligned
	// stride-one vector store had to be fetched instead of write-validated.
	CauseEdgeLine
	// CauseCoherency: a dirty L1 line covering a vector access was flushed
	// to the L2 and invalidated (exclusive-bit policy).
	CauseCoherency
	// CauseMigration: a bicameral split L2 served an access from the
	// opposite partition, paying the cross-partition line migration
	// (internal/cacheorg).
	CauseMigration
	// CauseBankConflict: a strided vector access whose stride maps every
	// element onto the same L2 bank, serializing the banked port.
	CauseBankConflict
	// CauseStride: the non-unit-stride slow path (one element per cycle
	// instead of the full port width).
	CauseStride
	// CauseOther: stall cycles not explained by the memory model (e.g. a
	// compile-time vector length shorter than the run-time one).
	CauseOther
)

// NumCauses is the number of stall causes.
const NumCauses = int(CauseOther) + 1

var causeNames = [NumCauses]string{
	"l3_miss", "l2_miss", "l1_miss", "edge_line",
	"coherency", "migration", "bank_conflict", "stride", "other",
}

// String returns the cause's snake_case name as used in JSON exports.
func (c Cause) String() string {
	if int(c) < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Causes lists every cause in attribution order.
func Causes() []Cause {
	out := make([]Cause, NumCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// Components is the per-cause extra service latency of one memory access,
// in cycles, beyond the statically scheduled assumption (stride-one hit).
// The memory model fills one per access; the simulator clamps it against
// the actual stall (schedule slack may absorb part of the latency).
type Components [NumCauses]int64

// Reset zeroes the components for the next access.
func (c *Components) Reset() { *c = Components{} }

// Add charges extra latency cycles to a cause.
func (c *Components) Add(cause Cause, cycles int64) { c[cause] += cycles }

// StallBreakdown counts stall cycles per cause. The zero value is ready to
// use.
type StallBreakdown [NumCauses]int64

// Total returns the stall cycles summed over all causes.
func (b *StallBreakdown) Total() int64 {
	var n int64
	for _, v := range b {
		n += v
	}
	return n
}

// AddBreakdown accumulates another breakdown into b.
func (b *StallBreakdown) AddBreakdown(o *StallBreakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// Attribute splits one stall of s cycles across the access's latency
// components, walking the causes in declaration (priority) order and
// clamping each share to the cycles still unexplained; any residual is
// charged to CauseOther. The per-stall shares are added to b and also
// returned (their entries sum exactly to s), so callers can feed the same
// stall to several aggregates or a trace. comp may be nil (no detail:
// everything lands in CauseOther).
func (b *StallBreakdown) Attribute(s int64, comp *Components) StallBreakdown {
	var take StallBreakdown
	if s <= 0 {
		return take
	}
	rem := s
	if comp != nil {
		for i := 0; i < NumCauses-1 && rem > 0; i++ {
			t := comp[i]
			if t > rem {
				t = rem
			}
			if t > 0 {
				take[i] = t
				rem -= t
			}
		}
	}
	if rem > 0 {
		take[CauseOther] = rem
	}
	b.AddBreakdown(&take)
	return take
}

// MarshalJSON renders the breakdown as an object with one key per cause,
// in attribution order (deterministic field order for golden tests).
func (b StallBreakdown) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, v := range b {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:%d", Cause(i).String(), v)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON parses the cause-keyed object form written by
// MarshalJSON. Unknown causes are an error: a consumer compiled against an
// older cause list must not silently drop cycles.
func (b *StallBreakdown) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*b = StallBreakdown{}
	for i := 0; i < NumCauses; i++ {
		name := Cause(i).String()
		if v, ok := m[name]; ok {
			b[i] = v
			delete(m, name)
		}
	}
	for k := range m {
		return fmt.Errorf("metrics: unknown stall cause %q", k)
	}
	return nil
}

// Utilization aggregates occupancy histograms over a run: IssueSlots[k] is
// the number of cycles in which exactly k operations issued, and
// Units[class][k] the number of cycles in which exactly k instances of the
// functional-unit class were busy. After Finish, every histogram sums
// exactly to the run's cycle count (stall and drain cycles land in bucket
// zero).
type Utilization struct {
	IssueSlots []int64            `json:"issue_slots"`
	Units      map[string][]int64 `json:"units"`
}

// NewUtilization returns an empty utilization aggregate.
func NewUtilization() *Utilization {
	return &Utilization{Units: make(map[string][]int64)}
}

func grow(h []int64, k int) []int64 {
	for len(h) <= k {
		h = append(h, 0)
	}
	return h
}

// AddIssue counts cycles with exactly k issued operations (k >= 1; the
// zero bucket is derived by Finish).
func (u *Utilization) AddIssue(k int, cycles int64) {
	u.IssueSlots = grow(u.IssueSlots, k)
	u.IssueSlots[k] += cycles
}

// AddUnit counts cycles with exactly k busy instances of the unit class
// (k >= 1; the zero bucket is derived by Finish).
func (u *Utilization) AddUnit(class string, k int, cycles int64) {
	u.Units[class] = grow(u.Units[class], k)
	u.Units[class][k] += cycles
}

// Finish derives every zero bucket so that each histogram sums exactly to
// total. A negative zero bucket (more busy cycles counted than executed)
// is left in place for the invariant tests to catch.
func (u *Utilization) Finish(total int64) {
	fix := func(h []int64) []int64 {
		h = grow(h, 0)
		var busy int64
		for _, v := range h[1:] {
			busy += v
		}
		h[0] = total - busy
		return h
	}
	u.IssueSlots = fix(u.IssueSlots)
	for class, h := range u.Units {
		u.Units[class] = fix(h)
	}
}

// Total returns the cycles covered by the issue-slot histogram.
func (u *Utilization) Total() int64 {
	var n int64
	for _, v := range u.IssueSlots {
		n += v
	}
	return n
}
