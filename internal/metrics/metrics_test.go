package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCauseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Causes() {
		name := c.String()
		if name == "" || strings.Contains(name, "cause(") {
			t.Errorf("cause %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate cause name %q", name)
		}
		seen[name] = true
	}
	if Cause(200).String() != "cause(200)" {
		t.Error("out-of-range cause must not panic")
	}
}

func TestAttributeExactSum(t *testing.T) {
	comp := &Components{}
	comp.Add(CauseL3Miss, 500)
	comp.Add(CauseStride, 11)
	var b StallBreakdown
	// Schedule slack absorbed part of the latency: the stall is smaller
	// than the components, so later causes are clamped away.
	take := b.Attribute(503, comp)
	if got := take.Total(); got != 503 {
		t.Fatalf("per-stall shares sum to %d, want 503", got)
	}
	if take[CauseL3Miss] != 500 || take[CauseStride] != 3 {
		t.Fatalf("clamped attribution wrong: %+v", take)
	}
	// A stall larger than the components leaves a residual in CauseOther.
	take = b.Attribute(520, comp)
	if take[CauseOther] != 9 || take.Total() != 520 {
		t.Fatalf("residual attribution wrong: %+v", take)
	}
	if b.Total() != 503+520 {
		t.Fatalf("aggregate breakdown = %d, want %d", b.Total(), 503+520)
	}
	// No detail at all: everything is unexplained.
	var nb StallBreakdown
	take = nb.Attribute(7, nil)
	if take[CauseOther] != 7 {
		t.Fatalf("nil components must land in CauseOther, got %+v", take)
	}
	if got := nb.Attribute(0, comp); got.Total() != 0 {
		t.Fatalf("zero stall must attribute nothing, got %+v", got)
	}
}

func TestStallBreakdownJSONDeterministic(t *testing.T) {
	var b StallBreakdown
	b[CauseL2Miss] = 3
	b[CauseOther] = 1
	out, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"l3_miss":0,"l2_miss":3,"l1_miss":0,"edge_line":0,"coherency":0,"migration":0,"bank_conflict":0,"stride":0,"other":1}`
	if string(out) != want {
		t.Fatalf("breakdown JSON = %s, want %s", out, want)
	}
}

func TestStallBreakdownJSONRoundTrip(t *testing.T) {
	var b StallBreakdown
	b[CauseL3Miss] = 500
	b[CauseStride] = 7
	out, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back StallBreakdown
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back != b {
		t.Fatalf("round trip changed breakdown: %v -> %v", b, back)
	}
	if err := json.Unmarshal([]byte(`{"warp_drive":1}`), &back); err == nil {
		t.Error("unknown cause must not unmarshal silently")
	}
}

func TestUtilizationFinish(t *testing.T) {
	u := NewUtilization()
	u.AddIssue(2, 10)
	u.AddIssue(1, 5)
	u.AddUnit("int", 1, 12)
	u.Finish(40)
	if u.Total() != 40 {
		t.Fatalf("issue histogram sums to %d, want 40", u.Total())
	}
	if u.IssueSlots[0] != 25 {
		t.Fatalf("zero bucket = %d, want 25", u.IssueSlots[0])
	}
	var unitTotal int64
	for _, v := range u.Units["int"] {
		unitTotal += v
	}
	if unitTotal != 40 || u.Units["int"][0] != 28 {
		t.Fatalf("unit histogram wrong: %v", u.Units["int"])
	}
}

func TestTraceWriterBound(t *testing.T) {
	type ev struct {
		Event string `json:"event"`
		N     int    `json:"n"`
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, 3)
	for i := 0; i < 10; i++ {
		tw.Event(ev{"tick", i})
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	if !tw.Truncated() || tw.Emitted() != 3 {
		t.Fatalf("emitted=%d truncated=%v, want 3/true", tw.Emitted(), tw.Truncated())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 events + marker:\n%s", len(lines), buf.String())
	}
	if lines[3] != `{"event":"truncated","emitted":3}` {
		t.Fatalf("marker line = %q", lines[3])
	}
	// Unbounded writer never truncates.
	buf.Reset()
	tw = NewTraceWriter(&buf, 0)
	for i := 0; i < 5; i++ {
		tw.Event(ev{"tick", i})
	}
	if tw.Truncated() || tw.Emitted() != 5 {
		t.Fatalf("unbounded writer truncated: emitted=%d", tw.Emitted())
	}
}

func TestLineLimitWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewLineLimitWriter(&buf, 2)
	for i := 0; i < 5; i++ {
		if _, err := w.Write([]byte("line\n")); err != nil {
			t.Fatal(err)
		}
	}
	want := "line\nline\n... truncated after 2 lines\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}

	// Under the limit: no marker.
	buf.Reset()
	w = NewLineLimitWriter(&buf, 10)
	w.Write([]byte("a\nb\n"))
	if buf.String() != "a\nb\n" {
		t.Fatalf("under-limit output altered: %q", buf.String())
	}

	// Lines split across writes still count once, and the marker lands
	// exactly at the boundary even when one chunk carries several lines.
	buf.Reset()
	w = NewLineLimitWriter(&buf, 2)
	w.Write([]byte("par"))
	w.Write([]byte("tial\nsecond\nthird\nfourth\n"))
	want = "partial\nsecond\n... truncated after 2 lines\n"
	if buf.String() != want {
		t.Fatalf("split-write handling: got %q, want %q", buf.String(), want)
	}
}
