package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceWriter emits a bounded JSONL event stream: one JSON object per
// line, at most limit events, then a single
//
//	{"event":"truncated","emitted":N}
//
// marker after which everything else is discarded. Event values should be
// structs (encoding/json preserves struct field order, keeping the stream
// deterministic for golden tests). Errors are sticky; check Err once at
// the end rather than after every event.
type TraceWriter struct {
	w         io.Writer
	limit     int
	emitted   int
	truncated bool
	err       error
}

// NewTraceWriter returns a trace writer bounded to limit events. A limit
// of zero or less means unbounded.
func NewTraceWriter(w io.Writer, limit int) *TraceWriter {
	return &TraceWriter{w: w, limit: limit}
}

// Event appends one event line, or the truncation marker if the bound was
// just exceeded.
func (t *TraceWriter) Event(v any) {
	if t.err != nil || t.truncated {
		return
	}
	if t.limit > 0 && t.emitted >= t.limit {
		t.truncated = true
		_, t.err = fmt.Fprintf(t.w, "{\"event\":\"truncated\",\"emitted\":%d}\n", t.emitted)
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		t.err = err
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		return
	}
	t.emitted++
}

// Emitted returns the number of event lines written (excluding the
// truncation marker).
func (t *TraceWriter) Emitted() int { return t.emitted }

// Truncated reports whether the event bound was exceeded.
func (t *TraceWriter) Truncated() bool { return t.truncated }

// Err returns the first write or marshal error, if any.
func (t *TraceWriter) Err() error { return t.err }

// lineLimitWriter forwards at most limit lines and then prints a
// truncation marker once; everything after it is swallowed (Write always
// reports full success so producers keep running undisturbed).
type lineLimitWriter struct {
	w         io.Writer
	remaining int
	done      bool
	limit     int
}

// NewLineLimitWriter wraps w so that at most limit lines pass through,
// followed by a final "... truncated after N lines" marker. It fixes the
// silent mid-run cutoff of bounded text traces: the reader can tell an
// exhausted budget from a finished trace.
func NewLineLimitWriter(w io.Writer, limit int) io.Writer {
	return &lineLimitWriter{w: w, remaining: limit, limit: limit}
}

func (l *lineLimitWriter) Write(p []byte) (int, error) {
	n := len(p)
	if l.done {
		return n, nil
	}
	for len(p) > 0 {
		if l.remaining == 0 {
			l.done = true
			fmt.Fprintf(l.w, "... truncated after %d lines\n", l.limit)
			return n, nil
		}
		i := 0
		for ; i < len(p); i++ {
			if p[i] == '\n' {
				break
			}
		}
		if i == len(p) {
			// Partial line: forward it; the newline (and the budget
			// decrement) arrives with a later write.
			if _, err := l.w.Write(p); err != nil {
				return n, err
			}
			return n, nil
		}
		if _, err := l.w.Write(p[:i+1]); err != nil {
			return n, err
		}
		p = p[i+1:]
		l.remaining--
	}
	return n, nil
}
