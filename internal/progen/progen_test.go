package progen

import (
	"bytes"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(42, 80)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Arena, b.Arena) {
		t.Error("same seed produced different mirrors")
	}
	if len(a.Func.Blocks) != len(b.Func.Blocks) {
		t.Errorf("same seed produced %d vs %d blocks", len(a.Func.Blocks), len(b.Func.Blocks))
	}
	// Note 43 would collide with 42: the generator forces the low seed bit
	// to keep the xorshift state non-zero.
	c, err := Generate(44, 80)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Arena, c.Arena) {
		t.Error("different seeds produced identical mirrors")
	}
}

func TestGenerateProducesValidIR(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		p, err := Generate(seed, 40)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Func.Verify(); err != nil {
			t.Fatalf("seed %d: invalid IR: %v", seed, err)
		}
		if len(p.Arena) == 0 {
			t.Fatalf("seed %d: empty mirror", seed)
		}
	}
}

func TestGenerateClampsNops(t *testing.T) {
	p, err := Generate(7, -5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Func.Verify(); err != nil {
		t.Fatal(err)
	}
}
