// Package progen generates random-but-valid IR programs together with an
// independently computed mirror of their final memory state, for
// differential testing and fuzzing. The generator maintains its own model
// of the architectural state while emitting IR; after simulating the
// program, the machine's arena must match the mirror byte for byte — on
// every configuration, under every memory model — exercising the verifier,
// the scheduler and the interpreter together on program shapes the
// hand-written kernels never produce.
//
// The package deliberately imports only ir, isa and simd (not sim), so
// packages below the simulator — sched's fuzzer in particular — can use it
// without an import cycle. The mirror recomputes packed semantics through
// internal/simd directly, independent of the interpreter under test.
package progen

import (
	"encoding/binary"
	"fmt"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// Program is one generated program: the IR function and the expected
// contents of its data arena (placed at ir.DataBase) after execution.
type Program struct {
	Func *ir.Func
	// Arena is the mirror of the program's data segment after a correct
	// execution; its address is ir.DataBase.
	Arena []byte
}

// genState is the generator's mirror of the architectural state.
type genState struct {
	rng    uint64
	b      *ir.Builder
	intv   []uint64 // mirrored integer registers
	intr   []ir.Reg
	simdv  []uint64
	simdr  []ir.Reg
	vecv   [][16]uint64
	vecr   []ir.Reg
	vl     int
	arena  int64 // data segment base for random memory traffic
	asize  int64
	mirror []byte // mirrored arena contents
}

func (g *genState) next() uint64 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 7
	g.rng ^= g.rng << 17
	return g.rng * 0x9E3779B97F4A7C15
}

func (g *genState) pick(n int) int { return int(g.next() % uint64(n)) }

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// packedEval recomputes a two-source packed word operation for the mirror
// (independent of the interpreter's implementation).
func packedEval(op isa.Opcode, w simd.Width, a, b uint64) (uint64, error) {
	switch op {
	case isa.PADD:
		return simd.Add(a, b, w), nil
	case isa.PSUB:
		return simd.Sub(a, b, w), nil
	case isa.PADDS:
		return simd.AddS(a, b, w), nil
	case isa.PSUBS:
		return simd.SubS(a, b, w), nil
	case isa.PADDU:
		return simd.AddU(a, b, w), nil
	case isa.PSUBU:
		return simd.SubU(a, b, w), nil
	case isa.PMULL:
		return simd.MulLo(a, b, w), nil
	case isa.PMULH:
		return simd.MulHi(a, b, w), nil
	case isa.PMADD:
		return simd.MAdd(a, b), nil
	case isa.PAVG:
		return simd.AvgU(a, b, w), nil
	case isa.PMINU:
		return simd.MinU(a, b, w), nil
	case isa.PMAXU:
		return simd.MaxU(a, b, w), nil
	case isa.PMINS:
		return simd.MinS(a, b, w), nil
	case isa.PMAXS:
		return simd.MaxS(a, b, w), nil
	case isa.PABSD:
		return simd.AbsDiffU(a, b, w), nil
	case isa.PSAD:
		return simd.SAD(a, b), nil
	case isa.PAND:
		return simd.And(a, b), nil
	case isa.POR:
		return simd.Or(a, b), nil
	case isa.PXOR:
		return simd.Xor(a, b), nil
	case isa.PANDN:
		return simd.AndNot(a, b), nil
	case isa.PCMPEQ:
		return simd.CmpEq(a, b, w), nil
	case isa.PCMPGT:
		return simd.CmpGtS(a, b, w), nil
	case isa.PACKSS:
		return simd.PackSS(a, b, w), nil
	case isa.PACKUS:
		return simd.PackUS(a, b, w), nil
	case isa.PUNPCKL:
		return simd.UnpackLo(a, b, w), nil
	case isa.PUNPCKH:
		return simd.UnpackHi(a, b, w), nil
	}
	return 0, fmt.Errorf("not a packed opcode: %s", op.Name())
}

// action is one emitted operation together with its mirror-side effect;
// loops replay the mirror effects without re-emitting.
type action func()

// emitScalarOp emits one random scalar ALU op and returns its mirror.
func (g *genState) emitScalarOp() action {
	d := g.pick(len(g.intr))
	a := g.pick(len(g.intr))
	b := g.pick(len(g.intr))
	ops := []isa.Opcode{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SRA, isa.CMPEQ, isa.CMPLT, isa.CMPLTU, isa.CMPNE, isa.CMPLE}
	op := ops[g.pick(len(ops))]
	g.b.BinTo(op, g.intr[d], g.intr[a], g.intr[b])
	return func() {
		x, y := g.intv[a], g.intv[b]
		var r uint64
		switch op {
		case isa.ADD:
			r = uint64(int64(x) + int64(y))
		case isa.SUB:
			r = uint64(int64(x) - int64(y))
		case isa.MUL:
			r = uint64(int64(x) * int64(y))
		case isa.AND:
			r = x & y
		case isa.OR:
			r = x | y
		case isa.XOR:
			r = x ^ y
		case isa.SHL:
			r = x << (y & 63)
		case isa.SHR:
			r = x >> (y & 63)
		case isa.SRA:
			r = uint64(int64(x) >> (y & 63))
		case isa.CMPEQ:
			r = boolTo(x == y)
		case isa.CMPNE:
			r = boolTo(x != y)
		case isa.CMPLT:
			r = boolTo(int64(x) < int64(y))
		case isa.CMPLE:
			r = boolTo(int64(x) <= int64(y))
		case isa.CMPLTU:
			r = boolTo(x < y)
		}
		g.intv[d] = r
	}
}

// emitPackedOp emits one random µSIMD op.
func (g *genState) emitPackedOp() action {
	d := g.pick(len(g.simdr))
	a := g.pick(len(g.simdr))
	b := g.pick(len(g.simdr))
	type pk struct {
		op isa.Opcode
		w  simd.Width
	}
	ops := []pk{
		{isa.PADD, simd.W8}, {isa.PADD, simd.W16}, {isa.PADD, simd.W32},
		{isa.PSUB, simd.W16}, {isa.PADDS, simd.W16}, {isa.PSUBS, simd.W8},
		{isa.PADDU, simd.W8}, {isa.PSUBU, simd.W16},
		{isa.PMULL, simd.W16}, {isa.PMULH, simd.W16}, {isa.PMADD, simd.W16},
		{isa.PAVG, simd.W8}, {isa.PMINU, simd.W8}, {isa.PMAXU, simd.W8},
		{isa.PMINS, simd.W16}, {isa.PMAXS, simd.W16}, {isa.PABSD, simd.W8},
		{isa.PAND, 0}, {isa.POR, 0}, {isa.PXOR, 0}, {isa.PANDN, 0},
		{isa.PCMPEQ, simd.W16}, {isa.PCMPGT, simd.W8},
		{isa.PACKSS, simd.W16}, {isa.PACKUS, simd.W16},
		{isa.PUNPCKL, simd.W8}, {isa.PUNPCKH, simd.W32},
		{isa.PSAD, simd.W8},
	}
	p := ops[g.pick(len(ops))]
	g.b.PTo(p.op, p.w, g.simdr[d], g.simdr[a], g.simdr[b])
	return func() {
		v, err := packedEval(p.op, p.w, g.simdv[a], g.simdv[b])
		if err != nil {
			panic(err)
		}
		g.simdv[d] = v
	}
}

// emitVectorOp emits one random vector compute op under the current VL.
func (g *genState) emitVectorOp() action {
	d := g.pick(len(g.vecr))
	a := g.pick(len(g.vecr))
	b := g.pick(len(g.vecr))
	type pk struct {
		vop, pop isa.Opcode
		w        simd.Width
	}
	ops := []pk{
		{isa.VADD, isa.PADD, simd.W16}, {isa.VSUB, isa.PSUB, simd.W8},
		{isa.VADDS, isa.PADDS, simd.W16}, {isa.VMULL, isa.PMULL, simd.W16},
		{isa.VAVG, isa.PAVG, simd.W8}, {isa.VMINU, isa.PMINU, simd.W8},
		{isa.VXOR, isa.PXOR, 0}, {isa.VCMPGT, isa.PCMPGT, simd.W16},
		{isa.VUNPCKL, isa.PUNPCKL, simd.W16}, {isa.VPACKUS, isa.PACKUS, simd.W16},
	}
	p := ops[g.pick(len(ops))]
	g.b.VTo(p.vop, p.w, g.vecr[d], g.vecr[a], g.vecr[b])
	vl := g.vl
	return func() {
		for i := 0; i < vl; i++ {
			v, err := packedEval(p.pop, p.w, g.vecv[a][i], g.vecv[b][i])
			if err != nil {
				panic(err)
			}
			g.vecv[d][i] = v
		}
	}
}

// emitStore emits a store of a random int register to a random aligned
// arena slot.
func (g *genState) emitStore() action {
	r := g.pick(len(g.intr))
	slot := int64(g.pick(int(g.asize/8))) * 8
	base := g.b.Const(g.arena)
	g.b.Store(isa.STD, g.intr[r], base, slot, 1+g.pick(3))
	return func() {
		binary.LittleEndian.PutUint64(g.mirror[slot:], g.intv[r])
	}
}

// emitLoad emits a load from a random aligned arena slot.
func (g *genState) emitLoad() action {
	r := g.pick(len(g.intr))
	slot := int64(g.pick(int(g.asize/8))) * 8
	base := g.b.Const(g.arena)
	sz := []isa.Opcode{isa.LDD, isa.LDW, isa.LDHU, isa.LDBU, isa.LDB, isa.LDH, isa.LDWU}[g.pick(7)]
	g.b.Emit(ir.Op{Opcode: sz, Dst: []ir.Reg{g.intr[r]}, Src: []ir.Reg{base},
		Imm: slot, Alias: 1 + g.pick(3)})
	return func() {
		raw := binary.LittleEndian.Uint64(g.mirror[slot:])
		switch sz {
		case isa.LDD:
			g.intv[r] = raw
		case isa.LDW:
			g.intv[r] = uint64(int64(int32(raw)))
		case isa.LDWU:
			g.intv[r] = uint64(uint32(raw))
		case isa.LDH:
			g.intv[r] = uint64(int64(int16(raw)))
		case isa.LDHU:
			g.intv[r] = uint64(uint16(raw))
		case isa.LDB:
			g.intv[r] = uint64(int64(int8(raw)))
		case isa.LDBU:
			g.intv[r] = uint64(uint8(raw))
		}
	}
}

// emitVectorMem emits a unit-stride vector store+load pair over a random
// arena region (keeping the mirror in sync word-wise).
func (g *genState) emitVectorMem() action {
	v := g.pick(len(g.vecr))
	maxBase := g.asize - 16*8
	slot := int64(g.pick(int(maxBase/8))) * 8
	base := g.b.Const(g.arena)
	g.b.Vst(g.vecr[v], base, slot, 1+g.pick(3))
	d := g.pick(len(g.vecr))
	g.b.Emit(ir.Op{Opcode: isa.VLD, Dst: []ir.Reg{g.vecr[d]}, Src: []ir.Reg{base},
		Imm: slot, Alias: 0}) // alias 0: may alias the store above
	vl := g.vl
	return func() {
		for i := 0; i < vl; i++ {
			binary.LittleEndian.PutUint64(g.mirror[slot+int64(8*i):], g.vecv[v][i])
		}
		for i := 0; i < vl; i++ {
			g.vecv[d][i] = binary.LittleEndian.Uint64(g.mirror[slot+int64(8*i):])
		}
	}
}

// emitAny picks a random action kind.
func (g *genState) emitAny() action {
	switch g.pick(10) {
	case 0, 1, 2:
		return g.emitScalarOp()
	case 3, 4:
		return g.emitPackedOp()
	case 5, 6:
		return g.emitVectorOp()
	case 7:
		return g.emitStore()
	case 8:
		return g.emitLoad()
	default:
		return g.emitVectorMem()
	}
}

// Generate builds a random program of roughly nops operations from seed.
// The same (seed, nops) pair always yields the same program and mirror.
func Generate(seed uint64, nops int) (*Program, error) {
	if nops < 1 {
		nops = 1
	}
	b := ir.NewBuilder(fmt.Sprintf("fuzz%d", seed))
	g := &genState{rng: seed | 1, b: b, asize: 512}
	g.arena = b.Alloc(g.asize)
	g.mirror = make([]byte, g.asize)

	// Architectural state pools (small, to stay within every register
	// file of Table 2).
	for i := 0; i < 6; i++ {
		val := g.next() % 1000
		g.intr = append(g.intr, b.Const(int64(val)))
		g.intv = append(g.intv, val)
	}
	for i := 0; i < 4; i++ {
		val := g.next()
		dst := b.SIMDReg()
		b.Emit(ir.Op{Opcode: isa.MOVIM, Dst: []ir.Reg{dst}, Imm: int64(val), UseImm: true})
		g.simdr = append(g.simdr, dst)
		g.simdv = append(g.simdv, val)
	}
	g.vl = 2 + g.pick(15)
	if g.vl > 16 {
		g.vl = 16
	}
	b.SetVLI(int64(g.vl))
	b.SetVSI(8)
	for i := 0; i < 3; i++ {
		val := g.next()
		r := b.Vsplat(b.Const(int64(val)))
		g.vecr = append(g.vecr, r)
		var words [16]uint64
		for j := 0; j < g.vl; j++ {
			words[j] = val
		}
		g.vecv = append(g.vecv, words)
	}

	var loops []struct {
		trip    int
		actions []action
	}
	var current []action
	inLoop := false
	var trip int

	flush := func() {
		if len(current) > 0 {
			loops = append(loops, struct {
				trip    int
				actions []action
			}{1, current})
			current = nil
		}
	}

	for i := 0; i < nops; i++ {
		if !inLoop && g.pick(10) == 0 {
			// Open a counted loop (the body's mirror replays trip times).
			flush()
			trip = 2 + g.pick(5)
			inLoop = true
			b.Loop(0, int64(trip), 1, func(ir.Reg) {
				for j := 0; j < 6+g.pick(8); j++ {
					current = append(current, g.emitAny())
					i++
				}
			})
			loops = append(loops, struct {
				trip    int
				actions []action
			}{trip, current})
			current = nil
			inLoop = false
			continue
		}
		current = append(current, g.emitAny())
	}
	flush()

	// Dump every integer register to the arena tail, so register state is
	// part of the differential comparison.
	for i, r := range g.intr {
		slot := g.asize - int64(8*(i+1))
		base := b.Const(g.arena)
		b.Store(isa.STD, r, base, slot, 1)
		idx := i
		loops = append(loops, struct {
			trip    int
			actions []action
		}{1, []action{func() {
			binary.LittleEndian.PutUint64(g.mirror[slot:], g.intv[idx])
		}}})
	}

	// Replay the mirror.
	for _, l := range loops {
		for t := 0; t < l.trip; t++ {
			for _, a := range l.actions {
				a()
			}
		}
	}
	return &Program{Func: b.Func(), Arena: g.mirror}, nil
}
