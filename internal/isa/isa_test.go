package isa

import (
	"testing"

	"vsimdvliw/internal/simd"
)

func TestEveryOpcodeDefined(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		in := op.Get()
		if in.Name == "" {
			t.Errorf("opcode %d has no metadata", op)
		}
		if op != NOP && op != REGBEGIN && op != REGEND && in.Unit == UnitNone {
			t.Errorf("%s: real operation with UnitNone", in.Name)
		}
		if in.Unit != UnitNone && in.Lat < 1 {
			t.Errorf("%s: latency %d < 1", in.Name, in.Lat)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := make(map[string]Opcode)
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		n := op.Name()
		if prev, ok := seen[n]; ok {
			t.Errorf("duplicate mnemonic %q for %d and %d", n, prev, op)
		}
		seen[n] = op
	}
}

func TestVectorOpsFlagged(t *testing.T) {
	vecOps := []Opcode{VLD, VST, VADD, VSUB, VMULL, VMADD, VSADA, VMACA, VMOV, VSPLAT}
	for _, op := range vecOps {
		if !op.Get().Vector {
			t.Errorf("%s must be flagged Vector", op.Name())
		}
	}
	scalarOps := []Opcode{ADD, LDD, PADD, PSAD, VSUM, SETVL}
	for _, op := range scalarOps {
		if op.Get().Vector {
			t.Errorf("%s must not be flagged Vector", op.Name())
		}
	}
}

func TestMemFlags(t *testing.T) {
	loads := []Opcode{LDB, LDBU, LDH, LDHU, LDW, LDWU, LDD, LDM, VLD}
	for _, op := range loads {
		if op.Get().Mem != MemLoad {
			t.Errorf("%s must be MemLoad", op.Name())
		}
		if !op.IsMem() {
			t.Errorf("%s IsMem false", op.Name())
		}
	}
	stores := []Opcode{STB, STH, STW, STD, STM, VST}
	for _, op := range stores {
		if op.Get().Mem != MemStore {
			t.Errorf("%s must be MemStore", op.Name())
		}
	}
	if ADD.IsMem() {
		t.Error("ADD flagged as memory")
	}
}

func TestVectorMemUnit(t *testing.T) {
	if VLD.Get().Unit != UnitVMem || VST.Get().Unit != UnitVMem {
		t.Error("vector memory ops must use the L2 vector port unit")
	}
	if !VLD.IsVectorMem() || !VST.IsVectorMem() {
		t.Error("IsVectorMem false for VLD/VST")
	}
	if LDM.IsVectorMem() {
		t.Error("LDM is a µSIMD (L1) access, not a vector access")
	}
	if LDM.Get().Unit != UnitMem {
		t.Error("LDM must use the L1 port unit")
	}
}

func TestBranchFlags(t *testing.T) {
	for _, op := range []Opcode{BEQ, BNE, BLT, BGE, JMP, HALT} {
		if !op.Get().Branch {
			t.Errorf("%s must be Branch", op.Name())
		}
		if op.Get().Unit != UnitBranch {
			t.Errorf("%s must run on the branch unit", op.Name())
		}
	}
}

func TestWidthSupport(t *testing.T) {
	cases := []struct {
		op   Opcode
		w    simd.Width
		want bool
	}{
		{PADD, simd.W8, true},
		{PADD, simd.W16, true},
		{PADD, simd.W32, true},
		{PADD, simd.W64, false},
		{PMULL, simd.W16, true},
		{PMULL, simd.W8, false},
		{PSAD, simd.W8, true},
		{PSAD, simd.W16, false},
		{PAND, 0, true},
		{PAND, simd.W8, false},
		{ADD, 0, true},
		{VMADD, simd.W16, true},
		{VPACKUS, simd.W16, true},
		{VPACKUS, simd.W32, false},
	}
	for _, c := range cases {
		if got := c.op.SupportsWidth(c.w); got != c.want {
			t.Errorf("%s width %v: got %v, want %v", c.op.Name(), c.w, got, c.want)
		}
	}
}

func TestSignatures(t *testing.T) {
	if s := ADD.Get().Sig; len(s.Dst) != 1 || s.Dst[0] != RegInt || len(s.Src) != 2 {
		t.Error("ADD signature wrong")
	}
	if s := VSADA.Get().Sig; len(s.Src) != 3 || s.Src[0] != RegVec || s.Src[2] != RegAcc {
		t.Error("VSADA signature wrong: must read two vectors and the accumulator")
	}
	if s := VSUM.Get().Sig; s.Dst[0] != RegInt || s.Src[0] != RegAcc {
		t.Error("VSUM signature wrong")
	}
	if s := STD.Get().Sig; len(s.Dst) != 0 || len(s.Src) != 2 {
		t.Error("STD signature wrong")
	}
	if s := SELECT.Get().Sig; len(s.Src) != 3 {
		t.Error("SELECT must have 3 sources")
	}
}

func TestAccessBytes(t *testing.T) {
	cases := []struct {
		op   Opcode
		want int
	}{
		{LDB, 1}, {LDBU, 1}, {STB, 1},
		{LDH, 2}, {STH, 2},
		{LDW, 4}, {LDWU, 4}, {STW, 4},
		{LDD, 8}, {STD, 8}, {LDM, 8}, {STM, 8}, {VLD, 8}, {VST, 8},
		{ADD, 0}, {VADD, 0},
	}
	for _, c := range cases {
		if got := AccessBytes(c.op); got != c.want {
			t.Errorf("AccessBytes(%s) = %d, want %d", c.op.Name(), got, c.want)
		}
	}
}

func TestLoadSigned(t *testing.T) {
	if !LoadSigned(LDB) || !LoadSigned(LDH) || !LoadSigned(LDW) {
		t.Error("signed loads misreported")
	}
	if LoadSigned(LDBU) || LoadSigned(LDHU) || LoadSigned(LDD) {
		t.Error("unsigned/64-bit loads misreported")
	}
}

func TestLatencyExpectations(t *testing.T) {
	// The paper's Figure 4 example uses 2-cycle vector units and a 5-cycle
	// vector cache; integer ops are 1 cycle (Itanium2-based).
	if ADD.Get().Lat != 1 {
		t.Error("integer ALU must be 1 cycle")
	}
	if VADD.Get().Lat != 2 || VSADA.Get().Lat != 2 {
		t.Error("vector ALU ops must be 2 cycles (paper's example)")
	}
	if VLD.Get().Lat != 5 {
		t.Error("vector cache latency must be 5 cycles")
	}
	if LDD.Get().Lat != 1 {
		t.Error("L1 scheduled latency must be 1 cycle")
	}
}

func TestUnitString(t *testing.T) {
	for u, want := range map[Unit]string{
		UnitNone: "none", UnitInt: "int", UnitMem: "mem", UnitBranch: "br",
		UnitSIMD: "simd", UnitVector: "valu", UnitVMem: "vmem",
	} {
		if u.String() != want {
			t.Errorf("Unit(%d).String() = %q, want %q", u, u.String(), want)
		}
	}
	if Unit(200).String() != "?" {
		t.Error("unknown unit must stringify to ?")
	}
}

func TestRegClassString(t *testing.T) {
	for c, want := range map[RegClass]string{
		RegNone: "-", RegInt: "r", RegSIMD: "m", RegVec: "v", RegAcc: "a",
	} {
		if c.String() != want {
			t.Errorf("RegClass(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestGetPanicsOnBadOpcode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Opcode(255).Get()
}
