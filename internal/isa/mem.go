package isa

// AccessBytes returns the number of bytes moved by one (sub-)operation of a
// memory opcode: the element size for scalar loads/stores, 8 for µSIMD and
// vector word accesses (a vector operation moves VL such words). It returns
// 0 for non-memory opcodes.
func AccessBytes(op Opcode) int {
	switch op {
	case LDB, LDBU, STB:
		return 1
	case LDH, LDHU, STH:
		return 2
	case LDW, LDWU, STW:
		return 4
	case LDD, STD, LDM, STM, VLD, VST:
		return 8
	}
	return 0
}

// LoadSigned reports whether a load opcode sign-extends its result.
func LoadSigned(op Opcode) bool {
	switch op {
	case LDB, LDH, LDW:
		return true
	}
	return false
}
