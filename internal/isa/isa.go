// Package isa defines the instruction-set architecture of the
// Vector-µSIMD-VLIW processor family studied in the paper: the scalar
// (HPL-PD-like) operation set, the µSIMD extension (64-bit packed
// operations fairly similar to Intel's SSE integer opcodes), and the
// Vector-µSIMD extension based on the MOM matrix-oriented ISA (short
// vectors of up to 16 64-bit words, vector-length and vector-stride
// registers, and MDMX-like 192-bit packed accumulators).
//
// The paper reserves the term "operation" for each independent machine
// operation codified into a VLIW instruction; a vector operation executes
// VL sub-operations, and each sub-operation operates on up to eight packed
// items, so a single vector operation performs up to 16x8 micro-operations.
// The Info metadata in this package carries everything the static
// scheduler (internal/sched) and the simulator (internal/sim) need:
// functional-unit class, flow latency, register classes and sub-word
// behaviour.
package isa

import "vsimdvliw/internal/simd"

// Unit identifies the functional-unit class an operation executes on.
type Unit uint8

// Functional-unit classes. Each operation consumes one issue slot plus one
// unit of its class; memory operations additionally consume a cache port
// (L1 for scalar/µSIMD accesses, the wide L2 port for vector accesses).
const (
	UnitNone   Unit = iota // pseudo-operations (region markers): free
	UnitInt                // integer ALU
	UnitMem                // scalar and µSIMD memory (L1 data cache port)
	UnitBranch             // branch unit
	UnitSIMD               // µSIMD (packed) functional unit
	UnitVector             // vector functional unit (LN parallel lanes)
	UnitVMem               // vector memory (wide L2 vector-cache port)
)

// String implements fmt.Stringer.
func (u Unit) String() string {
	switch u {
	case UnitNone:
		return "none"
	case UnitInt:
		return "int"
	case UnitMem:
		return "mem"
	case UnitBranch:
		return "br"
	case UnitSIMD:
		return "simd"
	case UnitVector:
		return "valu"
	case UnitVMem:
		return "vmem"
	}
	return "?"
}

// RegClass identifies a register file.
type RegClass uint8

// Register classes of the architecture (Table 2 of the paper): the integer
// file, the 64-bit µSIMD packed file, the vector file (16 x 64-bit words
// per register), and the packed-accumulator file.
const (
	RegNone RegClass = iota
	RegInt
	RegSIMD
	RegVec
	RegAcc
)

// String implements fmt.Stringer.
func (c RegClass) String() string {
	switch c {
	case RegNone:
		return "-"
	case RegInt:
		return "r"
	case RegSIMD:
		return "m"
	case RegVec:
		return "v"
	case RegAcc:
		return "a"
	}
	return "?"
}

// MemKind classifies memory behaviour.
type MemKind uint8

// Memory operation kinds.
const (
	MemNone MemKind = iota
	MemLoad
	MemStore
)

// MaxVL is the architectural maximum vector length: 16 64-bit words, so a
// vector register holds a matrix of up to 16x8 packed elements.
const MaxVL = 16

// Opcode enumerates every machine operation.
type Opcode uint8

// Scalar operations (HPL-PD-like core ISA).
const (
	NOP  Opcode = iota
	MOVI        // dst <- imm
	MOV         // dst <- src
	ADD
	SUB
	MUL
	DIV
	AND
	OR
	XOR
	SHL
	SHR
	SRA
	CMPEQ // dst <- (a == b) ? 1 : 0
	CMPNE
	CMPLT  // signed
	CMPLE  // signed
	CMPLTU // unsigned
	SELECT // dst <- (cond != 0) ? a : b   (3 sources: cond, a, b)

	LDB  // sign-extending byte load
	LDBU // zero-extending byte load
	LDH  // sign-extending halfword load
	LDHU
	LDW // sign-extending word (32-bit) load
	LDWU
	LDD // 64-bit load
	STB
	STH
	STW
	STD

	BEQ // branch if a == b
	BNE
	BLT // signed
	BGE
	JMP

	REGBEGIN // pseudo: begin region (imm = region id)
	REGEND   // pseudo: end region
	HALT

	// µSIMD operations: 64-bit packed, Width field of the Op selects the
	// sub-word size. Together with their width variants these mirror the
	// SSE integer opcode set (~67 opcodes).
	LDM // load 64-bit word into a µSIMD register
	STM // store a µSIMD register
	MOVIM
	MOVRM // int reg -> µSIMD reg (bit copy)
	MOVMR // µSIMD reg -> int reg
	PSPLAT
	PADD
	PSUB
	PADDS
	PSUBS
	PADDU
	PSUBU
	PMULL
	PMULH
	PMADD
	PAVG
	PMINU
	PMAXU
	PMINS
	PMAXS
	PABSD
	PSAD // packed SAD: dst µSIMD reg receives scalar sum of byte |a-b|
	PAND
	POR
	PXOR
	PANDN
	PSLL
	PSRL
	PSRA
	PCMPEQ
	PCMPGT
	PACKSS
	PACKUS
	PUNPCKL
	PUNPCKH

	// Vector-µSIMD operations (MOM-like). Compute operations execute VL
	// sub-operations, each a µSIMD word operation, across LN lanes.
	SETVL // set vector-length register (from int reg or imm)
	SETVS // set vector-stride register, in bytes (8 = stride one)
	VLD   // vector load: VL words from base, consecutive words VS bytes apart
	VST   // vector store
	VMOV
	VSPLAT // broadcast an int register's 64-bit value to all VL words
	VADD
	VSUB
	VADDS
	VSUBS
	VADDU
	VSUBU
	VMULL
	VMULH
	VMADD
	VAVG
	VMINU
	VMAXU
	VMINS
	VMAXS
	VABSD
	VAND
	VOR
	VXOR
	VANDN
	VSLL
	VSRL
	VSRA
	VCMPEQ
	VCMPGT
	VPACKSS
	VPACKUS
	VUNPCKL
	VUNPCKH
	VEXTR // dst int <- vector word [imm]
	VINS  // vector word [imm] <- int src

	// Packed-accumulator operations (MDMX-like).
	ACLR  // accumulator <- 0
	VSADA // acc lanes += per-byte-lane |a-b| over the vector pair
	VMACA // acc lanes += 16-bit lane products over the vector pair
	VACCW // acc lanes += 16-bit lanes of the vector
	VSUM  // dst int <- reduction of the accumulator lanes (last-lane reduce)
	APACK // dst int <- the four halfword accumulator lanes, >>imm, saturated to int16, packed

	numOpcodes // sentinel
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// Sig describes the register classes of an operation's destinations and
// sources, in order.
type Sig struct {
	Dst []RegClass
	Src []RegClass
}

// Info is the static metadata of one opcode.
type Info struct {
	Name string
	Unit Unit
	// Lat is the flow latency L of one (sub-)operation in cycles. For
	// vector operations the scheduler derives the full latency descriptors
	// Tlr = (VL-1)/LN and Tlw = L + (VL-1)/LN from it (Figure 3 of the
	// paper); for vector memory the lane count is replaced by the width of
	// the L2 port in words.
	Lat int
	Sig Sig
	// Widths lists the sub-word widths the operation accepts; nil means
	// the operation is width-less (logicals, moves, scalar ops).
	Widths []simd.Width
	Mem    MemKind
	Branch bool
	// Vector marks operations whose execution is governed by the vector
	// length register (compute, memory and accumulator vector operations).
	Vector bool
	// HasImm marks operations that carry an immediate operand (in addition
	// to, or instead of, register sources).
	Imm bool
}

var b8 = []simd.Width{simd.W8}
var b16 = []simd.Width{simd.W16}
var b816 = []simd.Width{simd.W8, simd.W16}
var b81632 = []simd.Width{simd.W8, simd.W16, simd.W32}
var b1632 = []simd.Width{simd.W16, simd.W32}

// Latency constants (cycles), loosely based on the Itanium2 latencies the
// paper uses: 1-cycle integer ALU, multi-cycle multiply, 1-cycle L1 access
// for scheduling purposes, 2-cycle µSIMD ALU, 3-cycle µSIMD multiply,
// 5-cycle L2 vector cache.
const (
	LatInt     = 1
	LatMul     = 3
	LatDiv     = 12
	LatLoad    = 1 // scheduled L1-hit latency
	LatStore   = 1
	LatBranch  = 1
	LatSIMD    = 2
	LatSIMDMul = 3
	LatVMem    = 5 // L2 vector-cache latency
	LatVSum    = 4 // accumulator reduction (single-lane tree)
)

var infos [numOpcodes]Info

func def(op Opcode, name string, unit Unit, lat int, sig Sig, f func(*Info)) {
	in := Info{Name: name, Unit: unit, Lat: lat, Sig: sig}
	if f != nil {
		f(&in)
	}
	infos[op] = in
}

func sig(dst string, src string) Sig {
	conv := func(s string) []RegClass {
		var out []RegClass
		for _, c := range s {
			switch c {
			case 'r':
				out = append(out, RegInt)
			case 'm':
				out = append(out, RegSIMD)
			case 'v':
				out = append(out, RegVec)
			case 'a':
				out = append(out, RegAcc)
			default:
				panic("isa: bad sig char")
			}
		}
		return out
	}
	return Sig{Dst: conv(dst), Src: conv(src)}
}

func init() {
	// Scalar core.
	def(NOP, "nop", UnitNone, 0, sig("", ""), nil)
	def(MOVI, "movi", UnitInt, LatInt, sig("r", ""), func(i *Info) { i.Imm = true })
	def(MOV, "mov", UnitInt, LatInt, sig("r", "r"), nil)
	for _, e := range []struct {
		op   Opcode
		name string
		lat  int
	}{
		{ADD, "add", LatInt}, {SUB, "sub", LatInt}, {MUL, "mul", LatMul},
		{DIV, "div", LatDiv}, {AND, "and", LatInt}, {OR, "or", LatInt},
		{XOR, "xor", LatInt}, {SHL, "shl", LatInt}, {SHR, "shr", LatInt},
		{SRA, "sra", LatInt}, {CMPEQ, "cmpeq", LatInt}, {CMPNE, "cmpne", LatInt},
		{CMPLT, "cmplt", LatInt}, {CMPLE, "cmple", LatInt}, {CMPLTU, "cmpltu", LatInt},
	} {
		def(e.op, e.name, UnitInt, e.lat, sig("r", "rr"), func(i *Info) { i.Imm = true })
	}
	def(SELECT, "select", UnitInt, LatInt, sig("r", "rrr"), nil)

	for _, e := range []struct {
		op   Opcode
		name string
	}{
		{LDB, "ldb"}, {LDBU, "ldbu"}, {LDH, "ldh"}, {LDHU, "ldhu"},
		{LDW, "ldw"}, {LDWU, "ldwu"}, {LDD, "ldd"},
	} {
		def(e.op, e.name, UnitMem, LatLoad, sig("r", "r"), func(i *Info) {
			i.Mem = MemLoad
			i.Imm = true // address offset
		})
	}
	for _, e := range []struct {
		op   Opcode
		name string
	}{{STB, "stb"}, {STH, "sth"}, {STW, "stw"}, {STD, "std"}} {
		def(e.op, e.name, UnitMem, LatStore, sig("", "rr"), func(i *Info) {
			i.Mem = MemStore
			i.Imm = true // address offset; src = [value, base]
		})
	}

	for _, e := range []struct {
		op   Opcode
		name string
		n    string
	}{{BEQ, "beq", "rr"}, {BNE, "bne", "rr"}, {BLT, "blt", "rr"}, {BGE, "bge", "rr"}, {JMP, "jmp", ""}} {
		def(e.op, e.name, UnitBranch, LatBranch, sig("", e.n), func(i *Info) { i.Branch = true })
	}

	def(REGBEGIN, "regbegin", UnitNone, 0, sig("", ""), func(i *Info) { i.Imm = true })
	def(REGEND, "regend", UnitNone, 0, sig("", ""), func(i *Info) { i.Imm = true })
	def(HALT, "halt", UnitBranch, LatBranch, sig("", ""), func(i *Info) { i.Branch = true })

	// µSIMD extension.
	def(LDM, "ldm", UnitMem, LatLoad, sig("m", "r"), func(i *Info) { i.Mem = MemLoad; i.Imm = true })
	def(STM, "stm", UnitMem, LatStore, sig("", "mr"), func(i *Info) { i.Mem = MemStore; i.Imm = true })
	def(MOVIM, "movim", UnitSIMD, LatSIMD, sig("m", ""), func(i *Info) { i.Imm = true })
	def(MOVRM, "movrm", UnitSIMD, LatSIMD, sig("m", "r"), nil)
	def(MOVMR, "movmr", UnitSIMD, LatSIMD, sig("r", "m"), nil)
	def(PSPLAT, "psplat", UnitSIMD, LatSIMD, sig("m", "r"), func(i *Info) { i.Widths = b81632 })

	type pdef struct {
		op     Opcode
		name   string
		lat    int
		widths []simd.Width
	}
	for _, e := range []pdef{
		{PADD, "padd", LatSIMD, b81632}, {PSUB, "psub", LatSIMD, b81632},
		{PADDS, "padds", LatSIMD, b816}, {PSUBS, "psubs", LatSIMD, b816},
		{PADDU, "paddu", LatSIMD, b816}, {PSUBU, "psubu", LatSIMD, b816},
		{PMULL, "pmull", LatSIMDMul, b16}, {PMULH, "pmulh", LatSIMDMul, b16},
		{PMADD, "pmadd", LatSIMDMul, b16},
		{PAVG, "pavg", LatSIMD, b816},
		{PMINU, "pminu", LatSIMD, b8}, {PMAXU, "pmaxu", LatSIMD, b8},
		{PMINS, "pmins", LatSIMD, b16}, {PMAXS, "pmaxs", LatSIMD, b16},
		{PABSD, "pabsd", LatSIMD, b816},
		{PSAD, "psad", LatSIMDMul, b8},
		{PAND, "pand", LatSIMD, nil}, {POR, "por", LatSIMD, nil},
		{PXOR, "pxor", LatSIMD, nil}, {PANDN, "pandn", LatSIMD, nil},
		{PCMPEQ, "pcmpeq", LatSIMD, b81632}, {PCMPGT, "pcmpgt", LatSIMD, b81632},
		{PACKSS, "packss", LatSIMD, b1632}, {PACKUS, "packus", LatSIMD, b16},
		{PUNPCKL, "punpckl", LatSIMD, b81632}, {PUNPCKH, "punpckh", LatSIMD, b81632},
	} {
		def(e.op, e.name, UnitSIMD, e.lat, sig("m", "mm"), func(i *Info) { i.Widths = e.widths })
	}
	for _, e := range []pdef{
		{PSLL, "psll", LatSIMD, b1632}, {PSRL, "psrl", LatSIMD, b1632}, {PSRA, "psra", LatSIMD, b1632},
	} {
		def(e.op, e.name, UnitSIMD, e.lat, sig("m", "m"), func(i *Info) {
			i.Widths = e.widths
			i.Imm = true
		})
	}

	// Vector-µSIMD extension.
	def(SETVL, "setvl", UnitInt, LatInt, sig("", "r"), func(i *Info) { i.Imm = true })
	def(SETVS, "setvs", UnitInt, LatInt, sig("", "r"), func(i *Info) { i.Imm = true })
	def(VLD, "vld", UnitVMem, LatVMem, sig("v", "r"), func(i *Info) {
		i.Mem = MemLoad
		i.Vector = true
		i.Imm = true
	})
	def(VST, "vst", UnitVMem, LatVMem, sig("", "vr"), func(i *Info) {
		i.Mem = MemStore
		i.Vector = true
		i.Imm = true
	})
	def(VMOV, "vmov", UnitVector, LatSIMD, sig("v", "v"), func(i *Info) { i.Vector = true })
	def(VSPLAT, "vsplat", UnitVector, LatSIMD, sig("v", "r"), func(i *Info) { i.Vector = true })
	for _, e := range []pdef{
		{VADD, "vadd", LatSIMD, b81632}, {VSUB, "vsub", LatSIMD, b81632},
		{VADDS, "vadds", LatSIMD, b816}, {VSUBS, "vsubs", LatSIMD, b816},
		{VADDU, "vaddu", LatSIMD, b816}, {VSUBU, "vsubu", LatSIMD, b816},
		{VMULL, "vmull", LatSIMDMul, b16}, {VMULH, "vmulh", LatSIMDMul, b16},
		{VMADD, "vmadd", LatSIMDMul, b16},
		{VAVG, "vavg", LatSIMD, b816},
		{VMINU, "vminu", LatSIMD, b8}, {VMAXU, "vmaxu", LatSIMD, b8},
		{VMINS, "vmins", LatSIMD, b16}, {VMAXS, "vmaxs", LatSIMD, b16},
		{VABSD, "vabsd", LatSIMD, b816},
		{VAND, "vand", LatSIMD, nil}, {VOR, "vor", LatSIMD, nil},
		{VXOR, "vxor", LatSIMD, nil}, {VANDN, "vandn", LatSIMD, nil},
		{VCMPEQ, "vcmpeq", LatSIMD, b81632}, {VCMPGT, "vcmpgt", LatSIMD, b81632},
		{VPACKSS, "vpackss", LatSIMD, b1632}, {VPACKUS, "vpackus", LatSIMD, b16},
		{VUNPCKL, "vunpckl", LatSIMD, b81632}, {VUNPCKH, "vunpckh", LatSIMD, b81632},
	} {
		def(e.op, e.name, UnitVector, e.lat, sig("v", "vv"), func(i *Info) {
			i.Widths = e.widths
			i.Vector = true
		})
	}
	for _, e := range []pdef{
		{VSLL, "vsll", LatSIMD, b1632}, {VSRL, "vsrl", LatSIMD, b1632}, {VSRA, "vsra", LatSIMD, b1632},
	} {
		def(e.op, e.name, UnitVector, e.lat, sig("v", "v"), func(i *Info) {
			i.Widths = e.widths
			i.Vector = true
			i.Imm = true
		})
	}
	def(VEXTR, "vextr", UnitVector, LatSIMD, sig("r", "v"), func(i *Info) { i.Imm = true })
	def(VINS, "vins", UnitVector, LatSIMD, sig("v", "rv"), func(i *Info) { i.Imm = true })

	def(ACLR, "aclr", UnitVector, LatInt, sig("a", ""), nil)
	def(VSADA, "vsada", UnitVector, LatSIMD, sig("a", "vva"), func(i *Info) {
		i.Widths = b8
		i.Vector = true
	})
	def(VMACA, "vmaca", UnitVector, LatSIMDMul, sig("a", "vva"), func(i *Info) {
		i.Widths = b16
		i.Vector = true
	})
	def(VACCW, "vaccw", UnitVector, LatSIMD, sig("a", "va"), func(i *Info) {
		i.Widths = b16
		i.Vector = true
	})
	def(VSUM, "vsum", UnitVector, LatVSum, sig("r", "a"), func(i *Info) { i.Widths = b816 })
	def(APACK, "apack", UnitVector, LatSIMDMul, sig("r", "a"), func(i *Info) { i.Imm = true })
}

// Get returns the metadata of op. It panics on an out-of-range opcode.
func (op Opcode) Get() *Info {
	if int(op) >= NumOpcodes {
		panic("isa: invalid opcode")
	}
	return &infos[op]
}

// Name returns the mnemonic of op.
func (op Opcode) Name() string { return op.Get().Name }

// IsMem reports whether op accesses memory.
func (op Opcode) IsMem() bool { return op.Get().Mem != MemNone }

// IsVectorMem reports whether op is a vector memory access (uses the wide
// L2 port and bypasses the L1).
func (op Opcode) IsVectorMem() bool { return op == VLD || op == VST }

// SupportsWidth reports whether the opcode accepts the given sub-word width.
// Width-less opcodes accept only a zero width.
func (op Opcode) SupportsWidth(w simd.Width) bool {
	in := op.Get()
	if in.Widths == nil {
		return w == 0
	}
	for _, x := range in.Widths {
		if x == w {
			return true
		}
	}
	return false
}
