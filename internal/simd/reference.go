package simd

// Reference (oracle) implementations of the packed operations that the
// exported entry points implement with branchless SWAR arithmetic. Each
// ref* function is the original per-lane loop, written against getU/getS/
// put only, so it is obviously correct by inspection. The property tests
// (swar_test.go) cross-check every SWAR kernel against its reference over
// seeded random inputs, all widths and the known saturation edge vectors;
// the reference is deliberately kept no matter how slow it is.

// refAdd is the lane-loop oracle for Add.
func refAdd(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 { return x + y })
}

// refSub is the lane-loop oracle for Sub.
func refSub(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 { return x - y })
}

// refAddS is the lane-loop oracle for AddS.
func refAddS(a, b uint64, w Width) uint64 {
	return mapLanesS(a, b, w, func(x, y int64) int64 { return satS(x+y, w) })
}

// refSubS is the lane-loop oracle for SubS.
func refSubS(a, b uint64, w Width) uint64 {
	return mapLanesS(a, b, w, func(x, y int64) int64 { return satS(x-y, w) })
}

// refAddU is the lane-loop oracle for AddU.
func refAddU(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 { return satU(int64(x)+int64(y), w) })
}

// refSubU is the lane-loop oracle for SubU.
func refSubU(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 { return satU(int64(x)-int64(y), w) })
}

// refAvgU is the lane-loop oracle for AvgU.
func refAvgU(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 { return (x + y + 1) >> 1 })
}

// refMinU is the lane-loop oracle for MinU.
func refMinU(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 {
		if x < y {
			return x
		}
		return y
	})
}

// refMaxU is the lane-loop oracle for MaxU.
func refMaxU(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 {
		if x > y {
			return x
		}
		return y
	})
}

// refMinS is the lane-loop oracle for MinS.
func refMinS(a, b uint64, w Width) uint64 {
	return mapLanesS(a, b, w, func(x, y int64) int64 {
		if x < y {
			return x
		}
		return y
	})
}

// refMaxS is the lane-loop oracle for MaxS.
func refMaxS(a, b uint64, w Width) uint64 {
	return mapLanesS(a, b, w, func(x, y int64) int64 {
		if x > y {
			return x
		}
		return y
	})
}

// refAbsDiffU is the lane-loop oracle for AbsDiffU.
func refAbsDiffU(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 {
		if x > y {
			return x - y
		}
		return y - x
	})
}

// refSAD is the lane-loop oracle for SAD.
func refSAD(a, b uint64) uint64 {
	var s uint64
	for i := 0; i < 8; i++ {
		x, y := getU(a, W8, i), getU(b, W8, i)
		if x > y {
			s += x - y
		} else {
			s += y - x
		}
	}
	return s
}

// refCmpEq is the lane-loop oracle for CmpEq.
func refCmpEq(a, b uint64, w Width) uint64 {
	return mapLanes(a, b, w, func(x, y uint64) uint64 {
		if x == y {
			return ^uint64(0)
		}
		return 0
	})
}

// refCmpGtS is the lane-loop oracle for CmpGtS.
func refCmpGtS(a, b uint64, w Width) uint64 {
	return mapLanesS(a, b, w, func(x, y int64) int64 {
		if x > y {
			return -1
		}
		return 0
	})
}

// refShlI is the lane-loop oracle for ShlI.
func refShlI(a uint64, w Width, imm uint) uint64 {
	if imm >= uint(w)*8 {
		return 0
	}
	return mapLanes(a, 0, w, func(x, _ uint64) uint64 { return x << imm })
}

// refShrI is the lane-loop oracle for ShrI.
func refShrI(a uint64, w Width, imm uint) uint64 {
	if imm >= uint(w)*8 {
		return 0
	}
	return mapLanes(a, 0, w, func(x, _ uint64) uint64 { return x >> imm })
}

// refSraI is the lane-loop oracle for SraI.
func refSraI(a uint64, w Width, imm uint) uint64 {
	if imm >= uint(w)*8 {
		imm = uint(w)*8 - 1
	}
	return mapLanesS(a, 0, w, func(x, _ int64) int64 { return x >> imm })
}

// refSplat is the lane-loop oracle for Splat.
func refSplat(v uint64, w Width) uint64 {
	var r uint64
	low := getU(v, w, 0)
	for i := 0; i < w.Lanes(); i++ {
		r = put(r, w, i, low)
	}
	return r
}
