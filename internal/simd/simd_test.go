package simd

import (
	"testing"
	"testing/quick"
)

func TestWidthLanes(t *testing.T) {
	cases := []struct {
		w     Width
		lanes int
		bits  int
		str   string
	}{
		{W8, 8, 8, "b"},
		{W16, 4, 16, "w"},
		{W32, 2, 32, "d"},
		{W64, 1, 64, "q"},
	}
	for _, c := range cases {
		if got := c.w.Lanes(); got != c.lanes {
			t.Errorf("Lanes(%v) = %d, want %d", c.w, got, c.lanes)
		}
		if got := c.w.Bits(); got != c.bits {
			t.Errorf("Bits(%v) = %d, want %d", c.w, got, c.bits)
		}
		if got := c.w.String(); got != c.str {
			t.Errorf("String(%v) = %q, want %q", c.w, got, c.str)
		}
	}
}

func TestWidthLanesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lanes on invalid width did not panic")
		}
	}()
	Width(3).Lanes()
}

func TestGetPutRoundTrip(t *testing.T) {
	for _, w := range []Width{W8, W16, W32, W64} {
		var x uint64
		for i := 0; i < w.Lanes(); i++ {
			x = Put(x, w, i, uint64(i+1))
		}
		for i := 0; i < w.Lanes(); i++ {
			if got := GetU(x, w, i); got != uint64(i+1) {
				t.Errorf("w=%v lane %d: got %d, want %d", w, i, got, i+1)
			}
		}
	}
}

func TestGetS(t *testing.T) {
	// 0xFF in a byte lane must read back as -1 signed.
	x := Put(0, W8, 3, 0xFF)
	if got := GetS(x, W8, 3); got != -1 {
		t.Errorf("GetS(0xFF) = %d, want -1", got)
	}
	x = Put(0, W16, 1, 0x8000)
	if got := GetS(x, W16, 1); got != -32768 {
		t.Errorf("GetS(0x8000) = %d, want -32768", got)
	}
	x = Put(0, W32, 1, 0xFFFFFFFF)
	if got := GetS(x, W32, 1); got != -1 {
		t.Errorf("GetS(0xFFFFFFFF) = %d, want -1", got)
	}
}

func TestAddWrap(t *testing.T) {
	a := Put(0, W8, 0, 250)
	b := Put(0, W8, 0, 10)
	if got := GetU(Add(a, b, W8), W8, 0); got != 4 {
		t.Errorf("byte 250+10 wrap = %d, want 4", got)
	}
	// Lanes must not interfere: 0xFF + 1 in lane 0 must not carry into lane 1.
	a = Put(Put(0, W8, 0, 0xFF), W8, 1, 5)
	b = Put(0, W8, 0, 1)
	r := Add(a, b, W8)
	if GetU(r, W8, 0) != 0 || GetU(r, W8, 1) != 5 {
		t.Errorf("carry leaked across lanes: %x", r)
	}
}

func TestSubWrap(t *testing.T) {
	a := Put(0, W16, 2, 5)
	b := Put(0, W16, 2, 10)
	if got := GetU(Sub(a, b, W16), W16, 2); got != 0xFFFB {
		t.Errorf("5-10 wrap = %#x, want 0xFFFB", got)
	}
}

func TestAddSSaturate(t *testing.T) {
	a := Put(0, W16, 0, 0x7FFF) // 32767
	b := Put(0, W16, 0, 1)
	if got := GetS(AddS(a, b, W16), W16, 0); got != 32767 {
		t.Errorf("AddS overflow = %d, want 32767", got)
	}
	a = Put(0, W16, 0, 0x8000) // -32768
	b = Put(0, W16, 0, 0xFFFF) // -1
	if got := GetS(AddS(a, b, W16), W16, 0); got != -32768 {
		t.Errorf("AddS underflow = %d, want -32768", got)
	}
}

func TestSubSSaturate(t *testing.T) {
	a := Put(0, W8, 0, 0x80) // -128
	b := Put(0, W8, 0, 1)
	if got := GetS(SubS(a, b, W8), W8, 0); got != -128 {
		t.Errorf("SubS underflow = %d, want -128", got)
	}
}

func TestAddUSaturate(t *testing.T) {
	a := Put(0, W8, 0, 200)
	b := Put(0, W8, 0, 100)
	if got := GetU(AddU(a, b, W8), W8, 0); got != 255 {
		t.Errorf("AddU overflow = %d, want 255", got)
	}
}

func TestSubUSaturate(t *testing.T) {
	a := Put(0, W8, 0, 10)
	b := Put(0, W8, 0, 20)
	if got := GetU(SubU(a, b, W8), W8, 0); got != 0 {
		t.Errorf("SubU underflow = %d, want 0", got)
	}
}

func TestMulLoHi(t *testing.T) {
	a := Put(0, W16, 0, 300)
	b := Put(0, W16, 0, 400)
	// 300*400 = 120000 = 0x1D4C0 -> lo 0xD4C0, hi 0x1.
	if got := GetU(MulLo(a, b, W16), W16, 0); got != 0xD4C0 {
		t.Errorf("MulLo = %#x, want 0xD4C0", got)
	}
	if got := GetU(MulHi(a, b, W16), W16, 0); got != 1 {
		t.Errorf("MulHi = %#x, want 1", got)
	}
	// Signed: -2 * 3 = -6 -> hi must be 0xFFFF (sign extension of -1... -6>>16 = -1).
	a = Put(0, W16, 0, uint64(0xFFFE)) // -2
	b = Put(0, W16, 0, 3)
	if got := GetS(MulHi(a, b, W16), W16, 0); got != -1 {
		t.Errorf("signed MulHi = %d, want -1", got)
	}
}

func TestMAdd(t *testing.T) {
	// a = [1, 2, 3, 4], b = [5, 6, 7, 8] (16-bit lanes)
	var a, b uint64
	for i, v := range []uint64{1, 2, 3, 4} {
		a = Put(a, W16, i, v)
	}
	for i, v := range []uint64{5, 6, 7, 8} {
		b = Put(b, W16, i, v)
	}
	r := MAdd(a, b)
	// lane0 = 1*5+2*6 = 17; lane1 = 3*7+4*8 = 53.
	if GetS(r, W32, 0) != 17 || GetS(r, W32, 1) != 53 {
		t.Errorf("MAdd = [%d,%d], want [17,53]", GetS(r, W32, 0), GetS(r, W32, 1))
	}
	// Negative operands.
	a = Put(0, W16, 0, uint64(0xFFFF)) // -1
	b = Put(0, W16, 0, 100)
	if got := GetS(MAdd(a, b), W32, 0); got != -100 {
		t.Errorf("MAdd signed = %d, want -100", got)
	}
}

func TestAvgU(t *testing.T) {
	a := Put(0, W8, 0, 10)
	b := Put(0, W8, 0, 13)
	if got := GetU(AvgU(a, b, W8), W8, 0); got != 12 {
		t.Errorf("AvgU(10,13) = %d, want 12 (rounding)", got)
	}
	if got := GetU(AvgU(Put(0, W8, 0, 255), Put(0, W8, 0, 255), W8), W8, 0); got != 255 {
		t.Errorf("AvgU(255,255) = %d, want 255", got)
	}
}

func TestMinMax(t *testing.T) {
	a := Put(0, W8, 0, 200)
	b := Put(0, W8, 0, 100)
	if got := GetU(MinU(a, b, W8), W8, 0); got != 100 {
		t.Errorf("MinU = %d", got)
	}
	if got := GetU(MaxU(a, b, W8), W8, 0); got != 200 {
		t.Errorf("MaxU = %d", got)
	}
	// Signed: 200 as int8 is -56, so signed min(200,100) is 200's lane.
	if got := GetS(MinS(a, b, W8), W8, 0); got != -56 {
		t.Errorf("MinS = %d, want -56", got)
	}
	if got := GetS(MaxS(a, b, W8), W8, 0); got != 100 {
		t.Errorf("MaxS = %d, want 100", got)
	}
}

func TestSAD(t *testing.T) {
	var a, b uint64
	av := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	bv := []uint64{15, 10, 30, 45, 40, 70, 60, 90}
	var want uint64
	for i := range av {
		a = Put(a, W8, i, av[i])
		b = Put(b, W8, i, bv[i])
		d := int64(av[i]) - int64(bv[i])
		if d < 0 {
			d = -d
		}
		want += uint64(d)
	}
	if got := SAD(a, b); got != want {
		t.Errorf("SAD = %d, want %d", got, want)
	}
	lanes := SADLanes(a, b)
	var sum uint64
	for _, v := range lanes {
		sum += v
	}
	if sum != want {
		t.Errorf("sum(SADLanes) = %d, want %d", sum, want)
	}
}

func TestLogical(t *testing.T) {
	a, b := uint64(0xF0F0), uint64(0xFF00)
	if And(a, b) != 0xF000 || Or(a, b) != 0xFFF0 || Xor(a, b) != 0x0FF0 {
		t.Error("And/Or/Xor wrong")
	}
	if AndNot(a, b)&0xFFFF != 0x0F00 {
		t.Errorf("AndNot = %#x, want low bits 0x0F00", AndNot(a, b)&0xFFFF)
	}
}

func TestShifts(t *testing.T) {
	a := Put(0, W16, 0, 0x8001)
	if got := GetU(ShlI(a, W16, 1), W16, 0); got != 2 {
		t.Errorf("ShlI = %#x, want 2", got)
	}
	if got := GetU(ShrI(a, W16, 1), W16, 0); got != 0x4000 {
		t.Errorf("ShrI = %#x, want 0x4000", got)
	}
	if got := GetS(SraI(a, W16, 1), W16, 0); got != -16384 {
		t.Errorf("SraI = %d, want -16384", got)
	}
	// Out-of-range shifts.
	if ShlI(a, W16, 16) != 0 || ShrI(a, W16, 16) != 0 {
		t.Error("shift >= width must produce 0")
	}
	if got := GetS(SraI(a, W16, 20), W16, 0); got != -1 {
		t.Errorf("SraI >= width = %d, want -1 (sign fill)", got)
	}
}

func TestCompare(t *testing.T) {
	a := Put(Put(0, W16, 0, 5), W16, 1, 9)
	b := Put(Put(0, W16, 0, 5), W16, 1, 3)
	eq := CmpEq(a, b, W16)
	if GetU(eq, W16, 0) != 0xFFFF || GetU(eq, W16, 1) != 0 {
		t.Errorf("CmpEq = %#x", eq)
	}
	gt := CmpGtS(a, b, W16)
	if GetU(gt, W16, 0) != 0 || GetU(gt, W16, 1) != 0xFFFF {
		t.Errorf("CmpGtS = %#x", gt)
	}
}

func TestPackSS(t *testing.T) {
	// Pack 16->8 with signed saturation.
	var a, b uint64
	for i, v := range []int64{-200, -10, 10, 200} {
		a = Put(a, W16, i, uint64(v))
	}
	for i, v := range []int64{300, 0, -1, 127} {
		b = Put(b, W16, i, uint64(v))
	}
	r := PackSS(a, b, W16)
	want := []int64{-128, -10, 10, 127, 127, 0, -1, 127}
	for i, w := range want {
		if got := GetS(r, W8, i); got != w {
			t.Errorf("PackSS lane %d = %d, want %d", i, got, w)
		}
	}
}

func TestPackUS(t *testing.T) {
	var a, b uint64
	for i, v := range []int64{-5, 100, 256, 300} {
		a = Put(a, W16, i, uint64(v))
	}
	for i, v := range []int64{0, 255, -1, 1} {
		b = Put(b, W16, i, uint64(v))
	}
	r := PackUS(a, b, W16)
	want := []uint64{0, 100, 255, 255, 0, 255, 0, 1}
	for i, w := range want {
		if got := GetU(r, W8, i); got != w {
			t.Errorf("PackUS lane %d = %d, want %d", i, got, w)
		}
	}
}

func TestUnpack(t *testing.T) {
	var a, b uint64
	for i := 0; i < 8; i++ {
		a = Put(a, W8, i, uint64(i))    // 0..7
		b = Put(b, W8, i, uint64(10+i)) // 10..17
	}
	lo := UnpackLo(a, b, W8)
	wantLo := []uint64{0, 10, 1, 11, 2, 12, 3, 13}
	for i, w := range wantLo {
		if got := GetU(lo, W8, i); got != w {
			t.Errorf("UnpackLo lane %d = %d, want %d", i, got, w)
		}
	}
	hi := UnpackHi(a, b, W8)
	wantHi := []uint64{4, 14, 5, 15, 6, 16, 7, 17}
	for i, w := range wantHi {
		if got := GetU(hi, W8, i); got != w {
			t.Errorf("UnpackHi lane %d = %d, want %d", i, got, w)
		}
	}
}

func TestUnpackDegenerate(t *testing.T) {
	if UnpackLo(7, 9, W64) != 7 {
		t.Error("UnpackLo W64 must return a")
	}
	if UnpackHi(7, 9, W64) != 9 {
		t.Error("UnpackHi W64 must return b")
	}
}

func TestSplat(t *testing.T) {
	r := Splat(0xAB, W8)
	for i := 0; i < 8; i++ {
		if GetU(r, W8, i) != 0xAB {
			t.Fatalf("Splat lane %d = %#x", i, GetU(r, W8, i))
		}
	}
	r = Splat(0x1234, W16)
	if GetU(r, W16, 3) != 0x1234 {
		t.Errorf("Splat W16 = %#x", r)
	}
}

// --- property-based tests -------------------------------------------------

func TestPropAddCommutative(t *testing.T) {
	for _, w := range []Width{W8, W16, W32} {
		w := w
		f := func(a, b uint64) bool { return Add(a, b, w) == Add(b, a, w) }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %v: %v", w, err)
		}
	}
}

func TestPropAddSubInverse(t *testing.T) {
	for _, w := range []Width{W8, W16, W32} {
		w := w
		f := func(a, b uint64) bool { return Sub(Add(a, b, w), b, w) == a }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %v: %v", w, err)
		}
	}
}

func TestPropSaturatingAddBounds(t *testing.T) {
	f := func(a, b uint64) bool {
		r := AddS(a, b, W16)
		for i := 0; i < 4; i++ {
			v := GetS(r, W16, i)
			if v < -32768 || v > 32767 {
				return false
			}
			// Saturating add must equal clamped exact sum.
			exact := GetS(a, W16, i) + GetS(b, W16, i)
			if exact > 32767 {
				exact = 32767
			}
			if exact < -32768 {
				exact = -32768
			}
			if v != exact {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSADTriangle(t *testing.T) {
	// SAD(a,b) == 0 iff a == b, and SAD satisfies the triangle inequality.
	f := func(a, b, c uint64) bool {
		if (SAD(a, b) == 0) != (a == b) {
			return false
		}
		return SAD(a, c) <= SAD(a, b)+SAD(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSADSymmetric(t *testing.T) {
	f := func(a, b uint64) bool { return SAD(a, b) == SAD(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMinMaxOrdering(t *testing.T) {
	f := func(a, b uint64) bool {
		mn, mx := MinU(a, b, W8), MaxU(a, b, W8)
		for i := 0; i < 8; i++ {
			if GetU(mn, W8, i) > GetU(mx, W8, i) {
				return false
			}
		}
		// min+max == a+b lane-wise.
		return Add(mn, mx, W8) == Add(a, b, W8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropPackUnpackIdentity(t *testing.T) {
	// Unpacking bytes to words with zero and packing back (unsigned) must
	// reproduce the original bytes.
	f := func(a uint64) bool {
		lo := UnpackLo(a, 0, W8) // bytes 0..3 zero-extended into 16-bit lanes
		hi := UnpackHi(a, 0, W8) // bytes 4..7
		return PackUS(lo, hi, W16) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropShiftComposition(t *testing.T) {
	f := func(a uint64) bool {
		return ShlI(ShrI(a, W16, 4), W16, 4) == And(a, 0xFFF0FFF0FFF0FFF0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropLogicalDeMorgan(t *testing.T) {
	f := func(a, b uint64) bool {
		return AndNot(a, b) == And(^a, b) && Xor(a, b) == Or(a, b)&^And(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropGetPut(t *testing.T) {
	f := func(x uint64, v uint64) bool {
		for _, w := range []Width{W8, W16, W32, W64} {
			for i := 0; i < w.Lanes(); i++ {
				y := Put(x, w, i, v)
				mask := ^uint64(0) >> (64 - uint(w)*8)
				if GetU(y, w, i) != v&mask {
					return false
				}
				// Other lanes unchanged.
				for j := 0; j < w.Lanes(); j++ {
					if j != i && GetU(y, w, j) != GetU(x, w, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// FuzzPackedLanes cross-checks the lane accessors and a few algebraic
// identities under arbitrary inputs.
func FuzzPackedLanes(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0x0123456789ABCDEF))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		for _, w := range []Width{W8, W16, W32} {
			if Sub(Add(a, b, w), b, w) != a {
				t.Fatal("add/sub inverse broken")
			}
			if MinU(a, b, w) != MinU(b, a, w) || MaxS(a, b, w) != MaxS(b, a, w) {
				t.Fatal("min/max not commutative")
			}
			if AbsDiffU(a, b, w) != AbsDiffU(b, a, w) {
				t.Fatal("absdiff not symmetric")
			}
		}
		if SAD(a, b) != SAD(b, a) {
			t.Fatal("SAD not symmetric")
		}
		if PackUS(UnpackLo(a, 0, W8), UnpackHi(a, 0, W8), W16) != a {
			t.Fatal("unpack/pack identity broken")
		}
	})
}
