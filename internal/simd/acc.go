package simd

// Acc is a 192-bit packed accumulator, as proposed in the MDMX multimedia
// extension and adopted by the paper's Vector-µSIMD ISA. Physically it is
// 192 bits wide: in byte mode it holds eight 24-bit lanes, in halfword mode
// four 48-bit lanes. We model each lane in an int64 and wrap to the
// architectural lane width on every update, so overflow behaviour matches
// the hardware.
type Acc struct {
	// Lanes holds the lane values. Byte-mode operations use all eight
	// entries (24-bit lanes); halfword-mode operations use the first four
	// (48-bit lanes).
	Lanes [8]int64
}

// accLaneBits returns the architectural lane width for the given sub-word
// width: 8 lanes x 24 bits for bytes, 4 lanes x 48 bits for halfwords.
func accLaneBits(w Width) (lanes int, bits uint) {
	switch w {
	case W8:
		return 8, 24
	case W16:
		return 4, 48
	default:
		panic("simd: accumulator supports byte and halfword modes only")
	}
}

// wrap truncates v to a signed field of the given bit width.
func wrap(v int64, bits uint) int64 {
	return v << (64 - bits) >> (64 - bits)
}

// Clear zeroes the accumulator (the "A=0" operation of the paper's Figure 4).
func (a *Acc) Clear() { a.Lanes = [8]int64{} }

// SADB accumulates the per-byte-lane absolute differences of x and y:
// lane[i] += |x.b[i] - y.b[i]|. This is the element step of the vector SAD
// operation used by the motion-estimation kernel.
func (a *Acc) SADB(x, y uint64) {
	// One branchless SWAR abs-diff over the word, then peel the byte lanes.
	d := AbsDiffU(x, y, W8)
	for i := 0; i < 8; i++ {
		a.Lanes[i] = wrap(a.Lanes[i]+int64(d>>(8*uint(i))&0xFF), 24)
	}
}

// MACW accumulates signed 16-bit lane products: lane[i] += x.w[i]*y.w[i],
// with four 48-bit lanes. It is the element step of the vector
// multiply-accumulate used by DCT and correlation kernels.
func (a *Acc) MACW(x, y uint64) {
	for i := 0; i < 4; i++ {
		p := GetS(x, W16, i) * GetS(y, W16, i)
		a.Lanes[i] = wrap(a.Lanes[i]+p, 48)
	}
}

// ACCW accumulates signed 16-bit lanes: lane[i] += x.w[i] (four 48-bit
// lanes). Used for plain sum reductions (e.g. energies already squared).
func (a *Acc) ACCW(x uint64) {
	for i := 0; i < 4; i++ {
		a.Lanes[i] = wrap(a.Lanes[i]+GetS(x, W16, i), 48)
	}
}

// SADBV accumulates the per-byte-lane absolute differences of the vector
// element pairs x[k], y[k]: for every k, lane[i] += |x[k].b[i] - y[k].b[i]|.
// Bit-identical to calling SADB once per element pair: two's-complement
// truncation is a ring homomorphism (wrap(wrap(v)+d) == wrap(v+d)), so the
// lane sums may be accumulated at full width and wrapped once. The batched
// per-element sums are gathered SWAR-style into 16-bit fields (even byte
// lanes in one word, odd in another) — safe because a sum of at most
// MaxVL=16 byte differences is ≤ 16·255 = 4080, well inside 16 bits.
func (a *Acc) SADBV(x, y []uint64) {
	// The abs-diff is AbsDiffU(·, ·, W8) with the byte-lane constants
	// folded in: SWAR subtract, borrow-mask expansion (Hacker's Delight
	// 2-17), negate-under-mask. Kept inline — this loop runs once per
	// vector element of the motion-estimation kernels.
	const (
		mask = 0x00FF00FF00FF00FF
		l8   = 0x0101010101010101
		h8   = 0x8080808080808080
	)
	var ev, od uint64
	for k := range x {
		xv, yv := x[k], y[k]
		d := ((xv | h8) - (yv &^ h8)) ^ ((xv ^ yv ^ h8) & h8)
		m := ((((^xv & yv) | (^(xv ^ yv) & d)) & h8) >> 7) * 0xFF
		d = (d ^ m) + (m & l8)
		ev += d & mask
		od += (d >> 8) & mask
	}
	for i := 0; i < 4; i++ {
		a.Lanes[2*i] = wrap(a.Lanes[2*i]+int64(ev>>(16*uint(i))&0xFFFF), 24)
		a.Lanes[2*i+1] = wrap(a.Lanes[2*i+1]+int64(od>>(16*uint(i))&0xFFFF), 24)
	}
}

// MACWV accumulates signed 16-bit lane products over the vector element
// pairs x[k], y[k]: for every k, lane[i] += x[k].w[i]*y[k].w[i].
// Bit-identical to per-element MACW by the same wrap-congruence argument:
// each product is < 2^30 and there are at most MaxVL=16 of them, so the
// full-width partial sums stay < 2^34 — no int64 overflow before the
// single final 48-bit wrap.
func (a *Acc) MACWV(x, y []uint64) {
	var s0, s1, s2, s3 int64
	for k := range x {
		xv, yv := x[k], y[k]
		s0 += GetS(xv, W16, 0) * GetS(yv, W16, 0)
		s1 += GetS(xv, W16, 1) * GetS(yv, W16, 1)
		s2 += GetS(xv, W16, 2) * GetS(yv, W16, 2)
		s3 += GetS(xv, W16, 3) * GetS(yv, W16, 3)
	}
	a.Lanes[0] = wrap(a.Lanes[0]+s0, 48)
	a.Lanes[1] = wrap(a.Lanes[1]+s1, 48)
	a.Lanes[2] = wrap(a.Lanes[2]+s2, 48)
	a.Lanes[3] = wrap(a.Lanes[3]+s3, 48)
}

// ACCWV accumulates signed 16-bit lanes over the vector elements x[k]:
// for every k, lane[i] += x[k].w[i]. Bit-identical to per-element ACCW
// (wrap congruence; ≤ 16 halfwords per lane cannot overflow int64).
func (a *Acc) ACCWV(x []uint64) {
	var s0, s1, s2, s3 int64
	for k := range x {
		xv := x[k]
		s0 += GetS(xv, W16, 0)
		s1 += GetS(xv, W16, 1)
		s2 += GetS(xv, W16, 2)
		s3 += GetS(xv, W16, 3)
	}
	a.Lanes[0] = wrap(a.Lanes[0]+s0, 48)
	a.Lanes[1] = wrap(a.Lanes[1]+s1, 48)
	a.Lanes[2] = wrap(a.Lanes[2]+s2, 48)
	a.Lanes[3] = wrap(a.Lanes[3]+s3, 48)
}

// Sum reduces the accumulator to a single scalar in the given mode
// (the "R=SUM(A)" operation). Byte mode sums eight lanes, halfword mode
// four. Only one vector lane performs this final reduction in hardware;
// the full-latency (non-chained) scheduling of SUM reflects that.
func (a *Acc) Sum(w Width) int64 {
	lanes, _ := accLaneBits(w)
	var s int64
	for i := 0; i < lanes; i++ {
		s += a.Lanes[i]
	}
	return s
}

// Pack returns the four halfword-mode lanes shifted right arithmetically
// by sh, saturated to int16 and packed into one 64-bit word (the MDMX-like
// accumulator round-and-pack operation).
func (a *Acc) Pack(sh uint) uint64 {
	var r uint64
	for i := 0; i < 4; i++ {
		v := a.Lanes[i] >> sh
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		r = Put(r, W16, i, uint64(v))
	}
	return r
}

// SumSat reduces like Sum and then saturates the result to a signed field
// of the given number of bits (used when storing reductions into packed
// 16/32-bit destinations).
func (a *Acc) SumSat(w Width, bits uint) int64 {
	s := a.Sum(w)
	max := int64(1)<<(bits-1) - 1
	min := -(int64(1) << (bits - 1))
	if s > max {
		return max
	}
	if s < min {
		return min
	}
	return s
}
