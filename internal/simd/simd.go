// Package simd implements the functional semantics of the µSIMD
// (sub-word SIMD) operations used by the Vector-µSIMD-VLIW architecture.
//
// A µSIMD register is a single 64-bit word that packs either eight 8-bit,
// four 16-bit, or two 32-bit items. Every function in this package operates
// on such packed words, exactly as the corresponding machine operation
// would: the simulator's execution engine and the vector functional units
// (which apply one of these word operations per vector element) are both
// built on top of it.
//
// The opcode set mirrors the integer subset of Intel SSE/MMX (the paper
// states its µSIMD extension "provides 67 opcodes fairly similar to Intel's
// SSE integer opcodes") plus the MDMX-like packed-accumulator operations
// (SAD and multiply-accumulate) needed for reductions.
package simd

// Width is the sub-word element width of a packed operation.
type Width uint8

// Sub-word widths supported by the architecture. A 64-bit word packs
// 8, 4 or 2 elements respectively.
const (
	W8  Width = 1 // eight 8-bit items
	W16 Width = 2 // four 16-bit items
	W32 Width = 4 // two 32-bit items
	W64 Width = 8 // one 64-bit item (degenerate, used by a few moves)
)

// Lanes reports how many sub-word elements of width w fit in a 64-bit word.
func (w Width) Lanes() int {
	switch w {
	case W8:
		return 8
	case W16:
		return 4
	case W32:
		return 2
	case W64:
		return 1
	}
	panic("simd: invalid width")
}

// Bits reports the width of one element in bits.
func (w Width) Bits() int { return int(w) * 8 }

// String implements fmt.Stringer.
func (w Width) String() string {
	switch w {
	case W8:
		return "b"
	case W16:
		return "w"
	case W32:
		return "d"
	case W64:
		return "q"
	}
	return "?"
}

// getU extracts lane i of word x as an unsigned value.
func getU(x uint64, w Width, i int) uint64 {
	sh := uint(i) * uint(w) * 8
	mask := ^uint64(0) >> (64 - uint(w)*8)
	return (x >> sh) & mask
}

// getS extracts lane i of word x as a signed value.
func getS(x uint64, w Width, i int) int64 {
	v := getU(x, w, i)
	bits := uint(w) * 8
	return int64(v<<(64-bits)) >> (64 - bits)
}

// put stores the low bits of v into lane i of word x.
func put(x uint64, w Width, i int, v uint64) uint64 {
	sh := uint(i) * uint(w) * 8
	mask := (^uint64(0) >> (64 - uint(w)*8)) << sh
	return (x &^ mask) | ((v << sh) & mask)
}

// GetU returns lane i of x zero-extended. It is exported for use by the
// execution engine and tests.
func GetU(x uint64, w Width, i int) uint64 { return getU(x, w, i) }

// GetS returns lane i of x sign-extended.
func GetS(x uint64, w Width, i int) int64 { return getS(x, w, i) }

// Put returns x with lane i replaced by the low bits of v.
func Put(x uint64, w Width, i int, v uint64) uint64 { return put(x, w, i, v) }

// mapLanes applies an unsigned lane-wise binary function.
func mapLanes(a, b uint64, w Width, f func(x, y uint64) uint64) uint64 {
	var r uint64
	for i := 0; i < w.Lanes(); i++ {
		r = put(r, w, i, f(getU(a, w, i), getU(b, w, i)))
	}
	return r
}

// mapLanesS applies a signed lane-wise binary function.
func mapLanesS(a, b uint64, w Width, f func(x, y int64) int64) uint64 {
	var r uint64
	for i := 0; i < w.Lanes(); i++ {
		r = put(r, w, i, uint64(f(getS(a, w, i), getS(b, w, i))))
	}
	return r
}

// laneMasks returns the two partitioned-arithmetic constants of width w:
// lsb has the least-significant bit of every lane set (0x01…01 for bytes),
// msb has the sign bit of every lane set (0x80…80 for bytes). All the SWAR
// kernels below are built from these two masks, following the classic
// Hacker's-Delight partitioned-add construction: clear or force the lane
// sign bits so carries and borrows cannot cross a lane boundary, do one
// full-width 64-bit operation, then patch the sign-bit column back in.
func laneMasks(w Width) (lsb, msb uint64) {
	switch w {
	case W8:
		return 0x0101010101010101, 0x8080808080808080
	case W16:
		return 0x0001000100010001, 0x8000800080008000
	case W32:
		return 0x0000000100000001, 0x8000000080000000
	}
	return 1, 1 << 63 // W64: one degenerate lane
}

// expand turns a lane-sign-bit flag mask into a full-lane mask: every lane
// whose msb is set in m becomes all-ones. The multiply spreads each 0/1
// lane flag across its lane without touching the neighbours.
func expand(m uint64, w Width) uint64 {
	bits := uint(w) * 8
	return (m >> (bits - 1)) * (uint64(1)<<bits - 1)
}

// ltUMask returns a full-lane mask of the lanes where a < b unsigned: the
// borrow out of each lane of a-b, computed bitwise from the operand sign
// bits and the partitioned difference (Hacker's Delight 2-17).
func ltUMask(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	d := Sub(a, b, w)
	return expand(((^a&b)|(^(a^b)&d))&h, w)
}

// ltSMask returns a full-lane mask of the lanes where a < b signed: true
// when a is negative and b is not, or when equal signs make the (then
// overflow-free) difference negative.
func ltSMask(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	d := Sub(a, b, w)
	return expand(((a&^b)|(^(a^b)&d))&h, w)
}

// satS clamps v to the signed range of width w.
func satS(v int64, w Width) int64 {
	bits := uint(w) * 8
	max := int64(1)<<(bits-1) - 1
	min := -(int64(1) << (bits - 1))
	if v > max {
		return max
	}
	if v < min {
		return min
	}
	return v
}

// satU clamps v to the unsigned range of width w.
func satU(v int64, w Width) uint64 {
	bits := uint(w) * 8
	max := int64(1)<<bits - 1
	if v > max {
		return uint64(max)
	}
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Add performs lane-wise modular addition (PADDB/PADDW/PADDD): add with
// the lane sign bits cleared so no carry crosses a lane, then restore the
// sign-bit column (x7^y7^carry-in).
func Add(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	return ((a &^ h) + (b &^ h)) ^ ((a ^ b) & h)
}

// Sub performs lane-wise modular subtraction (PSUBB/PSUBW/PSUBD): force
// the minuend sign bits to 1 and clear the subtrahend's so no borrow
// crosses a lane, then patch the sign-bit column.
func Sub(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	return ((a | h) - (b &^ h)) ^ ((a ^ b ^ h) & h)
}

// AddS performs lane-wise signed saturating addition (PADDSB/PADDSW).
// Overflowed lanes (equal operand signs, flipped result sign) are replaced
// by MaxS + sign(a): 0x7F… for positive overflow, 0x80… for negative.
func AddS(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	s := Add(a, b, w)
	ovf := expand(^(a^b)&(a^s)&h, w)
	sat := ^h + ((a & h) >> (uint(w)*8 - 1))
	return (s &^ ovf) | (sat & ovf)
}

// SubS performs lane-wise signed saturating subtraction (PSUBSB/PSUBSW):
// overflow when the operand signs differ and the result sign flipped.
func SubS(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	s := Sub(a, b, w)
	ovf := expand((a^b)&(a^s)&h, w)
	sat := ^h + ((a & h) >> (uint(w)*8 - 1))
	return (s &^ ovf) | (sat & ovf)
}

// AddU performs lane-wise unsigned saturating addition (PADDUSB/PADDUSW):
// lanes with a carry out of their sign bit saturate to all-ones.
func AddU(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	s := Add(a, b, w)
	carry := ((a & b) | ((a | b) &^ s)) & h
	return s | expand(carry, w)
}

// SubU performs lane-wise unsigned saturating subtraction (PSUBUSB/
// PSUBUSW): lanes that would borrow clamp to zero.
func SubU(a, b uint64, w Width) uint64 {
	return Sub(a, b, w) &^ ltUMask(a, b, w)
}

// MulLo multiplies lanes and keeps the low half of each product (PMULLW).
// The low half of a product is the same for signed and unsigned operands,
// so every lane is one plain unsigned multiply; the unrolled forms keep
// the hot path off the generic per-lane mapping.
func MulLo(a, b uint64, w Width) uint64 {
	var r uint64
	switch w {
	case W8:
		for i := 0; i < 64; i += 8 {
			r |= ((a >> i & 0xFF) * (b >> i & 0xFF) & 0xFF) << i
		}
	case W16:
		for i := 0; i < 64; i += 16 {
			r |= ((a >> i & 0xFFFF) * (b >> i & 0xFFFF) & 0xFFFF) << i
		}
	case W32:
		r = (a&0xFFFFFFFF)*(b&0xFFFFFFFF)&0xFFFFFFFF | (a>>32)*(b>>32)<<32
	default:
		r = a * b
	}
	return r
}

// MulHi multiplies signed lanes and keeps the high half (PMULHW).
func MulHi(a, b uint64, w Width) uint64 {
	bits := uint(w) * 8
	return mapLanesS(a, b, w, func(x, y int64) int64 { return (x * y) >> bits })
}

// MAdd multiplies signed 16-bit lanes and adds adjacent pairs into 32-bit
// lanes (PMADDWD). The width argument of the machine operation is fixed at
// W16; the result is W32 packed.
func MAdd(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 2; i++ {
		p0 := getS(a, W16, 2*i) * getS(b, W16, 2*i)
		p1 := getS(a, W16, 2*i+1) * getS(b, W16, 2*i+1)
		r = put(r, W32, i, uint64(p0+p1))
	}
	return r
}

// AvgU performs lane-wise unsigned rounding average (PAVGB/PAVGW):
// (a+b+1)>>1, via the carry-free identity ceil((x+y)/2) = (x|y)-((x^y)>>1).
// The shifted term masks off each lane's sign-bit position, which the
// shift filled with the neighbouring lane's low bit; the full-width
// subtraction never borrows across lanes because each lane's minuend is at
// least its subtrahend.
func AvgU(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	return (a | b) - (((a ^ b) >> 1) &^ h)
}

// MinU / MaxU are unsigned lane-wise min/max (PMINUB/PMAXUB), selected by
// the unsigned borrow mask.
func MinU(a, b uint64, w Width) uint64 {
	m := ltUMask(a, b, w)
	return (a & m) | (b &^ m)
}

// MaxU is the unsigned lane-wise maximum.
func MaxU(a, b uint64, w Width) uint64 {
	m := ltUMask(a, b, w)
	return (b & m) | (a &^ m)
}

// MinS / MaxS are signed lane-wise min/max (PMINSW/PMAXSW).
func MinS(a, b uint64, w Width) uint64 {
	m := ltSMask(a, b, w)
	return (a & m) | (b &^ m)
}

// MaxS is the signed lane-wise maximum.
func MaxS(a, b uint64, w Width) uint64 {
	m := ltSMask(a, b, w)
	return (b & m) | (a &^ m)
}

// AbsDiffU computes the lane-wise unsigned absolute difference |a-b|:
// one partitioned difference, then a conditional per-lane negate. In a
// borrowing lane the wrapped difference d is b-a negated mod 2^bits, so
// |a-b| = ^d + 1 there — computed as (d^m) + (m&lsb), where the add can
// never carry across lanes because a borrowing lane has d != 0 (a < b
// implies a - b is a nonzero residue), hence ^d + 1 <= lane max.
func AbsDiffU(a, b uint64, w Width) uint64 {
	l, h := laneMasks(w)
	d := Sub(a, b, w)
	m := expand(((^a&b)|(^(a^b)&d))&h, w)
	return (d ^ m) + (m & l)
}

// SAD computes the sum of absolute differences of the eight unsigned bytes
// of a and b (PSADBW): a single scalar result. The horizontal reduction
// folds the byte differences pairwise (16-bit partial sums never exceed
// 2040, so no fold overflows its slot).
func SAD(a, b uint64) uint64 {
	d := AbsDiffU(a, b, W8)
	const m1 = 0x00FF00FF00FF00FF
	s := (d & m1) + ((d >> 8) & m1)
	s += s >> 16
	s += s >> 32
	return s & 0xFFFF
}

// SADLanes computes the per-byte-lane absolute differences of a and b,
// returning them as eight separate values. It is the element step of the
// MDMX-style packed-accumulator SAD: each byte lane accumulates into its own
// 24-bit accumulator lane.
func SADLanes(a, b uint64) [8]uint64 {
	var r [8]uint64
	for i := 0; i < 8; i++ {
		x, y := getU(a, W8, i), getU(b, W8, i)
		if x > y {
			r[i] = x - y
		} else {
			r[i] = y - x
		}
	}
	return r
}

// And, Or, Xor, AndNot are the bit-wise logical operations (PAND/POR/PXOR/
// PANDN). AndNot computes ^a & b, matching the SSE PANDN semantics.
func And(a, b uint64) uint64    { return a & b }
func Or(a, b uint64) uint64     { return a | b }
func Xor(a, b uint64) uint64    { return a ^ b }
func AndNot(a, b uint64) uint64 { return ^a & b }

// ShlI shifts each lane left by imm bits (PSLLW/PSLLD): one full-width
// shift, then clear the low imm bits of every lane (filled from the lane
// below). Shifts >= lane width produce zero, as in SSE.
func ShlI(a uint64, w Width, imm uint) uint64 {
	if imm >= uint(w)*8 {
		return 0
	}
	if imm == 0 {
		return a
	}
	l, _ := laneMasks(w)
	return (a << imm) &^ ((uint64(1)<<imm - 1) * l)
}

// ShrI logically shifts each lane right by imm bits (PSRLW/PSRLD),
// clearing the high imm bits of every lane.
func ShrI(a uint64, w Width, imm uint) uint64 {
	bits := uint(w) * 8
	if imm >= bits {
		return 0
	}
	if imm == 0 {
		return a
	}
	l, _ := laneMasks(w)
	return (a >> imm) & ((uint64(1)<<(bits-imm) - 1) * l)
}

// SraI arithmetically shifts each lane right by imm bits (PSRAW/PSRAD):
// the logical shift, plus the high imm bits of every negative lane forced
// to one. Shifts >= lane width replicate the sign bit, as in SSE.
func SraI(a uint64, w Width, imm uint) uint64 {
	bits := uint(w) * 8
	if imm >= bits {
		imm = bits - 1
	}
	if imm == 0 {
		return a
	}
	l, h := laneMasks(w)
	top := ((uint64(1)<<imm - 1) << (bits - imm)) * l
	return ((a >> imm) & ((uint64(1)<<(bits-imm) - 1) * l)) | (top & expand(a&h, w))
}

// CmpEq sets each lane to all-ones where a == b, else zero (PCMPEQB/W/D):
// zero-lane detection on a^b (a lane is zero iff neither its sign bit is
// set nor adding 0x7F… to its low bits carries into the sign position).
func CmpEq(a, b uint64, w Width) uint64 {
	_, h := laneMasks(w)
	z := a ^ b
	return expand(^(((z&^h)+^h)|z)&h, w)
}

// CmpGtS sets each lane to all-ones where a > b (signed), else zero
// (PCMPGTB/W/D).
func CmpGtS(a, b uint64, w Width) uint64 {
	return ltSMask(b, a, w)
}

// PackSS packs the signed lanes of a (low half of the result) and b (high
// half) into lanes of half the width with signed saturation (PACKSSWB /
// PACKSSDW). w is the source width (W16 or W32).
func PackSS(a, b uint64, w Width) uint64 {
	half := w / 2
	n := w.Lanes()
	var r uint64
	for i := 0; i < n; i++ {
		r = put(r, half, i, uint64(satS(getS(a, w, i), half)))
		r = put(r, half, n+i, uint64(satS(getS(b, w, i), half)))
	}
	return r
}

// PackUS packs signed source lanes into unsigned half-width lanes with
// unsigned saturation (PACKUSWB). w is the source width.
func PackUS(a, b uint64, w Width) uint64 {
	half := w / 2
	n := w.Lanes()
	var r uint64
	for i := 0; i < n; i++ {
		r = put(r, half, i, satU(getS(a, w, i), half))
		r = put(r, half, n+i, satU(getS(b, w, i), half))
	}
	return r
}

// UnpackLo interleaves the low-half lanes of a and b into double-width
// positions (PUNPCKLBW/PUNPCKLWD/PUNPCKLDQ at width w): the result holds
// a[0], b[0], a[1], b[1], ... for the low n/2 source lanes.
func UnpackLo(a, b uint64, w Width) uint64 {
	n := w.Lanes()
	var r uint64
	for i := 0; i < n/2; i++ {
		r = put(r, w, 2*i, getU(a, w, i))
		r = put(r, w, 2*i+1, getU(b, w, i))
	}
	if n == 1 { // W64 degenerate: result is a
		return a
	}
	return r
}

// UnpackHi interleaves the high-half lanes of a and b (PUNPCKHBW etc.).
func UnpackHi(a, b uint64, w Width) uint64 {
	n := w.Lanes()
	var r uint64
	for i := 0; i < n/2; i++ {
		r = put(r, w, 2*i, getU(a, w, n/2+i))
		r = put(r, w, 2*i+1, getU(b, w, n/2+i))
	}
	if n == 1 {
		return b
	}
	return r
}

// Splat broadcasts the low lane of width w of v to all lanes: the lane
// value times the per-lane LSB mask replicates it without overlap.
func Splat(v uint64, w Width) uint64 {
	l, _ := laneMasks(w)
	return getU(v, w, 0) * l
}
