package simd

import (
	"fmt"
	"testing"
)

// The SWAR kernels are cross-checked against the retained lane-loop
// reference implementations (reference.go): over seeded random inputs, at
// every width, and on the classic saturation/overflow edge vectors (sign
// columns, saturation boundaries, alternating lanes, zero-lane patterns).

// allWidths covers every partition the 64-bit word supports, including
// the degenerate single-lane W64.
var allWidths = []Width{W8, W16, W32, W64}

// edgeWords are the adversarial operand patterns: every lane at the signed
// minimum / maximum, carry chains (all-ones), alternating lanes, and
// single-bit columns that expose cross-lane carry and borrow leaks.
var edgeWords = []uint64{
	0,
	^uint64(0),
	0x8080808080808080, 0x7F7F7F7F7F7F7F7F,
	0x8000800080008000, 0x7FFF7FFF7FFF7FFF,
	0x8000000080000000, 0x7FFFFFFF7FFFFFFF,
	0x8000000000000000, 0x7FFFFFFFFFFFFFFF,
	0x0101010101010101, 0xFEFEFEFEFEFEFEFE,
	0x00FF00FF00FF00FF, 0xFF00FF00FF00FF00,
	0x0001000100010001, 0xFFFEFFFEFFFEFFFE,
	0x00000000FFFFFFFF, 0xFFFFFFFF00000000,
	0x0123456789ABCDEF, 0xDEADBEEFCAFEF00D,
	1, 0x80, 0x8000, 0x80000000,
}

// xorshift is the seeded generator for the random cross-check corpus
// (deterministic, so a failure reproduces).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v * 0x9E3779B97F4A7C15
}

// operandPairs yields the full edge-vector cross product followed by n
// seeded random pairs.
func operandPairs(n int, f func(a, b uint64)) {
	for _, a := range edgeWords {
		for _, b := range edgeWords {
			f(a, b)
		}
	}
	rng := xorshift(0x5EED5EED5EED5EED)
	for i := 0; i < n; i++ {
		f(rng.next(), rng.next())
	}
}

func TestSWARBinaryAgainstReference(t *testing.T) {
	// The saturating and averaging references compute through 64-bit
	// intermediates that are only exact up to 32-bit lanes (satU/satS
	// overflow their own clamp bounds at W64, AvgU wraps x+y+1); the ISA
	// restricts those opcodes to W8/W16 anyway, so the cross-check covers
	// the supported widths plus W32. Everything else is checked at all
	// four partitions including the degenerate W64.
	subWord := []Width{W8, W16, W32}
	cases := []struct {
		name   string
		widths []Width
		swar   func(a, b uint64, w Width) uint64
		ref    func(a, b uint64, w Width) uint64
	}{
		{"Add", allWidths, Add, refAdd},
		{"Sub", allWidths, Sub, refSub},
		{"AddS", subWord, AddS, refAddS},
		{"SubS", subWord, SubS, refSubS},
		{"AddU", subWord, AddU, refAddU},
		{"SubU", subWord, SubU, refSubU},
		{"AvgU", subWord, AvgU, refAvgU},
		{"MinU", allWidths, MinU, refMinU},
		{"MaxU", allWidths, MaxU, refMaxU},
		{"MinS", allWidths, MinS, refMinS},
		{"MaxS", allWidths, MaxS, refMaxS},
		{"AbsDiffU", allWidths, AbsDiffU, refAbsDiffU},
		{"CmpEq", allWidths, CmpEq, refCmpEq},
		{"CmpGtS", allWidths, CmpGtS, refCmpGtS},
	}
	for _, tc := range cases {
		for _, w := range tc.widths {
			t.Run(fmt.Sprintf("%s/%s", tc.name, w), func(t *testing.T) {
				operandPairs(4096, func(a, b uint64) {
					got, want := tc.swar(a, b, w), tc.ref(a, b, w)
					if got != want {
						t.Fatalf("%s(%#016x, %#016x, %s) = %#016x, reference %#016x",
							tc.name, a, b, w, got, want)
					}
				})
			})
		}
	}
}

func TestSWARSADAgainstReference(t *testing.T) {
	operandPairs(4096, func(a, b uint64) {
		if got, want := SAD(a, b), refSAD(a, b); got != want {
			t.Fatalf("SAD(%#016x, %#016x) = %d, reference %d", a, b, got, want)
		}
	})
}

func TestSWARShiftsAgainstReference(t *testing.T) {
	cases := []struct {
		name string
		swar func(a uint64, w Width, imm uint) uint64
		ref  func(a uint64, w Width, imm uint) uint64
	}{
		{"ShlI", ShlI, refShlI},
		{"ShrI", ShrI, refShrI},
		{"SraI", SraI, refSraI},
	}
	for _, tc := range cases {
		for _, w := range allWidths {
			t.Run(fmt.Sprintf("%s/%s", tc.name, w), func(t *testing.T) {
				// Every shift count through the lane width and beyond
				// (over-shifts must zero or sign-fill, as in SSE).
				for imm := uint(0); imm <= uint(w)*8+2; imm++ {
					operandPairs(256, func(a, _ uint64) {
						got, want := tc.swar(a, w, imm), tc.ref(a, w, imm)
						if got != want {
							t.Fatalf("%s(%#016x, %s, %d) = %#016x, reference %#016x",
								tc.name, a, w, imm, got, want)
						}
					})
				}
			})
		}
	}
}

func TestSWARSplatAgainstReference(t *testing.T) {
	for _, w := range allWidths {
		operandPairs(1024, func(v, _ uint64) {
			if got, want := Splat(v, w), refSplat(v, w); got != want {
				t.Fatalf("Splat(%#016x, %s) = %#016x, reference %#016x", v, w, got, want)
			}
		})
	}
}
