package simd

import (
	"testing"
	"testing/quick"
)

func TestAccClear(t *testing.T) {
	var a Acc
	a.Lanes[0] = 42
	a.Clear()
	for i, v := range a.Lanes {
		if v != 0 {
			t.Fatalf("lane %d = %d after Clear", i, v)
		}
	}
}

func TestAccSADB(t *testing.T) {
	var a Acc
	x := Put(Put(0, W8, 0, 10), W8, 7, 200)
	y := Put(Put(0, W8, 0, 14), W8, 7, 150)
	a.SADB(x, y)
	if a.Lanes[0] != 4 || a.Lanes[7] != 50 {
		t.Errorf("lanes = %v, want lane0=4 lane7=50", a.Lanes)
	}
	// Accumulation across calls.
	a.SADB(x, y)
	if a.Lanes[0] != 8 || a.Lanes[7] != 100 {
		t.Errorf("accumulation failed: %v", a.Lanes)
	}
}

func TestAccSADBWraps24Bits(t *testing.T) {
	var a Acc
	x := Put(0, W8, 0, 255)
	// 255 per step; lane is 24-bit signed: wraps after 2^23/255 steps.
	steps := (1 << 23) / 255
	for i := 0; i <= steps; i++ {
		a.SADB(x, 0)
	}
	if a.Lanes[0] >= 1<<23 {
		t.Errorf("lane exceeded 24-bit signed range: %d", a.Lanes[0])
	}
}

func TestAccMACW(t *testing.T) {
	var a Acc
	x := Put(Put(0, W16, 0, 100), W16, 3, uint64(0xFFFF)) // lane3 = -1
	y := Put(Put(0, W16, 0, 200), W16, 3, 50)
	a.MACW(x, y)
	if a.Lanes[0] != 20000 {
		t.Errorf("lane0 = %d, want 20000", a.Lanes[0])
	}
	if a.Lanes[3] != -50 {
		t.Errorf("lane3 = %d, want -50", a.Lanes[3])
	}
}

func TestAccACCW(t *testing.T) {
	var a Acc
	x := Put(Put(0, W16, 1, 7), W16, 2, uint64(0xFFF9)) // -7
	a.ACCW(x)
	a.ACCW(x)
	if a.Lanes[1] != 14 || a.Lanes[2] != -14 {
		t.Errorf("lanes = %v", a.Lanes[:4])
	}
}

func TestAccSum(t *testing.T) {
	var a Acc
	for i := range a.Lanes {
		a.Lanes[i] = int64(i + 1)
	}
	if got := a.Sum(W8); got != 36 {
		t.Errorf("Sum byte mode = %d, want 36", got)
	}
	if got := a.Sum(W16); got != 10 {
		t.Errorf("Sum halfword mode = %d, want 10 (four lanes)", got)
	}
}

func TestAccSumSat(t *testing.T) {
	var a Acc
	a.Lanes[0] = 1 << 40
	if got := a.SumSat(W16, 32); got != (1<<31)-1 {
		t.Errorf("SumSat = %d, want int32 max", got)
	}
	a.Lanes[0] = -(1 << 40)
	if got := a.SumSat(W16, 32); got != -(1 << 31) {
		t.Errorf("SumSat = %d, want int32 min", got)
	}
	a.Lanes[0] = 1234
	if got := a.SumSat(W16, 32); got != 1234 {
		t.Errorf("SumSat in-range = %d, want 1234", got)
	}
}

func TestAccLaneBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for W32 accumulator mode")
		}
	}()
	var a Acc
	a.Sum(W32)
}

func TestPropAccSADBEqualsScalarSAD(t *testing.T) {
	// Sum over accumulator lanes after one SADB step equals the scalar SAD.
	f := func(x, y uint64) bool {
		var a Acc
		a.SADB(x, y)
		return uint64(a.Sum(W8)) == SAD(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAccMACWMatchesMAdd(t *testing.T) {
	// One MACW step summed equals the sum of the two MAdd 32-bit lanes.
	f := func(x, y uint64) bool {
		var a Acc
		a.MACW(x, y)
		m := MAdd(x, y)
		return a.Sum(W16) == GetS(m, W32, 0)+GetS(m, W32, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// seedAcc pre-loads an accumulator with arbitrary lane values wrapped to
// the architectural lane width, so the batched-vs-per-element properties
// also cover accumulation on top of prior (possibly wrapped) state.
func seedAcc(seed [8]int64, bits uint) Acc {
	var a Acc
	for i, v := range seed {
		a.Lanes[i] = wrap(v, bits)
	}
	return a
}

func TestPropAccSADBVEqualsPerElement(t *testing.T) {
	// One batched SADBV over a vector slice is bit-identical to calling
	// SADB once per element pair, from any starting accumulator state.
	f := func(x, y [16]uint64, n uint8, seed [8]int64) bool {
		vl := int(n%16) + 1
		batched := seedAcc(seed, 24)
		element := batched
		batched.SADBV(x[:vl], y[:vl])
		for k := 0; k < vl; k++ {
			element.SADB(x[k], y[k])
		}
		return batched == element
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAccMACWVEqualsPerElement(t *testing.T) {
	f := func(x, y [16]uint64, n uint8, seed [8]int64) bool {
		vl := int(n%16) + 1
		batched := seedAcc(seed, 48)
		element := batched
		batched.MACWV(x[:vl], y[:vl])
		for k := 0; k < vl; k++ {
			element.MACW(x[k], y[k])
		}
		return batched == element
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAccACCWVEqualsPerElement(t *testing.T) {
	f := func(x [16]uint64, n uint8, seed [8]int64) bool {
		vl := int(n%16) + 1
		batched := seedAcc(seed, 48)
		element := batched
		batched.ACCWV(x[:vl])
		for k := 0; k < vl; k++ {
			element.ACCW(x[k])
		}
		return batched == element
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
