package apps

import (
	"bytes"
	"fmt"
	"testing"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sched"
	"vsimdvliw/internal/sim"
)

// cfgFor picks a representative machine for a variant.
func cfgFor(v kernels.Variant) *machine.Config {
	switch v {
	case kernels.Scalar:
		return &machine.VLIW4
	case kernels.USIMD:
		return &machine.USIMD4
	default:
		return &machine.Vector2x4
	}
}

// runApp builds and executes one app/variant on perfect memory.
func runApp(t *testing.T, a *App, v kernels.Variant, cfg *machine.Config) (*sim.Machine, *sim.Result, *Built) {
	t.Helper()
	built := a.Build(v)
	prog, err := core.Compile(built.Func, cfg)
	if err != nil {
		t.Fatalf("%s/%v on %s: compile: %v", a.Name, v, cfg.Name, err)
	}
	m := prog.NewMachine(core.Perfect)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s/%v: run: %v", a.Name, v, err)
	}
	return m, res, built
}

func verifyChecks(t *testing.T, name string, v kernels.Variant, m *sim.Machine, built *Built) {
	t.Helper()
	for _, c := range built.Checks {
		got, err := m.ReadBytes(c.Addr, int64(len(c.Want)))
		if err != nil {
			t.Fatalf("%s/%v check %s: %v", name, v, c.Name, err)
		}
		if !bytes.Equal(got, c.Want) {
			for i := range c.Want {
				if got[i] != c.Want[i] {
					t.Fatalf("%s/%v check %s: first mismatch at +%d: got %#x want %#x",
						name, v, c.Name, i, got[i], c.Want[i])
				}
			}
		}
	}
}

func TestAllAppsAllVariantsFunctional(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cross := map[kernels.Variant][][]byte{}
			for _, v := range Variants {
				m, res, built := runApp(t, a, v, cfgFor(v))
				verifyChecks(t, a.Name, v, m, built)
				if res.Cycles == 0 || res.Ops == 0 {
					t.Fatalf("%s/%v: empty run", a.Name, v)
				}
				var outs [][]byte
				for _, cc := range built.CrossChecks {
					raw, err := m.ReadBytes(cc.Addr, cc.Len)
					if err != nil {
						t.Fatal(err)
					}
					outs = append(outs, raw)
				}
				cross[v] = outs
			}
			// Scalar-region outputs must be identical across variants.
			for i := range cross[kernels.Scalar] {
				if !bytes.Equal(cross[kernels.Scalar][i], cross[kernels.USIMD][i]) ||
					!bytes.Equal(cross[kernels.Scalar][i], cross[kernels.Vector][i]) {
					t.Errorf("%s: cross-variant output %d differs", a.Name, i)
				}
			}
		})
	}
}

func TestVectorVariantFitsTightestConfig(t *testing.T) {
	// Every vector-variant application must fit the 20-register vector
	// file and 4 accumulators of the 2-issue configurations (Table 2).
	for _, a := range All() {
		built := a.Build(kernels.Vector)
		if _, err := core.Compile(built.Func, &machine.Vector1x2); err != nil {
			t.Errorf("%s does not fit Vector1-2w: %v", a.Name, err)
		}
	}
}

func TestScalarVariantFitsAllVLIWs(t *testing.T) {
	for _, a := range All() {
		built := a.Build(kernels.Scalar)
		for _, cfg := range []*machine.Config{&machine.VLIW2, &machine.VLIW8} {
			if _, err := core.Compile(built.Func, cfg); err != nil {
				t.Errorf("%s does not fit %s: %v", a.Name, cfg.Name, err)
			}
		}
	}
}

func TestUSIMDVariantFits(t *testing.T) {
	for _, a := range All() {
		built := a.Build(kernels.USIMD)
		if _, err := core.Compile(built.Func, &machine.USIMD2); err != nil {
			t.Errorf("%s does not fit uSIMD-2w: %v", a.Name, err)
		}
	}
}

func TestVectorRegionsAccountedSeparately(t *testing.T) {
	// Each app must spend measurable cycles in its declared regions.
	for _, a := range All() {
		_, res, _ := runApp(t, a, kernels.Vector, &machine.Vector2x4)
		for i := range a.Regions {
			if res.Regions[i+1].Cycles == 0 {
				t.Errorf("%s: region R%d (%s) has no cycles", a.Name, i+1, a.Regions[i])
			}
		}
		if res.Regions[0].Cycles == 0 {
			t.Errorf("%s: scalar region has no cycles", a.Name)
		}
	}
}

func TestVectorBeatsScalarOnVectorRegions(t *testing.T) {
	// The whole point of the paper: on comparable-width machines, the
	// vector variant's vector regions run much faster than the scalar
	// variant's.
	for _, a := range All() {
		_, sres, _ := runApp(t, a, kernels.Scalar, &machine.VLIW2)
		_, vres, _ := runApp(t, a, kernels.Vector, &machine.Vector2x2)
		sv := sres.VectorCycles()
		vv := vres.VectorCycles()
		if vv >= sv {
			t.Errorf("%s: vector regions on Vector2-2w (%d cyc) not faster than on VLIW-2w (%d cyc)",
				a.Name, vv, sv)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("jpeg_enc"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown app")
	}
	if len(All()) != 6 {
		t.Errorf("expected 6 applications, got %d", len(All()))
	}
}

func TestAppOpCountsScaleDown(t *testing.T) {
	// Figure 7: vector variants execute far fewer operations in the
	// vector regions.
	for _, a := range All() {
		counts := map[kernels.Variant]int64{}
		for _, v := range Variants {
			_, res, _ := runApp(t, a, v, cfgFor(v))
			var n int64
			for i := 1; i < sim.MaxRegions; i++ {
				n += res.Regions[i].Ops
			}
			counts[v] = n
		}
		if !(counts[kernels.Vector] < counts[kernels.USIMD] &&
			counts[kernels.USIMD] < counts[kernels.Scalar]) {
			t.Errorf("%s: vector-region ops scalar=%d usimd=%d vector=%d (must decrease)",
				a.Name, counts[kernels.Scalar], counts[kernels.USIMD], counts[kernels.Vector])
		}
	}
}

func ExampleByName() {
	a, _ := ByName("gsm_dec")
	fmt.Println(a.Name, a.Regions)
	// Output: gsm_dec [longterm]
}

// TestAllocatedProgramsRunIdentically lowers every application through
// the register allocator and checks that the allocated form fits the
// target register files and computes bit-identical results.
func TestAllocatedProgramsRunIdentically(t *testing.T) {
	for _, a := range All() {
		for _, v := range Variants {
			cfg := cfgFor(v)
			built := a.Build(v)
			alloc, used, err := sched.Allocate(built.Func, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", a.Name, v, err)
			}
			for _, class := range []isa.RegClass{isa.RegInt, isa.RegSIMD, isa.RegVec, isa.RegAcc} {
				if limit := cfg.Regs(class); limit > 0 && int(used[class]) > limit {
					t.Errorf("%s/%v: %s file demand %d > %d", a.Name, v, class, used[class], limit)
				}
			}
			prog, err := core.Compile(alloc, cfg)
			if err != nil {
				t.Fatalf("%s/%v: allocated program failed to compile: %v", a.Name, v, err)
			}
			m := prog.NewMachine(core.Perfect)
			if _, err := m.Run(); err != nil {
				t.Fatalf("%s/%v: allocated program failed: %v", a.Name, v, err)
			}
			verifyChecks(t, a.Name+"(allocated)", v, m, built)
		}
	}
}

// TestAllocationReducesRegisterCount spot-checks that allocation actually
// compacts the (much larger) virtual numbering.
func TestAllocationReducesRegisterCount(t *testing.T) {
	built := JPEGEnc().Build(kernels.Vector)
	alloc, used, err := sched.Allocate(built.Func, &machine.Vector2x4)
	if err != nil {
		t.Fatal(err)
	}
	if used[isa.RegInt] >= built.Func.NumRegs[isa.RegInt] {
		t.Errorf("int demand %d not below virtual count %d",
			used[isa.RegInt], built.Func.NumRegs[isa.RegInt])
	}
	if alloc.NumOps() != built.Func.NumOps() {
		t.Error("allocation changed the operation count")
	}
}
