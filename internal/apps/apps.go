// Package apps assembles the six benchmark applications of the paper
// (Table 1) from the kernels in internal/kernels and the scalar-region
// code in this package:
//
//	jpeg_enc  — RGB→YCC (R1), blockify+forward DCT (R2), quantization (R3),
//	            zigzag/run-length/bit-packing entropy coding (scalar R0)
//	jpeg_dec  — entropy decoding + dequant + scalar IDCT + deblockify (R0),
//	            YCC→RGB (R1), h2v2 chroma up-sampling (R2)
//	mpeg2_enc — motion estimation (R1), forward DCT (R2), inverse DCT (R3),
//	            quantization + VLC coding (R0)
//	mpeg2_dec — form-component prediction (R1), inverse DCT (R2),
//	            add-block (R3), bitstream decoding (R0)
//	gsm_enc   — LTP parameter search (R1), autocorrelation (R2),
//	            preprocessing + Schur recursion + residual filtering (R0)
//	gsm_dec   — long-term filtering (R1), parameter decoding + short-term
//	            synthesis lattice filter (R0)
//
// Every application is built in the three ISA variants; the scalar-region
// code is byte-for-byte identical across variants, as in the paper. The
// workload sizes below are calibrated once so that the vector regions'
// share of execution time on the 2-issue µSIMD machine approximates the
// paper's Table 1 percentages; every machine configuration runs the
// identical program.
package apps

import (
	"fmt"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
)

// Check is an output assertion: after the run, memory at Addr must equal
// Want. Checks verify the functional pipeline against the pure-Go
// references.
type Check struct {
	Name string
	Addr int64
	Want []byte
}

// CrossCheck names an output region that must be identical across the
// three ISA variants (used for scalar-region outputs such as bitstreams,
// which have no independent reference implementation).
type CrossCheck struct {
	Name string
	Addr int64
	Len  int64
}

// Built is a constructed application program.
type Built struct {
	Func        *ir.Func
	Checks      []Check
	CrossChecks []CrossCheck
}

// App is one benchmark application.
type App struct {
	Name string
	// Regions names the instrumented vector regions R1..R3 (Table 1).
	Regions []string
	Build   func(v kernels.Variant) *Built
}

// All returns the six applications in the paper's order.
func All() []*App {
	return []*App{
		JPEGEnc(),
		JPEGDec(),
		MPEG2Enc(),
		MPEG2Dec(),
		GSMEnc(),
		GSMDec(),
	}
}

// ByName returns the application with the given name.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Variants lists the three code versions.
var Variants = []kernels.Variant{kernels.Scalar, kernels.USIMD, kernels.Vector}
