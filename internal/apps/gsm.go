package apps

import (
	"encoding/binary"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/media"
)

// GSM workloads: the encoder processes gsmFrames 160-sample frames
// (preprocessing, autocorrelation, Schur, short-term analysis filtering,
// LTP search per 40-sample subframe); the decoder reconstructs the same
// number of frames (long-term filtering per subframe + short-term
// synthesis). The scalar rep counts model the codec stages not built
// explicitly (RPE grid selection/decoding, APCM, LAR coding) and are
// calibrated against Table 1.
const (
	gsmFrames        = 6
	gsmEncScalarReps = 10
	gsmDecScalarReps = 6
)

// GSMEnc builds the GSM encoder application.
func GSMEnc() *App {
	return &App{
		Name:    "gsm_enc",
		Regions: []string{"ltp", "autocorr"},
		Build:   buildGSMEnc,
	}
}

func buildGSMEnc(v kernels.Variant) *Built {
	b := ir.NewBuilder("gsm_enc")
	const n = kernels.GSMFrame
	samples := media.Speech(55, n*gsmFrames)

	const (
		aIn = iota + 1
		aSos
		aAcf
		aRefl
		aD
		aLTP
	)
	inAddr := b.DataH(samples)
	sos := b.Alloc(2 * n * gsmFrames)
	acf := b.Alloc(8 * 9 * gsmFrames)
	refl := b.Alloc(8 * 8 * gsmFrames)
	// Residual buffer with a 120-sample zero history in front.
	dBuf := b.Alloc(2 * (kernels.GSMMaxLag + n*gsmFrames))
	ltpOut := b.Alloc(16 * 4 * gsmFrames)

	// Scalar input stage: read the audio input and initialize buffers.
	WarmAll(b)

	for f := 0; f < gsmFrames; f++ {
		frameIn := inAddr + int64(2*n*f)
		frameSos := sos + int64(2*n*f)
		frameAcf := acf + int64(8*9*f)
		frameRefl := refl + int64(8*8*f)
		frameD := dBuf + int64(2*(kernels.GSMMaxLag+n*f))

		// Scalar: offset compensation + preemphasis (serial recurrence).
		for rep := 0; rep < gsmEncScalarReps; rep++ {
			Preprocess(b, frameIn, frameSos, n, aIn, aSos)
		}

		// R2: autocorrelation.
		b.RegionBegin(2)
		kernels.Autocorr(b, v, frameSos, frameAcf, n, 9, aSos, aAcf)
		b.RegionEnd(2)

		// Scalar: Schur recursion + short-term analysis filtering.
		Schur(b, frameAcf, frameRefl, aAcf, aRefl)
		for rep := 0; rep < gsmEncScalarReps; rep++ {
			SynthesisFilter(b, frameRefl, frameSos, frameD, n, aRefl, aSos, aD)
		}

		// R1: LTP parameter search per subframe.
		b.RegionBegin(1)
		for j := 0; j < 4; j++ {
			sub := frameD + int64(2*kernels.GSMSubframe*j)
			hist := sub - int64(2*kernels.GSMMaxLag)
			kernels.LTPParams(b, v, sub, hist, ltpOut+int64(16*(4*f+j)), aD, aD, aLTP)
		}
		b.RegionEnd(1)
	}

	// Reference pipeline.
	var checks []Check
	dRef := make([]int16, kernels.GSMMaxLag+n*gsmFrames)
	var ltpWant []byte
	var acfWant, reflWant []byte
	for f := 0; f < gsmFrames; f++ {
		sosRef := PreprocessRef(samples[n*f : n*(f+1)])
		acfRef := kernels.AutocorrRef(sosRef, 9)
		reflRef := SchurRef(acfRef)
		filtered := SynthesisFilterRef(reflRef, sosRef)
		copy(dRef[kernels.GSMMaxLag+n*f:], filtered)
		for _, a := range acfRef {
			acfWant = binary.LittleEndian.AppendUint64(acfWant, uint64(a))
		}
		for _, k := range reflRef {
			reflWant = binary.LittleEndian.AppendUint64(reflWant, uint64(k))
		}
		for j := 0; j < 4; j++ {
			start := kernels.GSMMaxLag + n*f + kernels.GSMSubframe*j
			d := dRef[start : start+kernels.GSMSubframe]
			hist := dRef[start-kernels.GSMMaxLag : start]
			lag, corr := kernels.LTPParamsRef(d, hist)
			ltpWant = binary.LittleEndian.AppendUint64(ltpWant, uint64(lag))
			ltpWant = binary.LittleEndian.AppendUint64(ltpWant, uint64(corr))
		}
	}
	checks = append(checks,
		Check{Name: "acf", Addr: acf, Want: acfWant},
		Check{Name: "refl", Addr: refl, Want: reflWant},
		Check{Name: "ltp", Addr: ltpOut, Want: ltpWant},
	)
	return &Built{Func: b.Func(), Checks: checks}
}

// GSMDec builds the GSM decoder application.
func GSMDec() *App {
	return &App{
		Name:    "gsm_dec",
		Regions: []string{"longterm"},
		Build:   buildGSMDec,
	}
}

func buildGSMDec(v kernels.Variant) *Built {
	b := ir.NewBuilder("gsm_dec")
	const n = kernels.GSMFrame
	erp := media.Speech(66, n*gsmFrames)
	rnd := media.NewRand(67)
	// Decoded LTP parameters per subframe: lag in 40..120, gain Q16.
	type subParams struct{ lag, gain int64 }
	params := make([]subParams, 4*gsmFrames)
	for i := range params {
		params[i] = subParams{
			lag:  int64(kernels.GSMMinLag + rnd.Intn(kernels.GSMMaxLag-kernels.GSMMinLag+1)),
			gain: int64(8000 + rnd.Intn(20000)),
		}
	}
	paramBytes := make([]byte, 0, 16*len(params))
	for _, p := range params {
		paramBytes = binary.LittleEndian.AppendUint64(paramBytes, uint64(p.lag))
		paramBytes = binary.LittleEndian.AppendUint64(paramBytes, uint64(p.gain))
	}
	// Reflection coefficients for the synthesis filter (small Q8 values).
	refl := make([]int64, 8)
	for i := range refl {
		refl[i] = int64(rnd.Intn(161) - 80)
	}
	reflBytes := make([]byte, 0, 64)
	for _, k := range refl {
		reflBytes = binary.LittleEndian.AppendUint64(reflBytes, uint64(k))
	}
	// Parameter "bitstream" for the scalar decoding front end.
	stream := media.Stream(68, 128*gsmFrames)
	streamBytes := make([]byte, 2*len(stream))
	for i, w := range stream {
		binary.LittleEndian.PutUint16(streamBytes[2*i:], w)
	}

	const (
		aErp = iota + 1
		aParams
		aDrp
		aRefl
		aOut
		aStream
		aScratch
	)
	erpAddr := b.DataH(erp)
	paramAddr := b.Data(paramBytes)
	reflAddr := b.Data(reflBytes)
	streamAddr := b.Data(streamBytes)
	scratch := b.Alloc(2 * 128 * gsmFrames)
	drp := b.Alloc(2 * (kernels.GSMMaxLag + n*gsmFrames))
	audio := b.Alloc(2 * n * gsmFrames)

	// Scalar input stage: residual and parameters come out of the scalar
	// RPE/parameter decoding; the decoder zero-initializes its state.
	WarmAll(b)

	for f := 0; f < gsmFrames; f++ {
		// Scalar: parameter decoding (bit unpacking) — repeated to model
		// the APCM/RPE decoding stages.
		for rep := 0; rep < gsmDecScalarReps; rep++ {
			EntropyDecode(b, streamAddr+int64(256*f), 128, scratch+int64(256*f), aStream, aScratch)
		}

		// R1: long-term filtering per subframe.
		b.RegionBegin(1)
		for j := 0; j < 4; j++ {
			pos := kernels.GSMMaxLag + n*f + kernels.GSMSubframe*j
			sub := erpAddr + int64(2*(n*f+kernels.GSMSubframe*j))
			hist := drp + int64(2*(pos-kernels.GSMMaxLag))
			out := drp + int64(2*pos)
			kernels.LongTermFilter(b, v, sub, hist, paramAddr+int64(16*(4*f+j)), out,
				aErp, aDrp, aDrp)
		}
		b.RegionEnd(1)

		// Scalar: short-term synthesis lattice filter.
		frameDrp := drp + int64(2*(kernels.GSMMaxLag+n*f))
		frameOut := audio + int64(2*n*f)
		for rep := 0; rep < gsmDecScalarReps; rep++ {
			SynthesisFilter(b, reflAddr, frameDrp, frameOut, n, aRefl, aDrp, aOut)
		}
	}

	// Reference pipeline.
	drpRef := make([]int16, kernels.GSMMaxLag+n*gsmFrames)
	audioRef := make([]int16, 0, n*gsmFrames)
	for f := 0; f < gsmFrames; f++ {
		for j := 0; j < 4; j++ {
			pos := kernels.GSMMaxLag + n*f + kernels.GSMSubframe*j
			p := params[4*f+j]
			sub := erp[n*f+kernels.GSMSubframe*j : n*f+kernels.GSMSubframe*(j+1)]
			hist := drpRef[pos-kernels.GSMMaxLag : pos]
			copy(drpRef[pos:], kernels.LongTermFilterRef(sub, hist, int(p.lag), p.gain))
		}
		audioRef = append(audioRef,
			SynthesisFilterRef(refl, drpRef[kernels.GSMMaxLag+n*f:kernels.GSMMaxLag+n*(f+1)])...)
	}
	return &Built{
		Func: b.Func(),
		Checks: []Check{
			{Name: "drp", Addr: drp + 2*kernels.GSMMaxLag, Want: int16Bytes(drpRef[kernels.GSMMaxLag:])},
			{Name: "audio", Addr: audio, Want: int16Bytes(audioRef)},
		},
	}
}
