package apps

import (
	"encoding/binary"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/media"
)

// MPEG2 workload geometry. The encoder motion-estimates a 3x3 macroblock
// grid over an 80x80 frame pair with radius 3 (the reference-frame loads
// stride by the image width — the access pattern that degrades the vector
// configurations under realistic memory, Section 5.1); it then transforms
// a 64x64 sub-area (64 blocks). The decoder reconstructs 40 blocks of a
// 96x64 frame.
const (
	m2eW, m2eH    = 80, 80
	m2eR          = 5
	m2eNBlocks    = 32 // 8x8 blocks in the 64x32 transformed sub-area
	m2eScalarReps = 4

	m2dW, m2dH   = 96, 64
	m2dBX, m2dBY = 8, 5 // decoded block grid
	m2dNBlocks   = m2dBX * m2dBY
	m2dDecReps   = 6
)

// JPEG-style macroblock origins for the encoder's motion search.
func m2eMBs() []kernels.MBOrigin {
	var out []kernels.MBOrigin
	for _, y := range []int{8, 24, 40} {
		for _, x := range []int{8, 24, 40, 56} {
			out = append(out, kernels.MBOrigin{X: x, Y: y})
		}
	}
	return out
}

// MPEG2Enc builds the MPEG2 encoder application.
func MPEG2Enc() *App {
	return &App{
		Name:    "mpeg2_enc",
		Regions: []string{"motion", "fdct", "idct"},
		Build:   buildMPEG2Enc,
	}
}

func buildMPEG2Enc(v kernels.Variant) *Built {
	b := ir.NewBuilder("mpeg2_enc")
	cur, ref := media.FramePair(33, m2eW, m2eH, -3, 2)
	mbs := m2eMBs()

	const (
		aCur = iota + 1
		aRef
		aMV
		aBlocks
		aDCT
		aQuant
		aRecon
		aBits
		aTmp
	)
	p := kernels.MEParams{
		Cur: b.Data(cur), Ref: b.Data(ref),
		MV: b.Alloc(int64(24 * len(mbs))),
		W:  m2eW, H: m2eH, MBs: mbs, R: m2eR,
		AliasCur: aCur, AliasRef: aRef, AliasMV: aMV,
	}
	blocks := b.Alloc(m2eNBlocks * kernels.BlockBytes)
	dctOut := b.Alloc(m2eNBlocks * kernels.BlockBytes)
	qOut := b.Alloc(m2eNBlocks * kernels.BlockBytes)
	recon := b.Alloc(m2eNBlocks * kernels.BlockBytes)
	bits := b.Alloc(32 << 10)
	recip := kernels.QuantRecip(&kernels.JPEGLumaQuant)

	// Scalar input stage: read the two frames and initialize buffers.
	WarmAll(b)

	// R1: motion estimation (full-search SAD).
	b.RegionBegin(1)
	kernels.MotionEstimate(b, v, p)
	b.RegionEnd(1)

	// R2: forward DCT over the 64x32 sub-area at (8,8).
	subArea := p.Cur + int64(8*m2eW+8)
	b.RegionBegin(2)
	kernels.Blockify(b, v, subArea, blocks, m2eW, 8, 4, aCur, aBlocks)
	kernels.DCT2D(b, v, kernels.FDCTMatrix(), blocks, dctOut, m2eNBlocks,
		kernels.DCTAlias{Src: aBlocks, Dst: aDCT, Tmp: aTmp})
	b.RegionEnd(2)

	// Scalar: quantization + rate control-ish coding (quantization is not
	// one of the paper's mpeg2_enc vector regions, so it is always scalar
	// code here).
	kernels.Quantize(b, kernels.Scalar, recip, dctOut, qOut, m2eNBlocks, aDCT, aQuant)

	// R3: inverse DCT (local reconstruction of the quantized blocks).
	b.RegionBegin(3)
	kernels.DCT2D(b, v, kernels.IDCTMatrix(), qOut, recon, m2eNBlocks,
		kernels.DCTAlias{Src: aQuant, Dst: aRecon, Tmp: aTmp})
	b.RegionEnd(3)

	// Scalar: VLC entropy coding of the quantized blocks.
	EntropyEncode(b, qOut, m2eNBlocks, m2eScalarReps, bits, aQuant, aBits)

	// Reference pipeline.
	wantMV := kernels.MotionEstimateRef(cur, ref, m2eW, mbs, m2eR)
	mvBytes := make([]byte, 0, 24*len(wantMV))
	for _, e := range wantMV {
		for _, x := range e {
			mvBytes = binary.LittleEndian.AppendUint64(mvBytes, uint64(x))
		}
	}
	sub := make([]byte, 0, 64*32)
	for r := 0; r < 32; r++ {
		sub = append(sub, cur[(8+r)*m2eW+8:(8+r)*m2eW+8+64]...)
	}
	blkRef := kernels.BlockifyRef(sub, 64, 8, 4)
	qRef := make([][]int16, m2eNBlocks)
	reconRef := make([][]int16, m2eNBlocks)
	for i, blk := range blkRef {
		qRef[i] = kernels.QuantizeRef(recip, kernels.DCT2DRef(kernels.FDCTMatrix(), blk))
		reconRef[i] = kernels.DCT2DRef(kernels.IDCTMatrix(), qRef[i])
	}
	return &Built{
		Func: b.Func(),
		Checks: []Check{
			{Name: "mv", Addr: p.MV, Want: mvBytes},
			{Name: "quantized", Addr: qOut, Want: int16Bytes(flatten(qRef))},
			{Name: "recon", Addr: recon, Want: int16Bytes(flatten(reconRef))},
		},
		CrossChecks: []CrossCheck{{Name: "bitstream", Addr: bits, Len: 2048}},
	}
}

// MPEG2Dec builds the MPEG2 decoder application.
func MPEG2Dec() *App {
	return &App{
		Name:    "mpeg2_dec",
		Regions: []string{"formpred", "idct", "addblock"},
		Build:   buildMPEG2Dec,
	}
}

func buildMPEG2Dec(v kernels.Variant) *Built {
	b := ir.NewBuilder("mpeg2_dec")
	refPlane := media.SmoothImage(44, m2dW, m2dH)
	stream := media.Stream(45, 64*m2dNBlocks)
	rnd := media.NewRand(46)

	// Decoded motion vectors (input data: in a real decoder they come out
	// of the bitstream; the bit-unpacking work is modeled in the scalar
	// region below). One MV per 2x2 block group.
	nmv := (m2dNBlocks + 3) / 4
	mv := make([][3]int64, nmv)
	for i := range mv {
		mv[i] = [3]int64{int64(rnd.Intn(9) - 4), int64(rnd.Intn(9) - 4), 0}
	}
	mvBytes := make([]byte, 0, 24*nmv)
	for _, e := range mv {
		for _, x := range e {
			mvBytes = binary.LittleEndian.AppendUint64(mvBytes, uint64(x))
		}
	}
	var blocks []kernels.MCBlock
	for by := 0; by < m2dBY; by++ {
		for bx := 0; bx < m2dBX; bx++ {
			i := by*m2dBX + bx
			blocks = append(blocks, kernels.MCBlock{X: 8 + 8*bx, Y: 8 + 8*by, MVIdx: i / 4})
		}
	}

	const (
		aStream = iota + 1
		aCoeff
		aRef
		aMV
		aPred
		aRes
		aOut
		aTmp
	)
	streamBytes := make([]byte, 2*len(stream))
	for i, w := range stream {
		binary.LittleEndian.PutUint16(streamBytes[2*i:], w)
	}
	sAddr := b.Data(streamBytes)
	mvAddr := b.Data(mvBytes)
	refAddr := b.Data(refPlane)
	coeff := b.Alloc(m2dNBlocks * kernels.BlockBytes)
	pred := b.Alloc(64 * m2dNBlocks)
	res := b.Alloc(m2dNBlocks * kernels.BlockBytes)
	out := b.Alloc(64 * m2dNBlocks)

	// Scalar input stage: the reference frame was produced (and therefore
	// touched) by the previous frame's decode; buffers are initialized.
	WarmAll(b)

	// Scalar region: bitstream decoding (repeated passes model the VLC,
	// macroblock-mode and coefficient parsing that dominate the decoder).
	for i := 0; i < m2dDecReps; i++ {
		EntropyDecode(b, sAddr, 64*m2dNBlocks, coeff, aStream, aCoeff)
	}

	mc := kernels.MCParams{
		Ref: refAddr, MV: mvAddr, Pred: pred, W: m2dW,
		Avg: true, Blocks: blocks,
		AliasRef: aRef, AliasMV: aMV, AliasPred: aPred,
	}
	// R1: form-component prediction.
	b.RegionBegin(1)
	kernels.FormPred(b, v, mc)
	b.RegionEnd(1)

	// R2: inverse DCT of the decoded residual.
	b.RegionBegin(2)
	kernels.DCT2D(b, v, kernels.IDCTMatrix(), coeff, res, m2dNBlocks,
		kernels.DCTAlias{Src: aCoeff, Dst: aRes, Tmp: aTmp})
	b.RegionEnd(2)

	// R3: add-block reconstruction.
	b.RegionBegin(3)
	kernels.AddBlock(b, v, pred, res, out, m2dNBlocks, aPred, aRes, aOut)
	b.RegionEnd(3)

	// Reference pipeline.
	coeffRef := EntropyDecodeRef(stream, 64*m2dNBlocks)
	predRef := kernels.FormPredRef(refPlane, m2dW, mv, blocks, true)
	want := make([]byte, 0, 64*m2dNBlocks)
	for i := 0; i < m2dNBlocks; i++ {
		resRef := kernels.DCT2DRef(kernels.IDCTMatrix(), coeffRef[64*i:64*i+64])
		want = append(want, kernels.AddBlockRef(predRef[64*i:64*i+64], resRef)...)
	}
	return &Built{
		Func: b.Func(),
		Checks: []Check{
			{Name: "pred", Addr: pred, Want: predRef},
			{Name: "recon", Addr: out, Want: want},
		},
	}
}
