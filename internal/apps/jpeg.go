package apps

import (
	"encoding/binary"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/media"
)

// Workload geometry for the JPEG pair. The image is 128x64 (the vector
// color-conversion step requires multiples of 128 pixels); the luma plane
// yields a 16x8 grid of DCT blocks, chroma planes are subsampled 2:1.
const (
	jpegW       = 128
	jpegH       = 64
	jpegBlocksX = jpegW / 8
	jpegBlocksY = jpegH / 8
	jpegNBlocks = jpegBlocksX * jpegBlocksY

	// jpegEncScalarReps repeats the entropy-coding pass (rate-optimizing
	// encoders make several passes); calibrated against Table 1.
	jpegEncScalarReps = 3
)

func int16Bytes(vals []int16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

func flatten(blocks [][]int16) []int16 {
	out := make([]int16, 0, 64*len(blocks))
	for _, blk := range blocks {
		out = append(out, blk...)
	}
	return out
}

// JPEGEnc builds the JPEG encoder application.
func JPEGEnc() *App {
	return &App{
		Name:    "jpeg_enc",
		Regions: []string{"rgb2ycc", "fdct", "quant"},
		Build:   buildJPEGEnc,
	}
}

func buildJPEGEnc(v kernels.Variant) *Built {
	b := ir.NewBuilder("jpeg_enc")
	const npix = jpegW * jpegH
	r, g, bl := media.RGBImage(11, jpegW, jpegH)

	const (
		aRGB = iota + 1
		aYCC
		aBlocks
		aDCT
		aQuant
		aBits
		aTmp
	)
	bufs := kernels.ColorBufs{
		R: b.Data(r), G: b.Data(g), B: b.Data(bl),
		Y: b.Alloc(npix), Cb: b.Alloc(npix), Cr: b.Alloc(npix),
		NPix: npix, AliasRGB: aRGB, AliasYCC: aYCC,
	}
	blocks := b.Alloc(jpegNBlocks * kernels.BlockBytes)
	dctOut := b.Alloc(jpegNBlocks * kernels.BlockBytes)
	qOut := b.Alloc(jpegNBlocks * kernels.BlockBytes)
	bits := b.Alloc(32 << 10)
	recip := kernels.QuantRecip(&kernels.JPEGLumaQuant)

	// Scalar input stage: read the input planes and initialize buffers.
	WarmAll(b)

	// R1: color conversion.
	b.RegionBegin(1)
	kernels.RGB2YCC(b, v, bufs)
	b.RegionEnd(1)

	// R2: sample conversion + forward DCT on the luma plane.
	b.RegionBegin(2)
	kernels.Blockify(b, v, bufs.Y, blocks, jpegW, jpegBlocksX, jpegBlocksY, aYCC, aBlocks)
	kernels.DCT2D(b, v, kernels.FDCTMatrix(), blocks, dctOut, jpegNBlocks,
		kernels.DCTAlias{Src: aBlocks, Dst: aDCT, Tmp: aTmp})
	b.RegionEnd(2)

	// R3: quantization.
	b.RegionBegin(3)
	kernels.Quantize(b, v, recip, dctOut, qOut, jpegNBlocks, aDCT, aQuant)
	b.RegionEnd(3)

	// Scalar region: zigzag + run-length + bit-packing entropy coding.
	EntropyEncode(b, qOut, jpegNBlocks, jpegEncScalarReps, bits, aQuant, aBits)

	// Reference pipeline.
	wantY, wantCb, wantCr := kernels.RGB2YCCRef(r, g, bl)
	blkRef := kernels.BlockifyRef(wantY, jpegW, jpegBlocksX, jpegBlocksY)
	qRef := make([][]int16, jpegNBlocks)
	for i, blk := range blkRef {
		qRef[i] = kernels.QuantizeRef(recip, kernels.DCT2DRef(kernels.FDCTMatrix(), blk))
	}
	return &Built{
		Func: b.Func(),
		Checks: []Check{
			{Name: "Y", Addr: bufs.Y, Want: wantY},
			{Name: "Cb", Addr: bufs.Cb, Want: wantCb},
			{Name: "Cr", Addr: bufs.Cr, Want: wantCr},
			{Name: "quantized", Addr: qOut, Want: int16Bytes(flatten(qRef))},
		},
		CrossChecks: []CrossCheck{
			{Name: "bitstream", Addr: bits, Len: 4096},
		},
	}
}

// JPEGDec builds the JPEG decoder application.
func JPEGDec() *App {
	return &App{
		Name:    "jpeg_dec",
		Regions: []string{"ycc2rgb", "h2v2"},
		Build:   buildJPEGDec,
	}
}

func buildJPEGDec(v kernels.Variant) *Built {
	b := ir.NewBuilder("jpeg_dec")
	const (
		npix    = jpegW * jpegH
		cw, ch  = jpegW / 2, jpegH / 2
		cblocks = (cw / 8) * (ch / 8)
	)
	const (
		aStream = iota + 1
		aCoeff
		aPlane
		aChroma
		aRGB
		aTmp
	)
	yStream := media.Stream(21, 64*jpegNBlocks)
	cbStream := media.Stream(22, 64*cblocks)
	crStream := media.Stream(23, 64*cblocks)

	streamBytes := func(s []uint16) []byte {
		out := make([]byte, 2*len(s))
		for i, w := range s {
			binary.LittleEndian.PutUint16(out[2*i:], w)
		}
		return out
	}
	ysAddr := b.Data(streamBytes(yStream))
	cbsAddr := b.Data(streamBytes(cbStream))
	crsAddr := b.Data(streamBytes(crStream))

	yCoeff := b.Alloc(jpegNBlocks * kernels.BlockBytes)
	cbCoeff := b.Alloc(cblocks * kernels.BlockBytes)
	crCoeff := b.Alloc(cblocks * kernels.BlockBytes)
	ySpat := b.Alloc(jpegNBlocks * kernels.BlockBytes)
	cbSpat := b.Alloc(cblocks * kernels.BlockBytes)
	crSpat := b.Alloc(cblocks * kernels.BlockBytes)
	yPlane := b.Alloc(npix)
	cbPlane := b.Alloc(cw * ch)
	crPlane := b.Alloc(cw * ch)
	cbFull := b.Alloc(npix)
	crFull := b.Alloc(npix)
	rgb := kernels.ColorBufs{
		Y: yPlane, Cb: cbFull, Cr: crFull,
		R: b.Alloc(npix), G: b.Alloc(npix), B: b.Alloc(npix),
		NPix: npix, AliasRGB: aRGB, AliasYCC: aPlane,
	}

	// Scalar input stage.
	WarmAll(b)

	// Scalar region: entropy decoding, inverse DCT (always scalar code in
	// this application, per Table 1) and deblockification.
	EntropyDecode(b, ysAddr, 64*jpegNBlocks, yCoeff, aStream, aCoeff)
	EntropyDecode(b, cbsAddr, 64*cblocks, cbCoeff, aStream, aCoeff)
	EntropyDecode(b, crsAddr, 64*cblocks, crCoeff, aStream, aCoeff)
	kernels.DCT2D(b, kernels.Scalar, kernels.IDCTMatrix(), yCoeff, ySpat, jpegNBlocks,
		kernels.DCTAlias{Src: aCoeff, Dst: aCoeff, Tmp: aTmp})
	kernels.DCT2D(b, kernels.Scalar, kernels.IDCTMatrix(), cbCoeff, cbSpat, cblocks,
		kernels.DCTAlias{Src: aCoeff, Dst: aCoeff, Tmp: aTmp})
	kernels.DCT2D(b, kernels.Scalar, kernels.IDCTMatrix(), crCoeff, crSpat, cblocks,
		kernels.DCTAlias{Src: aCoeff, Dst: aCoeff, Tmp: aTmp})
	Deblockify(b, ySpat, yPlane, jpegW, jpegBlocksX, jpegBlocksY, aCoeff, aPlane)
	Deblockify(b, cbSpat, cbPlane, cw, cw/8, ch/8, aCoeff, aChroma)
	Deblockify(b, crSpat, crPlane, cw, cw/8, ch/8, aCoeff, aChroma)

	// R2: h2v2 chroma up-sampling.
	b.RegionBegin(2)
	kernels.H2V2Upsample(b, v, cbPlane, cbFull, cw, ch, aChroma, aPlane)
	kernels.H2V2Upsample(b, v, crPlane, crFull, cw, ch, aChroma, aPlane)
	b.RegionEnd(2)

	// R1: color conversion back to RGB.
	b.RegionBegin(1)
	kernels.YCC2RGB(b, v, rgb)
	b.RegionEnd(1)

	// Reference pipeline.
	decodePlane := func(stream []uint16, nblocks, w, bx, by int) []byte {
		coeffs := EntropyDecodeRef(stream, 64*nblocks)
		blocks := make([][]int16, nblocks)
		for i := range blocks {
			blocks[i] = kernels.DCT2DRef(kernels.IDCTMatrix(), coeffs[64*i:64*i+64])
		}
		return DeblockifyRef(blocks, w, bx, by)
	}
	wantY := decodePlane(yStream, jpegNBlocks, jpegW, jpegBlocksX, jpegBlocksY)
	wantCbP := decodePlane(cbStream, cblocks, cw, cw/8, ch/8)
	wantCrP := decodePlane(crStream, cblocks, cw, cw/8, ch/8)
	wantCb := kernels.H2V2UpsampleRef(wantCbP, cw, ch)
	wantCr := kernels.H2V2UpsampleRef(wantCrP, cw, ch)
	wantR, wantG, wantB := kernels.YCC2RGBRef(wantY, wantCb, wantCr)

	return &Built{
		Func: b.Func(),
		Checks: []Check{
			{Name: "yplane", Addr: yPlane, Want: wantY},
			{Name: "cbfull", Addr: cbFull, Want: wantCb},
			{Name: "crfull", Addr: crFull, Want: wantCr},
			{Name: "R", Addr: rgb.R, Want: wantR},
			{Name: "G", Addr: rgb.G, Want: wantG},
			{Name: "B", Addr: rgb.B, Want: wantB},
		},
	}
}
