package apps

import (
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/kernels"
)

// Scalar-region code: the protocol-processing parts of the applications
// that the paper identifies as hard to vectorize — "first order
// recurrences, table look-ups and non-streaming memory patterns with
// large amounts of indirections". These builders emit identical code in
// every ISA variant.

// zigzagOffsets returns the byte offsets (within a two-plane block) of
// the 64 coefficients in JPEG zigzag order.
func zigzagOffsets() []byte {
	order := [64][2]int{}
	i := 0
	for s := 0; s < 15; s++ { // anti-diagonals
		if s%2 == 0 {
			for r := s; r >= 0; r-- {
				c := s - r
				if r < 8 && c < 8 {
					order[i] = [2]int{r, c}
					i++
				}
			}
		} else {
			for c := s; c >= 0; c-- {
				r := s - c
				if r < 8 && c < 8 {
					order[i] = [2]int{r, c}
					i++
				}
			}
		}
	}
	out := make([]byte, 64)
	for k, rc := range order {
		out[k] = byte(2 * kernels.BlockIdx(rc[0], rc[1]))
	}
	return out
}

// bitLengthTable returns, for each magnitude 0..255, the number of bits
// of its binary representation (the JPEG "category").
func bitLengthTable() []byte {
	out := make([]byte, 256)
	for v := 1; v < 256; v++ {
		n := 0
		for x := v; x > 0; x >>= 1 {
			n++
		}
		out[v] = byte(n)
	}
	return out
}

// runLengthTable returns synthetic run-code lengths (2..9 bits).
func runLengthTable() []byte {
	out := make([]byte, 64)
	for r := range out {
		out[r] = byte(2 + r%8)
	}
	return out
}

// EntropyEncode emits the zigzag scan + run-length + bit-packing loop
// over nblocks quantized coefficient blocks, writing packed words to out
// (at least 8*(1+64*nblocks/4) bytes). It is dominated by a serial bit
// buffer, data-dependent branches and three table lookups per
// coefficient. reps repeats the pass (encoders run multi-pass rate
// optimization), scaling the scalar region.
func EntropyEncode(b *ir.Builder, blocks int64, nblocks, reps int, out int64, aliasBlk, aliasOut int) {
	zz := b.Data(zigzagOffsets())
	cat := b.Data(bitLengthTable())
	rlt := b.Data(runLengthTable())
	zero := b.Const(0)
	c255 := b.Const(255)
	zzB := b.Const(zz)
	catB := b.Const(cat)
	rltB := b.Const(rlt)
	flushAt := b.Const(40)

	for rep := 0; rep < reps; rep++ {
		bp := b.Const(blocks)
		op := b.Const(out)
		bitbuf := b.Const(int64(rep))
		bitcnt := b.Const(0)
		run := b.Const(0)
		b.Loop(0, int64(nblocks), 1, func(ir.Reg) {
			b.Loop(0, 64, 1, func(iv ir.Reg) {
				zoff := b.Load(isa.LDBU, b.Add(zzB, iv), 0, aliasBlk)
				c := b.Load(isa.LDH, b.Add(bp, zoff), 0, aliasBlk)
				b.IfElse(isa.BEQ, c, zero, func() {
					b.BinITo(isa.ADD, run, run, 1)
				}, func() {
					mask := b.SraI(c, 63)
					abs := b.Sub(b.Xor(c, mask), mask)
					capped := b.Select(b.Bin(isa.CMPLT, abs, c255), abs, c255)
					catv := b.Load(isa.LDBU, b.Add(catB, capped), 0, aliasBlk)
					rl := b.Load(isa.LDBU, b.Add(rltB, b.AndI(run, 63)), 0, aliasBlk)
					length := b.Add(catv, rl)
					code := b.Add(capped, b.ShlI(run, 4))
					b.BinTo(isa.SHL, bitbuf, bitbuf, length)
					b.BinTo(isa.OR, bitbuf, bitbuf, code)
					b.BinTo(isa.ADD, bitcnt, bitcnt, length)
					b.MovITo(run, 0)
					b.IfElse(isa.BGE, bitcnt, flushAt, func() {
						b.Store(isa.STD, bitbuf, op, 0, aliasOut)
						b.BinITo(isa.ADD, op, op, 8)
						b.BinITo(isa.SUB, bitcnt, bitcnt, 40)
					}, nil)
				})
			})
			b.BinITo(isa.ADD, bp, bp, int64(kernels.BlockBytes))
		})
		// Flush the tail.
		b.Store(isa.STD, bitbuf, op, 0, aliasOut)
		b.Store(isa.STD, bitcnt, op, 8, aliasOut)
	}
}

// EntropyDecode emits the decoder front end: a serial "bit position" key
// chains every extraction; each coefficient needs an unpack, a descramble
// and a dequantization table lookup. It writes ncoeff int16 coefficients
// (element order) to out. The Go mirror is EntropyDecodeRef.
func EntropyDecode(b *ir.Builder, stream int64, ncoeff int, out int64, aliasStream, aliasOut int) {
	dq := make([]int16, 64)
	for i := range dq {
		dq[i] = int16(8 + (i*7)%56)
	}
	dqAddr := b.DataH(dq)
	sp := b.Const(stream)
	op := b.Const(out)
	dqB := b.Const(dqAddr)
	key := b.Const(0)
	zero := b.Const(0)
	b.Loop(0, int64(ncoeff), 1, func(iv ir.Reg) {
		v := b.Load(isa.LDHU, sp, 0, aliasStream)
		// Most coefficients are zero (coded as run lengths): real Huffman
		// decoders take a cheap path for them. One symbol in sixteen
		// carries a value and pays the full descramble + dequantization.
		b.IfElse(isa.BNE, b.AndI(v, 15), zero, func() {
			b.Store(isa.STH, zero, op, 0, aliasOut)
		}, func() {
			d := b.Xor(v, b.AndI(key, 255))
			c := b.SubI(b.AndI(d, 511), 256)
			idx := b.AndI(iv, 63)
			q := b.Load(isa.LDH, b.Add(dqB, b.ShlI(idx, 1)), 0, aliasStream)
			b.Store(isa.STH, b.SraI(b.Mul(c, q), 4), op, 0, aliasOut)
			b.BinTo(isa.ADD, key, key, v)
			b.BinITo(isa.AND, key, key, 0xFFFF)
		})
		b.BinITo(isa.ADD, sp, sp, 2)
		b.BinITo(isa.ADD, op, op, 2)
	})
}

// EntropyDecodeRef mirrors EntropyDecode in Go.
func EntropyDecodeRef(stream []uint16, ncoeff int) []int16 {
	dq := make([]int16, 64)
	for i := range dq {
		dq[i] = int16(8 + (i*7)%56)
	}
	out := make([]int16, ncoeff)
	key := int64(0)
	for i := 0; i < ncoeff; i++ {
		v := int64(stream[i])
		if v&15 != 0 {
			out[i] = 0
			continue
		}
		d := v ^ (key & 255)
		c := (d & 511) - 256
		out[i] = int16((c * int64(dq[i&63])) >> 4)
		key = (key + v) & 0xFFFF
	}
	return out
}

// Deblockify converts int16 blocks (two-plane layout, centered at 0) back
// to a byte plane (adding 128 and clamping). It is scalar in every
// variant: in the JPEG decoder it belongs to the scalar region.
func Deblockify(b *ir.Builder, blocks, plane int64, w, bxCount, byCount int, aliasBlk, aliasPlane int) {
	zero := b.Const(0)
	max := b.Const(255)
	bp := b.Const(blocks)
	pbase := b.Const(plane)
	rowAdvance := int64(8*w - 8*bxCount)
	b.Loop(0, int64(byCount), 1, func(ir.Reg) {
		b.Loop(0, int64(bxCount), 1, func(ir.Reg) {
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					v := b.Load(isa.LDH, bp, int64(2*kernels.BlockIdx(r, c)), aliasBlk)
					v = b.AddI(v, 128)
					v = b.Select(b.Bin(isa.CMPLT, v, zero), zero, v)
					v = b.Select(b.Bin(isa.CMPLT, max, v), max, v)
					b.Store(isa.STB, v, pbase, int64(r*w+c), aliasPlane)
				}
			}
			b.BinITo(isa.ADD, bp, bp, int64(kernels.BlockBytes))
			b.BinITo(isa.ADD, pbase, pbase, 8)
		})
		b.BinITo(isa.ADD, pbase, pbase, rowAdvance)
	})
}

// DeblockifyRef mirrors Deblockify.
func DeblockifyRef(blocks [][]int16, w, bxCount, byCount int) []byte {
	out := make([]byte, w*8*byCount)
	for by := 0; by < byCount; by++ {
		for bx := 0; bx < bxCount; bx++ {
			blk := blocks[by*bxCount+bx]
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					v := int(blk[kernels.BlockIdx(r, c)]) + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					out[(by*8+r)*w+bx*8+c] = byte(v)
				}
			}
		}
	}
	return out
}

// Preprocess emits the GSM encoder's offset compensation + preemphasis:
// a first-order recurrence per sample (z = diff + (z*32735)>>15), the
// canonical serial scalar region.
func Preprocess(b *ir.Builder, in, out int64, n int, aliasIn, aliasOut int) {
	sp := b.Const(in)
	op := b.Const(out)
	prev := b.Const(0)
	z := b.Const(0)
	b.Loop(0, int64(n), 1, func(ir.Reg) {
		s := b.Load(isa.LDH, sp, 0, aliasIn)
		diff := b.Sub(s, prev)
		b.MovTo(prev, s)
		t := b.SraI(b.MulI(z, 32735), 15)
		b.BinTo(isa.ADD, z, diff, t)
		b.Store(isa.STH, z, op, 0, aliasOut)
		b.BinITo(isa.ADD, sp, sp, 2)
		b.BinITo(isa.ADD, op, op, 2)
	})
}

// PreprocessRef mirrors Preprocess.
func PreprocessRef(in []int16) []int16 {
	out := make([]int16, len(in))
	var prev, z int64
	for i, s := range in {
		diff := int64(s) - prev
		prev = int64(s)
		z = diff + ((z * 32735) >> 15)
		out[i] = int16(z)
	}
	return out
}

// Schur emits a simplified Schur recursion over 9 autocorrelation values
// (int64), producing 8 reflection coefficients. The chain of dependent
// divisions is inherently serial.
func Schur(b *ir.Builder, acf, out int64, aliasAcf, aliasOut int) {
	ap := b.Const(acf)
	op := b.Const(out)
	one := b.Const(1)
	e := b.Load(isa.LDD, ap, 0, aliasAcf)
	e = b.Select(b.Bin(isa.CMPLT, e, one), one, e)
	for i := 1; i <= 8; i++ {
		p := b.Load(isa.LDD, ap, int64(8*i), aliasAcf)
		k := b.Bin(isa.DIV, b.ShlI(p, 8), e)
		b.Store(isa.STD, k, op, int64(8*(i-1)), aliasOut)
		k2 := b.SraI(b.Mul(k, k), 8)
		red := b.SraI(b.Mul(k2, b.SraI(e, 8)), 8)
		e = b.Sub(e, red)
		e = b.Select(b.Bin(isa.CMPLT, e, one), one, e)
	}
}

// SchurRef mirrors Schur.
func SchurRef(acf []int64) []int64 {
	out := make([]int64, 8)
	e := acf[0]
	if e < 1 {
		e = 1
	}
	for i := 1; i <= 8; i++ {
		k := (acf[i] << 8) / e
		out[i-1] = k
		k2 := (k * k) >> 8
		e -= (k2 * (e >> 8)) >> 8
		if e < 1 {
			e = 1
		}
	}
	return out
}

// SynthesisFilter emits the GSM decoder's short-term synthesis lattice
// filter: per sample, eight dependent multiply/shift/add stages — the
// reason gsm_dec is 99% scalar in Table 1. refl points at 8 int64
// reflection coefficients; n samples from in are filtered to out.
func SynthesisFilter(b *ir.Builder, refl, in, out int64, n int, aliasK, aliasIn, aliasOut int) {
	rp := b.Const(refl)
	var k [8]ir.Reg
	for i := 0; i < 8; i++ {
		k[i] = b.Load(isa.LDD, rp, int64(8*i), aliasK)
	}
	var v [8]ir.Reg
	for i := range v {
		v[i] = b.Const(0)
	}
	sp := b.Const(in)
	op := b.Const(out)
	b.Loop(0, int64(n), 1, func(ir.Reg) {
		sri := b.Load(isa.LDH, sp, 0, aliasIn)
		for i := 7; i >= 0; i-- {
			sri = b.Sub(sri, b.SraI(b.Mul(k[i], v[i]), 8))
			t := b.Add(v[i], b.SraI(b.Mul(k[i], sri), 8))
			b.MovTo(v[i], t)
		}
		b.Store(isa.STH, sri, op, 0, aliasOut)
		b.BinITo(isa.ADD, sp, sp, 2)
		b.BinITo(isa.ADD, op, op, 2)
	})
}

// SynthesisFilterRef mirrors SynthesisFilter. Intermediate values are
// kept in int64 exactly as the IR does; the stored sample is the low 16
// bits.
func SynthesisFilterRef(refl []int64, in []int16) []int16 {
	var v [8]int64
	out := make([]int16, len(in))
	for n, s := range in {
		sri := int64(s)
		for i := 7; i >= 0; i-- {
			sri -= (refl[i] * v[i]) >> 8
			v[i] += (refl[i] * sri) >> 8
		}
		out[n] = int16(sri)
	}
	return out
}

// ReadInput emits the scalar input stage every Mediabench program has: a
// load-and-checksum loop over an input buffer (file reading, header
// parsing, buffer unpacking). Besides contributing genuine scalar-region
// work, it brings the input data into the cache hierarchy — which is why
// the paper's vector regions mostly see L2 hits. n must be a multiple
// of 8.
func ReadInput(b *ir.Builder, addr, n int64, alias int) {
	if n%8 != 0 {
		panic("apps: ReadInput length must be a multiple of 8")
	}
	sp := b.Const(addr)
	sum := b.Const(0)
	b.Loop(0, n, 8, func(ir.Reg) {
		v := b.Load(isa.LDD, sp, 0, alias)
		b.BinTo(isa.ADD, sum, sum, v)
		b.BinITo(isa.ADD, sp, sp, 8)
	})
	b.Store(isa.STD, sum, b.Const(b.Alloc(8)), 0, alias)
}

// WarmAll emits the program-initialization stage: one scalar pass over
// the entire data segment allocated so far (inputs read from "files",
// output buffers zeroed by allocation). Mediabench programs touch their
// working set this way before the hot loops run; without it, every
// width-independent cold miss lands inside the measured regions and
// flattens the scaling curves the paper studies.
func WarmAll(b *ir.Builder) {
	n := (b.Size() + 7) &^ 7
	if n == 0 {
		return
	}
	ReadInput(b, ir.DataBase, n, 0)
}
