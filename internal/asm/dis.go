package asm

import (
	"fmt"
	"sort"
	"strings"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
)

// Disassemble renders f as assembly text that Assemble parses back into a
// structurally identical function (same blocks, operations, register
// numbers and data layout). Data chunks are named d0, d1, ...; gaps
// between them become anonymous .data reservations; blocks are labeled
// B0, B1, ...
func Disassemble(f *ir.Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s — disassembled\n", f.Name)

	// Data segment.
	chunks := append([]ir.DataChunk(nil), f.DataInit...)
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].Addr < chunks[j].Addr })
	pos := int64(ir.DataBase)
	gap := 0
	for i, c := range chunks {
		if c.Addr > pos {
			fmt.Fprintf(&sb, ".data g%d %d\n", gap, c.Addr-pos)
			gap++
			pos = c.Addr
		}
		fmt.Fprintf(&sb, ".bytes d%d %s\n", i, hexBytes(c.Bytes))
		pos += (int64(len(c.Bytes)) + 7) &^ 7
	}
	if end := int64(ir.DataBase) + f.DataSize; end > pos {
		fmt.Fprintf(&sb, ".data g%d %d\n", gap, end-pos)
	}

	// Code.
	for _, blk := range f.Blocks {
		fmt.Fprintf(&sb, "B%d:\n", blk.ID)
		for i := range blk.Ops {
			fmt.Fprintf(&sb, "\t%s\n", formatOp(&blk.Ops[i]))
		}
	}
	return sb.String()
}

func hexBytes(b []byte) string {
	parts := make([]string, len(b))
	for i, v := range b {
		parts[i] = fmt.Sprintf("%02x", v)
	}
	return strings.Join(parts, " ")
}

// formatOp renders one operation in the assembler's syntax.
func formatOp(op *ir.Op) string {
	in := op.Info()
	mn := op.Opcode.Name()
	if op.Width != 0 {
		mn += "." + suffixByWidth(op.Width)
	}
	aliasSuffix := ""
	if op.Alias != 0 {
		aliasSuffix = fmt.Sprintf(" @%d", op.Alias)
	}
	memOperand := func(base ir.Reg, off int64) string {
		if off == 0 {
			return fmt.Sprintf("[%s]", base)
		}
		return fmt.Sprintf("[%s%+d]", base, off)
	}

	switch {
	case op.Opcode == isa.NOP || op.Opcode == isa.HALT:
		return mn
	case op.Opcode == isa.REGBEGIN || op.Opcode == isa.REGEND:
		return fmt.Sprintf("%s #%d", mn, op.Imm)
	case op.Opcode == isa.MOVI || op.Opcode == isa.MOVIM:
		return fmt.Sprintf("%s %s, #%d", mn, op.Dst[0], op.Imm)
	case op.Opcode == isa.SETVL || op.Opcode == isa.SETVS:
		if op.UseImm {
			return fmt.Sprintf("%s #%d", mn, op.Imm)
		}
		return fmt.Sprintf("%s %s", mn, op.Src[0])
	case in.Branch:
		parts := make([]string, 0, 3)
		for _, r := range op.Src {
			parts = append(parts, r.String())
		}
		parts = append(parts, fmt.Sprintf("B%d", op.Target))
		return mn + " " + strings.Join(parts, ", ")
	case in.Mem == isa.MemLoad:
		return fmt.Sprintf("%s %s, %s%s", mn, op.Dst[0], memOperand(op.Src[0], op.Imm), aliasSuffix)
	case in.Mem == isa.MemStore:
		return fmt.Sprintf("%s %s, %s%s", mn, op.Src[0], memOperand(op.Src[1], op.Imm), aliasSuffix)
	case op.Opcode == isa.PSLL || op.Opcode == isa.PSRL || op.Opcode == isa.PSRA ||
		op.Opcode == isa.VSLL || op.Opcode == isa.VSRL || op.Opcode == isa.VSRA ||
		op.Opcode == isa.VEXTR || op.Opcode == isa.APACK:
		return fmt.Sprintf("%s %s, %s, #%d", mn, op.Dst[0], op.Src[0], op.Imm)
	case op.Opcode == isa.VINS:
		return fmt.Sprintf("%s %s, %s, #%d", mn, op.Dst[0], op.Src[0], op.Imm)
	case op.Opcode == isa.VSADA || op.Opcode == isa.VMACA:
		return fmt.Sprintf("%s %s, %s, %s", mn, op.Dst[0], op.Src[0], op.Src[1])
	case op.Opcode == isa.VACCW:
		return fmt.Sprintf("%s %s, %s", mn, op.Dst[0], op.Src[0])
	default:
		parts := make([]string, 0, 4)
		for _, r := range op.Dst {
			parts = append(parts, r.String())
		}
		srcs := op.Src
		for _, r := range srcs {
			parts = append(parts, r.String())
		}
		if op.UseImm {
			parts = append(parts, fmt.Sprintf("#%d", op.Imm))
		}
		if len(parts) == 0 {
			return mn
		}
		return mn + " " + strings.Join(parts, ", ")
	}
}
