// Package asm implements a textual assembly format for the
// Vector-µSIMD-VLIW ISA, with an assembler (text → ir.Func) and a
// disassembler (ir.Func → text) that round-trip. It lets kernels be
// written and inspected without going through the Go builder API.
//
// Syntax overview (see the package tests and cmd/vsimdasm for examples):
//
//	; comment
//	.data   buf 1024          ; zero-initialized region, 1024 bytes
//	.bytes  lut 00 01 ff      ; initialized bytes (hex)
//	.half   tab -3 77 128     ; int16 values
//	.word   big 100000 -5     ; int32 values
//
//	movi  r0, &buf            ; address of a data symbol
//	movi  r1, #42             ; immediate
//	add   r2, r0, r1          ; register form
//	add   r2, r2, #8          ; immediate form
//	ldd   r3, [r0+16] @2      ; load, alias class 2
//	std   r3, [r0+24] @2      ; store (value first)
//	beq   r2, r3, done        ; branch to label
//	loop:                     ; label (starts a basic block)
//	setvl #8
//	setvs #8
//	vld   v0, [r0] @1
//	vadd.w v1, v0, v0         ; width suffix: .b/.w/.d = 8/16/32-bit lanes
//	vsll.w v1, v1, #2
//	aclr  a0
//	vsada a0, v0, v1
//	vsum.b r4, a0
//	apack r5, a0, #8
//	regbegin #1               ; region markers (Table 1 regions)
//	regend   #1
//	halt
//
// Registers are virtual: r (integer), m (µSIMD), v (vector), a
// (accumulator), numbered from 0. Labels name basic-block starts; control
// falls through from one block to the next as in the IR.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/simd"
)

// mnemonics maps each opcode name to its opcode.
var mnemonics = func() map[string]isa.Opcode {
	m := make(map[string]isa.Opcode, isa.NumOpcodes)
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		m[op.Name()] = op
	}
	return m
}()

// widthBySuffix maps the mnemonic width suffix to a sub-word width.
var widthBySuffix = map[string]simd.Width{
	"b": simd.W8, "w": simd.W16, "d": simd.W32, "q": simd.W64,
}

func suffixByWidth(w simd.Width) string { return w.String() }

// Assemble parses the assembly source into a function named name.
func Assemble(name, src string) (*ir.Func, error) {
	p := &parser{
		name:    name,
		symbols: map[string]int64{},
		labels:  map[string]int{},
		f:       &ir.Func{Name: name},
	}
	return p.run(src)
}

type pendingBranch struct {
	block, op int
	label     string
	line      int
}

type parser struct {
	name    string
	symbols map[string]int64 // data symbol -> address
	labels  map[string]int   // label -> block index
	f       *ir.Func
	cur     *ir.Block
	next    int64 // data bump pointer
	pending []pendingBranch
	regs    [5]int32 // highest register id seen per class, +1
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("asm: %s:%d: %s", p.name, line, fmt.Sprintf(format, args...))
}

// block returns the current emission block, opening one if needed.
func (p *parser) block() *ir.Block {
	if p.cur == nil {
		p.cur = &ir.Block{ID: len(p.f.Blocks)}
		p.f.Blocks = append(p.f.Blocks, p.cur)
	}
	return p.cur
}

// seal ends the current block (after a branch).
func (p *parser) seal() { p.cur = nil }

func (p *parser) run(src string) (*ir.Func, error) {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := raw
		if j := strings.IndexByte(text, ';'); j >= 0 {
			text = text[:j]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			if err := p.directive(line, text); err != nil {
				return nil, err
			}
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			j := strings.IndexByte(text, ':')
			if j < 0 || strings.ContainsAny(text[:j], " \t,#[") {
				break
			}
			label := text[:j]
			p.seal()
			p.labels[label] = len(p.f.Blocks)
			p.block() // open the labeled block now so its index is fixed
			text = strings.TrimSpace(text[j+1:])
			if text == "" {
				break
			}
		}
		if text == "" {
			continue
		}
		if err := p.instruction(line, text); err != nil {
			return nil, err
		}
	}
	// Resolve branch labels.
	for _, pb := range p.pending {
		target, ok := p.labels[pb.label]
		if !ok {
			return nil, p.errf(pb.line, "undefined label %q", pb.label)
		}
		p.f.Blocks[pb.block].Ops[pb.op].Target = target
	}
	// Terminate.
	if len(p.f.Blocks) == 0 {
		p.block()
	}
	last := p.f.Blocks[len(p.f.Blocks)-1]
	if !last.Terminated() {
		last.Ops = append(last.Ops, ir.Op{Opcode: isa.HALT})
	}
	p.f.DataSize = p.next
	p.f.NumRegs = p.regs
	return p.f, p.f.Verify()
}

// directive handles .data/.bytes/.half/.word lines.
func (p *parser) directive(line int, text string) error {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return p.errf(line, "malformed directive %q", text)
	}
	name := fields[1]
	if _, dup := p.symbols[name]; dup {
		return p.errf(line, "duplicate data symbol %q", name)
	}
	alloc := func(n int64) int64 {
		addr := ir.DataBase + p.next
		p.next += (n + 7) &^ 7
		return addr
	}
	switch fields[0] {
	case ".data":
		if len(fields) != 3 {
			return p.errf(line, ".data needs a name and a size")
		}
		n, err := strconv.ParseInt(fields[2], 0, 64)
		if err != nil || n <= 0 {
			return p.errf(line, "bad .data size %q", fields[2])
		}
		p.symbols[name] = alloc(n)
	case ".bytes":
		buf := make([]byte, 0, len(fields)-2)
		for _, h := range fields[2:] {
			v, err := strconv.ParseUint(h, 16, 8)
			if err != nil {
				return p.errf(line, "bad hex byte %q", h)
			}
			buf = append(buf, byte(v))
		}
		addr := alloc(int64(len(buf)))
		p.symbols[name] = addr
		p.f.DataInit = append(p.f.DataInit, ir.DataChunk{Addr: addr, Bytes: buf})
	case ".half", ".word":
		size := 2
		if fields[0] == ".word" {
			size = 4
		}
		buf := make([]byte, 0, size*(len(fields)-2))
		for _, h := range fields[2:] {
			v, err := strconv.ParseInt(h, 0, 64)
			if err != nil {
				return p.errf(line, "bad value %q", h)
			}
			for b := 0; b < size; b++ {
				buf = append(buf, byte(uint64(v)>>(8*b)))
			}
		}
		addr := alloc(int64(len(buf)))
		p.symbols[name] = addr
		p.f.DataInit = append(p.f.DataInit, ir.DataChunk{Addr: addr, Bytes: buf})
	default:
		return p.errf(line, "unknown directive %q", fields[0])
	}
	return nil
}

// reg parses a register operand and tracks the register-file high water.
func (p *parser) reg(line int, tok string) (ir.Reg, error) {
	if len(tok) < 2 {
		return ir.Reg{}, p.errf(line, "bad register %q", tok)
	}
	var class isa.RegClass
	switch tok[0] {
	case 'r':
		class = isa.RegInt
	case 'm':
		class = isa.RegSIMD
	case 'v':
		class = isa.RegVec
	case 'a':
		class = isa.RegAcc
	default:
		return ir.Reg{}, p.errf(line, "bad register %q", tok)
	}
	id, err := strconv.Atoi(tok[1:])
	if err != nil || id < 0 {
		return ir.Reg{}, p.errf(line, "bad register %q", tok)
	}
	if int32(id+1) > p.regs[class] {
		p.regs[class] = int32(id + 1)
	}
	return ir.Reg{Class: class, ID: int32(id)}, nil
}

// imm parses #imm or &symbol.
func (p *parser) imm(line int, tok string) (int64, error) {
	switch {
	case strings.HasPrefix(tok, "#"):
		v, err := strconv.ParseInt(tok[1:], 0, 64)
		if err != nil {
			return 0, p.errf(line, "bad immediate %q", tok)
		}
		return v, nil
	case strings.HasPrefix(tok, "&"):
		addr, ok := p.symbols[tok[1:]]
		if !ok {
			return 0, p.errf(line, "undefined data symbol %q", tok[1:])
		}
		return addr, nil
	}
	return 0, p.errf(line, "expected immediate or &symbol, got %q", tok)
}

// memOperand parses "[rN+off]" or "[rN]".
func (p *parser) memOperand(line int, tok string) (ir.Reg, int64, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return ir.Reg{}, 0, p.errf(line, "expected [reg+off], got %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	off := int64(0)
	regTok := inner
	if j := strings.IndexAny(inner, "+-"); j > 0 {
		var err error
		off, err = strconv.ParseInt(inner[j:], 0, 64)
		if err != nil {
			return ir.Reg{}, 0, p.errf(line, "bad offset in %q", tok)
		}
		regTok = inner[:j]
	}
	base, err := p.reg(line, regTok)
	if err != nil {
		return ir.Reg{}, 0, err
	}
	if base.Class != isa.RegInt {
		return ir.Reg{}, 0, p.errf(line, "memory base must be an integer register")
	}
	return base, off, nil
}

// splitOperands splits the operand text on commas, trimming each piece,
// and extracts a trailing "@alias" annotation.
func splitOperands(text string) (ops []string, alias int) {
	if j := strings.LastIndex(text, "@"); j >= 0 {
		if v, err := strconv.Atoi(strings.TrimSpace(text[j+1:])); err == nil {
			alias = v
			text = strings.TrimSpace(text[:j])
		}
	}
	if text == "" {
		return nil, alias
	}
	for _, part := range strings.Split(text, ",") {
		ops = append(ops, strings.TrimSpace(part))
	}
	return ops, alias
}

func (p *parser) instruction(line int, text string) error {
	mn := text
	rest := ""
	if j := strings.IndexAny(text, " \t"); j >= 0 {
		mn, rest = text[:j], strings.TrimSpace(text[j+1:])
	}
	var width simd.Width
	if j := strings.LastIndexByte(mn, '.'); j >= 0 {
		w, ok := widthBySuffix[mn[j+1:]]
		if !ok {
			return p.errf(line, "unknown width suffix %q", mn[j+1:])
		}
		width = w
		mn = mn[:j]
	}
	op, ok := mnemonics[mn]
	if !ok {
		return p.errf(line, "unknown mnemonic %q", mn)
	}
	operands, alias := splitOperands(rest)
	out := ir.Op{Opcode: op, Width: width, Alias: alias}
	in := op.Get()

	need := func(n int) error {
		if len(operands) != n {
			return p.errf(line, "%s expects %d operands, got %d", mn, n, len(operands))
		}
		return nil
	}

	switch {
	case op == isa.NOP || op == isa.HALT:
		if err := need(0); err != nil {
			return err
		}
	case op == isa.REGBEGIN || op == isa.REGEND:
		if err := need(1); err != nil {
			return err
		}
		v, err := p.imm(line, operands[0])
		if err != nil {
			return err
		}
		out.Imm = v
	case op == isa.MOVI || op == isa.MOVIM:
		if err := need(2); err != nil {
			return err
		}
		d, err := p.reg(line, operands[0])
		if err != nil {
			return err
		}
		v, err := p.imm(line, operands[1])
		if err != nil {
			return err
		}
		out.Dst = []ir.Reg{d}
		out.Imm = v
		out.UseImm = true
	case op == isa.SETVL || op == isa.SETVS:
		if err := need(1); err != nil {
			return err
		}
		if strings.HasPrefix(operands[0], "#") {
			v, err := p.imm(line, operands[0])
			if err != nil {
				return err
			}
			out.Imm = v
			out.UseImm = true
		} else {
			r, err := p.reg(line, operands[0])
			if err != nil {
				return err
			}
			out.Src = []ir.Reg{r}
		}
	case in.Branch: // beq/bne/blt/bge ra, rb, label ; jmp label
		want := len(in.Sig.Src)
		if err := need(want + 1); err != nil {
			return err
		}
		for _, tok := range operands[:want] {
			r, err := p.reg(line, tok)
			if err != nil {
				return err
			}
			out.Src = append(out.Src, r)
		}
		blk := p.block()
		p.pending = append(p.pending, pendingBranch{
			block: blk.ID, op: len(blk.Ops), label: operands[want], line: line,
		})
		blk.Ops = append(blk.Ops, out)
		p.seal()
		return nil
	case in.Mem == isa.MemLoad: // ld* rd, [base+off]
		if err := need(2); err != nil {
			return err
		}
		d, err := p.reg(line, operands[0])
		if err != nil {
			return err
		}
		base, off, err := p.memOperand(line, operands[1])
		if err != nil {
			return err
		}
		out.Dst = []ir.Reg{d}
		out.Src = []ir.Reg{base}
		out.Imm = off
	case in.Mem == isa.MemStore: // st* rs, [base+off]
		if err := need(2); err != nil {
			return err
		}
		s, err := p.reg(line, operands[0])
		if err != nil {
			return err
		}
		base, off, err := p.memOperand(line, operands[1])
		if err != nil {
			return err
		}
		out.Src = []ir.Reg{s, base}
		out.Imm = off
	case op == isa.PSLL || op == isa.PSRL || op == isa.PSRA ||
		op == isa.VSLL || op == isa.VSRL || op == isa.VSRA ||
		op == isa.VEXTR || op == isa.APACK:
		// op rd, rs, #imm
		if err := need(3); err != nil {
			return err
		}
		d, err := p.reg(line, operands[0])
		if err != nil {
			return err
		}
		s, err := p.reg(line, operands[1])
		if err != nil {
			return err
		}
		v, err := p.imm(line, operands[2])
		if err != nil {
			return err
		}
		out.Dst = []ir.Reg{d}
		out.Src = []ir.Reg{s}
		out.Imm = v
		if op != isa.VEXTR && op != isa.APACK {
			out.UseImm = true
		}
	case op == isa.VINS: // vins vd, rs, #idx  (vd is also a source)
		if err := need(3); err != nil {
			return err
		}
		d, err := p.reg(line, operands[0])
		if err != nil {
			return err
		}
		s, err := p.reg(line, operands[1])
		if err != nil {
			return err
		}
		v, err := p.imm(line, operands[2])
		if err != nil {
			return err
		}
		out.Dst = []ir.Reg{d}
		out.Src = []ir.Reg{s, d}
		out.Imm = v
	case op == isa.VSADA || op == isa.VMACA: // op ad, va, vb (ad also source)
		if err := need(3); err != nil {
			return err
		}
		d, err := p.reg(line, operands[0])
		if err != nil {
			return err
		}
		a, err := p.reg(line, operands[1])
		if err != nil {
			return err
		}
		bb, err := p.reg(line, operands[2])
		if err != nil {
			return err
		}
		out.Dst = []ir.Reg{d}
		out.Src = []ir.Reg{a, bb, d}
		if out.Width == 0 {
			out.Width = in.Widths[0]
		}
	case op == isa.VACCW: // vaccw ad, va
		if err := need(2); err != nil {
			return err
		}
		d, err := p.reg(line, operands[0])
		if err != nil {
			return err
		}
		a, err := p.reg(line, operands[1])
		if err != nil {
			return err
		}
		out.Dst = []ir.Reg{d}
		out.Src = []ir.Reg{a, d}
		if out.Width == 0 {
			out.Width = in.Widths[0]
		}
	default:
		// Generic: dst list then src list per the signature; immediates
		// allowed as the final source of immediate-capable scalar ALU ops.
		wantDst := len(in.Sig.Dst)
		wantSrc := len(in.Sig.Src)
		hasImm := len(operands) == wantDst+wantSrc &&
			wantSrc > 0 && in.Imm &&
			(strings.HasPrefix(operands[len(operands)-1], "#") ||
				strings.HasPrefix(operands[len(operands)-1], "&"))
		if hasImm {
			wantSrc--
			out.UseImm = true
		}
		if err := need(wantDst + wantSrc + btoi(out.UseImm)); err != nil {
			return err
		}
		idx := 0
		for i := 0; i < wantDst; i++ {
			r, err := p.reg(line, operands[idx])
			if err != nil {
				return err
			}
			out.Dst = append(out.Dst, r)
			idx++
		}
		for i := 0; i < wantSrc; i++ {
			r, err := p.reg(line, operands[idx])
			if err != nil {
				return err
			}
			out.Src = append(out.Src, r)
			idx++
		}
		if out.UseImm {
			v, err := p.imm(line, operands[idx])
			if err != nil {
				return err
			}
			out.Imm = v
		}
	}

	blk := p.block()
	blk.Ops = append(blk.Ops, out)
	if op == isa.JMP || op == isa.HALT {
		p.seal()
	}
	return nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
