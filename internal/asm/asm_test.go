package asm

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/ir"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/sim"
)

// dotProduct is a complete Vector-µSIMD assembly program: the dot product
// of two 32-element int16 arrays via the packed accumulator.
const dotProduct = `
; dot product of two int16[32] arrays
.half xs 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
.half ys 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 3 3 3 3 3 3 3 3 3 3 3 3 3 3 3 3
.data out 8

	setvl #8              ; 8 words = 32 int16 lanes
	setvs #8
	movi  r0, &xs
	movi  r1, &ys
	movi  r2, &out
	vld   v0, [r0] @1
	vld   v1, [r1] @2
	aclr  a0
	vmaca a0, v0, v1
	vsum.w r3, a0
	std   r3, [r2] @3
	halt
`

func TestAssembleAndRunDotProduct(t *testing.T) {
	f, err := Assemble("dot", dotProduct)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(f, &machine.Vector2x2)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine(core.Perfect)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Expected: sum(1..16)*2 + sum(1..16)*3 = 136*5 = 680.
	outAddr := f.DataInit[0].Addr + 64 + 64 // xs then ys, then out
	raw, err := m.ReadBytes(outAddr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.LittleEndian.Uint64(raw)); got != 680 {
		t.Errorf("dot product = %d, want 680", got)
	}
}

func TestAssembleLoopAndBranch(t *testing.T) {
	src := `
.data out 8
	movi r0, #0
	movi r1, #0
	movi r2, #10
loop:
	add r1, r1, r0
	add r0, r0, #1
	blt r0, r2, loop
	movi r3, &out
	std r1, [r3] @1
	halt
`
	f, err := Assemble("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(f, &machine.VLIW2)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine(core.Perfect)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out, _ := m.ReadBytes(0x10000, 8) // &out is the first allocation
	if got := int64(binary.LittleEndian.Uint64(out)); got != 45 {
		t.Errorf("sum(0..9) = %d, want 45", got)
	}
}

func TestAssembleDirectives(t *testing.T) {
	src := `
.data  blank 16
.bytes raw ff 00 7f
.half  halves -1 256
.word  words -100000
	halt
`
	f, err := Assemble("dirs", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.DataInit) != 3 {
		t.Fatalf("chunks = %d", len(f.DataInit))
	}
	if f.DataInit[0].Addr != 0x10000+16 {
		t.Errorf("raw at %#x", f.DataInit[0].Addr)
	}
	if !reflect.DeepEqual(f.DataInit[0].Bytes, []byte{0xFF, 0x00, 0x7F}) {
		t.Errorf("raw = %v", f.DataInit[0].Bytes)
	}
	if !reflect.DeepEqual(f.DataInit[1].Bytes, []byte{0xFF, 0xFF, 0x00, 0x01}) {
		t.Errorf("halves = %v", f.DataInit[1].Bytes)
	}
	w := f.DataInit[2].Bytes
	if int32(binary.LittleEndian.Uint32(w)) != -100000 {
		t.Errorf("words = %v", w)
	}
	if f.DataSize != 16+8+8+8 {
		t.Errorf("DataSize = %d", f.DataSize)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frobnicate r0, r1"},
		{"bad register", "add q0, r1, r2"},
		{"undefined label", "jmp nowhere"},
		{"undefined symbol", "movi r0, &missing"},
		{"duplicate symbol", ".data x 8\n.data x 8"},
		{"bad width", "vadd.z v0, v1, v2"},
		{"bad operand count", "add r0, r1"},
		{"bad directive", ".frob x 1"},
		{"bad hex", ".bytes x zz"},
		{"bad data size", ".data x -5"},
		{"bad immediate", "movi r0, #1x"},
		{"store to nonint base", "std r0, [v1+8]"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.name, c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRoundTripSmall(t *testing.T) {
	f, err := Assemble("dot", dotProduct)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(f)
	f2, err := Assemble("dot2", text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	compareFuncs(t, f, f2)
}

// TestRoundTripApplications disassembles every application in every ISA
// variant and reassembles it, requiring structural identity — a strong
// joint test of the assembler, the disassembler and the IR.
func TestRoundTripApplications(t *testing.T) {
	for _, a := range apps.All() {
		for _, v := range []kernels.Variant{kernels.Scalar, kernels.USIMD, kernels.Vector} {
			built := a.Build(v)
			text := Disassemble(built.Func)
			f2, err := Assemble(a.Name, text)
			if err != nil {
				t.Fatalf("%s/%v: reassembly failed: %v", a.Name, v, err)
			}
			compareFuncs(t, built.Func, f2)
		}
	}
}

func compareFuncs(t *testing.T, a, b *ir.Func) {
	t.Helper()
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block count %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if len(a.Blocks[i].Ops) != len(b.Blocks[i].Ops) {
			t.Fatalf("B%d: op count %d vs %d", i, len(a.Blocks[i].Ops), len(b.Blocks[i].Ops))
		}
		for j := range a.Blocks[i].Ops {
			x := a.Blocks[i].Ops[j]
			y := b.Blocks[i].Ops[j]
			x.Label, y.Label = "", "" // labels are presentation-only
			if !reflect.DeepEqual(x, y) {
				t.Fatalf("B%d op %d differs:\n  orig: %+v\n  rt:   %+v", i, j, x, y)
			}
		}
	}
	if a.DataSize != b.DataSize {
		t.Errorf("DataSize %d vs %d", a.DataSize, b.DataSize)
	}
	if len(a.DataInit) != len(b.DataInit) {
		t.Fatalf("DataInit count %d vs %d", len(a.DataInit), len(b.DataInit))
	}
	for i := range a.DataInit {
		if a.DataInit[i].Addr != b.DataInit[i].Addr ||
			!reflect.DeepEqual(a.DataInit[i].Bytes, b.DataInit[i].Bytes) {
			t.Fatalf("DataInit chunk %d differs", i)
		}
	}
}

func TestDisassembleReadable(t *testing.T) {
	f, err := Assemble("dot", dotProduct)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(f)
	for _, want := range []string{"vmaca", "vsum.w", "setvl #8", ".bytes", "B0:"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

// FuzzAssemble feeds arbitrary text to the assembler: it must reject or
// accept without panicking, and anything it accepts must disassemble and
// reassemble.
func FuzzAssemble(f *testing.F) {
	f.Add(dotProduct)
	f.Add("add r0, r1, r2\nhalt")
	f.Add(".data x 8\nmovi r0, &x\nldd r1, [r0+0] @1")
	f.Add("loop: blt r0, r1, loop")
	f.Add(".bytes b ff\n.half h -1\n.word w 9")
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		text := Disassemble(fn)
		if _, err := Assemble("fuzz2", text); err != nil {
			t.Fatalf("accepted program failed to round-trip: %v\n%s", err, text)
		}
	})
}

// TestShippedExamplePrograms assembles and runs every .s file shipped in
// examples/asm, checking their documented results.
func TestShippedExamplePrograms(t *testing.T) {
	run := func(file string, cfg *machine.Config) *sim.Machine {
		t.Helper()
		src, err := os.ReadFile(filepath.Join("..", "..", "examples", "asm", file))
		if err != nil {
			t.Fatal(err)
		}
		f, err := Assemble(file, string(src))
		if err != nil {
			t.Fatal(err)
		}
		// Shipped sources must also round-trip.
		if _, err := Assemble(file+".rt", Disassemble(f)); err != nil {
			t.Fatalf("%s does not round-trip: %v", file, err)
		}
		prog, err := core.Compile(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := prog.NewMachine(core.Realistic)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// sad.s: documented SAD result 576 at &out = 0x10800.
	m := run("sad.s", machine.ByName("Vector2-2w"))
	raw, err := m.ReadBytes(0x10800, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.LittleEndian.Uint64(raw)); got != 576 {
		t.Errorf("sad.s result = %d, want 576", got)
	}

	// dotproduct.s: three identical results (90784) at &out = 0x10100.
	m = run("dotproduct.s", machine.ByName("Vector2-4w"))
	raw, err = m.ReadBytes(0x10100, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := int64(binary.LittleEndian.Uint64(raw[8*i:])); got != 90784 {
			t.Errorf("dotproduct.s result %d = %d, want 90784", i, got)
		}
	}
}
