// Package sweep plans and executes dense vector-length design-space
// sweeps: a (apps × configs × memories × VL-set) request is canonicalized
// into a deduplicated cell plan whose cells are grouped by compiled-
// program fingerprint, so each program compiles once and is simulated K
// times under different VL caps (the VL cap is a run-time machine
// parameter, not a compile key — see sim.Machine.SetVLCap). The executor
// fans groups out on a caller-supplied scheduler with pooled machine
// reuse per memory model, consults a result cache only at group
// granularity, and aliases provably identical cells (non-vector configs
// are VL-independent; caps at or above a program's intrinsic maximum VL
// are verified equal to the uncapped run) instead of re-simulating them.
package sweep

import (
	"sort"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/kernels"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
)

// CanonicalVL maps a requested VL cap onto the canonical cap that
// produces the same simulation result. Non-vector configurations never
// execute SETVL, so every cap is equivalent to "uncapped" (0); on vector
// configurations a cap at or beyond isa.MaxVL never clamps and is also
// equivalent to 0. Requests that differ only in these redundant spellings
// therefore share one simulation (and one result-cache entry).
func CanonicalVL(cfg *machine.Config, vl int) int {
	if cfg.ISA != machine.ISAVector || vl <= 0 || vl >= isa.MaxVL {
		return 0
	}
	return vl
}

// Cell is one requested (app, config, memory, VL) point of a sweep, in
// the canonical request order. Run indexes the unique simulation in
// Plan.Runs whose result answers this cell.
type Cell struct {
	App *apps.App
	Cfg *machine.Config
	Mem core.MemoryModel
	VL  int // the requested VL, verbatim
	Run int
}

// Run is one unique simulation of the plan: a compiled program executed
// under one memory model with one canonical VL cap. Several cells may map
// onto the same run.
type Run struct {
	App     *apps.App
	Variant kernels.Variant
	Cfg     *machine.Config
	Mem     core.MemoryModel
	VL      int // canonical VL cap (0 = uncapped)
	Group   int // index into Plan.Groups
}

// EffCap is the cap the machine actually enforces: the canonical 0 means
// the architectural maximum.
func (r *Run) EffCap() int {
	if r.VL == 0 {
		return isa.MaxVL
	}
	return r.VL
}

// Group is the set of runs sharing one compiled program — one (app, code
// variant, configuration) triple, the compiled-program fingerprint. Runs
// is ordered by (memory model, descending effective cap), so the executor
// meets the uncapped reference run of each memory model first and the
// pooled machine of one model is reused back-to-back.
type Group struct {
	App     *apps.App
	Variant kernels.Variant
	Cfg     *machine.Config
	Runs    []int // indices into Plan.Runs
}

// Plan is a deduplicated, compile-once execution plan for a sweep.
type Plan struct {
	Cells  []Cell
	Runs   []Run
	Groups []Group
}

// New expands the request axes into cells in canonical (app, config,
// memory, VL) order — the VL axis keeps the caller's order — and
// deduplicates them into unique runs grouped by compiled program.
func New(appList []*apps.App, cfgs []*machine.Config, mems []core.MemoryModel, vls []int) *Plan {
	p := &Plan{Cells: make([]Cell, 0, len(appList)*len(cfgs)*len(mems)*len(vls))}
	type runKey struct {
		app string
		cfg *machine.Config
		mem core.MemoryModel
		vl  int
	}
	type groupKey struct {
		app string
		cfg *machine.Config
	}
	runIdx := make(map[runKey]int)
	groupIdx := make(map[groupKey]int)
	for _, a := range appList {
		for _, cfg := range cfgs {
			v := report.VariantFor(cfg)
			gk := groupKey{a.Name, cfg}
			gi, ok := groupIdx[gk]
			if !ok {
				gi = len(p.Groups)
				groupIdx[gk] = gi
				p.Groups = append(p.Groups, Group{App: a, Variant: v, Cfg: cfg})
			}
			for _, mm := range mems {
				for _, vl := range vls {
					cvl := CanonicalVL(cfg, vl)
					rk := runKey{a.Name, cfg, mm, cvl}
					ri, ok := runIdx[rk]
					if !ok {
						ri = len(p.Runs)
						runIdx[rk] = ri
						p.Runs = append(p.Runs, Run{App: a, Variant: v, Cfg: cfg, Mem: mm, VL: cvl, Group: gi})
						p.Groups[gi].Runs = append(p.Groups[gi].Runs, ri)
					}
					p.Cells = append(p.Cells, Cell{App: a, Cfg: cfg, Mem: mm, VL: vl, Run: ri})
				}
			}
		}
	}
	for gi := range p.Groups {
		g := &p.Groups[gi]
		sort.SliceStable(g.Runs, func(i, j int) bool {
			a, b := &p.Runs[g.Runs[i]], &p.Runs[g.Runs[j]]
			if a.Mem != b.Mem {
				return a.Mem < b.Mem
			}
			return a.EffCap() > b.EffCap()
		})
	}
	return p
}
