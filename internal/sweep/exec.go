package sweep

import (
	"context"
	"reflect"
	"sync"
	"time"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/sim"
)

// Sources label how a run's result was obtained.
const (
	// SourceRun: the run was simulated by this execution.
	SourceRun = "run"
	// SourceCached: the result came from the caller's result cache.
	SourceCached = "result-hit"
	// SourceAlias: the result is the group's uncapped reference run,
	// verified identical for this cap (the cap never clamps a SETVL).
	SourceAlias = "alias"
)

// ExecConfig connects a plan execution to its environment. Only Compile
// is required; every other hook degrades gracefully to "no cache, run
// groups inline, observe nothing".
type ExecConfig struct {
	// Context bounds the execution; once done, running cells stop within
	// CheckCycles simulated cycles and pending runs are marked canceled.
	Context context.Context
	// CheckCycles is the cancellation poll interval (<= 0 uses the
	// simulator default).
	CheckCycles int64
	// Compile returns the compiled program of a group plus a cache label
	// ("hit", "miss", "wait"; may be empty for standalone use). It is
	// called at most once per group, and not at all for fully cached
	// groups.
	Compile func(ctx context.Context, g *Group) (prog *core.Program, label string, err error)
	// Key fingerprints a run for the result cache. Nil disables the
	// Peek/Publish traffic entirely.
	Key func(r *Run) string
	// Peek consults the result cache without blocking: it must return
	// only finished, successful results (never wait on an in-flight
	// computation — a sweep group may be holding the only worker).
	Peek func(key string) (*sim.Result, bool)
	// Publish offers a finished result to the cache (no-op when nil).
	Publish func(key string, res *sim.Result)
	// Submit schedules one group's work and blocks until it completed; a
	// non-nil error means the work never ran (queue closed, context
	// done). Nil executes groups inline, sequentially.
	Submit func(ctx context.Context, work func(ctx context.Context)) error
	// OnRun observes every simulation this execution performs (cache
	// hits and aliases are not runs), with the run's wall-clock cost.
	// err is non-nil for canceled or failed runs.
	OnRun func(r *Run, res *sim.Result, err error, elapsed time.Duration)
}

// RunOutcome is the outcome of one unique run of the plan.
type RunOutcome struct {
	// Res is the simulation result (nil on error).
	Res *sim.Result
	// Err is the run's failure, if any; a *sim.CanceledError carries the
	// partial result of an interrupted cell.
	Err error
	// Source is SourceRun, SourceCached or SourceAlias.
	Source string
	// CompileLabel is the group's compiled-program cache label for
	// simulated runs ("hit", "miss", "wait", or empty standalone).
	CompileLabel string
}

// Outcome holds the per-run outcomes of one plan execution, parallel to
// Plan.Runs.
type Outcome struct {
	Results []RunOutcome
}

// Execute runs the plan: each group compiles (at most) once and
// simulates its runs back-to-back on the program's pooled machines,
// consulting the result cache once per unique run instead of once per
// cell. With a Submit hook, groups fan out concurrently and Execute
// returns when every group finished or was refused.
func (p *Plan) Execute(ec ExecConfig) *Outcome {
	ctx := ec.Context
	if ctx == nil {
		ctx = context.Background()
	}
	out := &Outcome{Results: make([]RunOutcome, len(p.Runs))}
	if ec.Submit == nil {
		for gi := range p.Groups {
			p.execGroup(ctx, &p.Groups[gi], ec, out)
		}
		return out
	}
	var wg sync.WaitGroup
	for gi := range p.Groups {
		g := &p.Groups[gi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ec.Submit(ctx, func(c context.Context) { p.execGroup(c, g, ec, out) }); err != nil {
				p.failGroup(g, out, err)
			}
		}()
	}
	wg.Wait()
	return out
}

// failGroup marks every unresolved run of g with err (the group's work
// never ran).
func (p *Plan) failGroup(g *Group, out *Outcome, err error) {
	for _, ri := range g.Runs {
		oc := &out.Results[ri]
		if oc.Res == nil && oc.Err == nil {
			oc.Err = err
		}
	}
}

// execGroup resolves every run of one group. The group's runs are
// ordered (memory model, descending effective cap), so per memory model
// the uncapped reference — when the request includes it — is resolved
// first; its VLMax then proves which tighter caps cannot change the
// result, and one verification run (the tightest such cap, checked with
// reflect.DeepEqual against the reference) licenses aliasing the rest.
func (p *Plan) execGroup(ctx context.Context, g *Group, ec ExecConfig, out *Outcome) {
	// Group-granularity cache consult: one Peek per unique run, none per
	// cell. A fully cached group never compiles.
	pending := 0
	for _, ri := range g.Runs {
		if ec.Key != nil && ec.Peek != nil {
			if res, ok := ec.Peek(ec.Key(&p.Runs[ri])); ok {
				out.Results[ri] = RunOutcome{Res: res, Source: SourceCached}
				continue
			}
		}
		pending++
	}
	if pending == 0 {
		return
	}
	if err := ctx.Err(); err != nil {
		p.failGroup(g, out, &sim.CanceledError{Cause: err})
		return
	}
	prog, label, err := ec.Compile(ctx, g)
	if err != nil {
		p.failGroup(g, out, err)
		return
	}

	resolve := func(ri int) *RunOutcome {
		oc := &out.Results[ri]
		if oc.Res != nil || oc.Err != nil {
			return oc
		}
		r := &p.Runs[ri]
		if err := ctx.Err(); err != nil {
			oc.Err = &sim.CanceledError{Cause: err}
			return oc
		}
		start := time.Now()
		res, err := prog.RunOpts(r.Mem, core.RunOptions{
			Context:     ctx,
			CheckCycles: ec.CheckCycles,
			VLCap:       r.VL,
		})
		elapsed := time.Since(start)
		if ec.OnRun != nil {
			ec.OnRun(r, res, err, elapsed)
		}
		if err != nil {
			oc.Err = err
			return oc
		}
		oc.Res, oc.Source, oc.CompileLabel = res, SourceRun, label
		if ec.Key != nil && ec.Publish != nil {
			ec.Publish(ec.Key(r), res)
		}
		return oc
	}

	// Walk the runs one memory-model segment at a time.
	for lo := 0; lo < len(g.Runs); {
		hi := lo + 1
		for hi < len(g.Runs) && p.Runs[g.Runs[hi]].Mem == p.Runs[g.Runs[lo]].Mem {
			hi++
		}
		p.execSegment(g.Runs[lo:hi], ec, out, resolve)
		lo = hi
	}
}

// execSegment resolves one (group, memory model) slice of runs, ordered
// by descending effective cap, aliasing caps the uncapped reference run
// proves redundant.
func (p *Plan) execSegment(seg []int, ec ExecConfig, out *Outcome, resolve func(int) *RunOutcome) {
	ref := resolve(seg[0])
	if ref.Err != nil || p.Runs[seg[0]].VL != 0 {
		// No uncapped reference (not requested, or it failed): every cap
		// simulates individually.
		for _, ri := range seg[1:] {
			resolve(ri)
		}
		return
	}
	vmax := ref.Res.VLMax
	// seg is sorted by descending cap, so the caps the reference may
	// prove redundant (cap >= vmax: no SETVL is ever clamped) form a
	// prefix of the remainder.
	k := 1
	for k < len(seg) && p.Runs[seg[k]].EffCap() >= vmax {
		k++
	}
	if k > 1 {
		// Verify with the tightest redundant cap: equality with the
		// reference proves the initial VL was never consumed before the
		// first SETVL, so every looser cap is identical too.
		probe := resolve(seg[k-1])
		if probe.Err == nil && reflect.DeepEqual(probe.Res, ref.Res) {
			for _, ri := range seg[1 : k-1] {
				oc := &out.Results[ri]
				if oc.Res != nil || oc.Err != nil {
					continue
				}
				oc.Res, oc.Source = ref.Res, SourceAlias
				if ec.Key != nil && ec.Publish != nil {
					ec.Publish(ec.Key(&p.Runs[ri]), ref.Res)
				}
			}
		}
	}
	for _, ri := range seg[k:] {
		resolve(ri)
	}
	// Anything the verification fallback left unresolved (probe mismatch)
	// simulates individually.
	for _, ri := range seg[1:k] {
		resolve(ri)
	}
}
