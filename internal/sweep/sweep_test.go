package sweep

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files")

func TestCanonicalVL(t *testing.T) {
	for _, tc := range []struct {
		cfg  *machine.Config
		vl   int
		want int
	}{
		{&machine.VLIW2, 5, 0},
		{&machine.USIMD4, 16, 0},
		{&machine.Vector2x2, 0, 0},
		{&machine.Vector2x2, 16, 0},
		{&machine.Vector2x2, isa.MaxVL + 3, 0},
		{&machine.Vector2x2, 1, 1},
		{&machine.Vector2x2, 15, 15},
	} {
		if got := CanonicalVL(tc.cfg, tc.vl); got != tc.want {
			t.Errorf("CanonicalVL(%s, %d) = %d, want %d", tc.cfg.Name, tc.vl, got, tc.want)
		}
	}
}

// TestPlanDedup checks the plan's three invariants: cells stay in
// canonical request order, VL-independent cells collapse onto shared
// runs, and groups partition the runs by compiled program.
func TestPlanDedup(t *testing.T) {
	appList := apps.All()[:2]
	cfgs := []*machine.Config{&machine.VLIW2, &machine.USIMD2, &machine.Vector2x2}
	vls := []int{1, 8, 16}
	p := New(appList, cfgs, core.Models, vls)

	wantCells := len(appList) * len(cfgs) * len(core.Models) * len(vls)
	if len(p.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(p.Cells), wantCells)
	}
	// Non-vector configs: one run per (app, cfg, mem); vector: one per
	// canonical VL {1, 8, 0}.
	wantRuns := 2*2*2*1 + 1*2*2*3
	if len(p.Runs) != wantRuns {
		t.Fatalf("runs = %d, want %d", len(p.Runs), wantRuns)
	}
	if len(p.Groups) != len(appList)*len(cfgs) {
		t.Fatalf("groups = %d, want %d", len(p.Groups), len(appList)*len(cfgs))
	}

	i := 0
	for _, a := range appList {
		for _, cfg := range cfgs {
			for _, mm := range core.Models {
				for _, vl := range vls {
					c := p.Cells[i]
					if c.App != a || c.Cfg != cfg || c.Mem != mm || c.VL != vl {
						t.Fatalf("cell %d out of canonical order: %s/%s/%s/vl%d", i, c.App.Name, c.Cfg.Name, c.Mem, c.VL)
					}
					r := &p.Runs[c.Run]
					if r.App != a || r.Cfg != cfg || r.Mem != mm || r.VL != CanonicalVL(cfg, vl) {
						t.Fatalf("cell %d mapped to wrong run %+v", i, r)
					}
					if g := &p.Groups[r.Group]; g.App != a || g.Cfg != cfg || g.Variant != report.VariantFor(cfg) {
						t.Fatalf("run of cell %d in wrong group", i)
					}
					i++
				}
			}
		}
	}

	// Every group's run list is ordered by (mem, descending effective
	// cap) and covers its runs exactly once.
	seen := make(map[int]bool)
	for gi := range p.Groups {
		g := &p.Groups[gi]
		for k, ri := range g.Runs {
			if seen[ri] {
				t.Fatalf("run %d appears in two groups", ri)
			}
			seen[ri] = true
			if p.Runs[ri].Group != gi {
				t.Fatalf("run %d group index mismatch", ri)
			}
			if k > 0 {
				a, b := &p.Runs[g.Runs[k-1]], &p.Runs[ri]
				if a.Mem > b.Mem || (a.Mem == b.Mem && a.EffCap() <= b.EffCap()) {
					t.Fatalf("group %d runs not ordered by (mem, desc cap)", gi)
				}
			}
		}
	}
	if len(seen) != len(p.Runs) {
		t.Fatalf("groups cover %d runs, want %d", len(seen), len(p.Runs))
	}
}

// TestExecuteMatchesDirect is the executor's differential check: every
// cell of a mixed sweep must be reflect.DeepEqual to compiling and
// running the same (app, config, memory, canonical VL) point directly.
func TestExecuteMatchesDirect(t *testing.T) {
	appList := apps.All()[:2]
	cfgs := []*machine.Config{&machine.VLIW2, &machine.Vector2x2}
	vls := []int{3, 8, 16}
	p := New(appList, cfgs, core.Models, vls)
	out := p.Execute(ExecConfig{Compile: CompileStandalone})

	for ci, c := range p.Cells {
		oc := out.Results[c.Run]
		if oc.Err != nil {
			t.Fatalf("cell %d: %v", ci, oc.Err)
		}
		built := c.App.Build(report.VariantFor(c.Cfg))
		prog, err := core.Compile(built.Func, c.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := prog.RunOpts(c.Mem, core.RunOptions{VLCap: CanonicalVL(c.Cfg, c.VL)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oc.Res, want) {
			t.Fatalf("cell %d (%s/%s/%s/vl%d, source %s) differs from a direct run",
				ci, c.App.Name, c.Cfg.Name, c.Mem, c.VL, oc.Source)
		}
	}
}

// TestAliasing pins the redundant-cap optimization: caps at or above the
// program's observed maximum SETVL alias the uncapped reference run
// (after one verification run), and the aliased results are still
// bit-identical to direct simulations (TestExecuteMatchesDirect covers
// the general equality; here the Source labels are the contract).
func TestAliasing(t *testing.T) {
	a, err := apps.ByName("gsm_enc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &machine.Vector2x2
	built := a.Build(report.VariantFor(cfg))
	prog, err := core.Compile(built.Func, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := prog.Run(core.Perfect)
	if err != nil {
		t.Fatal(err)
	}
	if ref.VLMax <= 0 || ref.VLMax >= isa.MaxVL-1 {
		t.Skipf("gsm_enc VLMax = %d leaves no cap range to alias", ref.VLMax)
	}

	// Caps vmax..15 are redundant: the loosest resolves first as the
	// reference, the tightest (vmax) verifies, the ones in between alias.
	vls := []int{16, ref.VLMax, ref.VLMax + 1, isa.MaxVL - 1}
	p := New([]*apps.App{a}, []*machine.Config{cfg}, []core.MemoryModel{core.Perfect}, vls)
	runs := 0
	out := p.Execute(ExecConfig{
		Compile: CompileStandalone,
		OnRun:   func(*Run, *sim.Result, error, time.Duration) { runs++ },
	})
	// Simulated: the uncapped reference plus the vmax verification run.
	if runs != 2 {
		t.Fatalf("simulated %d runs, want 2 (reference + verification)", runs)
	}
	bySource := map[string]int{}
	for ci, c := range p.Cells {
		oc := out.Results[c.Run]
		if oc.Err != nil {
			t.Fatalf("cell %d: %v", ci, oc.Err)
		}
		bySource[oc.Source]++
		if !reflect.DeepEqual(oc.Res, ref) {
			t.Fatalf("cell %d (vl %d, source %s): redundant cap changed the result", ci, c.VL, oc.Source)
		}
	}
	if bySource[SourceAlias] != 2 || bySource[SourceRun] != 2 {
		t.Fatalf("sources = %v, want 2 runs and 2 aliases", bySource)
	}
}

// TestFigureGolden freezes the rendered VL figure. The sweep pipeline is
// deterministic, so any diff is a real behaviour change; regenerate
// intentionally with:
//
//	go test ./internal/sweep -run TestFigureGolden -update
func TestFigureGolden(t *testing.T) {
	got, err := Figure(&machine.Vector2x4, DefaultVLs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "figurevl.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		t.Errorf("VL figure drifted from the golden output; run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
