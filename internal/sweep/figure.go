package sweep

import (
	"context"
	"fmt"
	"strings"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/energy"
	"vsimdvliw/internal/machine"
)

// DefaultVLs is the VL axis of the paperfigs vector-length figure (and
// its golden fixture): the powers of two the paper's kernels naturally
// set, plus an intermediate point and the architectural maximum as the
// normalization reference.
var DefaultVLs = []int{1, 2, 4, 8, 12, 16}

// CompileStandalone is the ExecConfig.Compile hook for self-contained
// executions (paperfigs, tests): it builds the group's code variant and
// compiles it directly, without a program cache.
func CompileStandalone(ctx context.Context, g *Group) (*core.Program, string, error) {
	built := g.App.Build(g.Variant)
	prog, err := core.Compile(built.Func, g.Cfg)
	return prog, "", err
}

// Figure renders the cycles-and-energy-versus-VL figure: every benchmark
// application on one vector configuration under realistic memory, each
// VL cap's cycle count and first-order energy/EDP estimates normalized
// to the uncapped run. It quantifies the SLAP-style trade-off the sweep
// engine exists to explore: shorter vectors trade stall amortization for
// iteration overhead, and the energy optimum need not sit at either end.
func Figure(cfg *machine.Config, vls []int) (string, error) {
	if cfg.ISA != machine.ISAVector {
		return "", fmt.Errorf("sweep: VL figure requires a vector configuration (got %s)", cfg.Name)
	}
	if len(vls) == 0 {
		vls = DefaultVLs
	}
	plan := New(apps.All(), []*machine.Config{cfg}, []core.MemoryModel{core.Realistic}, vls)
	out := plan.Execute(ExecConfig{Compile: CompileStandalone})
	for _, oc := range out.Results {
		if oc.Err != nil {
			return "", oc.Err
		}
	}

	model := energy.Default()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cycles and energy vs vector length (%s, realistic memory; normalized to the uncapped run)\n", cfg.Name)
	fmt.Fprintf(&sb, "%-10s %4s %12s %9s %9s %9s\n", "app", "VL", "cycles", "cyc/ref", "energy", "EDP")
	sb.WriteString(strings.Repeat("-", 58) + "\n")
	for ci := 0; ci < len(plan.Cells); ci += len(vls) {
		cells := plan.Cells[ci : ci+len(vls)]
		// Normalize to the loosest cap of the app's row (the uncapped run
		// when VL 16 or 0 is on the axis).
		ref := cells[0]
		for _, c := range cells[1:] {
			if plan.Runs[c.Run].EffCap() > plan.Runs[ref.Run].EffCap() {
				ref = c
			}
		}
		rr := out.Results[ref.Run].Res
		re := model.Estimate(rr, ref.Cfg).Total()
		redp := model.EDP(rr, ref.Cfg)
		for _, c := range cells {
			r := out.Results[c.Run].Res
			e := model.Estimate(r, c.Cfg).Total()
			edp := model.EDP(r, c.Cfg)
			fmt.Fprintf(&sb, "%-10s %4d %12d %9.3f %9.3f %9.3f\n",
				c.App.Name, c.VL, r.Cycles,
				float64(r.Cycles)/float64(rr.Cycles), e/re, edp/redp)
		}
	}
	return sb.String(), nil
}
